(* Shared QCheck generators and differential-oracle helpers for the
   test suites. Extracted from test_xml.ml / test_faults.ml so the
   property tests, the wire fuzz tests and the fuzz-harness tests draw
   from one vocabulary of instances. *)

module Tree = Axml_xml.Tree
module Doc = Axml_doc
module Eval = Axml_query.Eval
module Schema = Axml_schema.Schema
module Regex = Axml_automata.Regex

(* ------------------------------------------------------------------ *)
(* XML trees *)

let gen_tree =
  let open QCheck.Gen in
  let label = oneofl [ "a"; "b"; "c"; "hotel"; "name" ] in
  let text_gen = oneofl [ "x"; "1 < 2"; "a&b"; "\"q\""; "Best Western" ] in
  sized
  @@ fix (fun self n ->
         if n = 0 then map Tree.text text_gen
         else
           frequency
             [
               (1, map Tree.text text_gen);
               ( 3,
                 map2
                   (fun name children -> Tree.element name children)
                   label
                   (list_size (int_bound 3) (self (n / 2))) );
             ])

(* [Parse.tree] requires an element root, so wrap. *)
let gen_rooted_tree = QCheck.Gen.map (fun c -> Tree.element "root" [ c ]) gen_tree
let arb_tree = QCheck.make ~print:(Fmt.to_to_string Tree.pp) gen_rooted_tree

(* The parser drops whitespace-only text between elements and merges
   nothing else; generated text leaves are never whitespace-only, but two
   adjacent text leaves would merge. Normalize both sides by merging
   adjacent text nodes before comparing. *)
let rec merge_text (tr : Tree.t) : Tree.t =
  match tr with
  | Tree.Text _ -> tr
  | Tree.Element e ->
    let rec merge = function
      | Tree.Text a :: Tree.Text b :: rest -> merge (Tree.Text (a ^ b) :: rest)
      | x :: rest -> merge_text x :: merge rest
      | [] -> []
    in
    Tree.Element { e with children = merge e.children }

(* ------------------------------------------------------------------ *)
(* Schema-aware instances: a small seeded schema over a fixed symbol
   vocabulary (structured elements r/s/u, data leaves k/p, one service
   f) plus trees generated top-down from its content models — every
   generated tree conforms to its schema, which is what the type-based
   projection properties need. All content models in the pool are
   nullable, so running out of depth fuel truncates to the empty word
   instead of an invalid child sequence. *)

let content_models =
  [ "(s|u)*"; "s*"; "(s|k|f)*"; "(k|p)*"; "(u|p|f)*"; "p?.f?"; "(p|f)*"; "k?.(p|u)*" ]

(* f's output type need not be nullable — calls are generated unexpanded. *)
let output_models = [ "p*"; "(p|f)*"; "k?"; "p"; "s" ]

type schema_case = {
  r_model : string;
  s_model : string;
  u_model : string;
  f_out : string;
  tree_seed : int;
}

let schema_src c =
  Printf.sprintf
    "functions:\n  f = [in: data, out: %s]\nelements:\n  r = %s\n  s = %s\n  u = %s\n  k = data\n  p = data\n"
    c.f_out c.r_model c.s_model c.u_model

let schema_of_case c = Schema.of_string (schema_src c)

let print_schema_case c =
  Printf.sprintf "r=%s s=%s u=%s f->%s seed=%d" c.r_model c.s_model c.u_model c.f_out
    c.tree_seed

let gen_schema_case =
  QCheck.Gen.(
    map
      (fun ((r_model, s_model), (u_model, (f_out, tree_seed))) ->
        { r_model; s_model; u_model; f_out; tree_seed })
      (pair
         (pair (oneofl content_models) (oneofl content_models))
         (pair (oneofl content_models) (pair (oneofl output_models) (int_bound 10_000)))))

let arb_schema_case = QCheck.make ~print:print_schema_case gen_schema_case

(* A tree conforming to [schema], rooted at element [r]: each element's
   children spell a word of its content model (sampled from the
   enumeration, shortest — empty — word once the fuel runs out), [data]
   becomes a text leaf and function symbols become unexpanded
   [<axml:call>] elements with one data parameter. *)
let conforming_tree ?(root = "r") schema ~seed =
  let rng = Random.State.make [| 0xD0C5; seed |] in
  let texts = [| "x"; "1"; "magic"; "a&b" |] in
  let rec of_symbol fuel sym =
    if sym = Schema.data_keyword then
      Tree.text texts.(Random.State.int rng (Array.length texts))
    else if Schema.is_function_symbol schema sym then
      Tree.element Doc.call_elem_name ~attrs:[ ("name", sym) ] [ Tree.text "arg" ]
    else
      let children =
        match Schema.find_element schema sym with
        | None -> []
        | Some r -> (
          let alphabet = List.sort_uniq compare (Regex.symbols r) in
          match Regex.enumerate ~max_len:4 ~limit:64 ~alphabet r with
          | [] -> []
          | shortest :: _ as words ->
            let word =
              if fuel <= 0 then shortest
              else List.nth words (Random.State.int rng (List.length words))
            in
            List.map (of_symbol (fuel - 1)) word)
      in
      Tree.element sym children
  in
  of_symbol (3 + Random.State.int rng 3) root

(* ------------------------------------------------------------------ *)
(* Binding signatures — the differential-oracle vocabulary (Def. 4). *)

(* Synthetic queries bind no variables, so compare full binding
   signatures: variable bindings plus serialized result subtrees.
   Result-node pids are dropped — pattern-node ids are globally unique,
   so re-parsing the query in a second instance shifts them; the list is
   sorted by pid, so position identifies the result node. *)
let signature (b : Eval.binding) =
  ( b.Eval.vars,
    List.map (fun (_, n) -> Axml_xml.Print.to_string (Doc.node_to_xml n)) b.Eval.results )

let tuples answers = List.sort_uniq compare (List.map signature answers)
let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* ------------------------------------------------------------------ *)
(* Fault cases: a seeded document plus a seeded fault schedule. *)

type fault_case = {
  doc_seed : int;
  fault_seed : int;
  rate : float;
  permanent : bool;
      (* total outage: attempts that dodge the Flaky drop hang past the
         attempt budget instead, so every call permanently fails *)
}

let print_fault_case c =
  Printf.sprintf "doc_seed=%d fault_seed=%d rate=%.2f permanent=%b" c.doc_seed
    c.fault_seed c.rate c.permanent

let gen_fault_case =
  QCheck.Gen.(
    map
      (fun ((doc_seed, fault_seed), (rate, permanent)) ->
        { doc_seed; fault_seed; rate; permanent })
      (pair (pair (int_bound 5000) (int_bound 5000)) (pair (float_bound_inclusive 0.9) bool)))

let arb_fault_case = QCheck.make ~print:print_fault_case gen_fault_case

(* Transient-only cases at rates low enough that a deep retry budget
   masks every fault with overwhelming probability. *)
let arb_transient_fault_case =
  QCheck.make ~print:print_fault_case
    QCheck.Gen.(
      map
        (fun ((doc_seed, fault_seed), rate) ->
          { doc_seed; fault_seed; rate; permanent = false })
        (pair (pair (int_bound 5000) (int_bound 5000)) (float_bound_inclusive 0.6)))

(* ------------------------------------------------------------------ *)
(* Wire garbage: hostile byte strings to throw at an AXML peer. The
   frame format is a 4-byte big-endian length followed by that many
   payload bytes — compact JSON, or the binary codec when the header's
   top bit is set (lib/net/wire.ml); every generated string is
   malformed at one of the protocol's layers. *)

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.to_string b

(* The same frame flagged as binary-codec (top bit of header byte 0). *)
let frame_bin payload =
  let b = Bytes.of_string (frame payload) in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lor 0x80));
  Bytes.to_string b

let gen_raw_bytes =
  QCheck.Gen.(map (fun l -> String.init (List.length l) (List.nth l)) (list_size (int_range 1 64) (map Char.chr (int_bound 255))))

type garbage =
  | Random_bytes of string  (* arbitrary bytes, header included *)
  | Truncated_header of string  (* fewer than 4 bytes, then EOF *)
  | Truncated_payload of string * int  (* header promises more than sent *)
  | Oversize of int  (* length prefix above max_frame *)
  | Non_positive of int  (* zero or negative length prefix *)
  | Not_json of string  (* well-framed, payload isn't JSON *)
  | Wrong_envelope of string  (* well-framed valid JSON, bad envelope *)
  | Binary_random of string  (* binary-flagged frame over arbitrary bytes *)
  | Binary_truncated of string * int  (* binary header promises more than sent *)
  | Binary_bad_tag of string  (* binary frame opening on an unknown message tag *)
  | Binary_oversize of int  (* binary flag + length prefix above max_frame *)

let print_garbage g =
  let hex s = String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s)))) in
  match g with
  | Random_bytes s -> Printf.sprintf "random bytes %s" (hex s)
  | Truncated_header s -> Printf.sprintf "truncated header %s" (hex s)
  | Truncated_payload (s, n) -> Printf.sprintf "payload %s cut to %d bytes" (hex s) n
  | Oversize n -> Printf.sprintf "oversize length %d" n
  | Non_positive n -> Printf.sprintf "non-positive length %d" n
  | Not_json s -> Printf.sprintf "non-JSON payload %S" s
  | Wrong_envelope s -> Printf.sprintf "wrong envelope %s" s
  | Binary_random s -> Printf.sprintf "binary random payload %s" (hex s)
  | Binary_truncated (s, n) -> Printf.sprintf "binary payload %s cut to %d bytes" (hex s) n
  | Binary_bad_tag s -> Printf.sprintf "binary bad tag %s" (hex s)
  | Binary_oversize n -> Printf.sprintf "binary oversize length %d" n

(* The bytes a client would actually write for this garbage. *)
let garbage_bytes = function
  | Random_bytes s -> s
  | Truncated_header s -> s
  | Truncated_payload (payload, sent) ->
    let full = frame payload in
    String.sub full 0 (min (String.length full) (4 + sent))
  | Oversize n | Non_positive n ->
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    Bytes.to_string b
  | Not_json s -> frame s
  | Wrong_envelope s -> frame s
  | Binary_random s -> frame_bin s
  | Binary_truncated (payload, sent) ->
    let full = frame_bin payload in
    String.sub full 0 (min (String.length full) (4 + sent))
  | Binary_bad_tag s -> frame_bin s
  | Binary_oversize n ->
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lor 0x80));
    Bytes.to_string b

let gen_garbage =
  QCheck.Gen.(
    let envelopes =
      oneofl
        [
          {|{"type":"frobnicate"}|};
          {|{"no_type":1}|};
          {|[1,2,3]|};
          {|"hello"|};
          {|{"type":"invoke"}|};
          {|{"type":"result","id":"not an int"}|};
          {|{"type":"hello","version":"high"}|};
        ]
    in
    frequency
      [
        (3, map (fun s -> Random_bytes s) gen_raw_bytes);
        (2, map (fun s -> Truncated_header (String.sub s 0 (min 3 (String.length s)))) gen_raw_bytes);
        ( 2,
          map2
            (fun s sent -> Truncated_payload (s, sent))
            gen_raw_bytes (int_bound 8) );
        (1, map (fun n -> Oversize (64 * 1024 * 1024 + 1 + n)) (int_bound 1000));
        (1, map (fun n -> Non_positive (-n)) (int_bound 1000));
        (2, map (fun s -> Not_json ("not json " ^ s)) (oneofl [ "{"; "}"; "<xml/>"; "" ]));
        (2, map (fun s -> Wrong_envelope s) envelopes);
        (2, map (fun s -> Binary_random s) gen_raw_bytes);
        ( 2,
          map2
            (fun s sent -> Binary_truncated (s, sent))
            gen_raw_bytes (int_bound 8) );
        ( 2,
          map2
            (fun tag s -> Binary_bad_tag (String.make 1 (Char.chr tag) ^ s))
            (int_range 8 255) gen_raw_bytes );
        (1, map (fun n -> Binary_oversize (64 * 1024 * 1024 + 1 + n)) (int_bound 1000));
      ])

let arb_garbage = QCheck.make ~print:print_garbage gen_garbage
