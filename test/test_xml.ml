(* Tests for the XML substrate: trees, parser, printer. *)

module Tree = Axml_xml.Tree
module Parse = Axml_xml.Parse
module Print = Axml_xml.Print

let tree : Tree.t Alcotest.testable = Alcotest.testable Tree.pp Tree.equal

let e = Tree.element
let t = Tree.text

(* ------------------------------------------------------------------ *)
(* Tree basics *)

let sample =
  e "hotel"
    [ e "name" [ t "Best Western" ]; e "address" [ t "75, 2nd Av." ]; e "rating" [ t "5" ] ]

let test_size () =
  Alcotest.(check int) "size" 7 (Tree.size sample);
  Alcotest.(check int) "leaf size" 1 (Tree.size (t "x"));
  Alcotest.(check int) "empty element" 1 (Tree.size (e "a" []))

let test_depth () =
  Alcotest.(check int) "depth" 3 (Tree.depth sample);
  Alcotest.(check int) "leaf" 1 (Tree.depth (t "x"))

let test_text_content () =
  Alcotest.(check string) "concatenated" "Best Western75, 2nd Av.5" (Tree.text_content sample)

let test_accessors () =
  Alcotest.(check (option string)) "name" (Some "hotel") (Tree.name sample);
  Alcotest.(check (option string)) "text has no name" None (Tree.name (t "x"));
  let with_attr = e ~attrs:[ ("id", "7") ] "a" [] in
  Alcotest.(check (option string)) "attr" (Some "7") (Tree.attr "id" with_attr);
  Alcotest.(check (option string)) "missing attr" None (Tree.attr "x" with_attr)

let test_find_all () =
  let names = Tree.find_all (fun n -> Tree.name n = Some "name") sample in
  Alcotest.(check int) "one name element" 1 (List.length names)

let test_equal_unordered () =
  let a = e "r" [ e "a" []; e "b" [] ] in
  let b = e "r" [ e "b" []; e "a" [] ] in
  Alcotest.(check bool) "ordered differ" false (Tree.equal a b);
  Alcotest.(check bool) "unordered equal" true (Tree.equal_unordered a b);
  let c = e "r" [ e "a" []; e "a" [] ] in
  Alcotest.(check bool) "multiset sensitive" false (Tree.equal_unordered a c)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_simple () =
  let got = Parse.tree "<hotel><name>Best Western</name></hotel>" in
  Alcotest.check tree "parsed" (e "hotel" [ e "name" [ t "Best Western" ] ]) got

let test_parse_attrs () =
  let got = Parse.tree {|<call name="getRating" mode='lazy'/>|} in
  Alcotest.check tree "attrs"
    (e ~attrs:[ ("name", "getRating"); ("mode", "lazy") ] "call" [])
    got

let test_parse_entities () =
  let got = Parse.tree "<a>x &amp; y &lt; z &gt; &quot;w&quot; &apos;v&apos;</a>" in
  Alcotest.check tree "entities" (e "a" [ t {|x & y < z > "w" 'v'|} ]) got

let test_parse_numeric_refs () =
  let got = Parse.tree "<a>&#65;&#x42;</a>" in
  Alcotest.check tree "numeric" (e "a" [ t "AB" ]) got

let test_parse_cdata () =
  let got = Parse.tree "<a><![CDATA[<raw> & stuff]]></a>" in
  Alcotest.check tree "cdata" (e "a" [ t "<raw> & stuff" ]) got

let test_parse_comments_pi_doctype () =
  let src =
    {|<?xml version="1.0"?><!DOCTYPE guide [<!ELEMENT a ANY>]><!-- hi --><a><!-- in --><b/></a><!-- bye -->|}
  in
  Alcotest.check tree "prolog skipped" (e "a" [ e "b" [] ]) (Parse.tree src)

let test_parse_whitespace () =
  let got = Parse.tree "<a>\n  <b/>\n  <c/>\n</a>" in
  Alcotest.check tree "inter-element space dropped" (e "a" [ e "b" []; e "c" [] ]) got;
  let mixed = Parse.tree "<a> x <b/></a>" in
  Alcotest.check tree "mixed content kept" (e "a" [ t " x "; e "b" [] ]) mixed

let test_parse_forest () =
  let got = Parse.forest "<a/><b>x</b>" in
  Alcotest.(check int) "two trees" 2 (List.length got)

let expect_error src =
  match Parse.tree src with
  | exception Parse.Error _ -> ()
  | _ -> Alcotest.failf "expected a parse error on %S" src

let test_parse_errors () =
  expect_error "<a>";
  expect_error "<a></b>";
  expect_error "<a";
  expect_error "";
  expect_error "<a/><b/>";
  expect_error "<a>&unknown;</a>";
  expect_error "<a x=5/>"

let test_error_position () =
  match Parse.tree "<a>\n<b></c>\n</a>" with
  | exception Parse.Error { line; _ } -> Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "expected an error"

(* ------------------------------------------------------------------ *)
(* Printer *)

let test_print_roundtrip_sample () =
  let s = Print.to_string sample in
  Alcotest.check tree "roundtrip" sample (Parse.tree s)

let test_print_escapes () =
  let tr = e ~attrs:[ ("k", {|a"b<c&|}) ] "x" [ t "1 < 2 & 3" ] in
  let s = Print.to_string tr in
  Alcotest.check tree "escape roundtrip" tr (Parse.tree s)

let test_print_indent () =
  let s = Print.to_string ~indent:2 (e "a" [ e "b" []; e "c" [ t "v" ] ]) in
  Alcotest.(check bool) "has newlines" true (String.contains s '\n');
  Alcotest.check tree "indent roundtrip" (e "a" [ e "b" []; e "c" [ t "v" ] ]) (Parse.tree s)

let test_byte_size () =
  Alcotest.(check int) "byte size" (String.length (Print.to_string sample)) (Print.byte_size sample)

(* ------------------------------------------------------------------ *)
(* Property: parse ∘ print = id on generated trees *)

(* Generators and text-merge normalization are shared with the other
   suites; see test/gen.ml. *)
let arb_tree = Gen.arb_tree
let merge_text = Gen.merge_text

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print t) = t (modulo text merging)" ~count:500 arb_tree
    (fun tr ->
      let printed = Print.to_string tr in
      Tree.equal (merge_text tr) (Parse.tree printed))

let prop_roundtrip_indented =
  QCheck.Test.make ~name:"parse (print ~indent t) = t" ~count:200 arb_tree (fun tr ->
      let printed = Print.to_string ~indent:2 tr in
      Tree.equal (merge_text tr) (Parse.tree printed))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "xml"
    [
      ( "tree",
        [
          quick "size" test_size;
          quick "depth" test_depth;
          quick "text_content" test_text_content;
          quick "accessors" test_accessors;
          quick "find_all" test_find_all;
          quick "equal_unordered" test_equal_unordered;
        ] );
      ( "parse",
        [
          quick "simple" test_parse_simple;
          quick "attributes" test_parse_attrs;
          quick "entities" test_parse_entities;
          quick "numeric refs" test_parse_numeric_refs;
          quick "cdata" test_parse_cdata;
          quick "comments/PI/doctype" test_parse_comments_pi_doctype;
          quick "whitespace" test_parse_whitespace;
          quick "forest" test_parse_forest;
          quick "errors" test_parse_errors;
          quick "error position" test_error_position;
        ] );
      ( "print",
        [
          quick "roundtrip sample" test_print_roundtrip_sample;
          quick "escapes" test_print_escapes;
          quick "indent" test_print_indent;
          quick "byte size" test_byte_size;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_indented;
        ] );
    ]
