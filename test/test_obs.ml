(* Tests for the observability subsystem: the JSON printer/parser, span
   algebra (nesting, merge, exception safety), serialization round-trips
   (JSONL and Chrome trace_event), the metrics registry, and the
   differential reconciliation guarantee — on a seeded faulty workload
   the metrics totals and trace rollups equal the evaluator's printed
   report field for field. *)

module Json = Axml_obs.Json
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Obs = Axml_obs.Obs
module Doc = Axml_doc
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module Naive = Axml_core.Naive
module Engine = Axml_engine.Engine
module Lazy_eval = Axml_core.Lazy_eval
module City = Axml_workload.City

let feq = Alcotest.(check (float 1e-6))

let with_temp_file suffix f =
  let path = Filename.temp_file "axml_obs_test" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* a deterministic strictly-increasing wall clock *)
let ticker () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 0.001;
    !t

(* ------------------------------------------------------------------ *)
(* JSON *)

let kitchen_sink =
  Json.Obj
    [
      ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("int", Json.Int (-42));
      ("float", Json.Float 0.1250);
      ("whole float", Json.Float 2.0);
      ("string", Json.String "a\"b\\c\nd\te\r\x01f");
      ("nested", Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Obj [] ]) ]);
      ("empty list", Json.List []);
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match Json.parse (Json.to_string ~indent kitchen_sink) with
      | Error m -> Alcotest.failf "parse failed (indent %d): %s" indent m
      | Ok v ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip at indent %d" indent)
          true (v = kitchen_sink))
    [ 0; 2 ]

let test_json_parse_errors () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error on %S" src)
    [ "{"; "[1,]"; "tru"; "1 x"; "\"unterminated"; "{\"a\" 1}"; "" ]

let test_json_accessors () =
  let j = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5 ]); ("s", Json.String "x") ] in
  Alcotest.(check bool) "member missing" true (Json.member "zzz" j = Json.Null);
  Alcotest.(check bool) "member on scalar" true (Json.member "a" (Json.Int 3) = Json.Null);
  Alcotest.(check int) "list length" 2 (List.length (Json.to_list (Json.member "a" j)));
  Alcotest.(check (option string)) "string" (Some "x") (Json.string_value (Json.member "s" j));
  Alcotest.(check (option int)) "int of float is None" None (Json.int_value (Json.Float 2.5));
  feq "float accepts int" 3.0 (Option.get (Json.float_value (Json.Int 3)))

let test_json_lines () =
  with_temp_file ".jsonl" (fun path ->
      let oc = open_out path in
      output_string oc "{\"a\": 1}\n\n17\n\"s\"\n";
      close_out oc;
      match Json.parse_lines path with
      | Error m -> Alcotest.fail m
      | Ok vs -> Alcotest.(check int) "three non-empty lines" 3 (List.length vs))

let test_json_escapes () =
  match Json.parse {|"a\nbA\t\\"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "escapes" "a\nbA\t\\" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error m -> Alcotest.fail m

(* Adversarial inputs: unicode escapes, control characters, integer
   extremes and deep nesting must round-trip; near-miss garbage must be
   rejected, not silently accepted. *)

let test_json_unicode_escapes () =
  let cases =
    [
      ("\"\\u0041\"", "A");
      ("\"\\u00e9\"", "\xc3\xa9");  (* 2-byte UTF-8 *)
      ("\"\\u20AC\"", "\xe2\x82\xac");  (* 3-byte UTF-8, uppercase hex *)
      ("\"\\u0000\"", "\x00");
      ("\"\\u001f\\u007F\"", "\x1f\x7f");
    ]
  in
  List.iter
    (fun (src, expected) ->
      match Json.parse src with
      | Ok (Json.String s) -> Alcotest.(check string) src expected s
      | Ok _ -> Alcotest.failf "%s: not a string" src
      | Error m -> Alcotest.failf "%s: %s" src m)
    cases;
  (* whatever the printer emits for control characters must load back *)
  let hostile = Json.String "\x00\x01\x1f \"quote\" \\back\\ \xc3\xa9 \xe2\x82\xac" in
  match Json.parse (Json.to_string hostile) with
  | Ok v -> Alcotest.(check bool) "control chars round-trip" true (v = hostile)
  | Error m -> Alcotest.fail m

let test_json_unicode_rejection () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "accepted %S as %s" src (Json.to_string v))
    [
      {|"\u12_3"|};  (* int_of_string leniency: underscores are not hex *)
      {|"\u 123"|};
      {|"\u12"|};  (* truncated *)
      {|"\uZZZZ"|};
      {|"\u0x41"|};
      {|"\q"|};
    ]

let test_json_int_extremes () =
  List.iter
    (fun i ->
      match Json.parse (Json.to_string (Json.Int i)) with
      | Ok (Json.Int j) -> Alcotest.(check int) (string_of_int i) i j
      | Ok _ -> Alcotest.failf "%d did not come back as an int" i
      | Error m -> Alcotest.fail m)
    [ 0; -1; 1; max_int; min_int; max_int - 1; min_int + 1 ]

let test_json_deep_nesting () =
  let depth = 500 in
  let rec build d = if d = 0 then Json.Int 7 else Json.Obj [ ("k", build (d - 1)) ] in
  let rec probe d j =
    if d = 0 then Alcotest.(check bool) "leaf" true (j = Json.Int 7)
    else probe (d - 1) (Json.member "k" j)
  in
  let deep = build depth in
  match Json.parse (Json.to_string deep) with
  | Ok v -> probe depth v
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Trace: span algebra *)

let test_span_nesting () =
  let tr = Trace.create ~clock:(ticker ()) () in
  let a = Trace.open_span tr ~cat:"outer" "a" in
  let b = Trace.open_span tr ~attrs:[ ("k", Trace.Int 1); ("keep", Trace.Bool true) ] "b" in
  Trace.instant tr ~attrs:[ ("note", Trace.Str "hi") ] "i";
  Trace.close_span tr ~attrs:[ ("k", Trace.Int 2) ] b;
  Trace.close_span tr a;
  (match Trace.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "well_formed: %s" m);
  match Trace.tree tr with
  | Error m -> Alcotest.fail m
  | Ok [ root ] ->
    Alcotest.(check string) "root" "a" root.Trace.node_name;
    Alcotest.(check string) "category" "outer" root.Trace.node_cat;
    (match root.Trace.children with
    | [ b_node ] ->
      Alcotest.(check string) "child" "b" b_node.Trace.node_name;
      (* close attrs win on duplicate keys, open-only attrs survive *)
      Alcotest.(check bool) "close wins" true
        (List.assoc "k" b_node.Trace.node_attrs = Trace.Int 2);
      Alcotest.(check bool) "open attr kept" true
        (List.assoc "keep" b_node.Trace.node_attrs = Trace.Bool true);
      (match b_node.Trace.children with
      | [ i_node ] ->
        Alcotest.(check string) "instant nested" "i" i_node.Trace.node_name;
        feq "instants have no width" 0.0 (i_node.Trace.wall_end -. i_node.Trace.wall_start)
      | _ -> Alcotest.fail "instant not attached to b")
    | _ -> Alcotest.fail "b not attached to a")
  | Ok _ -> Alcotest.fail "expected one root"

let test_lifo_violation_detected () =
  let tr = Trace.create ~clock:(ticker ()) () in
  let a = Trace.open_span tr "a" in
  let _b = Trace.open_span tr "b" in
  Trace.close_span tr a;
  match Trace.well_formed tr with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "closing out of LIFO order must not be well-formed"

let test_unclosed_span_detected () =
  let tr = Trace.create ~clock:(ticker ()) () in
  let _a = Trace.open_span tr "a" in
  match Trace.well_formed tr with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "an open span must not be well-formed"

let test_with_span_closes_on_raise () =
  let tr = Trace.create ~clock:(ticker ()) () in
  (try Trace.with_span tr "risky" (fun () -> failwith "boom") with Failure _ -> ());
  (match Trace.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "well_formed after raise: %s" m);
  match Trace.tree tr with
  | Ok [ n ] ->
    Alcotest.(check bool) "raised attr recorded" true
      (List.mem_assoc "raised" n.Trace.node_attrs)
  | _ -> Alcotest.fail "expected exactly the closed risky span"

let test_sim_clock () =
  let tr = Trace.create ~clock:(ticker ()) () in
  let a = Trace.open_span tr "a" in
  Trace.advance tr 1.5;
  Trace.advance tr 0.5;
  feq "advance accumulates" 2.0 (Trace.sim_now tr);
  Trace.close_span tr a;
  match Trace.tree tr with
  | Ok [ n ] ->
    feq "span saw the simulated interval" 2.0 (n.Trace.sim_end -. n.Trace.sim_start)
  | _ -> Alcotest.fail "tree"

let test_null_trace_is_free () =
  let tr = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  let s = Trace.open_span tr ~attrs:[ ("k", Trace.Int 1) ] "a" in
  Alcotest.(check bool) "none handle" true (s = Trace.none);
  Trace.advance tr 5.0;
  Trace.close_span tr s;
  Trace.instant tr "i";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.events tr));
  feq "sim untouched" 0.0 (Trace.sim_now tr);
  Alcotest.(check bool) "vacuously well-formed" true (Trace.well_formed tr = Ok ())

(* ------------------------------------------------------------------ *)
(* Trace: serialization round-trips *)

let sample_trace () =
  let tr = Trace.create ~clock:(ticker ()) () in
  let root = Trace.open_span tr ~cat:"eval" ~attrs:[ ("q", Trace.Str "city") ] "eval.run" in
  let round = Trace.open_span tr ~attrs:[ ("calls", Trace.Int 2) ] "eval.round" in
  let inv = Trace.open_span tr ~cat:"service" ~attrs:[ ("bytes", Trace.Int 10) ] "service.invoke" in
  Trace.advance tr 0.25;
  Trace.close_span tr inv;
  let inv2 = Trace.open_span tr ~cat:"service" ~attrs:[ ("bytes", Trace.Int 32) ] "service.invoke" in
  Trace.advance tr 0.25;
  Trace.close_span tr inv2;
  Trace.close_span tr ~attrs:[ ("batch_cost_s", Trace.Float 0.5) ] round;
  Trace.instant tr "eval.note";
  Trace.close_span tr root;
  tr

let rec flatten (n : Trace.node) = n :: List.concat_map flatten n.Trace.children
let flatten_forest ns = List.concat_map flatten ns
let names ns = List.map (fun (n : Trace.node) -> n.Trace.node_name) (flatten_forest ns)

let test_jsonl_roundtrip () =
  let tr = sample_trace () in
  let expected = match Trace.tree tr with Ok ns -> ns | Error m -> Alcotest.fail m in
  with_temp_file ".jsonl" (fun path ->
      Trace.write_jsonl path tr;
      match Trace.load_file path with
      | Error m -> Alcotest.fail m
      | Ok loaded ->
        (* JSONL is the exact format: the loaded forest is the original *)
        Alcotest.(check bool) "identical forest" true (loaded = expected))

let test_chrome_roundtrip () =
  let tr = sample_trace () in
  let expected = match Trace.tree tr with Ok ns -> ns | Error m -> Alcotest.fail m in
  with_temp_file ".trace.json" (fun path ->
      Trace.write_chrome path tr;
      match Trace.load_file path with
      | Error m -> Alcotest.fail m
      | Ok loaded ->
        Alcotest.(check (list string)) "same span structure" (names expected) (names loaded);
        let pick which ns =
          List.filter (fun (n : Trace.node) -> n.Trace.node_name = which) (flatten_forest ns)
        in
        List.iter2
          (fun (a : Trace.node) (b : Trace.node) ->
            Alcotest.(check bool) "attrs survive args" true
              (List.assoc "bytes" a.Trace.node_attrs = List.assoc "bytes" b.Trace.node_attrs);
            feq "sim interval survives" (a.Trace.sim_end -. a.Trace.sim_start)
              (b.Trace.sim_end -. b.Trace.sim_start))
          (pick "service.invoke" expected) (pick "service.invoke" loaded))

let test_chrome_closes_partial_traces () =
  let tr = Trace.create ~clock:(ticker ()) () in
  let _root = Trace.open_span tr "eval.run" in
  let inner = Trace.open_span tr "eval.round" in
  Trace.close_span tr inner;
  (* the root is still open: the Chrome writer synthesizes its end *)
  with_temp_file ".trace.json" (fun path ->
      Trace.write_chrome path tr;
      match Trace.load_file path with
      | Error m -> Alcotest.fail m
      | Ok [ root ] ->
        Alcotest.(check string) "root survived" "eval.run" root.Trace.node_name;
        Alcotest.(check int) "child survived" 1 (List.length root.Trace.children)
      | Ok _ -> Alcotest.fail "expected one root")

let test_chrome_is_valid_trace_event_json () =
  let tr = sample_trace () in
  let json = Trace.to_chrome tr in
  (* re-parse what we print; check the trace_event envelope *)
  match Json.parse (Json.to_string json) with
  | Error m -> Alcotest.fail m
  | Ok j ->
    let evs = Json.to_list (Json.member "traceEvents" j) in
    Alcotest.(check bool) "has events" true (List.length evs > 0);
    List.iter
      (fun ev ->
        let ph = Json.string_value (Json.member "ph" ev) in
        Alcotest.(check bool) "known phase" true
          (match ph with Some ("B" | "E" | "i" | "M") -> true | _ -> false);
        match ph with
        | Some "M" -> ()
        | _ ->
          Alcotest.(check bool) "timestamped" true (Json.float_value (Json.member "ts" ev) <> None);
          Alcotest.(check bool) "on a known thread" true
            (match Json.int_value (Json.member "tid" ev) with Some (1 | 2) -> true | _ -> false))
      evs

let test_rollup () =
  let tr = sample_trace () in
  match Trace.tree tr with
  | Ok [ root ] -> Alcotest.(check int) "bytes rollup" 42 (Trace.rollup_int "bytes" root)
  | _ -> Alcotest.fail "tree"

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counters () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  Alcotest.(check int) "count" 5 (Metrics.count m "c");
  Metrics.incr m ~labels:[ ("service", "a") ] "svc";
  Metrics.incr m ~labels:[ ("service", "b") ] ~by:2 "svc";
  (* label order at the call site is irrelevant *)
  Metrics.incr m ~labels:[ ("x", "1"); ("service", "a") ] "svc2";
  Metrics.incr m ~labels:[ ("service", "a"); ("x", "1") ] "svc2";
  Alcotest.(check int) "per-label" 1 (Metrics.count m ~labels:[ ("service", "a") ] "svc");
  Alcotest.(check int) "total over labels" 3 (Metrics.total_count m "svc");
  Alcotest.(check int) "sorted labels collapse" 2 (Metrics.total_count m "svc2");
  Metrics.add m "f" 0.25;
  Metrics.add m "f" 0.5;
  feq "float counter" 0.75 (Metrics.value m "f");
  Alcotest.(check int) "unrecorded reads zero" 0 (Metrics.count m "nope")

let test_counter_rejects_negative () =
  let m = Metrics.create () in
  (match Metrics.incr m ~by:(-1) "c" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative incr must raise");
  match Metrics.add m "c" (-0.5) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative add must raise"

let test_gauges_and_kind_mismatch () =
  let m = Metrics.create () in
  Metrics.set m "g" 3.0;
  Metrics.set m "g" 1.5;
  feq "last write wins" 1.5 (Metrics.value m "g");
  (match Metrics.incr m "g" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "incr on a gauge must raise");
  Metrics.incr m "c";
  match Metrics.observe m "c" 1.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "observe into a counter must raise"

let test_histograms () =
  let m = Metrics.create () in
  let buckets = [ 0.1; 1.0; 10.0 ] in
  List.iter (fun v -> Metrics.observe m ~buckets "h" v) [ 0.05; 0.5; 0.5; 5.0; 50.0 ];
  Alcotest.(check int) "observation count" 5 (Metrics.total_count m "h");
  feq "observation sum" 56.05 (Metrics.total m "h");
  let snap = Metrics.snapshot m in
  let hists = Json.to_list (Json.member "histograms" snap) in
  match hists with
  | [ h ] ->
    Alcotest.(check (option string)) "name" (Some "h") (Json.string_value (Json.member "name" h));
    let cumulative =
      List.map
        (fun b -> Option.get (Json.int_value (Json.member "count" b)))
        (Json.to_list (Json.member "buckets" h))
    in
    (* cumulative counts over le 0.1 / 1.0 / 10.0 / inf *)
    Alcotest.(check (list int)) "cumulative buckets" [ 1; 3; 4; 5 ] cumulative
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_quantiles () =
  let m = Metrics.create () in
  let buckets = [ 0.1; 1.0; 10.0 ] in
  List.iter (fun v -> Metrics.observe m ~buckets "h" v) [ 0.05; 0.5; 0.5; 5.0; 50.0 ];
  (* p50: rank 2.5 crosses in (0.1, 1.0], two observations inside,
     1.5 of them below the rank → 0.1 + 0.9 · 0.75 *)
  (match Metrics.quantile m "h" 0.5 with
  | None -> Alcotest.fail "p50 missing"
  | Some v -> feq "p50 interpolates inside its bucket" 0.775 v);
  (* p95: rank 4.75 lands on the overflow observation (50.0), which
     clamps to the last finite upper bound *)
  (match Metrics.quantile m "h" 0.95 with
  | None -> Alcotest.fail "p95 missing"
  | Some v -> feq "p95 clamps to the last finite bound" 10.0 v);
  (* q = 1 with everything inside the finite buckets reaches the
     enclosing bucket's upper bound *)
  let m2 = Metrics.create () in
  Metrics.observe m2 ~buckets "h" 0.5;
  (match Metrics.quantile m2 "h" 1.0 with
  | None -> Alcotest.fail "q=1 missing"
  | Some v -> feq "q=1 is the bucket upper bound" 1.0 v);
  (* labels address distinct histograms *)
  Metrics.observe m ~labels:[ ("shard", "r1") ] ~buckets "h" 0.05;
  (match Metrics.quantile m ~labels:[ ("shard", "r1") ] "h" 0.5 with
  | None -> Alcotest.fail "labeled p50 missing"
  | Some v -> feq "labeled histogram is its own" 0.05 v);
  (* every no-answer case is None, never an exception *)
  Alcotest.(check (option (float 0.0))) "q out of range (high)" None (Metrics.quantile m "h" 1.5);
  Alcotest.(check (option (float 0.0)))
    "q out of range (negative)" None
    (Metrics.quantile m "h" (-0.1));
  Alcotest.(check (option (float 0.0))) "missing instrument" None (Metrics.quantile m "nope" 0.5);
  Metrics.incr m "c";
  Alcotest.(check (option (float 0.0))) "not a histogram" None (Metrics.quantile m "c" 0.5);
  Alcotest.(check (option (float 0.0)))
    "disabled registry" None
    (Metrics.quantile Metrics.null "h" 0.5)

let test_snapshot_shape () =
  let m = Metrics.create () in
  Metrics.incr m ~labels:[ ("service", "x") ] "b";
  Metrics.incr m "a";
  Metrics.set m "g" 2.0;
  let snap = Metrics.snapshot m in
  match Json.parse (Json.to_string ~indent:2 snap) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    let counters = Json.to_list (Json.member "counters" j) in
    let names = List.filter_map (fun c -> Json.string_value (Json.member "name" c)) counters in
    (* sorted by name so snapshots diff cleanly *)
    Alcotest.(check (list string)) "sorted counters" [ "a"; "b" ] names;
    Alcotest.(check int) "one gauge" 1 (List.length (Json.to_list (Json.member "gauges" j)))

let test_null_metrics_is_free () =
  let m = Metrics.null in
  Alcotest.(check bool) "disabled" false (Metrics.enabled m);
  Metrics.incr m "c";
  Metrics.observe m "h" 1.0;
  Metrics.set m "g" 1.0;
  Alcotest.(check int) "records nothing" 0 (Metrics.count m "c");
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "empty snapshot" 0 (List.length (Json.to_list (Json.member "counters" snap)))

(* ------------------------------------------------------------------ *)
(* Differential reconciliation: on a seeded faulty workload, the
   metrics totals and the trace rollups must equal the evaluator's
   report field for field — the instrumentation is an independent
   accounting path for the same quantities. *)

let int_attr k (n : Trace.node) =
  match List.assoc_opt k n.Trace.node_attrs with Some (Trace.Int i) -> i | _ -> 0

let float_attr k (n : Trace.node) =
  match List.assoc_opt k n.Trace.node_attrs with
  | Some (Trace.Float f) -> f
  | Some (Trace.Int i) -> float_of_int i
  | _ -> 0.0

let spans_named name forest =
  List.filter (fun (n : Trace.node) -> n.Trace.node_name = name) (flatten_forest forest)

let sum_int k ns = List.fold_left (fun acc n -> acc + int_attr k n) 0 ns
let sum_float k ns = List.fold_left (fun acc n -> acc +. float_attr k n) 0.0 ns

let faulty_city ?(rate = 0.5) () =
  let inst = City.generate { City.default_config with City.hotels = 25 } in
  Registry.inject_faults inst.City.registry ~seed:7 [ Faults.Flaky rate ];
  Registry.set_retry_policy inst.City.registry
    {
      Registry.default_policy with
      Registry.max_retries = 6;
      base_backoff = 0.05;
      max_backoff = 0.4;
    };
  inst

let test_lazy_reconciliation () =
  let inst = faulty_city () in
  let obs = Obs.create () in
  let r =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~obs inst.City.query
      inst.City.doc
  in
  (* the workload must actually exercise the fault machinery *)
  Alcotest.(check bool) "faults were hit" true (r.Lazy_eval.retries > 0);
  let m = obs.Obs.metrics in
  (* metrics vs report: the eval.* counters *)
  Alcotest.(check int) "invoked" r.Lazy_eval.invoked (Metrics.count m "eval.invoked");
  Alcotest.(check int) "pushed" r.Lazy_eval.pushed (Metrics.count m "eval.pushed");
  Alcotest.(check int) "rounds" r.Lazy_eval.rounds (Metrics.count m "eval.rounds");
  Alcotest.(check int) "passes" r.Lazy_eval.passes (Metrics.count m "eval.passes");
  Alcotest.(check int) "detections" r.Lazy_eval.relevance_evals
    (Metrics.count m "eval.relevance_evals");
  Alcotest.(check int) "retries" r.Lazy_eval.retries (Metrics.count m "eval.retries");
  Alcotest.(check int) "timeouts" r.Lazy_eval.timeouts (Metrics.count m "eval.timeouts");
  Alcotest.(check int) "failed calls" r.Lazy_eval.failed_calls (Metrics.count m "eval.failed_calls");
  Alcotest.(check int) "bytes" r.Lazy_eval.bytes_transferred (Metrics.count m "eval.bytes");
  feq "backoff" r.Lazy_eval.backoff_seconds (Metrics.value m "eval.backoff_seconds");
  feq "simulated seconds" r.Lazy_eval.simulated_seconds (Metrics.value m "eval.simulated_seconds");
  (* the service-layer counters tell the same story from below *)
  Alcotest.(check int) "service invocations"
    (r.Lazy_eval.invoked + r.Lazy_eval.failed_calls)
    (Metrics.total_count m "service.invocations");
  Alcotest.(check int) "service retries" r.Lazy_eval.retries
    (Metrics.total_count m "service.retries");
  Alcotest.(check int) "service timeouts" r.Lazy_eval.timeouts
    (Metrics.total_count m "service.timeouts");
  feq "service backoff" r.Lazy_eval.backoff_seconds (Metrics.total m "service.backoff_seconds");
  Alcotest.(check int) "service bytes" r.Lazy_eval.bytes_transferred
    (Metrics.total_count m "service.request_bytes" + Metrics.total_count m "service.response_bytes");
  (* trace rollups: the span forest is well-formed and sums to the report *)
  (match Trace.well_formed obs.Obs.trace with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace not well-formed: %s" e);
  (match Trace.tree obs.Obs.trace with
  | Error e -> Alcotest.fail e
  | Ok forest ->
    let invokes = spans_named "service.invoke" forest in
    Alcotest.(check int) "one invoke span per attempt sequence"
      (r.Lazy_eval.invoked + r.Lazy_eval.failed_calls)
      (List.length invokes);
    Alcotest.(check int) "trace bytes" r.Lazy_eval.bytes_transferred (sum_int "bytes" invokes);
    Alcotest.(check int) "trace retries" r.Lazy_eval.retries (sum_int "retries" invokes);
    Alcotest.(check int) "trace timeouts" r.Lazy_eval.timeouts (sum_int "timeouts" invokes);
    feq "trace backoff" r.Lazy_eval.backoff_seconds (sum_float "backoff_s" invokes);
    match spans_named "eval.run" forest with
    | [ root ] ->
      Alcotest.(check int) "root invoked" r.Lazy_eval.invoked (int_attr "invoked" root);
      Alcotest.(check int) "root rounds" r.Lazy_eval.rounds (int_attr "rounds" root);
      Alcotest.(check int) "root passes" r.Lazy_eval.passes (int_attr "passes" root);
      Alcotest.(check int) "root bytes" r.Lazy_eval.bytes_transferred (int_attr "bytes" root)
    | _ -> Alcotest.fail "expected exactly one eval.run root");
  (* the --report-json wire format round-trips and agrees with both *)
  match Json.parse (Json.to_string (Engine.report_to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    let field k = Option.get (Json.int_value (Json.member k j)) in
    Alcotest.(check int) "json invoked" (Metrics.count m "eval.invoked") (field "invoked");
    Alcotest.(check int) "json retries" (Metrics.count m "eval.retries") (field "retries");
    Alcotest.(check int) "json timeouts" (Metrics.count m "eval.timeouts") (field "timeouts");
    Alcotest.(check int) "json bytes" (Metrics.count m "eval.bytes") (field "bytes_transferred");
    feq "json backoff"
      (Metrics.value m "eval.backoff_seconds")
      (Option.get (Json.float_value (Json.member "backoff_seconds" j)));
    Alcotest.(check int) "json answers" (List.length r.Lazy_eval.answers)
      (List.length (Json.to_list (Json.member "answers" j)))

let test_naive_reconciliation () =
  let inst = faulty_city () in
  let obs = Obs.create () in
  let r = Naive.run ~obs inst.City.registry inst.City.query inst.City.doc in
  let m = obs.Obs.metrics in
  Alcotest.(check int) "invoked" r.Naive.invoked (Metrics.count m "eval.invoked");
  Alcotest.(check int) "rounds" r.Naive.rounds (Metrics.count m "eval.rounds");
  Alcotest.(check int) "retries" r.Naive.retries (Metrics.count m "eval.retries");
  Alcotest.(check int) "timeouts" r.Naive.timeouts (Metrics.count m "eval.timeouts");
  Alcotest.(check int) "failed" r.Naive.failed_calls (Metrics.count m "eval.failed_calls");
  Alcotest.(check int) "bytes" r.Naive.bytes_transferred (Metrics.count m "eval.bytes");
  feq "backoff" r.Naive.backoff_seconds (Metrics.value m "eval.backoff_seconds");
  (match Trace.tree obs.Obs.trace with
  | Error e -> Alcotest.fail e
  | Ok forest ->
    Alcotest.(check int) "round spans" r.Naive.rounds
      (List.length (spans_named "eval.round" forest));
    Alcotest.(check int) "invoke spans"
      (r.Naive.invoked + r.Naive.failed_calls)
      (List.length (spans_named "service.invoke" forest));
    Alcotest.(check int) "trace bytes" r.Naive.bytes_transferred
      (sum_int "bytes" (spans_named "service.invoke" forest)));
  match Json.parse (Json.to_string (Engine.report_to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Alcotest.(check (option int)) "json invoked" (Some r.Naive.invoked)
      (Json.int_value (Json.member "invoked" j))

let test_observation_does_not_perturb () =
  (* the same seeded workload, watched and unwatched, must evaluate
     identically — instrumentation reads the computation, never steers it *)
  let run obs =
    let inst = faulty_city () in
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~obs inst.City.query
      inst.City.doc
  in
  let watched = run (Obs.create ()) in
  let unwatched = run Obs.null in
  Alcotest.(check int) "invoked" unwatched.Lazy_eval.invoked watched.Lazy_eval.invoked;
  Alcotest.(check int) "rounds" unwatched.Lazy_eval.rounds watched.Lazy_eval.rounds;
  Alcotest.(check int) "retries" unwatched.Lazy_eval.retries watched.Lazy_eval.retries;
  Alcotest.(check int) "bytes" unwatched.Lazy_eval.bytes_transferred
    watched.Lazy_eval.bytes_transferred;
  feq "simulated seconds" unwatched.Lazy_eval.simulated_seconds
    watched.Lazy_eval.simulated_seconds;
  Alcotest.(check int) "answers" (List.length unwatched.Lazy_eval.answers)
    (List.length watched.Lazy_eval.answers)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "json",
        [
          quick "round-trip" test_json_roundtrip;
          quick "parse errors" test_json_parse_errors;
          quick "accessors" test_json_accessors;
          quick "jsonl" test_json_lines;
          quick "escapes" test_json_escapes;
          quick "unicode escapes" test_json_unicode_escapes;
          quick "unicode rejection" test_json_unicode_rejection;
          quick "int extremes" test_json_int_extremes;
          quick "deep nesting" test_json_deep_nesting;
        ] );
      ( "trace",
        [
          quick "span nesting and attr merge" test_span_nesting;
          quick "LIFO violation detected" test_lifo_violation_detected;
          quick "unclosed span detected" test_unclosed_span_detected;
          quick "with_span closes on raise" test_with_span_closes_on_raise;
          quick "simulated clock" test_sim_clock;
          quick "null sink is free" test_null_trace_is_free;
          quick "jsonl round-trip" test_jsonl_roundtrip;
          quick "chrome round-trip" test_chrome_roundtrip;
          quick "chrome closes partial traces" test_chrome_closes_partial_traces;
          quick "chrome envelope is valid" test_chrome_is_valid_trace_event_json;
          quick "bytes rollup" test_rollup;
        ] );
      ( "metrics",
        [
          quick "counters and labels" test_counters;
          quick "negative increments rejected" test_counter_rejects_negative;
          quick "gauges and kind mismatch" test_gauges_and_kind_mismatch;
          quick "histogram buckets" test_histograms;
          quick "histogram quantiles" test_quantiles;
          quick "snapshot shape" test_snapshot_shape;
          quick "null registry is free" test_null_metrics_is_free;
        ] );
      ( "reconciliation",
        [
          quick "lazy report = metrics = trace rollups" test_lazy_reconciliation;
          quick "naive report = metrics = trace rollups" test_naive_reconciliation;
          quick "observation does not perturb evaluation" test_observation_does_not_perturb;
        ] );
    ]
