(* Tests for tree patterns: parser, printing, embedding evaluation. *)

module Doc = Axml_doc
module P = Axml_query.Pattern
module Parser = Axml_query.Parser
module Eval = Axml_query.Eval

let parse = Parser.parse

(* ------------------------------------------------------------------ *)
(* A small city-guide document in the style of Fig. 1. *)

let sample_doc () =
  let d = Doc.create () in
  let hotel name_v addr_v rating nearby =
    Doc.elem d "hotel"
      ([ Doc.elem d "name" [ Doc.data d name_v ]; Doc.elem d "address" [ Doc.data d addr_v ] ]
      @ [ rating; Doc.elem d "nearby" nearby ])
  in
  let restaurant name_v rating_v =
    Doc.elem d "restaurant"
      [
        Doc.elem d "name" [ Doc.data d name_v ];
        Doc.elem d "rating" [ Doc.data d rating_v ];
      ]
  in
  let h1 =
    hotel "Best Western" "75, 2nd Av."
      (Doc.elem d "rating" [ Doc.data d "5" ])
      [ restaurant "Mama" "5"; restaurant "Jo" "2" ]
  in
  let h2 =
    hotel "Pennsylvania" "13 Penn St."
      (Doc.elem d "rating" [ Doc.call d "getrating" [ Doc.data d "Pennsylvania" ] ])
      [ Doc.call d "getnearbyrestos" [ Doc.data d "13 Penn St." ] ]
  in
  let root = Doc.elem d "guide" [ h1; h2; Doc.call d "gethotels" [ Doc.data d "NY" ] ] in
  Doc.set_root d root;
  d

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_and_print () =
  List.iter
    (fun src ->
      let q = parse src in
      let printed = P.to_string q in
      (* Reparse the printed form; the two queries must have the same
         shape (pids differ). *)
      let q' = parse printed in
      Alcotest.(check string) (src ^ " stable") printed (P.to_string q'))
    [
      "/guide/hotel";
      "/guide//show";
      "//show";
      "/a/*/b";
      "/a[b][c]/d!";
      {|/movies//show[title="The Hours"]/schedule!|};
      {|/guide/hotel[name="Best Western"]/nearby//restaurant[name=$X!][rating="5"]|};
      "//rating/getrating()";
      "/a/*()";
    ]

let test_parse_structure () =
  let q = parse {|/hotel[name="Best Western"]/nearby|} in
  Alcotest.(check int) "three named nodes + value" 4 (List.length (P.nodes q));
  let root = q.P.root in
  Alcotest.(check bool) "root is hotel" true (root.P.label = P.Const "hotel");
  Alcotest.(check int) "two children" 2 (List.length root.P.children)

let test_parse_result_marks () =
  let q = parse {|/a/b!/c|} in
  let results = P.result_nodes q in
  Alcotest.(check int) "one result" 1 (List.length results);
  Alcotest.(check bool) "b marked" true
    (match results with [ n ] -> n.P.label = P.Const "b" | _ -> false)

let test_parse_eq_sugar () =
  let q1 = parse {|/a[b="5"]|} and q2 = parse {|/a[b["5"]]|} in
  Alcotest.(check string) "sugar" (P.to_string q2) (P.to_string q1);
  let q3 = parse {|/a[b/c="5"]|} and q4 = parse {|/a[b[c["5"]]]|} in
  Alcotest.(check string) "deep sugar" (P.to_string q4) (P.to_string q3)

let test_parse_variables () =
  let q = parse {|/r[a=$X][b=$X][c=$Y!]|} in
  Alcotest.(check (list string)) "vars" [ "X"; "Y" ] (P.variables q)

let test_parse_functions () =
  let q = parse "/rating/getrating()" in
  Alcotest.(check bool) "has fun node" true (P.has_function_nodes q);
  let q2 = parse "/rating/*()" in
  let fnode = List.find (fun n -> n.P.label <> P.Const "rating") (P.nodes q2) in
  Alcotest.(check bool) "star fun" true (fnode.P.label = P.Fun P.Any_fun)

let test_parse_errors () =
  List.iter
    (fun src ->
      match parse src with
      | exception Parser.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" src)
    [ ""; "a"; "/a["; "/a[]"; "/a]"; "/"; "/a=$X"; "/a[b=c]" ]

(* ------------------------------------------------------------------ *)
(* Linear parts and their regexes *)

let test_linear_part () =
  let q = parse {|/guide/hotel[name="x"]/nearby//restaurant/rating|} in
  let rating =
    List.find
      (fun n -> n.P.label = P.Const "rating")
      (P.nodes q)
  in
  let lin = P.linear_part q rating in
  Alcotest.(check int) "4 steps (rating excluded)" 4 (List.length lin);
  let r = P.linear_regex lin in
  Alcotest.(check bool) "matches chain" true
    (Axml_automata.Regex.matches r [ "guide"; "hotel"; "nearby"; "x"; "restaurant" ]);
  Alcotest.(check bool) "needs restaurant last" false
    (Axml_automata.Regex.matches r [ "guide"; "hotel"; "nearby" ])

(* ------------------------------------------------------------------ *)
(* Embedding evaluation *)

let eval_count ?relax_joins src d = List.length (Eval.eval ?relax_joins (parse src) d)

let test_eval_simple () =
  let d = sample_doc () in
  Alcotest.(check int) "hotels exist" 1 (eval_count "/guide/hotel" d);
  Alcotest.(check int) "no motel" 0 (eval_count "/guide/motel" d);
  Alcotest.(check int) "root label enforced" 0 (eval_count "/hotels/hotel" d)

let test_eval_value () =
  let d = sample_doc () in
  Alcotest.(check int) "name constant" 1 (eval_count {|/guide/hotel[name="Best Western"]|} d);
  Alcotest.(check int) "absent constant" 0 (eval_count {|/guide/hotel[name="Ritz"]|} d)

let test_eval_descendant () =
  let d = sample_doc () in
  Alcotest.(check int) "descendant rating" 1 (eval_count {|/guide//rating["5"]|} d);
  (* two restaurants with distinct names *)
  let q = parse {|/guide//restaurant/name/$X!|} in
  Alcotest.(check int) "two restaurant names" 2 (List.length (Eval.eval q d))

let test_eval_result_nodes () =
  let d = sample_doc () in
  let q = parse {|/guide/hotel[name="Best Western"]/nearby/restaurant[rating="5"]/name!|} in
  match Eval.eval q d with
  | [ b ] -> (
    match b.Eval.results with
    | [ (_, n) ] ->
      let value = List.filter_map Doc.text_value n.Doc.children in
      Alcotest.(check (list string)) "Mama found" [ "Mama" ] value
    | _ -> Alcotest.fail "expected exactly one result node")
  | bs -> Alcotest.failf "expected one binding, got %d" (List.length bs)

let test_eval_variables_join () =
  let d = Doc.parse "<r><a><v>1</v></a><b><v>1</v></b><c><v>2</v></c></r>" in
  (* X must take the same value below a and b *)
  Alcotest.(check int) "join succeeds" 1 (eval_count {|/r[a/v=$X][b/v=$X]|} d);
  Alcotest.(check int) "join fails" 0 (eval_count {|/r[a/v=$X][c/v=$X]|} d);
  Alcotest.(check int) "relaxed join succeeds" 1
    (eval_count ~relax_joins:true {|/r[a/v=$X][c/v=$X]|} d)

let test_eval_homomorphism_not_injective () =
  (* Two pattern children may map to the same document node. *)
  let d = Doc.parse "<r><a/></r>" in
  Alcotest.(check int) "both a's map to one node" 1 (eval_count "/r[a][a]" d)

let test_eval_wildcard () =
  let d = sample_doc () in
  Alcotest.(check int) "wildcard step" 1 (eval_count {|/guide/*[name="Pennsylvania"]|} d)

let test_eval_function_nodes () =
  let d = sample_doc () in
  let q = parse "/guide/hotel/rating/getrating()!" in
  let target = (List.find (fun n -> n.P.result) (P.nodes q)).P.pid in
  let calls = Eval.matches_of q d ~target in
  Alcotest.(check int) "one getrating call" 1 (List.length calls);
  let q2 = parse "/guide/*()!" in
  let target2 = (List.find (fun n -> n.P.result) (P.nodes q2)).P.pid in
  Alcotest.(check int) "gethotels at guide level" 1 (List.length (Eval.matches_of q2 d ~target:target2))

let test_eval_no_match_through_calls () =
  (* Data inside a call's parameters is invisible to queries. *)
  let d = Doc.parse {|<r><axml:call name="f"><secret/></axml:call></r>|} in
  Alcotest.(check int) "not visible" 0 (eval_count "/r//secret" d);
  Alcotest.(check int) "call itself visible" 1
    (let q = parse "/r/f()!" in
     let target = (List.find (fun n -> n.P.result) (P.nodes q)).P.pid in
     List.length (Eval.matches_of q d ~target))

let test_eval_or_nodes () =
  let d = sample_doc () in
  (* rating is "5" data OR there is a getrating call under rating *)
  let alt1 = Parser.parse_relative {|"5"|} in
  let alt2 = Parser.parse_relative "getrating()" in
  let or_node = P.make P.Or (alt1 @ alt2) in
  let rating = P.make (P.Const "rating") [ or_node ] in
  let hotel = P.make ~result:true (P.Const "hotel") [ rating ] in
  let q = P.query (P.make (P.Const "guide") [ hotel ]) in
  Alcotest.(check int) "both hotels qualify" 2 (List.length (Eval.eval q d))

let test_eval_leading_descendant () =
  let d = sample_doc () in
  Alcotest.(check int) "//restaurant" 1 (eval_count {|//restaurant[name="Mama"]|} d)

(* ------------------------------------------------------------------ *)
(* Anchored matching *)

let test_anchored () =
  let d = sample_doc () in
  let q = parse {|/guide/hotel[name="Pennsylvania"]/rating/getrating()!|} in
  let target = (List.find (fun n -> n.P.result) (P.nodes q)).P.pid in
  let all_calls = Doc.function_nodes d in
  let getrating = List.find (fun n -> Doc.call_name n = Some "getrating") all_calls in
  let getrestos = List.find (fun n -> Doc.call_name n = Some "getnearbyrestos") all_calls in
  Alcotest.(check bool) "getrating matches" true (Eval.anchored_matches q ~target d getrating);
  Alcotest.(check bool) "other call does not" false (Eval.anchored_matches q ~target d getrestos);
  (* Agreement with the top-down evaluator over every call in the doc. *)
  let top_down = Eval.matches_of q d ~target in
  List.iter
    (fun c ->
      let want = List.exists (fun n -> n.Doc.id = c.Doc.id) top_down in
      Alcotest.(check bool) "agrees" want (Eval.anchored_matches q ~target d c))
    all_calls

let test_anchored_descendant () =
  let d = sample_doc () in
  let q = parse {|/guide//rating/*()!|} in
  let target = (List.find (fun n -> n.P.result) (P.nodes q)).P.pid in
  let top_down = Eval.matches_of q d ~target in
  Alcotest.(check int) "one rating call" 1 (List.length top_down);
  List.iter
    (fun c ->
      let want = List.exists (fun n -> n.Doc.id = c.Doc.id) top_down in
      Alcotest.(check bool) "agrees" want (Eval.anchored_matches q ~target d c))
    (Doc.function_nodes d)

(* ------------------------------------------------------------------ *)
(* PathStack: the streaming engine for linear chains *)

module Pathstack = Axml_query.Pathstack

let test_pathstack_linear_detection () =
  let q = parse "/a/b" in
  Alcotest.(check bool) "linear" true (Pathstack.steps_of_query q <> None);
  Alcotest.(check bool) "branching rejected" true
    (Pathstack.steps_of_query (parse "/a[b][c]") = None);
  Alcotest.(check bool) "single-predicate is a chain" true
    (Pathstack.steps_of_query (parse "/a[b]") <> None)

let ids nodes = List.sort compare (List.map (fun (n : Doc.node) -> n.Doc.id) nodes)

let pathstack_vs_eval qsrc d =
  let q = parse qsrc in
  match Pathstack.run q d with
  | None -> Alcotest.failf "%s is not linear" qsrc
  | Some got ->
    (* reference: mark the last node as result and use the tree-walker *)
    let rec last (n : P.node) = match n.P.children with [] -> n | [ c ] -> last c | _ -> assert false in
    let rec remark (n : P.node) =
      match n.P.children with
      | [] -> P.with_result n true
      | [ c ] -> P.with_children (P.with_result n false) [ remark c ]
      | _ -> assert false
    in
    let q' = P.query (remark q.P.root) in
    let target = (last q'.P.root).P.pid in
    let want = Eval.matches_of q' d ~target in
    Alcotest.(check (list int)) qsrc (ids want) (ids got)

let test_pathstack_agrees () =
  let d = sample_doc () in
  List.iter
    (fun qsrc -> pathstack_vs_eval qsrc d)
    [
      "/guide/hotel";
      "/guide//rating";
      "/guide/hotel/nearby//restaurant/name";
      "/guide//*";
      {|/guide//rating/"5"|};
      "/guide/hotel/rating/*()";
      "/guide//getrating()";
      "/guide/motel";
    ]

let test_pathstack_repeated_labels () =
  (* self-similar chains: nodes matching several steps at once *)
  let d = Doc.parse "<a><a><a><b/></a></a><b/></a>" in
  List.iter (fun qsrc -> pathstack_vs_eval qsrc d) [ "/a//a//b"; "/a/a/a"; "/a//a/b"; "//b" ]

(* ------------------------------------------------------------------ *)
(* Tuple serialization and shared contexts *)

let test_bindings_to_xml () =
  let d = sample_doc () in
  let q = parse {|/guide//restaurant[name!=$X][rating=$R]|} in
  let tuples = Eval.bindings_to_xml (Eval.eval q d) in
  Alcotest.(check int) "two tuples" 2 (List.length tuples);
  List.iter
    (fun t ->
      Alcotest.(check (option string)) "tuple element" (Some "tuple") (Axml_xml.Tree.name t);
      (* one <x> and one <r> for the variables, plus the <name> image *)
      Alcotest.(check bool) "has x child" true
        (List.exists (fun c -> Axml_xml.Tree.name c = Some "x") (Axml_xml.Tree.children t));
      Alcotest.(check bool) "has r child" true
        (List.exists (fun c -> Axml_xml.Tree.name c = Some "r") (Axml_xml.Tree.children t));
      Alcotest.(check bool) "has name image" true
        (List.exists (fun c -> Axml_xml.Tree.name c = Some "name") (Axml_xml.Tree.children t)))
    tuples

let test_shared_context_across_queries () =
  let d = sample_doc () in
  let ctx = Eval.context () in
  let q1 = parse "/guide/hotel" and q2 = parse {|/guide/hotel[name="Pennsylvania"]|} in
  (* same context reused across two different queries on one doc state *)
  Alcotest.(check int) "q1" 1 (List.length (Eval.eval_in ctx q1 d));
  Alcotest.(check int) "q2" 1 (List.length (Eval.eval_in ctx q2 d));
  (* the memo is keyed by globally-unique pids, so re-running either query
     in the same context gives the same answers *)
  Alcotest.(check int) "q1 again" 1 (List.length (Eval.eval_in ctx q1 d))

(* ------------------------------------------------------------------ *)
(* Embeddings (full homomorphisms) *)

let test_embeddings () =
  let d = Doc.parse "<r><a><b/></a><a><b/><b/></a></r>" in
  let q = parse "/r/a/b" in
  let embs = Eval.embeddings q.P.root (Doc.root d) in
  (* 3 choices of b (each with its a) *)
  Alcotest.(check int) "three homomorphisms" 3 (List.length embs);
  List.iter (fun e -> Alcotest.(check int) "3 images each" 3 (List.length e)) embs

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_doc_xml =
  (* Random small documents over a tiny vocabulary, with some calls. *)
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  let rec gen n =
    if n = 0 then
      frequency
        [ (2, map (fun v -> Axml_xml.Tree.text v) (oneofl [ "1"; "2" ]));
          (1, return (Axml_xml.Tree.element Doc.call_elem_name ~attrs:[ ("name", "f") ] []));
        ]
    else
      frequency
        [
          (1, map (fun v -> Axml_xml.Tree.text v) (oneofl [ "1"; "2" ]));
          ( 4,
            map2
              (fun l cs -> Axml_xml.Tree.element l cs)
              name
              (list_size (int_bound 3) (gen (n / 2))) );
        ]
  in
  QCheck.Gen.(map (fun c -> Axml_xml.Tree.element "r" [ c ]) (sized_size (int_bound 4) gen))

let gen_query_src =
  QCheck.Gen.oneofl
    [
      "/r/a";
      "/r//a";
      "/r//*";
      "/r/a[b]";
      "/r//a[b][c]";
      {|/r//a["1"]|};
      "/r/*/b!";
      "/r//a/b!";
      {|/r//a[b=$X]|};
      {|/r//*[b=$X][c=$X]|};
      "/r//f()!";
      "/r/a/f()!";
    ]

(* Reference evaluator: brute-force enumeration of homomorphisms. *)
let rec all_maps (p : P.node) (n : Doc.node) : (int * int) list list =
  let label_ok =
    match p.P.label with
    | P.Or -> false (* not generated *)
    | l -> Eval.label_matches_exposed l n
  in
  if not label_ok then []
  else
    let per_child (c : P.node) =
      let candidates =
        match c.P.axis with
        | P.Child -> if Doc.is_data n then n.Doc.children else []
        | P.Descendant ->
          let rec collect acc m =
            if Doc.is_data m then
              List.fold_left (fun acc ch -> collect (ch :: acc) ch) acc m.Doc.children
            else acc
          in
          List.rev (collect [] n)
      in
      List.concat_map (all_maps c) candidates
    in
    let children_choices = List.map per_child p.P.children in
    if List.exists (fun l -> l = []) children_choices then []
    else
      List.fold_left
        (fun acc choices -> List.concat_map (fun a -> List.map (fun c -> a @ c) choices) acc)
        [ [ (p.P.pid, n.Doc.id) ] ]
        children_choices

let var_consistent (q : P.t) (emb : (int * int) list) (d : Doc.t) =
  let by_id = Hashtbl.create 16 in
  Doc.iter (fun n -> Hashtbl.replace by_id n.Doc.id n) d;
  let assignments = Hashtbl.create 8 in
  List.for_all
    (fun (pid, nid) ->
      match P.find q pid with
      | Some pn -> (
        match pn.P.label with
        | P.Var x -> (
          let n = Hashtbl.find by_id nid in
          match Eval.doc_label n with
          | None -> false
          | Some l -> (
            match Hashtbl.find_opt assignments x with
            | None ->
              Hashtbl.replace assignments x l;
              true
            | Some l' -> String.equal l l'))
        | _ -> true)
      | None -> true)
    emb

let prop_eval_matches_bruteforce =
  QCheck.Test.make ~name:"evaluator agrees with brute force" ~count:300
    (QCheck.make
       ~print:(fun (x, q) -> Axml_xml.Print.to_string x ^ " | " ^ q)
       QCheck.Gen.(pair gen_doc_xml gen_query_src))
    (fun (xml, qsrc) ->
      let d = Doc.of_xml xml in
      let q = parse qsrc in
      let fast = Eval.eval q d <> [] in
      let slow =
        List.exists (fun emb -> var_consistent q emb d) (all_maps q.P.root (Doc.root d))
      in
      fast = slow)

let prop_pathstack_agrees =
  QCheck.Test.make ~name:"pathstack = tree walker on linear chains" ~count:300
    (QCheck.make
       ~print:(fun (x, q) -> Axml_xml.Print.to_string x ^ " | " ^ q)
       QCheck.Gen.(
         pair gen_doc_xml
           (oneofl
              [ "/r/a"; "/r//a"; "/r//a/b"; "/r/a//c"; "/r//*"; "/r//f()"; "/r/a/b/c"; "//a//b" ])))
    (fun (xml, qsrc) ->
      let d = Doc.of_xml xml in
      let q = parse qsrc in
      match Pathstack.run q d with
      | None -> false
      | Some got ->
        let rec last (n : P.node) =
          match n.P.children with [] -> n | [ c ] -> last c | _ -> assert false
        in
        let rec remark (n : P.node) =
          match n.P.children with
          | [] -> P.with_result n true
          | [ c ] -> P.with_children (P.with_result n false) [ remark c ]
          | _ -> assert false
        in
        let q' = P.query (remark q.P.root) in
        let target = (last q'.P.root).P.pid in
        ids (Eval.matches_of q' d ~target) = ids got)

let prop_anchored_agrees =
  QCheck.Test.make ~name:"anchored agrees with top-down on calls" ~count:300
    (QCheck.make
       ~print:(fun (x, q) -> Axml_xml.Print.to_string x ^ " | " ^ q)
       QCheck.Gen.(pair gen_doc_xml (oneofl [ "/r//f()!"; "/r/a/f()!"; "/r/*/f()!"; "/r//*[b]/f()!" ])))
    (fun (xml, qsrc) ->
      let d = Doc.of_xml xml in
      let q = parse qsrc in
      let target = (List.find (fun n -> n.P.result) (P.nodes q)).P.pid in
      let top_down = Eval.matches_of q d ~target in
      List.for_all
        (fun c ->
          let want = List.exists (fun n -> n.Doc.id = c.Doc.id) top_down in
          Eval.anchored_matches q ~target d c = want)
        (Doc.function_nodes d))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "query"
    [
      ( "parser",
        [
          quick "parse/print stable" test_parse_and_print;
          quick "structure" test_parse_structure;
          quick "result marks" test_parse_result_marks;
          quick "eq sugar" test_parse_eq_sugar;
          quick "variables" test_parse_variables;
          quick "function tests" test_parse_functions;
          quick "errors" test_parse_errors;
        ] );
      ("linear", [ quick "linear part & regex" test_linear_part ]);
      ( "eval",
        [
          quick "simple paths" test_eval_simple;
          quick "value constants" test_eval_value;
          quick "descendant" test_eval_descendant;
          quick "result nodes" test_eval_result_nodes;
          quick "variable joins" test_eval_variables_join;
          quick "homomorphism" test_eval_homomorphism_not_injective;
          quick "wildcard" test_eval_wildcard;
          quick "function nodes" test_eval_function_nodes;
          quick "calls are opaque" test_eval_no_match_through_calls;
          quick "or nodes" test_eval_or_nodes;
          quick "leading //" test_eval_leading_descendant;
        ] );
      ( "anchored",
        [ quick "basic" test_anchored; quick "descendant" test_anchored_descendant ] );
      ( "pathstack",
        [
          quick "linear detection" test_pathstack_linear_detection;
          quick "agrees with evaluator" test_pathstack_agrees;
          quick "repeated labels" test_pathstack_repeated_labels;
        ] );
      ("embeddings", [ quick "count" test_embeddings ]);
      ( "interchange",
        [
          quick "tuples" test_bindings_to_xml;
          quick "shared context" test_shared_context_across_queries;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_eval_matches_bruteforce;
          QCheck_alcotest.to_alcotest prop_anchored_agrees;
          QCheck_alcotest.to_alcotest prop_pathstack_agrees;
        ] );
    ]
