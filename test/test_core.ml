(* Integration tests for the AXML core: NFQ/LPQ generation, relevance on
   the paper's running example, layering, F-guides, typing, pushing, and
   the lazy-vs-naive equivalence. *)

module Doc = Axml_doc
module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Schema = Axml_schema.Schema
module Registry = Axml_services.Registry
module Relevance = Axml_core.Relevance
module Nfq = Axml_core.Nfq
module Lpq = Axml_core.Lpq
module Influence = Axml_core.Influence
module Typing = Axml_core.Typing
module Fguide = Axml_core.Fguide
module Naive = Axml_core.Naive
module Lazy_eval = Axml_core.Lazy_eval
module City = Axml_workload.City

let call_ids nodes =
  List.filter_map
    (fun (n : Doc.node) ->
      match n.Doc.label with Doc.Call { call_id; _ } -> Some call_id | _ -> None)
    nodes
  |> List.sort_uniq compare

let nfq_relevant_ids ?typing ?known (instance : City.t) =
  let rqs = Nfq.of_query instance.City.query in
  let rqs =
    match typing with
    | None -> rqs
    | Some mode ->
      let ty = Typing.create ~mode instance.City.schema instance.City.query in
      let known_functions =
        match known with None -> Schema.function_names instance.City.schema | Some k -> k
      in
      List.filter_map (Typing.refine ty ~known_functions) rqs
  in
  List.concat_map (fun rq -> Relevance.relevant_calls rq instance.City.doc) rqs |> call_ids

(* Answers normalized to their variable assignments. *)
let tuples answers =
  List.map (fun (b : Eval.binding) -> b.Eval.vars) answers |> List.sort_uniq compare

let check_tuples = Alcotest.(check (list (list (pair string string))))

(* ------------------------------------------------------------------ *)
(* §2/§3: relevance on the Fig. 1 document *)

let test_figure1_nfq_relevance () =
  let instance = City.figure1 () in
  (* Without type information, NFQs also retrieve the museum calls 2 and
     5 (Prop. 1 assumes arbitrary output types); calls 6-9 are excluded
     by their hotels' names, as §2 explains. *)
  Alcotest.(check (list int))
    "untyped NFQ set" [ 1; 2; 3; 4; 5; 10 ]
    (nfq_relevant_ids instance)

let test_figure1_typed_relevance () =
  let instance = City.figure1 () in
  (* §5: output types rule out the museum calls, leaving exactly the set
     the paper gives: 1, 3, 4, 10. *)
  Alcotest.(check (list int))
    "typed NFQ set" City.figure1_relevant_calls
    (nfq_relevant_ids ~typing:Axml_schema.Sat.Exact instance);
  Alcotest.(check (list int))
    "lenient typing agrees here" City.figure1_relevant_calls
    (nfq_relevant_ids ~typing:Axml_schema.Sat.Lenient instance)

let test_figure1_lpq_superset () =
  let instance = City.figure1 () in
  let lpq_ids =
    List.concat_map
      (fun rq -> Relevance.relevant_calls rq instance.City.doc)
      (Lpq.of_query instance.City.query)
    |> call_ids
  in
  let nfq_ids = nfq_relevant_ids (City.figure1 ()) in
  List.iter
    (fun id -> Alcotest.(check bool) (Printf.sprintf "call %d in LPQ set" id) true (List.mem id lpq_ids))
    nfq_ids;
  (* §3.1: the LPQs select, among others, the getrating and
     getnearbyrestos of the "Pennsylvania" (calls 8 and 9). *)
  Alcotest.(check bool) "call 8 (Pennsylvania rating)" true (List.mem 8 lpq_ids);
  Alcotest.(check bool) "call 9 (Pennsylvania restos)" true (List.mem 9 lpq_ids)

(* ------------------------------------------------------------------ *)
(* §4: sequencing *)

let test_figure1_layers () =
  let instance = City.figure1 () in
  let rqs = Nfq.of_query instance.City.query in
  let layers = Influence.layers rqs in
  Alcotest.(check bool) "several layers" true (List.length layers >= 4);
  (* The first layer is the root-position NFQ (empty linear part: it may
     influence everything). *)
  (match layers with
  | first :: _ ->
    Alcotest.(check int) "first layer is the root NFQ" 1 (List.length first);
    Alcotest.(check bool) "its lin is empty" true
      ((List.hd first).Relevance.lin = [])
  | [] -> Alcotest.fail "no layers");
  (* Every NFQ appears in exactly one layer. *)
  Alcotest.(check int) "partition" (List.length rqs)
    (List.length (List.concat layers))

let test_layer_order_respects_influence () =
  let instance = City.figure1 () in
  let rqs = Nfq.of_query instance.City.query in
  let layers = Influence.layers rqs in
  (* If q may influence q' and they are in different layers, q's layer
     comes first. *)
  let position rq =
    let rec find i = function
      | [] -> -1
      | layer :: rest ->
        if List.exists (fun r -> r.Relevance.source = rq.Relevance.source) layer then i
        else find (i + 1) rest
    in
    find 0 layers
  in
  List.iter
    (fun q ->
      List.iter
        (fun q' ->
          if position q <> position q' && Influence.may_influence q q' then
            Alcotest.(check bool) "order" true (position q < position q'))
        rqs)
    rqs

let test_independence () =
  (* //a and //b in the same layer are both independent (§4.4's example);
     here: two NFQs with disjoint path languages. *)
  let q = Axml_query.Parser.parse "/r[a/f()][b/g()]" in
  let rqs = Nfq.of_query q in
  let a_nfq =
    List.find
      (fun rq -> rq.Relevance.lin = [ (P.Child, P.Const "r"); (P.Child, P.Const "a") ])
      rqs
  in
  let layers = Influence.layers rqs in
  let layer_of rq =
    List.find (fun l -> List.exists (fun r -> r.Relevance.source = rq.Relevance.source) l) layers
  in
  Alcotest.(check bool) "a is independent in its layer" true
    (Influence.independent_in_layer a_nfq (layer_of a_nfq))

(* ------------------------------------------------------------------ *)
(* The lazy evaluator on the running example *)

let expected_figure1_answer = [ [ ("X", "Mama"); ("Y", "75, 2nd Av.") ] ]

let test_figure1_lazy () =
  let instance = City.figure1 () in
  let report =
    Lazy_eval.run ~registry:instance.City.registry ~schema:instance.City.schema
      ~strategy:Lazy_eval.nfqa_typed instance.City.query instance.City.doc
  in
  check_tuples "answer" expected_figure1_answer (tuples report.Lazy_eval.answers);
  Alcotest.(check bool) "complete" true report.Lazy_eval.complete;
  (* The relevant calls are 1, 3, 10 plus the follow-up call 11 from the
     result of call 1; call 4 may be spared when call 3 runs first. *)
  Alcotest.(check bool) "between 3 and 6 calls" true
    (report.Lazy_eval.invoked >= 3 && report.Lazy_eval.invoked <= 6)

let test_figure1_naive_agrees () =
  let lazy_instance = City.figure1 () in
  let naive_instance = City.figure1 () in
  let lazy_report =
    Lazy_eval.run ~registry:lazy_instance.City.registry ~schema:lazy_instance.City.schema
      ~strategy:Lazy_eval.nfqa_typed lazy_instance.City.query lazy_instance.City.doc
  in
  let naive_report =
    Naive.run naive_instance.City.registry naive_instance.City.query naive_instance.City.doc
  in
  check_tuples "same answers" (tuples naive_report.Naive.answers)
    (tuples lazy_report.Lazy_eval.answers);
  (* Naive materializes all 10 initial calls plus the one brought by the
     first getnearbyrestos. *)
  Alcotest.(check int) "naive invokes everything" 11 naive_report.Naive.invoked;
  Alcotest.(check bool) "lazy invokes fewer" true
    (lazy_report.Lazy_eval.invoked < naive_report.Naive.invoked)

(* Runs the same query under a strategy on a fresh generated instance and
   checks the answers against naive materialization. *)
let run_strategy cfg strategy =
  let instance = City.generate cfg in
  Lazy_eval.run ~registry:instance.City.registry ~schema:instance.City.schema ~strategy
    instance.City.query instance.City.doc

let naive_tuples cfg =
  let instance = City.generate cfg in
  tuples (Naive.run instance.City.registry instance.City.query instance.City.doc).Naive.answers

let small_cfg = { City.default_config with City.hotels = 8; seed = 7 }

let strategies =
  [
    ("nfqa", Lazy_eval.nfqa);
    ("nfqa+types", Lazy_eval.nfqa_typed);
    ("nfqa+lenient", Lazy_eval.nfqa_lenient);
    ("lpq", Lazy_eval.lpq_only);
    ("nfqa+fguide", Lazy_eval.with_fguide Lazy_eval.nfqa);
    ("lpq+fguide", Lazy_eval.with_fguide Lazy_eval.lpq_only);
    ("nfqa+push", Lazy_eval.with_push Lazy_eval.nfqa);
    ("nfqa+types+push+fguide", Lazy_eval.with_push (Lazy_eval.with_fguide Lazy_eval.nfqa_typed));
    ("no-layering", { Lazy_eval.nfqa with Lazy_eval.layering = false });
    ("no-parallel", { Lazy_eval.nfqa with Lazy_eval.parallel = false });
    ("simplify", { Lazy_eval.nfqa with Lazy_eval.simplify_after_layer = true });
    ("speculative", { Lazy_eval.nfqa with Lazy_eval.speculative = true });
    ("dedup", { Lazy_eval.nfqa with Lazy_eval.containment_dedup = true });
    ("no-shared-ctx", { Lazy_eval.nfqa with Lazy_eval.share_contexts = false });
    ("materialize", { Lazy_eval.nfqa with Lazy_eval.materialize_results = true });
  ]

let test_strategies_agree_with_naive () =
  let expected = naive_tuples small_cfg in
  List.iter
    (fun (name, strategy) ->
      let report = run_strategy small_cfg strategy in
      check_tuples name expected (tuples report.Lazy_eval.answers);
      Alcotest.(check bool) (name ^ " complete") true report.Lazy_eval.complete)
    strategies

let test_lazy_invokes_fewer_than_naive () =
  let instance = City.generate small_cfg in
  let naive_report =
    Naive.run instance.City.registry instance.City.query instance.City.doc
  in
  let report = run_strategy small_cfg Lazy_eval.nfqa_typed in
  Alcotest.(check bool) "strictly fewer calls" true
    (report.Lazy_eval.invoked < naive_report.Naive.invoked)

let test_typing_reduces_calls () =
  let untyped = run_strategy small_cfg Lazy_eval.nfqa in
  let typed = run_strategy small_cfg Lazy_eval.nfqa_typed in
  Alcotest.(check bool) "typed <= untyped" true
    (typed.Lazy_eval.invoked <= untyped.Lazy_eval.invoked)

let test_nfq_beats_lpq_on_calls () =
  let lpq = run_strategy small_cfg Lazy_eval.lpq_only in
  let nfq = run_strategy small_cfg Lazy_eval.nfqa in
  Alcotest.(check bool) "nfq <= lpq calls" true
    (nfq.Lazy_eval.invoked <= lpq.Lazy_eval.invoked)

let test_push_saves_bytes () =
  let plain = run_strategy small_cfg Lazy_eval.nfqa in
  let pushed = run_strategy small_cfg (Lazy_eval.with_push Lazy_eval.nfqa) in
  Alcotest.(check bool) "pushed some calls" true (pushed.Lazy_eval.pushed > 0);
  Alcotest.(check bool) "fewer bytes" true
    (pushed.Lazy_eval.bytes_transferred < plain.Lazy_eval.bytes_transferred)

(* ------------------------------------------------------------------ *)
(* §6.2: F-guides *)

let test_fguide_matches_lpq () =
  let instance = City.generate small_cfg in
  let guide = Fguide.build instance.City.doc in
  List.iter
    (fun rq ->
      let on_doc =
        Relevance.relevant_calls rq instance.City.doc
        |> List.map (fun (n : Doc.node) -> n.Doc.id)
        |> List.sort compare
      in
      let on_guide =
        Fguide.candidates guide (Relevance.guide_steps rq)
        |> List.map (fun (n : Doc.node) -> n.Doc.id)
        |> List.sort compare
      in
      Alcotest.(check (list int)) "same calls" on_doc on_guide)
    (Lpq.of_query instance.City.query)

let test_fguide_updates () =
  let instance = City.figure1 () in
  let d = instance.City.doc in
  let guide = Fguide.build d in
  let before = Fguide.call_count guide in
  (* attach a new subtree containing a call, as a document update *)
  let hotel =
    Doc.forest_of_xml d
      (Axml_xml.Parse.forest
         {|<hotel><name>New</name><nearby><axml:call name="getnearbyrestos">x</axml:call></nearby></hotel>|})
  in
  (match hotel with
  | [ h ] ->
    Doc.append_child d (Doc.root d) h;
    Fguide.add_subtree guide h;
    Alcotest.(check int) "one more call" (before + 1) (Fguide.call_count guide);
    (* and remove it again *)
    Fguide.remove_subtree guide h;
    Doc.remove_node d h;
    Alcotest.(check int) "back to before" before (Fguide.call_count guide);
    (* candidates equal a fresh rebuild *)
    let fresh = Fguide.build d in
    List.iter
      (fun rq ->
        let ids g =
          Fguide.candidates g (Relevance.guide_steps rq)
          |> List.map (fun (n : Doc.node) -> n.Doc.id)
          |> List.sort compare
        in
        Alcotest.(check (list int)) "same candidates" (ids fresh) (ids guide))
      (Lpq.of_query instance.City.query)
  | _ -> Alcotest.fail "expected one hotel")

let test_goingout_integration () =
  let cfg = { Axml_workload.Goingout.default_config with Axml_workload.Goingout.theaters = 8 } in
  let naive_inst = Axml_workload.Goingout.generate cfg in
  let open Axml_workload in
  let naive =
    Naive.run naive_inst.Goingout.registry naive_inst.Goingout.query naive_inst.Goingout.doc
  in
  let lazy_inst = Goingout.generate cfg in
  let report =
    Lazy_eval.run ~registry:lazy_inst.Goingout.registry ~schema:lazy_inst.Goingout.schema
      ~strategy:Lazy_eval.nfqa_typed lazy_inst.Goingout.query lazy_inst.Goingout.doc
  in
  Alcotest.(check int) "same answer count"
    (List.length naive.Naive.answers)
    (List.length report.Lazy_eval.answers);
  (* type pruning must keep reviews and restaurants untouched *)
  let invoked_services =
    List.map
      (fun (i : Registry.invocation) -> i.Registry.service)
      (Registry.history lazy_inst.Goingout.registry)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "no getreviews" false (List.mem "getreviews" invoked_services);
  Alcotest.(check bool) "no getrestaurants" false (List.mem "getrestaurants" invoked_services)

let test_synthetic_integration () =
  let open Axml_workload in
  let cfg = { Synthetic.default_config with Synthetic.nodes = 3_000 } in
  let naive_inst = Synthetic.generate cfg in
  let naive =
    Naive.run naive_inst.Synthetic.registry naive_inst.Synthetic.query naive_inst.Synthetic.doc
  in
  let lazy_inst = Synthetic.generate cfg in
  let report =
    Lazy_eval.run ~registry:lazy_inst.Synthetic.registry ~schema:lazy_inst.Synthetic.schema
      ~strategy:(Lazy_eval.with_fguide Lazy_eval.nfqa_typed) lazy_inst.Synthetic.query
      lazy_inst.Synthetic.doc
  in
  Alcotest.(check int) "same answer count"
    (List.length naive.Naive.answers)
    (List.length report.Lazy_eval.answers);
  Alcotest.(check bool) "fewer calls" true (report.Lazy_eval.invoked <= naive.Naive.invoked);
  (* noise calls never fire *)
  let noise =
    List.filter
      (fun (i : Registry.invocation) -> i.Registry.service = "noise")
      (Registry.history lazy_inst.Synthetic.registry)
  in
  Alcotest.(check int) "no noise calls" 0 (List.length noise)

let test_fguide_to_xml () =
  let instance = City.figure1 () in
  let guide = Fguide.build instance.City.doc in
  let xml = Fguide.to_xml guide in
  (* round-trips through the XML layer *)
  let reparsed = Axml_xml.Parse.tree (Axml_xml.Print.to_string xml) in
  Alcotest.(check bool) "serializable" true (Axml_xml.Tree.equal xml reparsed);
  (* extent counts sum to the call count *)
  let total =
    Axml_xml.Tree.fold
      (fun acc n ->
        match Axml_xml.Tree.attr "calls" n with
        | Some c -> acc + int_of_string c
        | None -> acc)
      0 xml
  in
  Alcotest.(check int) "counts sum to calls" (Fguide.call_count guide) total

let test_fguide_maintenance () =
  let instance = City.figure1 () in
  let guide = Fguide.build instance.City.doc in
  Alcotest.(check int) "ten calls initially" 10 (Fguide.call_count guide);
  (* Invoke call 1; the guide loses it and gains the getrating brought by
     the result (call 11). *)
  let call1 = List.hd (Doc.visible_function_nodes instance.City.doc) in
  let result, _ =
    Registry.invoke instance.City.registry ~name:"getnearbyrestos"
      ~params:(Naive.call_params call1) ()
  in
  let added = Doc.replace_call instance.City.doc call1 result in
  Fguide.update_after_replace guide ~invoked:call1 ~added;
  Alcotest.(check int) "still ten calls (−1 +1)" 10 (Fguide.call_count guide);
  (* Rebuilding from scratch gives the same candidate sets. *)
  let fresh = Fguide.build instance.City.doc in
  List.iter
    (fun rq ->
      let ids g =
        Fguide.candidates g (Relevance.guide_steps rq)
        |> List.map (fun (n : Doc.node) -> n.Doc.id)
        |> List.sort compare
      in
      Alcotest.(check (list int)) "maintained = rebuilt" (ids fresh) (ids guide))
    (Lpq.of_query instance.City.query)

(* ------------------------------------------------------------------ *)
(* Typing refinement mechanics *)

let test_refine_names_functions () =
  let instance = City.figure1 () in
  let ty = Typing.create instance.City.schema instance.City.query in
  let rqs = Nfq.of_query instance.City.query in
  let known_functions = Schema.function_names instance.City.schema in
  let refined = List.filter_map (Typing.refine ty ~known_functions) rqs in
  (* Refinement never produces star function nodes. *)
  List.iter
    (fun rq ->
      List.iter
        (fun (n : P.node) ->
          match n.P.label with
          | P.Fun P.Any_fun -> Alcotest.fail "star function left after refinement"
          | _ -> ())
        (P.nodes rq.Relevance.query))
    refined;
  (* The NFQ whose target is the restaurant node only accepts
     getnearbyrestos. *)
  let restaurant_rq =
    List.find
      (fun rq ->
        match List.rev rq.Relevance.lin with
        | (_, P.Const "nearby") :: _ -> rq.Relevance.target_axis = P.Descendant
        | _ -> false)
      refined
  in
  match P.find restaurant_rq.Relevance.query restaurant_rq.Relevance.target with
  | Some n ->
    Alcotest.(check bool) "target restricted" true
      (n.P.label = P.Fun (P.Named [ "getnearbyrestos" ]))
  | None -> Alcotest.fail "target not found"

(* ------------------------------------------------------------------ *)
(* Properties: strategy equivalence over random configurations *)

let gen_cfg =
  QCheck.Gen.(
    map2
      (fun seed hotels ->
        {
          City.default_config with
          City.seed;
          hotels;
          extensional_fraction = 0.4;
          intensional_rating_fraction = 0.6;
          intensional_nearby_fraction = 0.6;
          blurb_bytes = 16;
        })
      (int_bound 1000) (int_range 1 6))

let arb_cfg =
  QCheck.make ~print:(fun c -> Printf.sprintf "seed=%d hotels=%d" c.City.seed c.City.hotels) gen_cfg

let prop_all_strategies_equal_naive =
  QCheck.Test.make ~name:"every strategy = naive materialization" ~count:25 arb_cfg (fun cfg ->
      let expected = naive_tuples cfg in
      List.for_all
        (fun (_, strategy) ->
          let report = run_strategy cfg strategy in
          tuples report.Lazy_eval.answers = expected && report.Lazy_eval.complete)
        strategies)

let prop_lazy_never_more_calls =
  QCheck.Test.make ~name:"lazy never invokes more than naive" ~count:25 arb_cfg (fun cfg ->
      let instance = City.generate cfg in
      let naive_report =
        Naive.run instance.City.registry instance.City.query instance.City.doc
      in
      let report = run_strategy cfg Lazy_eval.nfqa_typed in
      report.Lazy_eval.invoked <= naive_report.Naive.invoked)

let node_ids nodes = List.map (fun (n : Doc.node) -> n.Doc.id) nodes |> List.sort_uniq compare

let prop_nfq_subset_of_lpq =
  QCheck.Test.make ~name:"NFQ calls ⊆ LPQ calls" ~count:40 arb_cfg (fun cfg ->
      let instance = City.generate cfg in
      let nfq_ids =
        List.concat_map
          (fun rq -> Relevance.relevant_calls rq instance.City.doc)
          (Nfq.of_query instance.City.query)
        |> node_ids
      in
      let lpq_ids =
        List.concat_map
          (fun rq -> Relevance.relevant_calls rq instance.City.doc)
          (Lpq.of_query instance.City.query)
        |> node_ids
      in
      List.for_all (fun id -> List.mem id lpq_ids) nfq_ids)

let prop_refined_subset_of_unrefined =
  QCheck.Test.make ~name:"refined NFQ calls ⊆ unrefined" ~count:40 arb_cfg (fun cfg ->
      let instance = City.generate cfg in
      let rqs = Nfq.of_query instance.City.query in
      let plain =
        List.concat_map (fun rq -> Relevance.relevant_calls rq instance.City.doc) rqs
        |> node_ids
      in
      let ty = Typing.create instance.City.schema instance.City.query in
      let known_functions = Schema.function_names instance.City.schema in
      let refined =
        List.filter_map (Typing.refine ty ~known_functions) rqs
        |> List.concat_map (fun rq -> Relevance.relevant_calls rq instance.City.doc)
        |> node_ids
      in
      List.for_all (fun id -> List.mem id plain) refined)

let gen_query_src =
  QCheck.Gen.oneofl
    [
      "/a/b/c";
      "/a//c[d]";
      {|/a[b="1"]//c[d=$X!]|};
      "/a[b][c]/d//e";
      "/a/*/b[c][d]";
      "/a//b//c[d][e]";
    ]

let prop_layers_partition_and_order =
  QCheck.Test.make ~name:"layers partition NFQs and respect influence" ~count:50
    (QCheck.make ~print:Fun.id gen_query_src)
    (fun src ->
      let q = Axml_query.Parser.parse src in
      let rqs = Nfq.of_query q in
      let layers = Influence.layers rqs in
      let flattened = List.concat layers in
      let position rq =
        let rec find i = function
          | [] -> -1
          | layer :: rest ->
            if List.exists (fun r -> r.Relevance.source = rq.Relevance.source) layer then i
            else find (i + 1) rest
        in
        find 0 layers
      in
      List.length flattened = List.length rqs
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 position a = position b
                 || (not (Influence.may_influence a b))
                 || position a < position b)
               rqs)
           rqs)

let prop_anchored_equals_topdown_for_nfqs =
  QCheck.Test.make ~name:"anchored NFQ check = top-down on workloads" ~count:20 arb_cfg
    (fun cfg ->
      let instance = City.generate cfg in
      let calls = Doc.visible_function_nodes instance.City.doc in
      List.for_all
        (fun rq ->
          let top = node_ids (Relevance.relevant_calls rq instance.City.doc) in
          List.for_all
            (fun c -> Relevance.retrieves rq instance.City.doc c = List.mem c.Doc.id top)
            calls)
        (Nfq.of_query instance.City.query))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "relevance",
        [
          quick "figure1 untyped NFQs" test_figure1_nfq_relevance;
          quick "figure1 typed NFQs" test_figure1_typed_relevance;
          quick "figure1 LPQ superset" test_figure1_lpq_superset;
        ] );
      ( "sequencing",
        [
          quick "figure1 layers" test_figure1_layers;
          quick "layer order" test_layer_order_respects_influence;
          quick "independence" test_independence;
        ] );
      ( "lazy evaluation",
        [
          quick "figure1 lazy run" test_figure1_lazy;
          quick "figure1 naive agreement" test_figure1_naive_agrees;
          quick "all strategies agree with naive" test_strategies_agree_with_naive;
          quick "lazy < naive calls" test_lazy_invokes_fewer_than_naive;
          quick "typing reduces calls" test_typing_reduces_calls;
          quick "nfq <= lpq calls" test_nfq_beats_lpq_on_calls;
          quick "push saves bytes" test_push_saves_bytes;
        ] );
      ( "fguide",
        [
          quick "guide = document for LPQs" test_fguide_matches_lpq;
          quick "maintenance" test_fguide_maintenance;
          quick "document updates" test_fguide_updates;
          quick "xml serialization" test_fguide_to_xml;
        ] );
      ("typing", [ quick "refinement names functions" test_refine_names_functions ]);
      ( "workloads",
        [
          quick "goingout integration" test_goingout_integration;
          quick "synthetic integration" test_synthetic_integration;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_all_strategies_equal_naive;
          QCheck_alcotest.to_alcotest prop_lazy_never_more_calls;
          QCheck_alcotest.to_alcotest prop_nfq_subset_of_lpq;
          QCheck_alcotest.to_alcotest prop_refined_subset_of_unrefined;
          QCheck_alcotest.to_alcotest prop_layers_partition_and_order;
          QCheck_alcotest.to_alcotest prop_anchored_equals_topdown_for_nfqs;
        ] );
    ]
