(* Tests for the simulated-services substrate: registry, cost model,
   witness pruning. *)

module Tree = Axml_xml.Tree
module Registry = Axml_services.Registry
module Witness = Axml_services.Witness
module Parser = Axml_query.Parser
module P = Axml_query.Pattern
module Nfq = Axml_core.Nfq

let e = Tree.element
let t = Tree.text

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_register_invoke () =
  let r = Registry.create () in
  Registry.register r ~name:"echo" (fun params -> params);
  Alcotest.(check bool) "registered" true (Registry.is_registered r "echo");
  Alcotest.(check (list string)) "names" [ "echo" ] (Registry.names r);
  let result, inv = Registry.invoke r ~name:"echo" ~params:[ t "hi" ] () in
  Alcotest.(check int) "result" 1 (List.length result);
  Alcotest.(check string) "service" "echo" inv.Registry.service;
  Alcotest.(check bool) "not pushed" false inv.Registry.pushed

let test_unknown_service () =
  let r = Registry.create () in
  match Registry.invoke r ~name:"nope" ~params:[] () with
  | exception Registry.Unknown_service "nope" -> ()
  | _ -> Alcotest.fail "expected Unknown_service"

let test_cost_model () =
  let r = Registry.create () in
  Registry.register r ~name:"s" ~cost:{ Registry.latency = 1.0; per_byte = 0.5 } (fun _ ->
      [ t "abcd" ]);
  let _, inv = Registry.invoke r ~name:"s" ~params:[ t "xy" ] () in
  Alcotest.(check int) "request bytes" 2 inv.Registry.request_bytes;
  Alcotest.(check int) "response bytes" 4 inv.Registry.response_bytes;
  Alcotest.(check (float 1e-9)) "cost = 1 + 0.5*6" 4.0 inv.Registry.cost

let test_history () =
  let r = Registry.create () in
  Registry.register r ~name:"a" (fun _ -> []);
  Registry.register r ~name:"b" (fun _ -> [ t "12345" ]);
  ignore (Registry.invoke r ~name:"a" ~params:[] ());
  ignore (Registry.invoke r ~name:"b" ~params:[] ());
  ignore (Registry.invoke r ~name:"a" ~params:[] ());
  Alcotest.(check int) "count" 3 (Registry.invocation_count r);
  Alcotest.(check (list string)) "order" [ "a"; "b"; "a" ]
    (List.map (fun (i : Registry.invocation) -> i.Registry.service) (Registry.history r));
  Alcotest.(check int) "bytes" 5 (Registry.total_bytes r);
  Registry.reset_history r;
  Alcotest.(check int) "reset" 0 (Registry.invocation_count r)

let test_memoization () =
  let r = Registry.create () in
  let hits = ref 0 in
  Registry.register r ~name:"m" ~memoize:true (fun _ ->
      incr hits;
      [ t "result" ]);
  let _, first = Registry.invoke r ~name:"m" ~params:[ t "k" ] () in
  let second_result, second = Registry.invoke r ~name:"m" ~params:[ t "k" ] () in
  Alcotest.(check int) "behavior ran once" 1 !hits;
  Alcotest.(check bool) "first not cached" false first.Registry.cached;
  Alcotest.(check bool) "second cached" true second.Registry.cached;
  Alcotest.(check bool) "cache hit is not a push" false second.Registry.pushed;
  Alcotest.(check (float 1e-9)) "cache hit is free" 0.0 second.Registry.cost;
  Alcotest.(check int) "cache hit retries nothing" 0 second.Registry.retries;
  Alcotest.(check bool) "same result" true (second_result = [ Tree.Text "result" ]);
  (* different parameters miss the cache *)
  ignore (Registry.invoke r ~name:"m" ~params:[ t "other" ] ());
  Alcotest.(check int) "second key computed" 2 !hits

let test_memoized_push_still_prunes () =
  let r = Registry.create () in
  Registry.register r ~name:"m" ~memoize:true (fun _ ->
      [ e "item" [ e "k" [ t "yes" ] ]; e "item" [ e "k" [ t "no" ] ] ]);
  ignore (Registry.invoke r ~name:"m" ~params:[] ());
  let push = (Parser.parse {|/item[k="yes"]|}).P.root in
  let pruned, inv = Registry.invoke r ~name:"m" ~params:[] ~push () in
  Alcotest.(check bool) "cached" true inv.Registry.cached;
  Alcotest.(check bool) "pushed even on a cache hit" true inv.Registry.pushed;
  Alcotest.(check int) "pruned from cache" 1 (List.length pruned)

let test_memoized_flaky_service () =
  (* cache × retry interaction: a first success populates the cache, and
     every later identical call is answered locally — zero cost, zero
     retries, no fault exposure, regardless of how flaky the wire is *)
  let r = Registry.create () in
  Registry.register r ~name:"m" ~memoize:true ~faults:[ Axml_services.Faults.Flaky 0.95 ]
    ~retry:
      {
        Registry.default_policy with
        Registry.max_retries = 200;
        base_backoff = 0.001;
        max_backoff = 0.001;
      }
    (fun _ -> [ t "v" ]);
  let _, first = Registry.invoke r ~name:"m" ~params:[ t "k" ] () in
  Alcotest.(check bool) "first went over the wire" false first.Registry.cached;
  let exposures_after_first = Registry.fault_exposures r in
  for _ = 1 to 5 do
    let result, inv = Registry.invoke r ~name:"m" ~params:[ t "k" ] () in
    Alcotest.(check bool) "hit" true inv.Registry.cached;
    Alcotest.(check int) "no retries on a hit" 0 inv.Registry.retries;
    Alcotest.(check (float 1e-9)) "free" 0.0 inv.Registry.cost;
    Alcotest.(check bool) "served" true (result = [ Tree.Text "v" ])
  done;
  Alcotest.(check int) "hits drew no faults" exposures_after_first (Registry.fault_exposures r)

let test_reregister_overrides () =
  let r = Registry.create () in
  Registry.register r ~name:"s" (fun _ -> [ t "old" ]);
  Registry.register r ~name:"s" (fun _ -> [ t "new" ]);
  let result, _ = Registry.invoke r ~name:"s" ~params:[] () in
  Alcotest.(check bool) "new behavior" true (result = [ Tree.Text "new" ]);
  Alcotest.(check (list string)) "no duplicate name" [ "s" ] (Registry.names r)

(* ------------------------------------------------------------------ *)
(* Pushing at the registry level *)

let push_pattern src = (Parser.parse src).P.root

let test_push_prunes () =
  let r = Registry.create () in
  Registry.register r ~name:"s" (fun _ ->
      [ e "item" [ e "k" [ t "yes" ] ]; e "item" [ e "k" [ t "no" ] ] ]);
  let push = push_pattern {|/item[k="yes"]|} in
  let full, _ = Registry.invoke r ~name:"s" ~params:[] () in
  let pruned, inv = Registry.invoke r ~name:"s" ~params:[] ~push () in
  Alcotest.(check bool) "pushed flag" true inv.Registry.pushed;
  Alcotest.(check int) "full has 2" 2 (List.length full);
  Alcotest.(check int) "pruned has 1" 1 (List.length pruned)

let test_push_incapable_provider () =
  let r = Registry.create () in
  Registry.register r ~name:"s" ~push_capable:false (fun _ -> [ e "item" [] ]);
  let result, inv =
    Registry.invoke r ~name:"s" ~params:[] ~push:(push_pattern "/nothing") ()
  in
  Alcotest.(check bool) "not pushed" false inv.Registry.pushed;
  Alcotest.(check int) "full result" 1 (List.length result)

(* ------------------------------------------------------------------ *)
(* Declarative service specs *)

module Spec = Axml_services.Spec

let weather_spec =
  {|<services>
      <service name="forecast" latency="0.1" per-byte="0" memoize="true">
        <case key="Paris"><sky>sunny</sky></case>
        <case key="London"><sky>rain</sky></case>
        <default><sky>unknown</sky></default>
      </service>
      <service name="mute" push="false"><default/></service>
    </services>|}

let test_spec_load_and_dispatch () =
  let r = Registry.create () in
  let names = Spec.load_string r weather_spec in
  Alcotest.(check (list string)) "names" [ "forecast"; "mute" ] names;
  let result, inv = Registry.invoke r ~name:"forecast" ~params:[ t "Paris" ] () in
  Alcotest.(check bool) "paris" true
    (result = [ e "sky" [ t "sunny" ] ]);
  Alcotest.(check (float 1e-9)) "latency attr" 0.1 inv.Registry.cost;
  let result2, _ = Registry.invoke r ~name:"forecast" ~params:[ t "Oslo" ] () in
  Alcotest.(check bool) "default" true (result2 = [ e "sky" [ t "unknown" ] ]);
  (* memoize attribute honored *)
  let _, again = Registry.invoke r ~name:"forecast" ~params:[ t "Paris" ] () in
  Alcotest.(check bool) "cached" true again.Registry.cached;
  (* push attribute honored *)
  let push = (Parser.parse "/anything").P.root in
  let _, mute_inv = Registry.invoke r ~name:"mute" ~params:[] ~push () in
  Alcotest.(check bool) "push declined" false mute_inv.Registry.pushed

let test_spec_key_matches_nested_text () =
  let r = Registry.create () in
  ignore (Spec.load_string r weather_spec);
  (* the key is the first text anywhere in the parameter forest *)
  let result, _ =
    Registry.invoke r ~name:"forecast" ~params:[ e "loc" [ e "city" [ t "London" ] ] ] ()
  in
  Alcotest.(check bool) "nested key" true (result = [ e "sky" [ t "rain" ] ])

let test_spec_errors () =
  List.iter
    (fun src ->
      let r = Registry.create () in
      match Spec.load_string r src with
      | exception Spec.Error _ -> ()
      | _ -> Alcotest.failf "expected Spec.Error on %s" src)
    [
      "<nope/>";
      "<services><service/></services>";
      {|<services><service name="s"><case>x</case></service></services>|};
      {|<services><service name="s" memoize="maybe"/></services>|};
      {|<services><service name="s" latency="fast"/></services>|};
      {|<services><wat/></services>|};
    ]

(* ------------------------------------------------------------------ *)
(* Witness pruning *)

let test_witness_keeps_contributors () =
  let forest =
    Axml_xml.Parse.forest
      {|<r><keep><deep>1</deep></keep><drop>x</drop></r><r><drop>y</drop></r>|}
  in
  let pruned = Witness.prune (push_pattern "/r[keep]") forest in
  (* only the first tree matches; its keep subtree survives whole, the
     drop sibling goes *)
  Alcotest.(check int) "one tree" 1 (List.length pruned);
  match pruned with
  | [ tr ] ->
    Alcotest.(check bool) "keep survives with subtree" true
      (Tree.find_all (fun n -> Tree.name n = Some "deep") tr <> []);
    Alcotest.(check bool) "drop pruned" true
      (Tree.find_all (fun n -> Tree.name n = Some "drop") tr = [])
  | _ -> Alcotest.fail "unexpected shape"

let test_witness_result_subtrees_ship_whole () =
  let forest = Axml_xml.Parse.forest {|<r><v><big><inner/></big></v></r>|} in
  let pruned = Witness.prune (push_pattern "/r/v!") forest in
  match pruned with
  | [ tr ] ->
    Alcotest.(check bool) "inner shipped" true
      (Tree.find_all (fun n -> Tree.name n = Some "inner") tr <> [])
  | _ -> Alcotest.fail "expected one tree"

let test_witness_empty_when_nothing_matches () =
  let forest = Axml_xml.Parse.forest "<a/><b/>" in
  Alcotest.(check int) "empty" 0 (List.length (Witness.prune (push_pattern "/c") forest))

let test_witness_optimistic_keeps_calls () =
  (* with the optimistic pattern, a tree whose condition is still a
     pending call must survive *)
  let forest =
    Axml_xml.Parse.forest
      {|<hotel><rating><axml:call name="getrating">k</axml:call></rating></hotel>
        <hotel><rating>2</rating></hotel>|}
  in
  let optimistic = Nfq.optimistic (push_pattern {|/hotel[rating="5"]|}) in
  let pruned = Witness.prune optimistic forest in
  Alcotest.(check int) "only the undecided hotel" 1 (List.length pruned);
  match pruned with
  | [ tr ] ->
    Alcotest.(check bool) "call shipped with parameters" true
      (Tree.find_all (fun n -> Tree.name n = Some Axml_doc.call_elem_name) tr <> [])
  | _ -> Alcotest.fail "unexpected shape"

let test_witness_plain_pattern_drops_undecided () =
  let forest =
    Axml_xml.Parse.forest
      {|<hotel><rating><axml:call name="getrating">k</axml:call></rating></hotel>|}
  in
  Alcotest.(check int) "plain pattern sees no match" 0
    (List.length (Witness.prune (push_pattern {|/hotel[rating="5"]|}) forest))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "services"
    [
      ( "registry",
        [
          quick "register/invoke" test_register_invoke;
          quick "unknown service" test_unknown_service;
          quick "cost model" test_cost_model;
          quick "history" test_history;
          quick "memoization" test_memoization;
          quick "memoized push still prunes" test_memoized_push_still_prunes;
          quick "memoized flaky service" test_memoized_flaky_service;
          quick "re-register overrides" test_reregister_overrides;
        ] );
      ( "push",
        [
          quick "prunes" test_push_prunes;
          quick "incapable provider" test_push_incapable_provider;
        ] );
      ( "spec",
        [
          quick "load and dispatch" test_spec_load_and_dispatch;
          quick "nested key" test_spec_key_matches_nested_text;
          quick "errors" test_spec_errors;
        ] );
      ( "witness",
        [
          quick "keeps contributors" test_witness_keeps_contributors;
          quick "results ship whole" test_witness_result_subtrees_ship_whole;
          quick "empty on no match" test_witness_empty_when_nothing_matches;
          quick "optimistic keeps calls" test_witness_optimistic_keeps_calls;
          quick "plain drops undecided" test_witness_plain_pattern_drops_undecided;
        ] );
    ]
