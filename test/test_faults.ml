(* Tests for the fault-injection layer: retry/backoff accounting on the
   simulated clock, timeout classification, schedule determinism, spec
   attributes, and the Def. 4 differential oracle — lazy evaluation
   under faults returns a subset of the fault-free naive result, with
   equality when retries mask every transient fault. *)

module Tree = Axml_xml.Tree
module Doc = Axml_doc
module Eval = Axml_query.Eval
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module Spec = Axml_services.Spec
module Naive = Axml_core.Naive
module Lazy_eval = Axml_core.Lazy_eval
module Synthetic = Axml_workload.Synthetic

let t = Tree.text

let no_transfer = { Registry.latency = 1.0; per_byte = 0.0 }

let policy ?(max_retries = 2) ?(base_backoff = 0.1) ?(backoff_factor = 2.0)
    ?(max_backoff = 10.0) ?(attempt_timeout = infinity) () =
  { Registry.max_retries; base_backoff; backoff_factor; max_backoff; attempt_timeout }

let feq = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Retry accounting *)

let test_permanent_failure_accounting () =
  let r = Registry.create () in
  Registry.register r ~name:"down" ~cost:no_transfer ~faults:[ Faults.Fail_transient ]
    ~retry:(policy ~max_retries:2 ()) (fun _ -> [ t "never" ]);
  match Registry.invoke r ~name:"down" ~params:[ t "k" ] () with
  | _ -> Alcotest.fail "expected Service_failure"
  | exception Registry.Service_failure inv ->
    Alcotest.(check bool) "failed" true inv.Registry.failed;
    Alcotest.(check int) "retries" 2 inv.Registry.retries;
    Alcotest.(check int) "timeouts" 0 inv.Registry.timeouts;
    Alcotest.(check int) "no response" 0 inv.Registry.response_bytes;
    (* backoff 0.1 then 0.2; three attempts at 1 s latency each *)
    feq "backoff" 0.3 inv.Registry.backoff_seconds;
    feq "cost" 3.3 inv.Registry.cost;
    (* the defeat is on the books *)
    Alcotest.(check int) "history" 1 (Registry.invocation_count r);
    Alcotest.(check int) "failed count" 1 (Registry.failed_count r);
    Alcotest.(check int) "exposures = all three attempts" 3 (Registry.fault_exposures r);
    Alcotest.(check int) "total retries" 2 (Registry.total_retries r);
    feq "total backoff" 0.3 (Registry.total_backoff r)

let test_backoff_cap () =
  let p = policy ~base_backoff:0.5 ~backoff_factor:3.0 ~max_backoff:1.0 ~max_retries:3 () in
  feq "retry 1" 0.5 (Registry.backoff_before p ~retry:1);
  feq "retry 2 capped" 1.0 (Registry.backoff_before p ~retry:2);
  feq "retry 3 capped" 1.0 (Registry.backoff_before p ~retry:3);
  let r = Registry.create () in
  Registry.register r
    ~name:"down"
    ~cost:{ Registry.latency = 0.0; per_byte = 0.0 }
    ~faults:[ Faults.Fail_transient ] ~retry:p
    (fun _ -> []);
  (match Registry.invoke r ~name:"down" ~params:[] () with
  | _ -> Alcotest.fail "expected Service_failure"
  | exception Registry.Service_failure inv ->
    feq "sum of capped backoffs" 2.5 inv.Registry.backoff_seconds;
    feq "cost is pure backoff" 2.5 inv.Registry.cost)

let test_backoff_edge_cases () =
  (* [retry] is 1-based: retry 0 — the first attempt — never waits, and
     neither does anything below it *)
  let p = policy ~base_backoff:0.5 ~backoff_factor:2.0 ~max_backoff:10.0 () in
  feq "retry 0 waits nothing" 0.0 (Registry.backoff_before p ~retry:0);
  feq "negative retry waits nothing" 0.0 (Registry.backoff_before p ~retry:(-3));
  feq "retry 1 waits the base" 0.5 (Registry.backoff_before p ~retry:1);
  (* non-integer factors: base * factor^(retry - 1) *)
  let p = policy ~base_backoff:0.1 ~backoff_factor:1.5 ~max_backoff:10.0 () in
  feq "factor 1.5, retry 1" 0.1 (Registry.backoff_before p ~retry:1);
  feq "factor 1.5, retry 2" 0.15 (Registry.backoff_before p ~retry:2);
  feq "factor 1.5, retry 3" 0.225 (Registry.backoff_before p ~retry:3);
  (* max_backoff below the base clamps even the first wait *)
  let p = policy ~base_backoff:2.0 ~backoff_factor:2.0 ~max_backoff:0.5 () in
  feq "clamped below the base" 0.5 (Registry.backoff_before p ~retry:1);
  (* a zero-retry policy never backs off: its single attempt is retry 0 *)
  let r = Registry.create () in
  Registry.register r ~name:"once" ~cost:no_transfer ~faults:[ Faults.Fail_transient ]
    ~retry:(policy ~max_retries:0 ~base_backoff:5.0 ()) (fun _ -> [ t "never" ]);
  match Registry.invoke r ~name:"once" ~params:[] () with
  | _ -> Alcotest.fail "expected Service_failure"
  | exception Registry.Service_failure inv ->
    Alcotest.(check int) "one attempt, zero retries" 0 inv.Registry.retries;
    feq "no backoff" 0.0 inv.Registry.backoff_seconds;
    feq "cost is one latency" 1.0 inv.Registry.cost

let test_timeout_classification () =
  let r = Registry.create () in
  (* the provider hangs for 5 s; the caller abandons each attempt at its
     0.5 s budget *)
  Registry.register r ~name:"hung" ~cost:no_transfer ~faults:[ Faults.Timeout 5.0 ]
    ~retry:(policy ~max_retries:1 ~base_backoff:0.25 ~backoff_factor:1.0 ~attempt_timeout:0.5 ())
    (fun _ -> [ t "never" ]);
  (match Registry.invoke r ~name:"hung" ~params:[] () with
  | _ -> Alcotest.fail "expected Service_failure"
  | exception Registry.Service_failure inv ->
    Alcotest.(check int) "both attempts timed out" 2 inv.Registry.timeouts;
    feq "each attempt consumes its budget" 1.25 inv.Registry.cost;
    feq "backoff between them" 0.25 inv.Registry.backoff_seconds);
  (* a slow response that misses the budget is also a timeout *)
  Registry.register r ~name:"slow" ~cost:no_transfer ~faults:[ Faults.Slow 2.0 ]
    ~retry:(policy ~max_retries:0 ~attempt_timeout:0.5 ())
    (fun _ -> [ t "late" ]);
  (match Registry.invoke r ~name:"slow" ~params:[] () with
  | _ -> Alcotest.fail "expected Service_failure"
  | exception Registry.Service_failure inv ->
    Alcotest.(check int) "timeout" 1 inv.Registry.timeouts;
    feq "abandoned at the budget" 0.5 inv.Registry.cost);
  Alcotest.(check int) "registry-wide timeouts" 3 (Registry.total_timeouts r)

let test_slow_within_budget_succeeds () =
  let r = Registry.create () in
  Registry.register r ~name:"slow" ~cost:no_transfer ~faults:[ Faults.Slow 0.25 ]
    ~retry:(policy ~attempt_timeout:2.0 ())
    (fun _ -> [ t "ok" ]);
  let result, inv = Registry.invoke r ~name:"slow" ~params:[] () in
  Alcotest.(check bool) "result" true (result = [ Tree.Text "ok" ]);
  Alcotest.(check bool) "not failed" false inv.Registry.failed;
  Alcotest.(check int) "no retries" 0 inv.Registry.retries;
  feq "latency + injected delay" 1.25 inv.Registry.cost

let test_request_ships_per_attempt () =
  let r = Registry.create () in
  Registry.register r
    ~name:"down"
    ~cost:{ Registry.latency = 0.0; per_byte = 1.0 }
    ~faults:[ Faults.Fail_transient ]
    ~retry:(policy ~max_retries:2 ~base_backoff:0.0 ())
    (fun _ -> []);
  (match Registry.invoke r ~name:"down" ~params:[ t "abcd" ] () with
  | _ -> Alcotest.fail "expected Service_failure"
  | exception Registry.Service_failure inv ->
    Alcotest.(check int) "3 attempts x 4 bytes" 12 inv.Registry.request_bytes;
    feq "per-byte time on every attempt" 12.0 inv.Registry.cost)

(* ------------------------------------------------------------------ *)
(* Schedule determinism *)

let flaky_log seed =
  let r = Registry.create () in
  Registry.set_fault_seed r seed;
  Registry.register r ~name:"a" ~cost:no_transfer ~faults:[ Faults.Flaky 0.5 ]
    ~retry:(policy ~max_retries:3 ()) (fun _ -> [ t "ra" ]);
  Registry.register r ~name:"b" ~cost:no_transfer ~faults:[ Faults.Flaky 0.7 ]
    ~retry:(policy ~max_retries:3 ()) (fun _ -> [ t "rb" ]);
  List.iter
    (fun name ->
      match Registry.invoke r ~name ~params:[ t "k" ] () with
      | _ -> ()
      | exception Registry.Service_failure _ -> ())
    [ "a"; "b"; "a"; "a"; "b"; "a"; "b"; "b" ];
  List.map
    (fun (i : Registry.invocation) ->
      (i.Registry.service, i.Registry.retries, i.Registry.failed, i.Registry.cost))
    (Registry.history r)

let test_schedule_determinism () =
  Alcotest.(check bool) "same seed, identical invocation log" true
    (flaky_log 42 = flaky_log 42);
  (* a draw under another seed differs (the PRNG splits by seed) *)
  let key = Faults.invocation_key "k" in
  Alcotest.(check bool) "seeds split the stream" true
    (Faults.uniform ~seed:0 ~service:"a" ~key ~retry:0 ~salt:0
    <> Faults.uniform ~seed:1 ~service:"a" ~key ~retry:0 ~salt:0);
  (* ... and so do distinct invocation keys: the draw is a property of
     the logical call, not of arrival order *)
  Alcotest.(check bool) "keys split the stream" true
    (Faults.uniform ~seed:0 ~service:"a" ~key:(Faults.invocation_key "k1") ~retry:0 ~salt:0
    <> Faults.uniform ~seed:0 ~service:"a" ~key:(Faults.invocation_key "k2") ~retry:0 ~salt:0)

let test_registry_matches_plan () =
  (* with max_retries = 0 each invocation is exactly one attempt, so the
     registry's outcomes must replay Faults.plan draw for draw. Draws
     are keyed by the serialized parameters (the logical call), so each
     distinct params forest gets its own fate — independent of the order
     the invocations happen to arrive in. *)
  let seed = 11 in
  let schedule = [ Faults.Flaky 0.5 ] in
  let r = Registry.create () in
  Registry.set_fault_seed r seed;
  Registry.register r ~name:"s" ~cost:no_transfer ~faults:schedule
    ~retry:(policy ~max_retries:0 ()) (fun _ -> [ t "ok" ]);
  let fates = Hashtbl.create 40 in
  for i = 0 to 39 do
    let params = [ t (Printf.sprintf "p%d" i) ] in
    let key = Faults.invocation_key (Axml_xml.Print.forest_to_string params) in
    let expected = Faults.plan ~seed ~service:"s" ~key ~retry:0 schedule in
    (match Registry.invoke r ~name:"s" ~params () with
    | _ -> Alcotest.(check bool) "plan said healthy" true (expected = Faults.Healthy)
    | exception Registry.Service_failure _ ->
      Alcotest.(check bool) "plan said dropped" true (expected = Faults.Dropped));
    Hashtbl.replace fates i expected
  done;
  (* replaying the same logical call repeats its fate exactly *)
  for i = 0 to 39 do
    let params = [ t (Printf.sprintf "p%d" i) ] in
    match Registry.invoke r ~name:"s" ~params () with
    | _ -> Alcotest.(check bool) "fate repeats (healthy)" true (Hashtbl.find fates i = Faults.Healthy)
    | exception Registry.Service_failure _ ->
      Alcotest.(check bool) "fate repeats (dropped)" true (Hashtbl.find fates i = Faults.Dropped)
  done

let test_retries_eventually_mask_flakiness () =
  let r = Registry.create () in
  Registry.register r ~name:"s" ~cost:no_transfer ~faults:[ Faults.Flaky 0.6 ]
    ~retry:(policy ~max_retries:60 ()) (fun _ -> [ t "ok" ]);
  for _ = 1 to 20 do
    let result, inv = Registry.invoke r ~name:"s" ~params:[] () in
    Alcotest.(check bool) "succeeded" true (result = [ Tree.Text "ok" ]);
    Alcotest.(check bool) "not failed" false inv.Registry.failed
  done;
  Alcotest.(check int) "nothing permanently failed" 0 (Registry.failed_count r)

let test_cache_hits_skip_faults () =
  let r = Registry.create () in
  let hits = ref 0 in
  Registry.register r ~name:"m" ~cost:no_transfer ~memoize:true ~faults:[ Faults.Slow 0.5 ]
    ~retry:(policy ())
    (fun _ ->
      incr hits;
      [ t "v" ]);
  let _, first = Registry.invoke r ~name:"m" ~params:[ t "k" ] () in
  feq "first pays the injected delay" 1.5 first.Registry.cost;
  let _, second = Registry.invoke r ~name:"m" ~params:[ t "k" ] () in
  Alcotest.(check bool) "cached" true second.Registry.cached;
  feq "cache hit dodges the fault layer" 0.0 second.Registry.cost;
  Alcotest.(check int) "no retries on a hit" 0 second.Registry.retries;
  Alcotest.(check int) "behavior ran once" 1 !hits;
  (* a permanently failing service caches nothing: every invocation fails *)
  Registry.register r ~name:"down" ~cost:no_transfer ~memoize:true
    ~faults:[ Faults.Fail_transient ] ~retry:(policy ~max_retries:1 ())
    (fun _ -> [ t "never" ]);
  for _ = 1 to 2 do
    match Registry.invoke r ~name:"down" ~params:[ t "k" ] () with
    | _ -> Alcotest.fail "expected Service_failure"
    | exception Registry.Service_failure inv ->
      Alcotest.(check bool) "not served from cache" false inv.Registry.cached
  done;
  Alcotest.(check int) "failed twice" 2 (Registry.failed_count r)

(* ------------------------------------------------------------------ *)
(* Spec attributes *)

let test_spec_fault_attributes () =
  let r = Registry.create () in
  ignore
    (Spec.load_string r
       {|<services>
           <service name="wobbly" flaky="0.25" slow="0.125" retries="5" timeout="2.5" backoff="0.01">
             <default><x/></default>
           </service>
           <service name="dead" fail="true" retries="0"><default/></service>
           <service name="plain"><default/></service>
         </services>|});
  (match Registry.fault_schedule r "wobbly" with
  | [ Faults.Flaky p; Faults.Slow s ] ->
    feq "flaky" 0.25 p;
    feq "slow" 0.125 s
  | _ -> Alcotest.fail "unexpected schedule for wobbly");
  let p = Registry.retry_policy r "wobbly" in
  Alcotest.(check int) "retries" 5 p.Registry.max_retries;
  feq "timeout" 2.5 p.Registry.attempt_timeout;
  feq "backoff" 0.01 p.Registry.base_backoff;
  Alcotest.(check bool) "dead is down" true
    (Registry.fault_schedule r "dead" = [ Faults.Fail_transient ]);
  (match Registry.invoke r ~name:"dead" ~params:[] () with
  | _ -> Alcotest.fail "expected Service_failure"
  | exception Registry.Service_failure inv ->
    Alcotest.(check int) "no retries" 0 inv.Registry.retries);
  Alcotest.(check bool) "plain is healthy" true (Registry.fault_schedule r "plain" = []);
  Alcotest.(check bool) "plain gets the default policy" true
    (Registry.retry_policy r "plain" = Registry.default_policy)

let test_spec_malformed_fault_attributes () =
  List.iter
    (fun attrs ->
      let src = Printf.sprintf {|<services><service name="s" %s><default/></service></services>|} attrs in
      let r = Registry.create () in
      match Spec.load_string r src with
      | exception Spec.Error _ -> ()
      | _ -> Alcotest.failf "expected Spec.Error on %s" attrs)
    [
      {|flaky="1.5"|};
      {|flaky="-0.1"|};
      {|flaky="often"|};
      {|slow="-2"|};
      {|retries="-1"|};
      {|retries="many"|};
      {|timeout="0"|};
      {|timeout="-1"|};
      {|timeout="soon"|};
      {|backoff="-0.5"|};
      {|fail="maybe"|};
    ]

(* ------------------------------------------------------------------ *)
(* The differential oracle (Def. 4): lazy under faults ⊆ fault-free
   naive; equality when retries mask every transient fault. *)

(* Binding signatures and the fault-case generator are shared with the
   other suites; see test/gen.ml. *)
let tuples = Gen.tuples
let subset = Gen.subset

let case_cfg (c : Gen.fault_case) =
  {
    Synthetic.default_config with
    Synthetic.nodes = 150;
    seed = c.Gen.doc_seed;
    magic_fraction = 0.4;
    call_fraction = 0.7;
  }

let arb_case = Gen.arb_fault_case

let fault_free_reference c =
  let inst = Synthetic.generate (case_cfg c) in
  tuples (Naive.run inst.Synthetic.registry inst.Synthetic.query inst.Synthetic.doc).Naive.answers

let faulted_instance (c : Gen.fault_case) ~max_retries =
  let inst = Synthetic.generate (case_cfg c) in
  let schedule =
    Faults.Flaky c.Gen.rate :: (if c.Gen.permanent then [ Faults.Timeout 3.0 ] else [])
  in
  Registry.inject_faults inst.Synthetic.registry ~seed:c.Gen.fault_seed schedule;
  Registry.set_retry_policy inst.Synthetic.registry
    (policy ~max_retries ~base_backoff:0.01 ~max_backoff:0.1
       ~attempt_timeout:(if c.Gen.permanent then 0.5 else infinity)
       ());
  inst

let prop_lazy_under_faults_subset_of_naive =
  QCheck.Test.make ~name:"lazy under faults ⊆ fault-free naive (Def. 4)" ~count:300 arb_case
    (fun c ->
      let reference = fault_free_reference c in
      let inst = faulted_instance c ~max_retries:2 in
      let r =
        Lazy_eval.run ~registry:inst.Synthetic.registry ~schema:inst.Synthetic.schema
          inst.Synthetic.query inst.Synthetic.doc
      in
      let answers = tuples r.Lazy_eval.answers in
      subset answers reference
      && r.Lazy_eval.complete = (r.Lazy_eval.failed_calls = 0)
      && ((not r.Lazy_eval.complete) || answers = reference))

let prop_enough_retries_mask_transients =
  (* Flaky-only schedules with 30 retries: a call defeats all 31 attempts
     with probability <= 0.6^31 ~ 1e-7 at the rates drawn here, so the
     equality half of Def. 4 holds for every generated case. *)
  QCheck.Test.make ~name:"retries high enough ⇒ lazy under faults = fault-free naive" ~count:300
    Gen.arb_transient_fault_case
    (fun c ->
      let reference = fault_free_reference c in
      let inst = faulted_instance c ~max_retries:30 in
      let r =
        Lazy_eval.run ~registry:inst.Synthetic.registry ~schema:inst.Synthetic.schema
          inst.Synthetic.query inst.Synthetic.doc
      in
      r.Lazy_eval.complete && tuples r.Lazy_eval.answers = reference)

(* Same fault schedule, every named strategy: identical complete-flag
   semantics and the answer-subset invariant — catches a strategy whose
   failure path diverges (e.g. one that would splice an empty result). *)
let named_strategies =
  [
    ("nfqa", Lazy_eval.nfqa);
    ("nfqa_typed", Lazy_eval.nfqa_typed);
    ("lpq_only", Lazy_eval.lpq_only);
    ("with_fguide", Lazy_eval.with_fguide Lazy_eval.nfqa);
    ("with_push", Lazy_eval.with_push Lazy_eval.nfqa_typed);
  ]

let prop_all_strategies_degrade_gracefully =
  QCheck.Test.make ~name:"every strategy: subset invariant + complete semantics under faults"
    ~count:100 arb_case (fun c ->
      let reference = fault_free_reference c in
      List.for_all
        (fun (name, strategy) ->
          let inst = faulted_instance c ~max_retries:2 in
          let r =
            Lazy_eval.run ~registry:inst.Synthetic.registry ~schema:inst.Synthetic.schema
              ~strategy inst.Synthetic.query inst.Synthetic.doc
          in
          let answers = tuples r.Lazy_eval.answers in
          let ok =
            subset answers reference
            && r.Lazy_eval.complete = (r.Lazy_eval.failed_calls = 0)
            && ((not r.Lazy_eval.complete) || answers = reference)
          in
          if not ok then QCheck.Test.fail_reportf "strategy %s diverged" name else ok)
        named_strategies)

let prop_naive_under_faults_subset =
  QCheck.Test.make ~name:"naive under faults ⊆ fault-free naive" ~count:100 arb_case (fun c ->
      let reference = fault_free_reference c in
      let inst = faulted_instance c ~max_retries:2 in
      let r = Naive.run inst.Synthetic.registry inst.Synthetic.query inst.Synthetic.doc in
      let answers = tuples r.Naive.answers in
      subset answers reference
      && r.Naive.complete = (r.Naive.failed_calls = 0)
      && ((not r.Naive.complete) || answers = reference))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "faults"
    [
      ( "retry",
        [
          quick "permanent failure accounting" test_permanent_failure_accounting;
          quick "backoff cap arithmetic" test_backoff_cap;
          quick "backoff edge cases" test_backoff_edge_cases;
          quick "timeout classification" test_timeout_classification;
          quick "slow within budget succeeds" test_slow_within_budget_succeeds;
          quick "request ships per attempt" test_request_ships_per_attempt;
          quick "retries mask flakiness" test_retries_eventually_mask_flakiness;
          quick "cache hits skip faults" test_cache_hits_skip_faults;
        ] );
      ( "determinism",
        [
          quick "same seed, same log" test_schedule_determinism;
          quick "registry replays Faults.plan" test_registry_matches_plan;
        ] );
      ( "spec",
        [
          quick "fault attributes" test_spec_fault_attributes;
          quick "malformed attributes" test_spec_malformed_fault_attributes;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_lazy_under_faults_subset_of_naive;
          QCheck_alcotest.to_alcotest prop_enough_retries_mask_transients;
          QCheck_alcotest.to_alcotest prop_all_strategies_degrade_gracefully;
          QCheck_alcotest.to_alcotest prop_naive_under_faults_subset;
        ] );
    ]
