(* Unit tests for the AXML document model (lib/doc). *)

module Doc = Axml_doc
module Tree = Axml_xml.Tree

let sample () =
  Doc.parse
    {|<guide><hotel><name>BW</name><rating><axml:call name="getrating">BW</axml:call></rating></hotel><axml:call name="gethotels">NY</axml:call></guide>|}

(* ------------------------------------------------------------------ *)

let test_builders () =
  let d = Doc.create () in
  let leaf = Doc.data d "v" in
  let c = Doc.call d "f" [ Doc.data d "p" ] in
  let e = Doc.elem d "r" [ leaf; c ] in
  Doc.set_root d e;
  Alcotest.(check int) "size" 4 (Doc.size d);
  Alcotest.(check int) "one call" 1 (Doc.count_calls d);
  Alcotest.(check bool) "parent set" true
    (match leaf.Doc.parent with Some p -> p.Doc.id = e.Doc.id | None -> false)

let test_reject_double_parent () =
  let d = Doc.create () in
  let leaf = Doc.data d "v" in
  let _ = Doc.elem d "a" [ leaf ] in
  match Doc.elem d "b" [ leaf ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_of_xml_roundtrip () =
  let src = {|<a x="1"><b>t</b><axml:call name="f"><c/></axml:call></a>|} in
  let d = Doc.parse src in
  let back = Axml_xml.Print.to_string (Doc.to_xml d) in
  Alcotest.(check bool) "roundtrip" true
    (Tree.equal (Axml_xml.Parse.tree src) (Axml_xml.Parse.tree back))

let test_call_without_name () =
  match Doc.parse "<a><axml:call/></a>" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_call_ids_in_document_order () =
  let d = sample () in
  let ids =
    List.filter_map
      (fun (n : Doc.node) ->
        match n.Doc.label with Doc.Call { call_id; _ } -> Some call_id | _ -> None)
      (Doc.function_nodes d)
  in
  Alcotest.(check (list int)) "1,2" [ 1; 2 ] ids

let test_visible_vs_all_calls () =
  let d =
    Doc.parse
      {|<r><axml:call name="outer"><axml:call name="inner">x</axml:call></axml:call></r>|}
  in
  Alcotest.(check int) "all" 2 (List.length (Doc.function_nodes d));
  let visible = Doc.visible_function_nodes d in
  Alcotest.(check int) "visible" 1 (List.length visible);
  Alcotest.(check (option string)) "outer only" (Some "outer") (Doc.call_name (List.hd visible))

let test_ancestors_and_path () =
  let d = sample () in
  let getrating =
    List.find (fun n -> Doc.call_name n = Some "getrating") (Doc.function_nodes d)
  in
  Alcotest.(check (list string)) "label path" [ "guide"; "hotel"; "rating" ]
    (Doc.label_path getrating);
  Alcotest.(check int) "three ancestors" 3 (List.length (Doc.ancestors getrating));
  (* nearest first *)
  match Doc.ancestors getrating with
  | first :: _ -> Alcotest.(check bool) "rating first" true (first.Doc.label = Doc.Elem "rating")
  | [] -> Alcotest.fail "no ancestors"

let test_replace_call () =
  let d = sample () in
  let getrating =
    List.find (fun n -> Doc.call_name n = Some "getrating") (Doc.function_nodes d)
  in
  let added = Doc.replace_call d getrating [ Tree.text "5"; Tree.element "note" [] ] in
  Alcotest.(check int) "two nodes spliced" 2 (List.length added);
  Alcotest.(check int) "one call left" 1 (Doc.count_calls d);
  (* the forest lands at the call's exact position *)
  let rating =
    List.find
      (fun (n : Doc.node) -> n.Doc.label = Doc.Elem "rating")
      (Doc.fold (fun acc n -> n :: acc) [] d)
  in
  Alcotest.(check int) "rating has two children" 2 (List.length rating.Doc.children);
  Alcotest.(check bool) "detached" true (getrating.Doc.parent = None);
  (* replacing again fails: the node is gone *)
  match Doc.replace_call d getrating [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_replace_call_splice_order () =
  let d = Doc.parse {|<r><a/><axml:call name="f">p</axml:call><b/></r>|} in
  let call = List.hd (Doc.visible_function_nodes d) in
  ignore (Doc.replace_call d call [ Tree.element "x" []; Tree.element "y" [] ]);
  let labels =
    List.filter_map
      (fun (n : Doc.node) -> match n.Doc.label with Doc.Elem l -> Some l | _ -> None)
      (Doc.root d).Doc.children
  in
  Alcotest.(check (list string)) "in place" [ "a"; "x"; "y"; "b" ] labels

(* Regression: an empty result forest is a plain deletion — the call
   detaches (stale parent pointer cleared), the siblings close ranks,
   and the cached snapshot view stays consistent. *)
let test_replace_with_empty_forest () =
  let d = Doc.parse {|<r><a/><axml:call name="f">p</axml:call><b/></r>|} in
  ignore (Doc.View.snapshot d);
  let call = List.hd (Doc.visible_function_nodes d) in
  let added = Doc.replace_call d call [] in
  Alcotest.(check int) "nothing spliced" 0 (List.length added);
  Alcotest.(check bool) "stale parent cleared" true (call.Doc.parent = None);
  let labels =
    List.filter_map
      (fun (n : Doc.node) -> match n.Doc.label with Doc.Elem l -> Some l | _ -> None)
      (Doc.root d).Doc.children
  in
  Alcotest.(check (list string)) "siblings close ranks" [ "a"; "b" ] labels;
  Alcotest.(check int) "no calls left" 0 (Doc.count_calls d);
  let v = Doc.View.snapshot d in
  Alcotest.(check int) "patched view matches doc" (Doc.size d) (Doc.View.size v)

(* Regression: a failed replace must leave the document untouched — in
   particular it must not import and adopt the result forest before
   discovering the target is invalid. *)
let test_failed_replace_leaves_doc_untouched () =
  let d = sample () in
  let getrating =
    List.find (fun n -> Doc.call_name n = Some "getrating") (Doc.function_nodes d)
  in
  ignore (Doc.replace_call d getrating [ Tree.text "5" ]);
  let size = Doc.size d in
  let rating =
    List.find
      (fun (n : Doc.node) -> n.Doc.label = Doc.Elem "rating")
      (Doc.fold (fun acc n -> n :: acc) [] d)
  in
  let arity = List.length rating.Doc.children in
  (match Doc.replace_call d getrating [ Tree.element "orphan" [] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  Alcotest.(check int) "no orphans adopted" size (Doc.size d);
  Alcotest.(check int) "parent arity unchanged" arity (List.length rating.Doc.children)

let test_replace_non_call () =
  let d = sample () in
  match Doc.replace_call d (Doc.root d) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_append_remove () =
  let d = sample () in
  let extra = Doc.elem d "extra" [] in
  Doc.append_child d (Doc.root d) extra;
  Alcotest.(check int) "added" 1
    (List.length (List.filter (fun (n : Doc.node) -> n.Doc.label = Doc.Elem "extra")
                    (Doc.root d).Doc.children));
  Doc.remove_node d extra;
  Alcotest.(check bool) "removed" true (extra.Doc.parent = None);
  match Doc.remove_node d (Doc.root d) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cannot remove the root"

let test_text_value_and_children () =
  let d = sample () in
  let name =
    List.find
      (fun (n : Doc.node) -> n.Doc.label = Doc.Elem "name")
      (Doc.fold (fun acc n -> n :: acc) [] d)
  in
  Alcotest.(check (list (option string))) "text child" [ Some "BW" ]
    (List.map Doc.text_value (Doc.data_children name));
  Alcotest.(check (option string)) "element has no text value" None (Doc.text_value name)

let test_iteration_order () =
  let d = Doc.parse "<a><b><c/></b><d/></a>" in
  let labels =
    List.rev
      (Doc.fold
         (fun acc (n : Doc.node) ->
           match n.Doc.label with Doc.Elem l -> l :: acc | _ -> acc)
         [] d)
  in
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "c"; "d" ] labels

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "doc"
    [
      ( "model",
        [
          quick "builders" test_builders;
          quick "double parent rejected" test_reject_double_parent;
          quick "xml roundtrip" test_of_xml_roundtrip;
          quick "call without name" test_call_without_name;
          quick "call ids in document order" test_call_ids_in_document_order;
          quick "visible vs all calls" test_visible_vs_all_calls;
          quick "ancestors and label path" test_ancestors_and_path;
        ] );
      ( "mutation",
        [
          quick "replace_call" test_replace_call;
          quick "splice order" test_replace_call_splice_order;
          quick "empty forest is deletion" test_replace_with_empty_forest;
          quick "failed replace leaves doc untouched" test_failed_replace_leaves_doc_untouched;
          quick "replace non-call" test_replace_non_call;
          quick "append/remove" test_append_remove;
        ] );
      ( "access",
        [
          quick "text values" test_text_value_and_children;
          quick "iteration order" test_iteration_order;
        ] );
    ]
