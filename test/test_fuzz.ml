(* Tests for the adversarial generator (Axml_workload.Adversary) and the
   differential fuzz harness (Axml_fuzz.Fuzz): seed determinism of the
   case stream and the generated instances, hostile-family shape
   invariants, the Def. 4 oracle on a bounded adversary instance (via
   the shared test/gen.ml helpers), and a small end-to-end fuzz run
   asserting zero oracle violations. *)

module Doc = Axml_doc
module Registry = Axml_services.Registry
module Naive = Axml_core.Naive
module Lazy_eval = Axml_core.Lazy_eval
module Adversary = Axml_workload.Adversary
module Fuzz = Axml_fuzz.Fuzz

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_case_stream_deterministic () =
  for seed = 0 to 199 do
    let a = Fuzz.case_of_seed seed and b = Fuzz.case_of_seed seed in
    Alcotest.(check string)
      (Printf.sprintf "seed %d derives one case" seed)
      (Fuzz.case_to_string a) (Fuzz.case_to_string b)
  done;
  let distinct =
    List.init 200 (fun s -> Fuzz.case_to_string (Fuzz.case_of_seed s))
    |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check bool) "the stream varies" true (distinct > 150)

let test_adversary_deterministic () =
  List.iter
    (fun (name, family) ->
      let cfg = { Adversary.default_config with Adversary.family; seed = 3; scale = 24 } in
      let a = Adversary.generate cfg and b = Adversary.generate cfg in
      Alcotest.(check string)
        (name ^ ": same seed, same document")
        (Doc.to_string a.Adversary.doc) (Doc.to_string b.Adversary.doc);
      Alcotest.(check int)
        (name ^ ": same seed, same call count")
        (Adversary.total_calls a) (Adversary.total_calls b))
    Adversary.families

let test_adversary_seed_sensitivity () =
  let doc seed =
    let cfg = { Adversary.default_config with Adversary.seed; scale = 24 } in
    Doc.to_string (Adversary.generate cfg).Adversary.doc
  in
  Alcotest.(check bool) "different seeds, different documents" true (doc 1 <> doc 2)

(* ------------------------------------------------------------------ *)
(* Family shapes *)

let test_family_shapes () =
  List.iter
    (fun (name, family) ->
      let cfg = { Adversary.default_config with Adversary.family; seed = 5; scale = 32 } in
      let inst = Adversary.generate cfg in
      Alcotest.(check bool) (name ^ " has calls") true (Adversary.total_calls inst > 0))
    Adversary.families

(* ------------------------------------------------------------------ *)
(* Def. 4 on a bounded adversary instance, via the shared helpers *)

let test_bounded_lazy_matches_naive () =
  List.iter
    (fun seed ->
      let cfg =
        {
          Adversary.default_config with
          Adversary.family = Adversary.Bounded_recursion;
          seed;
          scale = 24;
        }
      in
      let naive_inst = Adversary.generate cfg in
      let reference =
        Gen.tuples
          (Naive.run naive_inst.Adversary.registry naive_inst.Adversary.query
             naive_inst.Adversary.doc)
            .Naive.answers
      in
      let lazy_inst = Adversary.generate cfg in
      let r =
        Lazy_eval.run ~registry:lazy_inst.Adversary.registry lazy_inst.Adversary.query
          lazy_inst.Adversary.doc
      in
      let answers = Gen.tuples r.Lazy_eval.answers in
      Alcotest.(check bool) "lazy ⊆ naive" true (Gen.subset answers reference);
      Alcotest.(check bool) "complete" true r.Lazy_eval.complete;
      Alcotest.(check bool) "complete ⟹ equal" true (answers = reference))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* The harness end to end *)

let test_fuzz_run_clean () =
  let r = Fuzz.run ~watchdog:60.0 ~seed:1 ~iters:12 () in
  (match r.Fuzz.failure with
  | None -> ()
  | Some f ->
    Alcotest.failf "oracle %s: %s (%s)" f.Fuzz.shrunk_failure.Fuzz.oracle
      f.Fuzz.shrunk_failure.Fuzz.detail
      (Fuzz.replay_hint f.Fuzz.shrunk_case));
  Alcotest.(check int) "all iterations ran" 12 r.Fuzz.iterations

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          quick "case stream is a pure function of the seed" test_case_stream_deterministic;
          quick "adversary instances are seed-deterministic" test_adversary_deterministic;
          quick "seeds matter" test_adversary_seed_sensitivity;
        ] );
      ( "families",
        [
          quick "every family generates calls" test_family_shapes;
          quick "bounded recursion: lazy = naive (Def. 4)" test_bounded_lazy_matches_naive;
        ] );
      ("harness", [ quick "12 iterations, zero violations" test_fuzz_run_clean ]);
    ]
