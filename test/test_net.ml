(* Tests for the Axml_net subsystem: wire codec round-trips and garbage
   rejection, the loopback client/server path (handshake, version
   mismatch, pool reuse), graceful degradation when the peer dies
   mid-run, and the E2E acceptance assertions — identical answers remote
   vs in-process, strictly fewer wire invocations lazy vs naive, and
   strictly fewer response bytes with query pushing than without. *)

module Tree = Axml_xml.Tree
module Doc = Axml_doc
module P = Axml_query.Pattern
module Parser = Axml_query.Parser
module Eval = Axml_query.Eval
module Registry = Axml_services.Registry
module Lazy_eval = Axml_core.Lazy_eval
module Naive = Axml_core.Naive
module City = Axml_workload.City
module Obs = Axml_obs.Obs
module Metrics = Axml_obs.Metrics
module Json = Axml_obs.Json
module Wire = Axml_net.Wire
module Server = Axml_net.Server
module Client = Axml_net.Client
module Remote = Axml_net.Remote

let t = Tree.text

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let el name children = Tree.Element { Tree.name; attrs = []; children }

(* A retry policy whose backoff is slept for real — keep it tiny. *)
let fast_policy =
  {
    Registry.max_retries = 2;
    base_backoff = 0.005;
    backoff_factor = 2.0;
    max_backoff = 0.02;
    attempt_timeout = 5.0;
  }

let with_server ?obs ?caps registry f =
  let server = Server.create ?obs ?caps ~registry () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let test_tree_roundtrip () =
  let forest =
    [
      Tree.Element
        {
          Tree.name = "guide";
          attrs = [ ("lang", "fr"); ("v", "1") ];
          children =
            [
              el "hotel" [ t "Le Méridien"; el "empty" [] ];
              t "  ";
              (* whitespace-only text must survive — XML printing would drop it *)
              t "a \"quoted\"\nvalue with \x01 control bytes";
            ];
        };
      t "top-level text";
    ]
  in
  let decoded = Wire.forest_of_json (Wire.forest_to_json forest) in
  Alcotest.(check bool) "forest round-trips exactly" true (decoded = forest);
  (* and through an actual serialized frame *)
  let s = Json.to_string (Wire.forest_to_json forest) in
  match Json.parse s with
  | Error m -> Alcotest.fail m
  | Ok j ->
    Alcotest.(check bool) "via JSON text too" true (Wire.forest_of_json j = forest)

let test_pattern_roundtrip () =
  let q =
    Parser.parse
      {|/guide/hotel[name="Best Western"][rating=$R!]/nearby//restaurant[name=$X!]|}
  in
  let reencoded p = Json.to_string (Wire.pattern_to_json p) in
  let before = reencoded q.P.root in
  let decoded = Wire.pattern_of_json (Wire.pattern_to_json q.P.root) in
  Alcotest.(check string) "pattern round-trips structurally" before (reencoded decoded)

let test_message_roundtrip () =
  let push = (Parser.parse "/r//s[v=$X!]").P.root in
  let msgs =
    [
      Wire.Hello { version = Wire.version; caps = [ Wire.cap_project ] };
      Wire.Hello { version = Wire.version; caps = [] };
      Wire.Welcome
        {
          version = Wire.version;
          services = [ { Wire.name = "a"; push = true }; { Wire.name = "b"; push = false } ];
          caps = [ Wire.cap_project ];
        };
      Wire.Invoke { id = 7; service = "getrating"; params = [ t "Hôtel" ]; push = Some push };
      Wire.Invoke { id = 8; service = "getrating"; params = []; push = None };
      Wire.Result { id = 7; pushed = true; forest = [ el "rating" [ t "5" ] ] };
      Wire.Error { id = 9; transient = true; message = "try again" };
      Wire.Degraded { id = 10; message = "backend down"; retries = 3; timeouts = 1 };
    ]
  in
  List.iter
    (fun m ->
      let reencode m = Json.to_string (Wire.message_to_json m) in
      Alcotest.(check string) "message round-trips" (reencode m)
        (reencode (Wire.message_of_json (Wire.message_to_json m))))
    msgs

let test_envelope_rejection () =
  List.iter
    (fun j ->
      match Wire.message_of_json j with
      | _ -> Alcotest.fail "garbage envelope decoded"
      | exception Wire.Protocol_error _ -> ())
    [
      Json.Null;
      Json.Obj [];
      Json.Obj [ ("type", Json.String "frobnicate") ];
      Json.Obj [ ("type", Json.String "invoke") ];
      (* missing fields *)
      Json.Obj [ ("type", Json.Int 3) ];
      Json.String "hello";
    ]

(* Frame-level rejection, against a real socketpair. *)
let test_frame_rejection () =
  let header len =
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (len land 0xff));
    b
  in
  let on_pair payload check =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close a with Unix.Unix_error _ -> ());
        try Unix.close b with Unix.Unix_error _ -> ())
      (fun () ->
        ignore (Unix.write a payload 0 (Bytes.length payload));
        check b)
  in
  let expect_protocol_error fd =
    match Wire.read_frame fd with
    | _ -> Alcotest.fail "garbage frame accepted"
    | exception Wire.Protocol_error _ -> ()
  in
  (* zero length *)
  on_pair (header 0) expect_protocol_error;
  (* oversized: rejected from the header alone, before any payload *)
  on_pair (header (Wire.max_frame + 1)) expect_protocol_error;
  (* advertised length with a non-JSON payload *)
  on_pair (Bytes.cat (header 5) (Bytes.of_string "hello")) expect_protocol_error;
  (* EOF before a frame *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  (match Wire.read_frame b with
  | _ -> Alcotest.fail "EOF produced a frame"
  | exception Wire.Closed -> ());
  Unix.close b

(* Generated garbage (test/gen.ml): every malformed byte string — random
   bytes, truncated headers and payloads, oversize or non-positive
   length prefixes, non-JSON payloads, valid-JSON-wrong-envelope — is
   rejected with [Protocol_error] or [Closed], never any other
   exception. *)
let prop_garbage_frames_rejected =
  QCheck.Test.make ~name:"generated garbage is rejected" ~count:200 Gen.arb_garbage
    (fun g ->
      let bytes = Gen.garbage_bytes g in
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ a; b ])
        (fun () ->
          if String.length bytes > 0 then
            ignore (Unix.write_substring a bytes 0 (String.length bytes));
          Unix.shutdown a Unix.SHUTDOWN_SEND;
          match Wire.recv b with
          | _ ->
            (* four random bytes can in principle spell a consistent
               length prefix over valid JSON — and random binary-flagged
               payloads can spell a valid tagged message; decoding is
               then allowed — escaping with any unexpected exception is
               not *)
            (match g with
            | Gen.Random_bytes _ | Gen.Binary_random _ -> true
            | _ -> false)
          | exception (Wire.Protocol_error _ | Wire.Closed) -> true))

(* ------------------------------------------------------------------ *)
(* Binary wire codec: differential against JSON *)

(* Canonical JSON text of a value — the cross-codec comparison key. Two
   codecs agree iff the decoded values re-encode to the same JSON. *)
let json_key_of_msg m = Json.to_string (Wire.message_to_json m)

(* gen.ml trees wrapped with locally injected whitespace-only text
   leaves and attributes: the binary codec must preserve them exactly.
   (The shared [Gen.gen_tree] keeps whitespace-only leaves out because
   the XML parse round-trip property drops them.) *)
let gen_wire_tree =
  let open QCheck.Gen in
  map2
    (fun tr ws ->
      Tree.Element
        {
          Tree.name = "root";
          attrs = [ ("lang", "fr"); ("q", "a \"b\"\nc") ];
          children = [ Tree.Text ws; tr; Tree.Text "  \t\n" ];
        })
    Gen.gen_tree
    (oneofl [ " "; "\t"; "\n  " ])

let arb_wire_tree = QCheck.make ~print:(Fmt.to_to_string Tree.pp) gen_wire_tree

let prop_binary_tree_differential =
  QCheck.Test.make ~name:"binary tree codec ≡ JSON tree codec" ~count:200 arb_wire_tree
    (fun tr ->
      let via_bin = Wire.tree_of_binary (Wire.tree_to_binary tr) in
      let via_json = Wire.tree_of_json (Wire.tree_to_json tr) in
      via_bin = tr && via_json = tr
      && Wire.forest_of_binary (Wire.forest_to_binary [ tr; Tree.Text " " ])
         = [ tr; Tree.Text " " ])

let test_binary_pattern_roundtrip () =
  List.iter
    (fun src ->
      let q = (Parser.parse src).P.root in
      let key p = Json.to_string (Wire.pattern_to_json p) in
      Alcotest.(check string) (Printf.sprintf "pattern %s survives binary" src) (key q)
        (key (Wire.pattern_of_binary (Wire.pattern_to_binary q))))
    [
      {|/guide/hotel[name="Best Western"][rating=$R!]/nearby//restaurant[name=$X!]|};
      {|/a//b[c=$X!]|};
      {|/r/*[v="  "]|};
      {|/root/item[val=$X!]|};
    ]

(* Every envelope, encoded binary and decoded back, re-encodes to the
   same canonical JSON as the original — the codec-equivalence oracle
   the fuzz harness's wire dimension relies on. *)
let prop_binary_envelope_differential =
  QCheck.Test.make ~name:"binary envelope ≡ JSON envelope" ~count:100
    QCheck.(pair arb_wire_tree small_int)
    (fun (tr, n) ->
      let push = (Parser.parse "/r//s[v=$X!]").P.root in
      let msgs =
        [
          Wire.Hello { version = Wire.version; caps = [ Wire.cap_binary; "x" ] };
          Wire.Welcome
            {
              version = Wire.version;
              services = [ { Wire.name = "a"; push = true }; { Wire.name = "b"; push = false } ];
              caps = [ Wire.cap_project; Wire.cap_binary ];
            };
          Wire.Invoke { id = n; service = "getrating"; params = [ tr; t "Hôtel" ]; push = Some push };
          Wire.Invoke { id = n + 1; service = "s"; params = []; push = None };
          Wire.Result { id = n; pushed = true; forest = [ tr ] };
          Wire.Error { id = n; transient = n mod 2 = 0; message = "try \"again\"\n" };
          Wire.Degraded { id = n; message = "backend down"; retries = 3; timeouts = 1 };
          Wire.Eval { id = n; strategy = "lazy"; query = push; doc = tr; projected = true };
          Wire.Report
            {
              id = n;
              report =
                Json.Obj
                  [
                    ("answers", Json.List [ Json.Int n; Json.Null; Json.Bool false ]);
                    ("wall", Json.Float 0.125);
                    ("note", Json.String "π ≈ 3.14159");
                  ];
            };
        ]
      in
      List.for_all
        (fun m ->
          let frame = Wire.encode_frame ~codec:Wire.Binary m in
          let codec, len = Wire.decode_frame_header frame in
          codec = Wire.Binary
          && String.length frame = 4 + len
          && json_key_of_msg (Wire.decode_payload ~pos:4 Wire.Binary frame)
             = json_key_of_msg m)
        msgs)

let test_binary_max_frame_rejection () =
  (* encoding a message whose binary payload exceeds max_frame *)
  let huge = Wire.Result { id = 1; pushed = false; forest = [ t (String.make Wire.max_frame 'x') ] } in
  (match Wire.encode_frame ~codec:Wire.Binary huge with
  | _ -> Alcotest.fail "oversize binary frame encoded"
  | exception Wire.Protocol_error _ -> ());
  (* a binary-flagged header advertising an oversize length is rejected
     from the header alone *)
  let header len =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int len);
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lor 0x80));
    Bytes.to_string b
  in
  (match Wire.decode_frame_header (header (Wire.max_frame + 1)) with
  | _ -> Alcotest.fail "oversize binary header accepted"
  | exception Wire.Protocol_error _ -> ());
  (* and over a real socket *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      ignore (Unix.write_substring a (header (Wire.max_frame + 1)) 0 4);
      match Wire.recv b with
      | _ -> Alcotest.fail "oversize binary frame received"
      | exception Wire.Protocol_error _ -> ())

(* Negotiation end-to-end: an `Auto client against a binary-capable
   server advertises and speaks binary; pinning --wire json or talking
   to a pre-binary server falls back to JSON — identical answers in
   every pairing. *)
let test_binary_negotiation_e2e () =
  let invoke_result client =
    let result, _ =
      Client.call client ~obs:Obs.null ~timeout:5.0 ~service:"echo"
        ~params:[ t "payload"; el "x" [ t "  " ] ]
        ~push:None
    in
    result
  in
  let registry () =
    let r = Registry.create () in
    Registry.register r ~name:"echo" (fun params -> [ el "val" params ]);
    r
  in
  let expected = ref None in
  let check_one ~caps ~wire ~expect_cap_binary =
    with_server ~caps (registry ()) (fun server ->
        let client =
          Client.create ~wire ~host:"127.0.0.1" ~port:(Server.port server) ()
        in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            let r = invoke_result client in
            (match !expected with
            | None -> expected := Some r
            | Some e ->
              Alcotest.(check bool) "identical answers across codecs" true (r = e));
            Alcotest.(check bool) "server cap_binary advertisement" expect_cap_binary
              (List.mem Wire.cap_binary (Client.capabilities client))))
  in
  let full = [ Wire.cap_project; Wire.cap_shard; Wire.cap_binary ] in
  (* binary both ends *)
  check_one ~caps:full ~wire:`Auto ~expect_cap_binary:true;
  (* client pins JSON against a binary-capable server *)
  check_one ~caps:full ~wire:`Json ~expect_cap_binary:true;
  (* pre-binary server, modern client *)
  check_one ~caps:[ Wire.cap_project ] ~wire:`Auto ~expect_cap_binary:false

(* ------------------------------------------------------------------ *)
(* Handshake *)

let echo_registry () =
  let r = Registry.create () in
  Registry.register r ~name:"echo" (fun params -> [ el "val" params ]);
  r

let test_version_mismatch () =
  with_server (echo_registry ()) (fun server ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
          ignore (Wire.send fd (Wire.Hello { version = Wire.version + 42; caps = [] }));
          match Wire.recv fd with
          | Wire.Error { transient = false; message; _ }, _ ->
            Alcotest.(check bool) "says version" true (contains ~sub:"version" message)
          | _ -> Alcotest.fail "expected a non-transient error reply"))

let test_handshake_advertises_push () =
  let r = Registry.create () in
  Registry.register r ~name:"pushy" (fun _ -> []);
  Registry.register r ~name:"plain" ~push_capable:false (fun _ -> []);
  with_server r (fun server ->
      let client = Client.create ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let infos =
            List.sort compare
              (List.map (fun (s : Wire.service_info) -> (s.Wire.name, s.Wire.push))
                 (Client.services client ()))
          in
          Alcotest.(check bool) "advertised capabilities" true
            (infos = [ ("plain", false); ("pushy", true) ])))

(* ------------------------------------------------------------------ *)
(* Remote invocation basics *)

let test_remote_invoke_and_pool_reuse () =
  with_server (echo_registry ()) (fun server ->
      let registry = Registry.create () in
      let client = Client.create ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let names = Remote.register ~retry:fast_policy ~memoize:false ~registry client in
          Alcotest.(check (list string)) "registered" [ "echo" ] names;
          Alcotest.(check bool) "marked remote" true (Registry.is_remote registry "echo");
          let obs = Obs.measuring () in
          for i = 1 to 5 do
            let result, inv =
              Registry.invoke registry ~name:"echo"
                ~params:[ t (string_of_int i) ]
                ~obs ()
            in
            Alcotest.(check bool) "echoed" true (result = [ el "val" [ t (string_of_int i) ] ]);
            Alcotest.(check bool) "bytes on the wire" true
              (inv.Registry.request_bytes > 0 && inv.Registry.response_bytes > 0)
          done;
          Alcotest.(check int) "every request counted" 5
            (Metrics.count obs.Obs.metrics "net.requests" ~labels:[ ("service", "echo") ]);
          (* one connection was dialed during registration; every request
             after it reuses the pooled one *)
          Alcotest.(check int) "no extra dials" 0
            (Metrics.count obs.Obs.metrics "net.connects");
          Alcotest.(check int) "pool reuse" 5 (Metrics.count obs.Obs.metrics "net.reuses")))

let test_unknown_remote_service_fails_fast () =
  with_server (echo_registry ()) (fun server ->
      let client = Client.create ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          match
            Client.call client ~obs:Obs.null ~timeout:5.0 ~service:"nope" ~params:[]
              ~push:None
          with
          | _ -> Alcotest.fail "unknown service answered"
          | exception Registry.Transport_error { transient; _ } ->
            Alcotest.(check bool) "not worth retrying" false transient))

(* ------------------------------------------------------------------ *)
(* Graceful degradation over the wire *)

let test_server_killed_mid_run () =
  let doc =
    Doc.of_xml
      (Axml_xml.Parse.tree
         {|<root><item><axml:call name="echo">a</axml:call></item><item><axml:call name="echo">b</axml:call></item><item><axml:call name="echo">c</axml:call></item></root>|})
  in
  let query = Parser.parse "/root/item[val=$X!]" in
  let server = Server.create ~registry:(echo_registry ()) () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let registry = Registry.create () in
      let client = Client.create ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          ignore (Remote.register ~retry:fast_policy ~memoize:false ~registry client);
          (* the server dies right after its first reply: call 1 expands,
             calls 2 and 3 fail through the whole real retry/backoff loop *)
          Server.kill_after_reply server;
          let r = Lazy_eval.run ~strategy:Lazy_eval.nfqa ~registry query doc in
          Alcotest.(check bool) "degraded, not crashed" false r.Lazy_eval.complete;
          Alcotest.(check int) "two calls permanently failed" 2 r.Lazy_eval.failed_calls;
          Alcotest.(check int) "first answer survives" 1 (List.length r.Lazy_eval.answers);
          Alcotest.(check int) "real retries happened" (2 * fast_policy.Registry.max_retries)
            r.Lazy_eval.retries;
          (* the unexpanded calls survive in the document and its serialization *)
          Alcotest.(check int) "calls still pending" 2 (Doc.count_calls doc);
          let xml = Doc.to_string doc in
          Alcotest.(check bool) "unexpanded call serializes" true
            (contains ~sub:"axml:call" xml)))

(* ------------------------------------------------------------------ *)
(* E2E acceptance: the city-guide workload over loopback *)

(* seed 1 yields a non-empty answer set at this scale *)
let city_config = { City.default_config with City.hotels = 8; seed = 1 }

let tuples answers =
  List.map (fun (b : Eval.binding) -> List.sort compare b.Eval.vars) answers
  |> List.sort_uniq compare

let wire_invocations registry =
  List.length (List.filter (fun i -> not i.Registry.cached) (Registry.history registry))

let wire_response_bytes registry =
  List.fold_left
    (fun acc (i : Registry.invocation) ->
      if i.Registry.cached then acc else acc + i.Registry.response_bytes)
    0 (Registry.history registry)

(* Run the city workload against a serving peer. Documents mutate in
   place, so every run generates a fresh (deterministic) instance; only
   the server's registry is shared. *)
let remote_run ~port ~eval () =
  let inst = City.generate city_config in
  let registry = Registry.create () in
  let client = Client.create ~host:"127.0.0.1" ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      ignore (Remote.register ~retry:fast_policy ~memoize:false ~registry client);
      let result = eval ~registry ~inst in
      (result, registry))

let lazy_eval ~push ~registry ~inst =
  let strategy =
    if push then Lazy_eval.with_push Lazy_eval.nfqa_typed else Lazy_eval.nfqa_typed
  in
  Lazy_eval.run ~strategy ~schema:inst.City.schema ~registry inst.City.query inst.City.doc

let test_e2e_city_acceptance () =
  let served = City.generate city_config in
  with_server served.City.registry (fun server ->
      let port = Server.port server in
      (* (a) identical answers remote vs in-process *)
      let local_inst = City.generate city_config in
      let local =
        Lazy_eval.run ~strategy:Lazy_eval.nfqa_typed ~schema:local_inst.City.schema
          ~registry:local_inst.City.registry local_inst.City.query local_inst.City.doc
      in
      let remote_lazy, lazy_reg = remote_run ~port ~eval:(lazy_eval ~push:false) () in
      Alcotest.(check bool) "remote evaluation is complete" true
        remote_lazy.Lazy_eval.complete;
      Alcotest.(check bool) "identical answers remote vs in-process" true
        (tuples remote_lazy.Lazy_eval.answers = tuples local.Lazy_eval.answers);
      Alcotest.(check bool) "answers are non-trivial" true
        (tuples remote_lazy.Lazy_eval.answers <> []);
      (* (b) lazy crosses the wire strictly less often than naive *)
      let remote_naive, naive_reg =
        remote_run ~port
          ~eval:(fun ~registry ~inst -> Naive.run registry inst.City.query inst.City.doc)
          ()
      in
      Alcotest.(check bool) "naive finds the same answers" true
        (tuples remote_naive.Naive.answers = tuples local.Lazy_eval.answers);
      let lazy_wire = wire_invocations lazy_reg in
      let naive_wire = wire_invocations naive_reg in
      Alcotest.(check bool)
        (Printf.sprintf "lazy (%d) < naive (%d) wire invocations" lazy_wire naive_wire)
        true
        (lazy_wire < naive_wire);
      (* (c) pushing ships strictly fewer response bytes *)
      let remote_push, push_reg = remote_run ~port ~eval:(lazy_eval ~push:true) () in
      Alcotest.(check bool) "pushed answers still identical" true
        (tuples remote_push.Lazy_eval.answers = tuples local.Lazy_eval.answers);
      Alcotest.(check bool) "subqueries were actually pushed" true
        (remote_push.Lazy_eval.pushed > 0);
      let pushed_bytes = wire_response_bytes push_reg in
      let plain_bytes = wire_response_bytes lazy_reg in
      Alcotest.(check bool)
        (Printf.sprintf "push (%d B) < no-push (%d B) response bytes" pushed_bytes
           plain_bytes)
        true
        (pushed_bytes < plain_bytes))

(* The same garbage thrown at a live server: every connection is
   answered or dropped, and the listener keeps serving afterwards — a
   hostile peer cannot kill the server thread. *)
let test_server_survives_garbage () =
  with_server (echo_registry ()) (fun server ->
      let port = Server.port server in
      let garbage =
        QCheck.Gen.generate ~rand:(Random.State.make [| 0xfee1 |]) ~n:40 Gen.gen_garbage
      in
      List.iter
        (fun g ->
          let bytes = Gen.garbage_bytes g in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              (if String.length bytes > 0 then
                 try ignore (Unix.write_substring fd bytes 0 (String.length bytes))
                 with Unix.Unix_error _ -> ());
              (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
              (* drain the error reply (if any) until the server closes *)
              let buf = Bytes.create 256 in
              try
                while Unix.read fd buf 0 256 > 0 do
                  ()
                done
              with Unix.Unix_error _ -> ()))
        garbage;
      let client = Client.create ~host:"127.0.0.1" ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          Alcotest.(check int) "still serving" 1
            (List.length (Client.services client ()))))

(* The portable select backend (the non-Linux / pre-epoll path) serves
   the same protocol: force it and run real exchanges through it. *)
let test_select_backend () =
  let server = Server.create ~force_select:true ~registry:(echo_registry ()) () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let client = Client.create ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          for i = 1 to 20 do
            let result, _ =
              Client.call client ~obs:Obs.null ~timeout:5.0 ~service:"echo"
                ~params:[ t (string_of_int i) ]
                ~push:None
            in
            Alcotest.(check bool) "echoed through select loop" true
              (result = [ el "val" [ t (string_of_int i) ] ])
          done))

(* After a stop, the port refuses connections — no zombie listener. *)
let test_stop_refuses_connections () =
  let server = Server.create ~registry:(echo_registry ()) () in
  Server.start server;
  let port = Server.port server in
  Server.stop server;
  let client = Client.create ~host:"127.0.0.1" ~port () in
  match Client.services client () with
  | _ -> Alcotest.fail "stopped server answered"
  | exception Registry.Transport_error { transient = true; _ } -> ()

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "tree round-trip" `Quick test_tree_roundtrip;
          Alcotest.test_case "pattern round-trip" `Quick test_pattern_roundtrip;
          Alcotest.test_case "message round-trip" `Quick test_message_roundtrip;
          Alcotest.test_case "envelope rejection" `Quick test_envelope_rejection;
          Alcotest.test_case "frame rejection" `Quick test_frame_rejection;
          QCheck_alcotest.to_alcotest prop_garbage_frames_rejected;
          Alcotest.test_case "server survives garbage" `Quick test_server_survives_garbage;
        ] );
      ( "wire-binary",
        [
          QCheck_alcotest.to_alcotest prop_binary_tree_differential;
          Alcotest.test_case "pattern round-trip" `Quick test_binary_pattern_roundtrip;
          QCheck_alcotest.to_alcotest prop_binary_envelope_differential;
          Alcotest.test_case "max_frame rejection" `Quick test_binary_max_frame_rejection;
          Alcotest.test_case "negotiation e2e" `Quick test_binary_negotiation_e2e;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "push capability advertised" `Quick
            test_handshake_advertises_push;
        ] );
      ( "remote",
        [
          Alcotest.test_case "invoke + pool reuse" `Quick test_remote_invoke_and_pool_reuse;
          Alcotest.test_case "unknown service fails fast" `Quick
            test_unknown_remote_service_fails_fast;
          Alcotest.test_case "stop refuses connections" `Quick test_stop_refuses_connections;
          Alcotest.test_case "select backend serves" `Quick test_select_backend;
        ] );
      ( "degradation",
        [ Alcotest.test_case "server killed mid-run" `Quick test_server_killed_mid_run ] );
      ( "e2e", [ Alcotest.test_case "city over loopback" `Quick test_e2e_city_acceptance ] );
    ]
