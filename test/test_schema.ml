(* Tests for schemas and the satisfiability analysis of §5/§6.1. *)

module Regex = Axml_automata.Regex
module Schema = Axml_schema.Schema
module Sat = Axml_schema.Sat
module P = Axml_query.Pattern
module Parser = Axml_query.Parser

(* The schema of Fig. 2, with a guide root added. *)
let fig2_src =
  {|
# Function signatures (Fig. 2)
functions:
  gethotels        = [in: data, out: hotel*]
  getrating        = [in: data, out: data]
  getnearbyrestos  = [in: data, out: restaurant*]
  getnearbymuseums = [in: data, out: museum*]
elements:
  guide      = hotel*.gethotels?
  hotel      = name.address.rating.nearby
  nearby     = (restaurant | getnearbyrestos | museum | getnearbymuseums)*
  restaurant = name.address.rating
  museum     = name.address
  name       = data
  address    = data
  rating     = (data | getrating)
|}

let fig2 () = Schema.of_string fig2_src

(* ------------------------------------------------------------------ *)
(* Parsing and printing *)

let test_parse () =
  let s = fig2 () in
  Alcotest.(check (list string))
    "functions" [ "gethotels"; "getrating"; "getnearbyrestos"; "getnearbymuseums" ]
    (Schema.function_names s);
  Alcotest.(check int) "elements" 8 (List.length (Schema.element_names s));
  match Schema.find_function s "gethotels" with
  | Some { output; _ } ->
    Alcotest.(check bool) "output type" true (Regex.matches output [ "hotel"; "hotel" ])
  | None -> Alcotest.fail "gethotels not found"

let test_print_roundtrip () =
  let s = fig2 () in
  let s' = Schema.of_string (Schema.to_string s) in
  Alcotest.(check string) "stable" (Schema.to_string s) (Schema.to_string s')

let test_parse_errors () =
  List.iter
    (fun src ->
      match Schema.of_string src with
      | exception Schema.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" src)
    [
      "hotel = data";                        (* outside a section *)
      "functions:\n f = data";               (* not a signature *)
      "functions:\n f = [in: data]";         (* missing out *)
      "elements:\n = data";                  (* missing name *)
      "elements:\n data = a";                (* reserved *)
      "elements:\n a = ((b)";                (* bad regex *)
    ]

let test_check_undefined () =
  let s = Schema.of_string "elements:\n a = b.c\n b = data" in
  let warnings = Schema.check s in
  Alcotest.(check int) "one undefined (c)" 1 (List.length warnings)

(* ------------------------------------------------------------------ *)
(* Satisfiability: the paper's running examples. *)

(* Build a checker over a single pattern string (taking the root as the
   pattern of interest). *)
let checker ?mode src =
  let q = Parser.parse src in
  let sat = Sat.create ?mode (fig2 ()) [ q.P.root ] in
  (sat, q.P.root)

let restaurant_pattern = {|/restaurant[name=$X][address=$Y][rating="5"]|}

let test_restaurant_subtree () =
  let sat, p = checker restaurant_pattern in
  (* §5: "we can discard all the getnearbymuseums … since they return
     museum elements, and hence cannot satisfy //restaurant[...]" *)
  Alcotest.(check bool) "getnearbyrestos satisfies" true
    (Sat.function_satisfies sat ~fname:"getnearbyrestos" p);
  Alcotest.(check bool) "getnearbymuseums does not" false
    (Sat.function_satisfies sat ~fname:"getnearbymuseums" p);
  Alcotest.(check bool) "getrating does not" false
    (Sat.function_satisfies sat ~fname:"getrating" p);
  Alcotest.(check bool) "gethotels does not (returns hotels)" false
    (Sat.function_satisfies sat ~fname:"gethotels" p)

let test_rating_value () =
  (* getrating returns data, which can be the value "5". *)
  let sat, p = checker {|/"5"|} in
  Alcotest.(check bool) "getrating satisfies a value" true
    (Sat.function_satisfies sat ~fname:"getrating" p);
  Alcotest.(check bool) "getnearbyrestos does not" false
    (Sat.function_satisfies sat ~fname:"getnearbyrestos" p)

let test_hotel_pattern () =
  let sat, p =
    checker {|/hotel[name="Best Western"][rating="5"]/nearby//restaurant[rating="5"]|}
  in
  (* gethotels returns hotels whose rating may be produced by a nested
     getrating call, and whose nearby may contain getnearbyrestos —
     satisfiability must look through those nested calls (derived
     instances). *)
  Alcotest.(check bool) "gethotels satisfies hotel pattern" true
    (Sat.function_satisfies sat ~fname:"gethotels" p)

let test_unknown_function_is_lenient () =
  let sat, p = checker restaurant_pattern in
  Alcotest.(check bool) "unknown function satisfies" true
    (Sat.function_satisfies sat ~fname:"mystery" p)

let test_eligible_functions () =
  let sat, p = checker restaurant_pattern in
  Alcotest.(check (list string)) "only restos" [ "getnearbyrestos" ] (Sat.eligible_functions sat p)

let test_node_satisfies () =
  let sat, p = checker "/restaurant[name]" in
  Alcotest.(check bool) "restaurant element" true (Sat.node_satisfies sat ~symbol:"restaurant" p);
  Alcotest.(check bool) "museum lacks restaurant label" false
    (Sat.node_satisfies sat ~symbol:"museum" p);
  Alcotest.(check bool) "data is a leaf" false (Sat.node_satisfies sat ~symbol:"data" p)

(* Order sensitivity: with content model a.b, the pattern needs both
   children in one word; with (a|b) it cannot have both. *)
let test_single_word_requirement () =
  let schema =
    Schema.of_string
      {|
functions:
  fboth = [in: data, out: r]
elements:
  r = a.b
  a = data
  b = data
|}
  in
  let q = Parser.parse "/r[a][b]" in
  let sat = Sat.create schema [ q.P.root ] in
  Alcotest.(check bool) "a.b provides both" true (Sat.function_satisfies sat ~fname:"fboth" q.P.root);
  let schema2 =
    Schema.of_string
      {|
functions:
  fone = [in: data, out: r]
elements:
  r = a | b
  a = data
  b = data
|}
  in
  let q2 = Parser.parse "/r[a][b]" in
  let exact = Sat.create schema2 [ q2.P.root ] in
  Alcotest.(check bool) "a|b cannot provide both (exact)" false
    (Sat.function_satisfies exact ~fname:"fone" q2.P.root);
  (* The lenient graph-schema test ignores this and accepts. *)
  let lenient = Sat.create ~mode:Sat.Lenient schema2 [ q2.P.root ] in
  Alcotest.(check bool) "lenient accepts" true
    (Sat.function_satisfies lenient ~fname:"fone" q2.P.root)

let test_recursive_schema () =
  (* part = name.part* — descendant requirements through recursion. *)
  let schema =
    Schema.of_string
      {|
functions:
  getparts = [in: data, out: part*]
elements:
  part = name.part*
  name = data
|}
  in
  let q = Parser.parse {|/part//part/name|} in
  let sat = Sat.create schema [ q.P.root ] in
  Alcotest.(check bool) "nested part reachable" true
    (Sat.function_satisfies sat ~fname:"getparts" q.P.root)

let test_descendant_through_function () =
  (* The output of f contains a call g whose output contains the needed
     element: derived instances must chain through g. *)
  let schema =
    Schema.of_string
      {|
functions:
  f = [in: data, out: wrapper]
  g = [in: data, out: prize]
elements:
  wrapper = g
  prize = data
|}
  in
  let q = Parser.parse "/wrapper//prize" in
  let sat = Sat.create schema [ q.P.root ] in
  Alcotest.(check bool) "f reaches prize through g" true
    (Sat.function_satisfies sat ~fname:"f" q.P.root);
  (* but a pattern needing an element g can never produce *)
  let q2 = Parser.parse "/wrapper//trophy" in
  let sat2 = Sat.create schema [ q2.P.root ] in
  Alcotest.(check bool) "trophy unreachable" false
    (Sat.function_satisfies sat2 ~fname:"f" q2.P.root)

let test_function_node_in_pattern () =
  (* Extended queries may ask for a function node: derived instances that
     keep g un-invoked contain a g call. *)
  let schema =
    Schema.of_string
      {|
functions:
  f = [in: data, out: wrapper]
  g = [in: data, out: prize]
elements:
  wrapper = g
  prize = data
|}
  in
  let q = Parser.parse "/wrapper/g()" in
  let sat = Sat.create schema [ q.P.root ] in
  Alcotest.(check bool) "g call reachable in derived instance" true
    (Sat.function_satisfies sat ~fname:"f" q.P.root)

let test_wildcard_content () =
  let schema = Schema.of_string "functions:\n f = [in: data, out: box]\nelements:\n box = _*" in
  let q = Parser.parse "/box/anything[deep/stuff]" in
  let sat = Sat.create schema [ q.P.root ] in
  Alcotest.(check bool) "wildcard content satisfies anything" true
    (Sat.function_satisfies sat ~fname:"f" q.P.root)

(* Lenient is a superset of exact on arbitrary small schemas/patterns,
   drawn from the shared schema-aware vocabulary (test/gen.ml). *)
let prop_lenient_superset =
  let gen =
    QCheck.Gen.(
      pair Gen.gen_schema_case
        (oneofl
           [ "/r"; "/r[s]"; "/r//p"; "/r/s[k]"; "/r//u[p]"; "/s/p"; {|/r["1"]|}; "/*[s][u]" ]))
  in
  QCheck.Test.make ~name:"lenient ⊇ exact" ~count:300
    (QCheck.make
       ~print:(fun (c, p) -> Gen.print_schema_case c ^ " | " ^ p)
       gen)
    (fun (c, pat_src) ->
      let schema = Gen.schema_of_case c in
      let q = Parser.parse pat_src in
      let exact = Sat.create schema [ q.P.root ] in
      let lenient = Sat.create ~mode:Sat.Lenient schema [ q.P.root ] in
      (not (Sat.function_satisfies exact ~fname:"f" q.P.root))
      || Sat.function_satisfies lenient ~fname:"f" q.P.root)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "schema"
    [
      ( "syntax",
        [
          quick "parse fig2" test_parse;
          quick "print roundtrip" test_print_roundtrip;
          quick "parse errors" test_parse_errors;
          quick "undefined symbols" test_check_undefined;
        ] );
      ( "satisfiability",
        [
          quick "restaurant subtree" test_restaurant_subtree;
          quick "rating value" test_rating_value;
          quick "hotel pattern through nesting" test_hotel_pattern;
          quick "unknown functions lenient" test_unknown_function_is_lenient;
          quick "eligible functions" test_eligible_functions;
          quick "node satisfies" test_node_satisfies;
          quick "single word requirement" test_single_word_requirement;
          quick "recursive schema" test_recursive_schema;
          quick "descendant through function" test_descendant_through_function;
          quick "function node in pattern" test_function_node_in_pattern;
          quick "wildcard content" test_wildcard_content;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_lenient_superset ]);
    ]
