(* Tests for type-based document projection (lib/project): unit cases
   for the call-keeping rules, the projected≡full differential on
   schema-aware generated instances and on seeded faulty workloads
   (report ≡ metrics reconciliation included), and the wire capability
   negotiation against old and new peers. *)

module Tree = Axml_xml.Tree
module Print = Axml_xml.Print
module Doc = Axml_doc
module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Parser = Axml_query.Parser
module Schema = Axml_schema.Schema
module Validate = Axml_schema.Validate
module Project = Axml_project.Project
module Engine = Axml_engine.Engine
module Lazy_eval = Axml_core.Lazy_eval
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module City = Axml_workload.City
module Adversary = Axml_workload.Adversary
module Obs = Axml_obs.Obs
module Metrics = Axml_obs.Metrics
module Json = Axml_obs.Json
module Server = Axml_net.Server
module Client = Axml_net.Client
module Wire = Axml_net.Wire

let e = Tree.element
let txt = Tree.text
let call_e name params = Tree.element Doc.call_elem_name ~attrs:[ ("name", name) ] params
let render tr = Print.to_string tr

(* ------------------------------------------------------------------ *)
(* Unit cases: a relevant call deep inside an otherwise-droppable
   subtree must keep its spine; an irrelevant call must not. *)

(* [getp] can produce a payload, so a <sec> holding only filler and a
   getp call stays alive through the call's output type. *)
let getp_schema =
  Schema.of_string
    {|functions:
  getp = [in: data, out: payload]
elements:
  r = (junk | sec)*
  junk = data
  sec = (filler | getp)*
  filler = data
  payload = data
|}

(* [noise] can only ever produce filler: the same <sec> shape is dead. *)
let noise_schema =
  Schema.of_string
    {|functions:
  noise = [in: data, out: filler]
elements:
  r = (junk | sec)*
  junk = data
  sec = (filler | noise)*
  filler = data
  payload = data
|}

let test_keep_relevant_call () =
  let q = Parser.parse "/r//payload!" in
  let doc =
    e "r" [ e "junk" [ txt "j" ]; e "sec" [ e "filler" [ txt "f" ]; call_e "getp" [ txt "x" ] ] ]
  in
  let p = Project.compile ~schema:getp_schema q in
  let projected, st = Project.tree p doc in
  Alcotest.(check string) "sec kept only for its call"
    (render (e "r" [ e "sec" [ call_e "getp" [ txt "x" ] ] ]))
    (render projected);
  Alcotest.(check bool) "bytes were saved" true (st.Project.bytes_saved > 0);
  Alcotest.(check int) "accounting: full = projected + saved"
    (Print.byte_size doc)
    (Print.byte_size projected + st.Project.bytes_saved)

let test_drop_irrelevant_call () =
  let q = Parser.parse "/r//payload!" in
  let doc =
    e "r"
      [ e "junk" [ txt "j" ]; e "sec" [ e "filler" [ txt "f" ]; call_e "noise" [ txt "x" ] ] ]
  in
  let p = Project.compile ~schema:noise_schema q in
  let projected, _ = Project.tree p doc in
  Alcotest.(check string) "sec is dead: only the root shell survives" (render (e "r" []))
    (render projected)

let test_keeps_call_rules () =
  let q = Parser.parse "/r//payload!" in
  let doc =
    Doc.of_xml (e "r" [ e "sec" [ call_e "getp" [ txt "x" ] ] ])
  in
  let sec =
    match (Doc.root doc).Doc.children with [ s ] -> s | _ -> Alcotest.fail "no sec"
  in
  let p_getp = Project.compile ~schema:getp_schema q in
  let p_noise = Project.compile ~schema:noise_schema q in
  Alcotest.(check bool) "getp is kept" true
    (Project.keeps_call p_getp doc ~fname:"getp" ~parent:sec);
  Alcotest.(check bool) "an undeclared function is kept" true
    (Project.keeps_call p_getp doc ~fname:"mystery" ~parent:sec);
  Alcotest.(check bool) "noise is dropped even in a live position" false
    (Project.keeps_call p_noise doc ~fname:"noise" ~parent:(Doc.root doc))

(* Without a schema every call is kept and liveness degrades to NFA
   reachability — weaker, still sound. *)
let test_no_schema_keeps_calls () =
  let q = Parser.parse "/r//payload!" in
  let doc = e "r" [ e "sec" [ call_e "noise" [ txt "x" ] ]; e "junk" [ txt "j" ] ] in
  let p = Project.compile q in
  let projected, _ = Project.tree p doc in
  (* the text leaf under junk is still soundly dropped: a Const label
     never matches a Data node, so no pattern needs it *)
  Alcotest.(check string) "calls survive schemaless projection"
    (render (e "r" [ e "sec" [ call_e "noise" [ txt "x" ] ]; e "junk" [] ]))
    (render projected)

(* A subtree under a result image is the answer serialization: kept
   verbatim, junk included. *)
let test_result_subtree_verbatim () =
  let q = Parser.parse "/r/sec!" in
  let doc = e "r" [ e "sec" [ e "junk" [ txt "j" ]; e "deep" [ e "more" [] ] ] ] in
  let p = Project.compile ~schema:getp_schema q in
  let projected, _ = Project.tree p doc in
  Alcotest.(check string) "result subtree untouched" (render doc) (render projected)

(* ------------------------------------------------------------------ *)
(* Projected ≡ full on schema-aware generated instances: the generator
   (test/gen.ml) only produces trees conforming to their schema, which
   is the projection soundness precondition. *)

let query_pool =
  [ "/r//p!"; "/r/s!"; "/r//u[p!]"; "/r//s[k][p!]"; {|/r//s[p=$X!]|}; "/r//k!" ]

let prop_projected_answers_equal =
  let gen = QCheck.Gen.pair Gen.gen_schema_case (QCheck.Gen.oneofl query_pool) in
  QCheck.Test.make ~name:"projected ≡ full (snapshot answers)" ~count:400
    (QCheck.make ~print:(fun (c, q) -> Gen.print_schema_case c ^ " | " ^ q) gen)
    (fun (c, q_src) ->
      let schema = Gen.schema_of_case c in
      let tree = Gen.conforming_tree schema ~seed:c.Gen.tree_seed in
      if Validate.tree schema tree <> [] then
        QCheck.Test.fail_report "generated tree does not conform to its schema";
      let q = Parser.parse q_src in
      let p = Project.compile ~schema q in
      let projected, st = Project.tree p tree in
      if Print.byte_size tree <> Print.byte_size projected + st.Project.bytes_saved then
        QCheck.Test.fail_report "byte accounting does not add up";
      if st.Project.kept_nodes > st.Project.full_nodes then
        QCheck.Test.fail_report "kept more nodes than examined";
      let full = Gen.tuples (Eval.eval q (Doc.of_xml tree)) in
      let proj = Gen.tuples (Eval.eval q (Doc.of_xml projected)) in
      full = proj)

(* ------------------------------------------------------------------ *)
(* Seeded faulty differentials over whole evaluations: projection must
   not change what a run can answer, complete-flag semantics included,
   and the projection counters must reconcile with the metrics sink. *)

let reconcile_projection (obs : Obs.t) (r : Engine.report) =
  let m = obs.Obs.metrics in
  let gauge name got =
    Alcotest.(check int) ("gauge " ^ name) got (int_of_float (Metrics.value m name))
  in
  gauge "eval.full_nodes" r.Engine.full_nodes;
  gauge "eval.projected_nodes" r.Engine.projected_nodes;
  gauge "eval.projected_bytes_saved" r.Engine.projected_bytes_saved

let adversary_arm ~project ?obs (cfg : Adversary.config) ~budget ~lazy_strategy =
  let inst = Adversary.generate cfg in
  let projector =
    if project then
      Some (Project.compile ~schema:inst.Adversary.schema inst.Adversary.query)
    else None
  in
  if lazy_strategy then
    Lazy_eval.run
      ~strategy:{ Lazy_eval.nfqa with Lazy_eval.max_calls = budget }
      ?obs ?projector ~registry:inst.Adversary.registry inst.Adversary.query
      inst.Adversary.doc
  else
    Engine.naive_run ~max_calls:budget ?obs ?projector inst.Adversary.registry
      inst.Adversary.query inst.Adversary.doc

let test_adversary_differential () =
  List.iter
    (fun family ->
      for seed = 1 to 8 do
        let cfg =
          {
            Adversary.family;
            seed;
            scale = 16 + (4 * seed);
            memoize = seed mod 2 = 0;
            fault_rate = (if seed mod 3 = 0 then 0.0 else 0.3);
            fault_permanent = seed mod 5 = 0;
            fault_seed = seed lxor 0x9e37;
            max_retries = 2;
          }
        in
        let budget = 24 + seed in
        let lazy_strategy = seed mod 2 = 1 in
        let reference =
          Gen.tuples
            (adversary_arm ~project:false
               { cfg with Adversary.fault_rate = 0.0; fault_permanent = false }
               ~budget:100_000 ~lazy_strategy:false)
              .Engine.answers
        in
        let rf = adversary_arm ~project:false cfg ~budget ~lazy_strategy in
        let obs = Obs.create () in
        let rp = adversary_arm ~project:true ~obs cfg ~budget ~lazy_strategy in
        let ctx = Printf.sprintf "%s seed %d" (Adversary.family_name family) seed in
        reconcile_projection obs rp;
        Alcotest.(check bool) (ctx ^ ": projection ran") true (rp.Engine.full_nodes > 0);
        Alcotest.(check bool)
          (ctx ^ ": projected answers within the fault-free reference")
          true
          (Gen.subset (Gen.tuples rp.Engine.answers) reference);
        if rf.Engine.complete then begin
          Alcotest.(check bool) (ctx ^ ": full complete => projected complete") true
            rp.Engine.complete;
          Alcotest.(check bool) (ctx ^ ": both complete => equal tuples") true
            (Gen.tuples rp.Engine.answers = Gen.tuples rf.Engine.answers);
          Alcotest.(check bool) (ctx ^ ": projection never invokes more") true
            (rp.Engine.invoked <= rf.Engine.invoked)
        end;
        if rp.Engine.complete then
          Alcotest.(check bool) (ctx ^ ": projected complete => reference answers") true
            (Gen.tuples rp.Engine.answers = reference)
      done)
    [ Adversary.Skewed_fanout; Adversary.Bounded_recursion; Adversary.Push_drop_all ]

let test_city_differential () =
  for seed = 1 to 6 do
    let cfg = { City.default_config with City.hotels = 6 + seed; seed } in
    let arm ~project =
      let inst = City.generate cfg in
      Registry.inject_faults inst.City.registry ~seed [ Faults.Flaky 0.25 ];
      let projector =
        if project then Some (Project.compile ~schema:inst.City.schema inst.City.query)
        else None
      in
      Lazy_eval.run ~schema:inst.City.schema ~registry:inst.City.registry
        ~strategy:Lazy_eval.nfqa_typed ?projector inst.City.query inst.City.doc
    in
    let rf = arm ~project:false in
    let rp = arm ~project:true in
    let ctx = Printf.sprintf "city seed %d" seed in
    Alcotest.(check bool) (ctx ^ ": projection ran") true (rp.Engine.full_nodes > 0);
    Alcotest.(check bool) (ctx ^ ": complete flags agree") rf.Engine.complete
      rp.Engine.complete;
    if rf.Engine.complete then
      Alcotest.(check bool) (ctx ^ ": equal tuples") true
        (Gen.tuples rp.Engine.answers = Gen.tuples rf.Engine.answers)
  done

(* ------------------------------------------------------------------ *)
(* The wire: a projecting client against a capability-less (old) peer
   must ship the document whole and still get identical answers; against
   a new peer it projects and the answers stay identical. *)

let wire_cfg = { City.default_config with City.hotels = 10; seed = 5 }

let with_server ~caps f =
  let inst = City.generate wire_cfg in
  let server = Server.create ~caps ~registry:inst.City.registry () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let client = Client.create ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client))

let local_naive_answers () =
  let inst = City.generate wire_cfg in
  Json.to_string
    (Json.member "answers"
       (Engine.report_to_json
          (Engine.naive_run inst.City.registry inst.City.query inst.City.doc)))

let test_wire_projection () =
  let wire_inst = City.generate wire_cfg in
  let query_node = wire_inst.City.query.P.root in
  let doc_tree = Doc.to_xml wire_inst.City.doc in
  let projector = Project.compile ~schema:wire_inst.City.schema wire_inst.City.query in
  let expected = local_naive_answers () in
  (* old peer: no capability advertised, the client must not project *)
  with_server ~caps:[] (fun client ->
      let obs = Obs.create () in
      let report = Client.eval client ~obs ~projector ~strategy:"naive" query_node doc_tree in
      Alcotest.(check (list string)) "old peer advertises nothing" [] (Client.capabilities client);
      Alcotest.(check int) "nothing was projected on the wire" 0
        (Metrics.count obs.Obs.metrics "net.projected_bytes_saved");
      Alcotest.(check string) "old-peer answers identical" expected
        (Json.to_string (Json.member "answers" report)));
  (* new peer: capability negotiated, the client projects, answers equal *)
  with_server ~caps:[ Wire.cap_project ] (fun client ->
      let obs = Obs.create () in
      let report = Client.eval client ~obs ~projector ~strategy:"naive" query_node doc_tree in
      Alcotest.(check bool) "new peer advertises the capability" true
        (List.mem Wire.cap_project (Client.capabilities client));
      Alcotest.(check bool) "projection saved wire bytes" true
        (Metrics.count obs.Obs.metrics "net.projected_bytes_saved" > 0);
      Alcotest.(check string) "new-peer answers identical" expected
        (Json.to_string (Json.member "answers" report)))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "project"
    [
      ( "units",
        [
          quick "relevant call kept through its output type" test_keep_relevant_call;
          quick "irrelevant call dropped with its spine" test_drop_irrelevant_call;
          quick "keeps_call rules" test_keeps_call_rules;
          quick "schemaless projection keeps calls" test_no_schema_keeps_calls;
          quick "result subtrees kept verbatim" test_result_subtree_verbatim;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_projected_answers_equal ]);
      ( "differential",
        [
          quick "adversary: projected ≡ full under faults" test_adversary_differential;
          quick "city: projected ≡ full under faults" test_city_differential;
        ] );
      ("wire", [ quick "capability negotiation old/new peer" test_wire_projection ]);
    ]
