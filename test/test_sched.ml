(* Suite for the distributed layer scheduler (lib/sched).

   The load-bearing invariant is the routing analogue of the §4.4
   contract: a sharded or replicated evaluation must produce exactly the
   single-registry evaluation — the same answers (compared as a digest
   of their XML serialization), the same report field by field, and the
   same multiset of per-invocation fault fates across the shard
   registries — at jobs = 1 and jobs = 4, on the seeded faulty city
   workload. On top of that: report ≡ metrics ≡ trace reconciliation
   through the scheduler, budget exhaustion degrading to
   [complete = false] like any other defeat, cost-model placement
   preferring the cheap replica where static round-robin alternates,
   re-routing off a replica that dies mid-run, and the registry
   routing-view helpers. *)

module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module Engine = Axml_engine.Engine
module Lazy_eval = Axml_core.Lazy_eval
module City = Axml_workload.City
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Exec = Axml_exec.Exec
module Server = Axml_net.Server
module Client = Axml_net.Client
module Remote = Axml_net.Remote
module Sched = Axml_sched.Sched

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Exec.create ~jobs () in
    Fun.protect ~finally:(fun () -> Exec.shutdown pool) (fun () -> f (Some pool))
  end

let digest answers =
  Digest.to_hex
    (Digest.string (Axml_xml.Print.forest_to_string (Eval.bindings_to_xml answers)))

(* The same seeded faulty city workload as the engine suite: every
   regeneration draws identical documents, services and fault fates. *)
let city_cfg =
  {
    City.default_config with
    City.hotels = 10;
    seed = 7;
    extensional_fraction = 1.0;
    intensional_rating_fraction = 1.0;
    intensional_nearby_fraction = 1.0;
    target_fraction = 1.0;
    five_star_fraction = 0.6;
  }

let faulty_city () =
  let inst = City.generate city_cfg in
  Registry.inject_faults inst.City.registry ~seed:5 [ Faults.Flaky 0.3 ];
  inst

(* Everything a routed run must reproduce bit for bit (the analysis
   wall clock and the routing counters themselves excluded). *)
let essence (r : Engine.report) =
  ( digest r.Engine.answers,
    r.Engine.invoked,
    r.Engine.pushed,
    r.Engine.rounds,
    r.Engine.passes,
    r.Engine.relevance_evals,
    r.Engine.candidates_checked,
    r.Engine.layer_count,
    r.Engine.simulated_seconds,
    r.Engine.bytes_transferred,
    r.Engine.retries,
    r.Engine.timeouts,
    r.Engine.failed_calls,
    r.Engine.backoff_seconds,
    r.Engine.complete )

(* Invocation fates as an order-independent multiset, summed over every
   registry the scheduler may have touched. *)
let fates registries =
  List.sort compare
    (List.concat_map
       (fun reg ->
         List.map
           (fun (i : Registry.invocation) ->
             ( i.Registry.service,
               i.Registry.request_bytes,
               i.Registry.retries,
               i.Registry.timeouts,
               i.Registry.failed ))
           (Registry.history reg))
       registries)

let run_base ?obs pool =
  let inst = faulty_city () in
  let r =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
      ~strategy:Lazy_eval.nfqa_typed ?pool ?obs inst.City.query inst.City.doc
  in
  (r, [ inst.City.registry ])

let run_routed ?obs ~specs_of pool =
  let inst = faulty_city () in
  let specs = specs_of inst in
  let sched = Sched.create specs in
  let r =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
      ~strategy:Lazy_eval.nfqa_typed ?pool ?obs ~dispatch:(Sched.dispatch sched)
      inst.City.query inst.City.doc
  in
  (r, sched, inst)

(* Two full replicas: the instance's own registry plus one regenerated
   twin (same seeds, so the identical fault fates). *)
let replica_specs (inst : City.t) =
  [
    Sched.spec ~id:"r1" inst.City.registry;
    Sched.spec ~id:"r2" (faulty_city ()).City.registry;
  ]

(* A static service split over three shards, the last one the
   instance's own registry. *)
let shard_specs (inst : City.t) =
  [
    Sched.spec ~id:"ratings" ~services:[ "getrating" ] (faulty_city ()).City.registry;
    Sched.spec ~id:"geo"
      ~services:[ "getnearbyrestos"; "getnearbymuseums" ]
      (faulty_city ()).City.registry;
    Sched.spec ~id:"rest" ~services:[ "gethotels" ] inst.City.registry;
  ]

let test_differential ~name ~specs_of ~jobs () =
  let base, base_regs = with_pool jobs (fun pool -> run_base ?obs:None pool) in
  let routed, sched, _ =
    with_pool jobs (fun pool -> run_routed ?obs:None ~specs_of pool)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s@jobs=%d: report identical" name jobs)
    true
    (essence base = essence routed);
  Alcotest.(check int)
    (Printf.sprintf "%s@jobs=%d: every call routed" name jobs)
    routed.Engine.invoked routed.Engine.sharded_calls;
  Alcotest.(check int)
    (Printf.sprintf "%s@jobs=%d: nothing rerouted" name jobs)
    0 routed.Engine.rerouted_calls;
  (* the scheduler's own meter agrees with the engine's *)
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Sched.dispatched sched) in
  Alcotest.(check int)
    (Printf.sprintf "%s@jobs=%d: dispatched = sharded" name jobs)
    routed.Engine.sharded_calls total;
  ignore base_regs

let test_fates ~name ~jobs () =
  let _, base_regs = with_pool jobs (fun pool -> run_base ?obs:None pool) in
  (* rebuild the routed side spec by spec, keeping hold of every registry
     so their histories can be pooled afterwards *)
  let inst = faulty_city () in
  let regs, specs =
    match name with
    | "replicated" ->
      let r2 = (faulty_city ()).City.registry in
      ( [ inst.City.registry; r2 ],
        [ Sched.spec ~id:"r1" inst.City.registry; Sched.spec ~id:"r2" r2 ] )
    | _ ->
      let ra = (faulty_city ()).City.registry in
      let rb = (faulty_city ()).City.registry in
      ( [ inst.City.registry; ra; rb ],
        [
          Sched.spec ~id:"ratings" ~services:[ "getrating" ] ra;
          Sched.spec ~id:"geo" ~services:[ "getnearbyrestos"; "getnearbymuseums" ] rb;
          Sched.spec ~id:"rest" ~services:[ "gethotels" ] inst.City.registry;
        ] )
  in
  let sched = Sched.create specs in
  let _ =
    with_pool jobs (fun pool ->
        Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
          ~strategy:Lazy_eval.nfqa_typed ?pool ~dispatch:(Sched.dispatch sched)
          inst.City.query inst.City.doc)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s@jobs=%d: same fault fates across shard registries" name jobs)
    true
    (fates base_regs = fates regs)

(* ------------------------------------------------------------------ *)
(* report ≡ metrics ≡ trace through the scheduler *)

let rec count_named name (ns : Trace.node list) =
  List.fold_left
    (fun acc (n : Trace.node) ->
      acc + (if n.Trace.node_name = name then 1 else 0) + count_named name n.Trace.children)
    0 ns

let test_reconciliation () =
  let obs = Obs.create () in
  let inst = faulty_city () in
  let r2 = (faulty_city ()).City.registry in
  let sched =
    Sched.create [ Sched.spec ~id:"r1" inst.City.registry; Sched.spec ~id:"r2" r2 ]
  in
  let r =
    with_pool 4 (fun pool ->
        Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
          ~strategy:Lazy_eval.nfqa_typed ?pool ~obs ~dispatch:(Sched.dispatch sched)
          inst.City.query inst.City.doc)
  in
  let m = obs.Obs.metrics in
  let counter k = int_of_float (Metrics.value m k) in
  Alcotest.(check int) "eval.invoked metric" r.Engine.invoked (counter "eval.invoked");
  Alcotest.(check int) "eval.sharded_calls metric" r.Engine.sharded_calls
    (counter "eval.sharded_calls");
  Alcotest.(check int) "eval.rebalanced_calls metric" r.Engine.rebalanced_calls
    (counter "eval.rebalanced_calls");
  Alcotest.(check int) "eval.rerouted_calls metric" r.Engine.rerouted_calls
    (counter "eval.rerouted_calls");
  Alcotest.(check int) "eval.retries metric" r.Engine.retries (counter "eval.retries");
  Alcotest.(check int) "eval.bytes metric" r.Engine.bytes_transferred (counter "eval.bytes");
  (* the scheduler feeds its per-shard latency histogram into the run's
     metrics registry; the adaptive estimator reads it back as quantiles *)
  let observed =
    List.exists
      (fun id ->
        Metrics.quantile m ~labels:[ ("shard", id) ] "sched.replica_cost" 0.5 <> None)
      (Sched.shard_ids sched)
  in
  Alcotest.(check bool) "sched.replica_cost histogram populated" true observed;
  (match Trace.well_formed obs.Obs.trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("trace ill-formed: " ^ e));
  match Trace.tree obs.Obs.trace with
  | Error e -> Alcotest.fail ("trace has no tree: " ^ e)
  | Ok forest ->
    let attempts =
      List.fold_left
        (fun acc (i : Registry.invocation) ->
          if i.Registry.cached then acc else acc + 1 + i.Registry.retries)
        0
        (Registry.history inst.City.registry @ Registry.history r2)
    in
    Alcotest.(check int) "one service.attempt span per wire attempt across shards" attempts
      (count_named "service.attempt" forest)

(* ------------------------------------------------------------------ *)
(* Budgets *)

let test_budget_degrades () =
  let inst = faulty_city () in
  let sched = Sched.create [ Sched.spec ~id:"only" ~budget:5 inst.City.registry ] in
  let r =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
      ~strategy:Lazy_eval.nfqa_typed ~dispatch:(Sched.dispatch sched) inst.City.query
      inst.City.doc
  in
  Alcotest.(check bool) "degrades to incomplete" false r.Engine.complete;
  Alcotest.(check int) "serves exactly the budget" 5 r.Engine.invoked;
  Alcotest.(check bool) "budget-exhausted calls are failures" true (r.Engine.failed_calls > 0);
  Alcotest.(check (option int)) "total budget sums when all bounded" (Some 5)
    (Sched.total_budget sched)

let test_total_budget () =
  let reg () = (faulty_city ()).City.registry in
  let bounded =
    Sched.create [ Sched.spec ~id:"a" ~budget:3 (reg ()); Sched.spec ~id:"b" ~budget:4 (reg ()) ]
  in
  Alcotest.(check (option int)) "sum of budgets" (Some 7) (Sched.total_budget bounded);
  let open_ended =
    Sched.create [ Sched.spec ~id:"a" ~budget:3 (reg ()); Sched.spec ~id:"b" (reg ()) ]
  in
  Alcotest.(check (option int))
    "unbounded as soon as one shard is" None
    (Sched.total_budget open_ended)

let test_spec_validation () =
  let reg = (faulty_city ()).City.registry in
  Alcotest.check_raises "negative budget" (Invalid_argument "Sched.spec: negative budget")
    (fun () -> ignore (Sched.spec ~id:"x" ~budget:(-1) reg));
  Alcotest.check_raises "zero slots" (Invalid_argument "Sched.spec: slots must be at least 1")
    (fun () -> ignore (Sched.spec ~id:"x" ~slots:0 reg));
  Alcotest.check_raises "no shards" (Invalid_argument "Sched.create: no shards") (fun () ->
      ignore (Sched.create []));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Sched.create: duplicate shard id \"x\"") (fun () ->
      ignore (Sched.create [ Sched.spec ~id:"x" reg; Sched.spec ~id:"x" reg ]));
  let sched = Sched.create [ Sched.spec ~id:"x" reg ] in
  Alcotest.check_raises "unknown service" (Registry.Unknown_service "nope") (fun () ->
      ignore (Sched.dispatch sched ~name:"nope" ~params:[] ~obs:Obs.null ()))

(* ------------------------------------------------------------------ *)
(* Placement: truthful cost priors make the adaptive mode route around
   a slow replica that static round-robin drags through. *)

let costed latency =
  let reg = Registry.create () in
  Registry.register reg ~name:"s"
    ~cost:{ Registry.latency; per_byte = 0.0 }
    (fun _ -> [ Axml_xml.Parse.tree "<x/>" ]);
  reg

let drive sched n =
  let d = Sched.dispatch sched in
  for _ = 1 to n do
    ignore (d ~name:"s" ~params:[] ~obs:Obs.null ())
  done

let test_adaptive_prefers_cheap () =
  (* the slow replica is declared FIRST, so cost is the only thing that
     can move load off it *)
  let slow = costed 0.05 and fast = costed 0.01 in
  let sched =
    Sched.create ~mode:Sched.Adaptive
      [
        Sched.spec ~id:"slow" ~static_cost:0.05 slow;
        Sched.spec ~id:"fast" ~static_cost:0.01 fast;
      ]
  in
  drive sched 10;
  Alcotest.(check (list (pair string int)))
    "all ten calls drain through the cheap replica"
    [ ("slow", 0); ("fast", 10) ]
    (Sched.dispatched sched);
  Alcotest.(check int) "every placement was a rebalance" 10 (Sched.rebalanced sched)

(* The estimator's service.cost fallback: a shard the scheduler has
   never routed through (no [sched.replica_cost] samples, no EWMA) is
   seeded from the per-service [service.cost] histogram the registry
   records for every invocation — so traffic served before this
   scheduler existed still informs placement. Here the fresh shard's
   static prior lies expensive while pre-scheduler history says it is
   cheap; without the fallback the first call would stay on the
   already-observed (and genuinely slow) replica. *)
let test_service_cost_seeds_estimate () =
  let observed = costed 0.5 and fresh = costed 0.001 in
  let sched =
    Sched.create ~mode:Sched.Adaptive
      [
        Sched.spec ~id:"observed" ~static_cost:0.001 observed;
        Sched.spec ~id:"fresh" ~static_cost:1.0 fresh;
      ]
  in
  let obs = Obs.measuring () in
  let m = obs.Obs.metrics in
  (* scheduler-fed history for "observed" only: it is slow *)
  for _ = 1 to 8 do
    Metrics.observe m ~labels:[ ("shard", "observed") ] "sched.replica_cost" 0.5
  done;
  (* pre-scheduler per-service history: the service is cheap where it
     actually ran — which was the fresh replica's backend *)
  for _ = 1 to 8 do
    Metrics.observe m ~labels:[ ("service", "s") ] "service.cost" 0.001
  done;
  let d = Sched.dispatch sched in
  for _ = 1 to 6 do
    ignore (d ~name:"s" ~params:[] ~obs ())
  done;
  Alcotest.(check (list (pair string int)))
    "service.cost history routes every call to the fresh replica"
    [ ("observed", 0); ("fresh", 6) ]
    (Sched.dispatched sched)

let test_round_robin_alternates () =
  let slow = costed 0.05 and fast = costed 0.01 in
  let sched =
    Sched.create ~mode:Sched.Round_robin
      [
        Sched.spec ~id:"slow" ~static_cost:0.05 slow;
        Sched.spec ~id:"fast" ~static_cost:0.01 fast;
      ]
  in
  drive sched 10;
  Alcotest.(check (list (pair string int)))
    "cost-blind rotation splits evenly"
    [ ("slow", 5); ("fast", 5) ]
    (Sched.dispatched sched)

(* ------------------------------------------------------------------ *)
(* A replica dying mid-run: calls on the dead peer exhaust their retry
   loop, re-route to the surviving replica, and the evaluation still
   completes with the single-registry answers. *)

let test_replica_death_reroutes () =
  let inst = City.generate city_cfg in
  let base =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
      ~strategy:Lazy_eval.nfqa_typed inst.City.query inst.City.doc
  in
  let mk_server () =
    let served = City.generate city_cfg in
    let server = Server.create ~registry:served.City.registry () in
    Server.start server;
    server
  in
  let doomed = mk_server () and survivor = mk_server () in
  let retry =
    {
      Registry.default_policy with
      Registry.max_retries = 1;
      base_backoff = 0.001;
      max_backoff = 0.002;
    }
  in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter Client.close !clients;
      Server.stop doomed;
      Server.stop survivor)
    (fun () ->
      let remote srv =
        let client = Client.create ~host:"127.0.0.1" ~port:(Server.port srv) () in
        clients := client :: !clients;
        let reg = Registry.create () in
        ignore (Remote.register ~memoize:false ~retry ~registry:reg client);
        reg
      in
      let r1 = remote doomed and r2 = remote survivor in
      let sched = Sched.create [ Sched.spec ~id:"doomed" r1; Sched.spec ~id:"survivor" r2 ] in
      (* the first reply is the doomed peer's last *)
      Server.kill_after_reply doomed;
      let fresh = City.generate city_cfg in
      let r =
        Lazy_eval.run ~registry:r1 ~schema:fresh.City.schema ~strategy:Lazy_eval.nfqa_typed
          ~dispatch:(Sched.dispatch sched) fresh.City.query fresh.City.doc
      in
      Alcotest.(check string)
        "answers identical to the local run" (digest base.Engine.answers)
        (digest r.Engine.answers);
      Alcotest.(check int) "same invocation count" base.Engine.invoked r.Engine.invoked;
      Alcotest.(check bool) "still complete" true r.Engine.complete;
      Alcotest.(check bool) "re-routing actually happened" true (r.Engine.rerouted_calls > 0);
      Alcotest.(check bool)
        "defeats were accounted (retries on the dead peer)" true (r.Engine.retries > 0))

(* ------------------------------------------------------------------ *)
(* The registry routing view *)

let test_registry_view () =
  let a = Registry.create () and b = Registry.create () in
  Registry.register a ~name:"x" (fun _ -> []);
  Registry.register a ~name:"shared" (fun _ -> []);
  Registry.register b ~name:"shared" ~push_capable:false (fun _ -> []);
  Registry.register b ~name:"y" (fun _ -> []);
  let v = Registry.view [ a; b ] in
  Alcotest.(check (list string)) "names union, first-seen order" [ "x"; "shared"; "y" ]
    (Registry.view_names v);
  Alcotest.(check bool) "registered anywhere" true (Registry.view_is_registered v "y");
  Alcotest.(check bool) "not registered" false (Registry.view_is_registered v "z");
  Alcotest.(check int) "owners of shared" 2 (List.length (Registry.view_owners v "shared"));
  Alcotest.(check bool)
    "push-capable only when every owner is" false
    (Registry.view_push_capable v "shared");
  Alcotest.(check bool) "push-capable single owner" true (Registry.view_push_capable v "x");
  Alcotest.check_raises "unknown name raises" (Registry.Unknown_service "z") (fun () ->
      ignore (Registry.view_push_capable v "z"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sched"
    [
      ( "differential",
        [
          Alcotest.test_case "replicated jobs=1" `Quick
            (test_differential ~name:"replicated" ~specs_of:replica_specs ~jobs:1);
          Alcotest.test_case "replicated jobs=4" `Quick
            (test_differential ~name:"replicated" ~specs_of:replica_specs ~jobs:4);
          Alcotest.test_case "sharded jobs=1" `Quick
            (test_differential ~name:"sharded" ~specs_of:shard_specs ~jobs:1);
          Alcotest.test_case "sharded jobs=4" `Quick
            (test_differential ~name:"sharded" ~specs_of:shard_specs ~jobs:4);
          Alcotest.test_case "replicated fates jobs=4" `Quick
            (test_fates ~name:"replicated" ~jobs:4);
          Alcotest.test_case "sharded fates jobs=4" `Quick
            (test_fates ~name:"sharded" ~jobs:4);
        ] );
      ( "reconciliation",
        [ Alcotest.test_case "report = metrics = trace across shards" `Quick test_reconciliation ]
      );
      ( "budgets",
        [
          Alcotest.test_case "exhaustion degrades to incomplete" `Quick test_budget_degrades;
          Alcotest.test_case "total budget rollup" `Quick test_total_budget;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "placement",
        [
          Alcotest.test_case "adaptive prefers the cheap replica" `Quick
            test_adaptive_prefers_cheap;
          Alcotest.test_case "round-robin is cost-blind" `Quick test_round_robin_alternates;
          Alcotest.test_case "service.cost history seeds the estimate" `Quick
            test_service_cost_seeds_estimate;
        ] );
      ( "failover",
        [ Alcotest.test_case "mid-run replica death re-routes" `Quick test_replica_death_reroutes ]
      );
      ("view", [ Alcotest.test_case "multi-registry routing view" `Quick test_registry_view ]);
    ]
