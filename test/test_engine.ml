(* Differential suite for the unified evaluation engine.

   The fixture constants below are the exact reports the pre-refactor
   evaluators — each still owning a private invocation driver — produced
   on these seeded workloads; they were captured before [lib/engine]
   existed. Replaying the same workloads through the engine must
   reproduce them bit for bit: answers (compared as a digest of their
   XML serialization), every counter including the fault accounting,
   and the per-invocation fault fates — at jobs = 1 and jobs = 4, for
   both strategies. The suite also covers the report ≡ metrics ≡ trace
   reconciliation invariant (now emitted from exactly one place), the
   budget guard at every pool width, the registry's single-flight
   memoization, and remote evaluation returning the same report over
   the wire. *)

module Doc = Axml_doc
module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Tree = Axml_xml.Tree
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module Engine = Axml_engine.Engine
module Lazy_eval = Axml_core.Lazy_eval
module City = Axml_workload.City
module Synthetic = Axml_workload.Synthetic
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Json = Axml_obs.Json
module Exec = Axml_exec.Exec
module Server = Axml_net.Server
module Client = Axml_net.Client

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Exec.create ~jobs () in
    Fun.protect ~finally:(fun () -> Exec.shutdown pool) (fun () -> f (Some pool))
  end

let digest answers =
  Digest.to_hex
    (Digest.string (Axml_xml.Print.forest_to_string (Eval.bindings_to_xml answers)))

(* ------------------------------------------------------------------ *)
(* Pre-refactor fixtures *)

type fixture = {
  f_digest : string;
  f_invoked : int;
  f_pushed : int;
  f_rounds : int;
  f_passes : int;
  f_relevance_evals : int;
  f_candidates_checked : int;
  f_layer_count : int;
  f_simulated : float;
  f_bytes : int;
  f_retries : int;
  f_timeouts : int;
  f_failed : int;
  f_backoff : float;
  f_complete : bool;
}

let city_faulty_naive =
  {
    f_digest = "3b7eda9da5631985a1ba767795adcd7e";
    f_invoked = 30;
    f_pushed = 0;
    f_rounds = 1;
    f_passes = 0;
    f_relevance_evals = 0;
    f_candidates_checked = 0;
    f_layer_count = 0;
    f_simulated = 0.901835;
    f_bytes = 19570;
    f_retries = 13;
    f_timeouts = 0;
    f_failed = 0;
    f_backoff = 2.2;
    f_complete = true;
  }

let city_faulty_lazy =
  {
    f_digest = "3b7eda9da5631985a1ba767795adcd7e";
    f_invoked = 17;
    f_pushed = 0;
    f_rounds = 2;
    f_passes = 9;
    f_relevance_evals = 16;
    f_candidates_checked = 0;
    f_layer_count = 7;
    f_simulated = 1.101856;
    f_bytes = 12685;
    f_retries = 6;
    f_timeouts = 0;
    f_failed = 0;
    f_backoff = 1.0;
    f_complete = true;
  }

let city_push_lazy =
  {
    f_digest = "d8565f3e39b695e7c1198adcbcebb491";
    f_invoked = 5;
    f_pushed = 5;
    f_rounds = 3;
    f_passes = 10;
    f_relevance_evals = 17;
    f_candidates_checked = 0;
    f_layer_count = 7;
    f_simulated = 0.150665;
    f_bytes = 968;
    f_retries = 0;
    f_timeouts = 0;
    f_failed = 0;
    f_backoff = 0.0;
    f_complete = true;
  }

let synth_faulty_naive =
  {
    f_digest = "d19b9966313f06b4b4a54c252942abf4";
    f_invoked = 48;
    f_pushed = 0;
    f_rounds = 1;
    f_passes = 0;
    f_relevance_evals = 0;
    f_candidates_checked = 0;
    f_layer_count = 0;
    f_simulated = 0.900004;
    f_bytes = 1618;
    f_retries = 71;
    f_timeouts = 0;
    f_failed = 17;
    f_backoff = 14.9;
    f_complete = false;
  }

let synth_faulty_lazy =
  {
    f_digest = "d19b9966313f06b4b4a54c252942abf4";
    f_invoked = 10;
    f_pushed = 0;
    f_rounds = 10;
    f_passes = 13;
    f_relevance_evals = 35;
    f_candidates_checked = 0;
    f_layer_count = 3;
    f_simulated = 4.50041;
    f_bytes = 410;
    f_retries = 20;
    f_timeouts = 0;
    f_failed = 0;
    f_backoff = 3.0;
    f_complete = true;
  }

let check_fixture name (f : fixture) (r : Engine.report) =
  let c what = name ^ ": " ^ what in
  Alcotest.(check string) (c "answers digest") f.f_digest (digest r.Engine.answers);
  Alcotest.(check int) (c "invoked") f.f_invoked r.Engine.invoked;
  Alcotest.(check int) (c "pushed") f.f_pushed r.Engine.pushed;
  Alcotest.(check int) (c "rounds") f.f_rounds r.Engine.rounds;
  Alcotest.(check int) (c "passes") f.f_passes r.Engine.passes;
  Alcotest.(check int) (c "relevance_evals") f.f_relevance_evals r.Engine.relevance_evals;
  Alcotest.(check int)
    (c "candidates_checked") f.f_candidates_checked r.Engine.candidates_checked;
  Alcotest.(check int) (c "layer_count") f.f_layer_count r.Engine.layer_count;
  Alcotest.(check (float 1e-9)) (c "simulated clock") f.f_simulated r.Engine.simulated_seconds;
  Alcotest.(check int) (c "bytes") f.f_bytes r.Engine.bytes_transferred;
  Alcotest.(check int) (c "retries") f.f_retries r.Engine.retries;
  Alcotest.(check int) (c "timeouts") f.f_timeouts r.Engine.timeouts;
  Alcotest.(check int) (c "failed_calls") f.f_failed r.Engine.failed_calls;
  Alcotest.(check (float 1e-9)) (c "backoff") f.f_backoff r.Engine.backoff_seconds;
  Alcotest.(check bool) (c "complete") f.f_complete r.Engine.complete

(* ------------------------------------------------------------------ *)
(* Workloads (identical to the pre-refactor capture runs) *)

let city_cfg =
  {
    City.default_config with
    City.hotels = 10;
    seed = 7;
    extensional_fraction = 1.0;
    intensional_rating_fraction = 1.0;
    intensional_nearby_fraction = 1.0;
    target_fraction = 1.0;
    five_star_fraction = 0.6;
  }

let push_cfg = { City.default_config with City.hotels = 12; seed = 3 }
let synth_cfg = { Synthetic.default_config with Synthetic.nodes = 2000; seed = 13 }

let faulty_city () =
  let inst = City.generate city_cfg in
  Registry.inject_faults inst.City.registry ~seed:5 [ Faults.Flaky 0.3 ];
  inst

let faulty_synth () =
  let inst = Synthetic.generate synth_cfg in
  Registry.inject_faults inst.Synthetic.registry ~seed:9 [ Faults.Flaky 0.6 ];
  inst

let run_city_naive ?obs pool =
  let inst = faulty_city () in
  let r = Engine.naive_run ?pool ?obs inst.City.registry inst.City.query inst.City.doc in
  (r, inst.City.registry)

let run_city_lazy ?obs pool =
  let inst = faulty_city () in
  let r =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
      ~strategy:Lazy_eval.nfqa_typed ?pool ?obs inst.City.query inst.City.doc
  in
  (r, inst.City.registry)

let run_city_push ?obs pool =
  let inst = City.generate push_cfg in
  let r =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
      ~strategy:(Lazy_eval.with_push Lazy_eval.nfqa_typed) ?pool ?obs inst.City.query
      inst.City.doc
  in
  (r, inst.City.registry)

let run_synth_naive ?obs pool =
  let inst = faulty_synth () in
  let r =
    Engine.naive_run ?pool ?obs inst.Synthetic.registry inst.Synthetic.query
      inst.Synthetic.doc
  in
  (r, inst.Synthetic.registry)

let run_synth_lazy ?obs pool =
  let inst = faulty_synth () in
  let r =
    Lazy_eval.run ~registry:inst.Synthetic.registry ~schema:inst.Synthetic.schema
      ~strategy:Lazy_eval.nfqa_typed ?pool ?obs inst.Synthetic.query inst.Synthetic.doc
  in
  (r, inst.Synthetic.registry)

let fixtures =
  [
    ("city_faulty_naive", city_faulty_naive, run_city_naive);
    ("city_faulty_lazy", city_faulty_lazy, run_city_lazy);
    ("city_push_lazy", city_push_lazy, run_city_push);
    ("synth_faulty_naive", synth_faulty_naive, run_synth_naive);
    ("synth_faulty_lazy", synth_faulty_lazy, run_synth_lazy);
  ]

let test_fixtures ~jobs () =
  with_pool jobs (fun pool ->
      List.iter
        (fun (name, fixture, run) ->
          let r, _ = run ?obs:None pool in
          check_fixture (Printf.sprintf "%s@jobs=%d" name jobs) fixture r)
        fixtures)

(* An invocation's identity and fate, order-independent: concurrent
   histories interleave, so compare multisets. *)
let fates registry =
  List.sort compare
    (List.map
       (fun (i : Registry.invocation) ->
         ( i.Registry.service,
           i.Registry.request_bytes,
           i.Registry.retries,
           i.Registry.timeouts,
           i.Registry.failed ))
       (Registry.history registry))

let test_fault_fates_across_jobs () =
  List.iter
    (fun (name, run) ->
      let _, seq_reg = with_pool 1 (fun pool -> run ?obs:None pool) in
      let _, pooled_reg = with_pool 4 (fun pool -> run ?obs:None pool) in
      Alcotest.(check bool)
        (name ^ ": same fault fates at jobs=1 and jobs=4")
        true
        (fates seq_reg = fates pooled_reg))
    [
      ("city_faulty_naive", run_city_naive);
      ("city_faulty_lazy", run_city_lazy);
      ("synth_faulty_naive", run_synth_naive);
      ("synth_faulty_lazy", run_synth_lazy);
    ]

(* ------------------------------------------------------------------ *)
(* report ≡ metrics ≡ trace, for both strategies, through the one
   emission point in the engine *)

let rec count_named name (ns : Trace.node list) =
  List.fold_left
    (fun acc (n : Trace.node) ->
      acc + (if n.Trace.node_name = name then 1 else 0) + count_named name n.Trace.children)
    0 ns

let check_reconciles name (r : Engine.report) (obs : Obs.t) registry =
  let m = obs.Obs.metrics in
  let counter k = int_of_float (Metrics.value m k) in
  Alcotest.(check int) (name ^ ": eval.invoked metric") r.Engine.invoked
    (counter "eval.invoked");
  Alcotest.(check int) (name ^ ": eval.pushed metric") r.Engine.pushed
    (counter "eval.pushed");
  Alcotest.(check int) (name ^ ": eval.rounds metric") r.Engine.rounds
    (counter "eval.rounds");
  Alcotest.(check int) (name ^ ": eval.retries metric") r.Engine.retries
    (counter "eval.retries");
  Alcotest.(check int) (name ^ ": eval.timeouts metric") r.Engine.timeouts
    (counter "eval.timeouts");
  Alcotest.(check int)
    (name ^ ": eval.failed_calls metric")
    r.Engine.failed_calls (counter "eval.failed_calls");
  Alcotest.(check int) (name ^ ": eval.bytes metric") r.Engine.bytes_transferred
    (counter "eval.bytes");
  (match Trace.well_formed obs.Obs.trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail (name ^ ": trace ill-formed: " ^ e));
  match Trace.tree obs.Obs.trace with
  | Error e -> Alcotest.fail (name ^ ": trace has no tree: " ^ e)
  | Ok forest ->
    let history = Registry.history registry in
    let uncached =
      List.filter (fun (i : Registry.invocation) -> not i.Registry.cached) history
    in
    let attempts =
      List.fold_left
        (fun acc (i : Registry.invocation) -> acc + 1 + i.Registry.retries)
        0 uncached
    in
    Alcotest.(check int)
      (name ^ ": one service.attempt span per wire attempt")
      attempts
      (count_named "service.attempt" forest);
    Alcotest.(check int)
      (name ^ ": one eval.round span per round")
      r.Engine.rounds
      (count_named "eval.round" forest)

let test_reconciliation () =
  List.iter
    (fun (name, run) ->
      let obs = Obs.create () in
      let r, registry = with_pool 4 (fun pool -> run ?obs:(Some obs) pool) in
      check_reconciles name r obs registry)
    [
      ("city_faulty_naive", run_city_naive);
      ("city_faulty_lazy", run_city_lazy);
      ("city_push_lazy", run_city_push);
      ("synth_faulty_naive", run_synth_naive);
    ]

(* ------------------------------------------------------------------ *)
(* The whole-batch-fits-budget guard: the budget cuts at the same call
   at every pool width *)

let test_budget_cut_stable_across_jobs () =
  let run jobs =
    let inst = City.generate city_cfg in
    with_pool jobs (fun pool ->
        Engine.naive_run ~max_calls:5 ?pool inst.City.registry inst.City.query
          inst.City.doc)
  in
  let seq = run 1 in
  Alcotest.(check bool) "budget run is incomplete" false seq.Engine.complete;
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check int)
        (Printf.sprintf "invoked at jobs=%d" jobs)
        seq.Engine.invoked r.Engine.invoked;
      Alcotest.(check string)
        (Printf.sprintf "answers at jobs=%d" jobs)
        (digest seq.Engine.answers) (digest r.Engine.answers);
      Alcotest.(check bool)
        (Printf.sprintf "complete at jobs=%d" jobs)
        seq.Engine.complete r.Engine.complete)
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Single-flight memoization: a pooled batch of identical calls to a
   memoized service runs the behaviour exactly once (the double-miss
   race regression) *)

let test_memo_single_flight () =
  let registry = Registry.create () in
  let mu = Mutex.create () in
  let runs = ref 0 in
  Registry.register registry ~name:"slow" ~memoize:true (fun params ->
      Mutex.protect mu (fun () -> incr runs);
      (* widen the race window: every duplicate has ample time to reach
         the cache while the first computation is still in flight *)
      Thread.yield ();
      Unix.sleepf 0.02;
      params);
  let params = [ Tree.Text "the-one-parameter" ] in
  let results =
    with_pool 8 (fun pool ->
        let pool = Option.get pool in
        Exec.map_batch pool
          (fun _ -> fst (Registry.invoke registry ~name:"slow" ~params ()))
          (List.init 8 Fun.id))
  in
  List.iter
    (fun r -> Alcotest.(check bool) "every caller got the result" true (r = params))
    results;
  Alcotest.(check int) "behaviour ran exactly once" 1 !runs;
  let history = Registry.history registry in
  Alcotest.(check int) "one invocation record per caller" 8 (List.length history);
  Alcotest.(check int) "exactly one full-cost (uncached) record" 1
    (List.length
       (List.filter (fun (i : Registry.invocation) -> not i.Registry.cached) history));
  Alcotest.(check int) "seven cache hits" 7
    (List.length (List.filter (fun (i : Registry.invocation) -> i.Registry.cached) history))

let test_memo_waiter_takes_over () =
  (* If the filler permanently fails, a waiter must take over as the
     next filler instead of deadlocking on the abandoned claim. *)
  let registry = Registry.create () in
  let mu = Mutex.create () in
  let runs = ref 0 in
  Registry.register registry ~name:"flaky" ~memoize:true
    ~retry:{ Registry.default_policy with Registry.max_retries = 0 }
    (fun params ->
      let n = Mutex.protect mu (fun () -> incr runs; !runs) in
      Thread.yield ();
      if n = 1 then failwith "first filler dies" else params);
  let params = [ Tree.Text "p" ] in
  let results =
    with_pool 4 (fun pool ->
        let pool = Option.get pool in
        Exec.map_batch pool
          (fun _ ->
            match Registry.invoke registry ~name:"flaky" ~params () with
            | forest, _ -> Some forest
            | exception _ -> None)
          (List.init 4 Fun.id))
  in
  let ok = List.filter_map Fun.id results in
  Alcotest.(check bool) "someone failed (the first filler)" true (List.length ok < 4);
  Alcotest.(check bool) "a waiter took over and succeeded" true (List.length ok >= 1);
  List.iter (fun r -> Alcotest.(check bool) "successors share the result" true (r = params)) ok;
  Alcotest.(check bool) "behaviour ran at most twice" true (!runs <= 2)

(* The same two regressions under raw-thread stress: many more threads
   than pool slots, several distinct keys, and a filler that fails a
   fixed number of times before succeeding. *)

let test_memo_stress () =
  let threads = 32 and keys = 5 in
  let registry = Registry.create () in
  let mu = Mutex.create () in
  let runs = ref 0 in
  Registry.register registry ~name:"slow" ~memoize:true (fun params ->
      Mutex.protect mu (fun () -> incr runs);
      Thread.yield ();
      Unix.sleepf 0.005;
      params);
  for key = 1 to keys do
    let params = [ Tree.Text (Printf.sprintf "key-%d" key) ] in
    let results = Array.make threads [] in
    let ts =
      List.init threads (fun i ->
          Thread.create
            (fun () -> results.(i) <- fst (Registry.invoke registry ~name:"slow" ~params ()))
            ())
    in
    List.iter Thread.join ts;
    Array.iter
      (fun r -> Alcotest.(check bool) "every thread got the result" true (r = params))
      results
  done;
  Alcotest.(check int) "one fill per key" keys !runs;
  let cached, missed =
    List.partition (fun (i : Registry.invocation) -> i.Registry.cached) (Registry.history registry)
  in
  Alcotest.(check int) "one uncached record per key" keys (List.length missed);
  Alcotest.(check int) "every other caller hit the cache"
    (keys * (threads - 1))
    (List.length cached)

let test_memo_stress_filler_failures () =
  (* The first three fills die; single-flight hands the claim to one
     waiter at a time, so exactly four runs happen, exactly three
     callers observe the failure, and everyone else shares the one
     successful fill. *)
  let threads = 16 in
  let registry = Registry.create () in
  let mu = Mutex.create () in
  let runs = ref 0 in
  Registry.register registry ~name:"flaky" ~memoize:true
    ~retry:{ Registry.default_policy with Registry.max_retries = 0 }
    (fun params ->
      let n = Mutex.protect mu (fun () -> incr runs; !runs) in
      Thread.yield ();
      Unix.sleepf 0.002;
      if n <= 3 then failwith "filler dies" else params);
  let params = [ Tree.Text "p" ] in
  let results = Array.make threads None in
  let ts =
    List.init threads (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              (match Registry.invoke registry ~name:"flaky" ~params () with
              | forest, _ -> Some forest
              | exception _ -> None))
          ())
  in
  List.iter Thread.join ts;
  let ok = Array.to_list results |> List.filter_map Fun.id in
  Alcotest.(check int) "exactly four fills (three doomed + one good)" 4 !runs;
  Alcotest.(check int) "exactly three callers saw the failure" (threads - 3) (List.length ok);
  List.iter
    (fun r -> Alcotest.(check bool) "survivors share the result" true (r = params))
    ok

(* ------------------------------------------------------------------ *)
(* Remote evaluation: the peer answers with the same unified report *)

let test_remote_eval () =
  let server_inst = City.generate push_cfg in
  let server = Server.create ~registry:server_inst.City.registry () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let client = Client.create ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (* the query and the document travel by value: serialize a
             fresh (identical) instance before anything mutates it *)
          let wire_inst = City.generate push_cfg in
          let query_node = wire_inst.City.query.P.root in
          let doc_tree = Doc.to_xml wire_inst.City.doc in
          (* naive: every report field is deterministic (no faults, no
             analysis time), so the remote JSON must equal the local
             engine serialization byte for byte *)
          let local_inst = City.generate push_cfg in
          let local =
            Engine.naive_run local_inst.City.registry local_inst.City.query
              local_inst.City.doc
          in
          let remote = Client.eval client ~strategy:"naive" query_node doc_tree in
          Alcotest.(check string) "naive report identical over the wire"
            (Json.to_string (Engine.report_to_json local))
            (Json.to_string remote);
          (* lazy: analysis_seconds is wall-clock CPU time, so compare
             the deterministic members *)
          let local_inst = City.generate push_cfg in
          let lazy_local =
            Lazy_eval.run ~registry:local_inst.City.registry
              ~strategy:Lazy_eval.default local_inst.City.query local_inst.City.doc
          in
          let lazy_remote = Client.eval client ~strategy:"lazy" query_node doc_tree in
          List.iter
            (fun field ->
              Alcotest.(check string)
                ("lazy report field " ^ field)
                (Json.to_string (Json.member field (Engine.report_to_json lazy_local)))
                (Json.to_string (Json.member field lazy_remote)))
            [ "answers"; "invoked"; "rounds"; "bytes_transferred"; "complete" ];
          (* an unknown strategy is a non-transient protocol-level error *)
          match Client.eval client ~strategy:"psychic" query_node doc_tree with
          | _ -> Alcotest.fail "expected Transport_error for unknown strategy"
          | exception Registry.Transport_error { transient; _ } ->
            Alcotest.(check bool) "unknown strategy is not transient" false transient))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "engine"
    [
      ( "differential",
        [
          quick "pre-refactor fixtures at jobs=1" (test_fixtures ~jobs:1);
          quick "pre-refactor fixtures at jobs=4" (test_fixtures ~jobs:4);
          quick "fault fates at jobs=1 and jobs=4" test_fault_fates_across_jobs;
          quick "budget cuts identically at any jobs" test_budget_cut_stable_across_jobs;
        ] );
      ( "reconciliation",
        [ quick "report = metrics = trace for both strategies" test_reconciliation ] );
      ( "memoization",
        [
          quick "pooled duplicates run the behaviour once" test_memo_single_flight;
          quick "waiter takes over a failed filler" test_memo_waiter_takes_over;
          quick "raw-thread stress: one fill per key" test_memo_stress;
          quick "raw-thread stress: filler failures hand over" test_memo_stress_filler_failures;
        ] );
      ("remote", [ quick "eval over the wire returns the one report" test_remote_eval ]);
    ]
