(* Property tests for the snapshot-view layer (lib/doc Axml_doc.View):
   round-trips, incremental splice patching, parallel ≡ sequential
   matching and F-guide memoization on the generation counter. *)

module Doc = Axml_doc
module View = Axml_doc.View
module Tree = Axml_xml.Tree
module Parser = Axml_query.Parser
module Eval = Axml_query.Eval
module Fguide = Axml_core.Fguide

(* ------------------------------------------------------------------ *)
(* Generators: random trees that, unlike [Gen.gen_tree], also embed
   function calls — the splice driver needs something to invoke. *)

let gen_axml_tree =
  let open QCheck.Gen in
  let label = oneofl [ "a"; "b"; "c"; "hotel" ] in
  let text_gen = oneofl [ "x"; "1"; "v" ] in
  sized
  @@ fix (fun self n ->
         if n = 0 then map Tree.text text_gen
         else
           frequency
             [
               (1, map Tree.text text_gen);
               ( 1,
                 map
                   (fun p ->
                     Tree.element Doc.call_elem_name ~attrs:[ ("name", "f") ] [ p ])
                   (self 0) );
               ( 3,
                 map2
                   (fun name children -> Tree.element name children)
                   label
                   (list_size (int_bound 3) (self (n / 2))) );
             ])

let gen_rooted =
  QCheck.Gen.map (fun c -> Tree.element "root" [ c ]) gen_axml_tree

type splice_case = { tree : Tree.t; splice_seed : int }

let print_splice_case c =
  Printf.sprintf "seed=%d doc=%s" c.splice_seed
    (Axml_xml.Print.to_string c.tree)

let arb_splice_case =
  QCheck.make ~print:print_splice_case
    QCheck.Gen.(
      map
        (fun (tree, splice_seed) -> { tree; splice_seed })
        (pair gen_rooted (int_bound 100_000)))

(* The result-forest pool a seeded splice driver draws from; includes
   the empty forest (plain deletion) and a forest that introduces a
   fresh call. *)
let result_pool =
  [|
    [];
    [ Tree.text "5" ];
    [ Tree.element "b" []; Tree.text "y" ];
    [
      Tree.element "a"
        [ Tree.element Doc.call_elem_name ~attrs:[ ("name", "g") ] [ Tree.text "p" ] ];
    ];
  |]

(* ------------------------------------------------------------------ *)
(* Structural invariants of a view: spans nest, parents point backwards
   and enclose their children, labels mirror the underlying nodes. *)

let check_view_invariants v =
  let n = View.size v in
  for i = 0 to n - 1 do
    let e = View.subtree_end v i in
    if not (e > i && e <= n) then
      Alcotest.failf "bad span at %d: [%d,%d) of %d" i i e n;
    let p = View.parent v i in
    if i = 0 then (
      if p <> -1 then Alcotest.failf "root parent %d" p)
    else begin
      if not (p >= 0 && p < i) then Alcotest.failf "parent %d of %d" p i;
      if not (View.subtree_end v p >= e) then
        Alcotest.failf "parent span of %d does not enclose child %d" p i
    end;
    if View.label v i <> (View.node v i).Doc.label then
      Alcotest.failf "label mismatch at %d" i;
    (match View.index_of v (View.node v i) with
    | Some j when j = i -> ()
    | _ -> Alcotest.failf "index_of broken at %d" i);
    let kids = View.children v i in
    List.iter
      (fun k ->
        if View.parent v k <> i then
          Alcotest.failf "children/parent disagree at %d -> %d" i k)
      kids
  done

let check_same_xml msg d v =
  let doc_xml = Doc.to_xml d in
  let view_xml = View.materialize v in
  if not (Tree.equal doc_xml view_xml) then
    Alcotest.failf "%s: view diverged from document\n doc: %s\nview: %s" msg
      (Axml_xml.Print.to_string doc_xml)
      (Axml_xml.Print.to_string view_xml)

(* ------------------------------------------------------------------ *)
(* Properties *)

(* A fresh snapshot is a faithful pre-order index of the tree. *)
let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"snapshot round-trips the document"
    Gen.arb_tree (fun tr ->
      let d = Doc.of_xml tr in
      let v = View.snapshot d in
      check_view_invariants v;
      check_same_xml "fresh snapshot" d v;
      Alcotest.(check int) "size" (Doc.size d) (View.size v);
      (* the ad-hoc per-node view agrees with the cached one *)
      let v' = View.of_node (Doc.root d) in
      check_view_invariants v';
      check_same_xml "of_node" d v';
      true)

(* Driving a random sequence of splices (empty forests included) keeps
   the incrementally-patched snapshot equal to a from-scratch index. *)
let prop_splice_consistency =
  QCheck.Test.make ~count:150 ~name:"patched snapshot survives splice sequences"
    arb_splice_case (fun c ->
      let d = Doc.of_xml c.tree in
      let rng = Random.State.make [| 0x51EE7; c.splice_seed |] in
      ignore (View.snapshot d);
      let steps = ref 0 in
      let continue = ref true in
      while !continue && !steps < 12 do
        match Doc.visible_function_nodes d with
        | [] -> continue := false
        | calls ->
          let call = List.nth calls (Random.State.int rng (List.length calls)) in
          let forest =
            result_pool.(Random.State.int rng (Array.length result_pool))
          in
          ignore (Doc.replace_call d call forest);
          incr steps;
          let patched = View.snapshot d in
          check_view_invariants patched;
          check_same_xml "after splice" d patched;
          Alcotest.(check int) "generation stamped" (Doc.generation d)
            (View.generation patched);
          (* byte-identical to a full rebuild of the same tree *)
          let fresh = View.of_node (Doc.root d) in
          Alcotest.(check int) "sizes agree" (View.size fresh)
            (View.size patched);
          if
            not
              (Tree.equal (View.materialize fresh) (View.materialize patched))
          then Alcotest.fail "patched view differs from full rebuild"
      done;
      true)

(* Parallel matching is invisible: same bindings, element for element,
   at every jobs level, across splice sequences. *)
let prop_parallel_matching =
  QCheck.Test.make ~count:100 ~name:"parallel matching ≡ sequential"
    arb_splice_case (fun c ->
      let queries =
        [ Parser.parse "//a!"; Parser.parse "/root//b!"; Parser.parse "//hotel!" ]
      in
      let d = Doc.of_xml c.tree in
      let rng = Random.State.make [| 0xFA9; c.splice_seed |] in
      let check_round () =
        List.iter
          (fun q ->
            let seq = Eval.eval q d in
            let par4 = Eval.eval ~par:(Eval.par ~jobs:4) q d in
            if Gen.tuples seq <> Gen.tuples par4 then
              Alcotest.failf "bindings diverge at jobs=4 for %s"
                (Axml_query.Pattern.to_string q);
            (* element-for-element, not just as sets *)
            if List.length seq <> List.length par4 then
              Alcotest.failf "binding multiplicity diverges for %s"
                (Axml_query.Pattern.to_string q))
          queries
      in
      check_round ();
      (match Doc.visible_function_nodes d with
      | [] -> ()
      | calls ->
        let call = List.nth calls (Random.State.int rng (List.length calls)) in
        ignore
          (Doc.replace_call d call
             result_pool.(Random.State.int rng (Array.length result_pool)));
        check_round ());
      true)

(* ------------------------------------------------------------------ *)
(* F-guide memoization on the generation counter. *)

let fguide_doc () =
  Doc.parse
    {|<root><a><axml:call name="f">x</axml:call></a><b><axml:call name="g">y</axml:call></b></root>|}

let test_fguide_reuse () =
  let d = fguide_doc () in
  let g1, reused1 = Fguide.memoized d in
  Alcotest.(check bool) "first build is fresh" false reused1;
  let g2, reused2 = Fguide.memoized d in
  Alcotest.(check bool) "second lookup reuses" true reused2;
  Alcotest.(check bool) "same guide" true (g1 == g2)

let test_fguide_invalidated_by_mutation () =
  let d = fguide_doc () in
  let g1, _ = Fguide.memoized d in
  Doc.append_child d (Doc.root d) (Doc.elem d "c" []);
  let g2, reused = Fguide.memoized d in
  Alcotest.(check bool) "stale after mutation" false reused;
  Alcotest.(check bool) "fresh guide" true (not (g1 == g2))

let test_fguide_sync_after_maintenance () =
  let d = fguide_doc () in
  let g, _ = Fguide.memoized d in
  let call =
    List.find (fun n -> Doc.call_name n = Some "f") (Doc.visible_function_nodes d)
  in
  let added = Doc.replace_call d call [ Tree.text "5" ] in
  Fguide.update_after_replace g ~invoked:call ~added;
  Fguide.sync g d;
  let g2, reused = Fguide.memoized d in
  Alcotest.(check bool) "maintained guide stays reusable" true reused;
  Alcotest.(check bool) "same guide" true (g == g2);
  Alcotest.(check int) "one call left" 1 (Fguide.call_count g2)

let test_fguide_independent_docs () =
  let d1 = fguide_doc () in
  let d2 = fguide_doc () in
  let g1, _ = Fguide.memoized d1 in
  let g2, _ = Fguide.memoized d2 in
  Alcotest.(check bool) "distinct docs, distinct guides" true (not (g1 == g2));
  let _, r1 = Fguide.memoized d1 in
  let _, r2 = Fguide.memoized d2 in
  Alcotest.(check bool) "both cached" true (r1 && r2)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "view"
    [
      ( "properties",
        [ prop prop_roundtrip; prop prop_splice_consistency; prop prop_parallel_matching ] );
      ( "fguide memo",
        [
          quick "reuse on unchanged generation" test_fguide_reuse;
          quick "invalidated by mutation" test_fguide_invalidated_by_mutation;
          quick "sync keeps maintained guide live" test_fguide_sync_after_maintenance;
          quick "independent documents" test_fguide_independent_docs;
        ] );
    ]
