(* Tests for the Axml_exec worker pool and the concurrent §4.4 batch
   path: order preservation, exception propagation, the inline fallback
   at one job, a qcheck property that no work is lost or duplicated, and
   a differential check that a pooled evaluation of a seeded faulty
   workload is identical to the sequential one — answers (bytes),
   counts, fault fates, metrics and trace. *)

module Exec = Axml_exec.Exec
module Eval = Axml_query.Eval
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module Lazy_eval = Axml_core.Lazy_eval
module Naive = Axml_core.Naive
module City = Axml_workload.City
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

let with_pool jobs f =
  let pool = Exec.create ~jobs () in
  Fun.protect ~finally:(fun () -> Exec.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* The pool itself *)

let test_order_preserved () =
  with_pool 4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys =
        Exec.map_batch pool
          (fun x ->
            if x mod 7 = 0 then Thread.yield ();
            x * x)
          xs
      in
      Alcotest.(check (list int)) "squares in order" (List.map (fun x -> x * x) xs) ys)

exception Boom of int

let test_exception_propagation () =
  with_pool 4 (fun pool ->
      let mu = Mutex.create () in
      let ran = ref 0 in
      let xs = List.init 50 Fun.id in
      match
        Exec.map_batch pool
          (fun x ->
            Mutex.protect mu (fun () -> incr ran);
            if x mod 10 = 3 then raise (Boom x);
            x)
          xs
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        Alcotest.(check int) "lowest failing index wins" 3 i;
        (* the batch joins before raising: nothing is abandoned mid-air *)
        Alcotest.(check int) "every element was still processed" 50 !ran)

let test_inline_at_one_job () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "no worker threads at jobs=1" 1 (Exec.jobs pool);
      let me = Thread.id (Thread.self ()) in
      let tids =
        Exec.map_batch pool (fun _ -> Thread.id (Thread.self ())) (List.init 8 Fun.id)
      in
      List.iter (fun tid -> Alcotest.(check int) "ran in the caller" me tid) tids);
  (* a shut-down pool degrades to inline instead of deadlocking *)
  let pool = Exec.create ~jobs:4 () in
  Exec.shutdown pool;
  Alcotest.(check (list int)) "inline after shutdown" [ 1; 2; 3 ]
    (Exec.map_batch pool (fun x -> x) [ 1; 2; 3 ])

let test_nested_batches () =
  (* the caller drains its own batch, so nesting map_batch on one pool
     cannot deadlock even with every worker busy *)
  with_pool 3 (fun pool ->
      let grid =
        Exec.map_batch pool
          (fun i -> Exec.map_batch pool (fun j -> (i * 10) + j) (List.init 4 Fun.id))
          (List.init 4 Fun.id)
      in
      Alcotest.(check (list (list int)))
        "nested batches complete"
        (List.init 4 (fun i -> List.init 4 (fun j -> (i * 10) + j)))
        grid)

let prop_no_lost_or_duplicated_work =
  QCheck.Test.make ~name:"map_batch loses and duplicates nothing" ~count:50
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
      with_pool jobs (fun pool ->
          let mu = Mutex.create () in
          let seen = ref [] in
          let ys =
            Exec.map_batch pool
              (fun x ->
                Mutex.protect mu (fun () -> seen := x :: !seen);
                x + 1)
              xs
          in
          ys = List.map (fun x -> x + 1) xs
          && List.sort compare !seen = List.sort compare xs))

(* ------------------------------------------------------------------ *)
(* Differential: pooled evaluation ≡ sequential evaluation *)

let answer_bytes (r : Lazy_eval.report) =
  Axml_xml.Print.forest_to_string (Eval.bindings_to_xml r.Lazy_eval.answers)

(* Every hotel intensional so layers are wide enough to really batch;
   five_star_fraction < 1 keeps the query selective. *)
let city_cfg =
  {
    City.default_config with
    City.hotels = 10;
    seed = 7;
    extensional_fraction = 1.0;
    intensional_rating_fraction = 1.0;
    intensional_nearby_fraction = 1.0;
    target_fraction = 1.0;
    five_star_fraction = 0.6;
  }

(* One lazy evaluation of the seeded faulty city workload at [jobs]
   workers, under a full (trace + metrics) observability sink. *)
let run_city ~jobs =
  let inst = City.generate city_cfg in
  Registry.inject_faults inst.City.registry ~seed:5 [ Faults.Flaky 0.3 ];
  let obs = Obs.create () in
  let pool = if jobs > 1 then Some (Exec.create ~jobs ()) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Exec.shutdown pool)
    (fun () ->
      let r =
        Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
          ~strategy:Lazy_eval.nfqa_typed ?pool ~obs inst.City.query inst.City.doc
      in
      (r, obs, inst.City.registry))

(* An invocation's identity and fate, in an order-independent shape:
   concurrent histories interleave, so we compare them as multisets. *)
let fates registry =
  List.sort compare
    (List.map
       (fun (i : Registry.invocation) ->
         ( i.Registry.service,
           i.Registry.request_bytes,
           i.Registry.retries,
           i.Registry.timeouts,
           i.Registry.failed ))
       (Registry.history registry))

let test_pooled_matches_sequential () =
  let seq, _, seq_reg = run_city ~jobs:1 in
  let pooled, _, pooled_reg = run_city ~jobs:4 in
  Alcotest.(check string) "byte-identical answers" (answer_bytes seq) (answer_bytes pooled);
  Alcotest.(check int) "identical invoked" seq.Lazy_eval.invoked pooled.Lazy_eval.invoked;
  Alcotest.(check int) "identical failed_calls" seq.Lazy_eval.failed_calls
    pooled.Lazy_eval.failed_calls;
  Alcotest.(check int) "identical retries" seq.Lazy_eval.retries pooled.Lazy_eval.retries;
  Alcotest.(check int) "identical timeouts" seq.Lazy_eval.timeouts pooled.Lazy_eval.timeouts;
  Alcotest.(check bool) "identical completeness" seq.Lazy_eval.complete
    pooled.Lazy_eval.complete;
  Alcotest.(check bool) "same fault fates" true (fates seq_reg = fates pooled_reg);
  Alcotest.(check (float 1e-9))
    "same simulated clock" seq.Lazy_eval.simulated_seconds
    pooled.Lazy_eval.simulated_seconds

let test_fault_determinism_across_jobs () =
  (* the fates of a seeded schedule are a property of the logical calls:
     any worker count replays them exactly *)
  let _, _, reg1 = run_city ~jobs:1 in
  let reference = fates reg1 in
  List.iter
    (fun jobs ->
      let _, _, reg = run_city ~jobs in
      Alcotest.(check bool)
        (Printf.sprintf "fates at jobs=%d" jobs)
        true
        (fates reg = reference))
    [ 2; 4; 8 ]

let rec count_named name (ns : Trace.node list) =
  List.fold_left
    (fun acc (n : Trace.node) ->
      acc + (if n.Trace.node_name = name then 1 else 0) + count_named name n.Trace.children)
    0 ns

let test_pooled_observability_reconciles () =
  let r, obs, reg = run_city ~jobs:4 in
  let m = obs.Obs.metrics in
  (* report = metrics *)
  Alcotest.(check (float 0.0))
    "eval.invoked metric" (float_of_int r.Lazy_eval.invoked) (Metrics.value m "eval.invoked");
  Alcotest.(check (float 0.0))
    "eval.failed_calls metric"
    (float_of_int r.Lazy_eval.failed_calls)
    (Metrics.value m "eval.failed_calls");
  Alcotest.(check (float 0.0))
    "eval.retries metric" (float_of_int r.Lazy_eval.retries) (Metrics.value m "eval.retries");
  (* metrics = trace: the absorbed fragments keep the span tree
     well-formed and no per-attempt span is lost *)
  (match Trace.well_formed obs.Obs.trace with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("pooled trace ill-formed: " ^ m));
  match Trace.tree obs.Obs.trace with
  | Error m -> Alcotest.fail ("pooled trace has no tree: " ^ m)
  | Ok forest ->
    let history = Registry.history reg in
    let attempts =
      List.fold_left
        (fun acc (i : Registry.invocation) ->
          if i.Registry.cached then acc else acc + 1 + i.Registry.retries)
        0 history
    in
    Alcotest.(check int)
      "one service.attempt span per wire attempt" attempts
      (count_named "service.attempt" forest);
    Alcotest.(check int)
      "one service.invoke span per uncached invocation"
      (List.length (List.filter (fun (i : Registry.invocation) -> not i.Registry.cached) history))
      (count_named "service.invoke" forest)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "exec"
    [
      ( "pool",
        [
          quick "order preserved" test_order_preserved;
          quick "exception propagation" test_exception_propagation;
          quick "jobs=1 runs inline" test_inline_at_one_job;
          quick "nested batches" test_nested_batches;
          QCheck_alcotest.to_alcotest prop_no_lost_or_duplicated_work;
        ] );
      ( "differential",
        [
          quick "pooled ≡ sequential" test_pooled_matches_sequential;
          quick "fault fates at any jobs" test_fault_determinism_across_jobs;
          quick "pooled observability reconciles" test_pooled_observability_reconciles;
        ] );
    ]
