(* Benchmark harness: regenerates every experiment of the reproduction
   (see DESIGN.md §3 and EXPERIMENTS.md). Each experiment prints one
   table; a final Bechamel section micro-benchmarks the core operation
   behind each table.

   Usage: main.exe [--metrics-dir DIR]
            [e1|e2|e3|e4|e5|e6|e7|e8|e9|e9smoke|e10|e11|e11smoke|e12|e12smoke|e13|e13smoke|e14|e14smoke|micro]...
   (default: everything)

   With [--metrics-dir DIR], each experiment runs with a metrics-only
   observability sink and dumps the accumulated eval.* / service.*
   counters to DIR/<exp>.metrics.json when it finishes (see
   EXPERIMENTS.md, "Metrics snapshots"). *)

module Doc = Axml_doc
module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Schema = Axml_schema.Schema
module Sat = Axml_schema.Sat
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module Witness = Axml_services.Witness
module Relevance = Axml_core.Relevance
module Nfq = Axml_core.Nfq
module Lpq = Axml_core.Lpq
module Influence = Axml_core.Influence
module Typing = Axml_core.Typing
module Fguide = Axml_core.Fguide
module Engine = Axml_engine.Engine
module Lazy_eval = Axml_core.Lazy_eval
module Project = Axml_project.Project
module City = Axml_workload.City
module Goingout = Axml_workload.Goingout
module Synthetic = Axml_workload.Synthetic
module Adversary = Axml_workload.Adversary
module Obs = Axml_obs.Obs
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace
module Server = Axml_net.Server
module Client = Axml_net.Client
module Remote = Axml_net.Remote
module Exec = Axml_exec.Exec
module Sched = Axml_sched.Sched

(* ------------------------------------------------------------------ *)
(* Per-experiment metrics snapshots.

   [bench_obs] is threaded (as [~obs]) through every [Lazy_eval.run] /
   [Engine.naive_run] call site below. Without [--metrics-dir] it is the no-op
   sink, so the experiments measure exactly what they measured before;
   with it, each experiment accumulates one metrics registry (counters
   sum over every run the experiment performs) that is written out as
   DIR/<exp>.metrics.json. *)

let metrics_dir : string option ref = ref None
let bench_obs = ref Obs.null

let with_snapshot name f () =
  (bench_obs :=
     match !metrics_dir with Some _ -> Obs.measuring () | None -> Obs.null);
  f ();
  match !metrics_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".metrics.json") in
    Metrics.write path !bench_obs.Obs.metrics;
    Printf.eprintf "[bench] wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Small table printer *)

let print_table ~title ~header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let line c =
    print_string "+";
    List.iter (fun w -> print_string (String.make (w + 2) c ^ "+")) widths;
    print_newline ()
  in
  let print_row row =
    print_string "|";
    List.iter2 (fun w cell -> Printf.printf " %-*s |" w cell) widths row;
    print_newline ()
  in
  Printf.printf "\n== %s ==\n" title;
  line '-';
  print_row header;
  line '=';
  List.iter print_row rows;
  line '-'

let secs f = Printf.sprintf "%.3f" f
let ms f = Printf.sprintf "%.2f" (f *. 1000.0)

(* A horizontal grouped bar chart — the textual analogue of the paper's
   evaluation figures. Bars are log-scaled when the series spans more
   than two decades (the naive/lazy gap does). *)
let print_figure ~title ~unit rows =
  Printf.printf "\n== %s ==\n" title;
  let values = List.concat_map (fun (_, series) -> List.map snd series) rows in
  let vmax = List.fold_left Float.max 1e-12 values in
  let vmin_pos =
    List.fold_left (fun acc v -> if v > 0.0 then Float.min acc v else acc) vmax values
  in
  let log_scale = vmax /. Float.max 1e-12 vmin_pos > 100.0 in
  let width = 46 in
  let bar v =
    let frac =
      if v <= 0.0 then 0.0
      else if log_scale then
        let lo = log10 vmin_pos -. 0.3 and hi = log10 vmax in
        (log10 v -. lo) /. Float.max 1e-9 (hi -. lo)
      else v /. vmax
    in
    let n = max (if v > 0.0 then 1 else 0) (int_of_float (frac *. float_of_int width)) in
    String.make (min width n) '#'
  in
  let name_width =
    List.fold_left
      (fun acc (_, series) ->
        List.fold_left (fun acc (name, _) -> max acc (String.length name)) acc series)
      0 rows
  in
  List.iter
    (fun (label, series) ->
      List.iteri
        (fun i (name, v) ->
          Printf.printf "%8s | %-*s %-*s %g %s\n"
            (if i = 0 then label else "")
            name_width name width (bar v) v unit)
        series;
      print_newline ())
    rows;
  if log_scale then print_endline "         (log scale)"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let tuples answers =
  List.map (fun (b : Eval.binding) -> b.Eval.vars) answers |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* E1: naive materialization vs lazy NFQA, sweeping document scale.
   Claim (abstract, §1): pruning irrelevant calls cuts evaluation time by
   orders of magnitude. Both sides invoke sequentially here; parallelism
   is studied separately in E5. *)

let e1 () =
  let sequential = { Lazy_eval.nfqa_typed with Lazy_eval.parallel = false } in
  (* A selective query over a call-rich document: few hotels are "Best
     Western", most data is intensional — the regime the paper's claim is
     about. *)
  let series = ref [] in
  let rows =
    List.map
      (fun hotels ->
        let cfg =
          {
            City.default_config with
            City.hotels;
            target_fraction = 0.05;
            intensional_rating_fraction = 0.7;
            intensional_nearby_fraction = 0.7;
            museums_per_hotel = 4;
            restaurants_per_hotel = 6;
          }
        in
        let naive_inst = City.generate cfg in
        let initial_calls = Doc.count_calls naive_inst.City.doc in
        let naive =
          Engine.naive_run ~parallel:false ~obs:!bench_obs naive_inst.City.registry
            naive_inst.City.query naive_inst.City.doc
        in
        let lazy_inst = City.generate cfg in
        let lzy =
          Lazy_eval.run ~registry:lazy_inst.City.registry ~schema:lazy_inst.City.schema
            ~strategy:sequential ~obs:!bench_obs lazy_inst.City.query lazy_inst.City.doc
        in
        assert (tuples naive.Engine.answers = tuples lzy.Engine.answers);
        let speedup =
          naive.Engine.simulated_seconds /. Float.max 1e-9 lzy.Engine.simulated_seconds
        in
        series :=
          ( string_of_int hotels,
            [
              ("naive", naive.Engine.simulated_seconds);
              ("lazy", lzy.Engine.simulated_seconds);
            ] )
          :: !series;
        [
          string_of_int hotels;
          string_of_int initial_calls;
          string_of_int naive.Engine.invoked;
          secs naive.Engine.simulated_seconds;
          string_of_int lzy.Engine.invoked;
          secs lzy.Engine.simulated_seconds;
          Printf.sprintf "%.1fx" speedup;
          string_of_int (List.length (tuples lzy.Engine.answers));
        ])
      [ 10; 20; 40; 80; 160; 320 ]
  in
  print_table ~title:"E1: naive vs lazy (sequential invocations, typed NFQA)"
    ~header:
      [
        "hotels";
        "doc calls";
        "naive calls";
        "naive time(s)";
        "lazy calls";
        "lazy time(s)";
        "speedup";
        "answers";
      ]
    rows;
  print_figure ~title:"Figure E1: total evaluation time vs document size" ~unit:"s"
    (List.rev !series)

(* ------------------------------------------------------------------ *)
(* E2: accuracy/efficiency of relevance detection (§3, §5, §6.1):
   LPQ vs NFQ vs lenient-typed vs exact-typed NFQ. *)

let e2 () =
  let cfg = { City.default_config with City.hotels = 50 } in
  let strategies =
    [
      ("LPQ", Lazy_eval.lpq_only);
      ("NFQ", Lazy_eval.nfqa);
      ("NFQ+relaxed joins", { Lazy_eval.nfqa with Lazy_eval.relax_joins = true });
      ("NFQ+lenient types", Lazy_eval.nfqa_lenient);
      ("NFQ+exact types", Lazy_eval.nfqa_typed);
    ]
  in
  let naive_inst = City.generate cfg in
  let naive =
    Engine.naive_run ~parallel:false ~obs:!bench_obs naive_inst.City.registry naive_inst.City.query
      naive_inst.City.doc
  in
  let rows =
    List.map
      (fun (name, strategy) ->
        let strategy = { strategy with Lazy_eval.parallel = false } in
        let inst = City.generate cfg in
        let r =
          Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~strategy
            ~obs:!bench_obs inst.City.query inst.City.doc
        in
        assert (tuples r.Engine.answers = tuples naive.Engine.answers);
        [
          name;
          string_of_int r.Engine.invoked;
          string_of_int r.Engine.relevance_evals;
          ms r.Engine.analysis_seconds;
          secs r.Engine.simulated_seconds;
        ])
      strategies
  in
  let naive_row =
    [
      "naive (all calls)";
      string_of_int naive.Engine.invoked;
      "0";
      "0.00";
      secs naive.Engine.simulated_seconds;
    ]
  in
  print_table ~title:"E2: relevance detection strategies (50 hotels)"
    ~header:[ "strategy"; "calls"; "detections"; "analysis(ms)"; "service time(s)" ]
    (naive_row :: rows)

(* ------------------------------------------------------------------ *)
(* E3: F-guide speedup for relevance detection (§6.2), sweeping document
   size. Detection = evaluate every NFQ of the query once. *)

let e3 () =
  let series = ref [] in
  let rows =
    List.map
      (fun nodes ->
        let inst = Synthetic.generate { Synthetic.default_config with Synthetic.nodes } in
        let doc = inst.Synthetic.doc in
        let rqs = Nfq.of_query inst.Synthetic.query in
        let top_down, t_top =
          wall (fun () ->
              List.concat_map (fun rq -> Relevance.relevant_calls rq doc) rqs
              |> List.map (fun (n : Doc.node) -> n.Doc.id)
              |> List.sort_uniq compare)
        in
        (* a third engine: PathStack streaming over the LPQ chains,
           followed by the anchored NFQ filter *)
        let pathstacked, t_ps =
          wall (fun () ->
              List.concat_map
                (fun rq ->
                  let steps =
                    List.map
                      (fun (axis, label) -> { Axml_query.Pathstack.axis; label })
                      (Relevance.guide_steps rq)
                  in
                  Axml_query.Pathstack.matches steps doc
                  |> List.filter (fun c -> Relevance.retrieves rq doc c))
                rqs
              |> List.map (fun (n : Doc.node) -> n.Doc.id)
              |> List.sort_uniq compare)
        in
        let guide, t_build = wall (fun () -> Fguide.build doc) in
        let guided, t_guide =
          wall (fun () ->
              List.concat_map
                (fun rq ->
                  Fguide.candidates guide (Relevance.guide_steps rq)
                  |> List.filter (fun c -> Relevance.retrieves rq doc c))
                rqs
              |> List.map (fun (n : Doc.node) -> n.Doc.id)
              |> List.sort_uniq compare)
        in
        assert (top_down = guided);
        assert (top_down = pathstacked);
        series :=
          ( string_of_int (Doc.size doc),
            [ ("tree walk", t_top); ("pathstack", t_ps); ("f-guide", t_build +. t_guide) ] )
          :: !series;
        [
          string_of_int (Doc.size doc);
          string_of_int (Doc.count_calls doc);
          string_of_int (List.length top_down);
          ms t_top;
          ms t_ps;
          ms t_build;
          ms t_guide;
          Printf.sprintf "%.1fx" (t_top /. Float.max 1e-9 t_guide);
        ])
      [ 1_000; 5_000; 20_000; 50_000; 100_000 ]
  in
  print_table ~title:"E3: relevance detection: tree walk vs PathStack vs F-guide"
    ~header:
      [
        "doc nodes";
        "calls";
        "relevant";
        "top-down(ms)";
        "pathstack(ms)";
        "guide build(ms)";
        "guided(ms)";
        "speedup";
      ]
    rows;
  print_figure ~title:"Figure E3: relevance detection time vs document size" ~unit:"s"
    (List.rev !series)

(* ------------------------------------------------------------------ *)
(* E4: query pushing (§7): bytes shipped and service time with and
   without pushing, sweeping the selectivity of the query constant. *)

let e4 () =
  let series = ref [] in
  let rows =
    List.map
      (fun five_star_fraction ->
        let cfg =
          { City.default_config with City.hotels = 50; blurb_bytes = 2048; five_star_fraction }
        in
        let run strategy =
          let inst = City.generate cfg in
          Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~strategy
            ~obs:!bench_obs inst.City.query inst.City.doc
        in
        let plain = run Lazy_eval.nfqa_typed in
        let pushed = run (Lazy_eval.with_push Lazy_eval.nfqa_typed) in
        assert (tuples plain.Engine.answers = tuples pushed.Engine.answers);
        series :=
          ( Printf.sprintf "%.0f%%" (five_star_fraction *. 100.0),
            [
              ("full results", float_of_int plain.Engine.bytes_transferred);
              ("pushed", float_of_int pushed.Engine.bytes_transferred);
            ] )
          :: !series;
        [
          Printf.sprintf "%.0f%%" (five_star_fraction *. 100.0);
          string_of_int plain.Engine.bytes_transferred;
          string_of_int pushed.Engine.bytes_transferred;
          Printf.sprintf "%.1fx"
            (float_of_int plain.Engine.bytes_transferred
            /. Float.max 1.0 (float_of_int pushed.Engine.bytes_transferred));
          secs plain.Engine.simulated_seconds;
          secs pushed.Engine.simulated_seconds;
          string_of_int (List.length (tuples pushed.Engine.answers));
        ])
      [ 0.05; 0.2; 0.5; 0.9 ]
  in
  print_table ~title:"E4: query pushing (50 hotels, 2 KiB review blurbs)"
    ~header:
      [ "5-star rate"; "bytes"; "bytes(push)"; "reduction"; "time(s)"; "time(s, push)"; "answers" ]
    rows;
  print_figure ~title:"Figure E4: bytes transferred vs query selectivity" ~unit:"B"
    (List.rev !series)

(* ------------------------------------------------------------------ *)
(* E5: sequencing optimizations (§4): layering, parallel invocation,
   after-layer simplification, vs plain NFQA. *)

let e5 () =
  let cfg =
    {
      City.default_config with
      City.hotels = 40;
      extensional_fraction = 0.3;
      intensional_rating_fraction = 0.8;
      intensional_nearby_fraction = 0.8;
    }
  in
  let base = { Lazy_eval.nfqa with Lazy_eval.layering = false; parallel = false } in
  let variants =
    [
      ("plain NFQA", base);
      ("+ layering", { base with Lazy_eval.layering = true });
      ("+ parallel (*)", { base with Lazy_eval.layering = true; parallel = true });
      ( "+ simplify",
        { base with Lazy_eval.layering = true; parallel = true; simplify_after_layer = true } );
      ( "no shared ctx",
        { base with Lazy_eval.layering = true; parallel = true; share_contexts = false } );
      ( "+ dedup",
        { base with Lazy_eval.layering = true; parallel = true; containment_dedup = true } );
      ( "speculative",
        { base with Lazy_eval.layering = true; parallel = true; speculative = true } );
    ]
  in
  let reference = ref None in
  let rows =
    List.map
      (fun (name, strategy) ->
        let inst = City.generate cfg in
        let r =
          Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~strategy
            ~obs:!bench_obs inst.City.query inst.City.doc
        in
        (match !reference with
        | None -> reference := Some (tuples r.Engine.answers)
        | Some t -> assert (t = tuples r.Engine.answers));
        [
          name;
          string_of_int r.Engine.layer_count;
          string_of_int r.Engine.relevance_evals;
          string_of_int r.Engine.rounds;
          string_of_int r.Engine.invoked;
          ms r.Engine.analysis_seconds;
          secs r.Engine.simulated_seconds;
        ])
      variants
  in
  print_table ~title:"E5: call sequencing (40 hotels, mostly intensional)"
    ~header:
      [ "variant"; "layers"; "detections"; "rounds"; "calls"; "analysis(ms)"; "service time(s)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: exact vs lenient type analysis (§5 complexity vs §6.1), sweeping
   schema size. *)

let inflate_schema base extra =
  let s = ref base in
  for i = 1 to extra do
    let name = Printf.sprintf "extra%d" i in
    s :=
      Schema.add_element !s name
        (Axml_automata.Regex.of_string
           (Printf.sprintf "name.address.extra%d?" (1 + (i mod max 1 extra))));
    s :=
      Schema.add_function !s
        (Printf.sprintf "getextra%d" i)
        {
          Schema.input = Axml_automata.Regex.Sym "data";
          output = Axml_automata.Regex.of_string (name ^ "*");
        }
  done;
  !s

let e6 () =
  let cfg = { City.default_config with City.hotels = 30 } in
  let rows =
    List.map
      (fun extra ->
        let inst = City.generate cfg in
        let schema = inflate_schema inst.City.schema extra in
        let symbol_count = List.length (Schema.all_symbols schema) in
        let time_mode mode =
          let inst = City.generate cfg in
          let strategy =
            match mode with
            | `Exact -> Lazy_eval.nfqa_typed
            | `Lenient -> { Lazy_eval.nfqa_typed with Lazy_eval.typing = Lazy_eval.Lenient_types }
          in
          let r =
            Lazy_eval.run ~registry:inst.City.registry ~schema ~strategy ~obs:!bench_obs
              inst.City.query inst.City.doc
          in
          (r.Engine.analysis_seconds, r.Engine.invoked)
        in
        let exact_t, exact_calls = time_mode `Exact in
        let lenient_t, lenient_calls = time_mode `Lenient in
        [
          string_of_int extra;
          string_of_int symbol_count;
          ms exact_t;
          string_of_int exact_calls;
          ms lenient_t;
          string_of_int lenient_calls;
        ])
      [ 0; 10; 50; 200 ]
  in
  print_table ~title:"E6: exact vs lenient type analysis (30 hotels)"
    ~header:[ "extra defs"; "symbols"; "exact(ms)"; "calls"; "lenient(ms)"; "calls(len)" ]
    rows;
  (* Accuracy half of the trade-off: a disjunctive content model
     (menu = veg | meat) can never provide both children of the pattern,
     which the exact single-word test sees and the lenient graph-schema
     test does not — so lenient invokes calls that exact prunes. *)
  let disjunctive_schema =
    Schema.of_string
      {|functions:
  getmenu = [in: data, out: menu]
elements:
  shop = menu | getmenu
  menu = veg | meat
  veg  = data
  meat = data
|}
  in
  let accuracy_rows =
    List.map
      (fun shops ->
        let xml =
          "<street>"
          ^ String.concat ""
              (List.init shops (fun i ->
                   Printf.sprintf
                     {|<shop><axml:call name="getmenu"><k>%d</k></axml:call></shop>|} i))
          ^ "</street>"
        in
        let query =
          Axml_query.Parser.parse {|/street/shop/menu[veg="lettuce"][meat="beef"]|}
        in
        let run typing =
          let doc = Doc.parse xml in
          let registry = Registry.create () in
          Registry.register registry ~name:"getmenu" (fun _ ->
              [ Axml_xml.Tree.element "menu" [ Axml_xml.Tree.element "veg" [ Axml_xml.Tree.text "lettuce" ] ] ]);
          let strategy = { Lazy_eval.nfqa with Lazy_eval.typing } in
          Lazy_eval.run ~registry ~schema:disjunctive_schema ~strategy ~obs:!bench_obs query doc
        in
        let exact = run Lazy_eval.Exact_types in
        let lenient = run Lazy_eval.Lenient_types in
        [
          string_of_int shops;
          string_of_int exact.Engine.invoked;
          string_of_int lenient.Engine.invoked;
          secs exact.Engine.simulated_seconds;
          secs lenient.Engine.simulated_seconds;
        ])
      [ 10; 50; 200 ]
  in
  print_table ~title:"E6b: pruning accuracy on a disjunctive content model"
    ~header:[ "pending calls"; "exact invokes"; "lenient invokes"; "exact time(s)"; "lenient time(s)" ]
    accuracy_rows

(* ------------------------------------------------------------------ *)
(* E7: graceful degradation under faulty services. Every service gets a
   seeded Flaky schedule; transient failures are retried with exponential
   backoff on the simulated clock. The claim: lazy evaluation degrades
   gracefully — invoking fewer calls means fewer fault exposures, less
   retry/backoff waiting, and (at high fault rates, where retry budgets
   run out) fewer permanently lost subtrees than naive materialization. *)

let e7 () =
  let cfg = { City.default_config with City.hotels = 50 } in
  let policy =
    {
      Registry.default_policy with
      Registry.max_retries = 12;
      base_backoff = 0.05;
      max_backoff = 0.5;
    }
  in
  (* fault-free naive materialization: the Def. 4 oracle *)
  let reference =
    let inst = City.generate cfg in
    tuples
      (Engine.naive_run ~parallel:false ~obs:!bench_obs inst.City.registry inst.City.query
         inst.City.doc)
        .Engine.answers
  in
  let series = ref [] in
  let rows =
    List.map
      (fun rate ->
        let prepare () =
          let inst = City.generate cfg in
          Registry.inject_faults inst.City.registry ~seed:7 [ Faults.Flaky rate ];
          Registry.set_retry_policy inst.City.registry policy;
          inst
        in
        let naive_inst = prepare () in
        let naive =
          Engine.naive_run ~parallel:false ~obs:!bench_obs naive_inst.City.registry
            naive_inst.City.query naive_inst.City.doc
        in
        let naive_exposures = Registry.fault_exposures naive_inst.City.registry in
        let lazy_inst = prepare () in
        let lzy =
          Lazy_eval.run ~registry:lazy_inst.City.registry ~schema:lazy_inst.City.schema
            ~strategy:{ Lazy_eval.nfqa_typed with Lazy_eval.parallel = false }
            ~obs:!bench_obs lazy_inst.City.query lazy_inst.City.doc
        in
        let lazy_exposures = Registry.fault_exposures lazy_inst.City.registry in
        (* Def. 4 leniency: faults lose bindings, never fabricate them. *)
        let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
        assert (subset (tuples naive.Engine.answers) reference);
        assert (subset (tuples lzy.Engine.answers) reference);
        if naive.Engine.complete then assert (tuples naive.Engine.answers = reference);
        if lzy.Engine.complete then assert (tuples lzy.Engine.answers = reference);
        (* graceful degradation: fewer calls => strictly fewer exposures *)
        if rate > 0.0 then assert (lazy_exposures < naive_exposures);
        series :=
          ( Printf.sprintf "%.0f%%" (rate *. 100.0),
            [
              ("naive exposures", float_of_int naive_exposures);
              ("lazy exposures", float_of_int lazy_exposures);
            ] )
          :: !series;
        [
          Printf.sprintf "%.0f%%" (rate *. 100.0);
          string_of_int naive.Engine.invoked;
          string_of_int naive_exposures;
          string_of_int naive.Engine.failed_calls;
          secs naive.Engine.simulated_seconds;
          string_of_bool naive.Engine.complete;
          string_of_int lzy.Engine.invoked;
          string_of_int lazy_exposures;
          string_of_int lzy.Engine.failed_calls;
          secs lzy.Engine.simulated_seconds;
          string_of_bool lzy.Engine.complete;
        ])
      [ 0.0; 0.1; 0.2; 0.3; 0.5; 0.7 ]
  in
  print_table ~title:"E7: fault-rate sweep (50 hotels, 12 retries, exp. backoff 50 ms..0.5 s)"
    ~header:
      [
        "fault rate";
        "naive calls";
        "faults";
        "lost";
        "time(s)";
        "complete";
        "lazy calls";
        "faults";
        "lost";
        "time(s)";
        "complete";
      ]
    rows;
  print_figure ~title:"Figure E7: fault exposures vs fault rate" ~unit:" faults"
    (List.rev !series);
  (* E7b: starve the retry budget at a fixed 50% fault rate. Permanently
     failed calls stay in the document as unexpanded function nodes; the
     answers degrade to a subset of the fault-free result (never wrong
     bindings), and the complete flag reports the loss. *)
  let rate = 0.5 in
  let budget_rows =
    List.map
      (fun max_retries ->
        let prepare () =
          let inst = City.generate cfg in
          Registry.inject_faults inst.City.registry ~seed:7 [ Faults.Flaky rate ];
          Registry.set_retry_policy inst.City.registry
            { policy with Registry.max_retries };
          inst
        in
        let naive_inst = prepare () in
        let naive =
          Engine.naive_run ~parallel:false ~obs:!bench_obs naive_inst.City.registry
            naive_inst.City.query naive_inst.City.doc
        in
        let lazy_inst = prepare () in
        let lzy =
          Lazy_eval.run ~registry:lazy_inst.City.registry ~schema:lazy_inst.City.schema
            ~strategy:{ Lazy_eval.nfqa_typed with Lazy_eval.parallel = false }
            ~obs:!bench_obs lazy_inst.City.query lazy_inst.City.doc
        in
        let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
        assert (subset (tuples naive.Engine.answers) reference);
        assert (subset (tuples lzy.Engine.answers) reference);
        assert (lzy.Engine.complete = (lzy.Engine.failed_calls = 0));
        if lzy.Engine.complete then assert (tuples lzy.Engine.answers = reference);
        [
          string_of_int max_retries;
          string_of_int naive.Engine.failed_calls;
          string_of_int (List.length (tuples naive.Engine.answers));
          string_of_bool naive.Engine.complete;
          string_of_int lzy.Engine.failed_calls;
          string_of_int (List.length (tuples lzy.Engine.answers));
          string_of_bool lzy.Engine.complete;
        ])
      [ 0; 1; 2; 4; 8 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E7b: retry budget at %.0f%% fault rate (reference: %d answers fault-free)"
         (rate *. 100.0) (List.length reference))
    ~header:
      [
        "max retries";
        "naive lost";
        "answers";
        "complete";
        "lazy lost";
        "answers";
        "complete";
      ]
    budget_rows

(* ------------------------------------------------------------------ *)
(* E8: query pushing over a real wire. E4 measures pushing against the
   simulated cost model; E8 reruns the comparison against an actual
   [axmld] peer on loopback — the city services live behind a TCP
   server, the evaluator invokes them through the [Remote] transport,
   and the table reports what really crossed the wire (frame bytes,
   both directions) plus wall-clock time. Loopback has neither the
   50 ms latency nor the 1 µs/byte of the simulated model, so the
   absolute times are much smaller than E4's; the byte reduction is the
   transferable number (see EXPERIMENTS.md §E8). *)

let e8 () =
  let series = ref [] in
  let rows =
    List.map
      (fun blurb_bytes ->
        (* seed 1 yields a non-empty answer set at this scale *)
        let cfg =
          { City.default_config with City.hotels = 8; seed = 1; blurb_bytes }
        in
        let served = City.generate cfg in
        let server = Server.create ~registry:served.City.registry () in
        Server.start server;
        Fun.protect
          ~finally:(fun () -> Server.stop server)
          (fun () ->
            let run ~push =
              let inst = City.generate cfg in
              let registry = Registry.create () in
              let client =
                Client.create ~host:"127.0.0.1" ~port:(Server.port server) ()
              in
              Fun.protect
                ~finally:(fun () -> Client.close client)
                (fun () ->
                  ignore (Remote.register ~memoize:false ~registry client);
                  let strategy =
                    if push then Lazy_eval.with_push Lazy_eval.nfqa_typed
                    else Lazy_eval.nfqa_typed
                  in
                  let r, elapsed =
                    wall (fun () ->
                        Lazy_eval.run ~registry ~schema:inst.City.schema ~strategy
                          ~obs:!bench_obs inst.City.query inst.City.doc)
                  in
                  let bytes =
                    List.fold_left
                      (fun acc (i : Registry.invocation) ->
                        acc + i.Registry.request_bytes + i.Registry.response_bytes)
                      0 (Registry.history registry)
                  in
                  (r, bytes, elapsed))
            in
            let plain, plain_bytes, plain_wall = run ~push:false in
            let pushed, pushed_bytes, pushed_wall = run ~push:true in
            assert (tuples plain.Engine.answers = tuples pushed.Engine.answers);
            assert (plain.Engine.complete && pushed.Engine.complete);
            series :=
              ( Printf.sprintf "%dB" blurb_bytes,
                [
                  ("full results", float_of_int plain_bytes);
                  ("pushed", float_of_int pushed_bytes);
                ] )
              :: !series;
            [
              string_of_int blurb_bytes;
              string_of_int plain.Engine.invoked;
              string_of_int plain_bytes;
              string_of_int pushed_bytes;
              Printf.sprintf "%.1fx"
                (float_of_int plain_bytes /. Float.max 1.0 (float_of_int pushed_bytes));
              ms plain_wall;
              ms pushed_wall;
              string_of_int (List.length (tuples pushed.Engine.answers));
            ]))
      [ 256; 1024; 4096 ]
  in
  print_table ~title:"E8: query pushing over loopback TCP (8 hotels)"
    ~header:
      [
        "blurb";
        "calls";
        "wire bytes";
        "wire bytes(push)";
        "reduction";
        "wall(ms)";
        "wall(ms, push)";
        "answers";
      ]
    rows;
  print_figure ~title:"Figure E8: bytes on the wire vs review blurb size" ~unit:"B"
    (List.rev !series)

(* ------------------------------------------------------------------ *)
(* E9: real concurrent batch invocation (§4.4 on the wall clock). The
   simulated cost model charges a parallel batch the max of its members'
   costs; E9 checks the wall clock agrees once the calls really overlap.
   The city services live behind loopback [axmld] peers that sleep
   [delay] real seconds per request ([Server.create ~delay], the
   [axml serve --latency] knob); the evaluator invokes them through
   [Remote] with a worker pool at --jobs 1/2/4/8. The answers (bytes),
   the invocation count and completeness must be identical at every jobs
   level — only the wall clock is allowed to move. The speedup ceiling
   is the width of the narrowest layer, not the jobs count, so the
   column to read is wall(s) against the j=1 baseline. *)

(* One evaluation at [jobs] workers against [servers], the advertised
   services split alternately across the peers. Returns the answers
   serialized to bytes, so equality means byte-identical output. *)
let e9_run ~servers ~cfg ~jobs =
  let inst = City.generate cfg in
  let registry = Registry.create () in
  let clients =
    List.map
      (fun srv ->
        Client.create ~pool_size:(max 4 jobs) ~host:"127.0.0.1"
          ~port:(Server.port srv) ())
      servers
  in
  Fun.protect
    ~finally:(fun () -> List.iter Client.close clients)
    (fun () ->
      (match clients with
      | [ c1; c2 ] ->
        let names =
          List.map
            (fun (s : Axml_net.Wire.service_info) -> s.Axml_net.Wire.name)
            (Client.services c1 ())
        in
        let a, b =
          List.partition (fun n -> Hashtbl.hash n mod 2 = 0) names
        in
        ignore (Remote.register ~memoize:false ~names:a ~registry c1);
        ignore (Remote.register ~memoize:false ~names:b ~registry c2)
      | cs ->
        List.iter (fun c -> ignore (Remote.register ~memoize:false ~registry c)) cs);
      let pool = if jobs > 1 then Some (Exec.create ~jobs ()) else None in
      Fun.protect
        ~finally:(fun () -> Option.iter Exec.shutdown pool)
        (fun () ->
          let r, elapsed =
            wall (fun () ->
                Lazy_eval.run ~registry ~schema:inst.City.schema
                  ~strategy:Lazy_eval.nfqa_typed ?pool ~obs:!bench_obs
                  inst.City.query inst.City.doc)
          in
          let answer_bytes =
            Axml_xml.Print.forest_to_string (Eval.bindings_to_xml r.Engine.answers)
          in
          (r, answer_bytes, elapsed)))

let e9_sweep ~title ~hotels ~delay ~jobs_list =
  (* Every hotel is an extensional "Best Western" with an intensional
     rating and nearby list: each layer is [hotels] calls wide, so the
     pool has real §4.4 batches to overlap. *)
  let cfg =
    {
      City.default_config with
      City.hotels;
      seed = 1;
      extensional_fraction = 1.0;
      intensional_rating_fraction = 1.0;
      intensional_nearby_fraction = 1.0;
      target_fraction = 1.0;
      five_star_fraction = 1.0;
    }
  in
  let mk_server () =
    let served = City.generate cfg in
    let server = Server.create ~delay ~registry:served.City.registry () in
    Server.start server;
    server
  in
  let servers = [ mk_server (); mk_server () ] in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop servers)
    (fun () ->
      let runs = List.map (fun jobs -> (jobs, e9_run ~servers ~cfg ~jobs)) jobs_list in
      let _, (base, base_answers, base_wall) = List.hd runs in
      let rows =
        List.map
          (fun (jobs, (r, answers, elapsed)) ->
            (* the §4.4 contract: concurrency must not change the result *)
            assert (answers = base_answers);
            assert (r.Engine.invoked = base.Engine.invoked);
            assert (r.Engine.complete = base.Engine.complete);
            [
              string_of_int jobs;
              string_of_int r.Engine.invoked;
              secs r.Engine.simulated_seconds;
              secs elapsed;
              Printf.sprintf "%.2fx" (base_wall /. Float.max 1e-9 elapsed);
              string_of_int (List.length (tuples r.Engine.answers));
            ])
          runs
      in
      print_table ~title
        ~header:[ "jobs"; "invoked"; "sim(s)"; "wall(s)"; "speedup"; "answers" ]
        rows;
      runs)

let e9 () =
  ignore
    (e9_sweep
       ~title:
         "E9: worker-pool speedup over 2 loopback peers (12 hotels, 50 ms injected latency)"
       ~hotels:12 ~delay:0.05 ~jobs_list:[ 1; 2; 4; 8 ])

(* The CI-sized variant: 2 peers, 20 ms, jobs 1 vs 4, and a hard
   assertion that pooling actually beat sequential on the wall clock. *)
let e9smoke () =
  match
    e9_sweep ~title:"E9 (smoke): 2 loopback peers (8 hotels, 20 ms injected latency)"
      ~hotels:8 ~delay:0.02 ~jobs_list:[ 1; 4 ]
  with
  | [ (1, (_, _, wall1)); (4, (_, _, wall4)) ] ->
    if wall4 >= wall1 then begin
      Printf.eprintf "e9smoke: no speedup (wall(4)=%.3fs >= wall(1)=%.3fs)\n" wall4 wall1;
      exit 1
    end
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* E10: adversarial families vs the call budget. Each row runs one
   hostile Adversary family (fault-free) under the lazy NFQA strategy
   at a given max_calls budget and reports the unified engine report
   fields: the bounded families converge to complete answers once the
   budget covers their call count; the unbounded one burns exactly the
   budget and reports incomplete at every setting. *)

let e10 () =
  let budgets = [ 8; 32; 128 ] in
  let rows =
    List.concat_map
      (fun (name, family) ->
        let cfg = { Adversary.default_config with Adversary.family; seed = 11; scale = 40 } in
        List.map
          (fun budget ->
            (* evaluation expands the document in place: fresh instance per row *)
            let inst = Adversary.generate cfg in
            let strategy = { Lazy_eval.nfqa with Lazy_eval.max_calls = budget } in
            let initial_calls = Adversary.total_calls inst in
            let r, elapsed =
              wall (fun () ->
                  Lazy_eval.run ~registry:inst.Adversary.registry ~strategy ~obs:!bench_obs
                    inst.Adversary.query inst.Adversary.doc)
            in
            [
              name;
              string_of_int budget;
              string_of_int initial_calls;
              string_of_int r.Engine.invoked;
              string_of_int r.Engine.rounds;
              string_of_int r.Engine.bytes_transferred;
              string_of_int (List.length (tuples r.Engine.answers));
              (if r.Engine.complete then "yes" else "no");
              ms elapsed;
            ])
          budgets)
      Adversary.families
  in
  print_table ~title:"E10: adversarial families vs call budget (lazy NFQA, seed 11, scale 40)"
    ~header:
      [ "family"; "budget"; "calls"; "invoked"; "rounds"; "bytes"; "answers"; "complete"; "wall(ms)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: type-based document projection — projected vs full. Each
   workload is evaluated twice under the typed lazy strategy, without
   and with the schema-derived projector (lib/project: the §5
   type-based relevance analysis applied to the data, not just the
   calls). Projection must not change the answers — every row pair
   asserts byte-identical tuples — so the columns to read are nodes
   (full → kept, over the initial document plus every spliced result
   forest), saved(B) (serialized bytes the projector discarded) and
   wire(B) (the initial document as [Wire.Eval] would ship it, full vs
   projected: the saving a peer that negotiated the "project"
   capability sees on the wire). live(kw) is a coarse residency proxy —
   live heap kwords after a forced major collection at the end of the
   run. *)

let e11_wire_bytes tr =
  String.length (Axml_obs.Json.to_string (Axml_net.Wire.tree_to_json tr))

let e11_arm ~make ~project =
  (* fresh instance per arm: evaluation expands the document in place *)
  let doc, query, schema, registry = make () in
  let projector = if project then Some (Project.compile ~schema query) else None in
  let wire =
    let tr = Doc.to_xml doc in
    e11_wire_bytes (match projector with None -> tr | Some p -> fst (Project.tree p tr))
  in
  let r, elapsed =
    wall (fun () ->
        Lazy_eval.run ~registry ~schema ~strategy:Lazy_eval.nfqa_typed ?projector
          ~obs:!bench_obs query doc)
  in
  Gc.full_major ();
  (r, wire, elapsed, (Gc.stat ()).Gc.live_words / 1000)

let e11_workloads =
  let adversary family seed scale () =
    let inst =
      Adversary.generate { Adversary.default_config with Adversary.family; seed; scale }
    in
    (inst.Adversary.doc, inst.Adversary.query, inst.Adversary.schema, inst.Adversary.registry)
  in
  [
    ("skewed-fanout", adversary Adversary.Skewed_fanout 11 40);
    ("bounded-recursion", adversary Adversary.Bounded_recursion 11 40);
    ( "city",
      fun () ->
        let inst = City.generate { City.default_config with City.hotels = 20; seed = 3 } in
        (inst.City.doc, inst.City.query, inst.City.schema, inst.City.registry) );
  ]

let e11 () =
  let rows =
    List.concat_map
      (fun (name, make) ->
        let rf, wire_f, wall_f, live_f = e11_arm ~make ~project:false in
        let rp, wire_p, wall_p, live_p = e11_arm ~make ~project:true in
        (* the soundness contract: projection never changes the answers *)
        assert (tuples rf.Engine.answers = tuples rp.Engine.answers);
        assert (rf.Engine.complete = rp.Engine.complete);
        let mk arm (r, wire, elapsed, live) =
          [
            name;
            arm;
            (if r.Engine.full_nodes = 0 then "-"
             else Printf.sprintf "%d->%d" r.Engine.full_nodes r.Engine.projected_nodes);
            string_of_int r.Engine.invoked;
            string_of_int r.Engine.projected_bytes_saved;
            string_of_int wire;
            string_of_int (List.length (tuples r.Engine.answers));
            (if r.Engine.complete then "yes" else "no");
            ms elapsed;
            string_of_int live;
          ]
        in
        [ mk "full" (rf, wire_f, wall_f, live_f); mk "projected" (rp, wire_p, wall_p, live_p) ])
      e11_workloads
  in
  print_table
    ~title:"E11: type-based projection, projected vs full (lazy typed NFQA, identical answers)"
    ~header:
      [ "workload"; "arm"; "nodes"; "invoked"; "saved(B)"; "wire(B)"; "answers"; "complete"; "wall(ms)"; "live(kw)" ]
    rows

(* The CI-sized variant: skewed fan-out only, with hard assertions that
   projection saved document bytes, shrank the wire payload, and left
   the answers byte-identical. *)
let e11smoke () =
  let make =
    match List.assoc_opt "skewed-fanout" e11_workloads with
    | Some make -> make
    | None -> assert false
  in
  let rf, wire_f, _, _ = e11_arm ~make ~project:false in
  let rp, wire_p, _, _ = e11_arm ~make ~project:true in
  if tuples rf.Engine.answers <> tuples rp.Engine.answers then begin
    Printf.eprintf "e11smoke: answers differ under projection\n";
    exit 1
  end;
  if rp.Engine.projected_bytes_saved <= 0 then begin
    Printf.eprintf "e11smoke: projection saved no bytes (saved=%d, nodes %d->%d)\n"
      rp.Engine.projected_bytes_saved rp.Engine.full_nodes rp.Engine.projected_nodes;
    exit 1
  end;
  if wire_p >= wire_f then begin
    Printf.eprintf "e11smoke: projected wire payload %dB >= full %dB\n" wire_p wire_f;
    exit 1
  end;
  Printf.printf
    "e11smoke: ok (saved %dB in-document, wire %dB -> %dB, %d answers unchanged)\n"
    rp.Engine.projected_bytes_saved wire_f wire_p
    (List.length (tuples rp.Engine.answers))

(* ------------------------------------------------------------------ *)
(* E12: replica balancing over skewed loopback peers. Two [axmld] peers
   serve the full city registry, one fast and one 5x slower
   ([Server.create ~delay]); each peer gets [slots] concurrent request
   slots — the per-endpoint capacity the scheduler manages. The arms:

     unsharded     one registry on the fast peer, no scheduler — the
                   reference answers (and the E9-style uncapped run)
     replicas=1    the fast peer behind the scheduler, capacity-capped
     round-robin   both peers, cost-blind rotation
     adaptive      both peers, least-loaded-first on the EWMA/p95 cost

   The §4.4 contract extends to routing: every arm must produce the
   reference answers and invocation count — only the wall clock and the
   shard split may move. The wall-clock claims under test: adaptive
   beats round-robin (it drains through the fast peer instead of
   parking half the batch behind the slow one), and two replicas beat
   one (extra capacity, same answers). *)

let e12_arm ~cfg ~jobs ~mk_sched servers =
  let inst = City.generate cfg in
  let clients =
    List.map
      (fun srv ->
        Client.create ~pool_size:(max 4 jobs) ~host:"127.0.0.1" ~port:(Server.port srv) ())
      servers
  in
  Fun.protect
    ~finally:(fun () -> List.iter Client.close clients)
    (fun () ->
      (* one registry per peer: a full replica each, never memoized, so
         every invocation really crosses the wire *)
      let registries =
        List.map
          (fun c ->
            let r = Registry.create () in
            ignore (Remote.register ~memoize:false ~registry:r c);
            r)
          clients
      in
      let sched = mk_sched registries in
      let dispatch = Option.map Sched.dispatch sched in
      let registry = List.hd registries in
      let pool = if jobs > 1 then Some (Exec.create ~jobs ()) else None in
      Fun.protect
        ~finally:(fun () -> Option.iter Exec.shutdown pool)
        (fun () ->
          let go obs (i : City.t) =
            Lazy_eval.run ~registry ~schema:i.City.schema ~strategy:Lazy_eval.nfqa_typed ?pool
              ~obs ?dispatch i.City.query i.City.doc
          in
          (* one untimed warmup on its own (identical) instance —
             evaluation materializes the document's calls in place —
             fills the TCP connection pools and lets the scheduler's
             cost estimates converge, so the timed run measures
             steady-state placement for every arm *)
          ignore (go Obs.null (City.generate cfg));
          let r, elapsed = wall (fun () -> go !bench_obs inst) in
          let answer_bytes =
            Axml_xml.Print.forest_to_string (Eval.bindings_to_xml r.Engine.answers)
          in
          (r, answer_bytes, elapsed)))

let e12_sweep ~title ~hotels ~fast ~slow ~jobs ~slots =
  let cfg =
    {
      City.default_config with
      City.hotels;
      seed = 1;
      extensional_fraction = 1.0;
      intensional_rating_fraction = 1.0;
      intensional_nearby_fraction = 1.0;
      target_fraction = 1.0;
      five_star_fraction = 1.0;
    }
  in
  let mk_server delay =
    let served = City.generate cfg in
    let server = Server.create ~delay ~registry:served.City.registry () in
    Server.start server;
    server
  in
  let servers = [ mk_server fast; mk_server slow ] in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop servers)
    (fun () ->
      let spec_of id regs i = Sched.spec ~id ~slots (List.nth regs i) in
      let arms =
        [
          ("unsharded", (fun _ -> None), [ List.hd servers ]);
          ( "replicas=1",
            (fun regs -> Some (Sched.create [ spec_of "fast" regs 0 ])),
            [ List.hd servers ] );
          ( "round-robin x2",
            (fun regs ->
              Some
                (Sched.create ~mode:Sched.Round_robin
                   [ spec_of "fast" regs 0; spec_of "slow" regs 1 ])),
            servers );
          ( "adaptive x2",
            (fun regs ->
              Some
                (Sched.create ~mode:Sched.Adaptive
                   [ spec_of "fast" regs 0; spec_of "slow" regs 1 ])),
            servers );
        ]
      in
      let runs =
        List.map (fun (name, mk_sched, arm_servers) ->
            (name, e12_arm ~cfg ~jobs ~mk_sched arm_servers))
          arms
      in
      let _, (base, base_answers, _) = List.hd runs in
      let rows =
        List.map
          (fun (name, (r, answers, elapsed)) ->
            (* routing must not change the result, only the clock *)
            assert (answers = base_answers);
            assert (r.Engine.invoked = base.Engine.invoked);
            assert (r.Engine.complete = base.Engine.complete);
            [
              name;
              string_of_int r.Engine.invoked;
              string_of_int r.Engine.sharded_calls;
              string_of_int r.Engine.rebalanced_calls;
              secs elapsed;
            ])
          runs
      in
      print_table ~title
        ~header:[ "arm"; "invoked"; "sharded"; "rebalanced"; "wall(s)" ]
        rows;
      List.map (fun (name, (_, _, elapsed)) -> (name, elapsed)) runs)

let e12 () =
  ignore
    (e12_sweep
       ~title:
         "E12: replica balancing over 2 loopback peers (16 hotels, 20 ms vs 100 ms, 2 slots, \
          jobs=16)"
       ~hotels:16 ~fast:0.02 ~slow:0.1 ~jobs:16 ~slots:2)

(* The CI-sized variant, with hard assertions on the two wall-clock
   claims: adaptive beats round-robin, and two replicas beat one. *)
let e12smoke () =
  let walls =
    e12_sweep
      ~title:"E12 (smoke): 2 loopback peers (12 hotels, 20 ms vs 100 ms, 2 slots, jobs=12)"
      ~hotels:12 ~fast:0.02 ~slow:0.1 ~jobs:12 ~slots:2
  in
  let w n = List.assoc n walls in
  if w "adaptive x2" >= w "round-robin x2" then begin
    Printf.eprintf "e12smoke: adaptive (%.3fs) did not beat round-robin (%.3fs)\n"
      (w "adaptive x2") (w "round-robin x2");
    exit 1
  end;
  if w "adaptive x2" >= w "replicas=1" then begin
    Printf.eprintf "e12smoke: two replicas (%.3fs) did not beat one (%.3fs)\n" (w "adaptive x2")
      (w "replicas=1");
    exit 1
  end;
  Printf.printf "e12smoke: ok (adaptive %.3fs < round-robin %.3fs, < one replica %.3fs)\n"
    (w "adaptive x2") (w "round-robin x2") (w "replicas=1")

(* ------------------------------------------------------------------ *)
(* E13: event-loop server under connection pressure — one server, raw
   concurrent connections in the thousands, binary vs JSON framing on
   the city workload. Every connection handshakes (always JSON), then
   issues [rounds] gethotels requests; the binary arms advertise
   cap_binary and so negotiate the binary codec. Clients speak through
   raw fds with blocking Wire.send/recv (NOT the Client pool, whose
   health check selects — fd *values* past 1024 are exactly what the
   epoll loop exists for). Asserted invariants: every reply in every
   arm is byte-identical (serialized forest digest), and binary moves
   strictly fewer wire bytes. *)

module Wire = Axml_net.Wire

type e13_result = {
  e13_setup : float;  (* seconds to dial + handshake every connection *)
  e13_wall : float;  (* seconds for the request phase *)
  e13_bytes : int;  (* request-phase wire bytes, both directions *)
  e13_alloc : float;  (* bytes allocated process-wide during the arm *)
  e13_digest : string;  (* digest of the (identical) serialized replies *)
  e13_requests : int;
}

let e13_cfg hotels =
  (* all-intensional: gethotels answers with every hotel subtree, a
     meaty forest whose encoding cost is what the codecs compete on *)
  { City.default_config with City.hotels = hotels; seed = 7; extensional_fraction = 0.0 }

let e13_arm ~port ~binary ~conns ~threads ~rounds =
  let caps =
    if binary then [ Wire.cap_project; Wire.cap_binary ] else [ Wire.cap_project ]
  in
  let invoke id =
    Wire.Invoke
      { id; service = "gethotels"; params = [ Axml_xml.Tree.text "NY" ]; push = None }
  in
  let alloc0 = Gc.allocated_bytes () in
  let dial () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let scr = Wire.scratch () in
    ignore (Wire.send ~scratch:scr fd (Wire.Hello { version = Wire.version; caps }));
    match Wire.recv ~scratch:scr fd with
    | Wire.Welcome { caps = server_caps; _ }, _ ->
      let codec =
        if binary && List.mem Wire.cap_binary server_caps then Wire.Binary else Wire.Json
      in
      (fd, codec, scr, ref 0)
    | _ -> failwith "e13: handshake failed"
  in
  let pool, e13_setup = wall (fun () -> Array.init conns (fun _ -> dial ())) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun (fd, _, _, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
        pool)
    (fun () ->
      let exchange (fd, codec, scr, next) =
        incr next;
        let sent = Wire.send ~codec ~scratch:scr fd (invoke !next) in
        match Wire.recv ~scratch:scr fd with
        | Wire.Result { id; forest; _ }, got when id = !next ->
          (sent + got, Digest.string (Axml_xml.Print.forest_to_string forest))
        | _ -> failwith "e13: unexpected reply"
      in
      (* one untimed probe pins the expected answer for the whole arm *)
      let _, e13_digest = exchange pool.(0) in
      let bytes_total = Atomic.make 0 in
      let errors = Atomic.make [] in
      let run_thread t () =
        try
          let local = ref 0 in
          for _ = 1 to rounds do
            Array.iteri
              (fun i conn ->
                if i mod threads = t then begin
                  let b, d = exchange conn in
                  if d <> e13_digest then failwith "e13: reply differs within arm";
                  local := !local + b
                end)
              pool
          done;
          ignore (Atomic.fetch_and_add bytes_total !local)
        with e -> Atomic.set errors (e :: Atomic.get errors)
      in
      let (), e13_wall =
        wall (fun () ->
            let ts = List.init threads (fun t -> Thread.create (run_thread t) ()) in
            List.iter Thread.join ts)
      in
      (match Atomic.get errors with [] -> () | e :: _ -> raise e);
      {
        e13_setup;
        e13_wall;
        e13_bytes = Atomic.get bytes_total;
        e13_alloc = Gc.allocated_bytes () -. alloc0;
        e13_digest;
        e13_requests = conns * rounds;
      })

let e13_sweep ~title ~hotels ~conns ~threads_list ~rounds =
  let served = City.generate (e13_cfg hotels) in
  let server = Server.create ~registry:served.City.registry () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let port = Server.port server in
      let arms =
        List.concat_map
          (fun threads ->
            List.map
              (fun binary ->
                ((binary, threads), e13_arm ~port ~binary ~conns ~threads ~rounds))
              [ false; true ])
          threads_list
      in
      let _, base = List.hd arms in
      List.iter
        (fun (_, r) ->
          (* the acceptance bar: every arm answers byte-identically *)
          assert (r.e13_digest = base.e13_digest))
        arms;
      let rows =
        List.map
          (fun ((binary, threads), r) ->
            [
              (if binary then "binary" else "json");
              string_of_int threads;
              string_of_int conns;
              string_of_int r.e13_requests;
              secs r.e13_setup;
              secs r.e13_wall;
              Printf.sprintf "%.2f" (float_of_int r.e13_bytes /. 1048576.0);
              Printf.sprintf "%.1f" (r.e13_alloc /. 1048576.0);
              Printf.sprintf "%.0f" (float_of_int r.e13_requests /. Float.max 1e-9 r.e13_wall);
            ])
          arms
      in
      print_table ~title
        ~header:
          [ "wire"; "threads"; "conns"; "requests"; "setup(s)"; "wall(s)"; "wire(MB)"; "alloc(MB)"; "req/s" ]
        rows;
      arms)

let e13 () =
  let arms =
    e13_sweep
      ~title:"E13: 2000 concurrent connections through one event-loop server (24 hotels)"
      ~hotels:24 ~conns:2000 ~threads_list:[ 4; 16 ] ~rounds:2
  in
  List.iter
    (fun threads ->
      let find binary = List.assoc (binary, threads) arms in
      let j = find false and b = find true in
      if b.e13_bytes >= j.e13_bytes then begin
        Printf.eprintf "e13: binary moved %d B >= json %d B at %d threads\n" b.e13_bytes
          j.e13_bytes threads;
        exit 1
      end)
    [ 4; 16 ]

(* The CI-sized variant: 64 connections, 8 client threads, best of two
   runs per arm (the smoke assertion is about codec cost, not scheduler
   noise), hard-asserting byte-identical answers, strictly fewer wire
   bytes, and binary wall <= JSON wall. *)
let e13smoke () =
  let served = City.generate (e13_cfg 12) in
  let server = Server.create ~registry:served.City.registry () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let port = Server.port server in
      let run binary = e13_arm ~port ~binary ~conns:64 ~threads:8 ~rounds:4 in
      let j1 = run false in
      let b1 = run true in
      let j2 = run false in
      let b2 = run true in
      if j1.e13_digest <> b1.e13_digest then begin
        Printf.eprintf "e13smoke: binary and json answers differ\n";
        exit 1
      end;
      if b1.e13_bytes >= j1.e13_bytes then begin
        Printf.eprintf "e13smoke: binary moved %d B >= json %d B\n" b1.e13_bytes
          j1.e13_bytes;
        exit 1
      end;
      let jw = Float.min j1.e13_wall j2.e13_wall in
      let bw = Float.min b1.e13_wall b2.e13_wall in
      if bw > jw then begin
        Printf.eprintf "e13smoke: binary wall %.3fs > json wall %.3fs\n" bw jw;
        exit 1
      end;
      Printf.printf
        "e13smoke: ok (binary %.3fs <= json %.3fs, %d B < %d B, answers identical)\n" bw jw
        b1.e13_bytes j1.e13_bytes)

(* ------------------------------------------------------------------ *)
(* E14: intra-document parallel match/detect. One Skewed_fanout
   Adversary instance is padded with cold ballast sections (pure data,
   no calls, keys never "magic") so the //item descendant sweep — not
   service invocation — dominates the run. The same evaluation is run
   at several --match-jobs levels: answers and every report counter
   must be byte-identical at every level (hard assert, even on one
   core); on a multi-core machine jobs=4 must also beat jobs=1 on the
   wall clock. *)

let e14_ballast doc ~sections ~items =
  let root = Doc.root doc in
  for s = 0 to sections - 1 do
    let item i =
      Doc.elem doc "item"
        [
          Doc.elem doc "key" [ Doc.data doc (Printf.sprintf "cold-%d-%d" s i) ];
          Doc.elem doc "payload" [ Doc.data doc "ballast" ];
        ]
    in
    Doc.append_child doc root (Doc.elem doc "section" (List.init items item))
  done

(* The cross-arm fingerprint: serialized answers plus every counter that
   must not move with the jobs level (analysis_seconds is wall-clock and
   parallel_match_batches is the parallelism accounting itself). *)
let e14_fingerprint (r : Engine.report) =
  let answers = Axml_xml.Print.forest_to_string (Eval.bindings_to_xml r.Engine.answers) in
  Printf.sprintf "%s|%d|%d|%d|%d|%d|%d|%d|%b" (Digest.to_hex (Digest.string answers))
    r.Engine.invoked r.Engine.rounds r.Engine.passes r.Engine.relevance_evals
    r.Engine.candidates_checked r.Engine.layer_count r.Engine.view_rebuild_nodes
    r.Engine.complete

let e14_arm ~scale ~sections ~items ~jobs =
  let inst =
    Adversary.generate
      { Adversary.default_config with Adversary.family = Adversary.Skewed_fanout; scale }
  in
  let doc = inst.Adversary.doc in
  e14_ballast doc ~sections ~items;
  let nodes = Doc.size doc in
  let strategy = Lazy_eval.with_match_jobs jobs Lazy_eval.nfqa in
  let r, w =
    wall (fun () ->
        Lazy_eval.run ~registry:inst.Adversary.registry ~strategy ~obs:!bench_obs
          inst.Adversary.query doc)
  in
  (nodes, r, w)

let e14_sweep ~title ~scale ~sections ~items ~jobs_list =
  let arms = List.map (fun jobs -> (jobs, e14_arm ~scale ~sections ~items ~jobs)) jobs_list in
  let _, (_, base, base_wall) = List.hd arms in
  let base_fp = e14_fingerprint base in
  List.iter
    (fun (jobs, (_, r, _)) ->
      if e14_fingerprint r <> base_fp then begin
        Printf.eprintf "e14: answers/counters diverge at match-jobs %d\n" jobs;
        exit 1
      end)
    arms;
  print_table ~title
    ~header:[ "match-jobs"; "nodes"; "wall(s)"; "analysis(s)"; "batches"; "speedup" ]
    (List.map
       (fun (jobs, ((nodes, r, w) : int * Engine.report * float)) ->
         [
           string_of_int jobs;
           string_of_int nodes;
           secs w;
           secs r.Engine.analysis_seconds;
           string_of_int r.Engine.parallel_match_batches;
           Printf.sprintf "%.2fx" (base_wall /. Float.max 1e-9 w);
         ])
       arms);
  arms

(* The strict wall-clock bar only applies where a speedup is physically
   possible: on a single-core container the domains serialize and the
   fan-out can only cost overhead, so the timing assertion is skipped
   (the byte-identity assertion above always runs). *)
let e14_assert_speedup ~label arms =
  let wall_of j =
    let _, _, w = List.assoc j arms in
    w
  in
  if Domain.recommended_domain_count () >= 2 then begin
    if wall_of 4 >= wall_of 1 then begin
      Printf.eprintf "%s: match-jobs 4 wall %.3fs >= match-jobs 1 wall %.3fs\n" label
        (wall_of 4) (wall_of 1);
      exit 1
    end;
    Printf.printf "%s: ok (jobs=4 %.3fs < jobs=1 %.3fs, answers identical)\n" label
      (wall_of 4) (wall_of 1)
  end
  else
    Printf.printf
      "%s: single core (recommended_domain_count < 2), timing bar skipped; answers \
       identical at every jobs level\n"
      label

let e14 () =
  let arms =
    e14_sweep
      ~title:
        "E14: intra-document parallel matching, million-node skewed doc (match-jobs sweep)"
      ~scale:100 ~sections:64 ~items:3125 ~jobs_list:[ 1; 2; 4; 8 ]
  in
  e14_assert_speedup ~label:"e14" arms

(* CI-sized: ~20k-node doc, jobs 1 vs 4 — same hard byte-identity bar,
   same core-gated timing bar. *)
let e14smoke () =
  let arms =
    e14_sweep ~title:"E14 smoke: parallel matching, ~20k-node skewed doc" ~scale:30
      ~sections:16 ~items:250 ~jobs_list:[ 1; 4 ]
  in
  e14_assert_speedup ~label:"e14smoke" arms

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the inner operation of each table. *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* Prepared inputs, shared across iterations. *)
  let small_city = City.generate { City.default_config with City.hotels = 10 } in
  let nfqs = Nfq.of_query small_city.City.query in
  let synth = Synthetic.generate { Synthetic.default_config with Synthetic.nodes = 20_000 } in
  let synth_rqs = Nfq.of_query synth.Synthetic.query in
  let synth_guide = Fguide.build synth.Synthetic.doc in
  let resto_forest =
    List.init 20 (fun i ->
        Axml_xml.Parse.tree
          (Printf.sprintf
             "<restaurant><name>R%d</name><address>A</address><rating>%d</rating><review>%s</review></restaurant>"
             i
             (1 + (i mod 5))
             (String.make 512 'x')))
  in
  let push_pattern =
    Nfq.optimistic (Axml_query.Parser.parse {|/restaurant[name=$X!][address=$Y!][rating="5"]|}).P.root
  in
  let sat_query = small_city.City.query in
  let tests =
    [
      Test.make ~name:"e1:lazy-run(10 hotels)"
        (Staged.stage (fun () ->
             let inst = City.generate { City.default_config with City.hotels = 10 } in
             Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
               ~strategy:Lazy_eval.nfqa_typed inst.City.query inst.City.doc));
      Test.make ~name:"e2:nfq-detection"
        (Staged.stage (fun () ->
             List.concat_map (fun rq -> Relevance.relevant_calls rq small_city.City.doc) nfqs));
      Test.make ~name:"e3:fguide-candidates(20k)"
        (Staged.stage (fun () ->
             List.concat_map
               (fun rq -> Fguide.candidates synth_guide (Relevance.guide_steps rq))
               synth_rqs));
      Test.make ~name:"e3:pathstack(20k)"
        (Staged.stage
           (let chains =
              List.map
                (fun rq ->
                  List.map
                    (fun (axis, label) -> { Axml_query.Pathstack.axis; label })
                    (Relevance.guide_steps rq))
                synth_rqs
            in
            fun () ->
              List.concat_map
                (fun steps -> Axml_query.Pathstack.matches steps synth.Synthetic.doc)
                chains));
      Test.make ~name:"e4:witness-prune"
        (Staged.stage (fun () -> Witness.prune push_pattern resto_forest));
      Test.make ~name:"e5:layering" (Staged.stage (fun () -> Influence.layers nfqs));
      Test.make ~name:"e6:sat-exact"
        (Staged.stage (fun () ->
             Sat.create (Schema.of_string City.schema_src) [ sat_query.P.root ]));
      (* Observability overhead: the same lazy run with the no-op sink vs
         live tracing+metrics. The acceptance bar is parity for the null
         sink against the e1 baseline (which never mentions obs). *)
      Test.make ~name:"obs:lazy-run-null"
        (Staged.stage (fun () ->
             let inst = City.generate { City.default_config with City.hotels = 10 } in
             Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
               ~strategy:Lazy_eval.nfqa_typed ~obs:Obs.null inst.City.query inst.City.doc));
      Test.make ~name:"obs:lazy-run-traced"
        (Staged.stage (fun () ->
             let inst = City.generate { City.default_config with City.hotels = 10 } in
             Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema
               ~strategy:Lazy_eval.nfqa_typed ~obs:(Obs.create ()) inst.City.query
               inst.City.doc));
    ]
  in
  let grouped = Test.make_grouped ~name:"axml" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      rows := [ name; Printf.sprintf "%.0f" estimate; Printf.sprintf "%.4f" r2 ] :: !rows)
    results;
  print_table ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
    ~header:[ "benchmark"; "ns/run"; "r^2" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e9smoke", e9smoke);
    ("e10", e10);
    ("e11", e11);
    ("e11smoke", e11smoke);
    ("e12", e12);
    ("e12smoke", e12smoke);
    ("e13", e13);
    ("e13smoke", e13smoke);
    ("e14", e14);
    ("e14smoke", e14smoke);
    ("micro", micro);
  ]

let () =
  let rec parse names = function
    | "--metrics-dir" :: dir :: rest ->
      metrics_dir := Some dir;
      parse names rest
    | "--metrics-dir" :: [] ->
      prerr_endline "--metrics-dir expects a directory argument";
      exit 2
    | name :: rest -> parse (name :: names) rest
    | [] -> List.rev names
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> with_snapshot name f ()
      | None ->
        Printf.eprintf "unknown experiment %S (available: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 2)
    requested
