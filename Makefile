.PHONY: all build test test-faults test-obs test-net test-exec test-engine test-gen test-project test-sched test-view test-wire-bin fuzz-smoke check-one-report bench bench-e9-smoke bench-e11-smoke bench-e12-smoke bench-e13-smoke bench-e14-smoke examples doc clean trace-demo serve-demo

all: build

build:
	dune build @all

test:
	dune runtest --force

test-faults:
	dune exec test/test_faults.exe

test-obs:
	dune exec test/test_obs.exe

# loopback client/server integration tests: wire codec, handshake,
# remote invocation with pooling, degradation when the peer dies, and
# the city-guide E2E (identical answers, fewer wire calls, push bytes)
test-net:
	dune exec test/test_net.exe

# worker-pool tests: map_batch semantics plus the differential check
# that pooled evaluation is byte-identical to sequential
test-exec:
	dune exec test/test_exec.exe

# unified-engine tests: pre-refactor fixture differential (both
# strategies, jobs 1 and 4), report/metrics/trace reconciliation,
# single-flight memoization, remote evaluation
test-engine:
	dune exec test/test_engine.exe

# shared-generator suites (test/gen.ml): adversary determinism, family
# shapes, the Def. 4 oracle on hostile instances, a small end-to-end
# fuzz run, and the wire garbage-rejection properties
test-gen:
	dune exec test/test_fuzz.exe
	dune exec test/test_net.exe

# type-based projection tests: keep/drop units, the projected ≡ full
# snapshot-answer property on schema-conforming instances, adversary
# and city differentials under faults, and the wire capability
# negotiation round-trip against an old (no-caps) peer
test-project:
	dune exec test/test_project.exe

# binary wire codec tests: the binary ≡ JSON differential round-trips
# (trees with whitespace-only leaves, patterns, every envelope), the
# 64 MiB max_frame rejection path, and codec negotiation end-to-end
# against binary-capable, JSON-pinned and pre-binary peers
test-wire-bin:
	dune exec test/test_net.exe -- test wire-binary

# distributed-scheduler tests: the sharded/replicated ≡ single-registry
# differential (answers, report, fault fates) at jobs 1 and 4,
# report/metrics/trace reconciliation through the scheduler, budget
# exhaustion, adaptive-vs-round-robin placement, and the mid-run
# replica-death failover
test-sched:
	dune exec test/test_sched.exe

# snapshot-view tests: index round-trips and invariants on random
# trees, incremental splice patching ≡ full rebuild across randomized
# splice sequences (empty forests included), the parallel ≡ sequential
# matching property, and F-guide memoization on the generation counter
test-view:
	dune exec test/test_view.exe

# the model-based differential fuzzer at a fixed seed: ~200 iterations
# of the full oracle battery over adversarial instances; exits nonzero
# on the first violation, printing the shrunk case and its replay seed
fuzz-smoke:
	dune exec bin/axml.exe -- fuzz --seed 7 --iters 200

# the unified report may not silently re-fork: downstream layers must
# not reach into evaluator-specific report records, and only the engine
# may define report_to_json
check-one-report:
	@! grep -rn '\.Naive\.\|\.Lazy_eval\.' bin bench lib/net --include='*.ml' \
	  || { echo 'direct evaluator report field access outside lib/core'; exit 1; }
	@test "$$(grep -rln 'let report_to_json' lib bin bench)" = "lib/engine/engine.ml" \
	  || { echo 'report_to_json defined outside lib/engine'; exit 1; }
	@! grep -rn '"full_nodes"\|"projected_nodes"\|"projected_bytes_saved"' bin bench lib/net lib/core --include='*.ml' \
	  || { echo 'projection report fields serialized outside lib/engine'; exit 1; }
	@! grep -rn '"sharded_calls"\|"rebalanced_calls"\|"rerouted_calls"' bin bench lib/net lib/core lib/sched --include='*.ml' \
	  || { echo 'routing report fields serialized outside lib/engine'; exit 1; }
	@! grep -rn '"view_rebuild_nodes"\|"parallel_match_batches"' bin bench lib/net lib/core lib/sched --include='*.ml' \
	  || { echo 'view report fields serialized outside lib/engine'; exit 1; }

# record a traced + measured run, then pretty-print the span tree;
# load /tmp/axml-demo.trace.json in chrome://tracing or ui.perfetto.dev
trace-demo:
	dune exec bin/axml.exe -- run --workload city \
	  --trace /tmp/axml-demo.trace.json \
	  --metrics /tmp/axml-demo.metrics.json \
	  --report-json /tmp/axml-demo.report.json
	dune exec bin/axml.exe -- trace /tmp/axml-demo.trace.json

# serve the weather spec on one terminal; evaluate against it from a
# second with:
#   ./_build/default/bin/axml.exe eval -d examples/data/weather.xml \
#     --connect 127.0.0.1:7342 --xml '/weather/tomorrow/sky!'
# (run the built binary, not `dune exec`, which would block on the
# build lock the serving side still holds)
serve-demo:
	dune build bin/axml.exe
	./_build/default/bin/axml.exe serve --services examples/data/weather.services.xml

bench:
	dune exec bench/main.exe

# the CI-sized E9: two loopback peers with injected latency, asserting
# that --jobs 4 beats --jobs 1 on the wall clock with identical answers
bench-e9-smoke:
	dune exec bench/main.exe -- e9smoke

# the CI-sized E11: skewed fan-out with and without the projector,
# asserting bytes were saved in-document and on the wire with
# byte-identical answers
bench-e11-smoke:
	dune exec bench/main.exe -- e11smoke

# the CI-sized E12: two loopback replicas with 5x skewed injected
# latency, asserting that adaptive placement beats static round-robin
# AND beats a single replica on the wall clock, with answers and
# invocation counts identical to the unsharded run
bench-e12-smoke:
	dune exec bench/main.exe -- e12smoke

# the CI-sized E13: one event-loop server, 64 raw concurrent
# connections on the city workload, asserting binary-framed answers
# byte-identical to JSON with strictly fewer wire bytes and
# binary wall <= JSON wall
bench-e13-smoke:
	dune exec bench/main.exe -- e13smoke

# the CI-sized E14: a ~20k-node skewed document swept at --match-jobs
# 1 and 4, always asserting byte-identical answers and counters; the
# wall-clock speedup assertion additionally runs when the machine has
# at least two cores
bench-e14-smoke:
	dune exec bench/main.exe -- e14smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/cityguide.exe
	dune exec examples/goingout.exe
	dune exec examples/pushdemo.exe
	dune exec examples/tooling.exe

doc:
	# requires odoc (opam install odoc)
	dune build @doc

clean:
	dune clean
