.PHONY: all build test test-faults test-obs bench examples doc clean trace-demo

all: build

build:
	dune build @all

test:
	dune runtest --force

test-faults:
	dune exec test/test_faults.exe

test-obs:
	dune exec test/test_obs.exe

# record a traced + measured run, then pretty-print the span tree;
# load /tmp/axml-demo.trace.json in chrome://tracing or ui.perfetto.dev
trace-demo:
	dune exec bin/axml.exe -- run --workload city \
	  --trace /tmp/axml-demo.trace.json \
	  --metrics /tmp/axml-demo.metrics.json \
	  --report-json /tmp/axml-demo.report.json
	dune exec bin/axml.exe -- trace /tmp/axml-demo.trace.json

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/cityguide.exe
	dune exec examples/goingout.exe
	dune exec examples/pushdemo.exe
	dune exec examples/tooling.exe

doc:
	# requires odoc (opam install odoc)
	dune build @doc

clean:
	dune clean
