.PHONY: all build test test-faults bench examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest --force

test-faults:
	dune exec test/test_faults.exe

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/cityguide.exe
	dune exec examples/goingout.exe
	dune exec examples/pushdemo.exe
	dune exec examples/tooling.exe

doc:
	# requires odoc (opam install odoc)
	dune build @doc

clean:
	dune clean
