(* Tests for the deterministic workload generators. *)

module Doc = Axml_doc
module Registry = Axml_services.Registry
module City = Axml_workload.City
module Goingout = Axml_workload.Goingout
module Synthetic = Axml_workload.Synthetic

let doc_fingerprint d = Digest.to_hex (Digest.string (Doc.to_string d))

(* ------------------------------------------------------------------ *)

let test_city_deterministic () =
  let a = City.generate City.default_config in
  let b = City.generate City.default_config in
  Alcotest.(check string) "same document" (doc_fingerprint a.City.doc) (doc_fingerprint b.City.doc)

let test_city_seed_changes_world () =
  let a = City.generate City.default_config in
  let b = City.generate { City.default_config with City.seed = 43 } in
  Alcotest.(check bool) "different documents" false
    (doc_fingerprint a.City.doc = doc_fingerprint b.City.doc)

let test_city_scales () =
  let size n =
    Doc.size (City.generate { City.default_config with City.hotels = n }).City.doc
  in
  Alcotest.(check bool) "more hotels, bigger document" true (size 40 > size 10)

let test_city_extensional_fraction () =
  let all_extensional =
    City.generate { City.default_config with City.extensional_fraction = 1.0 }
  in
  (* no gethotels call when every hotel is in the document *)
  Alcotest.(check bool) "no gethotels" true
    (List.for_all
       (fun n -> Doc.call_name n <> Some "gethotels")
       (Doc.function_nodes all_extensional.City.doc));
  let none_extensional =
    City.generate { City.default_config with City.extensional_fraction = 0.0 }
  in
  Alcotest.(check int) "only the gethotels call" 1
    (Doc.count_calls none_extensional.City.doc)

let test_city_fully_extensional_has_no_calls_after_all_intensional_off () =
  let inst =
    City.generate
      {
        City.default_config with
        City.extensional_fraction = 1.0;
        intensional_rating_fraction = 0.0;
        intensional_nearby_fraction = 0.0;
      }
  in
  Alcotest.(check int) "zero calls" 0 (Doc.count_calls inst.City.doc)

let test_figure1_structure () =
  let inst = City.figure1 () in
  let calls = Doc.function_nodes inst.City.doc in
  Alcotest.(check int) "ten calls" 10 (List.length calls);
  let names = List.filter_map Doc.call_name calls in
  Alcotest.(check (list string)) "paper order"
    [
      "getnearbyrestos"; "getnearbymuseums"; (* hotel 1 *)
      "getrating"; "getnearbyrestos"; "getnearbymuseums"; (* hotel 2 *)
      "getrating"; "getnearbymuseums"; (* hotel 3 *)
      "getrating"; "getnearbyrestos"; (* hotel 4 *)
      "gethotels";
    ]
    names

let test_figure1_services_match_fig3 () =
  let inst = City.figure1 () in
  let result, _ =
    Registry.invoke inst.City.registry ~name:"getnearbyrestos"
      ~params:[ Axml_xml.Tree.text "75, 2nd Av." ] ()
  in
  Alcotest.(check int) "two restaurants" 2 (List.length result);
  (* the second restaurant's rating is a further call (call 11) *)
  let has_nested_call =
    List.exists
      (fun tr ->
        Axml_xml.Tree.find_all (fun n -> Axml_xml.Tree.name n = Some Doc.call_elem_name) tr <> [])
      result
  in
  Alcotest.(check bool) "nested getrating" true has_nested_call

(* ------------------------------------------------------------------ *)

let test_goingout_deterministic () =
  let a = Goingout.generate Goingout.default_config in
  let b = Goingout.generate Goingout.default_config in
  Alcotest.(check string) "same document" (doc_fingerprint a.Goingout.doc)
    (doc_fingerprint b.Goingout.doc)

let test_goingout_sections () =
  let inst = Goingout.generate Goingout.default_config in
  let root = Doc.root inst.Goingout.doc in
  let section_names =
    List.filter_map
      (fun (n : Doc.node) -> match n.Doc.label with Doc.Elem l -> Some l | _ -> None)
      root.Doc.children
  in
  Alcotest.(check (list string)) "movies then restaurants" [ "movies"; "restaurants" ]
    section_names

let test_goingout_restaurant_calls_scale () =
  let count k =
    let inst =
      Goingout.generate { Goingout.default_config with Goingout.restaurant_calls = k }
    in
    List.length
      (List.filter
         (fun n -> Doc.call_name n = Some "getrestaurants")
         (Doc.function_nodes inst.Goingout.doc))
  in
  Alcotest.(check int) "five" 5 (count 5);
  Alcotest.(check int) "zero" 0 (count 0)

(* ------------------------------------------------------------------ *)

let test_synthetic_deterministic () =
  let a = Synthetic.generate Synthetic.default_config in
  let b = Synthetic.generate Synthetic.default_config in
  Alcotest.(check string) "same document" (doc_fingerprint a.Synthetic.doc)
    (doc_fingerprint b.Synthetic.doc)

let test_synthetic_size_close_to_target () =
  List.iter
    (fun nodes ->
      let inst = Synthetic.generate { Synthetic.default_config with Synthetic.nodes } in
      let size = Doc.size inst.Synthetic.doc in
      Alcotest.(check bool)
        (Printf.sprintf "size %d within 2x of %d" size nodes)
        true
        (size >= nodes / 2 && size <= nodes * 2))
    [ 1_000; 10_000; 50_000 ]

let test_synthetic_services_registered () =
  let inst = Synthetic.generate { Synthetic.default_config with Synthetic.nodes = 500 } in
  Alcotest.(check bool) "fetch" true (Registry.is_registered inst.Synthetic.registry "fetch");
  Alcotest.(check bool) "noise" true (Registry.is_registered inst.Synthetic.registry "noise")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "workload"
    [
      ( "city",
        [
          quick "deterministic" test_city_deterministic;
          quick "seed changes world" test_city_seed_changes_world;
          quick "scales" test_city_scales;
          quick "extensional fraction" test_city_extensional_fraction;
          quick "fully extensional" test_city_fully_extensional_has_no_calls_after_all_intensional_off;
          quick "figure1 structure" test_figure1_structure;
          quick "figure1 services" test_figure1_services_match_fig3;
        ] );
      ( "goingout",
        [
          quick "deterministic" test_goingout_deterministic;
          quick "sections" test_goingout_sections;
          quick "restaurant calls scale" test_goingout_restaurant_calls_scale;
        ] );
      ( "synthetic",
        [
          quick "deterministic" test_synthetic_deterministic;
          quick "size near target" test_synthetic_size_close_to_target;
          quick "services registered" test_synthetic_services_registered;
        ] );
    ]
