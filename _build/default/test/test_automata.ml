(* Tests for regexes, NFAs and DFAs. *)

module Regex = Axml_automata.Regex
module Nfa = Axml_automata.Nfa
module Dfa = Axml_automata.Dfa

let re = Regex.of_string

(* ------------------------------------------------------------------ *)
(* Regex parsing and printing *)

let test_parse_basic () =
  Alcotest.(check bool) "sym" true (Regex.equal (re "a") (Regex.Sym "a"));
  Alcotest.(check bool) "seq" true (Regex.equal (re "a.b") (Regex.Seq (Sym "a", Sym "b")));
  Alcotest.(check bool) "alt" true (Regex.equal (re "a|b") (Regex.Alt (Sym "a", Sym "b")));
  Alcotest.(check bool) "star" true (Regex.equal (re "a*") (Regex.Star (Sym "a")));
  Alcotest.(check bool) "plus" true (Regex.equal (re "a+") (Regex.Plus (Sym "a")));
  Alcotest.(check bool) "opt" true (Regex.equal (re "a?") (Regex.Opt (Sym "a")));
  Alcotest.(check bool) "any" true (Regex.equal (re "_") Regex.Any);
  Alcotest.(check bool) "eps" true (Regex.equal (re "%empty") Regex.Epsilon);
  Alcotest.(check bool) "none" true (Regex.equal (re "%none") Regex.Empty)

let test_parse_precedence () =
  (* a.b|c star parses as seq before alt *)
  let got = re "a.b|c*" in
  let want = Regex.Alt (Seq (Sym "a", Sym "b"), Star (Sym "c")) in
  Alcotest.(check bool) "precedence" true (Regex.equal got want)

let test_parse_schema_example () =
  (* The hotel content model from Fig. 2. *)
  let got = re "name.address.rating.nearby" in
  Alcotest.(check bool) "matches word" true
    (Regex.matches got [ "name"; "address"; "rating"; "nearby" ]);
  Alcotest.(check bool) "order matters" false
    (Regex.matches got [ "address"; "name"; "rating"; "nearby" ])

let test_parse_errors () =
  List.iter
    (fun src ->
      match re src with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected parse failure on %S" src)
    [ "("; "a|"; "a)"; "*"; "%what"; "a b" ]

let test_print_roundtrip () =
  List.iter
    (fun src ->
      let r = re src in
      let printed = Regex.to_string r in
      Alcotest.(check bool) (src ^ " roundtrips") true (Regex.equal r (re printed)))
    [ "a"; "a.b.c"; "a|b|c"; "(a|b).c*"; "a?.b+"; "_*.a"; "%empty"; "(a.b)*" ]

(* ------------------------------------------------------------------ *)
(* Regex semantics *)

let test_nullable () =
  Alcotest.(check bool) "eps" true (Regex.nullable (re "%empty"));
  Alcotest.(check bool) "star" true (Regex.nullable (re "a*"));
  Alcotest.(check bool) "opt" true (Regex.nullable (re "a?"));
  Alcotest.(check bool) "sym" false (Regex.nullable (re "a"));
  Alcotest.(check bool) "plus" false (Regex.nullable (re "a+"));
  Alcotest.(check bool) "seq" false (Regex.nullable (re "a*.b"))

let test_matches () =
  let r = re "(a|b)*.c" in
  Alcotest.(check bool) "abc" true (Regex.matches r [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "c" true (Regex.matches r [ "c" ]);
  Alcotest.(check bool) "empty" false (Regex.matches r []);
  Alcotest.(check bool) "trailing" false (Regex.matches r [ "c"; "a" ])

let test_occurring_symbols () =
  Alcotest.(check (list string)) "live" [ "a"; "b" ] (Regex.occurring_symbols (re "a.b"));
  (* c is only reachable through an empty language *)
  Alcotest.(check (list string))
    "dead branch" [ "a" ]
    (Regex.occurring_symbols (Regex.Alt (Sym "a", Seq (Sym "c", Regex.Empty))))

let test_enumerate () =
  let words = Regex.enumerate ~max_len:3 ~alphabet:[ "a"; "b" ] (re "a.b?") in
  Alcotest.(check int) "two words" 2 (List.length words);
  Alcotest.(check bool) "has a" true (List.mem [ "a" ] words);
  Alcotest.(check bool) "has ab" true (List.mem [ "a"; "b" ] words)

(* ------------------------------------------------------------------ *)
(* NFA *)

let nfa_of ?(alphabet = [ "a"; "b"; "c" ]) src = Nfa.of_regex ~alphabet (re src)

let test_nfa_accepts () =
  let a = nfa_of "(a|b)*.c" in
  Alcotest.(check bool) "abc" true (Nfa.accepts a [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "c" true (Nfa.accepts a [ "c" ]);
  Alcotest.(check bool) "empty" false (Nfa.accepts a []);
  Alcotest.(check bool) "unknown symbol" false (Nfa.accepts a [ "z" ])

let test_nfa_empty () =
  Alcotest.(check bool) "none" true (Nfa.is_empty (nfa_of "%none"));
  Alcotest.(check bool) "eps nonempty" false (Nfa.is_empty (nfa_of "%empty"));
  Alcotest.(check bool) "dead seq" true (Nfa.is_empty (nfa_of "a.%none"))

let test_nfa_product () =
  let a = nfa_of "a*.b" and b = nfa_of "a.a._" in
  let p = Nfa.product a b in
  (* Intersection: words of length 3 starting aa and ending b: aab *)
  Alcotest.(check bool) "aab" true (Nfa.accepts p [ "a"; "a"; "b" ]);
  Alcotest.(check bool) "ab" false (Nfa.accepts p [ "a"; "b" ]);
  Alcotest.(check bool) "nonempty" false (Nfa.is_empty p)

let test_nfa_prefix () =
  let a = Nfa.prefix_closure (nfa_of "a.b.c") in
  List.iter
    (fun (w, want) -> Alcotest.(check bool) (String.concat "" w) want (Nfa.accepts a w))
    [ ([], true); ([ "a" ], true); ([ "a"; "b" ], true); ([ "a"; "b"; "c" ], true);
      ([ "b" ], false); ([ "a"; "c" ], false) ]

let test_nfa_prefix_of_empty () =
  (* Prefix closure of ∅ is ∅ (no word has a prefix). *)
  Alcotest.(check bool) "still empty" true (Nfa.is_empty (Nfa.prefix_closure (nfa_of "%none")))

let test_nfa_some_word () =
  (match Nfa.some_word (nfa_of "a.b*.c") with
  | Some w -> Alcotest.(check (list string)) "shortest" [ "a"; "c" ] w
  | None -> Alcotest.fail "expected a word");
  Alcotest.(check bool) "empty language" true (Nfa.some_word (nfa_of "%none") = None)

let test_common_alphabet () =
  let alpha = Nfa.common_alphabet [ re "a.b"; re "b.c" ] in
  Alcotest.(check bool) "has a" true (List.mem "a" alpha);
  Alcotest.(check bool) "has other" true (List.mem Nfa.other_symbol alpha);
  Alcotest.(check int) "no duplicates" 4 (List.length alpha)

(* The paper's Prop. 3 example: //a and prefixes of //b intersect (a word
   ending in a can be the prefix of a word ending in b). *)
let test_influence_example () =
  let desc s = Regex.seq [ Regex.Star Regex.Any; Regex.Sym s ] in
  let alpha = Nfa.common_alphabet [ desc "a"; desc "b" ] in
  let a = Nfa.of_regex ~alphabet:alpha (desc "a") in
  let b_pref = Nfa.prefix_closure (Nfa.of_regex ~alphabet:alpha (desc "b")) in
  Alcotest.(check bool) "//a may influence //b" true (Nfa.intersects a b_pref);
  (* But /a and /b do not intersect at all (independence condition ★). *)
  let child s = Nfa.of_regex ~alphabet:alpha (Regex.Sym s) in
  Alcotest.(check bool) "a ∩ b empty" false (Nfa.intersects (child "a") (child "b"))

(* ------------------------------------------------------------------ *)
(* DFA *)

let dfa_of ?(alphabet = [ "a"; "b"; "c" ]) src = Dfa.of_regex ~alphabet (re src)

let test_dfa_accepts () =
  let d = dfa_of "(a|b)*.c" in
  Alcotest.(check bool) "abc" true (Dfa.accepts d [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "no" false (Dfa.accepts d [ "a" ])

let test_dfa_complement () =
  let d = Dfa.complement (dfa_of "a*") in
  Alcotest.(check bool) "a rejected" false (Dfa.accepts d [ "a" ]);
  Alcotest.(check bool) "b accepted" true (Dfa.accepts d [ "b" ])

let test_dfa_equal () =
  Alcotest.(check bool) "a|b = b|a" true (Dfa.equal (dfa_of "a|b") (dfa_of "b|a"));
  Alcotest.(check bool) "(a*)* = a*" true (Dfa.equal (dfa_of "(a*)*") (dfa_of "a*"));
  Alcotest.(check bool) "a <> a.a" false (Dfa.equal (dfa_of "a") (dfa_of "a.a"))

let test_dfa_subset () =
  Alcotest.(check bool) "a+ ⊆ a*" true (Dfa.subset (dfa_of "a+") (dfa_of "a*"));
  Alcotest.(check bool) "a* ⊄ a+" false (Dfa.subset (dfa_of "a*") (dfa_of "a+"))

let test_dfa_minimize () =
  let d = dfa_of "(a|b)*.(a|b)" in
  let m = Dfa.minimize d in
  Alcotest.(check bool) "same language" true (Dfa.equal d m);
  Alcotest.(check bool) "not larger" true (Dfa.size m <= Dfa.size d)

(* ------------------------------------------------------------------ *)
(* Properties: the three implementations agree *)

let gen_regex =
  let open QCheck.Gen in
  let sym = oneofl [ "a"; "b"; "c" ] in
  sized
  @@ fix (fun self n ->
         if n = 0 then
           frequency [ (4, map (fun s -> Regex.Sym s) sym); (1, return Regex.Any); (1, return Regex.Epsilon) ]
         else
           frequency
             [
               (2, map (fun s -> Regex.Sym s) sym);
               (2, map2 (fun a b -> Regex.Seq (a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Regex.Alt (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun a -> Regex.Star a) (self (n / 2)));
               (1, map (fun a -> Regex.Plus a) (self (n / 2)));
               (1, map (fun a -> Regex.Opt a) (self (n / 2)));
             ])

let gen_word = QCheck.Gen.(list_size (int_bound 6) (oneofl [ "a"; "b"; "c" ]))

let arb_regex_word =
  QCheck.make
    ~print:(fun (r, w) -> Regex.to_string r ^ " on " ^ String.concat "." w)
    QCheck.Gen.(pair gen_regex gen_word)

let alphabet = [ "a"; "b"; "c" ]

let prop_nfa_matches_regex =
  QCheck.Test.make ~name:"NFA agrees with derivatives" ~count:1000 arb_regex_word
    (fun (r, w) ->
      Regex.matches r w = Nfa.accepts (Nfa.of_regex ~alphabet r) w)

let prop_dfa_matches_regex =
  QCheck.Test.make ~name:"DFA agrees with derivatives" ~count:500 arb_regex_word
    (fun (r, w) ->
      Regex.matches r w = Dfa.accepts (Dfa.of_regex ~alphabet r) w)

let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimize preserves the language" ~count:300 arb_regex_word
    (fun (r, w) ->
      let d = Dfa.of_regex ~alphabet r in
      Dfa.accepts d w = Dfa.accepts (Dfa.minimize d) w)

let prop_product_is_intersection =
  QCheck.Test.make ~name:"NFA product = intersection" ~count:500
    (QCheck.make
       ~print:(fun ((a, b), w) ->
         Regex.to_string a ^ " & " ^ Regex.to_string b ^ " on " ^ String.concat "." w)
       QCheck.Gen.(pair (pair gen_regex gen_regex) gen_word))
    (fun ((ra, rb), w) ->
      let a = Nfa.of_regex ~alphabet ra and b = Nfa.of_regex ~alphabet rb in
      Nfa.accepts (Nfa.product a b) w = (Nfa.accepts a w && Nfa.accepts b w))

let prop_prefix_closure =
  QCheck.Test.make ~name:"prefix closure accepts every prefix" ~count:500 arb_regex_word
    (fun (r, w) ->
      let a = Nfa.of_regex ~alphabet r in
      let p = Nfa.prefix_closure a in
      (not (Nfa.accepts a w))
      ||
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | x :: rest -> List.rev acc :: prefixes (x :: acc) rest
      in
      List.for_all (Nfa.accepts p) (prefixes [] w))

let prop_complement_involution =
  QCheck.Test.make ~name:"DFA complement is an involution" ~count:300 arb_regex_word
    (fun (r, w) ->
      let d = Dfa.of_regex ~alphabet r in
      Dfa.accepts (Dfa.complement (Dfa.complement d)) w = Dfa.accepts d w)

let prop_complement_flips =
  QCheck.Test.make ~name:"complement flips membership" ~count:300 arb_regex_word
    (fun (r, w) ->
      let d = Dfa.of_regex ~alphabet r in
      Dfa.accepts (Dfa.complement d) w = not (Dfa.accepts d w))

let prop_subset_reflexive_and_equal =
  QCheck.Test.make ~name:"subset is reflexive; equal is symmetric" ~count:200
    (QCheck.make ~print:(fun (a, b) -> Regex.to_string a ^ " / " ^ Regex.to_string b)
       QCheck.Gen.(pair gen_regex gen_regex))
    (fun (ra, rb) ->
      let a = Dfa.of_regex ~alphabet ra and b = Dfa.of_regex ~alphabet rb in
      Dfa.subset a a && Dfa.equal a b = Dfa.equal b a)

let prop_enumerate_members =
  QCheck.Test.make ~name:"enumerated words are members" ~count:200
    (QCheck.make ~print:Regex.to_string gen_regex)
    (fun r ->
      List.for_all (Regex.matches r) (Regex.enumerate ~max_len:4 ~limit:50 ~alphabet r))

let prop_to_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string preserves the language" ~count:300
    arb_regex_word
    (fun (r, w) -> Regex.matches r w = Regex.matches (Regex.of_string (Regex.to_string r)) w)

let prop_is_empty_agrees =
  QCheck.Test.make ~name:"is_empty iff no enumerated word" ~count:300
    (QCheck.make ~print:Regex.to_string gen_regex)
    (fun r ->
      let nfa_empty = Nfa.is_empty (Nfa.of_regex ~alphabet r) in
      let words = Regex.enumerate ~max_len:5 ~limit:5 ~alphabet r in
      (* enumerate is complete up to length 5; a Glushkov automaton of our
         small regexes accepting only longer words is impossible when it
         has ≤ 5 states, but guard anyway via some_word. *)
      match Nfa.some_word (Nfa.of_regex ~alphabet r) with
      | None -> nfa_empty && words = []
      | Some w -> (not nfa_empty) && Regex.matches r w)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "automata"
    [
      ( "regex",
        [
          quick "parse basic" test_parse_basic;
          quick "parse precedence" test_parse_precedence;
          quick "schema example" test_parse_schema_example;
          quick "parse errors" test_parse_errors;
          quick "print roundtrip" test_print_roundtrip;
          quick "nullable" test_nullable;
          quick "matches" test_matches;
          quick "occurring symbols" test_occurring_symbols;
          quick "enumerate" test_enumerate;
        ] );
      ( "nfa",
        [
          quick "accepts" test_nfa_accepts;
          quick "emptiness" test_nfa_empty;
          quick "product" test_nfa_product;
          quick "prefix closure" test_nfa_prefix;
          quick "prefix of empty" test_nfa_prefix_of_empty;
          quick "some word" test_nfa_some_word;
          quick "common alphabet" test_common_alphabet;
          quick "influence example" test_influence_example;
        ] );
      ( "dfa",
        [
          quick "accepts" test_dfa_accepts;
          quick "complement" test_dfa_complement;
          quick "equal" test_dfa_equal;
          quick "subset" test_dfa_subset;
          quick "minimize" test_dfa_minimize;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_nfa_matches_regex;
          QCheck_alcotest.to_alcotest prop_dfa_matches_regex;
          QCheck_alcotest.to_alcotest prop_minimize_preserves;
          QCheck_alcotest.to_alcotest prop_product_is_intersection;
          QCheck_alcotest.to_alcotest prop_prefix_closure;
          QCheck_alcotest.to_alcotest prop_is_empty_agrees;
          QCheck_alcotest.to_alcotest prop_complement_involution;
          QCheck_alcotest.to_alcotest prop_complement_flips;
          QCheck_alcotest.to_alcotest prop_subset_reflexive_and_equal;
          QCheck_alcotest.to_alcotest prop_enumerate_members;
          QCheck_alcotest.to_alcotest prop_to_string_roundtrip;
        ] );
    ]
