(* Tests for the FLWR front-end. *)

module Doc = Axml_doc
module Tree = Axml_xml.Tree
module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Xquery = Axml_query.Xquery
module Lazy_eval = Axml_core.Lazy_eval
module City = Axml_workload.City

let sample_doc () =
  Doc.parse
    {|<guide>
        <hotel><name>Best Western</name><rating>5</rating>
          <nearby>
            <restaurant><name>Mama</name><address>2nd Av.</address><rating>5</rating></restaurant>
            <restaurant><name>Jo</name><address>2nd Av.</address><rating>2</rating></restaurant>
          </nearby>
        </hotel>
        <hotel><name>Pennsylvania</name><rating>5</rating>
          <nearby>
            <restaurant><name>Great</name><address>Penn St.</address><rating>5</rating></restaurant>
          </nearby>
        </hotel>
      </guide>|}

let fig4_flwr =
  {|for $h in doc()/guide/hotel,
        $r in $h/nearby//restaurant
    where $h/name = "Best Western" and $h/rating = "5" and $r/rating = "5"
    return <res>{$r/name}{$r/address}</res>|}

let forest_string forest = Axml_xml.Print.forest_to_string forest

(* ------------------------------------------------------------------ *)

let test_compile_basics () =
  let q = Xquery.compile fig4_flwr in
  Alcotest.(check (list string)) "variables" [ "h"; "r" ] (Xquery.variables q);
  let pat = Xquery.pattern q in
  Alcotest.(check int) "two result nodes" 2 (List.length (P.result_nodes pat));
  Alcotest.(check bool) "root is guide" true (pat.P.root.P.label = P.Const "guide")

let test_run () =
  let q = Xquery.compile fig4_flwr in
  let out = Xquery.run q (sample_doc ()) in
  Alcotest.(check int) "one result" 1 (List.length out);
  Alcotest.(check string) "constructed element"
    "<res><name>Mama</name><address>2nd Av.</address></res>" (forest_string out)

let test_run_without_where () =
  let q =
    Xquery.compile {|for $r in doc()/guide//restaurant return <n>{$r/name}</n>|}
  in
  let out = Xquery.run q (sample_doc ()) in
  Alcotest.(check int) "three restaurants" 3 (List.length out)

let test_text_and_nesting () =
  let q =
    Xquery.compile
      {|for $h in doc()/guide/hotel where $h/name = "Pennsylvania"
        return <card>hotel: <inner>{$h/rating}</inner></card>|}
  in
  match Xquery.run q (sample_doc ()) with
  | [ tree ] ->
    Alcotest.(check string) "shape"
      "<card>hotel: <inner><rating>5</rating></inner></card>" (forest_string [ tree ])
  | other -> Alcotest.failf "expected one element, got %d" (List.length other)

let test_join () =
  (* hotels sharing their rating with some restaurant they host *)
  let q =
    Xquery.compile
      {|for $h in doc()/guide/hotel, $r in $h/nearby/restaurant
        where $h/rating = $r/rating
        return <m>{$r/name}</m>|}
  in
  let out = Xquery.run q (sample_doc ()) in
  (* Mama (5=5) and Great (5=5), not Jo (5<>2) *)
  Alcotest.(check int) "two matches" 2 (List.length out);
  Alcotest.(check bool) "no Jo" true
    (not (List.exists (fun t -> Tree.text_content t = "Jo") out))

let test_wildcard_and_descendant () =
  let q =
    Xquery.compile {|for $n in doc()//restaurant/name return <x>{$n}</x>|}
  in
  Alcotest.(check int) "three names" 3 (List.length (Xquery.run q (sample_doc ())))

let test_errors () =
  List.iter
    (fun src ->
      match Xquery.compile src with
      | exception Xquery.Error _ -> ()
      | _ -> Alcotest.failf "expected Error on %s" src)
    [
      "";
      "for $x return <a></a>";
      "for $x in doc() return <a></a>";
      "for $x in $y/a return <a></a>";
      "for $x in doc()/a return <a>{$z}</a>";
      "for $x in doc()/a, $x in doc()/a return <a></a>";
      "for $x in doc()/a where $x = return <a></a>";
      "for $x in doc()/a return <a><b></a></b>";
      "for $x in doc()/a return no-template";
    ]

(* The FLWR front-end composes with lazy evaluation: the compiled
   pattern drives relevance detection, and the template renders the
   answers after materialization. *)
let test_lazy_integration () =
  let instance = City.figure1 () in
  let q =
    Xquery.compile
      {|for $h in doc()/guide/hotel, $r in $h/nearby//restaurant
        where $h/name = "Best Western" and $h/rating = "5" and $r/rating = "5"
        return <res>{$r/name}{$r/address}</res>|}
  in
  let report =
    Lazy_eval.run ~registry:instance.City.registry ~schema:instance.City.schema
      ~strategy:Lazy_eval.nfqa_typed (Xquery.pattern q) instance.City.doc
  in
  let out = Xquery.instantiate q report.Lazy_eval.answers in
  Alcotest.(check string) "rendered answer"
    "<res><name>Mama</name><address>75, 2nd Av.</address></res>" (forest_string out);
  Alcotest.(check bool) "lazy: fewer than naive's 11 calls" true (report.Lazy_eval.invoked < 11)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "xquery"
    [
      ( "flwr",
        [
          quick "compile" test_compile_basics;
          quick "run" test_run;
          quick "no where" test_run_without_where;
          quick "text and nesting" test_text_and_nesting;
          quick "joins" test_join;
          quick "wildcard and descendant" test_wildcard_and_descendant;
          quick "errors" test_errors;
          quick "lazy integration" test_lazy_integration;
        ] );
    ]
