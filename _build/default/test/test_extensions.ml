(* Tests for the companion components: tree-pattern containment,
   document validation, termination analysis, and the evaluator options
   built on them. *)

module Doc = Axml_doc
module P = Axml_query.Pattern
module Parser = Axml_query.Parser
module Eval = Axml_query.Eval
module Containment = Axml_query.Containment
module Schema = Axml_schema.Schema
module Validate = Axml_schema.Validate
module Registry = Axml_services.Registry
module Termination = Axml_core.Termination
module Lazy_eval = Axml_core.Lazy_eval
module Naive = Axml_core.Naive
module City = Axml_workload.City
module Goingout = Axml_workload.Goingout
module Synthetic = Axml_workload.Synthetic

let q = Parser.parse

(* ------------------------------------------------------------------ *)
(* Containment *)

let check_contained msg a b expected =
  Alcotest.(check bool) msg expected (Containment.contained (q a) (q b))

let test_containment_basics () =
  check_contained "q ⊆ q" "/a/b" "/a/b" true;
  check_contained "extra condition" "/a[b][c]" "/a[b]" true;
  check_contained "missing condition" "/a[b]" "/a[b][c]" false;
  check_contained "child ⊆ descendant" "/a/b" "/a//b" true;
  check_contained "descendant ⊄ child" "/a//b" "/a/b" false;
  check_contained "longer path under //" "/a/x/b" "/a//b" true;
  check_contained "const ⊆ wildcard" "/a/b" "/a/*" true;
  check_contained "wildcard ⊄ const" "/a/*" "/a/b" false;
  check_contained "values" {|/a[b="1"]|} "/a[b]" true;
  check_contained "distinct values" {|/a[b="1"]|} {|/a[b="2"]|} false

let test_containment_functions () =
  check_contained "named ⊆ star" "/a/f()" "/a/*()" true;
  check_contained "star ⊄ named" "/a/*()" "/a/f()" false;
  check_contained "same name" "/a/f()" "/a/f()" true;
  check_contained "different name" "/a/f()" "/a/g()" false

let test_containment_deep_descendant () =
  check_contained "nested //" "/a/b/c/d" "/a//c/d" true;
  check_contained "// to //" "/a//b//c" "/a//c" true;
  check_contained "not reversed" "/a//c" "/a//b//c" false

let test_equivalent () =
  Alcotest.(check bool) "same modulo condition order" true
    (Containment.equivalent (q "/a[b][c]") (q "/a[c][b]"));
  Alcotest.(check bool) "not equivalent" false (Containment.equivalent (q "/a[b]") (q "/a"))

let test_drop_contained () =
  let qs = [ q "/a/b"; q "/a//b"; q "/a//b[c]"; q "/x" ] in
  let kept = Containment.drop_contained qs in
  (* /a/b ⊆ /a//b and /a//b[c] ⊆ /a//b *)
  Alcotest.(check int) "two survive" 2 (List.length kept);
  let srcs = List.map P.to_string kept in
  Alcotest.(check bool) "keeps /a//b" true (List.mem (P.to_string (q "/a//b")) srcs)

(* Soundness property: if contained q q' and q has an embedding in a
   random document, then q' has one too. *)
let gen_doc_xml =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  let rec gen n =
    if n = 0 then map (fun v -> Axml_xml.Tree.text v) (oneofl [ "1"; "2" ])
    else
      frequency
        [
          (1, map (fun v -> Axml_xml.Tree.text v) (oneofl [ "1"; "2" ]));
          ( 4,
            map2
              (fun l cs -> Axml_xml.Tree.element l cs)
              name
              (list_size (int_bound 3) (gen (n / 2))) );
        ]
  in
  QCheck.Gen.(map (fun c -> Axml_xml.Tree.element "r" [ c ]) (sized_size (int_bound 4) gen))

let query_pool =
  [
    "/r/a"; "/r//a"; "/r/a[b]"; "/r//a[b]"; "/r//*[b][c]"; "/r/a/b"; "/r//b"; {|/r//a["1"]|};
    "/r/*"; "/r//a//b";
  ]

let prop_containment_sound =
  QCheck.Test.make ~name:"containment is sound on random documents" ~count:500
    (QCheck.make
       ~print:(fun ((a, b), x) -> a ^ " ⊆? " ^ b ^ " | " ^ Axml_xml.Print.to_string x)
       QCheck.Gen.(pair (pair (oneofl query_pool) (oneofl query_pool)) gen_doc_xml))
    (fun ((a, b), xml) ->
      let qa = q a and qb = q b in
      (not (Containment.contained qa qb))
      ||
      let d = Doc.of_xml xml in
      Eval.eval qa d = [] || Eval.eval qb d <> [])

(* ------------------------------------------------------------------ *)
(* Validation *)

let test_validate_figure1 () =
  let instance = City.figure1 () in
  Alcotest.(check (list string)) "conforms" []
    (List.map (fun i -> i.Validate.message) (Validate.document instance.City.schema instance.City.doc))

let test_validate_catches_errors () =
  let schema = Schema.of_string City.schema_src in
  let bad = Doc.parse "<guide><hotel><name>x</name></hotel></guide>" in
  let issues = Validate.document schema bad in
  Alcotest.(check bool) "missing fields caught" true (List.length issues = 1);
  let bad2 = Doc.parse {|<guide><axml:call name="getrating"><a/><b/></axml:call></guide>|} in
  let issues2 = Validate.document schema bad2 in
  (* guide content wrong AND getrating parameters wrong *)
  Alcotest.(check int) "two issues" 2 (List.length issues2)

let test_validate_unknown_names_unconstrained () =
  let schema = Schema.of_string "elements:\n a = b" in
  let d = Doc.parse "<mystery><x/><y/></mystery>" in
  Alcotest.(check bool) "unknown root unconstrained" true (Validate.conforms schema d)

let test_workloads_conform () =
  let city = City.generate { City.default_config with City.hotels = 10 } in
  Alcotest.(check bool) "city conforms" true (Validate.conforms city.City.schema city.City.doc);
  let go = Goingout.generate Goingout.default_config in
  Alcotest.(check bool) "goingout conforms" true
    (Validate.conforms go.Goingout.schema go.Goingout.doc);
  let syn = Synthetic.generate { Synthetic.default_config with Synthetic.nodes = 2000 } in
  Alcotest.(check bool) "synthetic conforms" true
    (Validate.conforms syn.Synthetic.schema syn.Synthetic.doc)

let test_materialized_workloads_conform () =
  (* service results must keep documents schema-conformant *)
  let city = City.generate { City.default_config with City.hotels = 10 } in
  ignore (Naive.run city.City.registry city.City.query city.City.doc);
  Alcotest.(check (list string)) "city after naive" []
    (List.map (fun i -> i.Validate.message) (Validate.document city.City.schema city.City.doc));
  let go = Goingout.generate Goingout.default_config in
  ignore (Naive.run go.Goingout.registry go.Goingout.query go.Goingout.doc);
  Alcotest.(check (list string)) "goingout after naive" []
    (List.map (fun i -> i.Validate.message) (Validate.document go.Goingout.schema go.Goingout.doc))

(* ------------------------------------------------------------------ *)
(* Termination *)

let test_termination_city () =
  let city = City.figure1 () in
  Alcotest.(check bool) "city schema terminates" true
    (Termination.analyze city.City.schema = Termination.Terminates);
  Alcotest.(check bool) "city doc terminates" true
    (Termination.analyze_doc city.City.schema city.City.doc = Termination.Terminates)

let test_termination_cycle () =
  let schema =
    Schema.of_string
      {|functions:
  f = [in: data, out: wrapper]
elements:
  wrapper = a.f?
  a = data
|}
  in
  (match Termination.analyze schema with
  | Termination.May_diverge chain ->
    Alcotest.(check bool) "cycle goes through f" true (List.mem "f" chain)
  | Termination.Terminates -> Alcotest.fail "expected May_diverge");
  (* a document without any call terminates regardless *)
  let empty = Doc.parse "<wrapper><a>1</a></wrapper>" in
  Alcotest.(check bool) "call-free doc" true
    (Termination.analyze_doc schema empty = Termination.Terminates)

let test_termination_element_recursion_ok () =
  (* recursive element types alone cannot make rewriting diverge *)
  let schema =
    Schema.of_string
      {|functions:
  getparts = [in: data, out: part*]
elements:
  part = name.part*
  name = data
|}
  in
  Alcotest.(check bool) "terminates" true (Termination.analyze schema = Termination.Terminates)

let test_termination_mutual_cycle () =
  let schema =
    Schema.of_string
      {|functions:
  f = [in: data, out: box]
  g = [in: data, out: lid]
elements:
  box = lid?.g?
  lid = f?
|}
  in
  match Termination.analyze schema with
  | Termination.May_diverge _ -> ()
  | Termination.Terminates -> Alcotest.fail "f -> g -> f should diverge"

let test_termination_unknown_service () =
  let schema = Schema.of_string "functions:\n f = [in: data, out: whatever]" in
  match Termination.analyze schema with
  | Termination.May_diverge _ -> () (* 'whatever' is unconstrained *)
  | Termination.Terminates -> Alcotest.fail "unconstrained output must be conservative"

let test_call_graph () =
  let city = City.figure1 () in
  let graph = Termination.call_graph city.City.schema in
  let targets = List.assoc "gethotels" graph in
  Alcotest.(check bool) "gethotels reaches getrating" true (List.mem "getrating" targets);
  Alcotest.(check bool) "gethotels reaches getnearbyrestos" true
    (List.mem "getnearbyrestos" targets);
  Alcotest.(check (list string)) "getrating reaches nothing" [] (List.assoc "getrating" graph)

(* ------------------------------------------------------------------ *)
(* New evaluator options *)

let tuples answers =
  List.map (fun (b : Eval.binding) -> b.Eval.vars) answers |> List.sort_uniq compare

let small_cfg = { City.default_config with City.hotels = 8; seed = 11 }

let run_strategy strategy =
  let inst = City.generate small_cfg in
  Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~strategy inst.City.query
    inst.City.doc

let test_containment_dedup_agrees () =
  let base = run_strategy Lazy_eval.nfqa in
  let dedup = run_strategy { Lazy_eval.nfqa with Lazy_eval.containment_dedup = true } in
  Alcotest.(check bool) "same answers" true
    (tuples base.Lazy_eval.answers = tuples dedup.Lazy_eval.answers);
  Alcotest.(check bool) "complete" true dedup.Lazy_eval.complete

let test_lpq_dedup_reduces_queries () =
  (* with LPQs the containment dedup removes redundant prefix queries *)
  let base = run_strategy { Lazy_eval.lpq_only with Lazy_eval.parallel = false } in
  let dedup =
    run_strategy
      { Lazy_eval.lpq_only with Lazy_eval.parallel = false; containment_dedup = true }
  in
  Alcotest.(check bool) "same answers" true
    (tuples base.Lazy_eval.answers = tuples dedup.Lazy_eval.answers);
  Alcotest.(check bool) "fewer or equal detections" true
    (dedup.Lazy_eval.relevance_evals <= base.Lazy_eval.relevance_evals)

let test_shared_contexts_agree () =
  let shared = run_strategy Lazy_eval.nfqa in
  let isolated = run_strategy { Lazy_eval.nfqa with Lazy_eval.share_contexts = false } in
  Alcotest.(check bool) "same answers" true
    (tuples shared.Lazy_eval.answers = tuples isolated.Lazy_eval.answers);
  Alcotest.(check int) "same calls" isolated.Lazy_eval.invoked shared.Lazy_eval.invoked

let test_materialize_results () =
  let go cfg strategy =
    let inst = Goingout.generate cfg in
    Lazy_eval.run ~registry:inst.Goingout.registry ~schema:inst.Goingout.schema ~strategy
      inst.Goingout.query inst.Goingout.doc
  in
  let cfg = { Goingout.default_config with Goingout.theaters = 8; target_fraction = 0.3 } in
  let plain = go cfg Lazy_eval.nfqa_typed in
  let materialized =
    go cfg { Lazy_eval.nfqa_typed with Lazy_eval.materialize_results = true }
  in
  Alcotest.(check int) "same answer count"
    (List.length plain.Lazy_eval.answers)
    (List.length materialized.Lazy_eval.answers);
  (* materialized answers contain no pending calls *)
  List.iter
    (fun (b : Eval.binding) ->
      List.iter
        (fun (_, (n : Doc.node)) ->
          let rec no_calls (m : Doc.node) =
            match m.Doc.label with
            | Doc.Call _ -> false
            | Doc.Data _ -> true
            | Doc.Elem _ -> List.for_all no_calls m.Doc.children
          in
          Alcotest.(check bool) "call-free answer" true (no_calls n))
        b.Eval.results)
    materialized.Lazy_eval.answers;
  Alcotest.(check bool) "materialization may cost extra calls" true
    (materialized.Lazy_eval.invoked >= plain.Lazy_eval.invoked)

let test_speculative_fewer_rounds () =
  let cfg =
    {
      City.default_config with
      City.hotels = 12;
      intensional_rating_fraction = 0.9;
      intensional_nearby_fraction = 0.9;
    }
  in
  let run strategy =
    let inst = City.generate cfg in
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~strategy
      inst.City.query inst.City.doc
  in
  let careful = run Lazy_eval.nfqa in
  let speculative = run { Lazy_eval.nfqa with Lazy_eval.speculative = true } in
  Alcotest.(check bool) "same answers" true
    (tuples careful.Lazy_eval.answers = tuples speculative.Lazy_eval.answers);
  Alcotest.(check bool) "no more rounds" true
    (speculative.Lazy_eval.rounds <= careful.Lazy_eval.rounds);
  Alcotest.(check bool) "possibly more calls" true
    (speculative.Lazy_eval.invoked >= careful.Lazy_eval.invoked)

let test_budget_exhaustion () =
  let inst = City.generate { City.default_config with City.hotels = 20 } in
  let strategy = { Lazy_eval.nfqa with Lazy_eval.max_calls = 1 } in
  let r =
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~strategy
      inst.City.query inst.City.doc
  in
  Alcotest.(check bool) "budget hit" false r.Lazy_eval.complete;
  Alcotest.(check int) "one call" 1 r.Lazy_eval.invoked

let test_unknown_service_propagates () =
  let doc = Doc.parse {|<guide><axml:call name="ghost">x</axml:call></guide>|} in
  let registry = Registry.create () in
  let query = Parser.parse "/guide/hotel" in
  match Lazy_eval.run ~registry query doc with
  | exception Registry.Unknown_service "ghost" -> ()
  | _ -> Alcotest.fail "expected Unknown_service"

(* Fuzz: parsers must fail only with their documented exceptions. *)
let printable_string = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 60))

let fuzz name parse documented =
  QCheck.Test.make ~name ~count:1000
    (QCheck.make ~print:(Printf.sprintf "%S") printable_string)
    (fun src ->
      match parse src with
      | _ -> true
      | exception e -> documented e)

let prop_fuzz_xml =
  fuzz "XML parser fails cleanly"
    (fun s -> ignore (Axml_xml.Parse.tree s))
    (function Axml_xml.Parse.Error _ -> true | Invalid_argument _ -> true | _ -> false)

let prop_fuzz_query =
  fuzz "query parser fails cleanly"
    (fun s -> ignore (Parser.parse s))
    (function Parser.Error _ -> true | _ -> false)

let prop_fuzz_schema =
  fuzz "schema parser fails cleanly"
    (fun s -> ignore (Schema.of_string s))
    (function Schema.Parse_error _ -> true | _ -> false)

let prop_fuzz_regex =
  fuzz "regex parser fails cleanly"
    (fun s -> ignore (Axml_automata.Regex.of_string s))
    (function Failure _ -> true | _ -> false)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "containment",
        [
          quick "basics" test_containment_basics;
          quick "function nodes" test_containment_functions;
          quick "deep descendants" test_containment_deep_descendant;
          quick "equivalence" test_equivalent;
          quick "drop contained" test_drop_contained;
          QCheck_alcotest.to_alcotest prop_containment_sound;
        ] );
      ( "validation",
        [
          quick "figure1 conforms" test_validate_figure1;
          quick "catches errors" test_validate_catches_errors;
          quick "unknown unconstrained" test_validate_unknown_names_unconstrained;
          quick "workloads conform" test_workloads_conform;
          quick "materialized workloads conform" test_materialized_workloads_conform;
        ] );
      ( "termination",
        [
          quick "city terminates" test_termination_city;
          quick "direct cycle" test_termination_cycle;
          quick "element recursion ok" test_termination_element_recursion_ok;
          quick "mutual cycle" test_termination_mutual_cycle;
          quick "unknown service" test_termination_unknown_service;
          quick "call graph" test_call_graph;
        ] );
      ( "evaluator options",
        [
          quick "containment dedup agrees" test_containment_dedup_agrees;
          quick "lpq dedup reduces queries" test_lpq_dedup_reduces_queries;
          quick "shared contexts agree" test_shared_contexts_agree;
          quick "materialize results" test_materialize_results;
          quick "speculative parallelism" test_speculative_fewer_rounds;
          quick "budget exhaustion" test_budget_exhaustion;
          quick "unknown service" test_unknown_service_propagates;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_fuzz_xml;
          QCheck_alcotest.to_alcotest prop_fuzz_query;
          QCheck_alcotest.to_alcotest prop_fuzz_schema;
          QCheck_alcotest.to_alcotest prop_fuzz_regex;
        ] );
    ]
