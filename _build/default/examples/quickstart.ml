(* Quickstart: build an Active XML document, register a service, run a
   query lazily.

     dune exec examples/quickstart.exe *)

module Doc = Axml_doc
module Tree = Axml_xml.Tree
module Parser = Axml_query.Parser
module Registry = Axml_services.Registry
module Lazy_eval = Axml_core.Lazy_eval

let () =
  (* 1. An AXML document: a weather page whose forecast is intensional —
     the <axml:call> element is a pending call to the "forecast"
     service, with one parameter. *)
  let doc =
    Doc.parse
      {|<weather>
          <city>Paris</city>
          <today><sky>cloudy</sky></today>
          <tomorrow><axml:call name="forecast">Paris</axml:call></tomorrow>
        </weather>|}
  in
  Printf.printf "Document before evaluation:\n%s\n\n" (Doc.to_string ~indent:2 doc);

  (* 2. A simulated Web service. Results are plain XML forests and may
     themselves contain further calls. *)
  let registry = Registry.create () in
  Registry.register registry ~name:"forecast" (fun _params ->
      [ Tree.element "sky" [ Tree.text "sunny" ] ]);
  Registry.register registry ~name:"mood" (fun _params -> [ Tree.text "n/a" ]);

  (* 3. A tree-pattern query: tomorrow's sky. The '!' marks the result
     node. *)
  let query = Parser.parse "/weather/tomorrow/sky!" in

  (* 4. Lazy evaluation: only calls that can contribute to the query are
     invoked. *)
  let report = Lazy_eval.run ~registry query doc in
  Printf.printf "Invoked %d call(s); document after evaluation:\n%s\n\n"
    report.Lazy_eval.invoked
    (Doc.to_string ~indent:2 doc);
  List.iter
    (fun (b : Axml_query.Eval.binding) ->
      List.iter
        (fun (_, n) -> Printf.printf "answer: %s\n" (Axml_xml.Print.to_string (Doc.node_to_xml n)))
        b.Axml_query.Eval.results)
    report.Lazy_eval.answers;

  (* A query about today would have invoked nothing. *)
  let doc2 =
    Doc.parse
      {|<weather><today><sky>cloudy</sky></today>
        <tomorrow><axml:call name="forecast">Paris</axml:call></tomorrow></weather>|}
  in
  let report2 = Lazy_eval.run ~registry (Parser.parse "/weather/today/sky!") doc2 in
  Printf.printf "\nQuery about today invoked %d call(s).\n" report2.Lazy_eval.invoked
