(* The introduction's motivating scenario: a night-life site with movies
   and restaurants, queried for the schedule of one show. Demonstrates the
   two kinds of pruning from §1:
   - position: calls under /goingout/restaurants are never invoked;
   - types: review services under /goingout/movies are never invoked.

     dune exec examples/goingout.exe *)

module Registry = Axml_services.Registry
module Lazy_eval = Axml_core.Lazy_eval
module Naive = Axml_core.Naive
module Goingout = Axml_workload.Goingout

let invoked_services registry =
  List.map (fun (i : Registry.invocation) -> i.Registry.service) (Registry.history registry)
  |> List.sort_uniq compare

let count_by registry name =
  List.length
    (List.filter
       (fun (i : Registry.invocation) -> i.Registry.service = name)
       (Registry.history registry))

let () =
  Printf.printf "Query: %s\n\n" Goingout.query_src;

  let cfg = { Goingout.default_config with Goingout.theaters = 12 } in

  (* Naive: everything gets invoked, including the restaurant guides and
     the review services. *)
  let naive_inst = Goingout.generate cfg in
  let naive =
    Naive.run naive_inst.Goingout.registry naive_inst.Goingout.query naive_inst.Goingout.doc
  in
  Printf.printf "naive:     %3d calls  services: %s\n" naive.Naive.invoked
    (String.concat ", " (invoked_services naive_inst.Goingout.registry));

  (* Lazy without types: restaurants are skipped (wrong position), but
     reviews are still fetched — a call under a theater might, for all the
     evaluator knows, return shows. *)
  let untyped_inst = Goingout.generate cfg in
  let untyped =
    Lazy_eval.run ~registry:untyped_inst.Goingout.registry ~schema:untyped_inst.Goingout.schema
      ~strategy:Lazy_eval.nfqa untyped_inst.Goingout.query untyped_inst.Goingout.doc
  in
  Printf.printf "lazy:      %3d calls  services: %s\n" untyped.Lazy_eval.invoked
    (String.concat ", " (invoked_services untyped_inst.Goingout.registry));
  assert (count_by untyped_inst.Goingout.registry "getrestaurants" = 0);

  (* Lazy with types: the review services are pruned too. *)
  let typed_inst = Goingout.generate cfg in
  let typed =
    Lazy_eval.run ~registry:typed_inst.Goingout.registry ~schema:typed_inst.Goingout.schema
      ~strategy:Lazy_eval.nfqa_typed typed_inst.Goingout.query typed_inst.Goingout.doc
  in
  Printf.printf "lazy+types:%3d calls  services: %s\n\n" typed.Lazy_eval.invoked
    (String.concat ", " (invoked_services typed_inst.Goingout.registry));
  assert (count_by typed_inst.Goingout.registry "getreviews" = 0);
  assert (count_by typed_inst.Goingout.registry "getrestaurants" = 0);

  (* §2: the full result may be returned "possibly intensionally" — a
     schedule that still contains a pending call contributes to the
     answer without being invoked, because the call's output would sit
     below the matched node and so cannot change the embedding. *)
  Printf.printf "The Hours plays at:\n";
  List.iter
    (fun (b : Axml_query.Eval.binding) ->
      List.iter
        (fun (_, (n : Axml_doc.node)) ->
          match List.filter Axml_doc.is_call n.Axml_doc.children with
          | [] ->
            Printf.printf "  %s\n" (Axml_xml.Tree.text_content (Axml_doc.node_to_xml n))
          | _ -> Printf.printf "  (still intensional: a getschedule call is pending)\n")
        b.Axml_query.Eval.results)
    typed.Lazy_eval.answers;
  assert (typed.Lazy_eval.answers <> [] = (naive.Naive.answers <> []))
