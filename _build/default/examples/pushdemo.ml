(* Query pushing (§7): when a service's full result is much larger than
   the part the query needs, the evaluator ships the relevant subquery
   with the call and the provider returns only witnesses.

     dune exec examples/pushdemo.exe *)

module Tree = Axml_xml.Tree
module Registry = Axml_services.Registry
module Witness = Axml_services.Witness
module Nfq = Axml_core.Nfq
module Lazy_eval = Axml_core.Lazy_eval
module City = Axml_workload.City

let () =
  (* First, the witness pruning itself, on a small forest. *)
  let forest =
    Axml_xml.Parse.forest
      {|<restaurant><name>In Delis</name><address>2nd Ave.</address><rating>5</rating>
          <review>long blurb, long blurb, long blurb, long blurb</review></restaurant>
        <restaurant><name>The Capital</name><address>2nd Ave.</address><rating>5</rating>
          <review>another long blurb that nobody asked for</review></restaurant>
        <restaurant><name>Chez Bof</name><address>3rd Ave.</address><rating>2</rating>
          <review>meh</review></restaurant>|}
  in
  let pattern =
    Nfq.optimistic
      (Axml_query.Parser.parse {|/restaurant[name=$X!][address=$Y!][rating="5"]|}).Axml_query.Pattern.root
  in
  let pruned = Witness.prune pattern forest in
  Printf.printf "Full result:   %d bytes, %d trees\n"
    (Axml_xml.Print.forest_byte_size forest)
    (List.length forest);
  Printf.printf "Pushed result: %d bytes, %d trees\n%s\n\n"
    (Axml_xml.Print.forest_byte_size pruned)
    (List.length pruned)
    (Axml_xml.Print.forest_to_string ~indent:2 pruned);

  (* Then end to end, on the city guide with fat review blurbs. *)
  let cfg = { City.default_config with City.hotels = 30; blurb_bytes = 2048 } in
  let run strategy =
    let inst = City.generate cfg in
    Lazy_eval.run ~registry:inst.City.registry ~schema:inst.City.schema ~strategy inst.City.query
      inst.City.doc
  in
  let plain = run Lazy_eval.nfqa_typed in
  let pushed = run (Lazy_eval.with_push Lazy_eval.nfqa_typed) in
  Printf.printf "without push: %7d bytes transferred, %.3f s simulated\n"
    plain.Lazy_eval.bytes_transferred plain.Lazy_eval.simulated_seconds;
  Printf.printf "with push:    %7d bytes transferred, %.3f s simulated (%d pushed calls)\n"
    pushed.Lazy_eval.bytes_transferred pushed.Lazy_eval.simulated_seconds
    pushed.Lazy_eval.pushed;
  assert (List.length plain.Lazy_eval.answers = List.length pushed.Lazy_eval.answers);
  Printf.printf "same %d answers either way\n" (List.length pushed.Lazy_eval.answers)
