(* The companion tools around the lazy evaluator: schema validation,
   termination analysis, query containment, F-guide serialization, and
   service-result memoization.

     dune exec examples/tooling.exe *)

module Doc = Axml_doc
module Parser = Axml_query.Parser
module Containment = Axml_query.Containment
module Schema = Axml_schema.Schema
module Validate = Axml_schema.Validate
module Registry = Axml_services.Registry
module Fguide = Axml_core.Fguide
module Termination = Axml_core.Termination
module City = Axml_workload.City

let () =
  let instance = City.figure1 () in
  let schema = instance.City.schema in

  (* 1. Validation: the running example conforms to the Fig. 2 schema;
     a mangled document does not. *)
  print_endline "-- validation --";
  Printf.printf "figure 1 conforms: %b\n" (Validate.conforms schema instance.City.doc);
  let broken = Doc.parse "<guide><hotel><rating>5</rating></hotel></guide>" in
  List.iter
    (fun issue -> Format.printf "  issue: %a@." Validate.pp_issue issue)
    (Validate.document schema broken);

  (* 2. Termination: the city schema's call graph is acyclic, so every
     rewriting terminates; a service returning its own host type would
     not. *)
  print_endline "\n-- termination --";
  Format.printf "city schema: %a@." Termination.pp_verdict (Termination.analyze schema);
  let cyclic =
    Schema.of_string
      {|functions:
  crawl = [in: data, out: page]
elements:
  page = link*
  link = crawl?
|}
  in
  Format.printf "crawler schema: %a@." Termination.pp_verdict (Termination.analyze cyclic);

  (* 3. Containment: the relevance machinery uses it to drop redundant
     queries. *)
  print_endline "\n-- containment --";
  let pairs =
    [
      ("/guide/hotel/name", "/guide//name");
      ("/guide//name", "/guide/hotel/name");
      ({|/guide/hotel[rating="5"][name]|}, "/guide/hotel[name]");
    ]
  in
  List.iter
    (fun (a, b) ->
      Printf.printf "  %-34s ⊆ %-24s : %b\n" a b
        (Containment.contained (Parser.parse a) (Parser.parse b)))
    pairs;

  (* 4. The F-guide is itself an XML document (§6.2). *)
  print_endline "\n-- F-guide as XML --";
  print_endline
    (Axml_xml.Print.to_string ~indent:2 (Fguide.to_xml (Fguide.build instance.City.doc)));

  (* 5. Memoized services answer repeated calls for free. *)
  print_endline "\n-- memoization --";
  let registry = Registry.create () in
  Registry.register registry ~name:"quote" ~memoize:true (fun _ ->
      [ Axml_xml.Tree.text "42" ]);
  let _, first = Registry.invoke registry ~name:"quote" ~params:[ Axml_xml.Tree.text "q" ] () in
  let _, second = Registry.invoke registry ~name:"quote" ~params:[ Axml_xml.Tree.text "q" ] () in
  Printf.printf "first call: %.3fs, second (cached): %.3fs\n" first.Registry.cost
    second.Registry.cost
