examples/tooling.ml: Axml_core Axml_doc Axml_query Axml_schema Axml_services Axml_workload Axml_xml Format List Printf
