examples/goingout.mli:
