examples/tooling.mli:
