examples/goingout.ml: Axml_core Axml_doc Axml_query Axml_services Axml_workload Axml_xml List Printf String
