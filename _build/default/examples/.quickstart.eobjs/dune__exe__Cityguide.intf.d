examples/cityguide.mli:
