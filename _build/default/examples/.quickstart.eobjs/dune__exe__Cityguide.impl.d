examples/cityguide.ml: Axml_core Axml_doc Axml_query Axml_schema Axml_workload Format List Printf String
