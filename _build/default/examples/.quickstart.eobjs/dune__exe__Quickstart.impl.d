examples/quickstart.ml: Axml_core Axml_doc Axml_query Axml_services Axml_xml List Printf
