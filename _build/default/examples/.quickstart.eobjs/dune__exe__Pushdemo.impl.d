examples/pushdemo.ml: Axml_core Axml_query Axml_services Axml_workload Axml_xml List Printf
