examples/pushdemo.mli:
