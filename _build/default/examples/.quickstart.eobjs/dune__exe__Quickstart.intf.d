examples/quickstart.mli:
