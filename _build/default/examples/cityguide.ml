(* The paper's running example, end to end: the Fig. 1 city-guide
   document, the Fig. 4 query, relevant-call detection (§2–§3), layers
   (§4), and the lazy-vs-naive comparison.

     dune exec examples/cityguide.exe *)

module Doc = Axml_doc
module P = Axml_query.Pattern
module Relevance = Axml_core.Relevance
module Nfq = Axml_core.Nfq
module Lpq = Axml_core.Lpq
module Influence = Axml_core.Influence
module Typing = Axml_core.Typing
module Naive = Axml_core.Naive
module Lazy_eval = Axml_core.Lazy_eval
module Schema = Axml_schema.Schema
module City = Axml_workload.City

let call_ids calls =
  List.filter_map
    (fun (n : Doc.node) ->
      match n.Doc.label with Doc.Call { call_id; _ } -> Some call_id | _ -> None)
    calls
  |> List.sort_uniq compare

let show_ids ids = String.concat ", " (List.map string_of_int ids)

let () =
  let instance = City.figure1 () in
  print_endline "The Fig. 1 document (calls numbered as in the paper):";
  Format.printf "%a@.@." Doc.pp instance.City.doc;

  Printf.printf "Query (Fig. 4): %s\n\n" City.query_src;

  (* Relevant calls, without and with type information. *)
  let rqs = Nfq.of_query instance.City.query in
  let untyped =
    List.concat_map (fun rq -> Relevance.relevant_calls rq instance.City.doc) rqs |> call_ids
  in
  Printf.printf "NFQ-relevant calls (no type info):   %s\n" (show_ids untyped);
  let ty = Typing.create instance.City.schema instance.City.query in
  let known_functions = Schema.function_names instance.City.schema in
  let typed =
    List.filter_map (Typing.refine ty ~known_functions) rqs
    |> List.concat_map (fun rq -> Relevance.relevant_calls rq instance.City.doc)
    |> call_ids
  in
  Printf.printf "NFQ-relevant calls (typed, §5):      %s   <- the paper's {1,3,4,10}\n" (show_ids typed);
  let lpq =
    List.concat_map (fun rq -> Relevance.relevant_calls rq instance.City.doc)
      (Lpq.of_query instance.City.query)
    |> call_ids
  in
  Printf.printf "LPQ candidates (relaxed, §3.1):      %s\n\n" (show_ids lpq);

  (* Fig. 6: three of the NFQs — for the restaurant node (b) and the
     hotel-rating value (c); (a) is the hotel-position NFQ. *)
  print_endline "Three node-focused queries (Fig. 6):";
  let find_nfq pred = List.find pred rqs in
  let hotel_nfq =
    find_nfq (fun rq -> rq.Relevance.lin = [ (P.Child, P.Const "guide") ])
  in
  let restaurant_nfq =
    find_nfq (fun rq ->
        rq.Relevance.target_axis = P.Descendant
        &&
        match List.rev rq.Relevance.lin with
        | (_, P.Const "nearby") :: _ -> true
        | _ -> false)
  in
  let rating_value_nfq =
    find_nfq (fun rq ->
        match List.rev rq.Relevance.lin with
        | (_, P.Const "rating") :: (_, P.Const "hotel") :: _ -> true
        | _ -> false)
  in
  Format.printf "  (a) hotels:      %a@." P.pp hotel_nfq.Relevance.query;
  Format.printf "  (b) restaurants: %a@." P.pp restaurant_nfq.Relevance.query;
  Format.printf "  (c) ratings:     %a@.@." P.pp rating_value_nfq.Relevance.query;

  (* Fig. 7: the refined version of NFQ (c), with concrete service names
     in place of the star function nodes. *)
  (match Typing.refine ty ~known_functions rating_value_nfq with
  | Some refined ->
    Format.printf "Refined NFQ (Fig. 7):@.  %a@.@." P.pp refined.Relevance.query
  | None -> print_endline "(refined NFQ is empty)");

  (* Fig. 8: the function-call guide of the document. *)
  let guide = Axml_core.Fguide.build instance.City.doc in
  Printf.printf "Function-call guide (Fig. 8): %d calls under %d paths\n"
    (Axml_core.Fguide.call_count guide)
    (List.length (Axml_core.Fguide.paths guide));
  List.iter
    (fun path -> Printf.printf "  /%s\n" (String.concat "/" path))
    (Axml_core.Fguide.paths guide);
  print_newline ();

  (* Layers. *)
  let layers = Influence.layers rqs in
  Printf.printf "NFQ layers (processed in this order):\n";
  List.iteri
    (fun i layer ->
      Printf.printf "  layer %d: %s\n" i
        (String.concat "; "
           (List.map
              (fun rq ->
                let lin =
                  String.concat "/"
                    (List.map
                       (fun (_, l) -> Format.asprintf "%a" P.pp_label l)
                       rq.Relevance.lin)
                in
                if lin = "" then "(root)" else lin)
              layer)))
    layers;
  print_newline ();

  (* Lazy vs naive. *)
  let lazy_report =
    Lazy_eval.run ~registry:instance.City.registry ~schema:instance.City.schema
      ~strategy:Lazy_eval.nfqa_typed instance.City.query instance.City.doc
  in
  let naive_instance = City.figure1 () in
  let naive_report =
    Naive.run naive_instance.City.registry naive_instance.City.query naive_instance.City.doc
  in
  Printf.printf "lazy:  %d calls invoked, answers: " lazy_report.Lazy_eval.invoked;
  List.iter
    (fun (b : Axml_query.Eval.binding) ->
      List.iter (fun (x, v) -> Printf.printf "%s=%S " x v) b.Axml_query.Eval.vars)
    lazy_report.Lazy_eval.answers;
  Printf.printf "\nnaive: %d calls invoked, answers: " naive_report.Naive.invoked;
  List.iter
    (fun (b : Axml_query.Eval.binding) ->
      List.iter (fun (x, v) -> Printf.printf "%s=%S " x v) b.Axml_query.Eval.vars)
    naive_report.Naive.answers;
  print_newline ()
