module Tree = Axml_xml.Tree

type node = {
  id : int;
  mutable label : label;
  mutable attrs : (string * string) list;
  mutable children : node list;
  mutable parent : node option;
}

and label =
  | Elem of string
  | Data of string
  | Call of call

and call = { fname : string; call_id : int }

type t = {
  mutable root : node;
  mutable next_id : int;
  mutable next_call_id : int;
}

let fresh_id d =
  let id = d.next_id in
  d.next_id <- id + 1;
  id

let mk d label = { id = fresh_id d; label; attrs = []; children = []; parent = None }

let adopt parent child =
  match child.parent with
  | Some _ -> invalid_arg "Doc: node already has a parent"
  | None -> child.parent <- Some parent

let elem d ?(attrs = []) name children =
  let n = mk d (Elem name) in
  n.attrs <- attrs;
  List.iter (adopt n) children;
  n.children <- children;
  n

let data d value = mk d (Data value)

let call d fname params =
  let call_id = d.next_call_id in
  d.next_call_id <- call_id + 1;
  let n = mk d (Call { fname; call_id }) in
  List.iter (adopt n) params;
  n.children <- params;
  n

let create () =
  let dummy_root = { id = 0; label = Elem "root"; attrs = []; children = []; parent = None } in
  { root = dummy_root; next_id = 1; next_call_id = 1 }

let set_root d n =
  (match n.parent with
  | Some _ -> invalid_arg "Doc.set_root: node has a parent"
  | None -> ());
  d.root <- n

let root d = d.root

(* ------------------------------------------------------------------ *)

let call_elem_name = "axml:call"

let rec import d (t : Tree.t) : node =
  match t with
  | Tree.Text s -> data d s
  | Tree.Element { name; attrs; children } when String.equal name call_elem_name -> (
    match List.assoc_opt "name" attrs with
    | None -> invalid_arg "Doc.of_xml: <axml:call> without a name attribute"
    | Some fname -> call d fname (List.map (import d) children))
  | Tree.Element { name; attrs; children } ->
    elem d ~attrs name (List.map (import d) children)

let forest_of_xml d forest = List.map (import d) forest

let of_xml t =
  let d = create () in
  set_root d (import d t);
  d

let parse s = of_xml (Axml_xml.Parse.tree s)

let rec node_to_xml n =
  match n.label with
  | Data s -> Tree.Text s
  | Elem name -> Tree.Element { name; attrs = n.attrs; children = List.map node_to_xml n.children }
  | Call { fname; _ } ->
    Tree.Element
      {
        name = call_elem_name;
        attrs = ("name", fname) :: n.attrs;
        children = List.map node_to_xml n.children;
      }

let to_xml d = node_to_xml d.root
let to_string ?indent d = Axml_xml.Print.to_string ?indent (to_xml d)

(* ------------------------------------------------------------------ *)

let append_child _d parent child =
  adopt parent child;
  parent.children <- parent.children @ [ child ]

let remove_node _d n =
  match n.parent with
  | None -> invalid_arg "Doc.remove_node: cannot detach the root"
  | Some p ->
    p.children <- List.filter (fun c -> c.id <> n.id) p.children;
    n.parent <- None

let replace_call d fnode result =
  (match fnode.label with
  | Call _ -> ()
  | Elem _ | Data _ -> invalid_arg "Doc.replace_call: not a function node");
  match fnode.parent with
  | None -> invalid_arg "Doc.replace_call: function node has no parent"
  | Some parent ->
    let fresh = List.map (import d) result in
    List.iter (adopt parent) fresh;
    let rec splice = function
      | [] -> invalid_arg "Doc.replace_call: node not among its parent's children"
      | c :: rest -> if c.id = fnode.id then fresh @ rest else c :: splice rest
    in
    parent.children <- splice parent.children;
    fnode.parent <- None;
    fresh

(* ------------------------------------------------------------------ *)

let rec iter_node f n =
  f n;
  List.iter (iter_node f) n.children

let iter f d = iter_node f d.root

let fold f acc d =
  let acc = ref acc in
  iter (fun n -> acc := f !acc n) d;
  !acc

let is_data n = match n.label with Elem _ | Data _ -> true | Call _ -> false
let is_call n = match n.label with Call _ -> true | Elem _ | Data _ -> false
let call_name n = match n.label with Call { fname; _ } -> Some fname | Elem _ | Data _ -> None

let function_nodes d = List.rev (fold (fun acc n -> if is_call n then n :: acc else acc) [] d)

let visible_function_nodes d =
  (* Traverse without descending into function nodes' parameters. *)
  let out = ref [] in
  let rec go n =
    match n.label with
    | Call _ -> out := n :: !out
    | Elem _ | Data _ -> List.iter go n.children
  in
  go d.root;
  List.rev !out

let ancestors n =
  let rec up acc n = match n.parent with None -> List.rev acc | Some p -> up (p :: acc) p in
  up [] n

let label_path n =
  let labels =
    List.filter_map
      (fun a -> match a.label with Elem name -> Some name | Data _ | Call _ -> None)
      (ancestors n)
  in
  List.rev labels

let size d = fold (fun n _ -> n + 1) 0 d
let count_calls d = List.length (function_nodes d)
let data_children n = List.filter is_data n.children
let text_value n = match n.label with Data v -> Some v | Elem _ | Call _ -> None

let rec pp_node ppf n =
  match n.label with
  | Data s -> Format.fprintf ppf "%S" s
  | Elem name ->
    Format.fprintf ppf "@[<hv 2><%s>%a</%s>@]" name
      (Format.pp_print_list pp_node) n.children name
  | Call { fname; call_id } ->
    Format.fprintf ppf "@[<hv 2>[%d]%s(%a)@]" call_id fname
      (Format.pp_print_list pp_node) n.children

let pp ppf d = pp_node ppf d.root
