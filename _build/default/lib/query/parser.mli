(** XPath-like concrete syntax for tree-pattern queries.

    Grammar (whitespace is insignificant):
    {v
    query     ::= step+
    step      ::= ('/' | '//') test '!'? predicate-list
    predicate ::= '[' relpath ('=' rhs)? ']'
    relpath   ::= '//'? substep (('/' | '//') substep)...
    substep   ::= test '!'? predicate-list
    rhs       ::= STRING | '$' NAME '!'?
    test      ::= NAME            element name
                | '*'             wildcard
                | '$' NAME        variable
                | STRING          data value  (e.g. "5")
                | NAME '(' ')'    named function node
                | '*' '(' ')'     star function node
    v}

    ['!'] marks a result node. The [=] form is sugar: [[price="5"]] is
    [[price["5"]]] and [[name=$X!]] is [[name[$X!]]].

    Examples from the paper:
    - [/goingout/movies//show[title="The Hours"]/schedule!]
    - [/guide/hotel[name="Best Western"][rating="5"]
       //restaurant[name=$X!][address=$Y!][rating="5"]]
    - [//rating/getrating()] (an extended query with a function node). *)

exception Error of string

val parse : string -> Pattern.t
(** Raises {!Error} on invalid syntax. *)

val parse_relative : string -> Pattern.node list
(** Parses a relative path (no leading [/]); returns the chain's topmost
    node as a single-element list. Used for building predicates
    programmatically. *)
