module P = Pattern
module Doc = Axml_doc

type step = { axis : P.axis; label : P.label }

let steps_of_query (q : P.t) =
  let rec collect (n : P.node) acc =
    match n.P.label with
    | P.Or -> None
    | label -> (
      let acc = { axis = n.P.axis; label } :: acc in
      match n.P.children with
      | [] -> Some (List.rev acc)
      | [ only ] -> collect only acc
      | _ :: _ :: _ -> None)
  in
  collect q.P.root []

let label_matches (ql : P.label) (n : Doc.node) =
  match ql, n.Doc.label with
  | P.Const s, Doc.Elem e -> String.equal s e
  | P.Value v, Doc.Data d -> String.equal v d
  | (P.Var _ | P.Wildcard), (Doc.Elem _ | Doc.Data _) -> true
  | P.Fun P.Any_fun, Doc.Call _ -> true
  | P.Fun (P.Named fs), Doc.Call c -> List.mem c.Doc.fname fs
  | P.Or, _ -> invalid_arg "Pathstack: OR label"
  | (P.Const _ | P.Value _ | P.Var _ | P.Wildcard), Doc.Call _ -> false
  | (P.Const _ | P.Value _), (Doc.Elem _ | Doc.Data _) -> false
  | P.Fun _, (Doc.Elem _ | Doc.Data _) -> false

let matches steps (d : Doc.t) =
  let steps = Array.of_list steps in
  let k = Array.length steps in
  if k = 0 then invalid_arg "Pathstack.matches: empty chain";
  (* stacks.(i): the nodes currently on the root-to-here path that match
     the chain prefix up to step i. *)
  let stacks = Array.make k [] in
  let out = ref [] in
  let step_accepts i (n : Doc.node) =
    label_matches steps.(i).label n
    &&
    if i = 0 then n.Doc.id = (Doc.root d).Doc.id
    else
      match steps.(i).axis with
      | P.Descendant -> stacks.(i - 1) <> []
      | P.Child -> (
        (* the immediate parent must be the top of the previous stack *)
        match stacks.(i - 1), n.Doc.parent with
        | (top : Doc.node) :: _, Some parent -> top.Doc.id = parent.Doc.id
        | _, _ -> false)
  in
  let rec visit (n : Doc.node) =
    (* Decide top-down which stacks this node joins; scanning i in
       decreasing order keeps a node from serving as its own ancestor. *)
    let pushed = ref [] in
    for i = k - 1 downto 0 do
      if step_accepts i n then
        if i = k - 1 then out := n :: !out
        else begin
          stacks.(i) <- n :: stacks.(i);
          pushed := i :: !pushed
        end
    done;
    (* queries do not traverse into function nodes *)
    if Doc.is_data n then List.iter visit n.Doc.children;
    List.iter (fun i -> stacks.(i) <- List.tl stacks.(i)) !pushed
  in
  visit (Doc.root d);
  List.rev !out

let run (q : P.t) (d : Doc.t) =
  Option.map (fun steps -> matches steps d) (steps_of_query q)
