exception Error of string

type token =
  | Tslash
  | Tdslash
  | Tname of string
  | Tstring of string
  | Tvar of string
  | Tstar
  | Tbang
  | Tlbracket
  | Trbracket
  | Tlpar
  | Trpar
  | Teq
  | Tbar

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = ':' || c = '.'

let tokenize src =
  let n = String.length src in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1) acc
      | '/' ->
        if i + 1 < n && src.[i + 1] = '/' then loop (i + 2) (Tdslash :: acc)
        else loop (i + 1) (Tslash :: acc)
      | '*' -> loop (i + 1) (Tstar :: acc)
      | '!' -> loop (i + 1) (Tbang :: acc)
      | '[' -> loop (i + 1) (Tlbracket :: acc)
      | ']' -> loop (i + 1) (Trbracket :: acc)
      | '(' -> loop (i + 1) (Tlpar :: acc)
      | ')' -> loop (i + 1) (Trpar :: acc)
      | '=' -> loop (i + 1) (Teq :: acc)
      | '|' -> loop (i + 1) (Tbar :: acc)
      | '$' ->
        let j = ref (i + 1) in
        while !j < n && is_name_char src.[!j] do
          incr j
        done;
        if !j = i + 1 then raise (Error "expected a variable name after '$'");
        loop !j (Tvar (String.sub src (i + 1) (!j - i - 1)) :: acc)
      | '"' ->
        let buf = Buffer.create 8 in
        let rec scan j =
          if j >= n then raise (Error "unterminated string literal")
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' && j + 1 < n then begin
            Buffer.add_char buf src.[j + 1];
            scan (j + 2)
          end
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        loop next (Tstring (Buffer.contents buf) :: acc)
      | c when is_name_char c ->
        let j = ref i in
        while !j < n && is_name_char src.[!j] do
          incr j
        done;
        loop !j (Tname (String.sub src i (!j - i)) :: acc)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c))
  in
  loop 0 []

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t
let peek2 st = match st.tokens with _ :: t :: _ -> Some t | _ -> None
let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st t what =
  match peek st with
  | Some t' when t' = t -> advance st
  | _ -> raise (Error (Printf.sprintf "expected %s" what))

(* A parsed step before node construction. *)
let parse_test st =
  match peek st, peek2 st with
  | Some (Tname f), Some Tlpar ->
    advance st;
    advance st;
    expect st Trpar "')'";
    Pattern.Fun (Pattern.Named [ f ])
  | Some Tstar, Some Tlpar ->
    advance st;
    advance st;
    expect st Trpar "')'";
    Pattern.Fun Pattern.Any_fun
  | Some (Tname s), _ ->
    advance st;
    Pattern.Const s
  | Some Tstar, _ ->
    advance st;
    Pattern.Wildcard
  | Some (Tvar x), _ ->
    advance st;
    Pattern.Var x
  | Some (Tstring v), _ ->
    advance st;
    Pattern.Value v
  | _ -> raise (Error "expected a node test")

let parse_bang st =
  match peek st with
  | Some Tbang ->
    advance st;
    true
  | _ -> false

(* A step of a path chain, before the chain is folded into nested
   pattern nodes. *)
type raw_step = {
  axis : Pattern.axis;
  label : Pattern.label;
  result : bool;
  predicates : Pattern.node list;
}

(* Parses [test '!'? predicate*] followed by '/' or '//' continuations,
   returning the chain top-down. *)
let rec parse_chain st ~axis =
  let label = parse_test st in
  let result = parse_bang st in
  let predicates = parse_predicates st [] in
  let step = { axis; label; result; predicates } in
  match peek st with
  | Some Tslash ->
    advance st;
    step :: parse_chain st ~axis:Pattern.Child
  | Some Tdslash ->
    advance st;
    step :: parse_chain st ~axis:Pattern.Descendant
  | _ -> [ step ]

and parse_predicates st acc =
  match peek st with
  | Some Tlbracket ->
    advance st;
    let axis =
      match peek st with
      | Some Tdslash ->
        advance st;
        Pattern.Descendant
      | _ -> Pattern.Child
    in
    let chain = parse_chain st ~axis in
    let extra = parse_eq_sugar st in
    expect st Trbracket "']'";
    parse_predicates st (acc @ [ fold_chain chain ~extra ])
  | _ -> acc

(* [name = "v"] and [name = $X] sugar: the rhs becomes an extra child of
   the {e deepest} step of the predicate chain ([a/b="5"] is [a/b/"5"]). *)
and parse_eq_sugar st =
  match peek st with
  | Some Teq -> (
    advance st;
    match peek st with
    | Some (Tstring v) ->
      advance st;
      [ Pattern.make (Pattern.Value v) [] ]
    | Some (Tvar x) ->
      advance st;
      let result = parse_bang st in
      [ Pattern.make ~result (Pattern.Var x) [] ]
    | _ -> raise (Error "expected a string or variable after '='"))
  | _ -> []

(* Folds a top-down chain into nested nodes; [extra] children are attached
   to the deepest step. *)
and fold_chain chain ~extra =
  match chain with
  | [] -> raise (Error "empty path")
  | [ step ] -> Pattern.make ~axis:step.axis ~result:step.result step.label (step.predicates @ extra)
  | step :: rest ->
    let child = fold_chain rest ~extra in
    Pattern.make ~axis:step.axis ~result:step.result step.label (step.predicates @ [ child ])

(* Definition 1 maps the pattern root to the document root, so [/a…] makes
   [a] the pattern root, while [//a…] puts a wildcard root above a
   descendant step. *)
let parse_absolute st =
  match peek st with
  | Some Tslash ->
    advance st;
    fold_chain (parse_chain st ~axis:Pattern.Child) ~extra:[]
  | Some Tdslash ->
    advance st;
    let inner = fold_chain (parse_chain st ~axis:Pattern.Descendant) ~extra:[] in
    Pattern.make Pattern.Wildcard [ inner ]
  | _ -> raise (Error "a query must start with '/' or '//'")

let parse src =
  let st = { tokens = tokenize src } in
  let root = parse_absolute st in
  if st.tokens <> [] then raise (Error "trailing tokens after the query");
  Pattern.query root

let parse_relative src =
  let st = { tokens = tokenize src } in
  let axis =
    match peek st with
    | Some Tdslash ->
      advance st;
      Pattern.Descendant
    | _ -> Pattern.Child
  in
  let node = fold_chain (parse_chain st ~axis) ~extra:[] in
  if st.tokens <> [] then raise (Error "trailing tokens after the path");
  [ node ]
