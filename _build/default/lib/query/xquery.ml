module P = Pattern
module Doc = Axml_doc
module Tree = Axml_xml.Tree

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ------------------------------------------------------------------ *)
(* Surface syntax.                                                     *)

type test = T_name of string | T_star

type source = { start : [ `Doc | `Var of string ]; steps : (P.axis * test) list }

type rhs = R_literal of string | R_path of source

type item = I_text of string | I_splice of source | I_elem of string * item list

type ast = {
  bindings : (string * source) list;
  conds : (source * rhs) list;
  template : item;
}

(* ---- lexer ---- *)

type token =
  | K_for
  | K_in
  | K_where
  | K_and
  | K_return
  | K_doc
  | T_var of string
  | T_string of string
  | T_ident of string
  | T_slash
  | T_dslash
  | T_eq
  | T_comma
  | T_starsym
  | T_template_start of int  (* offset of '<' starting the return template *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Tokenizes the FLWR head; stops at the template (first '<' after
   'return'), which is scanned separately. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let after_return = ref false in
  let rec loop i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '<' when !after_return ->
        tokens := T_template_start i :: !tokens
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        tokens := T_dslash :: !tokens;
        loop (i + 2)
      | '/' ->
        tokens := T_slash :: !tokens;
        loop (i + 1)
      | '=' ->
        tokens := T_eq :: !tokens;
        loop (i + 1)
      | ',' ->
        tokens := T_comma :: !tokens;
        loop (i + 1)
      | '*' ->
        tokens := T_starsym :: !tokens;
        loop (i + 1)
      | '$' ->
        let j = ref (i + 1) in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        if !j = i + 1 then fail "expected a variable name after '$'";
        tokens := T_var (String.sub src (i + 1) (!j - i - 1)) :: !tokens;
        loop !j
      | '"' ->
        let j = ref (i + 1) in
        while !j < n && src.[!j] <> '"' do
          incr j
        done;
        if !j >= n then fail "unterminated string literal";
        tokens := T_string (String.sub src (i + 1) (!j - i - 1)) :: !tokens;
        loop (!j + 1)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        let word = String.sub src i (!j - i) in
        let continue_at = ref !j in
        let token =
          match word with
          | "for" -> K_for
          | "in" -> K_in
          | "where" -> K_where
          | "and" -> K_and
          | "return" ->
            after_return := true;
            K_return
          | "doc" ->
            if !j + 1 < n && src.[!j] = '(' && src.[!j + 1] = ')' then begin
              continue_at := !j + 2;
              K_doc
            end
            else T_ident word
          | _ -> T_ident word
        in
        tokens := token :: !tokens;
        loop !continue_at
      | c -> fail "unexpected character %C" c
  in
  loop 0;
  List.rev !tokens

(* ---- template scanner ---- *)

let scan_template src start =
  let n = String.length src in
  let rec skip_space i = if i < n && (src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t' || src.[i] = '\r') then skip_space (i + 1) else i in
  let read_name i =
    let j = ref i in
    while !j < n && is_ident_char src.[!j] do
      incr j
    done;
    if !j = i then fail "template: expected a name";
    (String.sub src i (!j - i), !j)
  in
  (* parses one element starting at '<' *)
  let rec element i =
    if i >= n || src.[i] <> '<' then fail "template: expected '<'";
    let name, i = read_name (i + 1) in
    if i >= n || src.[i] <> '>' then fail "template: expected '>' after <%s" name;
    let items, i = content (i + 1) name [] in
    (I_elem (name, items), i)
  and content i closing acc =
    if i >= n then fail "template: unclosed <%s>" closing
    else if src.[i] = '<' && i + 1 < n && src.[i + 1] = '/' then begin
      let name, j = read_name (i + 2) in
      if name <> closing then fail "template: </%s> closes <%s>" name closing;
      if j >= n || src.[j] <> '>' then fail "template: expected '>'";
      (List.rev acc, j + 1)
    end
    else if src.[i] = '<' then
      let item, j = element i in
      content j closing (item :: acc)
    else if src.[i] = '{' then begin
      (* {$var/steps} *)
      let close =
        match String.index_from_opt src i '}' with
        | Some c -> c
        | None -> fail "template: unclosed '{'"
      in
      let inner = String.trim (String.sub src (i + 1) (close - i - 1)) in
      let splice = parse_splice inner in
      content (close + 1) closing (I_splice splice :: acc)
    end
    else begin
      let j = ref i in
      while !j < n && src.[!j] <> '<' && src.[!j] <> '{' do
        incr j
      done;
      let text = String.sub src i (!j - i) in
      let acc = if String.trim text = "" then acc else I_text text :: acc in
      content !j closing acc
    end
  and parse_splice inner =
    if String.length inner = 0 || inner.[0] <> '$' then
      fail "template: expected {$var/...}, got {%s}" inner
    else begin
      let j = ref 1 in
      while !j < String.length inner && is_ident_char inner.[!j] do
        incr j
      done;
      let var = String.sub inner 1 (!j - 1) in
      let steps = parse_steps_src (String.sub inner !j (String.length inner - !j)) in
      { start = `Var var; steps }
    end
  and parse_steps_src s =
    (* "/a//b/*" -> steps *)
    let m = String.length s in
    let rec go i acc =
      let i = skip_space i in
      if i >= m then List.rev acc
      else if s.[i] = '/' then begin
        let axis, i = if i + 1 < m && s.[i + 1] = '/' then (P.Descendant, i + 2) else (P.Child, i + 1) in
        if i < m && s.[i] = '*' then go (i + 1) ((axis, T_star) :: acc)
        else
          let j = ref i in
          while !j < m && is_ident_char s.[!j] do
            incr j
          done;
          if !j = i then fail "template: expected a step name";
          go !j ((axis, T_name (String.sub s i (!j - i))) :: acc)
      end
      else fail "template: unexpected %C in path" s.[i]
    in
    go 0 []
  in
  let i = skip_space start in
  let item, i = element i in
  let rest = String.trim (String.sub src i (n - i)) in
  if rest <> "" then fail "template: trailing content %S" rest;
  item

(* ---- parser ---- *)

type pstate = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let next st =
  match st.toks with
  | [] -> fail "unexpected end of query"
  | t :: rest ->
    st.toks <- rest;
    t

let parse_steps st =
  let rec go acc =
    match peek st with
    | Some T_slash | Some T_dslash ->
      let axis = if next st = T_dslash then P.Descendant else P.Child in
      (match next st with
      | T_ident name -> go ((axis, T_name name) :: acc)
      | T_starsym -> go ((axis, T_star) :: acc)
      | _ -> fail "expected a step name after '/'")
    | _ -> List.rev acc
  in
  go []

let parse_source st =
  match next st with
  | K_doc -> { start = `Doc; steps = parse_steps st }
  | T_var v -> { start = `Var v; steps = parse_steps st }
  | _ -> fail "expected doc() or a variable"

let parse src =
  let st = { toks = tokenize src } in
  (match next st with K_for -> () | _ -> fail "a query starts with 'for'");
  let rec parse_bindings acc =
    let var = match next st with T_var v -> v | _ -> fail "expected a variable after 'for'" in
    (match next st with K_in -> () | _ -> fail "expected 'in'");
    let source = parse_source st in
    let acc = (var, source) :: acc in
    match peek st with
    | Some T_comma ->
      ignore (next st);
      parse_bindings acc
    | _ -> List.rev acc
  in
  let bindings = parse_bindings [] in
  let conds =
    match peek st with
    | Some K_where ->
      ignore (next st);
      let rec parse_conds acc =
        let lhs = parse_source st in
        (match next st with T_eq -> () | _ -> fail "expected '=' in a condition");
        let rhs =
          match peek st with
          | Some (T_string s) ->
            ignore (next st);
            R_literal s
          | _ -> R_path (parse_source st)
        in
        let acc = (lhs, rhs) :: acc in
        match peek st with
        | Some K_and ->
          ignore (next st);
          parse_conds acc
        | _ -> List.rev acc
      in
      parse_conds []
    | _ -> []
  in
  (match next st with K_return -> () | _ -> fail "expected 'return'");
  let template =
    match next st with
    | T_template_start offset -> scan_template src offset
    | _ -> fail "expected an element template after 'return'"
  in
  { bindings; conds; template }

(* ------------------------------------------------------------------ *)
(* Compilation to a tree pattern.                                      *)

(* Mutable pattern skeleton, converted to an immutable Pattern at the
   end. *)
type bnode = {
  mutable blabel : P.label;
  baxis : P.axis;
  mutable bchildren : bnode list;
  mutable bresult : bool;
  id : int;
}

type t = {
  ast : ast;
  pat : P.t;
  var_pids : (string * int) list;  (* for-variable -> result pid *)
}

let compile src =
  let ast = parse src in
  let counter = ref 0 in
  let mk ?(axis = P.Child) label =
    incr counter;
    { blabel = label; baxis = axis; bchildren = []; bresult = false; id = !counter }
  in
  let test_label = function T_name s -> P.Const s | T_star -> P.Wildcard in
  let root = ref None in
  let env : (string * bnode) list ref = ref [] in
  let attach_chain (start : bnode) steps =
    List.fold_left
      (fun parent (axis, test) ->
        let child = mk ~axis (test_label test) in
        parent.bchildren <- parent.bchildren @ [ child ];
        child)
      start steps
  in
  let resolve_source { start; steps } =
    match start with
    | `Doc -> (
      match steps with
      | [] -> fail "doc() needs at least one step"
      | (P.Child, test) :: rest -> (
        match !root with
        | None ->
          let r = mk (test_label test) in
          root := Some r;
          attach_chain r rest
        | Some r ->
          (* further doc() paths must re-enter through the same root *)
          if r.blabel = test_label test then attach_chain r rest
          else fail "doc() paths must share the same root element")
      | (P.Descendant, _) :: _ -> (
        match !root with
        | None ->
          let r = mk P.Wildcard in
          root := Some r;
          attach_chain r steps
        | Some r -> attach_chain r steps))
    | `Var v -> (
      match List.assoc_opt v !env with
      | None -> fail "unbound variable $%s" v
      | Some bn -> attach_chain bn steps)
  in
  List.iter
    (fun (var, source) ->
      if List.mem_assoc var !env then fail "variable $%s bound twice" var;
      let bn = resolve_source source in
      bn.bresult <- true;
      env := !env @ [ (var, bn) ])
    ast.bindings;
  let join_counter = ref 0 in
  List.iter
    (fun (lhs, rhs) ->
      let lnode = resolve_source lhs in
      match rhs with
      | R_literal v -> lnode.bchildren <- lnode.bchildren @ [ mk (P.Value v) ]
      | R_path rsource ->
        (* variable-to-variable equality: a shared pattern variable *)
        incr join_counter;
        let jvar = Printf.sprintf "#join%d" !join_counter in
        let rnode = resolve_source rsource in
        lnode.bchildren <- lnode.bchildren @ [ mk (P.Var jvar) ];
        rnode.bchildren <- rnode.bchildren @ [ mk (P.Var jvar) ])
    ast.conds;
  (* validate the splices *)
  let rec check_items = function
    | I_text _ -> ()
    | I_elem (_, items) -> List.iter check_items items
    | I_splice { start = `Var v; _ } ->
      if not (List.mem_assoc v !env) then fail "template: unbound variable $%s" v
    | I_splice { start = `Doc; _ } -> fail "template splices start from a variable"
  in
  check_items ast.template;
  let root = match !root with Some r -> r | None -> fail "no doc() binding" in
  (* convert to an immutable pattern, keeping track of variable pids *)
  let pid_of_bid = Hashtbl.create 16 in
  let rec convert bn =
    let children = List.map convert bn.bchildren in
    let node = P.make ~axis:bn.baxis ~result:bn.bresult bn.blabel children in
    Hashtbl.replace pid_of_bid bn.id node.P.pid;
    node
  in
  let pat = P.query (convert root) in
  let var_pids =
    List.map (fun (v, bn) -> (v, Hashtbl.find pid_of_bid bn.id)) !env
  in
  { ast; pat; var_pids }

let pattern t = t.pat
let variables t = List.map fst t.var_pids

(* ------------------------------------------------------------------ *)
(* Return-template instantiation.                                      *)

let navigate (start : Doc.node) steps =
  let matches test (n : Doc.node) =
    match test, n.Doc.label with
    | T_star, (Doc.Elem _ | Doc.Data _) -> true
    | T_name s, Doc.Elem e -> String.equal s e
    | T_name _, _ | T_star, Doc.Call _ -> false
  in
  let rec descendants (n : Doc.node) =
    if Doc.is_data n then
      List.concat_map (fun c -> c :: descendants c) n.Doc.children
    else []
  in
  List.fold_left
    (fun nodes (axis, test) ->
      List.concat_map
        (fun (n : Doc.node) ->
          let candidates =
            match axis with
            | P.Child -> if Doc.is_data n then n.Doc.children else []
            | P.Descendant -> descendants n
          in
          List.filter (matches test) candidates)
        nodes)
    [ start ] steps

let instantiate t answers =
  List.map
    (fun (b : Eval.binding) ->
      let image var =
        match List.assoc_opt var t.var_pids with
        | None -> fail "unbound variable $%s" var
        | Some pid -> (
          match List.assoc_opt pid b.Eval.results with
          | Some n -> n
          | None -> fail "no image for $%s (is the binding from this query?)" var)
      in
      let rec build = function
        | I_text s -> [ Tree.text s ]
        | I_elem (name, items) -> [ Tree.element name (List.concat_map build items) ]
        | I_splice { start = `Var v; steps } ->
          List.map Doc.node_to_xml (navigate (image v) steps)
        | I_splice { start = `Doc; _ } -> fail "template splices start from a variable"
      in
      match build t.ast.template with
      | [ tree ] -> tree
      | _ -> assert false)
    answers

let run t d = instantiate t (Eval.eval t.pat d)
