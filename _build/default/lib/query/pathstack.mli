(** Single-pass, stack-based evaluation of linear path queries, in the
    style of the holistic path-join algorithms (PathStack) from the XML
    query-processing literature the paper builds on.

    The tree-walking evaluator in {!Eval} recurses per (pattern node,
    document node) pair; for {e linear} queries — the LPQs of §3.1 and
    the F-guide probes of §6.2 — one document-order traversal with one
    stack per step suffices and touches every node exactly once. The
    benchmarks compare the two engines (and the F-guide) on relevance
    detection.

    Only linear chains are supported: each step has an axis and a label
    test, no branching, no OR nodes. *)

type step = { axis : Pattern.axis; label : Pattern.label }

val steps_of_query : Pattern.t -> step list option
(** [steps_of_query q] extracts the chain if [q] is linear (every node
    has at most one child and no OR); [None] otherwise. The result-node
    marker is ignored — matches of the {e last} step are returned. *)

val matches : step list -> Axml_doc.t -> Axml_doc.node list
(** All document nodes the last step matches over the embeddings of the
    chain (the first step must match the document root, as in Def. 1), in
    document order, deduplicated. Raises [Invalid_argument] on an empty
    chain or on OR labels. *)

val run : Pattern.t -> Axml_doc.t -> Axml_doc.node list option
(** [steps_of_query] + [matches]; [None] if the query is not linear. *)
