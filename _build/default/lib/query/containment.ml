module P = Pattern

(* Can a node of the container pattern (q') be mapped onto a node of the
   contained pattern (q)? Wildcards and variables of the container accept
   anything (variables' join semantics make the test slightly lenient,
   still sound for variable-free containers; see the mli). *)
let label_covers (outer : P.label) (inner : P.label) =
  match outer, inner with
  | (P.Wildcard | P.Var _), (P.Const _ | P.Value _ | P.Var _ | P.Wildcard) -> true
  | P.Const a, P.Const b -> String.equal a b
  | P.Value a, P.Value b -> String.equal a b
  | P.Fun P.Any_fun, P.Fun _ -> true
  | P.Fun (P.Named outer_names), P.Fun (P.Named inner_names) ->
    (* every call the inner node accepts must be accepted by the outer *)
    List.for_all (fun f -> List.mem f outer_names) inner_names
  | P.Fun (P.Named _), P.Fun P.Any_fun -> false
  | P.Or, _ | _, P.Or -> false (* extended queries: handled structurally below *)
  | (P.Const _ | P.Value _), _ -> false
  | P.Fun _, _ | _, P.Fun _ -> false

let homomorphism ~from ~into =
  (* memo on (from pid, into pid) *)
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec maps (outer : P.node) (inner : P.node) =
    let key = (outer.P.pid, inner.P.pid) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      (* break cycles defensively (patterns are trees, so none arise) *)
      Hashtbl.replace memo key false;
      let r =
        match outer.P.label, inner.P.label with
        | P.Or, _ ->
          (* an OR container node maps when one alternative maps *)
          List.exists (fun alt -> maps alt inner) outer.P.children
        | _, P.Or ->
          (* mapping onto an OR: must map onto every alternative to be
             sound (the document may satisfy only one) *)
          List.for_all (fun alt -> maps outer alt) inner.P.children
        | _ ->
          label_covers outer.P.label inner.P.label
          && List.for_all (fun oc -> child_maps oc inner) outer.P.children
      in
      Hashtbl.replace memo key r;
      r
  and child_maps (oc : P.node) (inner : P.node) =
    match oc.P.axis with
    | P.Child ->
      (* a child edge (distance exactly 1) can only map onto a child edge
         of the contained pattern — an inner descendant edge may stand
         for a longer path *)
      List.exists
        (fun (ic : P.node) -> ic.P.axis = P.Child && maps oc ic)
        inner.P.children
    | P.Descendant ->
      (* map to any strict descendant of the inner node; crossing a
         descendant edge of the inner pattern is fine (paths only get
         longer) *)
      let rec below (ic : P.node) = maps oc ic || List.exists below ic.P.children in
      List.exists below inner.P.children
  in
  maps from into

let contained (q : P.t) (q' : P.t) = homomorphism ~from:q'.P.root ~into:q.P.root

let equivalent q q' = contained q q' && contained q' q

let drop_contained queries =
  let arr = Array.of_list queries in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    if keep.(i) then
      for j = 0 to n - 1 do
        if i <> j && keep.(i) && keep.(j) && contained arr.(i) arr.(j) then
          if contained arr.(j) arr.(i) then begin
            (* equivalent: keep the earlier one *)
            if j > i then keep.(j) <- false else keep.(i) <- false
          end
          else keep.(i) <- false
      done
  done;
  List.filteri (fun i _ -> keep.(i)) queries
