(** Tree-pattern queries (§2 of the paper).

    A query is a labeled tree whose nodes carry variable names, constants
    (element names or data values) or the wildcard [*]; edges are child or
    descendant edges; a distinguished subset of nodes are result nodes.
    Extended queries (used to retrieve relevant calls, §2 "useful
    machinery") additionally contain OR-nodes and function nodes.

    Patterns are immutable. Every node has a unique id ([pid]), assigned
    from a global counter, so nodes of derived queries (NFQs) can be traced
    back to the nodes of the original query. *)

type axis = Child | Descendant

type fun_filter =
  | Any_fun  (** the star-labeled function node [()] *)
  | Named of string list  (** one of the listed service names (refined NFQs, §5) *)

type label =
  | Const of string  (** element name *)
  | Value of string  (** data value *)
  | Var of string
  | Wildcard
  | Or  (** choice between the children subtrees *)
  | Fun of fun_filter

type node = private {
  pid : int;
  label : label;
  axis : axis;  (** edge connecting this node to its parent *)
  children : node list;
  result : bool;
}

type t = { root : node }

(** {2 Builders} *)

val make : ?axis:axis -> ?result:bool -> label -> node list -> node
(** [make label children] allocates a fresh pattern node ([axis] defaults
    to [Child], [result] to [false]). *)

val query : node -> t

val with_children : node -> node list -> node
(** Same pid, new children — used by query rewriting (NFQ construction). *)

val with_result : node -> bool -> node
val with_label : node -> label -> node
val with_axis : node -> axis -> node

(** {2 Access} *)

val find : t -> int -> node option
(** [find q pid] locates a node by id. *)

val parent_in : t -> node -> node option
val nodes : t -> node list
(** All nodes in preorder. *)

val result_nodes : t -> node list
val variables : t -> string list
(** Distinct variable names, in first-occurrence order. *)

val has_function_nodes : t -> bool

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

(** {2 Linear paths (§3.1, §4.2)} *)

val path_to : t -> node -> node list
(** The nodes from the root down to (and including) the given node.
    Raises [Not_found] if the node is not in the query. *)

val linear_part : t -> node -> (axis * label) list
(** [linear_part q v] is [q_v^lin]: the linear path expression from the
    root to [v], {e excluding} [v] itself (as in §4.2). OR nodes on the
    path are skipped (they are transparent). *)

val linear_regex : (axis * label) list -> Axml_automata.Regex.t
(** Path language over node labels: a child step contributes one symbol, a
    descendant step contributes [_* . symbol]; non-constant labels become
    the wildcard. *)

(** {2 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** XPath-like rendering, re-parsable by {!Parser.parse} for OR-free
    patterns. *)

val pp_label : Format.formatter -> label -> unit
