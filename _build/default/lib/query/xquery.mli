(** A FLWR front-end: the "core tree-pattern matching fragment of XQuery"
    that §2 says tree patterns capture, compiled to a {!Pattern} plus a
    return template.

    Grammar (conjunctive single-block FLWR):
    {v
    query   ::= 'for' binding (',' binding)...
                [ 'where' cond ('and' cond)... ]
                'return' template
    binding ::= VAR 'in' source
    source  ::= 'doc()' steps | VAR steps
    steps   ::= one or more ('/' | '//') (NAME | '*')
    cond    ::= VAR [steps] '=' (STRING | VAR [steps])
    template::= '<' NAME '>' items '</' NAME '>'
    item    ::= text | '{' VAR [steps] '}' | template
    v}

    Example:
    {v
    for $h in doc()/guide/hotel,
        $r in $h/nearby//restaurant
    where $h/name = "Best Western" and $h/rating = "5"
      and $r/rating = "5"
    return <res>{$r/name}{$r/address}</res>
    v}

    Each [for] variable becomes a result node of the compiled pattern;
    [where] equalities against strings become value leaves, and
    variable-to-variable equalities become shared pattern variables
    (joins). {!run} evaluates the pattern (snapshot semantics) and
    instantiates the template once per distinct answer: [{$v/steps}]
    splices the XML of the data nodes reached from [$v]'s image. *)

type t

exception Error of string

val compile : string -> t
(** Raises {!Error} on syntax errors or unbound variables. *)

val pattern : t -> Pattern.t
(** The compiled tree pattern — feed it to {!Eval} or to the lazy
    evaluator ([Axml_core.Lazy_eval.run]); the calls it makes relevant
    are exactly those of the FLWR query. *)

val variables : t -> string list
(** The [for] variables, in binding order. *)

val instantiate : t -> Eval.binding list -> Axml_xml.Tree.forest
(** Builds the return elements for the given answers of {!pattern}. *)

val run : t -> Axml_doc.t -> Axml_xml.Tree.forest
(** [Eval.eval (pattern t)] + {!instantiate} — snapshot evaluation. *)
