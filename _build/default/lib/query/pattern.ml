type axis = Child | Descendant

type fun_filter = Any_fun | Named of string list

type label =
  | Const of string
  | Value of string
  | Var of string
  | Wildcard
  | Or
  | Fun of fun_filter

type node = {
  pid : int;
  label : label;
  axis : axis;
  children : node list;
  result : bool;
}

type t = { root : node }

let counter = ref 0

let make ?(axis = Child) ?(result = false) label children =
  incr counter;
  { pid = !counter; label; axis; children; result }

let query root = { root }
let with_children n children = { n with children }
let with_result n result = { n with result }
let with_label n label = { n with label }
let with_axis n axis = { n with axis }

let fold f acc q =
  let rec go acc n = List.fold_left go (f acc n) n.children in
  go acc q.root

let nodes q = List.rev (fold (fun acc n -> n :: acc) [] q)
let find q pid = List.find_opt (fun n -> n.pid = pid) (nodes q)

let parent_in q n =
  let rec search candidate =
    if List.exists (fun c -> c.pid = n.pid) candidate.children then Some candidate
    else List.find_map search candidate.children
  in
  if q.root.pid = n.pid then None else search q.root

let result_nodes q = List.filter (fun n -> n.result) (nodes q)

let variables q =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun n ->
      match n.label with
      | Var x when not (Hashtbl.mem seen x) ->
        Hashtbl.replace seen x ();
        Some x
      | Var _ | Const _ | Value _ | Wildcard | Or | Fun _ -> None)
    (nodes q)

let has_function_nodes q =
  List.exists (fun n -> match n.label with Fun _ -> true | _ -> false) (nodes q)

let path_to q target =
  let rec search path n =
    let path = n :: path in
    if n.pid = target.pid then Some (List.rev path)
    else List.find_map (search path) n.children
  in
  match search [] q.root with Some p -> p | None -> raise Not_found

let linear_part q target =
  let path = path_to q target in
  let without_target = List.filteri (fun i _ -> i < List.length path - 1) path in
  (* OR nodes are transparent: drop them but propagate a descendant axis
     downwards if either the OR edge or the chosen child edge descends. *)
  let rec clean pending = function
    | [] -> []
    | n :: rest -> (
      let axis = if pending = Descendant then Descendant else n.axis in
      match n.label with
      | Or -> clean axis rest
      | label -> (axis, label) :: clean Child rest)
  in
  clean Child without_target

let linear_regex steps =
  let module R = Axml_automata.Regex in
  let sym = function
    | Const s -> R.Sym s
    | Value _ | Var _ | Wildcard | Or | Fun _ -> R.Any
  in
  R.seq
    (List.map
       (fun (axis, label) ->
         match axis with
         | Child -> sym label
         | Descendant -> R.seq [ R.Star R.Any; sym label ])
       steps)

let pp_label ppf = function
  | Const s -> Format.pp_print_string ppf s
  | Value v -> Format.fprintf ppf "%S" v
  | Var x -> Format.fprintf ppf "$%s" x
  | Wildcard -> Format.pp_print_char ppf '*'
  | Or -> Format.pp_print_string ppf "|"
  | Fun Any_fun -> Format.pp_print_string ppf "*()"
  | Fun (Named [ f ]) -> Format.fprintf ppf "%s()" f
  | Fun (Named fs) -> Format.fprintf ppf "(%s)()" (String.concat "|" fs)

let rec pp_node ppf n =
  let axis = match n.axis with Child -> "/" | Descendant -> "//" in
  Format.pp_print_string ppf axis;
  (match n.label with
  | Or ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp_alternative)
      n.children
  | label -> pp_label ppf label);
  if n.result then Format.pp_print_char ppf '!';
  match n.label with
  | Or -> ()
  | _ -> List.iter (fun c -> Format.fprintf ppf "[%a]" pp_predicate c) n.children

and pp_alternative ppf n =
  (* Inside an OR, the child's own axis is irrelevant (the OR's axis is
     used), so print without a leading axis. *)
  pp_label ppf n.label;
  if n.result then Format.pp_print_char ppf '!';
  List.iter (fun c -> Format.fprintf ppf "[%a]" pp_predicate c) n.children

and pp_predicate ppf n =
  (* Predicates are relative paths: the leading '/' is dropped for child
     axis, '//' is kept to distinguish descendant steps. *)
  (match n.axis with
  | Child -> ()
  | Descendant -> Format.pp_print_string ppf "//");
  (match n.label with
  | Or ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp_alternative)
      n.children
  | label -> pp_label ppf label);
  if n.result then Format.pp_print_char ppf '!';
  match n.label with
  | Or -> ()
  | _ -> List.iter (fun c -> Format.fprintf ppf "[%a]" pp_predicate c) n.children

let pp ppf q = pp_node ppf q.root
let to_string q = Format.asprintf "%a" pp q
