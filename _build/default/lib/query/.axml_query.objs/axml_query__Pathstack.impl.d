lib/query/pathstack.ml: Array Axml_doc List Option Pattern String
