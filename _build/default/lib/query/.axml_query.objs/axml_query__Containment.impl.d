lib/query/containment.ml: Array Hashtbl List Pattern String
