lib/query/xquery.ml: Axml_doc Axml_xml Eval Hashtbl List Pattern Printf String
