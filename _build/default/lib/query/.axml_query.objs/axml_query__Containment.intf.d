lib/query/containment.mli: Pattern
