lib/query/pattern.mli: Axml_automata Format
