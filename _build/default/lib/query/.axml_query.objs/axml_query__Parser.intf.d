lib/query/parser.mli: Pattern
