lib/query/eval.ml: Array Axml_doc Axml_xml Hashtbl List Option Pattern String
