lib/query/xquery.mli: Axml_doc Axml_xml Eval Pattern
