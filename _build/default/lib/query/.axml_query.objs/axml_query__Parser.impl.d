lib/query/parser.ml: Buffer List Pattern Printf String
