lib/query/pathstack.mli: Axml_doc Pattern
