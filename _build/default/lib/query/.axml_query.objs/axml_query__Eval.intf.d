lib/query/eval.mli: Axml_doc Axml_xml Pattern
