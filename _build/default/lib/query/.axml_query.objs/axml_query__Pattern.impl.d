lib/query/pattern.ml: Axml_automata Format Hashtbl List String
