(** Tree-pattern containment, in the style the paper's §4.1 refers to for
    eliminating redundant relevance queries.

    [q ⊆ q'] means every embedding answer of [q] is one of [q'] on every
    document. The implemented test is the classical {e pattern
    homomorphism}: a mapping from [q'] to [q] preserving the root, labels
    (wildcards and variables match anything), child edges, and mapping
    descendant edges to strictly-descending paths. A homomorphism
    [q' → q] implies [q ⊆ q'].

    The test is {b sound but not complete}: containment of patterns with
    [//] and [*] is coNP-hard in general, and some containments hold
    without a homomorphism witness. That is exactly what redundancy
    elimination needs — dropping a query is only done when containment is
    {e certain}. Result markers are ignored (containment of the boolean
    patterns). *)

val homomorphism : from:Pattern.node -> into:Pattern.node -> bool
(** [homomorphism ~from ~into] — is there a pattern homomorphism mapping
    the root of [from] to the root of [into]? *)

val contained : Pattern.t -> Pattern.t -> bool
(** [contained q q'] — sound test for [q ⊆ q'] (a homomorphism
    [q' → q]). *)

val equivalent : Pattern.t -> Pattern.t -> bool
(** Containment both ways. *)

val drop_contained : Pattern.t list -> Pattern.t list
(** Removes every query that is contained in another of the list (keeping
    the first of an equivalent group): the surviving queries retrieve the
    same union of answers. *)
