module Doc = Axml_doc

module P = Pattern

type binding = {
  results : (int * Doc.node) list;
  vars : (string * string) list;
}

let empty_binding = { results = []; vars = [] }

let doc_label (n : Doc.node) =
  match n.Doc.label with
  | Doc.Elem name -> Some name
  | Doc.Data value -> Some value
  | Doc.Call _ -> None

let label_matches (ql : P.label) (n : Doc.node) =
  match ql, n.Doc.label with
  | P.Const s, Doc.Elem e -> String.equal s e
  | P.Value v, Doc.Data d -> String.equal v d
  | (P.Var _ | P.Wildcard), (Doc.Elem _ | Doc.Data _) -> true
  | P.Fun P.Any_fun, Doc.Call _ -> true
  | P.Fun (P.Named fs), Doc.Call c -> List.mem c.Doc.fname fs
  | P.Or, _ -> invalid_arg "Eval.label_matches: OR node"
  | (P.Const _ | P.Value _ | P.Var _ | P.Wildcard), Doc.Call _ -> false
  | (P.Const _ | P.Value _), (Doc.Elem _ | Doc.Data _) -> false
  | P.Fun _, (Doc.Elem _ | Doc.Data _) -> false

(* ------------------------------------------------------------------ *)
(* Bindings as small sorted association lists, with consistent merge.   *)

let rec merge_sorted ~conflict xs ys =
  match xs, ys with
  | [], zs | zs, [] -> Some zs
  | (kx, vx) :: xs', (ky, vy) :: ys' ->
    let c = compare kx ky in
    if c < 0 then
      Option.map (fun rest -> (kx, vx) :: rest) (merge_sorted ~conflict xs' ys)
    else if c > 0 then
      Option.map (fun rest -> (ky, vy) :: rest) (merge_sorted ~conflict xs ys')
    else if conflict vx vy then
      Option.map (fun rest -> (kx, vx) :: rest) (merge_sorted ~conflict xs' ys')
    else None

let join ~relax_joins b1 b2 =
  (* Result keys (pids) are unique per query node, so equal keys always
     carry the same image; variables must agree on their labels unless
     joins are relaxed. *)
  match merge_sorted ~conflict:(fun (x : Doc.node) y -> x.Doc.id = y.Doc.id) b1.results b2.results with
  | None -> None
  | Some results -> (
    match
      merge_sorted
        ~conflict:(fun x y -> relax_joins || String.equal x y)
        b1.vars b2.vars
    with
    | None -> None
    | Some vars -> Some { results; vars })

let binding_key b =
  (List.map (fun (pid, (n : Doc.node)) -> (pid, n.Doc.id)) b.results, b.vars)

let dedup bindings =
  match bindings with
  | [] | [ _ ] -> bindings
  | _ ->
    let seen = Hashtbl.create (List.length bindings) in
    List.filter
      (fun b ->
        let key = binding_key b in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      bindings

let join_lists ~relax_joins l1 l2 =
  match l1, l2 with
  | [], _ | _, [] -> []
  | [ b1 ], l2 when b1 == empty_binding -> l2
  | l1, [ b2 ] when b2 == empty_binding -> l1
  | l1, l2 ->
    dedup
      (List.concat_map (fun b1 -> List.filter_map (fun b2 -> join ~relax_joins b1 b2) l2) l1)

(* ------------------------------------------------------------------ *)
(* Evaluation context: per-run memo tables.                             *)

type ctx = {
  relax_joins : bool;
  record_images : bool;
  (* (pattern pid, doc id) -> bindings with the pattern node mapped to
     that doc node *)
  memo_at : (int * int, binding list) Hashtbl.t;
  (* (pattern pid, doc id) -> bindings with the pattern node mapped
     strictly below that doc node *)
  memo_below : (int * int, binding list) Hashtbl.t;
  (* pattern pid -> subtree contains result nodes or variables *)
  interesting : (int, bool) Hashtbl.t;
}

let make_ctx ?(record_images = false) ~relax_joins () =
  {
    relax_joins;
    record_images;
    memo_at = Hashtbl.create 256;
    memo_below = Hashtbl.create 256;
    interesting = Hashtbl.create 64;
  }

let rec is_interesting ctx (p : P.node) =
  match Hashtbl.find_opt ctx.interesting p.P.pid with
  | Some v -> v
  | None ->
    let v =
      ctx.record_images || p.P.result
      || (match p.P.label with P.Var _ -> true | _ -> false)
      || List.exists (is_interesting ctx) p.P.children
    in
    Hashtbl.replace ctx.interesting p.P.pid v;
    v

let self_binding ctx (p : P.node) (n : Doc.node) =
  let results =
    if p.P.result || ctx.record_images then [ (p.P.pid, n) ] else []
  in
  let vars =
    match p.P.label with
    | P.Var x -> ( match doc_label n with Some l -> [ (x, l) ] | None -> [])
    | _ -> []
  in
  { results; vars }

(* Matches pattern node [p] with image exactly [n]. *)
let rec match_at_ctx ctx (p : P.node) (n : Doc.node) : binding list =
  let key = (p.P.pid, n.Doc.id) in
  match Hashtbl.find_opt ctx.memo_at key with
  | Some r -> r
  | None ->
    let r =
      match p.P.label with
      | P.Or ->
        (* The OR node itself has no image; its chosen alternative is
           matched at this position. *)
        dedup (List.concat_map (fun alt -> match_alternative ctx alt n) p.P.children)
      | _ -> match_concrete ctx p n
    in
    let r = if is_interesting ctx p then r else if r = [] then [] else [ empty_binding ] in
    Hashtbl.replace ctx.memo_at key r;
    r

and match_alternative ctx (alt : P.node) (n : Doc.node) =
  (* Alternatives are matched at the OR's position; their own axis is
     ignored. Nested ORs are permitted. *)
  match alt.P.label with
  | P.Or -> dedup (List.concat_map (fun a -> match_alternative ctx a n) alt.P.children)
  | _ -> match_concrete ctx alt n

and match_concrete ctx (p : P.node) (n : Doc.node) =
  if not (label_matches p.P.label n) then []
  else begin
    let self = [ self_binding ctx p n ] in
    List.fold_left
      (fun acc child ->
        if acc = [] then []
        else join_lists ~relax_joins:ctx.relax_joins acc (match_child ctx child n))
      self p.P.children
  end

(* Matches pattern node [p] with image a child of [n] (Child axis) or any
   node strictly below [n] reachable through data nodes (Descendant). *)
and match_child ctx (p : P.node) (n : Doc.node) =
  match p.P.axis with
  | P.Child ->
    dedup (List.concat_map (fun c -> match_at_ctx ctx p c) (positions_under n))
  | P.Descendant -> match_below ctx p n

and match_below ctx (p : P.node) (n : Doc.node) =
  let key = (p.P.pid, n.Doc.id) in
  match Hashtbl.find_opt ctx.memo_below key with
  | Some r -> r
  | None ->
    let r =
      dedup
        (List.concat_map
           (fun c ->
             let here = match_at_ctx ctx p c in
             let deeper = if Doc.is_data c then match_below ctx p c else [] in
             here @ deeper)
           (positions_under n))
    in
    let r = if is_interesting ctx p then r else if r = [] then [] else [ empty_binding ] in
    Hashtbl.replace ctx.memo_below key r;
    r

(* Children visible to queries: all children of a data node; none for a
   function node (parameters are not document content). *)
and positions_under (n : Doc.node) =
  if Doc.is_data n then n.Doc.children else []

(* ------------------------------------------------------------------ *)

type context = ctx

let context ?(relax_joins = false) () = make_ctx ~relax_joins ()

let match_at ?(relax_joins = false) p n =
  let ctx = make_ctx ~relax_joins () in
  match_at_ctx ctx p n

let eval_in ctx (q : P.t) (d : Doc.t) = match_at_ctx ctx q.P.root (Doc.root d)

let eval ?(relax_joins = false) (q : P.t) (d : Doc.t) =
  eval_in (make_ctx ~relax_joins ()) q d

let matches_of_in ctx (q : P.t) (d : Doc.t) ~target =
  (match P.find q target with
  | Some n when n.P.result -> ()
  | Some _ -> invalid_arg "Eval.matches_of: target is not a result node"
  | None -> invalid_arg "Eval.matches_of: no such pattern node");
  let bindings = eval_in ctx q d in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun (pid, n) ->
          if pid = target && not (Hashtbl.mem seen n.Doc.id) then begin
            Hashtbl.replace seen n.Doc.id ();
            out := n :: !out
          end)
        b.results)
    bindings;
  List.rev !out

let matches_of ?(relax_joins = false) (q : P.t) (d : Doc.t) ~target =
  matches_of_in (make_ctx ~relax_joins ()) q d ~target

(* ------------------------------------------------------------------ *)
(* Candidate-anchored matching (§6.2).                                  *)

let anchored_matches ?(relax_joins = false) (q : P.t) ~target (candidate : Doc.node) =
  let target_node =
    match P.find q target with
    | Some n -> n
    | None -> invalid_arg "Eval.anchored_matches: no such pattern node"
  in
  let path = P.path_to q target_node in
  if List.exists (fun (p : P.node) -> p.P.label = P.Or) path then
    invalid_arg "Eval.anchored_matches: OR node on the path to the target";
  (* The document chain the path must align with: root … candidate. *)
  let chain = Array.of_list (List.rev (candidate :: Doc.ancestors candidate)) in
  let ctx = make_ctx ~relax_joins () in
  let m = Array.length chain in
  (* Conditions of a path node, excluding the continuation to the next
     path node. *)
  let side_conditions p next =
    List.filter (fun (c : P.node) -> c.P.pid <> next.P.pid) p.P.children
  in
  (* Walk the pattern path and the chain in lock step; descendant edges
     may skip chain nodes. At each alignment, the side conditions are
     checked with the regular (downward) evaluator and joined. *)
  let rec align steps j acc =
    if acc = [] then false
    else
      match steps with
      | [] -> true
      | (p : P.node) :: rest ->
        let last = rest = [] in
        let try_at j =
          if j >= m then false
          else if last && j <> m - 1 then false
          else if not (label_matches_or ctx p chain.(j)) then false
          else begin
            let conds =
              match rest with
              | [] -> p.P.children (* the target keeps all its conditions *)
              | next :: _ -> side_conditions p next
            in
            let here =
              List.fold_left
                (fun acc c ->
                  if acc = [] then []
                  else join_lists ~relax_joins acc (match_child ctx c chain.(j)))
                acc conds
            in
            align rest (j + 1) here
          end
        in
        (match p.P.axis with
        | P.Child -> try_at j
        | P.Descendant ->
          let rec try_from j = j < m && (try_at j || try_from (j + 1)) in
          try_from j)

  and label_matches_or ctx p n =
    match p.P.label with
    | P.Or -> List.exists (fun alt -> label_matches_or ctx alt n) p.P.children
    | _ -> label_matches p.P.label n
  in
  (* The pattern root must align with the document root (chain.(0)); the
     root's own axis is irrelevant, as in the top-down evaluator. *)
  match path with
  | [] -> false
  | root :: rest -> align (P.with_axis root P.Child :: rest) 0 [ empty_binding ]

(* ------------------------------------------------------------------ *)
(* Complete homomorphisms, for witnesses (query pushing) and oracles.   *)

type embedding = (int * Doc.node) list

let embeddings ?(relax_joins = false) ?(limit = 10_000) p n =
  let ctx = make_ctx ~record_images:true ~relax_joins () in
  let bindings = match_at_ctx ctx p n in
  let bindings = if List.length bindings > limit then List.filteri (fun i _ -> i < limit) bindings else bindings in
  List.map (fun b -> b.results) bindings

let label_matches_exposed = label_matches

let bindings_to_xml bindings =
  let module Tree = Axml_xml.Tree in
  List.map
    (fun b ->
      let var_elems =
        List.map
          (fun (x, v) -> Tree.element (String.lowercase_ascii x) [ Tree.text v ])
          b.vars
      in
      let result_elems = List.map (fun (_, n) -> Doc.node_to_xml n) b.results in
      Tree.element "tuple" (var_elems @ result_elems))
    bindings
