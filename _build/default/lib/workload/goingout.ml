module Tree = Axml_xml.Tree
module Doc = Axml_doc
module Registry = Axml_services.Registry
module Schema = Axml_schema.Schema
module Parser = Axml_query.Parser

type config = {
  theaters : int;
  shows_per_theater : int;
  restaurant_calls : int;
  target_fraction : float;
  intensional_shows_fraction : float;
  intensional_schedule_fraction : float;
  seed : int;
}

let default_config =
  {
    theaters = 10;
    shows_per_theater = 6;
    restaurant_calls = 10;
    target_fraction = 0.1;
    intensional_shows_fraction = 0.4;
    intensional_schedule_fraction = 0.4;
    seed = 17;
  }

type t = {
  doc : Doc.t;
  registry : Registry.t;
  schema : Schema.t;
  query : Axml_query.Pattern.t;
}

let query_src = {|/goingout/movies//show[title="The Hours"]/schedule!|}

let schema_src =
  {|functions:
  getshows       = [in: data, out: show*]
  getschedule    = [in: data, out: data]
  getreviews     = [in: data, out: review*]
  getrestaurants = [in: data, out: restaurant*]
elements:
  goingout    = movies.restaurants
  movies      = theater*
  theater     = name.(show | getshows | review | getreviews)*
  show        = title.schedule
  schedule    = (data | getschedule)
  restaurants = (restaurant | getrestaurants)*
  restaurant  = name.address
  title       = data
  name        = data
  address     = data
  review      = data
|}

type show_w = { s_title : string; s_schedule : string; s_schedule_intensional : bool }

type theater_w = {
  t_name : string;
  t_shows : show_w list;
  t_shows_intensional : bool;
}

let e = Tree.element
let txt = Tree.text
let call_e name params = Tree.element Doc.call_elem_name ~attrs:[ ("name", name) ] params

let make_world cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let flip p = Random.State.float rng 1.0 < p in
  List.init cfg.theaters (fun i ->
      let t_shows =
        List.init cfg.shows_per_theater (fun j ->
            {
              s_title =
                (if flip cfg.target_fraction then "The Hours" else Printf.sprintf "Film %d.%d" i j);
              s_schedule = Printf.sprintf "%02d:%02d" (12 + (j mod 10)) (5 * (i mod 12));
              s_schedule_intensional = flip cfg.intensional_schedule_fraction;
            })
      in
      {
        t_name = Printf.sprintf "Theater %d" i;
        t_shows;
        t_shows_intensional = flip cfg.intensional_shows_fraction;
      })

let show_key t s = Printf.sprintf "%s/%s" t.t_name s.s_title

let show_tree t s =
  let schedule_content =
    if s.s_schedule_intensional then [ call_e "getschedule" [ txt (show_key t s) ] ]
    else [ txt s.s_schedule ]
  in
  e "show" [ e "title" [ txt s.s_title ]; e "schedule" schedule_content ]

let theater_tree t =
  let shows =
    if t.t_shows_intensional then [ call_e "getshows" [ txt t.t_name ] ]
    else List.map (show_tree t) t.t_shows
  in
  e "theater" ((e "name" [ txt t.t_name ] :: shows) @ [ call_e "getreviews" [ txt t.t_name ] ])

let first_text params =
  let rec find = function
    | [] -> None
    | Tree.Text s :: _ -> Some s
    | Tree.Element el :: rest -> (
      match find el.Tree.children with Some s -> Some s | None -> find rest)
  in
  find params

let generate cfg =
  let world = make_world cfg in
  let goingout =
    e "goingout"
      [
        e "movies" (List.map theater_tree world);
        e "restaurants" (List.init cfg.restaurant_calls (fun i ->
             call_e "getrestaurants" [ txt (Printf.sprintf "area %d" i) ]));
      ]
  in
  let registry = Registry.create () in
  let by_name = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace by_name t.t_name t) world;
  let by_show = Hashtbl.create 64 in
  List.iter (fun t -> List.iter (fun s -> Hashtbl.replace by_show (show_key t s) s) t.t_shows) world;
  Registry.register registry ~name:"getshows" (fun params ->
      match Option.bind (first_text params) (Hashtbl.find_opt by_name) with
      | Some t -> List.map (show_tree t) t.t_shows
      | None -> []);
  Registry.register registry ~name:"getschedule" (fun params ->
      match Option.bind (first_text params) (Hashtbl.find_opt by_show) with
      | Some s -> [ txt s.s_schedule ]
      | None -> [ txt "00:00" ]);
  Registry.register registry ~name:"getreviews" (fun _ ->
      [ e "review" [ txt "four stars, would go out again" ] ]);
  Registry.register registry ~name:"getrestaurants" (fun _ ->
      [ e "restaurant" [ e "name" [ txt "In Delis" ]; e "address" [ txt "2nd Ave." ] ] ]);
  {
    doc = Doc.of_xml goingout;
    registry;
    schema = Schema.of_string schema_src;
    query = Parser.parse query_src;
  }
