(** The introduction's motivating scenario: a city night-life site
    ("in the style of timeout.com") described by an AXML document with a
    movies section and a restaurants section, queried with
    [/goingout/movies//show[title="The Hours"]/schedule!].

    Position pruning must skip every call under [/goingout/restaurants];
    type pruning must skip the review services under [movies]. *)

type config = {
  theaters : int;
  shows_per_theater : int;
  restaurant_calls : int;  (** calls under the restaurants section *)
  target_fraction : float;  (** shows titled "The Hours" *)
  intensional_shows_fraction : float;  (** theaters listing shows via getshows *)
  intensional_schedule_fraction : float;  (** schedules behind getschedule *)
  seed : int;
}

val default_config : config

type t = {
  doc : Axml_doc.t;
  registry : Axml_services.Registry.t;
  schema : Axml_schema.Schema.t;
  query : Axml_query.Pattern.t;
}

val generate : config -> t
val query_src : string
val schema_src : string
