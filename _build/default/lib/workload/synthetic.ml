module Tree = Axml_xml.Tree
module Doc = Axml_doc
module Registry = Axml_services.Registry
module Schema = Axml_schema.Schema
module Parser = Axml_query.Parser

type config = {
  nodes : int;
  fanout : int;
  item_fraction : float;
  magic_fraction : float;
  call_fraction : float;
  noise_call_fraction : float;
  seed : int;
}

let default_config =
  {
    nodes = 10_000;
    fanout = 8;
    item_fraction = 0.1;
    magic_fraction = 0.2;
    call_fraction = 0.5;
    noise_call_fraction = 0.02;
    seed = 3;
  }

type t = {
  doc : Doc.t;
  registry : Registry.t;
  schema : Schema.t;
  query : Axml_query.Pattern.t;
}

let query_src = {|/r//item[key="magic"]/payload!|}

let schema_src =
  {|functions:
  fetch = [in: data, out: payload]
  noise = [in: data, out: filler*]
elements:
  r       = (sec | item | noise)*
  sec     = (sec | item | filler | noise)*
  item    = key.(payload | fetch)
  key     = data
  payload = data
  filler  = data
|}

let e = Tree.element
let txt = Tree.text
let call_e name params = Tree.element Doc.call_elem_name ~attrs:[ ("name", name) ] params

(* Builds a random tree of roughly [cfg.nodes] nodes, breadth-first: each
   element receives up to [fanout] children while the node budget
   lasts. *)
let generate cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let flip p = Random.State.float rng 1.0 < p in
  let budget = ref cfg.nodes in
  let spend n = budget := !budget - n in
  let rec build_sec depth =
    spend 1;
    let children = ref [] in
    let n_children = 1 + Random.State.int rng cfg.fanout in
    for _ = 1 to n_children do
      if !budget > 0 then
        if flip cfg.item_fraction then children := build_item () :: !children
        else if flip cfg.noise_call_fraction then begin
          spend 1;
          children := call_e "noise" [ txt "n" ] :: !children
        end
        else if depth < 14 && flip 0.7 then children := build_sec (depth + 1) :: !children
        else begin
          spend 2;
          children := e "filler" [ txt "x" ] :: !children
        end
    done;
    e "sec" (List.rev !children)
  and build_item () =
    spend 5;
    let key = if flip cfg.magic_fraction then "magic" else "dull" in
    let payload =
      if flip cfg.call_fraction then call_e "fetch" [ txt key ] else e "payload" [ txt "v" ]
    in
    e "item" [ e "key" [ txt key ]; payload ]
  in
  let top = ref [] in
  while !budget > 0 do
    top := build_sec 0 :: !top
  done;
  let registry = Registry.create () in
  Registry.register registry ~name:"fetch" (fun _ -> [ e "payload" [ txt "fetched" ] ]);
  Registry.register registry ~name:"noise" (fun _ -> [ e "filler" [ txt "noise" ] ]);
  {
    doc = Doc.of_xml (e "r" (List.rev !top));
    registry;
    schema = Schema.of_string schema_src;
    query = Parser.parse query_src;
  }
