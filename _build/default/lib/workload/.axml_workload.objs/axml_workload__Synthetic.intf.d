lib/workload/synthetic.mli: Axml_doc Axml_query Axml_schema Axml_services
