lib/workload/synthetic.ml: Axml_doc Axml_query Axml_schema Axml_services Axml_xml List Random
