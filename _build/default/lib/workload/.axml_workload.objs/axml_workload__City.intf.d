lib/workload/city.mli: Axml_doc Axml_query Axml_schema Axml_services
