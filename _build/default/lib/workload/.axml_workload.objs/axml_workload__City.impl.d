lib/workload/city.ml: Axml_doc Axml_query Axml_schema Axml_services Axml_xml Hashtbl List Printf Random String
