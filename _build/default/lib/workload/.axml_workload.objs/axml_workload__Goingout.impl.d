lib/workload/goingout.ml: Axml_doc Axml_query Axml_schema Axml_services Axml_xml Hashtbl List Option Printf Random
