(** Synthetic scalable documents for the F-guide experiment (E3): random
    trees of a target size over a small vocabulary, with "fetch" calls
    under the (rare) [item] elements the query targets and "noise" calls
    sprinkled elsewhere. Relevance detection cost then depends on how
    fast the candidate calls can be located — the F-guide's job. *)

type config = {
  nodes : int;  (** approximate document size in nodes *)
  fanout : int;
  item_fraction : float;  (** elements that are [item]s *)
  magic_fraction : float;  (** items whose key is the queried value *)
  call_fraction : float;  (** items whose payload is a pending fetch *)
  noise_call_fraction : float;  (** non-item elements hosting a noise call *)
  seed : int;
}

val default_config : config

type t = {
  doc : Axml_doc.t;
  registry : Axml_services.Registry.t;
  schema : Axml_schema.Schema.t;
  query : Axml_query.Pattern.t;
}

val generate : config -> t
val query_src : string
(** [/r//item[key="magic"]/payload!] *)
