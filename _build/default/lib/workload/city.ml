module Tree = Axml_xml.Tree
module Doc = Axml_doc
module Registry = Axml_services.Registry
module Schema = Axml_schema.Schema
module Parser = Axml_query.Parser

type config = {
  hotels : int;
  restaurants_per_hotel : int;
  museums_per_hotel : int;
  extensional_fraction : float;
  intensional_rating_fraction : float;
  intensional_nearby_fraction : float;
  target_fraction : float;
  five_star_fraction : float;
  blurb_bytes : int;
  seed : int;
}

let default_config =
  {
    hotels = 20;
    restaurants_per_hotel = 5;
    museums_per_hotel = 2;
    extensional_fraction = 0.5;
    intensional_rating_fraction = 0.5;
    intensional_nearby_fraction = 0.5;
    target_fraction = 0.3;
    five_star_fraction = 0.4;
    blurb_bytes = 256;
    seed = 42;
  }

type t = {
  doc : Doc.t;
  registry : Registry.t;
  schema : Schema.t;
  query : Axml_query.Pattern.t;
}

let query_src =
  {|/guide/hotel[name="Best Western"][rating="5"]/nearby//restaurant[name=$X!][address=$Y!][rating="5"]|}

let schema_src =
  {|functions:
  gethotels        = [in: data, out: hotel*]
  getrating        = [in: data, out: data]
  getnearbyrestos  = [in: data, out: restaurant*]
  getnearbymuseums = [in: data, out: museum*]
elements:
  guide      = hotel*.gethotels?
  hotel      = name.address.rating.nearby
  nearby     = (restaurant | museum | getnearbyrestos | getnearbymuseums)*
  restaurant = name.address.rating.review?
  museum     = name.address
  name       = data
  address    = data
  rating     = (data | getrating)
  review     = data
|}

(* ------------------------------------------------------------------ *)
(* The generated world.                                                *)

type restaurant_w = { r_name : string; r_rating : string; r_address : string; r_review : string }
type museum_w = { m_name : string; m_address : string }

type hotel_w = {
  h_name : string;
  h_address : string;
  h_rating : string;
  h_rating_intensional : bool;
  h_restos : restaurant_w list;
  h_restos_intensional : bool;
  h_museums : museum_w list;
  h_museums_intensional : bool;
  h_extensional : bool;  (* present in the document, or behind gethotels *)
}

let e = Tree.element
let txt = Tree.text
let call_e name params = Tree.element Doc.call_elem_name ~attrs:[ ("name", name) ] params

let make_world cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let flip p = Random.State.float rng 1.0 < p in
  let rating () =
    if flip cfg.five_star_fraction then "5"
    else string_of_int (1 + Random.State.int rng 4)
  in
  let blurb i =
    let base = Printf.sprintf "review %d: a memorable place. " i in
    let reps = max 1 (cfg.blurb_bytes / String.length base) in
    String.concat "" (List.init reps (fun _ -> base))
  in
  List.init cfg.hotels (fun i ->
      let h_name = if flip cfg.target_fraction then "Best Western" else Printf.sprintf "Hotel %d" i in
      let h_address = Printf.sprintf "%d Main St." i in
      let h_restos =
        List.init cfg.restaurants_per_hotel (fun j ->
            {
              r_name = Printf.sprintf "Resto %d.%d" i j;
              r_rating = rating ();
              r_address = h_address;
              r_review = blurb ((i * 31) + j);
            })
      in
      let h_museums =
        List.init cfg.museums_per_hotel (fun j ->
            { m_name = Printf.sprintf "Museum %d.%d" i j; m_address = h_address })
      in
      {
        h_name;
        h_address;
        h_rating = rating ();
        h_rating_intensional = flip cfg.intensional_rating_fraction;
        h_restos;
        h_restos_intensional = flip cfg.intensional_nearby_fraction;
        h_museums;
        h_museums_intensional = flip cfg.intensional_nearby_fraction;
        h_extensional = flip cfg.extensional_fraction;
      })

let restaurant_tree r =
  e "restaurant"
    [
      e "name" [ txt r.r_name ];
      e "address" [ txt r.r_address ];
      e "rating" [ txt r.r_rating ];
      e "review" [ txt r.r_review ];
    ]

let museum_tree m = e "museum" [ e "name" [ txt m.m_name ]; e "address" [ txt m.m_address ] ]

let hotel_tree h =
  let rating_content =
    if h.h_rating_intensional then [ call_e "getrating" [ txt h.h_address ] ]
    else [ txt h.h_rating ]
  in
  let nearby_content =
    (if h.h_restos_intensional then [ call_e "getnearbyrestos" [ txt h.h_address ] ]
     else List.map restaurant_tree h.h_restos)
    @
    if h.h_museums_intensional then [ call_e "getnearbymuseums" [ txt h.h_address ] ]
    else List.map museum_tree h.h_museums
  in
  e "hotel"
    [
      e "name" [ txt h.h_name ];
      e "address" [ txt h.h_address ];
      e "rating" rating_content;
      e "nearby" nearby_content;
    ]

let first_text params =
  let rec find = function
    | [] -> None
    | Tree.Text s :: _ -> Some s
    | Tree.Element el :: rest -> (
      match find el.Tree.children with Some s -> Some s | None -> find rest)
  in
  find params

let register_services registry world =
  let by_address = Hashtbl.create 32 in
  List.iter (fun h -> Hashtbl.replace by_address h.h_address h) world;
  let hotel_of params =
    match first_text params with
    | Some addr -> Hashtbl.find_opt by_address addr
    | None -> None
  in
  Registry.register registry ~name:"gethotels" (fun _params ->
      List.filter_map (fun h -> if h.h_extensional then None else Some (hotel_tree h)) world);
  Registry.register registry ~name:"getrating" (fun params ->
      match hotel_of params with Some h -> [ txt h.h_rating ] | None -> [ txt "0" ]);
  Registry.register registry ~name:"getnearbyrestos" (fun params ->
      match hotel_of params with
      | Some h -> List.map restaurant_tree h.h_restos
      | None -> []);
  Registry.register registry ~name:"getnearbymuseums" (fun params ->
      match hotel_of params with Some h -> List.map museum_tree h.h_museums | None -> [])

let generate cfg =
  let world = make_world cfg in
  let extensional = List.filter (fun h -> h.h_extensional) world in
  let has_intensional = List.exists (fun h -> not h.h_extensional) world in
  let guide =
    e "guide"
      (List.map hotel_tree extensional
      @ if has_intensional then [ call_e "gethotels" [ txt "NY" ] ] else [])
  in
  let registry = Registry.create () in
  register_services registry world;
  {
    doc = Doc.of_xml guide;
    registry;
    schema = Schema.of_string schema_src;
    query = Parser.parse query_src;
  }

(* ------------------------------------------------------------------ *)
(* The paper's exact running example (Fig. 1 / Fig. 3 / Fig. 4).       *)

let figure1 () =
  let hotel name address rating_content nearby_content =
    e "hotel"
      [
        e "name" [ txt name ];
        e "address" [ txt address ];
        e "rating" rating_content;
        e "nearby" nearby_content;
      ]
  in
  (* Call ids are assigned in document order, matching the paper's
     numbering: 1,2 under the first hotel; 3,4,5 under the second; 6,7
     under the third; 8,9 under the fourth; 10 at guide level. *)
  let guide =
    e "guide"
      [
        hotel "Best Western" "75, 2nd Av."
          [ txt "5" ]
          [
            call_e "getnearbyrestos" [ txt "75, 2nd Av." ];
            call_e "getnearbymuseums" [ txt "75, 2nd Av." ];
          ];
        hotel "Best Western" "22 Madison Av."
          [ call_e "getrating" [ txt "Best Western Madison" ] ]
          [
            call_e "getnearbyrestos" [ txt "22 Madison Av." ];
            call_e "getnearbymuseums" [ txt "22 Madison Av." ];
          ];
        hotel "Best Western 34th St." "12 34th St. W"
          [ call_e "getrating" [ txt "Best Western 34th St." ] ]
          [ call_e "getnearbymuseums" [ txt "12 34th St. W" ] ];
        hotel "Pennsylvania" "13 Penn St."
          [ call_e "getrating" [ txt "Pennsylvania" ] ]
          [ call_e "getnearbyrestos" [ txt "13 Penn St." ] ];
        call_e "gethotels" [ txt "NY" ];
      ]
  in
  let registry = Registry.create () in
  (* Fig. 3: the first getnearbyrestos returns one five-star restaurant
     and one whose rating is a further getrating call (call 11). *)
  Registry.register registry ~name:"getnearbyrestos" (fun params ->
      match first_text params with
      | Some "75, 2nd Av." ->
        [
          e "restaurant"
            [
              e "name" [ txt "Mama" ];
              e "address" [ txt "75, 2nd Av." ];
              e "rating" [ txt "5" ];
            ];
          e "restaurant"
            [
              e "name" [ txt "Jo" ];
              e "address" [ txt "75, 2nd Av." ];
              e "rating" [ call_e "getrating" [ txt "Jo" ] ];
            ];
        ]
      | Some "22 Madison Av." ->
        [
          e "restaurant"
            [
              e "name" [ txt "Madison Deli" ];
              e "address" [ txt "22 Madison Av." ];
              e "rating" [ txt "3" ];
            ];
        ]
      | _ -> []);
  Registry.register registry ~name:"getnearbymuseums" (fun _ ->
      [ e "museum" [ e "name" [ txt "MoMA" ]; e "address" [ txt "11 W 53rd St." ] ] ]);
  Registry.register registry ~name:"getrating" (fun params ->
      match first_text params with
      | Some "Best Western Madison" -> [ txt "2" ]
      | Some "Jo" -> [ txt "2" ]
      | _ -> [ txt "1" ]);
  Registry.register registry ~name:"gethotels" (fun _ -> []);
  {
    doc = Doc.of_xml guide;
    registry;
    schema = Schema.of_string schema_src;
    query = Parser.parse query_src;
  }

let figure1_relevant_calls = [ 1; 3; 4; 10 ]
