(** The paper's running example: a city-guide AXML document about hotels,
    their ratings and the restaurants/museums nearby (Fig. 1–3), scaled by
    a configuration for the benchmarks.

    [generate] builds a coherent world (hotels with ratings and nearby
    places), then splits it into an extensional part (in the document) and
    an intensional part (behind simulated services):
    - [gethotels] returns the hotels missing from the document — whose own
      ratings and nearby lists may again be intensional, so invocations
      keep bringing new calls;
    - [getrating] returns a hotel's or restaurant's rating;
    - [getnearbyrestos] / [getnearbymuseums] return the places near an
      address (restaurants carry review blurbs, which inflate responses
      and make query pushing profitable).

    All generation is deterministic in [seed]. *)

type config = {
  hotels : int;
  restaurants_per_hotel : int;
  museums_per_hotel : int;
  extensional_fraction : float;  (** hotels present in the document *)
  intensional_rating_fraction : float;  (** ratings behind getrating *)
  intensional_nearby_fraction : float;  (** nearby lists behind calls *)
  target_fraction : float;  (** hotels named [target_name] *)
  five_star_fraction : float;  (** of hotels and restaurants *)
  blurb_bytes : int;  (** review text per returned restaurant *)
  seed : int;
}

val default_config : config
(** 20 hotels, 5 restaurants and 2 museums each, halves intensional,
    256-byte blurbs, seed 42. *)

type t = {
  doc : Axml_doc.t;
  registry : Axml_services.Registry.t;
  schema : Axml_schema.Schema.t;
  query : Axml_query.Pattern.t;  (** the Fig. 4 query for this instance *)
}

val generate : config -> t

val query_src : string
(** The Fig. 4 query in concrete syntax:
    five-star "Best Western" hotels' five-star nearby restaurants. *)

val schema_src : string
(** The Fig. 2 schema in concrete syntax. *)

(** {2 The exact running example of the paper} *)

val figure1 : unit -> t
(** The document of Fig. 1, with calls numbered 1–10 in the paper's
    order, service behaviors matching Fig. 3 (the first
    [getnearbyrestos] returns one five-star restaurant and one whose
    rating is a further [getrating] call), and the Fig. 4 query. *)

val figure1_relevant_calls : int list
(** [[1; 3; 4; 10]] — the call ids §2 identifies as relevant for the
    Fig. 4 query on the Fig. 1 document. *)
