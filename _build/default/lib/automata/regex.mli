(** Regular expressions over string symbols.

    Used for two distinct languages in the system:
    - schema content models and function signatures (Fig. 2 of the paper),
      parsed from the DTD-like syntax [name.address.rating*], and
    - linear path languages of queries ([//a/b] becomes [_* . a . b]),
      built programmatically, where {!Any} stands for "any label".

    Words are lists of symbols (labels), not characters. *)

type t =
  | Empty  (** the empty language ∅ *)
  | Epsilon  (** the language containing only the empty word *)
  | Sym of string  (** a single symbol *)
  | Any  (** any single symbol (label wildcard) *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

val seq : t list -> t
(** [seq rs] concatenates, simplifying units: [seq []] is {!Epsilon}. *)

val alt : t list -> t
(** [alt rs] is the union, simplifying units: [alt []] is {!Empty}. *)

val nullable : t -> bool
(** [nullable r] holds iff the empty word is in the language of [r]. *)

val is_empty_language : t -> bool
(** [is_empty_language r] holds iff the language of [r] is ∅. *)

val symbols : t -> string list
(** [symbols r] lists the distinct symbols occurring in [r], in first
    occurrence order. Does not include {!Any}. *)

val occurring_symbols : t -> string list
(** [occurring_symbols r] lists the symbols that occur in at least one word
    of the language (i.e. {!symbols} minus those only reachable through an
    ∅ sub-language). *)

val matches : t -> string list -> bool
(** [matches r w] tests membership via Brzozowski derivatives. Serves as
    the reference semantics against which the NFA/DFA constructions are
    property-tested. *)

val of_string : string -> t
(** Parses the schema regex syntax: names, [.] for concatenation, [|] for
    alternation, postfix [* + ?], parentheses, [_] for the label wildcard,
    [%empty] for ε and [%none] for ∅. Raises [Failure] on syntax errors. *)

val to_string : t -> string
(** Prints in the syntax accepted by {!of_string}. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural (not language) equality. *)

val compare_words : string list -> string list -> int
(** Lexicographic word order, useful for enumerations in tests. *)

val enumerate : ?max_len:int -> ?limit:int -> alphabet:string list -> t -> string list list
(** [enumerate ~alphabet r] lists words of [r] over [alphabet] (expanding
    {!Any}) up to [max_len] (default 4), at most [limit] (default 1000)
    words, in length-lexicographic order. Exact but exponential: testing
    and satisfiability witnesses only. *)
