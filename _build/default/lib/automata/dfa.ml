type t = {
  alphabet : string array;
  sym_index : (string, int) Hashtbl.t;
  start : int;
  accepting : bool array;
  (* next.(state).(symbol); every state is total (an explicit rejecting
     sink is materialized when needed) *)
  next : int array array;
}

let alphabet d = Array.to_list d.alphabet
let size d = Array.length d.accepting

module Int_set = Set.Make (Int)

let of_nfa nfa =
  let alpha = Array.of_list (Nfa.alphabet nfa) in
  let nsyms = Array.length alpha in
  let sym_index = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace sym_index s i) alpha;
  let subset_id : (Int_set.t, int) Hashtbl.t = Hashtbl.create 64 in
  let states = ref [] in
  let nstates = ref 0 in
  let todo = Queue.create () in
  let intern set =
    match Hashtbl.find_opt subset_id set with
    | Some id -> id
    | None ->
      let id = !nstates in
      incr nstates;
      Hashtbl.replace subset_id set id;
      states := set :: !states;
      Queue.add (id, set) todo;
      id
  in
  let start = intern (Int_set.singleton (Nfa.start nfa)) in
  let rows = ref [] in
  let accs = ref [] in
  while not (Queue.is_empty todo) do
    let id, set = Queue.pop todo in
    let row = Array.make nsyms 0 in
    for i = 0 to nsyms - 1 do
      let succ =
        Int_set.fold
          (fun s acc -> List.fold_left (fun acc q -> Int_set.add q acc) acc (Nfa.successors nfa s i))
          set Int_set.empty
      in
      row.(i) <- intern succ
    done;
    let accepting = Int_set.exists (Nfa.is_accepting nfa) set in
    rows := (id, row) :: !rows;
    accs := (id, accepting) :: !accs
  done;
  let n = !nstates in
  let next = Array.make n [||] in
  let accepting = Array.make n false in
  List.iter (fun (id, row) -> next.(id) <- row) !rows;
  List.iter (fun (id, a) -> accepting.(id) <- a) !accs;
  { alphabet = alpha; sym_index; start; accepting; next }

let of_regex ~alphabet r = of_nfa (Nfa.of_regex ~alphabet r)

let accepts d word =
  let rec go state = function
    | [] -> d.accepting.(state)
    | sym :: rest -> (
      match Hashtbl.find_opt d.sym_index sym with
      | None -> false
      | Some i -> go d.next.(state).(i) rest)
  in
  go d.start word

let reachable d =
  let n = size d in
  let seen = Array.make n false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter visit d.next.(s)
    end
  in
  visit d.start;
  seen

let is_empty d =
  let seen = reachable d in
  not (Array.exists Fun.id (Array.mapi (fun i r -> r && d.accepting.(i)) seen))

let complement d = { d with accepting = Array.map not d.accepting }

let minimize d =
  (* Restrict to reachable states, then refine partitions (Moore). *)
  let seen = reachable d in
  let old_of_new = ref [] in
  let count = ref 0 in
  let new_of_old = Array.make (size d) (-1) in
  Array.iteri
    (fun i r ->
      if r then begin
        new_of_old.(i) <- !count;
        incr count;
        old_of_new := i :: !old_of_new
      end)
    seen;
  let olds = Array.of_list (List.rev !old_of_new) in
  let n = Array.length olds in
  let next = Array.init n (fun i -> Array.map (fun q -> new_of_old.(q)) d.next.(olds.(i))) in
  let accepting = Array.init n (fun i -> d.accepting.(olds.(i))) in
  (* Partition refinement: class.(s) starts as accepting/rejecting and is
     refined until the signature (class of each successor) stabilizes. *)
  let cls = Array.init n (fun i -> if accepting.(i) then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    let signature s = (cls.(s), Array.to_list (Array.map (fun q -> cls.(q)) next.(s))) in
    let table = Hashtbl.create n in
    let fresh = ref 0 in
    let new_cls = Array.make n 0 in
    for s = 0 to n - 1 do
      let sg = signature s in
      match Hashtbl.find_opt table sg with
      | Some c -> new_cls.(s) <- c
      | None ->
        Hashtbl.replace table sg !fresh;
        new_cls.(s) <- !fresh;
        incr fresh
    done;
    if new_cls <> cls then begin
      Array.blit new_cls 0 cls 0 n;
      changed := true
    end
  done;
  let nclasses = Array.fold_left (fun m c -> max m (c + 1)) 0 cls in
  let rep = Array.make nclasses (-1) in
  for s = n - 1 downto 0 do
    rep.(cls.(s)) <- s
  done;
  {
    alphabet = d.alphabet;
    sym_index = d.sym_index;
    start = cls.(new_of_old.(d.start));
    accepting = Array.init nclasses (fun c -> accepting.(rep.(c)));
    next = Array.init nclasses (fun c -> Array.map (fun q -> cls.(q)) next.(rep.(c)));
  }

let check_same_alphabet a b =
  if a.alphabet <> b.alphabet then invalid_arg "Dfa: automata have different alphabets"

(* Product with a boolean combiner on acceptance. *)
let combine op a b =
  check_same_alphabet a b;
  let na = size a and nb = size b in
  let nsyms = Array.length a.alphabet in
  let idx s t = (s * nb) + t in
  let next =
    Array.init (na * nb) (fun st ->
        let s = st / nb and t = st mod nb in
        Array.init nsyms (fun i -> idx a.next.(s).(i) b.next.(t).(i)))
  in
  let accepting =
    Array.init (na * nb) (fun st ->
        let s = st / nb and t = st mod nb in
        op a.accepting.(s) b.accepting.(t))
  in
  {
    alphabet = a.alphabet;
    sym_index = a.sym_index;
    start = idx a.start b.start;
    accepting;
    next;
  }

let subset a b =
  (* L(a) ⊆ L(b)  iff  L(a) ∩ co-L(b) = ∅ *)
  is_empty (combine (fun x y -> x && not y) a b)

let equal a b = subset a b && subset b a
