type t =
  | Empty
  | Epsilon
  | Sym of string
  | Any
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let seq2 a b =
  match a, b with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | a, b -> Seq (a, b)

let alt2 a b =
  match a, b with
  | Empty, r | r, Empty -> r
  | a, b -> Alt (a, b)

let seq rs = List.fold_right seq2 rs Epsilon
let alt rs = List.fold_right alt2 rs Empty

let rec nullable = function
  | Empty | Sym _ | Any -> false
  | Epsilon | Star _ | Opt _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Plus a -> nullable a

let rec is_empty_language = function
  | Empty -> true
  | Epsilon | Sym _ | Any | Star _ | Opt _ -> false
  | Seq (a, b) -> is_empty_language a || is_empty_language b
  | Alt (a, b) -> is_empty_language a && is_empty_language b
  | Plus a -> is_empty_language a

let symbols r =
  let rec go acc = function
    | Empty | Epsilon | Any -> acc
    | Sym s -> if List.mem s acc then acc else s :: acc
    | Seq (a, b) | Alt (a, b) ->
      let acc = go acc a in
      go acc b
    | Star a | Plus a | Opt a -> go acc a
  in
  List.rev (go [] r)

let occurring_symbols r =
  (* A symbol occurs in some word iff it survives pruning of ∅
     sub-languages. *)
  let rec prune r =
    match r with
    | Empty | Epsilon | Sym _ | Any -> r
    | Seq (a, b) -> seq2 (prune a) (prune b)
    | Alt (a, b) -> alt2 (prune a) (prune b)
    | Star a -> ( match prune a with Empty -> Epsilon | a -> Star a)
    | Plus a -> ( match prune a with Empty -> Empty | a -> Plus a)
    | Opt a -> ( match prune a with Empty -> Epsilon | a -> Opt a)
  in
  symbols (prune r)

(* Brzozowski derivative with respect to one symbol. *)
let rec derive r s =
  match r with
  | Empty | Epsilon -> Empty
  | Sym x -> if String.equal x s then Epsilon else Empty
  | Any -> Epsilon
  | Seq (a, b) ->
    let da_b = seq2 (derive a s) b in
    if nullable a then alt2 da_b (derive b s) else da_b
  | Alt (a, b) -> alt2 (derive a s) (derive b s)
  | Star a -> seq2 (derive a s) (Star a)
  | Plus a -> seq2 (derive a s) (Star a)
  | Opt a -> derive a s

let matches r w = nullable (List.fold_left derive r w)

(* ------------------------------------------------------------------ *)
(* Concrete syntax.                                                    *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = ':'

type token =
  | Tname of string
  | Tlpar
  | Trpar
  | Tdot
  | Tbar
  | Tstar
  | Tplus
  | Topt
  | Tany
  | Teps
  | Tnone

let tokenize src =
  let n = String.length src in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1) acc
      | '(' -> loop (i + 1) (Tlpar :: acc)
      | ')' -> loop (i + 1) (Trpar :: acc)
      | '.' -> loop (i + 1) (Tdot :: acc)
      | '|' -> loop (i + 1) (Tbar :: acc)
      | '*' -> loop (i + 1) (Tstar :: acc)
      | '+' -> loop (i + 1) (Tplus :: acc)
      | '?' -> loop (i + 1) (Topt :: acc)
      | '_' -> loop (i + 1) (Tany :: acc)
      | '%' ->
        let j = ref (i + 1) in
        while !j < n && is_name_char src.[!j] do
          incr j
        done;
        let kw = String.sub src (i + 1) (!j - i - 1) in
        (match kw with
        | "empty" -> loop !j (Teps :: acc)
        | "none" -> loop !j (Tnone :: acc)
        | _ -> failwith (Printf.sprintf "regex: unknown keyword %%%s" kw))
      | c when is_name_char c ->
        let j = ref i in
        while !j < n && is_name_char src.[!j] do
          incr j
        done;
        loop !j (Tname (String.sub src i (!j - i)) :: acc)
      | c -> failwith (Printf.sprintf "regex: unexpected character %C" c)
  in
  loop 0 []

let of_string src =
  let tokens = ref (tokenize src) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let rec parse_alt () =
    let left = parse_seq () in
    match peek () with
    | Some Tbar ->
      advance ();
      alt2 left (parse_alt ())
    | _ -> left
  and parse_seq () =
    let left = parse_postfix () in
    match peek () with
    | Some Tdot ->
      advance ();
      seq2 left (parse_seq ())
    | _ -> left
  and parse_postfix () =
    let r = ref (parse_atom ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some Tstar ->
        advance ();
        r := Star !r
      | Some Tplus ->
        advance ();
        r := Plus !r
      | Some Topt ->
        advance ();
        r := Opt !r
      | _ -> continue := false
    done;
    !r
  and parse_atom () =
    match peek () with
    | Some (Tname s) ->
      advance ();
      Sym s
    | Some Tany ->
      advance ();
      Any
    | Some Teps ->
      advance ();
      Epsilon
    | Some Tnone ->
      advance ();
      Empty
    | Some Tlpar ->
      advance ();
      let r = parse_alt () in
      (match peek () with
      | Some Trpar -> advance ()
      | _ -> failwith "regex: expected ')'");
      r
    | _ -> failwith "regex: expected an atom"
  in
  match peek () with
  | None -> Epsilon
  | Some _ ->
    let r = parse_alt () in
    if !tokens <> [] then failwith "regex: trailing tokens";
    r

let rec to_string r =
  (* Precedence levels: alt(0) < seq(1) < postfix(2) < atom(3). *)
  let paren needed inner s = if inner < needed then "(" ^ s ^ ")" else s in
  let rec go r =
    match r with
    | Empty -> (3, "%none")
    | Epsilon -> (3, "%empty")
    | Sym s -> (3, s)
    | Any -> (3, "_")
    | Alt (a, b) ->
      (* associative: same-level operands print without parentheses *)
      let la, sa = go a and lb, sb = go b in
      (0, paren 0 la sa ^ " | " ^ paren 0 lb sb)
    | Seq (a, b) ->
      let la, sa = go a and lb, sb = go b in
      (1, paren 1 la sa ^ "." ^ paren 1 lb sb)
    | Star a ->
      let la, sa = go a in
      (2, paren 3 la sa ^ "*")
    | Plus a ->
      let la, sa = go a in
      (2, paren 3 la sa ^ "+")
    | Opt a ->
      let la, sa = go a in
      (2, paren 3 la sa ^ "?")
  in
  snd (go r)

and pp ppf r = Format.pp_print_string ppf (to_string r)

let equal = ( = )

let compare_words a b =
  let c = Int.compare (List.length a) (List.length b) in
  if c <> 0 then c else List.compare String.compare a b

let enumerate ?(max_len = 4) ?(limit = 1000) ~alphabet r =
  (* Breadth-first over derivatives; exact on the finite alphabet. *)
  let results = ref [] in
  let count = ref 0 in
  let rec bfs frontier len =
    if len > max_len || !count >= limit || frontier = [] then ()
    else begin
      let next = ref [] in
      List.iter
        (fun (word, r) ->
          if nullable r && !count < limit then begin
            results := List.rev word :: !results;
            incr count
          end;
          List.iter
            (fun s ->
              let d = derive r s in
              if not (is_empty_language d) then next := ((s :: word), d) :: !next)
            alphabet)
        frontier;
      bfs (List.rev !next) (len + 1)
    end
  in
  bfs [ ([], r) ] 0;
  List.sort compare_words (List.rev !results)
