type t = {
  alphabet : string array;
  sym_index : (string, int) Hashtbl.t;
  start : int;
  accepting : bool array;
  (* transitions.(state).(symbol) = successor states *)
  transitions : int list array array;
}

let other_symbol = "\u{22A5}"

let start a = a.start
let is_accepting a s = a.accepting.(s)
let successors a s i = a.transitions.(s).(i)

let alphabet a = Array.to_list a.alphabet
let size a = Array.length a.accepting

(* ------------------------------------------------------------------ *)
(* Glushkov construction. Atoms of the regex are numbered 1..n; state 0
   is the initial state. *)

type atom = A_sym of string | A_any

let of_regex ~alphabet:alpha r =
  let alphabet = Array.of_list alpha in
  let sym_index = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace sym_index s i) alphabet;
  (* Number the atoms and record their labels. *)
  let atoms = ref [] in
  let natoms = ref 0 in
  let add_atom a =
    incr natoms;
    atoms := a :: !atoms;
    !natoms
  in
  (* For each sub-regex return (nullable, first, last) and accumulate the
     follow relation. positions are atom numbers. *)
  let follow = Hashtbl.create 64 in
  let add_follow p q =
    let existing = try Hashtbl.find follow p with Not_found -> [] in
    if not (List.mem q existing) then Hashtbl.replace follow p (q :: existing)
  in
  let rec go r =
    match r with
    | Regex.Empty -> (false, [], [], true) (* last flag: is the language empty *)
    | Regex.Epsilon -> (true, [], [], false)
    | Regex.Sym s ->
      if not (Hashtbl.mem sym_index s) then
        invalid_arg (Printf.sprintf "Nfa.of_regex: symbol %S not in the alphabet" s);
      let p = add_atom (A_sym s) in
      (false, [ p ], [ p ], false)
    | Regex.Any ->
      let p = add_atom A_any in
      (false, [ p ], [ p ], false)
    | Regex.Seq (a, b) ->
      let na, fa, la, ea = go a in
      let nb, fb, lb, eb = go b in
      if ea || eb then (false, [], [], true)
      else begin
        List.iter (fun p -> List.iter (add_follow p) fb) la;
        let first = if na then fa @ fb else fa in
        let last = if nb then lb @ la else lb in
        (na && nb, first, last, false)
      end
    | Regex.Alt (a, b) ->
      let na, fa, la, ea = go a in
      let nb, fb, lb, eb = go b in
      if ea && eb then (false, [], [], true)
      else if ea then (nb, fb, lb, false)
      else if eb then (na, fa, la, false)
      else (na || nb, fa @ fb, la @ lb, false)
    | Regex.Star a ->
      let _, fa, la, ea = go a in
      if ea then (true, [], [], false)
      else begin
        List.iter (fun p -> List.iter (add_follow p) fa) la;
        (true, fa, la, false)
      end
    | Regex.Plus a ->
      let na, fa, la, ea = go a in
      if ea then (false, [], [], true)
      else begin
        List.iter (fun p -> List.iter (add_follow p) fa) la;
        (na, fa, la, false)
      end
    | Regex.Opt a ->
      let _, fa, la, ea = go a in
      if ea then (true, [], [], false) else (true, fa, la, false)
  in
  let null, first, last, empty = go r in
  let n = !natoms in
  let atom_of = Array.make (n + 1) A_any in
  List.iteri (fun i a -> atom_of.(n - i) <- a) !atoms;
  let nsyms = Array.length alphabet in
  let transitions = Array.init (n + 1) (fun _ -> Array.make nsyms []) in
  let accepting = Array.make (n + 1) false in
  if not empty then begin
    if null then accepting.(0) <- true;
    List.iter (fun p -> accepting.(p) <- true) last;
    let connect src p =
      match atom_of.(p) with
      | A_sym s ->
        let i = Hashtbl.find sym_index s in
        transitions.(src).(i) <- p :: transitions.(src).(i)
      | A_any ->
        for i = 0 to nsyms - 1 do
          transitions.(src).(i) <- p :: transitions.(src).(i)
        done
    in
    List.iter (fun p -> connect 0 p) first;
    Hashtbl.iter (fun p qs -> List.iter (fun q -> connect p q) qs) follow
  end;
  { alphabet; sym_index; start = 0; accepting; transitions }

let common_alphabet rs =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      out := s :: !out
    end
  in
  List.iter (fun r -> List.iter add (Regex.symbols r)) rs;
  add other_symbol;
  List.rev !out

let step a states sym =
  match Hashtbl.find_opt a.sym_index sym with
  | None -> []
  | Some i ->
    let out = Hashtbl.create 8 in
    List.iter
      (fun s -> List.iter (fun q -> Hashtbl.replace out q ()) a.transitions.(s).(i))
      states;
    Hashtbl.fold (fun q () acc -> q :: acc) out []

let accepts a word =
  let final = List.fold_left (step a) [ a.start ] word in
  List.exists (fun s -> a.accepting.(s)) final

let reachable a =
  let n = size a in
  let seen = Array.make n false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter (fun succs -> List.iter visit succs) a.transitions.(s)
    end
  in
  visit a.start;
  seen

let is_empty a =
  let seen = reachable a in
  not
    (Array.exists (fun s -> s)
       (Array.mapi (fun i r -> r && a.accepting.(i)) seen))

let reachable_accepting_states a =
  let seen = reachable a in
  let count = ref 0 in
  Array.iteri (fun i r -> if r && a.accepting.(i) then incr count) seen;
  !count

let check_same_alphabet a b =
  if a.alphabet <> b.alphabet then
    invalid_arg "Nfa: automata have different alphabets"

let product a b =
  check_same_alphabet a b;
  let na = size a and nb = size b in
  let nsyms = Array.length a.alphabet in
  let idx s t = (s * nb) + t in
  let transitions = Array.init (na * nb) (fun _ -> Array.make nsyms []) in
  let accepting = Array.make (na * nb) false in
  for s = 0 to na - 1 do
    for u = 0 to nb - 1 do
      accepting.(idx s u) <- a.accepting.(s) && b.accepting.(u);
      for i = 0 to nsyms - 1 do
        transitions.(idx s u).(i) <-
          List.concat_map
            (fun s' -> List.map (fun u' -> idx s' u') b.transitions.(u).(i))
            a.transitions.(s).(i)
      done
    done
  done;
  {
    alphabet = a.alphabet;
    sym_index = a.sym_index;
    start = idx a.start b.start;
    accepting;
    transitions;
  }

let prefix_closure a =
  (* States co-reachable from an accepting state become accepting. We
     compute co-reachability over the reversed transition relation. *)
  let n = size a in
  let preds = Array.make n [] in
  Array.iteri
    (fun s by_sym ->
      Array.iter (fun succs -> List.iter (fun q -> preds.(q) <- s :: preds.(q)) succs) by_sym)
    a.transitions;
  let co = Array.make n false in
  let rec visit s =
    if not co.(s) then begin
      co.(s) <- true;
      List.iter visit preds.(s)
    end
  in
  Array.iteri (fun s acc -> if acc then visit s) a.accepting;
  { a with accepting = co }

let intersects a b = not (is_empty (product a b))

let some_word a =
  (* BFS from the start state, remembering one incoming symbol per state. *)
  let n = size a in
  let visited = Array.make n false in
  let parent = Array.make n None in
  let queue = Queue.create () in
  visited.(a.start) <- true;
  Queue.add a.start queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    if a.accepting.(s) then found := Some s
    else
      Array.iteri
        (fun i succs ->
          List.iter
            (fun q ->
              if not visited.(q) then begin
                visited.(q) <- true;
                parent.(q) <- Some (s, a.alphabet.(i));
                Queue.add q queue
              end)
            succs)
        a.transitions.(s)
  done;
  match !found with
  | None -> None
  | Some s ->
    let rec unwind s acc =
      match parent.(s) with
      | None -> acc
      | Some (p, sym) -> unwind p (sym :: acc)
    in
    Some (unwind s [])
