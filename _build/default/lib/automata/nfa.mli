(** ε-free non-deterministic finite automata over a fixed, finite symbol
    alphabet, built from {!Regex} by the Glushkov construction.

    Path-language comparisons in the paper (Prop. 3 and the independence
    condition (★)) reduce to: build two automata over a {e common} alphabet,
    take their product, and test emptiness. The alphabet must be finite, so
    callers instantiate the {!Regex.Any} wildcard over the symbols mentioned
    by both expressions plus one fresh "other" witness symbol — see
    {!common_alphabet}. *)

type t

val of_regex : alphabet:string list -> Regex.t -> t
(** [of_regex ~alphabet r] builds the Glushkov automaton of [r], with
    {!Regex.Any} expanded over [alphabet]. Raises [Invalid_argument] if a
    symbol of [r] is missing from [alphabet]. *)

val common_alphabet : Regex.t list -> string list
(** [common_alphabet rs] is the union of the symbols of [rs] plus the
    fresh witness symbol {!other_symbol}; over this alphabet, emptiness of
    products of the [rs] coincides with emptiness over the unbounded label
    alphabet. *)

val other_symbol : string
(** The reserved witness label standing for "any label not mentioned"
    ([{!other_symbol} = "\u{22A5}"], which cannot appear in parsed XML
    names). *)

val alphabet : t -> string list
val size : t -> int
(** Number of states. *)

val accepts : t -> string list -> bool

val is_empty : t -> bool
(** [is_empty a] holds iff the language of [a] is ∅. *)

val product : t -> t -> t
(** [product a b] recognizes the intersection of the two languages. The
    automata must have equal alphabets (raise [Invalid_argument]
    otherwise). *)

val prefix_closure : t -> t
(** [prefix_closure a] recognizes the set of prefixes of words of [a]
    (states co-reachable from an accepting state become accepting). *)

val intersects : t -> t -> bool
(** [intersects a b] = [not (is_empty (product a b))]. *)

val some_word : t -> string list option
(** [some_word a] is a shortest accepted word, if any — used to produce
    counterexamples and satisfiability witnesses. *)

val reachable_accepting_states : t -> int
(** Number of accepting states reachable from the start state (exposed for
    white-box tests). *)

(** {2 Low-level view (used by {!Dfa} and tests)} *)

val start : t -> int
val is_accepting : t -> int -> bool

val successors : t -> int -> int -> int list
(** [successors a state symbol_index] — symbol indices follow the order of
    {!alphabet}. *)
