lib/automata/regex.ml: Format Int List Printf String
