lib/automata/nfa.ml: Array Hashtbl List Printf Queue Regex
