lib/automata/nfa.mli: Regex
