lib/automata/regex.mli: Format
