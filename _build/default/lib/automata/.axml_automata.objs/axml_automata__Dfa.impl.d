lib/automata/dfa.ml: Array Fun Hashtbl Int List Nfa Queue Set
