(** Deterministic finite automata, by subset construction from {!Nfa}.

    The lazy-evaluation algorithms only need NFA products and emptiness;
    DFAs provide language-level equality and complementation, used by the
    test suite to validate the NFA layer and by the schema tools for
    content-model diagnostics. *)

type t

val of_nfa : Nfa.t -> t
(** Subset construction; only reachable subsets are materialized. *)

val of_regex : alphabet:string list -> Regex.t -> t

val size : t -> int
(** Number of states (including the sink, if reachable). *)

val alphabet : t -> string list
val accepts : t -> string list -> bool
val is_empty : t -> bool

val complement : t -> t
(** Language complement over the automaton's alphabet. *)

val minimize : t -> t
(** Moore's partition-refinement minimization of the reachable part. *)

val equal : t -> t -> bool
(** [equal a b] is language equality. The automata must share an alphabet
    (raise [Invalid_argument] otherwise). *)

val subset : t -> t -> bool
(** [subset a b] holds iff L(a) ⊆ L(b); same alphabet requirement. *)
