type t =
  | Element of element
  | Text of string

and element = { name : string; attrs : (string * string) list; children : t list }

type forest = t list

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s

let name = function Element e -> Some e.name | Text _ -> None

let attr key = function
  | Element e -> List.assoc_opt key e.attrs
  | Text _ -> None

let children = function Element e -> e.children | Text _ -> []

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Text _ -> acc
  | Element e -> List.fold_left (fold f) acc e.children

let iter f t = fold (fun () n -> f n) () t

let text_content t =
  let buf = Buffer.create 16 in
  iter (function Text s -> Buffer.add_string buf s | Element _ -> ()) t;
  Buffer.contents buf

let size t = fold (fun n _ -> n + 1) 0 t
let forest_size f = List.fold_left (fun n t -> n + size t) 0 f

let rec depth = function
  | Text _ -> 1
  | Element { children = []; _ } -> 1
  | Element e -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 e.children

let rec equal a b =
  match a, b with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    String.equal x.name y.name
    && x.attrs = y.attrs
    && List.length x.children = List.length y.children
    && List.for_all2 equal x.children y.children
  | Text _, Element _ | Element _, Text _ -> false

let rec compare a b =
  match a, b with
  | Text x, Text y -> String.compare x y
  | Text _, Element _ -> -1
  | Element _, Text _ -> 1
  | Element x, Element y ->
    let c = String.compare x.name y.name in
    if c <> 0 then c
    else
      let c = Stdlib.compare x.attrs y.attrs in
      if c <> 0 then c else List.compare compare x.children y.children

(* Children are compared as multisets by sorting both sides with a
   canonical order that is itself insensitive to child order: we normalize
   recursively before sorting. *)
let rec normalize t =
  match t with
  | Text _ -> t
  | Element e ->
    let children = List.map normalize e.children in
    let children = List.sort compare children in
    let attrs = List.sort Stdlib.compare e.attrs in
    Element { e with attrs; children }

let equal_unordered a b = equal (normalize a) (normalize b)

let find_all p t =
  List.rev (fold (fun acc n -> if p n then n :: acc else acc) [] t)

let rec pp ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Element e ->
    Format.fprintf ppf "@[<hv 1><%s%a>%a</%s>@]" e.name pp_attrs e.attrs
      (Format.pp_print_list pp) e.children e.name

and pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) attrs
