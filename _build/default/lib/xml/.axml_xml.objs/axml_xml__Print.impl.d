lib/xml/print.ml: Buffer List String Tree
