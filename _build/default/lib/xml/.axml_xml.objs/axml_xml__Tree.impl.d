lib/xml/tree.ml: Buffer Format List Stdlib String
