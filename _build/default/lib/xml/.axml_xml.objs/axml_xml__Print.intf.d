lib/xml/print.mli: Tree
