lib/xml/parse.mli: Tree
