(** Hand-rolled XML parser.

    Supports the XML subset needed by the AXML system: elements with
    attributes, character data, CDATA sections, comments, processing
    instructions (skipped), and the five predefined entities plus numeric
    character references. Namespace prefixes are kept as part of the
    element name (e.g. ["axml:call"]). DOCTYPE declarations are skipped
    without validation. *)

exception Error of { line : int; col : int; message : string }
(** Raised on malformed input, with a 1-based source position. *)

val tree : string -> Tree.t
(** [tree s] parses [s] as a single XML document (one root element,
    possibly preceded/followed by misc). Raises {!Error}. *)

val forest : string -> Tree.forest
(** [forest s] parses a sequence of top-level trees (elements and
    character data), as exchanged in service call results. Raises
    {!Error}. *)

val tree_of_file : string -> Tree.t
(** [tree_of_file path] reads and parses a file. Raises {!Error} or
    [Sys_error]. *)

val error_to_string : exn -> string option
(** [error_to_string e] renders {!Error} payloads; [None] on other
    exceptions. *)
