(** Plain (non-active) XML trees.

    This is the substrate data type exchanged with simulated Web services
    and used for serialization. Active XML documents (with live function
    nodes) are defined in [Axml_core.Doc] and convert to/from this type. *)

type t =
  | Element of element
  | Text of string  (** character data leaf *)

and element = { name : string; attrs : (string * string) list; children : t list }

(** A forest is an ordered list of trees; service calls return forests. *)
type forest = t list

val element : ?attrs:(string * string) list -> string -> t list -> t
(** [element name children] builds an element node. *)

val text : string -> t
(** [text s] builds a character-data leaf. *)

val name : t -> string option
(** [name t] is the element name, or [None] for text nodes. *)

val attr : string -> t -> string option
(** [attr key t] looks up attribute [key] on an element node. *)

val children : t -> t list
(** [children t] is the child list of an element, [[]] for text nodes. *)

val text_content : t -> string
(** [text_content t] concatenates all text leaves below [t], in document
    order. *)

val size : t -> int
(** [size t] is the number of nodes (elements and text leaves) in [t]. *)

val forest_size : forest -> int

val depth : t -> int
(** [depth t] is the height of the tree; a leaf has depth 1. *)

val equal : t -> t -> bool
(** Structural equality, sensitive to child order and attribute order. *)

val equal_unordered : t -> t -> bool
(** Structural equality up to reordering of children and attributes
    (useful for comparing query witnesses). *)

val compare : t -> t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** [fold f init t] folds [f] over every node of [t] in document order. *)

val iter : (t -> unit) -> t -> unit

val find_all : (t -> bool) -> t -> t list
(** [find_all p t] lists all nodes of [t] satisfying [p], in document
    order. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (single line). Use {!Print} for proper serialization. *)
