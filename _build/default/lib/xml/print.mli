(** XML serialization.

    Round-trips with {!Parse}: [Parse.tree (Print.to_string t)] is
    structurally equal to [t] (whitespace-only text leaves excepted, which
    the parser drops between elements). *)

val to_string : ?indent:int -> Tree.t -> string
(** [to_string ?indent t] serializes [t]. With [indent] (a positive step,
    e.g. 2), elements whose children are all elements are pretty-printed
    over several lines; mixed content stays on one line so that text is
    preserved exactly. Without [indent] (default) output is compact. *)

val forest_to_string : ?indent:int -> Tree.forest -> string

val escape_text : string -> string
(** Escapes [& < >] for use as character data. *)

val escape_attr : string -> string
(** Escapes ampersand, angle brackets and double quote for use inside a
    double-quoted attribute value. *)

val byte_size : Tree.t -> int
(** [byte_size t] is the length of the compact serialization — the unit
    used by the service cost model for data-transfer accounting. *)

val forest_byte_size : Tree.forest -> int
