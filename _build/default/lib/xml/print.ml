let escape ~quot s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape ~quot:false
let escape_attr = escape ~quot:true

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let all_elements = List.for_all (function Tree.Element _ -> true | Tree.Text _ -> false)

let to_buffer ?indent buf t =
  let pad n =
    match indent with
    | None -> ()
    | Some step ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (n * step) ' ')
  in
  let rec go level t =
    match t with
    | Tree.Text s -> Buffer.add_string buf (escape_text s)
    | Tree.Element { name; attrs; children } -> (
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      add_attrs buf attrs;
      match children with
      | [] -> Buffer.add_string buf "/>"
      | children ->
        Buffer.add_char buf '>';
        let pretty = indent <> None && all_elements children in
        List.iter
          (fun c ->
            if pretty then pad (level + 1);
            go (level + 1) c)
          children;
        if pretty then pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>')
  in
  go 0 t

let to_string ?indent t =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf t;
  Buffer.contents buf

let forest_to_string ?indent forest =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i t ->
      if i > 0 && indent <> None then Buffer.add_char buf '\n';
      to_buffer ?indent buf t)
    forest;
  Buffer.contents buf

let byte_size t = String.length (to_string t)
let forest_byte_size f = List.fold_left (fun n t -> n + byte_size t) 0 f
