exception Error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let fail st message =
  raise (Error { line = st.line; col = st.pos - st.bol + 1; message })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  (if not (eof st) then
     match st.src.[st.pos] with
     | '\n' ->
       st.line <- st.line + 1;
       st.bol <- st.pos + 1
     | _ -> ());
  st.pos <- st.pos + 1

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C, found %C" c (peek st));
  advance st

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let skip st n =
  for _ = 1 to n do
    advance st
  done

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Entity and character references. *)
let parse_reference st =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    let ok c =
      (c >= '0' && c <= '9')
      || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
    in
    while ok (peek st) do
      advance st
    done;
    if st.pos = start then fail st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "invalid character reference"
    in
    (* Encode the code point as UTF-8. *)
    let buf = Buffer.create 4 in
    (try Buffer.add_utf_8_uchar buf (Uchar.of_int code)
     with Invalid_argument _ -> fail st "character reference out of range");
    Buffer.contents buf
  end
  else
    let name = parse_name st in
    expect st ';';
    match name with
    | "amp" -> "&"
    | "lt" -> "<"
    | "gt" -> ">"
    | "quot" -> "\""
    | "apos" -> "'"
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      loop ()
    end
    else if peek st = '<' then fail st "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let parse_attrs st =
  let rec loop acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let key = parse_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = parse_attr_value st in
      loop ((key, value) :: acc)
    end
    else List.rev acc
  in
  loop []

let skip_until st closer what =
  let n = String.length closer in
  let rec loop () =
    if eof st then fail st (Printf.sprintf "unterminated %s" what)
    else if looking_at st closer then skip st n
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

(* Skips comments, processing instructions and DOCTYPE; returns [true] if
   something was skipped. *)
let skip_misc st =
  if looking_at st "<!--" then begin
    skip st 4;
    skip_until st "-->" "comment";
    true
  end
  else if looking_at st "<?" then begin
    skip st 2;
    skip_until st "?>" "processing instruction";
    true
  end
  else if looking_at st "<!DOCTYPE" then begin
    (* Skip to the matching '>', tolerating an internal subset in [...]. *)
    skip st 9;
    let rec loop depth =
      if eof st then fail st "unterminated DOCTYPE"
      else
        match peek st with
        | '[' ->
          advance st;
          loop (depth + 1)
        | ']' ->
          advance st;
          loop (depth - 1)
        | '>' when depth = 0 -> advance st
        | _ ->
          advance st;
          loop depth
    in
    loop 0;
    true
  end
  else false

let rec parse_content st acc =
  if eof st then List.rev acc
  else if looking_at st "</" then List.rev acc
  else if looking_at st "<![CDATA[" then begin
    skip st 9;
    let start = st.pos in
    let rec find () =
      if eof st then fail st "unterminated CDATA section"
      else if looking_at st "]]>" then ()
      else begin
        advance st;
        find ()
      end
    in
    find ();
    let data = String.sub st.src start (st.pos - start) in
    skip st 3;
    parse_content st (Tree.Text data :: acc)
  end
  else if skip_misc st then parse_content st acc
  else if peek st = '<' then parse_content st (parse_element st :: acc)
  else begin
    (* Character data, with references resolved. Whitespace-only runs
       between elements are dropped. *)
    let buf = Buffer.create 16 in
    let all_space = ref true in
    let rec loop () =
      if eof st || peek st = '<' then ()
      else if peek st = '&' then begin
        all_space := false;
        Buffer.add_string buf (parse_reference st);
        loop ()
      end
      else begin
        if not (is_space (peek st)) then all_space := false;
        Buffer.add_char buf (peek st);
        advance st;
        loop ()
      end
    in
    loop ();
    if !all_space then parse_content st acc
    else parse_content st (Tree.Text (Buffer.contents buf) :: acc)
  end

and parse_element st =
  expect st '<';
  let name = parse_name st in
  let attrs = parse_attrs st in
  skip_space st;
  if looking_at st "/>" then begin
    skip st 2;
    Tree.Element { name; attrs; children = [] }
  end
  else begin
    expect st '>';
    let children = parse_content st [] in
    if not (looking_at st "</") then fail st (Printf.sprintf "unclosed element <%s>" name);
    skip st 2;
    let closing = parse_name st in
    if closing <> name then
      fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing name);
    skip_space st;
    expect st '>';
    Tree.Element { name; attrs; children }
  end

let forest src =
  let st = make src in
  let trees = parse_content st [] in
  if not (eof st) then fail st "unexpected closing tag at top level";
  trees

let tree src =
  let st = make src in
  let rec skip_prolog () =
    skip_space st;
    if skip_misc st then skip_prolog ()
  in
  skip_prolog ();
  if eof st then fail st "empty document";
  if peek st <> '<' || peek2 st = '/' then fail st "expected a root element";
  let root = parse_element st in
  skip_prolog ();
  if not (eof st) then fail st "content after the root element";
  root

let tree_of_file path =
  let ic = open_in_bin path in
  let finally () = close_in_noerr ic in
  Fun.protect ~finally (fun () ->
      let len = in_channel_length ic in
      tree (really_input_string ic len))

let error_to_string = function
  | Error { line; col; message } ->
    Some (Printf.sprintf "XML parse error at line %d, column %d: %s" line col message)
  | _ -> None
