(** AXML document validation against a schema τ.

    The paper (§1, §2) relies on its companion work [21] for typing: a
    document conforms to τ when every element's children — where a data
    leaf reads as the [data] symbol and a function node reads as its
    service name — spell a word of the element's content model, and every
    call's parameters spell a word of the service's input type.

    Names not defined by the schema are unconstrained (their content is
    not checked), consistent with {!Sat}'s soundness convention. *)

type issue = {
  path : string list;  (** element labels from the root to the offending node *)
  message : string;
}

val pp_issue : Format.formatter -> issue -> unit

val document : Schema.t -> Axml_doc.t -> issue list
(** All conformance violations, in document order; [[]] means the
    document conforms. *)

val tree : Schema.t -> Axml_xml.Tree.t -> issue list
(** Same, over plain XML (with [<axml:call>] elements read as calls). *)

val conforms : Schema.t -> Axml_doc.t -> bool
