(** Schemas τ for function signatures and element content models (§2,
    Fig. 2 of the paper).

    A schema associates
    - with each function name, a pair of regular expressions describing
      its input and output types, and
    - with each element name, a regular expression describing the labels
      of its children.

    Regular expressions range over element names, function names and the
    keyword [data] (a data-value leaf). Names not defined by the schema
    are {e unconstrained}: they may contain anything. This keeps the
    type-based pruning {e safe} — with an incomplete schema, relevance
    analysis degrades gracefully to "anything is possible" instead of
    wrongly pruning calls.

    Concrete syntax (one definition per line, [#] starts a comment):
    {v
    functions:
      gethotels        = [in: data, out: hotel*]
      getrating        = [in: data, out: data]
      getnearbyrestos  = [in: data, out: restaurant*]
    elements:
      guide      = hotel*.gethotels?
      hotel      = name.address.rating.nearby
      rating     = (data | getrating)
      name       = data
    v} *)

type signature = { input : Axml_automata.Regex.t; output : Axml_automata.Regex.t }

type t

val empty : t

val add_function : t -> string -> signature -> t
(** Replaces any previous definition of the same name. *)

val add_element : t -> string -> Axml_automata.Regex.t -> t

val find_function : t -> string -> signature option
val find_element : t -> string -> Axml_automata.Regex.t option
val function_names : t -> string list
(** In definition order. *)

val element_names : t -> string list

val data_keyword : string
(** ["data"] — the reserved symbol for data-value leaves. *)

val is_function_symbol : t -> string -> bool
val is_element_symbol : t -> string -> bool

val all_symbols : t -> string list
(** Every symbol defined by or mentioned in the schema (functions,
    elements, [data], and referenced-but-undefined names). *)

exception Parse_error of { line : int; message : string }

val of_string : string -> t
(** Parses the concrete syntax above; raises {!Parse_error}. *)

val of_file : string -> t
val to_string : t -> string
(** Re-parsable rendering. *)

val pp : Format.formatter -> t -> unit

val check : t -> string list
(** Diagnostics: names referenced in content models or output types but
    defined neither as elements nor as functions (they will be treated as
    unconstrained). Returns a human-readable warning per name. *)
