module Regex = Axml_automata.Regex

type signature = { input : Regex.t; output : Regex.t }

type t = {
  functions : (string * signature) list; (* definition order, newest wins *)
  elements : (string * Regex.t) list;
}

let empty = { functions = []; elements = [] }

let add_function t name signature =
  { t with functions = List.remove_assoc name t.functions @ [ (name, signature) ] }

let add_element t name re =
  { t with elements = List.remove_assoc name t.elements @ [ (name, re) ] }

let find_function t name = List.assoc_opt name t.functions
let find_element t name = List.assoc_opt name t.elements
let function_names t = List.map fst t.functions
let element_names t = List.map fst t.elements

let data_keyword = "data"

let is_function_symbol t name = List.mem_assoc name t.functions
let is_element_symbol t name = List.mem_assoc name t.elements

let all_symbols t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      out := s :: !out
    end
  in
  add data_keyword;
  List.iter (fun (name, _) -> add name) t.functions;
  List.iter (fun (name, _) -> add name) t.elements;
  List.iter
    (fun (_, { input; output }) ->
      List.iter add (Regex.symbols input);
      List.iter add (Regex.symbols output))
    t.functions;
  List.iter (fun (_, re) -> List.iter add (Regex.symbols re)) t.elements;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Concrete syntax.                                                    *)

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

let strip_comment s =
  match String.index_opt s '#' with None -> s | Some i -> String.sub s 0 i

type section = No_section | In_functions | In_elements

let parse_signature lineno rhs =
  (* rhs has the shape [in: RE, out: RE] — the comma separating the two
     fields is the first top-level comma. *)
  let rhs = String.trim rhs in
  let n = String.length rhs in
  if n < 2 || rhs.[0] <> '[' || rhs.[n - 1] <> ']' then
    fail lineno "expected a signature of the form [in: ..., out: ...]";
  let body = String.sub rhs 1 (n - 2) in
  let comma =
    let rec find i depth =
      if i >= String.length body then fail lineno "expected ',' between in and out"
      else
        match body.[i] with
        | '(' | '[' -> find (i + 1) (depth + 1)
        | ')' | ']' -> find (i + 1) (depth - 1)
        | ',' when depth = 0 -> i
        | _ -> find (i + 1) depth
    in
    find 0 0
  in
  let left = String.trim (String.sub body 0 comma) in
  let right = String.trim (String.sub body (comma + 1) (String.length body - comma - 1)) in
  let field prefix s =
    let plen = String.length prefix in
    if String.length s >= plen && String.sub s 0 plen = prefix then
      String.trim (String.sub s plen (String.length s - plen))
    else fail lineno (Printf.sprintf "expected '%s'" prefix)
  in
  let input_src = field "in:" left in
  let output_src = field "out:" right in
  let parse_re src =
    try Regex.of_string src with Failure m -> fail lineno ("bad regular expression: " ^ m)
  in
  { input = parse_re input_src; output = parse_re output_src }

let of_string src =
  let lines = String.split_on_char '\n' src in
  let schema = ref empty in
  let section = ref No_section in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line = "" then ()
      else if line = "functions:" then section := In_functions
      else if line = "elements:" then section := In_elements
      else
        match String.index_opt line '=' with
        | None -> fail lineno "expected 'name = ...' or a section header"
        | Some eq -> (
          let name = String.trim (String.sub line 0 eq) in
          let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
          if name = "" then fail lineno "missing name before '='";
          if name = data_keyword then fail lineno "'data' is a reserved keyword";
          match !section with
          | No_section -> fail lineno "definition outside of a section"
          | In_functions -> schema := add_function !schema name (parse_signature lineno rhs)
          | In_elements -> (
            match Regex.of_string rhs with
            | re -> schema := add_element !schema name re
            | exception Failure m -> fail lineno ("bad regular expression: " ^ m))))
    lines;
  !schema

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let to_string t =
  let buf = Buffer.create 256 in
  if t.functions <> [] then begin
    Buffer.add_string buf "functions:\n";
    List.iter
      (fun (name, { input; output }) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s = [in: %s, out: %s]\n" name (Regex.to_string input)
             (Regex.to_string output)))
      t.functions
  end;
  if t.elements <> [] then begin
    Buffer.add_string buf "elements:\n";
    List.iter
      (fun (name, re) ->
        Buffer.add_string buf (Printf.sprintf "  %s = %s\n" name (Regex.to_string re)))
      t.elements
  end;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let check t =
  let defined s = s = data_keyword || is_function_symbol t s || is_element_symbol t s in
  List.filter_map
    (fun s ->
      if defined s then None
      else Some (Printf.sprintf "symbol %S is referenced but not defined; treated as unconstrained" s))
    (all_symbols t)
