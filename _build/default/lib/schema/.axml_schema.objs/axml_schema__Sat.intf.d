lib/schema/sat.mli: Axml_query Schema
