lib/schema/schema.mli: Axml_automata Format
