lib/schema/validate.ml: Axml_automata Axml_doc Format List Printf Schema String
