lib/schema/schema.ml: Axml_automata Buffer Format Fun Hashtbl List Printf String
