lib/schema/sat.ml: Array Axml_automata Axml_query Hashtbl List Queue Schema String
