lib/schema/validate.mli: Axml_doc Axml_xml Format Schema
