module Regex = Axml_automata.Regex
module Doc = Axml_doc

type issue = { path : string list; message : string }

let pp_issue ppf { path; message } =
  Format.fprintf ppf "/%s: %s" (String.concat "/" path) message

(* The symbol a child contributes to its parent's content word. *)
let child_symbol (n : Doc.node) =
  match n.Doc.label with
  | Doc.Elem name -> name
  | Doc.Data _ -> Schema.data_keyword
  | Doc.Call { fname; _ } -> fname

let check_word ~path ~what re children issues =
  let word = List.map child_symbol children in
  if Regex.matches re word then issues
  else
    let message =
      Printf.sprintf "%s [%s] does not match %s" what (String.concat " " word)
        (Regex.to_string re)
    in
    { path; message } :: issues

let document schema d =
  let issues = ref [] in
  let rec go path (n : Doc.node) =
    match n.Doc.label with
    | Doc.Data _ -> ()
    | Doc.Elem name ->
      let path = path @ [ name ] in
      (match Schema.find_element schema name with
      | None -> () (* unconstrained *)
      | Some re ->
        issues := check_word ~path ~what:("content of <" ^ name ^ ">") re n.Doc.children !issues);
      List.iter (go path) n.Doc.children
    | Doc.Call { fname; _ } ->
      let path = path @ [ fname ^ "()" ] in
      (match Schema.find_function schema fname with
      | None -> ()
      | Some { Schema.input; _ } ->
        issues :=
          check_word ~path ~what:("parameters of " ^ fname) input n.Doc.children !issues);
      List.iter (go path) n.Doc.children
  in
  go [] (Doc.root d);
  List.rev !issues

let tree schema t = document schema (Doc.of_xml t)
let conforms schema d = document schema d = []
