(** The may-influence relation between relevance queries, its layers, and
    the independence condition (§4.2–§4.4).

    [q_v] may influence [q_v'] iff invoking a call retrieved by [q_v] can
    put new calls where [q_v'] looks — by Prop. 3, iff some word of the
    path language of [q_v^lin] is a prefix of some word of [q_v'^lin].
    Both tests are decided on Glushkov automata over a common symbolic
    alphabet. *)

val may_influence : Relevance.t -> Relevance.t -> bool
(** Prop. 3: non-emptiness of [L(lin_v) ∩ prefixes(L(lin_v'))]. *)

val disjoint_lin : Relevance.t -> Relevance.t -> bool
(** [L(lin_v) ∩ L(lin_v') = ∅] — the building block of condition ★. *)

val independent_in_layer : Relevance.t -> Relevance.t list -> bool
(** Condition ★ (§4.4): the query's path language is disjoint from every
    {e other} member's. All the calls an independent query retrieves can
    be invoked in parallel. *)

val layers : Relevance.t list -> Relevance.t list list
(** Strongly connected components of may-influence, in a topological
    order compatible with the ≼ partial order (§4.3): a layer never
    influences an earlier one. The result is a partition of the input. *)
