(** The naive baseline (§1): invoke every call in the document
    recursively until a fixpoint (or a budget) is reached, then evaluate
    the query over the fully materialized document. *)

module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Doc = Axml_doc
module Registry = Axml_services.Registry

type report = {
  answers : Eval.binding list;
  invoked : int;
  rounds : int;  (** fixpoint iterations *)
  simulated_seconds : float;
  bytes_transferred : int;
  complete : bool;  (** the fixpoint was reached within the budget *)
}

let call_params (call : Doc.node) = List.map Doc.node_to_xml call.Doc.children

let call_name_exn (call : Doc.node) =
  match call.Doc.label with
  | Doc.Call { fname; _ } -> fname
  | Doc.Elem _ | Doc.Data _ -> invalid_arg "not a function node"

(** Materializes the document in place. With [parallel:true] each round of
    visible calls is accounted as one parallel batch (max cost); otherwise
    invocations are sequential (summed costs). *)
let materialize ?(max_calls = 100_000) ?(parallel = true) registry (d : Doc.t) =
  let invoked = ref 0 in
  let rounds = ref 0 in
  let seconds = ref 0.0 in
  let bytes = ref 0 in
  let budget_hit = ref false in
  let continue = ref true in
  while !continue do
    let calls = Doc.visible_function_nodes d in
    if calls = [] then continue := false
    else begin
      incr rounds;
      let round_cost = ref 0.0 in
      List.iter
        (fun call ->
          if !invoked >= max_calls then budget_hit := true
          else begin
            let result, inv =
              Registry.invoke registry ~name:(call_name_exn call) ~params:(call_params call) ()
            in
            ignore (Doc.replace_call d call result);
            incr invoked;
            bytes := !bytes + inv.Registry.request_bytes + inv.Registry.response_bytes;
            if parallel then round_cost := Float.max !round_cost inv.Registry.cost
            else round_cost := !round_cost +. inv.Registry.cost
          end)
        calls;
      seconds := !seconds +. !round_cost;
      if !budget_hit then continue := false
    end
  done;
  (!invoked, !rounds, !seconds, !bytes, not !budget_hit)

let run ?max_calls ?parallel registry (q : P.t) (d : Doc.t) : report =
  let invoked, rounds, simulated_seconds, bytes_transferred, complete =
    materialize ?max_calls ?parallel registry d
  in
  let answers = Eval.eval q d in
  { answers; invoked; rounds; simulated_seconds; bytes_transferred; complete }
