module Regex = Axml_automata.Regex
module Schema = Axml_schema.Schema
module Doc = Axml_doc

type verdict = Terminates | May_diverge of string list

let pp_verdict ppf = function
  | Terminates -> Format.pp_print_string ppf "terminates"
  | May_diverge cycle ->
    Format.fprintf ppf "may diverge (%s)" (String.concat " -> " cycle)

(* Symbols directly producible by a symbol: an element exposes its content
   model's symbols, a declared function those of its output type. *)
let successors schema symbol =
  if String.equal symbol Schema.data_keyword then []
  else
    match Schema.find_function schema symbol with
    | Some { Schema.output; _ } -> Regex.occurring_symbols output
    | None -> (
      match Schema.find_element schema symbol with
      | Some re -> Regex.occurring_symbols re
      | None -> [])

let is_unconstrained schema symbol =
  (not (String.equal symbol Schema.data_keyword))
  && (not (Schema.is_function_symbol schema symbol))
  && not (Schema.is_element_symbol schema symbol)

(* Declared services reachable from a symbol (through elements and other
   services); [`Unknown s] if an unconstrained symbol is reachable. *)
let reachable_services schema start =
  let seen = Hashtbl.create 16 in
  let services = ref [] in
  let unknown = ref None in
  let rec visit symbol =
    if not (Hashtbl.mem seen symbol) then begin
      Hashtbl.replace seen symbol ();
      if is_unconstrained schema symbol then begin
        if !unknown = None then unknown := Some symbol
      end
      else begin
        if Schema.is_function_symbol schema symbol then services := symbol :: !services;
        List.iter visit (successors schema symbol)
      end
    end
  in
  visit start;
  match !unknown with
  | Some s -> Error s
  | None -> Ok (List.rev !services)

let call_graph schema =
  List.map
    (fun f ->
      let targets =
        match reachable_services schema f with
        | Ok services -> List.filter (fun g -> not (String.equal g f)) services
        | Error _ -> []
      in
      (f, targets))
    (Schema.function_names schema)

(* DFS cycle detection over services, returning a witness chain. *)
let find_cycle schema (roots : string list) =
  let color = Hashtbl.create 16 in
  (* 0 = in progress, 1 = done *)
  let exception Cycle of string list in
  let exception Unknown of string in
  let rec visit stack symbol =
    if is_unconstrained schema symbol then raise (Unknown symbol);
    match Hashtbl.find_opt color symbol with
    | Some 1 -> ()
    | Some _ ->
      (* Back edge: the loop runs from the earlier occurrence of [symbol]
         on the stack down to here. Only loops carrying at least one
         service can grow the document forever — element recursion in a
         type (as in "part = part star") describes finite documents, it
         does not produce them. *)
      (* the stack is most-recent-first, so collecting up to the earlier
         occurrence yields the cycle in invocation order *)
      let rec cut acc = function
        | [] -> None
        | s :: rest -> if String.equal s symbol then Some (s :: acc) else cut (s :: acc) rest
      in
      (match cut [] stack with
      | Some cycle when List.exists (Schema.is_function_symbol schema) cycle ->
        raise (Cycle (cycle @ [ symbol ]))
      | Some _ | None -> ())
    | None ->
      Hashtbl.replace color symbol 0;
      List.iter (visit (symbol :: stack)) (successors schema symbol);
      Hashtbl.replace color symbol 1
  in
  try
    List.iter (visit []) roots;
    Terminates
  with
  | Cycle chain -> May_diverge chain
  | Unknown s -> May_diverge [ s ^ " (unconstrained)" ]

let analyze schema = find_cycle schema (Schema.function_names schema)

let analyze_doc schema d =
  let roots =
    List.filter_map
      (fun (n : Doc.node) ->
        match n.Doc.label with Doc.Call { fname; _ } -> Some fname | _ -> None)
      (Doc.function_nodes d)
    |> List.sort_uniq String.compare
  in
  find_cycle schema roots
