(** The may-influence relation between relevance queries, its layers, and
    the independence condition (§4.2–4.4).

    [q_v] may influence [q_v'] iff invoking a call retrieved by [q_v] can
    put new calls where [q_v'] looks — by Prop. 3, iff some word of the
    path language of [q_v^lin] is a prefix of some word of [q_v'^lin].
    Layers are the strongly connected components of may-influence,
    processed in a topological order. Inside a layer, [q_v] is
    {e independent} (condition ★) when its path language is disjoint from
    every other member's, in which case all the calls it retrieves can be
    invoked in parallel. *)

module Nfa = Axml_automata.Nfa

let may_influence (a : Relevance.t) (b : Relevance.t) =
  let ra = Relevance.lin_regex a and rb = Relevance.lin_regex b in
  let alphabet = Nfa.common_alphabet [ ra; rb ] in
  let na = Nfa.of_regex ~alphabet ra in
  let nb_prefixes = Nfa.prefix_closure (Nfa.of_regex ~alphabet rb) in
  Nfa.intersects na nb_prefixes

let disjoint_lin (a : Relevance.t) (b : Relevance.t) =
  let ra = Relevance.lin_regex a and rb = Relevance.lin_regex b in
  let alphabet = Nfa.common_alphabet [ ra; rb ] in
  not (Nfa.intersects (Nfa.of_regex ~alphabet ra) (Nfa.of_regex ~alphabet rb))

let independent_in_layer (q : Relevance.t) (layer : Relevance.t list) =
  List.for_all (fun q' -> q'.Relevance.source = q.Relevance.source || disjoint_lin q q') layer

(* Layers: SCC condensation of the may-influence graph, in a topological
   order compatible with the partial order (≼) between components. The
   query sets are small (one relevance query per node of the original
   query), so an O(n³) transitive closure is perfectly adequate. *)
let layers (queries : Relevance.t list) : Relevance.t list list =
  let qs = Array.of_list queries in
  let n = Array.length qs in
  if n = 0 then []
  else begin
    let reach = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      reach.(i).(i) <- true;
      for j = 0 to n - 1 do
        if i <> j && may_influence qs.(i) qs.(j) then reach.(i).(j) <- true
      done
    done;
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if reach.(i).(k) then
          for j = 0 to n - 1 do
            if reach.(k).(j) then reach.(i).(j) <- true
          done
      done
    done;
    (* Equivalence classes: mutually reachable queries. *)
    let class_of = Array.make n (-1) in
    let classes = ref [] in
    let nclasses = ref 0 in
    for i = 0 to n - 1 do
      if class_of.(i) = -1 then begin
        let members = ref [] in
        for j = n - 1 downto 0 do
          if class_of.(j) = -1 && reach.(i).(j) && reach.(j).(i) then begin
            class_of.(j) <- !nclasses;
            members := j :: !members
          end
        done;
        classes := !members :: !classes;
        incr nclasses
      end
    done;
    let classes = Array.of_list (List.rev !classes) in
    (* Topological order of the condensation: repeatedly emit a class with
       no remaining predecessor. *)
    let emitted = Array.make !nclasses false in
    let has_pred c =
      let pred = ref false in
      for i = 0 to n - 1 do
        if
          (not !pred)
          && (not emitted.(class_of.(i)))
          && class_of.(i) <> c
          && List.exists (fun j -> reach.(i).(j)) classes.(c)
        then pred := true
      done;
      !pred
    in
    let order = ref [] in
    for _ = 1 to !nclasses do
      let next = ref (-1) in
      for c = !nclasses - 1 downto 0 do
        if (not emitted.(c)) && not (has_pred c) then next := c
      done;
      (* A DAG always has a source among the remaining classes. *)
      assert (!next >= 0);
      emitted.(!next) <- true;
      order := !next :: !order
    done;
    List.rev_map (fun c -> List.map (fun i -> qs.(i)) classes.(c)) !order
  end
