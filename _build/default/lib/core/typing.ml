(** Type-based pruning of relevance queries (§5, with the lenient variant
    of §6.1).

    Holds a satisfiability checker over the original query's subtrees and
    rewrites relevance queries so that every star function node only
    matches the concrete services whose (derived) output types can
    satisfy the query subtree that function stands for. Function names
    unknown to the schema always remain eligible (no wrongful pruning),
    which also implements the paper's dynamic enrichment: names brought
    by new calls become alternatives of the subtrees they satisfy. *)

module P = Axml_query.Pattern
module Schema = Axml_schema.Schema
module Sat = Axml_schema.Sat

type t = {
  schema : Schema.t;
  sat : Sat.t;
  original : P.t;
  (* pid of an original-query node -> that node (for sub_q_v lookups) *)
  by_pid : (int, P.node) Hashtbl.t;
}

let create ?(mode = Sat.Exact) schema (q : P.t) =
  let by_pid = Hashtbl.create 32 in
  List.iter (fun (n : P.node) -> Hashtbl.replace by_pid n.P.pid n) (P.nodes q);
  { schema; sat = Sat.create ~mode schema [ q.P.root ]; original = q; by_pid }

let sub_query t pid =
  match Hashtbl.find_opt t.by_pid pid with
  | Some n -> n
  | None -> invalid_arg "Typing: pid not in the original query"

(** Is service [fname] able to contribute the original-query subtree
    rooted at node [source]? *)
let call_eligible t ~source ~fname =
  Sat.function_satisfies t.sat ~fname (sub_query t source)

(** The declared services eligible for [source], plus every name of
    [known_functions] the schema does not declare. *)
let eligible_names t ~known_functions ~source =
  let p = sub_query t source in
  List.filter
    (fun f ->
      (not (Schema.is_function_symbol t.schema f)) || Sat.function_satisfies t.sat ~fname:f p)
    known_functions

(** Rewrites a relevance query into its refined version (§5): star
    function nodes become concrete name lists; OR branches whose function
    list is empty are dropped (collapsing single-child ORs); returns
    [None] when the output node itself has no eligible service — the
    refined NFQ can retrieve nothing. *)
let refine t ~known_functions (rq : Relevance.t) : Relevance.t option =
  Relevance.rewrite_funs rq ~f:(fun ~fun_pid:_ ~source ->
      match eligible_names t ~known_functions ~source with
      | [] -> `Drop
      | names -> `Relabel (P.Fun (P.Named names)))
