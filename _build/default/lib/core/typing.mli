(** Type-based pruning of relevance queries (§5, with the lenient variant
    of §6.1).

    Wraps a satisfiability checker ({!Axml_schema.Sat}) over the original
    query's subtrees and rewrites relevance queries so that star function
    nodes only match the services whose derived output types can satisfy
    the query subtree they stand for. Names unknown to the schema always
    stay eligible (no wrongful pruning), which also gives the paper's
    dynamic enrichment: names brought by new calls become alternatives of
    the subtrees they satisfy. *)

type t

val create : ?mode:Axml_schema.Sat.mode -> Axml_schema.Schema.t -> Axml_query.Pattern.t -> t
(** [create schema q] precomputes satisfiability for every subtree of
    [q] (default mode [Exact]). *)

val call_eligible : t -> source:int -> fname:string -> bool
(** Can service [fname] contribute the original-query subtree rooted at
    node [source]? Raises [Invalid_argument] if [source] is not a node of
    the original query. *)

val eligible_names : t -> known_functions:string list -> source:int -> string list
(** The members of [known_functions] eligible for [source]: declared
    services that satisfy the subtree, plus every undeclared name. *)

val refine : t -> known_functions:string list -> Relevance.t -> Relevance.t option
(** The refined relevance query (§5): star function nodes become concrete
    name lists; OR branches with no eligible service are dropped; [None]
    when the output node itself has none (the refined NFQ can retrieve
    nothing). *)
