lib/core/influence.mli: Relevance
