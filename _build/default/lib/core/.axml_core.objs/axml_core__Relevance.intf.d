lib/core/relevance.mli: Axml_automata Axml_doc Axml_query Format
