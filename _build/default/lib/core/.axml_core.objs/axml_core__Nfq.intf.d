lib/core/nfq.mli: Axml_query Relevance
