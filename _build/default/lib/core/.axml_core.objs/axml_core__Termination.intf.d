lib/core/termination.mli: Axml_doc Axml_schema Format
