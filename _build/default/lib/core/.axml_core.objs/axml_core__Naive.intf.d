lib/core/naive.mli: Axml_doc Axml_query Axml_services Axml_xml
