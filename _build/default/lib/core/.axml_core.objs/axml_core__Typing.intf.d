lib/core/typing.mli: Axml_query Axml_schema Relevance
