lib/core/nfq.ml: Axml_query List Relevance
