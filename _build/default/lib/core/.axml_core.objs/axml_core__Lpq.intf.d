lib/core/lpq.mli: Axml_query Relevance
