lib/core/fguide.mli: Axml_doc Axml_query Axml_xml
