lib/core/lazy_eval.ml: Axml_doc Axml_query Axml_schema Axml_services Fguide Float Hashtbl Influence List Logs Lpq Naive Nfq Option Relevance Sys Typing
