lib/core/lpq.ml: Axml_query Hashtbl List Relevance
