lib/core/typing.ml: Axml_query Axml_schema Hashtbl List Relevance
