lib/core/lazy_eval.mli: Axml_doc Axml_query Axml_schema Axml_services
