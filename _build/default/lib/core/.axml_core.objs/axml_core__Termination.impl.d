lib/core/termination.ml: Axml_automata Axml_doc Axml_schema Format Hashtbl List String
