lib/core/naive.ml: Axml_doc Axml_query Axml_services Float List
