lib/core/relevance.ml: Axml_doc Axml_query Format List
