lib/core/influence.ml: Array Axml_automata List Relevance
