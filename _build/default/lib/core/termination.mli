(** Sufficient conditions for termination of rewritings (§2 defers this
    to the companion work [2]; the evaluator otherwise relies on call
    budgets).

    A rewriting can only diverge when invoking calls keeps producing new
    calls forever. Over the schema this is visible in the {e call graph}:
    service [f] has an edge to service [g] when [g] may appear
    (transitively, through element content models) in a forest derived
    from [f]'s output type. If the portion of the call graph reachable
    from a document's calls is acyclic, every rewriting of that document
    terminates. The converse does not hold (a cyclic signature may still
    always bottom out at run time), so the analysis answers
    [May_diverge], never "diverges". *)

type verdict =
  | Terminates
  | May_diverge of string list
      (** a witness: a cyclic chain of services [f1; f2; …; f1], or a
          single unconstrained symbol whose content is unknown *)

val call_graph : Axml_schema.Schema.t -> (string * string list) list
(** For each declared service, the declared services its output may
    (transitively) bring into the document. *)

val analyze : Axml_schema.Schema.t -> verdict
(** Over all declared services. *)

val analyze_doc : Axml_schema.Schema.t -> Axml_doc.t -> verdict
(** Restricted to the services reachable from the calls present in the
    document. Conservatively reports [May_diverge] when an undeclared
    service is reachable (its output is unconstrained). *)

val pp_verdict : Format.formatter -> verdict -> unit
