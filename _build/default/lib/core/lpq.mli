(** Linear path queries (§3.1): the relaxed relevance queries.

    For each node [v] of the original query, keep only the linear path
    from the root and put a star function node at [v]'s position. They
    retrieve a superset of what the NFQs retrieve (all filtering
    conditions are dropped) but are much cheaper — and can be answered
    directly on an F-guide (§6.2). *)

val of_node : Axml_query.Pattern.t -> Axml_query.Pattern.node -> Relevance.t

val of_query : Axml_query.Pattern.t -> Relevance.t list
(** One LPQ per node, with duplicates (same steps, same final axis)
    removed. *)
