(** Linear path queries (§3.1).

    The relaxed relevance queries: for each node [v] of the original
    query, keep only the linear path from the root to [v] and put a
    star-labeled function node at [v]'s position. They retrieve a
    superset of the calls the NFQs retrieve (all filtering conditions are
    dropped), but are much cheaper to evaluate — and can be answered
    directly on an F-guide (§6.2). *)

module P = Axml_query.Pattern

let of_node (q : P.t) (v : P.node) : Relevance.t =
  let lin = P.linear_part q v in
  let out = P.make ~axis:v.P.axis ~result:true (P.Fun P.Any_fun) [] in
  let root =
    List.fold_right
      (fun (axis, label) continuation -> P.make ~axis label [ continuation ])
      lin out
  in
  (* [fold_right] builds bottom-up, so the axes end up attached to the
     right nodes: each step's axis belongs to the node it labels. *)
  {
    Relevance.query = P.query root;
    source = v.P.pid;
    target = out.P.pid;
    target_axis = v.P.axis;
    fun_sources = [ (out.P.pid, v.P.pid) ];
    lin;
  }

(* Two LPQs are redundant when they have the same steps and the same
   final axis; keep the first (its [source] is then one representative
   original node). *)
let of_query (q : P.t) : Relevance.t list =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun v ->
      let lpq = of_node q v in
      let key = (lpq.Relevance.lin, lpq.Relevance.target_axis) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        Some lpq
      end)
    (P.nodes q)
