(** The naive baseline (§1): invoke every call in the document
    recursively until a fixpoint (or a budget) is reached, then evaluate
    the query over the fully materialized document. *)

type report = {
  answers : Axml_query.Eval.binding list;
  invoked : int;
  rounds : int;  (** fixpoint iterations *)
  simulated_seconds : float;
  bytes_transferred : int;
  complete : bool;  (** the fixpoint was reached within the budget *)
}

val call_params : Axml_doc.node -> Axml_xml.Tree.forest
(** A call's parameter forest, serialized (nested calls included as
    [<axml:call>] elements). *)

val call_name_exn : Axml_doc.node -> string
(** Raises [Invalid_argument] on data nodes. *)

val materialize :
  ?max_calls:int ->
  ?parallel:bool ->
  Axml_services.Registry.t ->
  Axml_doc.t ->
  int * int * float * int * bool
(** Materializes the document in place; returns
    [(invoked, rounds, simulated_seconds, bytes, complete)]. With
    [parallel:true] (default) each round of visible calls is accounted as
    one parallel batch (max cost); otherwise costs add up. *)

val run :
  ?max_calls:int ->
  ?parallel:bool ->
  Axml_services.Registry.t ->
  Axml_query.Pattern.t ->
  Axml_doc.t ->
  report
