module Tree = Axml_xml.Tree
module Print = Axml_xml.Print

type behavior = Tree.forest -> Tree.forest

type cost_model = { latency : float; per_byte : float }

let default_cost = { latency = 0.05; per_byte = 1e-6 }

type invocation = {
  service : string;
  request_bytes : int;
  response_bytes : int;
  cost : float;
  pushed : bool;
  cached : bool;
}

type service = {
  behavior : behavior;
  cost_model : cost_model;
  push_capable : bool;
  cache : (string, Tree.forest) Hashtbl.t option;
      (* memoized services: parameter serialization -> full result *)
}

type t = {
  services : (string, service) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
  mutable history : invocation list; (* newest first *)
}

exception Unknown_service of string

let create () = { services = Hashtbl.create 16; order = []; history = [] }

let register t ~name ?(cost = default_cost) ?(push_capable = true) ?(memoize = false) behavior =
  if not (Hashtbl.mem t.services name) then t.order <- name :: t.order;
  let cache = if memoize then Some (Hashtbl.create 16) else None in
  Hashtbl.replace t.services name { behavior; cost_model = cost; push_capable; cache }

let is_registered t name = Hashtbl.mem t.services name
let names t = List.rev t.order

let invoke t ~name ~params ?push () =
  let service =
    match Hashtbl.find_opt t.services name with
    | Some s -> s
    | None -> raise (Unknown_service name)
  in
  let cached, result =
    match service.cache with
    | None -> (false, service.behavior params)
    | Some cache -> (
      let key = Print.forest_to_string params in
      match Hashtbl.find_opt cache key with
      | Some result -> (true, result)
      | None ->
        let result = service.behavior params in
        Hashtbl.replace cache key result;
        (false, result))
  in
  let pushed, shipped =
    match push with
    | Some pattern when service.push_capable -> (true, Witness.prune pattern result)
    | Some _ | None -> (false, result)
  in
  (* A cache hit answers locally: no latency, nothing crosses the wire. *)
  let request_bytes = if cached then 0 else Print.forest_byte_size params in
  let response_bytes = if cached then 0 else Print.forest_byte_size shipped in
  let cost =
    if cached then 0.0
    else
      service.cost_model.latency
      +. (service.cost_model.per_byte *. float_of_int (request_bytes + response_bytes))
  in
  let invocation = { service = name; request_bytes; response_bytes; cost; pushed; cached } in
  t.history <- invocation :: t.history;
  (shipped, invocation)

let history t = List.rev t.history
let invocation_count t = List.length t.history

let total_bytes t =
  List.fold_left (fun acc i -> acc + i.request_bytes + i.response_bytes) 0 t.history

let reset_history t = t.history <- []
