module Tree = Axml_xml.Tree

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let first_text params =
  let rec find = function
    | [] -> None
    | Tree.Text s :: _ -> Some s
    | Tree.Element el :: rest -> (
      match find el.Tree.children with Some s -> Some s | None -> find rest)
  in
  find params

let bool_attr name default t =
  match Tree.attr name t with
  | None -> default
  | Some "true" -> true
  | Some "false" -> false
  | Some other -> fail "attribute %s: expected true or false, got %S" name other

let float_attr name default t =
  match Tree.attr name t with
  | None -> default
  | Some s -> ( try float_of_string s with Failure _ -> fail "attribute %s: bad number %S" name s)

let parse_service t =
  let name =
    match Tree.attr "name" t with
    | Some n -> n
    | None -> fail "<service> without a name attribute"
  in
  let cases = ref [] in
  let default = ref [] in
  List.iter
    (fun child ->
      match Tree.name child with
      | Some "case" -> (
        match Tree.attr "key" child with
        | Some key -> cases := (key, Tree.children child) :: !cases
        | None -> fail "service %s: <case> without a key attribute" name)
      | Some "default" -> default := Tree.children child
      | Some other -> fail "service %s: unexpected <%s>" name other
      | None -> fail "service %s: unexpected text content" name)
    (Tree.children t);
  let cases = List.rev !cases in
  let default = !default in
  let behavior params =
    match first_text params with
    | Some key -> ( match List.assoc_opt key cases with Some result -> result | None -> default)
    | None -> default
  in
  let cost =
    {
      Registry.latency = float_attr "latency" Registry.default_cost.Registry.latency t;
      per_byte = float_attr "per-byte" Registry.default_cost.Registry.per_byte t;
    }
  in
  (name, cost, bool_attr "push" true t, bool_attr "memoize" false t, behavior)

let load registry t =
  (match Tree.name t with
  | Some "services" -> ()
  | _ -> fail "expected a <services> root element");
  List.map
    (fun child ->
      match Tree.name child with
      | Some "service" ->
        let name, cost, push_capable, memoize, behavior = parse_service child in
        Registry.register registry ~name ~cost ~push_capable ~memoize behavior;
        name
      | Some other -> fail "unexpected <%s> under <services>" other
      | None -> fail "unexpected text under <services>")
    (Tree.children t)

let load_string registry src = load registry (Axml_xml.Parse.tree src)
let load_file registry path = load registry (Axml_xml.Parse.tree_of_file path)
