(** Declarative, table-driven service definitions.

    The workload generators define services as OCaml closures; for
    stand-alone use (the [axml eval] command), services can instead be
    described in an XML file and registered from it:

    {v
    <services>
      <service name="forecast" latency="0.05" per-byte="1e-6">
        <case key="Paris"><sky>sunny</sky></case>
        <case key="London"><sky>rain</sky></case>
        <default><sky>unknown</sky></default>
      </service>
      <service name="news" memoize="true" push="false">
        <default><headline>nothing happened</headline></default>
      </service>
    </services>
    v}

    A call's parameters select the first [<case>] whose [key] equals the
    first text found in the parameter forest; otherwise the [<default>]
    applies (or an empty result). Case bodies are AXML forests — they may
    contain further [<axml:call>] elements. Attributes [latency],
    [per-byte], [memoize] and [push] are optional. *)

exception Error of string

val load : Registry.t -> Axml_xml.Tree.t -> string list
(** Registers every service of the spec; returns their names in document
    order. Raises {!Error} on malformed specs. *)

val load_string : Registry.t -> string -> string list
val load_file : Registry.t -> string -> string list
