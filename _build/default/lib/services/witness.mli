(** Witness pruning for pushed queries (§7).

    When a query [sub_q_v] is pushed with a call, the provider does not
    ship its whole result; it keeps, for every embedding of the pushed
    pattern into the result forest, the contributing nodes — the images of
    the pattern nodes, the nodes on paths crossed by descendant edges, and
    the full subtrees of the images (so that bound values ship whole).
    Everything else is pruned. *)

val prune : Axml_query.Pattern.node -> Axml_xml.Tree.forest -> Axml_xml.Tree.forest
(** [prune p forest] keeps the union of witnesses of all embeddings of
    [p] whose root maps to one of the forest's tree roots. Trees without
    any embedding are dropped entirely; an empty list means no tree
    contributes. *)
