(** Simulated Web services.

    The paper's experiments run against real SOAP endpoints; here services
    are in-process OCaml functions with a deterministic cost model, so the
    quantities the paper's evaluation depends on — how many calls were
    invoked, how many bytes crossed the wire, how long invocation would
    have taken — are measured exactly and reproducibly.

    A service's {e cost} for one invocation is
    [latency + per_byte * (request_bytes + response_bytes)] (seconds on
    the simulated clock). Callers invoking a batch in parallel account the
    batch as the {e max} of its invocation costs; sequential invocations
    add up. That aggregation is done by the evaluator, not here.

    Services may return forests containing further [<axml:call>] nodes —
    this is what makes relevance detection "a continuous process" (§1). *)

type behavior = Axml_xml.Tree.forest -> Axml_xml.Tree.forest
(** Maps the call's parameter forest to its result forest. *)

type cost_model = {
  latency : float;  (** seconds per invocation *)
  per_byte : float;  (** seconds per transferred byte *)
}

val default_cost : cost_model
(** 50 ms latency, 1 µs/byte (≈ 1 MB/s) — a slow 2004-era Web service. *)

type invocation = {
  service : string;
  request_bytes : int;
  response_bytes : int;
  cost : float;  (** simulated seconds for this invocation *)
  pushed : bool;  (** a subquery was evaluated provider-side *)
  cached : bool;  (** answered from the client-side result cache *)
}

type t

exception Unknown_service of string

val create : unit -> t

val register :
  t -> name:string -> ?cost:cost_model -> ?push_capable:bool -> ?memoize:bool -> behavior -> unit
(** [push_capable] defaults to [true]: the provider accepts pushed
    subqueries (§7 notes that capability must be checked per source).
    [memoize] (default [false]) caches full results client-side, keyed by
    the serialized parameters: repeated identical calls cost nothing —
    the caching the ActiveXML system applies to deterministic services.
    Pushing still prunes per call from the cached full result. *)

val is_registered : t -> string -> bool
val names : t -> string list

val invoke :
  t -> name:string -> params:Axml_xml.Tree.forest -> ?push:Axml_query.Pattern.node -> unit ->
  Axml_xml.Tree.forest * invocation
(** Invokes the service. With [push] and a push-capable provider, the
    result is pruned provider-side to the witnesses of the pushed pattern
    ({!Witness.prune}) and [response_bytes] counts the pruned forest;
    otherwise the full result ships. Raises {!Unknown_service}. *)

(** {2 Accounting} *)

val history : t -> invocation list
(** All invocations, oldest first. *)

val invocation_count : t -> int
val total_bytes : t -> int
val reset_history : t -> unit
