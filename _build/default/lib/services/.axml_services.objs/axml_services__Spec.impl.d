lib/services/spec.ml: Axml_xml List Printf Registry
