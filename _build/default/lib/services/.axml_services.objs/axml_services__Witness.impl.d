lib/services/witness.ml: Axml_doc Axml_query Axml_xml Hashtbl List
