lib/services/registry.mli: Axml_query Axml_xml
