lib/services/witness.mli: Axml_query Axml_xml
