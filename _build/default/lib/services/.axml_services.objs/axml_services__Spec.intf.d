lib/services/spec.mli: Axml_xml Registry
