lib/services/registry.ml: Axml_xml Hashtbl List Witness
