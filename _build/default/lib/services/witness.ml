module Doc = Axml_doc
module Tree = Axml_xml.Tree
module Eval = Axml_query.Eval

let prune pattern forest =
  (* Import the forest into a scratch document so the embedding engine can
     run over it; ids of that document index the kept set. *)
  let d = Doc.create () in
  let roots = Doc.forest_of_xml d forest in
  let host = Doc.elem d "#forest" roots in
  Doc.set_root d host;
  (* Which pattern nodes ship their image's whole subtree: leaves (their
     content is the matched value — a data leaf, a pending call with its
     parameters) and result nodes (the answer must arrive whole). Images
     of inner pattern nodes ship alone; their relevant children are kept
     by their own images. *)
  let ships_whole = Hashtbl.create 16 in
  let rec index (p : Axml_query.Pattern.node) =
    if p.Axml_query.Pattern.children = [] || p.Axml_query.Pattern.result then
      Hashtbl.replace ships_whole p.Axml_query.Pattern.pid ();
    List.iter index p.Axml_query.Pattern.children
  in
  index pattern;
  let kept = Hashtbl.create 64 in
  let keep n = Hashtbl.replace kept n.Doc.id () in
  let keep_subtree n = Doc.iter_node keep n in
  let keep_ancestors n = List.iter keep (Doc.ancestors n) in
  List.iter
    (fun root ->
      let embs = Eval.embeddings pattern root in
      List.iter
        (fun emb ->
          List.iter
            (fun (pid, n) ->
              if Hashtbl.mem ships_whole pid then keep_subtree n else keep n;
              keep_ancestors n)
            emb)
        embs)
    roots;
  let rec rebuild (n : Doc.node) : Tree.t option =
    if not (Hashtbl.mem kept n.Doc.id) then None
    else
      match n.Doc.label with
      | Doc.Data v -> Some (Tree.text v)
      | Doc.Elem name ->
        Some (Tree.element ~attrs:n.Doc.attrs name (List.filter_map rebuild n.Doc.children))
      | Doc.Call _ ->
        (* A matched call ships whole, parameters included. *)
        Some (Doc.node_to_xml n)
  in
  List.filter_map rebuild roots
