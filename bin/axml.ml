(* The axml command-line tool: snapshot queries, lazy evaluation over the
   built-in simulated workloads, relevance inspection, NFQ layers, and
   F-guide dumps. *)

module Doc = Axml_doc
module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Parser = Axml_query.Parser
module Schema = Axml_schema.Schema
module Registry = Axml_services.Registry
module Relevance = Axml_core.Relevance
module Nfq = Axml_core.Nfq
module Lpq = Axml_core.Lpq
module Influence = Axml_core.Influence
module Typing = Axml_core.Typing
module Fguide = Axml_core.Fguide
module Lazy_eval = Axml_core.Lazy_eval
module Engine = Axml_engine.Engine
module Project = Axml_project.Project
module City = Axml_workload.City
module Goingout = Axml_workload.Goingout
module Synthetic = Axml_workload.Synthetic
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Json = Axml_obs.Json
module Server = Axml_net.Server
module Client = Axml_net.Client
module Remote = Axml_net.Remote
module Wire = Axml_net.Wire
module Sched = Axml_sched.Sched
module Exec = Axml_exec.Exec
module Adversary = Axml_workload.Adversary
module Fuzz = Axml_fuzz.Fuzz

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace the evaluator's decisions.")

let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt

let load_doc path =
  try Ok (Doc.of_xml (Axml_xml.Parse.tree_of_file path)) with
  | Sys_error m -> Error m
  | e -> (
    match Axml_xml.Parse.error_to_string e with
    | Some m -> Error (path ^ ": " ^ m)
    | None -> raise e)

let parse_query src =
  try Ok (Parser.parse src) with Parser.Error m -> Error ("query: " ^ m)

let print_bindings ?(xml = false) (answers : Eval.binding list) =
  if xml then
    (* the paper's §7 wire format: one <tuple> per binding *)
    print_endline (Axml_xml.Print.forest_to_string ~indent:2 (Eval.bindings_to_xml answers))
  else if answers = [] then print_endline "(no answers)"
  else
    List.iteri
      (fun i (b : Eval.binding) ->
        Printf.printf "answer %d:\n" (i + 1);
        List.iter (fun (x, v) -> Printf.printf "  $%s = %S\n" x v) b.Eval.vars;
        List.iter
          (fun (_, n) ->
            Printf.printf "  %s\n" (Axml_xml.Print.to_string (Doc.node_to_xml n)))
          b.Eval.results)
      answers

let xml_flag =
  Arg.(value & flag & info [ "xml" ] ~doc:"Print answers as <tuple> elements (the §7 format).")

let flwr_flag =
  Arg.(
    value & flag
    & info [ "flwr" ]
        ~doc:"Read QUERY as a FLWR expression (for/where/return) instead of a tree pattern.")

(* ---------------- common arguments ---------------- *)

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Tree-pattern query.")

let doc_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"AXML document (XML with <axml:call> elements).")

let schema_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "s"; "schema" ] ~docv:"FILE" ~doc:"Schema file (functions/elements sections).")

let project_flag =
  Arg.(
    value & flag
    & info [ "project" ]
        ~doc:
          "Apply type-based document projection: drop the subtrees the query can never touch \
           before evaluation, and re-project every spliced call result. Sound on \
           schema-conforming documents (service calls whose declared result type may matter \
           are always kept); without a schema projection degrades to a weaker but still sound \
           structural prune.")

(* ---------------- fault injection knobs ---------------- *)

let fault_rate_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Make every service flaky: each invocation attempt fails transiently with \
           probability $(docv) (deterministic, seeded). Failed attempts are retried with \
           exponential backoff on the simulated clock.")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Seed of the fault schedule (defaults to the workload seed).")

let max_retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Retry budget per invocation (default 3). 0 disables retrying.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Per-attempt timeout budget on the simulated clock (default: none).")

(* Installs the CLI fault/retry knobs on every registered service.
   Knobs left at their default do not touch the registry, so policies a
   service spec declares per service (retries=… timeout=…) survive.
   Returns an error message on invalid values instead of raising. *)
let apply_faults registry ~fault_rate ~fault_seed ~max_retries ~timeout =
  let policy =
    let d = Registry.default_policy in
    {
      d with
      Registry.max_retries = Option.value max_retries ~default:d.Registry.max_retries;
      attempt_timeout = Option.value timeout ~default:d.Registry.attempt_timeout;
    }
  in
  if policy.Registry.max_retries < 0 then Error "max-retries must be >= 0"
  else if policy.Registry.attempt_timeout <= 0.0 then Error "timeout must be positive"
  else begin
    if max_retries <> None || timeout <> None then
      Registry.set_retry_policy registry policy;
    match Axml_services.Faults.validate [ Axml_services.Faults.Flaky fault_rate ] with
    | Error m -> Error ("fault-rate: " ^ m)
    | Ok () ->
      if fault_rate > 0.0 then
        Registry.inject_faults registry ?seed:fault_seed
          [ Axml_services.Faults.Flaky fault_rate ]
      else Option.iter (Registry.set_fault_seed registry) fault_seed;
      Ok ()
  end

(* ---------------- worker pool ---------------- *)

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Invoke each parallel batch of service calls on $(docv) worker threads, so the \
           \xc2\xa74.4 batches overlap on the wall clock too (answers and counts are \
           unchanged). 1 (the default) stays sequential; 0 picks a machine-dependent \
           default.")

let match_jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "match-jobs" ] ~docv:"N"
        ~doc:
          "Fan the match/detect passes of the lazy strategies out over top-level document \
           subtrees on $(docv) domains (real CPU parallelism, unlike $(b,--jobs) whose \
           worker threads only overlap service I/O under the runtime lock). Answers and \
           every report counter are byte-identical at every level. 1 (the default) stays \
           sequential; 0 picks a machine-dependent default. Ignored by $(b,naive).")

(* Resolve --jobs into an optional pool; [f] runs with it and the pool
   is always shut down, even on error. *)
let with_pool jobs f =
  if jobs < 0 then fail "jobs must be >= 0"
  else
    let n = if jobs = 0 then Exec.default_jobs () else jobs in
    if n <= 1 then f None
    else begin
      let pool = Exec.create ~jobs:n () in
      Fun.protect ~finally:(fun () -> Exec.shutdown pool) (fun () -> f (Some pool))
    end

(* ---------------- remote peers ---------------- *)

let endpoint_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
      | _ -> Error (`Msg (Printf.sprintf "%S: expected HOST:PORT" s)))
    | None -> Error (`Msg (Printf.sprintf "%S: expected HOST:PORT" s))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let connect_arg =
  Arg.(
    value
    & opt_all endpoint_conv []
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:
          "Register the services an $(b,axml serve) peer advertises at $(docv) as remote \
           services (repeatable). Remote invocations go over TCP with real retries, backoff \
           and per-attempt socket timeouts; push-capable remote services evaluate pushed \
           subqueries provider-side.")

let wire_conv = Arg.enum [ ("binary", `Auto); ("json", `Json) ]

let wire_arg =
  Arg.(
    value
    & opt wire_conv `Auto
    & info [ "wire" ] ~docv:"CODEC"
        ~doc:
          "Frame codec for peer traffic: $(b,binary) (the default) negotiates the compact \
           binary codec in the capability handshake, falling back to JSON against peers \
           that predate it; $(b,json) pins every frame to JSON.")

(* Dial each peer and register what it advertises. Local registrations
   (from --services) win on name clashes because register_remote refuses
   duplicates — so only register names not already present. *)
let connect_peers ?(jobs = 1) ?(wire = `Auto) registry endpoints =
  try
    Ok
      (List.concat_map
         (fun (host, port) ->
           (* Size each peer's connection pool to the worker count, so
              concurrent batch invocations don't fight over sockets. *)
           let client = Client.create ~pool_size:(max 4 jobs) ~wire ~host ~port () in
           let advertised =
             List.map (fun (s : Axml_net.Wire.service_info) -> s.Axml_net.Wire.name)
               (Client.services client ())
           in
           let local = Registry.names registry in
           let fresh = List.filter (fun n -> not (List.mem n local)) advertised in
           Remote.register ~names:fresh ~registry client)
         endpoints)
  with Registry.Transport_error { reason; _ } -> Error ("connect: " ^ reason)

(* ---------------- sharding / replication ---------------- *)

let shard_conv =
  let parse s =
    let bad () = Error (`Msg (Printf.sprintf "%S: expected NAME[@BUDGET]=SVC[,SVC...]" s)) in
    match String.index_opt s '=' with
    | None -> bad ()
    | Some i -> (
      let left = String.sub s 0 i in
      let right = String.sub s (i + 1) (String.length s - i - 1) in
      let services = List.filter (fun x -> x <> "") (String.split_on_char ',' right) in
      let name, budget =
        match String.index_opt left '@' with
        | None -> (left, Ok None)
        | Some j -> (
          let b = String.sub left (j + 1) (String.length left - j - 1) in
          ( String.sub left 0 j,
            match int_of_string_opt b with
            | Some b when b >= 0 -> Ok (Some b)
            | _ -> Error (`Msg (Printf.sprintf "%S: bad budget %S" s b)) ))
      in
      match budget with
      | Error _ as e -> e
      | Ok budget -> if name = "" || services = [] then bad () else Ok (name, budget, services))
  in
  let print ppf (n, b, svcs) =
    Format.fprintf ppf "%s%s=%s" n
      (match b with None -> "" | Some b -> "@" ^ string_of_int b)
      (String.concat "," svcs)
  in
  Arg.conv (parse, print)

let shard_arg =
  Arg.(
    value
    & opt_all shard_conv []
    & info [ "shard" ] ~docv:"NAME[@BUDGET]=SVC[,SVC...]"
        ~doc:
          "Statically assign the listed services to a named shard with its own registry \
           (repeatable). An optional $(b,@BUDGET) caps the calls the shard may serve; when \
           every shard is bounded the sum also caps the whole evaluation. Services no shard \
           claims stay on an implicit $(b,rest) shard. Calls are routed per $(b,--balance).")

let replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Serve every service from $(docv) identical replicas and balance each batch across \
           them per $(b,--balance). Local workloads are regenerated per replica (same seed, so \
           identical fault fates); with $(b,--connect), $(docv) must equal the number of peers \
           and each peer becomes one replica.")

let balance_arg =
  Arg.(
    value
    & opt (enum [ ("adaptive", Sched.Adaptive); ("round-robin", Sched.Round_robin) ]) Sched.Adaptive
    & info [ "balance" ] ~docv:"MODE"
        ~doc:
          "Replica placement policy: $(b,adaptive) (least-loaded-first on an EWMA/quantile \
           cost estimate; the default) or $(b,round-robin).")

(* Build the scheduler behind --shard/--replicas, or [None] when neither
   was asked for. [regen ()] produces a fresh registry identical to
   [registry] (same generator config or spec file, same fault knobs), so
   every shard/replica draws the same seeded fault fates. *)
let build_sched ~shards ~replicas ~balance ~registry ~regen =
  if replicas < 1 then Error "--replicas must be >= 1"
  else if shards <> [] && replicas > 1 then Error "--shard and --replicas cannot be combined"
  else if shards = [] && replicas <= 1 then Ok None
  else if replicas > 1 then
    let specs =
      List.init replicas (fun i ->
          Sched.spec
            ~id:(Printf.sprintf "r%d" (i + 1))
            (if i = 0 then registry else regen ()))
    in
    Ok (Some (Sched.create ~mode:balance specs))
  else begin
    let local = Registry.names registry in
    let claimed = List.concat_map (fun (_, _, svcs) -> svcs) shards in
    let missing = List.filter (fun s -> not (List.mem s local)) claimed in
    let rec first_dup seen = function
      | [] -> None
      | s :: rest -> if List.mem s seen then Some s else first_dup (s :: seen) rest
    in
    if missing <> [] then
      Error (Printf.sprintf "--shard: unknown service(s) %s" (String.concat ", " missing))
    else
      match first_dup [] claimed with
      | Some s -> Error (Printf.sprintf "--shard: service %s claimed twice" s)
      | None -> (
        let specs =
          List.map
            (fun (name, budget, services) -> Sched.spec ~id:name ?budget ~services (regen ()))
            shards
        in
        let rest = List.filter (fun n -> not (List.mem n claimed)) local in
        let specs =
          specs @ if rest = [] then [] else [ Sched.spec ~id:"rest" ~services:rest registry ]
        in
        match Sched.create ~mode:balance specs with
        | sched -> Ok (Some sched)
        | exception Invalid_argument m -> Error m)
  end

(* --replicas over --connect: each peer is one full replica shard (its
   own client, connection pool and registry), id HOST:PORT. A defeat on
   one peer re-routes to the next through the scheduler. When the run
   also has local services, they go on a "local" shard listed first. *)
let connect_replicas ~jobs ~wire ~balance ~local_registry ~local_names connect =
  try
    let specs =
      List.map
        (fun (host, port) ->
          let id = Printf.sprintf "%s:%d" host port in
          let client = Client.create ~pool_size:(max 4 jobs) ~wire ~host ~port () in
          let registry = Registry.create () in
          (* register dials, which settles the handshake caps *)
          let names = Remote.register ~registry client in
          if not (List.mem Wire.cap_shard (Client.capabilities client)) then
            Printf.eprintf
              "warning: peer %s predates the shard capability; balancing across it anyway\n%!" id;
          Printf.eprintf "replica %s: %s\n%!" id (String.concat ", " names);
          Sched.spec ~id registry)
        connect
    in
    let specs =
      if local_names = [] then specs
      else Sched.spec ~id:"local" ~services:local_names local_registry :: specs
    in
    Ok (Sched.create ~mode:balance specs)
  with
  | Registry.Transport_error { reason; _ } -> Error ("connect: " ^ reason)
  | Invalid_argument m -> Error m

(* ---------------- observability knobs ---------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the evaluation as a span trace and write it to $(docv): Chrome trace_event \
           JSON (open in chrome://tracing or ui.perfetto.dev), or JSONL when $(docv) ends in \
           $(b,.jsonl). Inspect either format with $(b,axml trace).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON metrics snapshot (counters, gauges, per-service latency histograms) to \
           $(docv). The eval.* totals reconcile exactly with the printed report.")

let report_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-json" ] ~docv:"FILE"
        ~doc:
          "Also emit the full evaluation report (answers and every counter) as JSON to $(docv); \
           $(b,-) writes it to stdout.")

let make_obs ~trace ~metrics =
  if trace = None && metrics = None then Obs.null
  else
    {
      Obs.trace = (if trace = None then Trace.null else Trace.create ());
      metrics = (if metrics = None then Metrics.null else Metrics.create ());
    }

let write_obs ~trace ~metrics obs =
  Option.iter
    (fun path ->
      if Filename.check_suffix path ".jsonl" then Trace.write_jsonl path obs.Obs.trace
      else Trace.write_chrome path obs.Obs.trace;
      Printf.eprintf "wrote trace %s\n%!" path)
    trace;
  Option.iter
    (fun path ->
      Metrics.write path obs.Obs.metrics;
      Printf.eprintf "wrote metrics %s\n%!" path)
    metrics

let emit_report_json dest json =
  match dest with
  | None -> ()
  | Some "-" -> print_endline (Json.to_string ~indent:2 json)
  | Some path ->
    Json.write_file ~indent:2 path json;
    Printf.eprintf "wrote report %s\n%!" path

(* Pools over every registry the run touched: with a scheduler in play,
   calls (and their fault draws) land on shard registries, not just the
   main one. *)
let print_fault_counters registries =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 registries in
  let retries = sum Registry.total_retries in
  let timeouts = sum Registry.total_timeouts in
  let failed = sum Registry.failed_count in
  if retries > 0 || timeouts > 0 || failed > 0 then
    Printf.printf "faults: %d retried attempt(s), %d timeout(s), %d permanently failed, %.3f s backoff\n"
      retries timeouts failed
      (List.fold_left (fun acc r -> acc +. Registry.total_backoff r) 0.0 registries)

let load_schema = function
  | None -> Ok None
  | Some path -> (
    try Ok (Some (Schema.of_file path)) with
    | Schema.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
    | Sys_error m -> Error m)

(* ---------------- snapshot ---------------- *)

let snapshot doc_path query_src xml flwr =
  match load_doc doc_path with
  | Error m -> fail "%s" m
  | Ok doc ->
    if flwr then
      match Axml_query.Xquery.compile query_src with
      | exception Axml_query.Xquery.Error m -> fail "flwr: %s" m
      | q ->
        print_endline
          (Axml_xml.Print.forest_to_string ~indent:2 (Axml_query.Xquery.run q doc));
        `Ok ()
    else (
      match parse_query query_src with
      | Error m -> fail "%s" m
      | Ok query ->
        print_bindings ~xml (Eval.eval query doc);
        `Ok ())

let snapshot_cmd =
  let doc = "Evaluate the snapshot result (Def. 1): no service call is invoked." in
  Cmd.v
    (Cmd.info "snapshot" ~doc)
    Term.(ret (const snapshot $ doc_arg $ query_arg $ xml_flag $ flwr_flag))

(* ---------------- relevant ---------------- *)

let relevant doc_path schema_path query_src use_lpq =
  match load_doc doc_path, parse_query query_src, load_schema schema_path with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> fail "%s" m
  | Ok doc, Ok query, Ok schema ->
    let rqs = if use_lpq then Lpq.of_query query else Nfq.of_query query in
    let rqs =
      match schema with
      | None -> rqs
      | Some s ->
        let ty = Typing.create s query in
        List.filter_map (Typing.refine ty ~known_functions:(Schema.function_names s)) rqs
    in
    let calls =
      List.concat_map (fun rq -> Relevance.relevant_calls rq doc) rqs
      |> List.sort_uniq (fun (a : Doc.node) b -> compare a.Doc.id b.Doc.id)
    in
    if calls = [] then print_endline "(no relevant calls)"
    else
      List.iter
        (fun (c : Doc.node) ->
          match c.Doc.label with
          | Doc.Call { fname; call_id } ->
            Printf.printf "[%d] %s at /%s\n" call_id fname
              (String.concat "/" (Doc.label_path c))
          | _ -> ())
        calls;
    `Ok ()

let lpq_flag =
  Arg.(value & flag & info [ "lpq" ] ~doc:"Use linear path queries instead of NFQs (relaxed).")

let relevant_cmd =
  let doc =
    "List the service calls of the document that are relevant for the query (§3), optionally \
     refined by a schema (§5)."
  in
  Cmd.v
    (Cmd.info "relevant" ~doc)
    Term.(ret (const relevant $ doc_arg $ schema_arg $ query_arg $ lpq_flag))

(* ---------------- layers ---------------- *)

let layers query_src =
  match parse_query query_src with
  | Error m -> fail "%s" m
  | Ok query ->
    let rqs = Nfq.of_query query in
    List.iteri
      (fun i layer ->
        Printf.printf "layer %d:\n" i;
        List.iter
          (fun rq ->
            let independent = Influence.independent_in_layer rq layer in
            Printf.printf "  %s%s\n"
              (Format.asprintf "%a" P.pp rq.Relevance.query)
              (if independent then "   (independent *)" else ""))
          layer)
      (Influence.layers rqs);
    `Ok ()

let layers_cmd =
  let doc = "Show the query's NFQs grouped into may-influence layers (§4.3), in processing order." in
  Cmd.v (Cmd.info "layers" ~doc) Term.(ret (const layers $ query_arg))

(* ---------------- guide ---------------- *)

let guide doc_path =
  match load_doc doc_path with
  | Error m -> fail "%s" m
  | Ok doc ->
    let g = Fguide.build doc in
    Printf.printf "%d call(s) under %d distinct path(s):\n" (Fguide.call_count g)
      (List.length (Fguide.paths g));
    List.iter (fun path -> Printf.printf "  /%s\n" (String.concat "/" path)) (Fguide.paths g);
    `Ok ()

let guide_cmd =
  let doc = "Build and print the document's function-call guide (§6.2)." in
  Cmd.v (Cmd.info "guide" ~doc) Term.(ret (const guide $ doc_arg))

(* ---------------- run (built-in workloads) ---------------- *)

type workload = W_city | W_goingout | W_synthetic

let workload_conv =
  Arg.enum [ ("city", W_city); ("goingout", W_goingout); ("synthetic", W_synthetic) ]

let strategy_conv =
  Arg.enum
    [
      ("nfqa", `Nfqa);
      ("nfqa-typed", `Typed);
      ("nfqa-lenient", `Lenient);
      ("lpq", `Lpq);
      ("naive", `Naive);
    ]

(* One evaluate-and-print path for every strategy: run/eval both call
   [evaluate] (naive is the engine's degenerate strategy, the rest are
   Lazy_eval configurations — all return the one engine report) and
   [finish_run] (summary, fault counters, obs sinks, --report-json). *)

let evaluate ~strategy ~push ~fguide ~project ~match_jobs ?schema ~obs ?pool ?dispatch
    ?max_calls ~registry query doc =
  let projector = if project then Some (Project.compile ?schema query) else None in
  match strategy with
  | `Naive -> Engine.naive_run ?max_calls ?pool ~obs ?projector ?dispatch registry query doc
  | (`Nfqa | `Typed | `Lenient | `Lpq) as s ->
    let base =
      match s with
      | `Nfqa -> Lazy_eval.nfqa
      | `Typed -> Lazy_eval.nfqa_typed
      | `Lenient -> Lazy_eval.nfqa_lenient
      | `Lpq -> Lazy_eval.lpq_only
    in
    let base = if push then Lazy_eval.with_push base else base in
    let strategy = if fguide then Lazy_eval.with_fguide base else base in
    let strategy = Lazy_eval.with_match_jobs match_jobs strategy in
    let strategy =
      (* summed shard budgets tighten the engine's global budget *)
      match max_calls with
      | None -> strategy
      | Some b -> Lazy_eval.with_budget b strategy
    in
    Lazy_eval.run ?schema ~registry ~strategy ~obs ?pool ?projector ?dispatch query doc

let print_summary (r : Engine.report) =
  Printf.printf
    "\ninvoked %d call(s) (%d pushed) in %d round(s), %d detection(s), %d layer(s)\n"
    r.Engine.invoked r.Engine.pushed r.Engine.rounds r.Engine.relevance_evals
    r.Engine.layer_count;
  Printf.printf "%.3f s simulated service time, %.1f ms analysis, %d bytes, complete=%b\n"
    r.Engine.simulated_seconds
    (r.Engine.analysis_seconds *. 1000.0)
    r.Engine.bytes_transferred r.Engine.complete;
  if r.Engine.full_nodes > 0 then
    Printf.printf "projection: kept %d of %d node(s), saved %d byte(s)\n"
      r.Engine.projected_nodes r.Engine.full_nodes r.Engine.projected_bytes_saved;
  if r.Engine.sharded_calls > 0 then
    Printf.printf "routing: %d sharded call(s), %d rebalanced, %d rerouted\n"
      r.Engine.sharded_calls r.Engine.rebalanced_calls r.Engine.rerouted_calls

let finish_run ~registry ?sched ~trace_out ~metrics_out ~report_json obs (r : Engine.report) =
  print_summary r;
  print_fault_counters
    (match sched with
    | None -> [ registry ]
    | Some s ->
      let shard_regs = Sched.registries s in
      if List.memq registry shard_regs then shard_regs else registry :: shard_regs);
  write_obs ~trace:trace_out ~metrics:metrics_out obs;
  emit_report_json report_json (Engine.report_to_json r);
  `Ok ()

let run_workload verbose workload strategy scale seed push fguide project xml jobs match_jobs
    shards replicas balance fault_rate fault_seed max_retries timeout trace_out metrics_out
    report_json query_override =
  setup_logs verbose;
  let generate () =
    match workload with
    | W_city ->
      let i = City.generate { City.default_config with City.hotels = scale; seed } in
      (i.City.doc, i.City.registry, i.City.schema, i.City.query)
    | W_goingout ->
      let i = Goingout.generate { Goingout.default_config with Goingout.theaters = scale; seed } in
      (i.Goingout.doc, i.Goingout.registry, i.Goingout.schema, i.Goingout.query)
    | W_synthetic ->
      let i =
        Synthetic.generate { Synthetic.default_config with Synthetic.nodes = scale * 100; seed }
      in
      (i.Synthetic.doc, i.Synthetic.registry, i.Synthetic.schema, i.Synthetic.query)
  in
  let doc, registry, schema, default_query = generate () in
  let query =
    match query_override with
    | None -> Ok default_query
    | Some src -> parse_query src
  in
  match query with
  | Error m -> fail "%s" m
  | Ok query -> (
    match
      apply_faults registry ~fault_rate ~fault_seed:(Some (Option.value fault_seed ~default:seed))
        ~max_retries ~timeout
    with
    | Error m -> fail "%s" m
    | Ok () -> (
      (* a shard/replica registry is the same workload regenerated — same
         generator seed, same fault knobs, so every replica draws the
         identical seeded fault fates *)
      let regen () =
        let _, r, _, _ = generate () in
        (match
           apply_faults r ~fault_rate
             ~fault_seed:(Some (Option.value fault_seed ~default:seed))
             ~max_retries ~timeout
         with
        | Ok () -> ()
        | Error m -> failwith m);
        r
      in
      match build_sched ~shards ~replicas ~balance ~registry ~regen with
      | Error m -> fail "%s" m
      | Ok sched ->
        let dispatch = Option.map Sched.dispatch sched in
        let max_calls = Option.bind sched Sched.total_budget in
        Printf.printf "document: %d nodes, %d calls\nquery:    %s\n\n" (Doc.size doc)
          (Doc.count_calls doc)
          (P.to_string query);
        let obs = make_obs ~trace:trace_out ~metrics:metrics_out in
        with_pool jobs (fun pool ->
            let r =
              evaluate ~strategy ~push ~fguide ~project ~match_jobs ~schema ~obs ?pool ?dispatch
                ?max_calls ~registry query doc
            in
            print_bindings ~xml r.Engine.answers;
            (match sched with
            | Some s ->
              Printf.printf "shards: %s\n"
                (String.concat ", "
                   (List.map
                      (fun (id, n) -> Printf.sprintf "%s=%d" id n)
                      (Sched.dispatched s)))
            | None -> ());
            finish_run ~registry ?sched ~trace_out ~metrics_out ~report_json obs r)))

let run_cmd =
  let doc =
    "Run a query lazily (or naively) over a built-in simulated workload: $(b,city) (the paper's \
     running example, scaled), $(b,goingout) (the introduction's scenario) or $(b,synthetic)."
  in
  let workload_arg =
    Arg.(value & opt workload_conv W_city & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt strategy_conv `Typed
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:"Evaluation strategy: nfqa, nfqa-typed, nfqa-lenient, lpq or naive.")
  in
  let scale_arg =
    Arg.(value & opt int 20 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale (hotels/theaters/…).")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.") in
  let push_arg = Arg.(value & flag & info [ "push" ] ~doc:"Push subqueries to providers (§7).") in
  let fguide_arg = Arg.(value & flag & info [ "fguide" ] ~doc:"Use a function-call guide (§6.2).") in
  let query_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Override the workload query.")
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run_workload $ verbose_flag $ workload_arg $ strategy_arg $ scale_arg $ seed_arg
       $ push_arg $ fguide_arg $ project_flag $ xml_flag $ jobs_arg $ match_jobs_arg
       $ shard_arg $ replicas_arg $ balance_arg $ fault_rate_arg $ fault_seed_arg
       $ max_retries_arg $ timeout_arg $ trace_arg $ metrics_arg $ report_json_arg $ query_arg))

(* ---------------- generate ---------------- *)

let generate workload scale seed output =
  let doc, schema =
    match workload with
    | W_city ->
      let i = City.generate { City.default_config with City.hotels = scale; seed } in
      (i.City.doc, City.schema_src)
    | W_goingout ->
      let i = Goingout.generate { Goingout.default_config with Goingout.theaters = scale; seed } in
      (i.Goingout.doc, Goingout.schema_src)
    | W_synthetic ->
      let i =
        Synthetic.generate { Synthetic.default_config with Synthetic.nodes = scale * 100; seed }
      in
      (i.Synthetic.doc, "")
  in
  let xml = Doc.to_string ~indent:2 doc in
  (match output with
  | None -> print_endline xml
  | Some path ->
    let oc = open_out path in
    output_string oc xml;
    close_out oc;
    if schema <> "" then begin
      let oc = open_out (path ^ ".schema") in
      output_string oc schema;
      close_out oc
    end;
    Printf.eprintf "wrote %s (%d nodes, %d calls)\n" path (Doc.size doc) (Doc.count_calls doc));
  `Ok ()

let generate_cmd =
  let doc = "Generate a workload document as XML (plus its .schema when written to a file)." in
  let workload_arg =
    Arg.(value & opt workload_conv W_city & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload.")
  in
  let scale_arg =
    Arg.(value & opt int 20 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.") in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(ret (const generate $ workload_arg $ scale_arg $ seed_arg $ output_arg))

(* ---------------- eval (user files) ---------------- *)

let eval_files verbose doc_path schema_path services_path connect wire strategy push fguide
    project xml flwr jobs match_jobs shards replicas balance fault_rate fault_seed max_retries
    timeout trace_out metrics_out report_json query_src =
  setup_logs verbose;
  let flwr_query =
    if not flwr then Ok None
    else
      match Axml_query.Xquery.compile query_src with
      | q -> Ok (Some q)
      | exception Axml_query.Xquery.Error m -> Error ("flwr: " ^ m)
  in
  let parsed_query =
    match flwr_query with
    | Error m -> Error m
    | Ok (Some q) -> Ok (Axml_query.Xquery.pattern q)
    | Ok None -> parse_query query_src
  in
  match load_doc doc_path, parsed_query, load_schema schema_path with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> fail "%s" m
  | Ok doc, Ok query, Ok schema -> (
    let registry = Registry.create () in
    match Option.map (Axml_services.Spec.load_file registry) services_path with
    | exception Axml_services.Spec.Error m -> fail "services: %s" m
    | names -> (
      let local_names = Option.value names ~default:[] in
      (match names with
      | Some names -> Printf.eprintf "registered services: %s\n%!" (String.concat ", " names)
      | None -> ());
      let eff_jobs = if jobs = 0 then Exec.default_jobs () else jobs in
      (* with --replicas over --connect the peers become shard registries
         of their own instead of merging into the main registry *)
      let replica_peers = replicas > 1 && connect <> [] in
      let claimed = List.concat_map (fun (_, _, s) -> s) shards in
      let foreign = List.filter (fun s -> not (List.mem s local_names)) claimed in
      if replica_peers && shards <> [] then fail "--shard and --replicas cannot be combined"
      else if replica_peers && List.length connect <> replicas then
        fail "--replicas %d but %d --connect peer(s): the counts must match" replicas
          (List.length connect)
      else if replicas > 1 && connect = [] && services_path = None then
        fail "--replicas needs --services (reloaded per replica) or --connect peers"
      else if foreign <> [] then
        fail "--shard can only claim --services names, not remote ones: %s"
          (String.concat ", " foreign)
      else
        match
          if replica_peers then Ok [] else connect_peers ~jobs:eff_jobs ~wire registry connect
        with
        | Error m -> fail "%s" m
        | Ok remote_names -> (
          if remote_names <> [] then
            Printf.eprintf "remote services: %s\n%!" (String.concat ", " remote_names);
          match apply_faults registry ~fault_rate ~fault_seed ~max_retries ~timeout with
          | Error m -> fail "%s" m
          | Ok () -> (
            let sched =
              if replica_peers then
                Result.map Option.some
                  (connect_replicas ~jobs:eff_jobs ~wire ~balance ~local_registry:registry
                     ~local_names connect)
              else
                let regen () =
                  let r = Registry.create () in
                  (match services_path with
                  | Some p -> ignore (Axml_services.Spec.load_file r p)
                  | None -> ());
                  (match apply_faults r ~fault_rate ~fault_seed ~max_retries ~timeout with
                  | Ok () -> ()
                  | Error m -> failwith m);
                  r
                in
                build_sched ~shards ~replicas ~balance ~registry ~regen
            in
            match sched with
            | Error m -> fail "%s" m
            | Ok sched ->
              let dispatch = Option.map Sched.dispatch sched in
              let max_calls = Option.bind sched Sched.total_budget in
              let obs = make_obs ~trace:trace_out ~metrics:metrics_out in
              with_pool jobs (fun pool ->
                  let r =
                    evaluate ~strategy ~push ~fguide ~project ~match_jobs ?schema ~obs ?pool
                      ?dispatch ?max_calls ~registry query doc
                  in
                  (match flwr_query with
                  | Ok (Some q) ->
                    print_endline
                      (Axml_xml.Print.forest_to_string ~indent:2
                         (Axml_query.Xquery.instantiate q r.Engine.answers))
                  | _ -> print_bindings ~xml r.Engine.answers);
                  (match sched with
                  | Some s ->
                    Printf.printf "shards: %s\n"
                      (String.concat ", "
                         (List.map
                            (fun (id, n) -> Printf.sprintf "%s=%d" id n)
                            (Sched.dispatched s)))
                  | None -> ());
                  finish_run ~registry ?sched ~trace_out ~metrics_out ~report_json obs r)))))

let eval_cmd =
  let doc =
    "Lazily evaluate a query over your own AXML document, with services defined in a \
     declarative XML spec (see $(b,Axml_services.Spec))."
  in
  let services_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "services" ] ~docv:"FILE" ~doc:"Table-driven service definitions.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt strategy_conv `Typed
      & info [ "strategy" ] ~docv:"NAME" ~doc:"nfqa, nfqa-typed, nfqa-lenient, lpq or naive.")
  in
  let push_arg = Arg.(value & flag & info [ "push" ] ~doc:"Push subqueries (\xc2\xa77).") in
  let fguide_arg = Arg.(value & flag & info [ "fguide" ] ~doc:"Use a function-call guide.") in
  Cmd.v
    (Cmd.info "eval" ~doc)
    Term.(
      ret
        (const eval_files $ verbose_flag $ doc_arg $ schema_arg $ services_arg $ connect_arg
       $ wire_arg $ strategy_arg $ push_arg $ fguide_arg $ project_flag $ xml_flag $ flwr_flag
       $ jobs_arg $ match_jobs_arg $ shard_arg $ replicas_arg $ balance_arg $ fault_rate_arg
       $ fault_seed_arg $ max_retries_arg $ timeout_arg $ trace_arg $ metrics_arg
       $ report_json_arg $ query_arg))

(* ---------------- project ---------------- *)

let project_doc doc_path schema_path query_src =
  let tree =
    try Ok (Axml_xml.Parse.tree_of_file doc_path) with
    | Sys_error m -> Error m
    | e -> (
      match Axml_xml.Parse.error_to_string e with
      | Some m -> Error (doc_path ^ ": " ^ m)
      | None -> raise e)
  in
  match tree, parse_query query_src, load_schema schema_path with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> fail "%s" m
  | Ok tree, Ok query, Ok schema ->
    let projector = Project.compile ?schema query in
    let projected, st = Project.tree projector tree in
    print_endline (Axml_xml.Print.to_string ~indent:2 projected);
    Printf.eprintf "projection: kept %d of %d node(s) (dropped %d), saved %d byte(s)\n"
      st.Project.kept_nodes st.Project.full_nodes
      (st.Project.full_nodes - st.Project.kept_nodes)
      st.Project.bytes_saved;
    `Ok ()

let project_cmd =
  let doc =
    "Project a document against a query (type-based projection): print the projected \
     document — every subtree the query can never touch dropped, every possibly-relevant \
     service call kept — plus a one-line kept/dropped summary on stderr. With $(b,--schema) \
     the projector uses the content models and call signatures for a sharper (still sound) \
     prune."
  in
  Cmd.v
    (Cmd.info "project" ~doc)
    Term.(ret (const project_doc $ doc_arg $ schema_arg $ query_arg))

(* ---------------- trace ---------------- *)

let trace_view path =
  match Trace.load_file path with
  | Error m -> fail "%s: %s" path m
  | Ok forest ->
    Format.printf "%a" Trace.pp_forest forest;
    let rec count pred ns =
      List.fold_left
        (fun acc (n : Trace.node) ->
          acc + (if pred n then 1 else 0) + count pred n.Trace.children)
        0 ns
    in
    let total = count (fun _ -> true) forest in
    let named name = count (fun n -> n.Trace.node_name = name) forest in
    Printf.printf
      "\n%d span(s): %d round(s), %d detection(s), %d invocation(s), %d wire attempt(s)\n" total
      (named "eval.round") (named "eval.detect") (named "service.invoke")
      (named "service.attempt");
    `Ok ()

let trace_cmd =
  let doc =
    "Pretty-print a saved trace (Chrome trace_event JSON or JSONL, from $(b,--trace)) as the \
     evaluation's layer/pass/round tree with wall and simulated-clock durations, attributes and \
     byte rollups."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Saved trace file.")
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(ret (const trace_view $ file_arg))

(* ---------------- validate ---------------- *)

let validate doc_path schema_path =
  match load_doc doc_path, load_schema (Some schema_path) with
  | Error m, _ | _, Error m -> fail "%s" m
  | Ok _, Ok None -> fail "a schema is required"
  | Ok doc, Ok (Some schema) -> (
    match Axml_schema.Validate.document schema doc with
    | [] ->
      print_endline "document conforms to the schema";
      `Ok ()
    | issues ->
      List.iter
        (fun i -> Format.printf "%a@." Axml_schema.Validate.pp_issue i)
        issues;
      Printf.eprintf "%d issue(s)\n" (List.length issues);
      `Error (false, "the document does not conform"))

let validate_cmd =
  let doc = "Validate an AXML document against a schema (content models and call signatures)." in
  let schema_required =
    Arg.(
      required
      & opt (some file) None
      & info [ "s"; "schema" ] ~docv:"FILE" ~doc:"Schema file.")
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(ret (const validate $ doc_arg $ schema_required))

(* ---------------- termination ---------------- *)

let termination schema_path doc_path =
  match load_schema (Some schema_path) with
  | Error m -> fail "%s" m
  | Ok None -> fail "a schema is required"
  | Ok (Some schema) -> (
    let verdict =
      match doc_path with
      | None -> Ok (Axml_core.Termination.analyze schema)
      | Some path -> (
        match load_doc path with
        | Error m -> Error m
        | Ok doc -> Ok (Axml_core.Termination.analyze_doc schema doc))
    in
    match verdict with
    | Error m -> fail "%s" m
    | Ok v ->
      Format.printf "%a@." Axml_core.Termination.pp_verdict v;
      List.iter
        (fun (f, targets) ->
          Printf.printf "  %s -> %s\n" f
            (if targets = [] then "(nothing)" else String.concat ", " targets))
        (Axml_core.Termination.call_graph schema);
      `Ok ())

let termination_cmd =
  let doc =
    "Check the sufficient termination condition for rewritings: is the service call graph \
     (restricted to the document's calls, if one is given) acyclic?"
  in
  let schema_required =
    Arg.(
      required
      & opt (some file) None
      & info [ "s"; "schema" ] ~docv:"FILE" ~doc:"Schema file.")
  in
  let doc_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"Restrict to this document's calls.")
  in
  Cmd.v (Cmd.info "termination" ~doc) Term.(ret (const termination $ schema_required $ doc_opt))

(* ---------------- serve ---------------- *)

let serve verbose services_path host port wire max_conns workers latency jitter jitter_seed
    fault_rate fault_seed max_retries timeout trace_out metrics_out =
  setup_logs verbose;
  if latency < 0.0 then fail "latency must be >= 0"
  else if jitter < 0.0 then fail "latency-jitter must be >= 0"
  else if max_conns < 1 then fail "max-conns must be >= 1"
  else if workers < 1 then fail "workers must be >= 1"
  else
  let registry = Registry.create () in
  match Axml_services.Spec.load_file registry services_path with
  | exception Axml_services.Spec.Error m -> fail "services: %s" m
  | exception Sys_error m -> fail "%s" m
  | names -> (
    match apply_faults registry ~fault_rate ~fault_seed ~max_retries ~timeout with
    | Error m -> fail "%s" m
    | Ok () -> (
      let obs = make_obs ~trace:trace_out ~metrics:metrics_out in
      let caps =
        let module W = Axml_net.Wire in
        match wire with
        | `Auto -> [ W.cap_project; W.cap_shard; W.cap_binary ]
        | `Json -> [ W.cap_project; W.cap_shard ]
      in
      match
        Server.create ~host ~port ~obs ~caps ~max_conns ~workers ~delay:latency ~jitter
          ~jitter_seed ~registry ()
      with
      | exception Unix.Unix_error (e, _, _) ->
        fail "cannot listen on %s:%d: %s" host port (Unix.error_message e)
      | server ->
        Printf.printf "serving %d service(s) on %s:%d: %s\n%!" (List.length names) host
          (Server.port server) (String.concat ", " names);
        let shutdown _ = Server.stop server in
        Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
        Server.run server;
        write_obs ~trace:trace_out ~metrics:metrics_out obs;
        `Ok ()))

let serve_cmd =
  let doc =
    "Serve a registry to remote AXML peers over TCP: loads a declarative service spec (the \
     $(b,--services) format of $(b,axml eval)) and answers $(b,invoke) requests, evaluating \
     pushed subqueries provider-side. Stop with SIGINT/SIGTERM. Peers connect with $(b,axml \
     eval --connect HOST:PORT)."
  in
  let services_required =
    Arg.(
      required
      & opt (some file) None
      & info [ "services" ] ~docv:"FILE" ~doc:"Table-driven service definitions to serve.")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (default loopback).")
  in
  let port_arg =
    Arg.(
      value & opt int 7342
      & info [ "port" ] ~docv:"PORT" ~doc:"Port to bind; 0 picks an ephemeral port.")
  in
  let latency_arg =
    Arg.(
      value & opt float 0.0
      & info [ "latency" ] ~docv:"SECONDS"
          ~doc:
            "Sleep $(docv) of real wall-clock time before serving each invoke request — \
             injected provider latency for wall-clock experiments (E9).")
  in
  let jitter_arg =
    Arg.(
      value & opt float 0.0
      & info [ "latency-jitter" ] ~docv:"SECONDS"
          ~doc:
            "Add a uniform random $(b,[0,)$(docv)$(b,)) of wall-clock time on top of \
             $(b,--latency) before serving each request — seeded, reproducible provider \
             noise for balancing experiments (E12).")
  in
  let jitter_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "jitter-seed" ] ~docv:"N" ~doc:"Seed for the $(b,--latency-jitter) stream.")
  in
  let serve_wire_arg =
    Arg.(
      value
      & opt wire_conv `Auto
      & info [ "wire" ] ~docv:"CODEC"
          ~doc:
            "Frame codecs offered to peers: $(b,binary) (the default) advertises the \
             compact binary codec in the capability handshake — clients that also speak it \
             switch over, everyone else stays on JSON; $(b,json) never advertises it.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 8192
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent connection cap: at $(docv) live connections the server parks its \
             accept interest (the TCP backlog absorbs the burst) and resumes as \
             connections close.")
  in
  let workers_arg =
    Arg.(
      value & opt int 32
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Request-handler threads behind the event loop — how many requests execute \
             concurrently (they mostly sleep in injected latency and service waits).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const serve $ verbose_flag $ services_required $ host_arg $ port_arg $ serve_wire_arg
       $ max_conns_arg $ workers_arg $ latency_arg
       $ jitter_arg $ jitter_seed_arg $ fault_rate_arg $ fault_seed_arg $ max_retries_arg
       $ timeout_arg $ trace_arg $ metrics_arg))

(* ---------------- fuzz ---------------- *)

let fuzz verbose seed iters watchdog family artifacts =
  setup_logs verbose;
  if iters <= 0 then fail "--iters must be positive"
  else if watchdog <= 0.0 then fail "--watchdog must be positive"
  else
    let family_of_name = function
      | None -> Ok None
      | Some name -> (
        match List.assoc_opt name Adversary.families with
        | Some f -> Ok (Some f)
        | None ->
          Error
            (Printf.sprintf "unknown family %S (one of: %s)" name
               (String.concat ", " (List.map fst Adversary.families))))
    in
    match family_of_name family with
    | Error m -> fail "%s" m
    | Ok family -> (
      let log =
        if verbose then fun m -> Printf.eprintf "%s\n%!" m else fun (_ : string) -> ()
      in
      let report = Fuzz.run ~watchdog ~log ?family ~seed ~iters () in
      match report.Fuzz.failure with
      | None ->
        Printf.printf "fuzz: %d iteration(s), 0 oracle violations (seed %d)\n"
          report.Fuzz.iterations seed;
        `Ok ()
      | Some f ->
        let failure_text =
          String.concat "\n"
            [
              Printf.sprintf "oracle: %s — %s" f.Fuzz.first_failure.Fuzz.oracle
                f.Fuzz.first_failure.Fuzz.detail;
              Printf.sprintf "case:   %s" (Fuzz.case_to_string f.Fuzz.failed_case);
              Printf.sprintf "shrunk: %s" (Fuzz.case_to_string f.Fuzz.shrunk_case);
              Printf.sprintf "        %s — %s" f.Fuzz.shrunk_failure.Fuzz.oracle
                f.Fuzz.shrunk_failure.Fuzz.detail;
              Printf.sprintf "replay: %s" (Fuzz.replay_hint f.Fuzz.failed_case);
            ]
        in
        Printf.printf "fuzz: FAILED after %d iteration(s)\n%s\n" report.Fuzz.iterations
          failure_text;
        (match artifacts with
        | None -> ()
        | Some dir ->
          (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let write name s =
            let oc = open_out (Filename.concat dir name) in
            output_string oc s;
            output_char oc '\n';
            close_out oc
          in
          write "failure.txt" failure_text;
          write "shrunk.xml" f.Fuzz.shrunk_xml;
          Printf.printf "artifacts: %s\n" dir);
        fail "oracle violation (replay: %s)" (Fuzz.replay_hint f.Fuzz.failed_case))

let fuzz_cmd =
  let doc =
    "Differential fuzzing over adversarial workloads: each iteration derives a hostile \
     instance family, strategy, jobs level, local or loopback-remote registry, fault \
     schedule and budget from the seed, and checks the oracle battery (lazy answers within \
     the fault-free naive reference, complete-flag semantics, byte-identical answers across \
     jobs levels, report/metrics/trace reconciliation, push equivalence, budget-bounded \
     termination under a watchdog). Failures are shrunk to a minimal case and a one-line \
     replay is printed."
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Base seed: iteration $(i,i) checks the case derived from seed + $(i,i).")
  in
  let iters_arg =
    Arg.(value & opt int 100 & info [ "iters" ] ~docv:"N" ~doc:"Iterations to run.")
  in
  let watchdog_arg =
    Arg.(
      value & opt float 30.0
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline per evaluation arm; exceeding it is an oracle failure.")
  in
  let family_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "family" ] ~docv:"NAME"
          ~doc:
            "Restrict to one adversarial family (bounded-recursion, unbounded-recursion, \
             skewed-fanout, push-keep-all, push-drop-all, deep-nesting).")
  in
  let artifacts_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:
            "On failure, write failure.txt (case, shrunk case, replay line) and shrunk.xml \
             (the minimal failing instance) into $(docv).")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      ret
        (const fuzz $ verbose_flag $ seed_arg $ iters_arg $ watchdog_arg $ family_arg
       $ artifacts_arg))

(* ---------------- main ---------------- *)

let () =
  let doc = "lazy query evaluation for Active XML documents" in
  let info = Cmd.info "axml" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            snapshot_cmd;
            relevant_cmd;
            layers_cmd;
            guide_cmd;
            run_cmd;
            eval_cmd;
            project_cmd;
            serve_cmd;
            trace_cmd;
            generate_cmd;
            validate_cmd;
            termination_cmd;
            fuzz_cmd;
          ]))
