module Registry = Axml_services.Registry
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Project = Axml_project.Project

type conn = {
  fd : Unix.file_descr;
  mutable next_id : int;
  codec : Wire.codec;  (* negotiated at handshake; Json unless both ends speak binary *)
  scratch : Wire.scratch;
      (* per-connection encode/decode buffers, reused across requests —
         no fresh frame buffer per call on a warm connection *)
}

type t = {
  host : string;
  port : int;
  pool_size : int;
  connect_timeout : float;
  wire : [ `Auto | `Json ];
  mu : Mutex.t;
  mutable idle : conn list;
  mutable idle_len : int;
      (* length of [idle], maintained so giveback's pool-bound check is
         O(1) instead of walking the list under the mutex *)
  mutable advertised : Wire.service_info list option;
  mutable peer_caps : string list;
      (* what the last Welcome advertised; [] until the first handshake,
         which is also what a pre-capability peer negotiates to *)
}

let create ?(pool_size = 4) ?(connect_timeout = 10.0) ?(wire = `Auto) ~host ~port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    host;
    port;
    pool_size;
    connect_timeout;
    wire;
    mu = Mutex.create ();
    idle = [];
    idle_len = 0;
    advertised = None;
    peer_caps = [];
  }

let host t = t.host
let port t = t.port
let capabilities t = Mutex.protect t.mu (fun () -> t.peer_caps)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg (Printf.sprintf "cannot resolve host %S" host))

let set_deadline fd seconds =
  let s = if seconds = infinity || seconds <= 0.0 then 0.0 else seconds in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO s

(* Dial + handshake. Raises Unix_error / Wire.Protocol_error / Wire.Closed;
   the caller wraps those into Transport_error. *)
let dial t ~obs =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    set_deadline fd t.connect_timeout;
    Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let my_caps =
      match t.wire with
      | `Json -> [ Wire.cap_project ]
      | `Auto -> [ Wire.cap_project; Wire.cap_binary ]
    in
    ignore (Wire.send fd (Wire.Hello { version = Wire.version; caps = my_caps }));
    match Wire.recv fd with
    | Wire.Welcome { version; services; caps }, _ when version = Wire.version ->
      Mutex.protect t.mu (fun () ->
          t.advertised <- Some services;
          t.peer_caps <- caps);
      Metrics.incr obs.Obs.metrics "net.connects";
      let codec =
        if List.mem Wire.cap_binary my_caps && List.mem Wire.cap_binary caps then
          Wire.Binary
        else Wire.Json
      in
      { fd; next_id = 1; codec; scratch = Wire.scratch () }
    | Wire.Error { message; _ }, _ -> raise (Wire.Protocol_error message)
    | _ -> raise (Wire.Protocol_error "expected a welcome handshake")
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* An idle connection that polls readable is stale: request/response
   leaves nothing in flight, so pending bytes mean EOF or garbage. *)
let healthy conn =
  match Unix.select [ conn.fd ] [] [] 0.0 with
  | [], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

let rec borrow t ~obs =
  let pooled =
    Mutex.protect t.mu (fun () ->
        match t.idle with
        | [] -> None
        | conn :: rest ->
          t.idle <- rest;
          t.idle_len <- t.idle_len - 1;
          Some conn)
  in
  match pooled with
  | None -> dial t ~obs
  | Some conn ->
    if healthy conn then begin
      Metrics.incr obs.Obs.metrics "net.reuses";
      conn
    end
    else begin
      Metrics.incr obs.Obs.metrics "net.stale_drops";
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      borrow t ~obs
    end

let giveback t conn =
  let keep =
    Mutex.protect t.mu (fun () ->
        if t.idle_len < t.pool_size then begin
          t.idle <- conn :: t.idle;
          t.idle_len <- t.idle_len + 1;
          true
        end
        else false)
  in
  if not keep then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let discard conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let services t ?(obs = Obs.null) () =
  match Mutex.protect t.mu (fun () -> t.advertised) with
  | Some s -> s
  | None -> (
    match borrow t ~obs with
    | conn ->
      giveback t conn;
      Mutex.protect t.mu (fun () -> Option.value t.advertised ~default:[])
    | exception Unix.Unix_error (e, _, _) ->
      raise
        (Registry.Transport_error
           {
             wire = { Registry.sent = 0; received = 0; served_push = false; elapsed = 0.0 };
             transient = true;
             timeout = false;
             reason = Unix.error_message e;
           })
    | exception (Wire.Protocol_error m | Failure m) ->
      raise
        (Registry.Transport_error
           {
             wire = { Registry.sent = 0; received = 0; served_push = false; elapsed = 0.0 };
             transient = false;
             timeout = false;
             reason = m;
           })
    | exception Wire.Closed ->
      raise
        (Registry.Transport_error
           {
             wire = { Registry.sent = 0; received = 0; served_push = false; elapsed = 0.0 };
             transient = true;
             timeout = false;
             reason = "connection closed during handshake";
           }))

let call t ~obs ~timeout ~service ~params ~push =
  let t0 = Unix.gettimeofday () in
  let m = obs.Obs.metrics in
  let tr = obs.Obs.trace in
  let span =
    if Trace.enabled tr then
      Trace.open_span tr ~cat:"net"
        ~attrs:
          [
            ("service", Trace.Str service);
            ("endpoint", Trace.Str (Printf.sprintf "%s:%d" t.host t.port));
            ("pushed", Trace.Bool (push <> None));
          ]
        "net.request"
    else Trace.none
  in
  let close_span ~outcome ~sent ~received =
    if Trace.enabled tr then
      Trace.close_span tr
        ~attrs:
          [
            ("outcome", Trace.Str outcome);
            ("sent", Trace.Int sent);
            ("received", Trace.Int received);
          ]
        span
  in
  let wire ~sent ~received ~pushed =
    {
      Registry.sent;
      received;
      served_push = pushed;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let fail ?(sent = 0) ?(received = 0) ~outcome ~transient ~timeout:timed_out reason =
    Metrics.incr m (if timed_out then "net.timeouts" else "net.errors");
    close_span ~outcome ~sent ~received;
    raise
      (Registry.Transport_error
         { wire = wire ~sent ~received ~pushed:false; transient; timeout = timed_out; reason })
  in
  match borrow t ~obs with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    fail ~outcome:"timeout" ~transient:true ~timeout:true "handshake timed out"
  | exception Unix.Unix_error (e, _, _) ->
    fail ~outcome:"connect" ~transient:true ~timeout:false (Unix.error_message e)
  | exception (Wire.Protocol_error reason | Failure reason) ->
    fail ~outcome:"protocol" ~transient:false ~timeout:false reason
  | exception Wire.Closed ->
    fail ~outcome:"closed" ~transient:true ~timeout:false
      "connection closed during handshake"
  | conn -> (
    let id = conn.next_id in
    conn.next_id <- id + 1;
    Metrics.incr m ~labels:[ ("service", service) ] "net.requests";
    match
      set_deadline conn.fd timeout;
      let sent =
        Wire.send ~codec:conn.codec ~scratch:conn.scratch conn.fd
          (Wire.Invoke { id; service; params; push })
      in
      let reply, received = Wire.recv ~scratch:conn.scratch conn.fd in
      (sent, reply, received)
    with
    | sent, Wire.Result { id = rid; pushed; forest }, received when rid = id ->
      giveback t conn;
      Metrics.incr m ~by:sent "net.request_bytes";
      Metrics.incr m ~by:received "net.response_bytes";
      close_span ~outcome:"ok" ~sent ~received;
      (forest, wire ~sent ~received ~pushed)
    | sent, Wire.Degraded { id = rid; message; _ }, received when rid = id ->
      (* The server's own retry budget is spent; retrying the wire would
         only repeat its defeat. Degrade instead. *)
      giveback t conn;
      fail ~sent ~received ~outcome:"degraded" ~transient:false ~timeout:false
        ("provider degraded: " ^ message)
    | sent, Wire.Error { id = rid; transient; message }, received when rid = id ->
      giveback t conn;
      fail ~sent ~received ~outcome:"error" ~transient ~timeout:false message
    | sent, _, received ->
      discard conn;
      fail ~sent ~received ~outcome:"protocol" ~transient:false ~timeout:false
        "mismatched response id"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      discard conn;
      fail ~outcome:"timeout" ~transient:true ~timeout:true
        (Printf.sprintf "no response within %gs" timeout)
    | exception Unix.Unix_error (e, _, _) ->
      discard conn;
      fail ~outcome:"io" ~transient:true ~timeout:false (Unix.error_message e)
    | exception Wire.Closed ->
      discard conn;
      fail ~outcome:"closed" ~transient:true ~timeout:false "connection closed by peer"
    | exception Wire.Protocol_error reason ->
      discard conn;
      fail ~outcome:"protocol" ~transient:false ~timeout:false reason)

let eval t ?(obs = Obs.null) ?(timeout = infinity) ?projector ~strategy query doc =
  let m = obs.Obs.metrics in
  let tr = obs.Obs.trace in
  let span =
    if Trace.enabled tr then
      Trace.open_span tr ~cat:"net"
        ~attrs:
          [
            ("strategy", Trace.Str strategy);
            ("endpoint", Trace.Str (Printf.sprintf "%s:%d" t.host t.port));
          ]
        "net.eval"
    else Trace.none
  in
  let close_span ~outcome =
    if Trace.enabled tr then
      Trace.close_span tr ~attrs:[ ("outcome", Trace.Str outcome) ] span
  in
  let fail ~outcome ~transient ~timeout:timed_out reason =
    Metrics.incr m (if timed_out then "net.timeouts" else "net.errors");
    close_span ~outcome;
    raise
      (Registry.Transport_error
         {
           wire = { Registry.sent = 0; received = 0; served_push = false; elapsed = 0.0 };
           transient;
           timeout = timed_out;
           reason;
         })
  in
  match borrow t ~obs with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    fail ~outcome:"timeout" ~transient:true ~timeout:true "handshake timed out"
  | exception Unix.Unix_error (e, _, _) ->
    fail ~outcome:"connect" ~transient:true ~timeout:false (Unix.error_message e)
  | exception (Wire.Protocol_error reason | Failure reason) ->
    fail ~outcome:"protocol" ~transient:false ~timeout:false reason
  | exception Wire.Closed ->
    fail ~outcome:"closed" ~transient:true ~timeout:false
      "connection closed during handshake"
  | conn -> (
    let id = conn.next_id in
    conn.next_id <- id + 1;
    Metrics.incr m ~labels:[ ("strategy", strategy) ] "net.evals";
    (* Project only when the peer negotiated the capability — a
       pre-capability peer must receive the document whole. Borrowing
       dialed (or reused a dialed) connection, so peer_caps is settled. *)
    let doc, projected =
      match projector with
      | Some p when List.mem Wire.cap_project (capabilities t) ->
        let doc', st = Project.tree p doc in
        Metrics.incr m ~by:st.Project.bytes_saved "net.projected_bytes_saved";
        (doc', true)
      | _ -> (doc, false)
    in
    match
      set_deadline conn.fd timeout;
      let sent =
        Wire.send ~codec:conn.codec ~scratch:conn.scratch conn.fd
          (Wire.Eval { id; strategy; query; doc; projected })
      in
      let reply, received = Wire.recv ~scratch:conn.scratch conn.fd in
      (sent, reply, received)
    with
    | sent, Wire.Report { id = rid; report }, received when rid = id ->
      giveback t conn;
      Metrics.incr m ~by:sent "net.request_bytes";
      Metrics.incr m ~by:received "net.response_bytes";
      close_span ~outcome:"ok";
      report
    | _, Wire.Error { id = rid; transient; message }, _ when rid = id ->
      giveback t conn;
      fail ~outcome:"error" ~transient ~timeout:false message
    | _, _, _ ->
      discard conn;
      fail ~outcome:"protocol" ~transient:false ~timeout:false "mismatched response id"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      discard conn;
      fail ~outcome:"timeout" ~transient:true ~timeout:true
        (Printf.sprintf "no response within %gs" timeout)
    | exception Unix.Unix_error (e, _, _) ->
      discard conn;
      fail ~outcome:"io" ~transient:true ~timeout:false (Unix.error_message e)
    | exception Wire.Closed ->
      discard conn;
      fail ~outcome:"closed" ~transient:true ~timeout:false "connection closed by peer"
    | exception Wire.Protocol_error reason ->
      discard conn;
      fail ~outcome:"protocol" ~transient:false ~timeout:false reason)

let close t =
  let conns =
    Mutex.protect t.mu (fun () ->
        let cs = t.idle in
        t.idle <- [];
        t.idle_len <- 0;
        cs)
  in
  List.iter discard conns
