(** The AXML peer wire protocol.

    Peers exchange {e frames}: a 4-byte big-endian length followed by
    that many bytes of compact {!Axml_obs.Json} — the same hand-rolled
    JSON the observability sinks use, so the whole protocol needs no
    dependency beyond [Unix]. One JSON value per frame; the protocol is
    strictly request/response over one connection.

    A connection opens with a version handshake ({!Hello} from the
    client, {!Welcome} from the server, which also advertises the served
    registry), then carries any number of {!Invoke} or {!Eval}
    requests. An {!Invoke} names a service, ships its parameter forest
    and optionally a pushed [sub_q_v] tree pattern (§7 of the paper);
    the server answers {!Result} (with the — possibly provider-side
    pruned — forest), {!Error} (carrying a transient flag so clients
    know whether to retry) or {!Degraded} (the server's own retry
    budget against its backends was exhausted: the client should
    degrade gracefully, not retry). An {!Eval} ships a whole query +
    document for evaluation against the peer's registry; the server
    answers {!Report} (the unified engine report) or {!Error}.

    Trees and patterns are encoded structurally (not as embedded XML
    text), so forests round-trip {e exactly} — including whitespace-only
    text leaves the XML parser would drop. *)

val version : int
(** The protocol version sent in {!Hello} / {!Welcome}; peers must
    match exactly. Optional features ride the handshake as {e
    capabilities} instead: opaque strings listed in both [Hello] and
    [Welcome], so either side uses a feature only when the other
    advertised it. Pre-capability peers encode no ["caps"] field and
    decode to the empty list — negotiation degrades to "none" and the
    wire format they see is unchanged. *)

val cap_project : string
(** Capability: this peer understands type-based document projection —
    a client may ship a projected document in {!Eval} (flagged
    [projected]), and a server holding a schema may project
    non-push-capable service results against a pushed pattern. *)

val cap_shard : string
(** Capability: this peer is shard-aware — its {!Welcome} service list
    is a complete advertisement, safe for the scheduler's replica
    discovery (grouping identical advertisements from several peers into
    replica sets) and static shard assignment. No wire-format change
    rides on it; pre-shard peers simply don't advertise it and are
    treated as single, non-replicated owners. *)

val max_frame : int
(** Frames above this many payload bytes (64 MiB) are rejected with
    {!Protocol_error} before any allocation. *)

exception Protocol_error of string
(** Malformed frame or envelope: bad length prefix, oversized frame,
    JSON that does not parse, or an envelope that does not decode. *)

exception Closed
(** The peer closed the connection (EOF mid-frame or before one). *)

(** {2 Codecs} *)

val tree_to_json : Axml_xml.Tree.t -> Axml_obs.Json.t
val tree_of_json : Axml_obs.Json.t -> Axml_xml.Tree.t
(** Raises {!Protocol_error}. *)

val forest_to_json : Axml_xml.Tree.forest -> Axml_obs.Json.t
val forest_of_json : Axml_obs.Json.t -> Axml_xml.Tree.forest

val pattern_to_json : Axml_query.Pattern.node -> Axml_obs.Json.t
val pattern_of_json : Axml_obs.Json.t -> Axml_query.Pattern.node
(** The decoded pattern carries fresh pids (pattern nodes are allocated
    from a global counter); axes, labels, result flags and structure
    round-trip exactly. Raises {!Protocol_error}. *)

(** {2 Envelopes} *)

type service_info = { name : string; push : bool }

type message =
  | Hello of { version : int; caps : string list }
  | Welcome of { version : int; services : service_info list; caps : string list }
  | Invoke of {
      id : int;
      service : string;
      params : Axml_xml.Tree.forest;
      push : Axml_query.Pattern.node option;
    }
  | Result of { id : int; pushed : bool; forest : Axml_xml.Tree.forest }
  | Error of { id : int; transient : bool; message : string }
  | Degraded of { id : int; message : string; retries : int; timeouts : int }
  | Eval of {
      id : int;
      strategy : string;  (** ["naive"] or ["lazy"] *)
      query : Axml_query.Pattern.node;
      doc : Axml_xml.Tree.t;
      projected : bool;
          (** the document was already projected against [query]
              (informational; only sent to peers advertising
              {!cap_project}, and omitted from the JSON when false) *)
    }
      (** Ship a whole query + document to the peer for evaluation
          against its served registry (remote evaluation, the mirror
          image of query pushing: instead of pulling the peer's data
          here, the query travels to the data). *)
  | Report of { id : int; report : Axml_obs.Json.t }
      (** Answer to {!Eval}: the unified
          {!Axml_engine.Engine.report}, serialized with the engine's
          [report_to_json] — the same shape [axml run --report-json]
          emits, whichever strategy ran. *)

val message_to_json : message -> Axml_obs.Json.t
val message_of_json : Axml_obs.Json.t -> message
(** Raises {!Protocol_error} on unknown or malformed envelopes. *)

(** {2 Frame I/O}

    All functions handle partial reads/writes and EINTR; other [Unix]
    errors (including the EAGAIN a socket deadline raises) propagate to
    the caller. Byte counts include the 4-byte header — they are what
    the cost accounting reports as wire traffic. *)

val write_frame : Unix.file_descr -> Axml_obs.Json.t -> int
(** Returns the bytes written. *)

val read_frame : Unix.file_descr -> Axml_obs.Json.t * int
(** Returns the value and the bytes read. Raises {!Closed} on EOF,
    {!Protocol_error} on garbage. *)

val send : Unix.file_descr -> message -> int
val recv : Unix.file_descr -> message * int
