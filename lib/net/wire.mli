(** The AXML peer wire protocol.

    Peers exchange {e frames}: a 4-byte big-endian length followed by
    that many payload bytes. The payload is compact {!Axml_obs.Json} —
    the same hand-rolled JSON the observability sinks use, so the whole
    protocol needs no dependency beyond [Unix] — or, when both ends
    advertise the {!cap_binary} capability, the length-prefixed binary
    codec ({!Binary}). {!max_frame} fits in 26 bits, so the top bit of
    the first header byte is free: binary frames set it and are
    self-describing; JSON frames (including everything a pre-binary
    peer can produce) leave it clear. One message per frame; the
    protocol is strictly request/response over one connection.

    A connection opens with a version handshake ({!Hello} from the
    client, {!Welcome} from the server, which also advertises the served
    registry), then carries any number of {!Invoke} or {!Eval}
    requests. An {!Invoke} names a service, ships its parameter forest
    and optionally a pushed [sub_q_v] tree pattern (§7 of the paper);
    the server answers {!Result} (with the — possibly provider-side
    pruned — forest), {!Error} (carrying a transient flag so clients
    know whether to retry) or {!Degraded} (the server's own retry
    budget against its backends was exhausted: the client should
    degrade gracefully, not retry). An {!Eval} ships a whole query +
    document for evaluation against the peer's registry; the server
    answers {!Report} (the unified engine report) or {!Error}.

    Trees and patterns are encoded structurally (not as embedded XML
    text), so forests round-trip {e exactly} — including whitespace-only
    text leaves the XML parser would drop. *)

val version : int
(** The protocol version sent in {!Hello} / {!Welcome}; peers must
    match exactly. Optional features ride the handshake as {e
    capabilities} instead: opaque strings listed in both [Hello] and
    [Welcome], so either side uses a feature only when the other
    advertised it. Pre-capability peers encode no ["caps"] field and
    decode to the empty list — negotiation degrades to "none" and the
    wire format they see is unchanged. *)

val cap_project : string
(** Capability: this peer understands type-based document projection —
    a client may ship a projected document in {!Eval} (flagged
    [projected]), and a server holding a schema may project
    non-push-capable service results against a pushed pattern. *)

val cap_shard : string
(** Capability: this peer is shard-aware — its {!Welcome} service list
    is a complete advertisement, safe for the scheduler's replica
    discovery (grouping identical advertisements from several peers into
    replica sets) and static shard assignment. No wire-format change
    rides on it; pre-shard peers simply don't advertise it and are
    treated as single, non-replicated owners. *)

val cap_binary : string
(** Capability: this peer speaks the binary codec. The handshake
    ({!Hello}/{!Welcome}) is always JSON; once both sides have
    advertised [cap_binary], either end may encode subsequent frames
    with {!Binary} (the flag bit in the header tells the receiver,
    frame by frame). Peers that never advertise it see pure JSON —
    byte-for-byte the pre-binary protocol. *)

val max_frame : int
(** Frames above this many payload bytes (64 MiB) are rejected with
    {!Protocol_error} before any allocation. *)

exception Protocol_error of string
(** Malformed frame or envelope: bad length prefix, oversized frame,
    JSON that does not parse, or an envelope that does not decode. *)

exception Closed
(** The peer closed the connection (EOF mid-frame or before one). *)

(** {2 Codecs} *)

val tree_to_json : Axml_xml.Tree.t -> Axml_obs.Json.t
val tree_of_json : Axml_obs.Json.t -> Axml_xml.Tree.t
(** Raises {!Protocol_error}. *)

val forest_to_json : Axml_xml.Tree.forest -> Axml_obs.Json.t
val forest_of_json : Axml_obs.Json.t -> Axml_xml.Tree.forest

val pattern_to_json : Axml_query.Pattern.node -> Axml_obs.Json.t
val pattern_of_json : Axml_obs.Json.t -> Axml_query.Pattern.node
(** The decoded pattern carries fresh pids (pattern nodes are allocated
    from a global counter); axes, labels, result flags and structure
    round-trip exactly. Raises {!Protocol_error}. *)

(** {2 The binary codec}

    A compact alternative to the JSON payloads: one-byte tags,
    length-prefixed strings, LEB128 varints (zigzag where values can be
    negative). Semantically identical to the JSON codec — every value
    that round-trips through one round-trips through the other to the
    same result. Decoding is hardened against hostile bytes: all reads
    are bounds-checked, every length/count is capped by the bytes
    remaining in the frame, and pathological nesting raises
    {!Protocol_error}, never an escaped [Stack_overflow]. *)

type codec = Json | Binary

val codec_name : codec -> string
(** ["json"] / ["binary"] — the values the CLI's [--wire] flag takes. *)

val tree_to_binary : Axml_xml.Tree.t -> string
val tree_of_binary : string -> Axml_xml.Tree.t
(** Raises {!Protocol_error} (also on trailing bytes). *)

val forest_to_binary : Axml_xml.Tree.forest -> string
val forest_of_binary : string -> Axml_xml.Tree.forest

val pattern_to_binary : Axml_query.Pattern.node -> string
val pattern_of_binary : string -> Axml_query.Pattern.node
(** Fresh pids, exactly like {!pattern_of_json}. *)

(** {2 Envelopes} *)

type service_info = { name : string; push : bool }

type message =
  | Hello of { version : int; caps : string list }
  | Welcome of { version : int; services : service_info list; caps : string list }
  | Invoke of {
      id : int;
      service : string;
      params : Axml_xml.Tree.forest;
      push : Axml_query.Pattern.node option;
    }
  | Result of { id : int; pushed : bool; forest : Axml_xml.Tree.forest }
  | Error of { id : int; transient : bool; message : string }
  | Degraded of { id : int; message : string; retries : int; timeouts : int }
  | Eval of {
      id : int;
      strategy : string;  (** ["naive"] or ["lazy"] *)
      query : Axml_query.Pattern.node;
      doc : Axml_xml.Tree.t;
      projected : bool;
          (** the document was already projected against [query]
              (informational; only sent to peers advertising
              {!cap_project}, and omitted from the JSON when false) *)
    }
      (** Ship a whole query + document to the peer for evaluation
          against its served registry (remote evaluation, the mirror
          image of query pushing: instead of pulling the peer's data
          here, the query travels to the data). *)
  | Report of { id : int; report : Axml_obs.Json.t }
      (** Answer to {!Eval}: the unified
          {!Axml_engine.Engine.report}, serialized with the engine's
          [report_to_json] — the same shape [axml run --report-json]
          emits, whichever strategy ran. *)

val message_to_json : message -> Axml_obs.Json.t
val message_of_json : Axml_obs.Json.t -> message
(** Raises {!Protocol_error} on unknown or malformed envelopes. *)

(** {2 Frame I/O}

    All functions handle partial reads/writes and EINTR; other [Unix]
    errors (including the EAGAIN a socket deadline raises) propagate to
    the caller. Byte counts include the 4-byte header — they are what
    the cost accounting reports as wire traffic. *)

val write_frame : Unix.file_descr -> Axml_obs.Json.t -> int
(** JSON-only frame write (never sets the binary flag). Returns the
    bytes written. *)

val read_frame : Unix.file_descr -> Axml_obs.Json.t * int
(** JSON-only frame read (a binary-flagged header is rejected as
    {!Protocol_error}). Returns the value and the bytes read. Raises
    {!Closed} on EOF, {!Protocol_error} on garbage. *)

type scratch
(** Per-connection reusable encode/decode buffers. A hot connection
    that threads one scratch through every {!send}/{!recv} allocates no
    fresh frame buffers after warm-up — the backing storage amortises to
    the largest frame the connection has seen. A scratch belongs to one
    connection at a time; it is not thread-safe. *)

val scratch : unit -> scratch

val encode_frame : ?codec:codec -> message -> string
(** The complete frame — header included — as it would appear on the
    wire. [codec] defaults to [Json]. Raises {!Protocol_error} if the
    payload exceeds {!max_frame}. *)

val encode_frame_into : ?codec:codec -> scratch -> message -> Bytes.t * int
(** Like {!encode_frame} but into the scratch's reusable buffer:
    [(backing, frame_length)]. The bytes are valid until the next
    encode or {!send} on the same scratch. *)

val decode_frame_header : string -> codec * int
(** Inspects the first 4 bytes: the payload codec and length. Raises
    {!Protocol_error} on truncation or a length outside
    [(0, max_frame]]. *)

val decode_payload : ?pos:int -> ?len:int -> codec -> string -> message
(** Decodes one payload from [s.[pos .. pos+len-1]] ([pos] defaults to
    0, [len] to the rest of the string). Raises {!Protocol_error} on
    malformed bytes, unknown tags, or trailing garbage. *)

val send : ?codec:codec -> ?scratch:scratch -> Unix.file_descr -> message -> int
(** [codec] defaults to [Json]. Without a [scratch], fresh buffers are
    allocated per call (the pre-binary behavior). *)

val recv : ?scratch:scratch -> Unix.file_descr -> message * int
(** Auto-detects the codec from the header flag, so a receiver needs no
    out-of-band negotiation state. *)
