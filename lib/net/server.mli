(** [axmld]: serve a {!Axml_services.Registry} to remote AXML peers.

    The server binds a TCP socket and drives {e every} connection from
    one event-loop thread (epoll on Linux, [Unix.select] elsewhere —
    see {!Evloop}): non-blocking accept, per-connection read/write
    state machines assembling frames incrementally, no thread or
    per-frame buffer per connection — which is what lets one server
    hold thousands of concurrent peers. Decoded requests are handed to
    a bounded {!Axml_exec.Exec} pool; replies come back to the loop
    through a completion queue and a self-pipe, and are flushed as the
    socket accepts them. A connection with a request in flight has its
    read interest parked, which applies backpressure and preserves the
    strict in-order request/response contract of the wire protocol.

    Each connection is handshaken ({!Wire.Hello}/{!Wire.Welcome}, exact
    version match, always in JSON); when both sides advertise
    {!Wire.cap_binary}, replies switch to the binary codec. The server
    then serves {!Wire.Invoke} requests by calling
    {!Axml_services.Registry.invoke} on the served registry — pushed
    [sub_q_v] patterns are evaluated provider-side through exactly the
    same {!Axml_services.Witness.prune} path as in-process pushing, and
    the served registry's own fault schedules, retry policies and
    memoization all apply (a flaky spec makes the {e server} retry its
    simulated backends; when its budget runs out the client receives
    {!Wire.Degraded}).

    Connections may also carry {!Wire.Eval} requests: the peer ships a
    whole query + document, the server evaluates it against the served
    registry with the named strategy (naive or lazy, both running on
    the unified {!Axml_engine.Engine} runtime) and replies
    {!Wire.Report} with the engine report — answers, invocation and
    fault accounting included.

    Requests from different connections run {e concurrently} on the
    worker pool: the registry and the observability sinks are
    thread-safe, so no lock is held around behavior execution. Fault
    draws are keyed by the logical call
    ({!Axml_services.Faults.invocation_key}), so a seeded schedule
    produces the same fates regardless of how connections interleave. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?obs:Axml_obs.Obs.t ->
  ?schema:Axml_schema.Schema.t ->
  ?caps:string list ->
  ?delay:float ->
  ?jitter:float ->
  ?jitter_seed:int ->
  ?workers:int ->
  ?max_conns:int ->
  ?force_select:bool ->
  registry:Axml_services.Registry.t ->
  unit ->
  t
(** Binds and listens. [host] defaults to ["127.0.0.1"], [port] to [0]
    (an ephemeral port — read it back with {!port}). [obs] (default
    disabled) records one [net.serve] span per request, with the
    registry's [service.*] spans and metrics nested inside; each request
    records into a private trace fragment ({!Axml_obs.Obs.fork}) folded
    back on completion, so concurrent requests keep the span tree
    well-formed. [schema] (default none) enables provider-side
    projection: results of services that cannot witness-prune are
    projected against the pushed pattern before crossing the wire, when
    both sides negotiated {!Wire.cap_project}. [caps] (default
    [[Wire.cap_project; Wire.cap_shard]]) is what {!Wire.Welcome}
    advertises — pass [[]] to emulate a pre-capability peer in tests.
    [delay] (default [0.0]) injects that many seconds of {e real}
    latency ([Unix.sleepf]) before serving each invoke/eval request —
    the knob behind [axml serve --latency] and the E9 speedup benchmark.
    [jitter] (default [0.0]) adds a further uniform draw from
    [\[0, jitter)] seconds per request, from a [Random.State] seeded
    with [jitter_seed] (default [0]) — the heterogeneous-replica knob
    behind [axml serve --latency-jitter]; the distribution is
    reproducible per seed, but which request gets which draw depends on
    arrival order. [workers] (default 32) is how many requests execute
    concurrently — workers spend their time in service sleeps and
    injected latency, so they are cheap; connections beyond that merely
    queue. [max_conns] (default 8192) caps concurrent connections: at
    the cap the listener's read interest is parked (the backlog, not a
    reset, absorbs the burst) and accepting resumes as connections
    close. [force_select] (default false) pins the event loop to the
    portable select backend even where epoll is available — a test
    knob; select caps fd {e values} at 1024, so high [max_conns] needs
    epoll. [caps] now also defaults to advertising {!Wire.cap_binary}.
    Raises [Unix.Unix_error] when the address cannot be bound. *)

val port : t -> int
(** The actual bound port (useful after [~port:0]). *)

val host : t -> string

val start : t -> unit
(** Spawns the event loop on a background thread and returns. *)

val run : t -> unit
(** Runs the event loop in the calling thread (the [axml serve]
    foreground mode); returns after {!stop}. *)

val stop : t -> unit
(** Stops accepting (the listening socket closes synchronously, so new
    connections are refused from this point on), shuts down every live
    connection, waits for the event loop if {!start} spawned it, and
    joins the worker pool. Idempotent. Must not be called from a
    request handler. *)

val kill_after_reply : t -> unit
(** Test hook for degradation experiments: after the next reply is
    flushed, the server stops exactly as {!stop} does — the client sees
    one successful response and then a dead peer, deterministically
    "mid-run". *)

val connections : t -> int
(** Live connection count. *)
