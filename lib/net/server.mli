(** [axmld]: serve a {!Axml_services.Registry} to remote AXML peers.

    The server binds a TCP socket, accepts connections on a dedicated
    thread and runs one [Thread] per connection. Each connection is
    handshaken ({!Wire.Hello}/{!Wire.Welcome}, exact version match),
    then serves {!Wire.Invoke} requests by calling
    {!Axml_services.Registry.invoke} on the served registry — pushed
    [sub_q_v] patterns are evaluated provider-side through exactly the
    same {!Axml_services.Witness.prune} path as in-process pushing, and
    the served registry's own fault schedules, retry policies and
    memoization all apply (a flaky spec makes the {e server} retry its
    simulated backends; when its budget runs out the client receives
    {!Wire.Degraded}).

    Connections may also carry {!Wire.Eval} requests: the peer ships a
    whole query + document, the server evaluates it against the served
    registry with the named strategy (naive or lazy, both running on
    the unified {!Axml_engine.Engine} runtime) and replies
    {!Wire.Report} with the engine report — answers, invocation and
    fault accounting included.

    Requests from different connections run {e concurrently}: the
    registry and the observability sinks are thread-safe, so no lock is
    held around behavior execution. Fault draws are keyed by the logical
    call ({!Axml_services.Faults.invocation_key}), so a seeded schedule
    produces the same fates regardless of how connections interleave. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?obs:Axml_obs.Obs.t ->
  ?schema:Axml_schema.Schema.t ->
  ?caps:string list ->
  ?delay:float ->
  ?jitter:float ->
  ?jitter_seed:int ->
  registry:Axml_services.Registry.t ->
  unit ->
  t
(** Binds and listens. [host] defaults to ["127.0.0.1"], [port] to [0]
    (an ephemeral port — read it back with {!port}). [obs] (default
    disabled) records one [net.serve] span per request, with the
    registry's [service.*] spans and metrics nested inside; each request
    records into a private trace fragment ({!Axml_obs.Obs.fork}) folded
    back on completion, so concurrent requests keep the span tree
    well-formed. [schema] (default none) enables provider-side
    projection: results of services that cannot witness-prune are
    projected against the pushed pattern before crossing the wire, when
    both sides negotiated {!Wire.cap_project}. [caps] (default
    [[Wire.cap_project; Wire.cap_shard]]) is what {!Wire.Welcome}
    advertises — pass [[]] to emulate a pre-capability peer in tests.
    [delay] (default [0.0]) injects that many seconds of {e real}
    latency ([Unix.sleepf]) before serving each invoke/eval request —
    the knob behind [axml serve --latency] and the E9 speedup benchmark.
    [jitter] (default [0.0]) adds a further uniform draw from
    [\[0, jitter)] seconds per request, from a [Random.State] seeded
    with [jitter_seed] (default [0]) — the heterogeneous-replica knob
    behind [axml serve --latency-jitter]; the distribution is
    reproducible per seed, but which request gets which draw depends on
    arrival order. Raises [Unix.Unix_error] when the address cannot be
    bound. *)

val port : t -> int
(** The actual bound port (useful after [~port:0]). *)

val host : t -> string

val start : t -> unit
(** Spawns the accept loop on a background thread and returns. *)

val run : t -> unit
(** Runs the accept loop in the calling thread (the [axml serve]
    foreground mode); returns after {!stop}. *)

val stop : t -> unit
(** Stops accepting (the listening socket closes synchronously, so new
    connections are refused from this point on), shuts down every live
    connection, and waits for the accept thread if {!start} spawned
    one. Idempotent. Must not be called from a connection handler. *)

val kill_after_reply : t -> unit
(** Test hook for degradation experiments: after the next reply is
    flushed, the server stops exactly as {!stop} does — the client sees
    one successful response and then a dead peer, deterministically
    "mid-run". *)

val connections : t -> int
(** Live connection count. *)
