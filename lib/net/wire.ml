module Tree = Axml_xml.Tree
module P = Axml_query.Pattern
module Json = Axml_obs.Json

let version = 1
let max_frame = 64 * 1024 * 1024

exception Protocol_error of string
exception Closed

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Trees *)

let rec tree_to_json = function
  | Tree.Text s -> Json.String s
  | Tree.Element { Tree.name; attrs; children } ->
    Json.Obj
      (("n", Json.String name)
      :: ((if attrs = [] then []
           else
             [
               ( "a",
                 Json.List
                   (List.map (fun (k, v) -> Json.List [ Json.String k; Json.String v ]) attrs)
               );
             ])
         @
         if children = [] then []
         else [ ("c", Json.List (List.map tree_to_json children)) ]))

let forest_to_json f = Json.List (List.map tree_to_json f)

let rec tree_of_json = function
  | Json.String s -> Tree.Text s
  | Json.Obj _ as j ->
    let name =
      match Json.member "n" j with
      | Json.String s -> s
      | _ -> fail "tree element without a string \"n\" field"
    in
    let attrs =
      match Json.member "a" j with
      | Json.Null -> []
      | Json.List kvs ->
        List.map
          (function
            | Json.List [ Json.String k; Json.String v ] -> (k, v)
            | _ -> fail "tree attribute is not a [key, value] string pair")
          kvs
      | _ -> fail "tree \"a\" field is not a list"
    in
    let children =
      match Json.member "c" j with
      | Json.Null -> []
      | Json.List cs -> List.map tree_of_json cs
      | _ -> fail "tree \"c\" field is not a list"
    in
    Tree.Element { Tree.name; attrs; children }
  | _ -> fail "tree node is neither a string nor an object"

let forest_of_json = function
  | Json.List ts -> List.map tree_of_json ts
  | _ -> fail "forest is not a list"

(* ------------------------------------------------------------------ *)
(* Patterns *)

let axis_to_json = function
  | P.Child -> Json.String "child"
  | P.Descendant -> Json.String "desc"

let axis_of_json = function
  | Json.String "child" -> P.Child
  | Json.String "desc" -> P.Descendant
  | _ -> fail "pattern axis is neither \"child\" nor \"desc\""

let label_to_json = function
  | P.Const s -> Json.Obj [ ("const", Json.String s) ]
  | P.Value s -> Json.Obj [ ("value", Json.String s) ]
  | P.Var s -> Json.Obj [ ("var", Json.String s) ]
  | P.Wildcard -> Json.String "*"
  | P.Or -> Json.String "or"
  | P.Fun P.Any_fun -> Json.Obj [ ("fun", Json.Null) ]
  | P.Fun (P.Named names) ->
    Json.Obj [ ("fun", Json.List (List.map (fun n -> Json.String n) names)) ]

let label_of_json = function
  | Json.String "*" -> P.Wildcard
  | Json.String "or" -> P.Or
  | Json.Obj [ (key, v) ] -> (
    match (key, v) with
    | "const", Json.String s -> P.Const s
    | "value", Json.String s -> P.Value s
    | "var", Json.String s -> P.Var s
    | "fun", Json.Null -> P.Fun P.Any_fun
    | "fun", Json.List names ->
      P.Fun
        (P.Named
           (List.map
              (function Json.String n -> n | _ -> fail "pattern fun name is not a string")
              names))
    | _ -> fail "unknown pattern label %S" key)
  | _ -> fail "pattern label does not decode"

let rec pattern_to_json (n : P.node) =
  Json.Obj
    [
      ("axis", axis_to_json n.P.axis);
      ("label", label_to_json n.P.label);
      ("result", Json.Bool n.P.result);
      ("children", Json.List (List.map pattern_to_json n.P.children));
    ]

let rec pattern_of_json j =
  match j with
  | Json.Obj _ ->
    let axis = axis_of_json (Json.member "axis" j) in
    let label = label_of_json (Json.member "label" j) in
    let result =
      match Json.member "result" j with
      | Json.Bool b -> b
      | Json.Null -> false
      | _ -> fail "pattern result flag is not a boolean"
    in
    let children =
      match Json.member "children" j with
      | Json.Null -> []
      | Json.List cs -> List.map pattern_of_json cs
      | _ -> fail "pattern children is not a list"
    in
    P.make ~axis ~result label children
  | _ -> fail "pattern node is not an object"

(* ------------------------------------------------------------------ *)
(* Envelopes *)

type service_info = { name : string; push : bool }

(* Capabilities ride the handshake as a list of opaque strings; peers
   that predate them decode no "caps" field as the empty list and ignore
   the extra JSON member when encoding — negotiation degrades to "none". *)
let cap_project = "project"

(* A shard-aware peer: its Welcome service list is complete enough to be
   used for replica discovery and shard assignment. Purely an
   advertisement — no wire-format change rides on it. *)
let cap_shard = "shard"

type message =
  | Hello of { version : int; caps : string list }
  | Welcome of { version : int; services : service_info list; caps : string list }
  | Invoke of {
      id : int;
      service : string;
      params : Tree.forest;
      push : P.node option;
    }
  | Result of { id : int; pushed : bool; forest : Tree.forest }
  | Error of { id : int; transient : bool; message : string }
  | Degraded of { id : int; message : string; retries : int; timeouts : int }
  | Eval of { id : int; strategy : string; query : P.node; doc : Tree.t; projected : bool }
  | Report of { id : int; report : Json.t }

let caps_to_json caps = ("caps", Json.List (List.map (fun c -> Json.String c) caps))

let message_to_json = function
  | Hello { version; caps } ->
    Json.Obj
      [ ("type", Json.String "hello"); ("version", Json.Int version); caps_to_json caps ]
  | Welcome { version; services; caps } ->
    Json.Obj
      [
        ("type", Json.String "welcome");
        ("version", Json.Int version);
        ( "services",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj [ ("name", Json.String s.name); ("push", Json.Bool s.push) ])
               services) );
        caps_to_json caps;
      ]
  | Invoke { id; service; params; push } ->
    Json.Obj
      ([
         ("type", Json.String "invoke");
         ("id", Json.Int id);
         ("service", Json.String service);
         ("params", forest_to_json params);
       ]
      @ match push with None -> [] | Some p -> [ ("push", pattern_to_json p) ])
  | Result { id; pushed; forest } ->
    Json.Obj
      [
        ("type", Json.String "result");
        ("id", Json.Int id);
        ("pushed", Json.Bool pushed);
        ("forest", forest_to_json forest);
      ]
  | Error { id; transient; message } ->
    Json.Obj
      [
        ("type", Json.String "error");
        ("id", Json.Int id);
        ("transient", Json.Bool transient);
        ("message", Json.String message);
      ]
  | Degraded { id; message; retries; timeouts } ->
    Json.Obj
      [
        ("type", Json.String "degraded");
        ("id", Json.Int id);
        ("message", Json.String message);
        ("retries", Json.Int retries);
        ("timeouts", Json.Int timeouts);
      ]
  | Eval { id; strategy; query; doc; projected } ->
    Json.Obj
      ([
         ("type", Json.String "eval");
         ("id", Json.Int id);
         ("strategy", Json.String strategy);
         ("query", pattern_to_json query);
         ("doc", tree_to_json doc);
       ]
      @ if projected then [ ("projected", Json.Bool true) ] else [])
  | Report { id; report } ->
    Json.Obj [ ("type", Json.String "report"); ("id", Json.Int id); ("report", report) ]

let int_field key j =
  match Json.member key j with Json.Int i -> i | _ -> fail "missing int field %S" key

let string_field key j =
  match Json.member key j with
  | Json.String s -> s
  | _ -> fail "missing string field %S" key

let bool_field key j =
  match Json.member key j with Json.Bool b -> b | _ -> fail "missing bool field %S" key

(* Absent on pre-capability peers: decode to []. *)
let caps_field j =
  match Json.member "caps" j with
  | Json.Null -> []
  | Json.List cs ->
    List.map (function Json.String c -> c | _ -> fail "capability is not a string") cs
  | _ -> fail "caps is not a list"

let message_of_json j =
  match Json.member "type" j with
  | Json.String "hello" -> Hello { version = int_field "version" j; caps = caps_field j }
  | Json.String "welcome" ->
    let services =
      List.map
        (fun s -> { name = string_field "name" s; push = bool_field "push" s })
        (Json.to_list (Json.member "services" j))
    in
    Welcome { version = int_field "version" j; services; caps = caps_field j }
  | Json.String "invoke" ->
    let push =
      match Json.member "push" j with
      | Json.Null -> None
      | p -> Some (pattern_of_json p)
    in
    Invoke
      {
        id = int_field "id" j;
        service = string_field "service" j;
        params = forest_of_json (Json.member "params" j);
        push;
      }
  | Json.String "result" ->
    Result
      {
        id = int_field "id" j;
        pushed = bool_field "pushed" j;
        forest = forest_of_json (Json.member "forest" j);
      }
  | Json.String "error" ->
    Error
      {
        id = int_field "id" j;
        transient = bool_field "transient" j;
        message = string_field "message" j;
      }
  | Json.String "degraded" ->
    Degraded
      {
        id = int_field "id" j;
        message = string_field "message" j;
        retries = int_field "retries" j;
        timeouts = int_field "timeouts" j;
      }
  | Json.String "eval" ->
    Eval
      {
        id = int_field "id" j;
        strategy = string_field "strategy" j;
        query = pattern_of_json (Json.member "query" j);
        doc = tree_of_json (Json.member "doc" j);
        projected = (match Json.member "projected" j with Json.Bool b -> b | _ -> false);
      }
  | Json.String "report" -> (
    match Json.member "report" j with
    | Json.Null -> fail "report envelope without a \"report\" field"
    | report -> Report { id = int_field "id" j; report })
  | Json.String other -> fail "unknown message type %S" other
  | _ -> fail "envelope without a \"type\" field"

(* ------------------------------------------------------------------ *)
(* Frames *)

let rec really_write fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> really_write fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_write fd buf off len

let rec really_read fd buf off len =
  if len > 0 then
    match Unix.read fd buf off len with
    | 0 -> raise Closed
    | n -> really_read fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_read fd buf off len

let write_frame fd json =
  let payload = Json.to_string json in
  let len = String.length payload in
  if len > max_frame then fail "frame of %d bytes exceeds the %d-byte limit" len max_frame;
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len);
  4 + len

let read_frame fd =
  let header = Bytes.create 4 in
  really_read fd header 0 4;
  let byte i = Char.code (Bytes.get header i) in
  let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  if len <= 0 || len > max_frame then
    fail "frame length %d is outside (0, %d]" len max_frame;
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  match Json.parse (Bytes.unsafe_to_string payload) with
  | Ok v -> (v, 4 + len)
  | Error m -> fail "frame payload is not JSON (%s)" m

let send fd msg = write_frame fd (message_to_json msg)

let recv fd =
  let j, n = read_frame fd in
  (message_of_json j, n)
