module Tree = Axml_xml.Tree
module P = Axml_query.Pattern
module Json = Axml_obs.Json

let version = 1
let max_frame = 64 * 1024 * 1024

exception Protocol_error of string
exception Closed

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Trees *)

let rec tree_to_json = function
  | Tree.Text s -> Json.String s
  | Tree.Element { Tree.name; attrs; children } ->
    Json.Obj
      (("n", Json.String name)
      :: ((if attrs = [] then []
           else
             [
               ( "a",
                 Json.List
                   (List.map (fun (k, v) -> Json.List [ Json.String k; Json.String v ]) attrs)
               );
             ])
         @
         if children = [] then []
         else [ ("c", Json.List (List.map tree_to_json children)) ]))

let forest_to_json f = Json.List (List.map tree_to_json f)

let rec tree_of_json = function
  | Json.String s -> Tree.Text s
  | Json.Obj _ as j ->
    let name =
      match Json.member "n" j with
      | Json.String s -> s
      | _ -> fail "tree element without a string \"n\" field"
    in
    let attrs =
      match Json.member "a" j with
      | Json.Null -> []
      | Json.List kvs ->
        List.map
          (function
            | Json.List [ Json.String k; Json.String v ] -> (k, v)
            | _ -> fail "tree attribute is not a [key, value] string pair")
          kvs
      | _ -> fail "tree \"a\" field is not a list"
    in
    let children =
      match Json.member "c" j with
      | Json.Null -> []
      | Json.List cs -> List.map tree_of_json cs
      | _ -> fail "tree \"c\" field is not a list"
    in
    Tree.Element { Tree.name; attrs; children }
  | _ -> fail "tree node is neither a string nor an object"

let forest_of_json = function
  | Json.List ts -> List.map tree_of_json ts
  | _ -> fail "forest is not a list"

(* ------------------------------------------------------------------ *)
(* Patterns *)

let axis_to_json = function
  | P.Child -> Json.String "child"
  | P.Descendant -> Json.String "desc"

let axis_of_json = function
  | Json.String "child" -> P.Child
  | Json.String "desc" -> P.Descendant
  | _ -> fail "pattern axis is neither \"child\" nor \"desc\""

let label_to_json = function
  | P.Const s -> Json.Obj [ ("const", Json.String s) ]
  | P.Value s -> Json.Obj [ ("value", Json.String s) ]
  | P.Var s -> Json.Obj [ ("var", Json.String s) ]
  | P.Wildcard -> Json.String "*"
  | P.Or -> Json.String "or"
  | P.Fun P.Any_fun -> Json.Obj [ ("fun", Json.Null) ]
  | P.Fun (P.Named names) ->
    Json.Obj [ ("fun", Json.List (List.map (fun n -> Json.String n) names)) ]

let label_of_json = function
  | Json.String "*" -> P.Wildcard
  | Json.String "or" -> P.Or
  | Json.Obj [ (key, v) ] -> (
    match (key, v) with
    | "const", Json.String s -> P.Const s
    | "value", Json.String s -> P.Value s
    | "var", Json.String s -> P.Var s
    | "fun", Json.Null -> P.Fun P.Any_fun
    | "fun", Json.List names ->
      P.Fun
        (P.Named
           (List.map
              (function Json.String n -> n | _ -> fail "pattern fun name is not a string")
              names))
    | _ -> fail "unknown pattern label %S" key)
  | _ -> fail "pattern label does not decode"

let rec pattern_to_json (n : P.node) =
  Json.Obj
    [
      ("axis", axis_to_json n.P.axis);
      ("label", label_to_json n.P.label);
      ("result", Json.Bool n.P.result);
      ("children", Json.List (List.map pattern_to_json n.P.children));
    ]

let rec pattern_of_json j =
  match j with
  | Json.Obj _ ->
    let axis = axis_of_json (Json.member "axis" j) in
    let label = label_of_json (Json.member "label" j) in
    let result =
      match Json.member "result" j with
      | Json.Bool b -> b
      | Json.Null -> false
      | _ -> fail "pattern result flag is not a boolean"
    in
    let children =
      match Json.member "children" j with
      | Json.Null -> []
      | Json.List cs -> List.map pattern_of_json cs
      | _ -> fail "pattern children is not a list"
    in
    P.make ~axis ~result label children
  | _ -> fail "pattern node is not an object"

(* ------------------------------------------------------------------ *)
(* Envelopes *)

type service_info = { name : string; push : bool }

(* Capabilities ride the handshake as a list of opaque strings; peers
   that predate them decode no "caps" field as the empty list and ignore
   the extra JSON member when encoding — negotiation degrades to "none". *)
let cap_project = "project"

(* A shard-aware peer: its Welcome service list is complete enough to be
   used for replica discovery and shard assignment. Purely an
   advertisement — no wire-format change rides on it. *)
let cap_shard = "shard"

type message =
  | Hello of { version : int; caps : string list }
  | Welcome of { version : int; services : service_info list; caps : string list }
  | Invoke of {
      id : int;
      service : string;
      params : Tree.forest;
      push : P.node option;
    }
  | Result of { id : int; pushed : bool; forest : Tree.forest }
  | Error of { id : int; transient : bool; message : string }
  | Degraded of { id : int; message : string; retries : int; timeouts : int }
  | Eval of { id : int; strategy : string; query : P.node; doc : Tree.t; projected : bool }
  | Report of { id : int; report : Json.t }

let caps_to_json caps = ("caps", Json.List (List.map (fun c -> Json.String c) caps))

let message_to_json = function
  | Hello { version; caps } ->
    Json.Obj
      [ ("type", Json.String "hello"); ("version", Json.Int version); caps_to_json caps ]
  | Welcome { version; services; caps } ->
    Json.Obj
      [
        ("type", Json.String "welcome");
        ("version", Json.Int version);
        ( "services",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj [ ("name", Json.String s.name); ("push", Json.Bool s.push) ])
               services) );
        caps_to_json caps;
      ]
  | Invoke { id; service; params; push } ->
    Json.Obj
      ([
         ("type", Json.String "invoke");
         ("id", Json.Int id);
         ("service", Json.String service);
         ("params", forest_to_json params);
       ]
      @ match push with None -> [] | Some p -> [ ("push", pattern_to_json p) ])
  | Result { id; pushed; forest } ->
    Json.Obj
      [
        ("type", Json.String "result");
        ("id", Json.Int id);
        ("pushed", Json.Bool pushed);
        ("forest", forest_to_json forest);
      ]
  | Error { id; transient; message } ->
    Json.Obj
      [
        ("type", Json.String "error");
        ("id", Json.Int id);
        ("transient", Json.Bool transient);
        ("message", Json.String message);
      ]
  | Degraded { id; message; retries; timeouts } ->
    Json.Obj
      [
        ("type", Json.String "degraded");
        ("id", Json.Int id);
        ("message", Json.String message);
        ("retries", Json.Int retries);
        ("timeouts", Json.Int timeouts);
      ]
  | Eval { id; strategy; query; doc; projected } ->
    Json.Obj
      ([
         ("type", Json.String "eval");
         ("id", Json.Int id);
         ("strategy", Json.String strategy);
         ("query", pattern_to_json query);
         ("doc", tree_to_json doc);
       ]
      @ if projected then [ ("projected", Json.Bool true) ] else [])
  | Report { id; report } ->
    Json.Obj [ ("type", Json.String "report"); ("id", Json.Int id); ("report", report) ]

let int_field key j =
  match Json.member key j with Json.Int i -> i | _ -> fail "missing int field %S" key

let string_field key j =
  match Json.member key j with
  | Json.String s -> s
  | _ -> fail "missing string field %S" key

let bool_field key j =
  match Json.member key j with Json.Bool b -> b | _ -> fail "missing bool field %S" key

(* Absent on pre-capability peers: decode to []. *)
let caps_field j =
  match Json.member "caps" j with
  | Json.Null -> []
  | Json.List cs ->
    List.map (function Json.String c -> c | _ -> fail "capability is not a string") cs
  | _ -> fail "caps is not a list"

let message_of_json j =
  match Json.member "type" j with
  | Json.String "hello" -> Hello { version = int_field "version" j; caps = caps_field j }
  | Json.String "welcome" ->
    let services =
      List.map
        (fun s -> { name = string_field "name" s; push = bool_field "push" s })
        (Json.to_list (Json.member "services" j))
    in
    Welcome { version = int_field "version" j; services; caps = caps_field j }
  | Json.String "invoke" ->
    let push =
      match Json.member "push" j with
      | Json.Null -> None
      | p -> Some (pattern_of_json p)
    in
    Invoke
      {
        id = int_field "id" j;
        service = string_field "service" j;
        params = forest_of_json (Json.member "params" j);
        push;
      }
  | Json.String "result" ->
    Result
      {
        id = int_field "id" j;
        pushed = bool_field "pushed" j;
        forest = forest_of_json (Json.member "forest" j);
      }
  | Json.String "error" ->
    Error
      {
        id = int_field "id" j;
        transient = bool_field "transient" j;
        message = string_field "message" j;
      }
  | Json.String "degraded" ->
    Degraded
      {
        id = int_field "id" j;
        message = string_field "message" j;
        retries = int_field "retries" j;
        timeouts = int_field "timeouts" j;
      }
  | Json.String "eval" ->
    Eval
      {
        id = int_field "id" j;
        strategy = string_field "strategy" j;
        query = pattern_of_json (Json.member "query" j);
        doc = tree_of_json (Json.member "doc" j);
        projected = (match Json.member "projected" j with Json.Bool b -> b | _ -> false);
      }
  | Json.String "report" -> (
    match Json.member "report" j with
    | Json.Null -> fail "report envelope without a \"report\" field"
    | report -> Report { id = int_field "id" j; report })
  | Json.String other -> fail "unknown message type %S" other
  | _ -> fail "envelope without a \"type\" field"

(* ------------------------------------------------------------------ *)
(* The binary codec.

   A compact alternative to the JSON payloads, negotiated as the
   "binary" capability: strings are length-prefixed, ints are
   LEB128 varints (zigzag where a value can be negative), every
   composite opens with a one-byte tag. Decoding is hardened for
   hostile peers: every read is bounds-checked against the frame,
   every length/count is capped by the bytes that remain (an item
   costs at least one byte, so a count beyond that is garbage), and
   pathological nesting surfaces as {!Protocol_error}, never as an
   escaped [Stack_overflow]. *)

type codec = Json | Binary

let cap_binary = "binary"
let codec_name = function Json -> "json" | Binary -> "binary"

(* A growable output buffer with byte-addressable backing, so the
   4-byte frame header can be patched in after the payload is encoded —
   [Buffer.t] cannot do that without a copy. *)
type wbuf = { mutable wb : Bytes.t; mutable wlen : int }

let wbuf_make n = { wb = Bytes.create n; wlen = 0 }
let wbuf_reset w = w.wlen <- 0

let wbuf_ensure w n =
  let need = w.wlen + n in
  if need > Bytes.length w.wb then begin
    let cap = ref (max 256 (2 * Bytes.length w.wb)) in
    while !cap < need do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit w.wb 0 b 0 w.wlen;
    w.wb <- b
  end

let put_byte w c =
  wbuf_ensure w 1;
  Bytes.unsafe_set w.wb w.wlen (Char.unsafe_chr (c land 0xff));
  w.wlen <- w.wlen + 1

let put_raw w s =
  let n = String.length s in
  wbuf_ensure w n;
  Bytes.blit_string s 0 w.wb w.wlen n;
  w.wlen <- w.wlen + n

(* Unsigned LEB128 over the full word: [lsr] is a logical shift, so
   even a negative word (zigzag output of a huge negative int)
   terminates after at most ten groups. *)
let rec put_uv w n =
  if n >= 0 && n < 0x80 then put_byte w n
  else begin
    put_byte w (0x80 lor (n land 0x7f));
    put_uv w (n lsr 7)
  end

let put_int w n = put_uv w ((n lsl 1) lxor (n asr 62))

let put_str w s =
  put_uv w (String.length s);
  put_raw w s

let put_bool w b = put_byte w (if b then 1 else 0)

let put_u64 w x =
  for i = 0 to 7 do
    put_byte w (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff)
  done

(* ----- reader ----- *)

type rdr = { src : string; mutable pos : int; limit : int }

let rd_byte r =
  if r.pos >= r.limit then fail "binary frame truncated";
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c

let rd_uv r =
  let rec go shift acc =
    if shift > 63 then fail "binary varint longer than a word";
    let b = rd_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let rd_int r =
  let u = rd_uv r in
  (u lsr 1) lxor (-(u land 1))

(* A length or item count: every string byte / list item costs at least
   one input byte, so anything beyond the bytes that remain is garbage —
   reject it before allocating. *)
let rd_len r =
  let n = rd_uv r in
  if n < 0 || n > r.limit - r.pos then
    fail "binary length %d exceeds the %d bytes remaining" n (r.limit - r.pos);
  n

let rd_str r =
  let n = rd_len r in
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let rd_bool r =
  match rd_byte r with
  | 0 -> false
  | 1 -> true
  | b -> fail "binary bool byte %d" b

let rd_u64 r =
  let x = ref 0L in
  for i = 0 to 7 do
    x := Int64.logor !x (Int64.shift_left (Int64.of_int (rd_byte r)) (8 * i))
  done;
  !x

(* In-order list decoding: [n] has already passed {!rd_len}. *)
let rd_list r n f =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f r :: acc) in
  go 0 []

(* ----- trees ----- *)

let rec tree_to_bin w = function
  | Tree.Text s ->
    put_byte w 0;
    put_str w s
  | Tree.Element { Tree.name; attrs; children } ->
    put_byte w 1;
    put_str w name;
    put_uv w (List.length attrs);
    List.iter
      (fun (k, v) ->
        put_str w k;
        put_str w v)
      attrs;
    put_uv w (List.length children);
    List.iter (tree_to_bin w) children

let forest_to_bin w f =
  put_uv w (List.length f);
  List.iter (tree_to_bin w) f

let rec tree_of_bin r =
  match rd_byte r with
  | 0 -> Tree.Text (rd_str r)
  | 1 ->
    let name = rd_str r in
    let attrs =
      rd_list r (rd_len r) (fun r ->
          let k = rd_str r in
          let v = rd_str r in
          (k, v))
    in
    let children = rd_list r (rd_len r) tree_of_bin in
    Tree.Element { Tree.name; attrs; children }
  | t -> fail "unknown binary tree tag %d" t

let forest_of_bin r = rd_list r (rd_len r) tree_of_bin

(* ----- patterns ----- *)

let label_to_bin w = function
  | P.Const s ->
    put_byte w 0;
    put_str w s
  | P.Value s ->
    put_byte w 1;
    put_str w s
  | P.Var s ->
    put_byte w 2;
    put_str w s
  | P.Wildcard -> put_byte w 3
  | P.Or -> put_byte w 4
  | P.Fun P.Any_fun -> put_byte w 5
  | P.Fun (P.Named names) ->
    put_byte w 6;
    put_uv w (List.length names);
    List.iter (put_str w) names

let label_of_bin r =
  match rd_byte r with
  | 0 -> P.Const (rd_str r)
  | 1 -> P.Value (rd_str r)
  | 2 -> P.Var (rd_str r)
  | 3 -> P.Wildcard
  | 4 -> P.Or
  | 5 -> P.Fun P.Any_fun
  | 6 -> P.Fun (P.Named (rd_list r (rd_len r) rd_str))
  | t -> fail "unknown binary pattern label tag %d" t

let rec pattern_to_bin w (n : P.node) =
  put_byte w (match n.P.axis with P.Child -> 0 | P.Descendant -> 1);
  label_to_bin w n.P.label;
  put_bool w n.P.result;
  put_uv w (List.length n.P.children);
  List.iter (pattern_to_bin w) n.P.children

let rec pattern_of_bin r =
  let axis =
    match rd_byte r with
    | 0 -> P.Child
    | 1 -> P.Descendant
    | t -> fail "unknown binary pattern axis tag %d" t
  in
  let label = label_of_bin r in
  let result = rd_bool r in
  let children = rd_list r (rd_len r) pattern_of_bin in
  P.make ~axis ~result label children

(* ----- JSON values (the Report envelope carries one verbatim) ----- *)

let rec json_to_bin w = function
  | Json.Null -> put_byte w 0
  | Json.Bool b ->
    put_byte w 1;
    put_bool w b
  | Json.Int i ->
    put_byte w 2;
    put_int w i
  | Json.Float f ->
    put_byte w 3;
    put_u64 w (Int64.bits_of_float f)
  | Json.String s ->
    put_byte w 4;
    put_str w s
  | Json.List xs ->
    put_byte w 5;
    put_uv w (List.length xs);
    List.iter (json_to_bin w) xs
  | Json.Obj kvs ->
    put_byte w 6;
    put_uv w (List.length kvs);
    List.iter
      (fun (k, v) ->
        put_str w k;
        json_to_bin w v)
      kvs

let rec json_of_bin r =
  match rd_byte r with
  | 0 -> Json.Null
  | 1 -> Json.Bool (rd_bool r)
  | 2 -> Json.Int (rd_int r)
  | 3 -> Json.Float (Int64.float_of_bits (rd_u64 r))
  | 4 -> Json.String (rd_str r)
  | 5 -> Json.List (rd_list r (rd_len r) json_of_bin)
  | 6 ->
    Json.Obj
      (rd_list r (rd_len r) (fun r ->
           let k = rd_str r in
           (k, json_of_bin r)))
  | t -> fail "unknown binary JSON tag %d" t

(* ----- envelopes ----- *)

let message_to_bin w = function
  | Hello { version; caps } ->
    put_byte w 0;
    put_uv w version;
    put_uv w (List.length caps);
    List.iter (put_str w) caps
  | Welcome { version; services; caps } ->
    put_byte w 1;
    put_uv w version;
    put_uv w (List.length services);
    List.iter
      (fun s ->
        put_str w s.name;
        put_bool w s.push)
      services;
    put_uv w (List.length caps);
    List.iter (put_str w) caps
  | Invoke { id; service; params; push } -> (
    put_byte w 2;
    put_uv w id;
    put_str w service;
    forest_to_bin w params;
    match push with
    | None -> put_byte w 0
    | Some p ->
      put_byte w 1;
      pattern_to_bin w p)
  | Result { id; pushed; forest } ->
    put_byte w 3;
    put_uv w id;
    put_bool w pushed;
    forest_to_bin w forest
  | Error { id; transient; message } ->
    put_byte w 4;
    put_uv w id;
    put_bool w transient;
    put_str w message
  | Degraded { id; message; retries; timeouts } ->
    put_byte w 5;
    put_uv w id;
    put_str w message;
    put_uv w retries;
    put_uv w timeouts
  | Eval { id; strategy; query; doc; projected } ->
    put_byte w 6;
    put_uv w id;
    put_str w strategy;
    pattern_to_bin w query;
    tree_to_bin w doc;
    put_bool w projected
  | Report { id; report } ->
    put_byte w 7;
    put_uv w id;
    json_to_bin w report

let message_of_bin r =
  match rd_byte r with
  | 0 ->
    let version = rd_uv r in
    let caps = rd_list r (rd_len r) rd_str in
    Hello { version; caps }
  | 1 ->
    let version = rd_uv r in
    let services =
      rd_list r (rd_len r) (fun r ->
          let name = rd_str r in
          let push = rd_bool r in
          { name; push })
    in
    let caps = rd_list r (rd_len r) rd_str in
    Welcome { version; services; caps }
  | 2 ->
    let id = rd_uv r in
    let service = rd_str r in
    let params = forest_of_bin r in
    let push =
      match rd_byte r with
      | 0 -> None
      | 1 -> Some (pattern_of_bin r)
      | t -> fail "unknown binary option tag %d" t
    in
    Invoke { id; service; params; push }
  | 3 ->
    let id = rd_uv r in
    let pushed = rd_bool r in
    let forest = forest_of_bin r in
    Result { id; pushed; forest }
  | 4 ->
    let id = rd_uv r in
    let transient = rd_bool r in
    let message = rd_str r in
    Error { id; transient; message }
  | 5 ->
    let id = rd_uv r in
    let message = rd_str r in
    let retries = rd_uv r in
    let timeouts = rd_uv r in
    Degraded { id; message; retries; timeouts }
  | 6 ->
    let id = rd_uv r in
    let strategy = rd_str r in
    let query = pattern_of_bin r in
    let doc = tree_of_bin r in
    let projected = rd_bool r in
    Eval { id; strategy; query; doc; projected }
  | 7 ->
    let id = rd_uv r in
    let report = json_of_bin r in
    Report { id; report }
  | t -> fail "unknown binary message tag %d" t

(* Standalone per-type binary codecs (tests, tools). *)

let to_bin_str enc x =
  let w = wbuf_make 256 in
  enc w x;
  Bytes.sub_string w.wb 0 w.wlen

let of_bin_str name dec s =
  let r = { src = s; pos = 0; limit = String.length s } in
  match dec r with
  | v ->
    if r.pos <> r.limit then
      fail "binary %s has %d trailing bytes" name (r.limit - r.pos);
    v
  | exception Stack_overflow -> fail "binary %s nests too deeply" name

let tree_to_binary t = to_bin_str tree_to_bin t
let tree_of_binary s = of_bin_str "tree" tree_of_bin s
let forest_to_binary f = to_bin_str forest_to_bin f
let forest_of_binary s = of_bin_str "forest" forest_of_bin s
let pattern_to_binary p = to_bin_str pattern_to_bin p
let pattern_of_binary s = of_bin_str "pattern" pattern_of_bin s

(* ------------------------------------------------------------------ *)
(* Frames *)

let rec really_write fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> really_write fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_write fd buf off len

let rec really_read fd buf off len =
  if len > 0 then
    match Unix.read fd buf off len with
    | 0 -> raise Closed
    | n -> really_read fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_read fd buf off len

let write_frame fd json =
  let payload = Json.to_string json in
  let len = String.length payload in
  if len > max_frame then fail "frame of %d bytes exceeds the %d-byte limit" len max_frame;
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len);
  4 + len

let read_frame fd =
  let header = Bytes.create 4 in
  really_read fd header 0 4;
  let byte i = Char.code (Bytes.get header i) in
  let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  if len <= 0 || len > max_frame then
    fail "frame length %d is outside (0, %d]" len max_frame;
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  match Json.parse (Bytes.unsafe_to_string payload) with
  | Ok v -> (v, 4 + len)
  | Error m -> fail "frame payload is not JSON (%s)" m

(* ------------------------------------------------------------------ *)
(* Codec-aware frames.

   Wire format: a 4-byte big-endian payload length, then the payload.
   [max_frame] fits in 26 bits, so the top bit of the first header byte
   is free; the binary codec sets it (frames are self-describing and
   [recv] needs no out-of-band state), JSON frames — including every
   frame a pre-binary peer can produce — leave it clear. *)

let binary_flag = 0x80

type scratch = {
  out : wbuf;  (* whole outgoing frame, header included *)
  mutable inb : Bytes.t;  (* reusable incoming payload buffer *)
  jb : Buffer.t;  (* JSON text staging for the encoder *)
}

let scratch () = { out = wbuf_make 4096; inb = Bytes.create 4096; jb = Buffer.create 4096 }

let frame_header b0 b1 b2 b3 =
  let codec = if b0 land binary_flag <> 0 then Binary else Json in
  let len = ((b0 land 0x7f) lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3 in
  if len <= 0 || len > max_frame then
    fail "frame length %d is outside (0, %d]" len max_frame;
  (codec, len)

let decode_frame_header s =
  if String.length s < 4 then fail "frame header truncated";
  let byte i = Char.code (String.unsafe_get s i) in
  frame_header (byte 0) (byte 1) (byte 2) (byte 3)

(* Encodes [msg] into [scr.out] as one complete frame (header
   included): the payload is written from offset 4, then the header is
   patched in — no copy, and the scratch's backing buffer amortises to
   the largest frame the connection ever sends. *)
let encode_into scr codec msg =
  let w = scr.out in
  wbuf_reset w;
  wbuf_ensure w 4;
  w.wlen <- 4;
  (match codec with
  | Binary -> message_to_bin w msg
  | Json ->
    Buffer.clear scr.jb;
    Json.to_buffer scr.jb (message_to_json msg);
    let n = Buffer.length scr.jb in
    wbuf_ensure w n;
    Buffer.blit scr.jb 0 w.wb w.wlen n;
    w.wlen <- w.wlen + n);
  let len = w.wlen - 4 in
  if len > max_frame then fail "frame of %d bytes exceeds the %d-byte limit" len max_frame;
  let flag = match codec with Binary -> binary_flag | Json -> 0 in
  Bytes.set w.wb 0 (Char.chr (((len lsr 24) land 0x7f) lor flag));
  Bytes.set w.wb 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set w.wb 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set w.wb 3 (Char.chr (len land 0xff))

let encode_frame ?(codec = Json) msg =
  let scr = scratch () in
  encode_into scr codec msg;
  Bytes.sub_string scr.out.wb 0 scr.out.wlen

let encode_frame_into ?(codec = Json) scr msg =
  encode_into scr codec msg;
  (scr.out.wb, scr.out.wlen)

let decode_payload ?(pos = 0) ?len codec s =
  let len = match len with Some n -> n | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    fail "frame payload slice out of bounds";
  match codec with
  | Json -> (
    let text = if pos = 0 && len = String.length s then s else String.sub s pos len in
    match Json.parse text with
    | Ok v -> message_of_json v
    | Error m -> fail "frame payload is not JSON (%s)" m
    | exception Stack_overflow -> fail "frame payload nests too deeply")
  | Binary -> (
    let r = { src = s; pos; limit = pos + len } in
    match message_of_bin r with
    | msg ->
      if r.pos <> r.limit then
        fail "binary frame has %d trailing bytes" (r.limit - r.pos);
      msg
    | exception Stack_overflow -> fail "binary frame nests too deeply")

let send ?(codec = Json) ?scratch:scr fd msg =
  let scr = match scr with Some s -> s | None -> scratch () in
  encode_into scr codec msg;
  really_write fd scr.out.wb 0 scr.out.wlen;
  scr.out.wlen

let recv ?scratch:scr fd =
  let scr = match scr with Some s -> s | None -> scratch () in
  let header = Bytes.create 4 in
  really_read fd header 0 4;
  let byte i = Char.code (Bytes.get header i) in
  let codec, len = frame_header (byte 0) (byte 1) (byte 2) (byte 3) in
  if Bytes.length scr.inb < len then scr.inb <- Bytes.create len;
  really_read fd scr.inb 0 len;
  let msg =
    match codec with
    | Json -> decode_payload Json (Bytes.sub_string scr.inb 0 len)
    | Binary ->
      (* decode copies every string it keeps, so reading straight off
         the reusable buffer is safe *)
      decode_payload Binary ~len (Bytes.unsafe_to_string scr.inb)
  in
  (msg, 4 + len)
