(** TCP client for AXML peers: a bounded connection pool plus the
    request primitive the {!Remote} transport is built on.

    Connections are created lazily, handshaken on connect
    ({!Wire.Hello}/{!Wire.Welcome}) and returned to a bounded idle pool
    after each successful exchange. A borrowed connection is
    health-checked first: an idle socket that polls readable is either
    at EOF or carries stray bytes — both mean it is unusable for a
    request/response exchange, so it is discarded and a fresh connection
    is dialed. Connections that fail mid-request are never returned.

    Every wire interaction is observable: [net.request] spans (one per
    attempt, nested under the registry's [service.attempt] when called
    through {!Remote}), and [net.connects] / [net.reuses] /
    [net.stale_drops] / [net.requests] / [net.request_bytes] /
    [net.response_bytes] / [net.timeouts] / [net.errors] counters. *)

type t

val create :
  ?pool_size:int ->
  ?connect_timeout:float ->
  ?wire:[ `Auto | `Json ] ->
  host:string ->
  port:int ->
  unit ->
  t
(** No I/O happens until the first call. [pool_size] (default 4) bounds
    the {e idle} connections kept for reuse; [connect_timeout] (default
    10 s) is the socket deadline for the dial + handshake. [wire]
    (default [`Auto]) selects the frame codec: [`Auto] advertises
    {!Wire.cap_binary} in the handshake and uses the binary codec on
    connections whose server advertised it too (falling back to JSON
    against older peers); [`Json] never advertises it, pinning every
    frame to JSON — the [axml --wire json] escape hatch. Each pooled
    connection keeps its own scratch buffers, so a warm connection
    allocates no fresh frame buffers per request. *)

val host : t -> string
val port : t -> int

val capabilities : t -> string list
(** The capabilities the server advertised in its {!Wire.Welcome} —
    [[]] until a connection has been handshaken (and for pre-capability
    peers, which advertise none). *)

val services : t -> ?obs:Axml_obs.Obs.t -> unit -> Wire.service_info list
(** The service list the server advertised in its {!Wire.Welcome} —
    dials a connection if none was established yet. Raises
    {!Axml_services.Registry.Transport_error} when the peer cannot be
    reached or speaks another protocol version. *)

val call :
  t ->
  obs:Axml_obs.Obs.t ->
  timeout:float ->
  service:string ->
  params:Axml_xml.Tree.forest ->
  push:Axml_query.Pattern.node option ->
  Axml_xml.Tree.forest * Axml_services.Registry.wire
(** One request/response exchange — exactly the
    {!Axml_services.Registry.transport} contract: [timeout] becomes the
    socket deadline for the exchange ([infinity] = none), and failures
    raise {!Axml_services.Registry.Transport_error} with [transient]
    set for connection/timeout faults and cleared for protocol errors,
    {!Wire.Degraded} and non-transient {!Wire.Error} replies. *)

val eval :
  t ->
  ?obs:Axml_obs.Obs.t ->
  ?timeout:float ->
  ?projector:Axml_project.Project.t ->
  strategy:string ->
  Axml_query.Pattern.node ->
  Axml_xml.Tree.t ->
  Axml_obs.Json.t
(** [eval t ~strategy q doc] ships the query and the document to the
    peer ({!Wire.Eval}) and returns the {!Wire.Report} it answers: the
    peer evaluates [q] on [doc] against {e its} registry with the named
    strategy (["naive"] or ["lazy"]) and replies with the unified
    {!Axml_engine.Engine.report} serialized by the engine's
    [report_to_json] — answers included. The mirror image of query
    pushing: the query travels to the data. [projector] (default none)
    projects [doc] before it crosses the wire — applied only when the
    peer advertised {!Wire.cap_project}, so older peers always receive
    the full document; savings are counted in the
    [net.projected_bytes_saved] metric. [timeout] (default none) is
    the socket deadline for the whole exchange; failures and server-side
    errors raise {!Axml_services.Registry.Transport_error}. *)

val close : t -> unit
(** Closes every idle pooled connection. The client remains usable — a
    later call simply dials again. *)
