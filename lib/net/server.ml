module Registry = Axml_services.Registry
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module P = Axml_query.Pattern
module Engine = Axml_engine.Engine
module Lazy_eval = Axml_core.Lazy_eval
module Project = Axml_project.Project
module Exec = Axml_exec.Exec

let log_src = Logs.Src.create "axml.net.server" ~doc:"axmld server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* One connection's state, owned by the event-loop thread. Workers see
   a conn only as an opaque token inside a completion; they never touch
   its fields. *)
type conn = {
  cid : int;
  fd : Unix.file_descr;
  scratch : Wire.scratch;  (* reply encoding; reused for the conn's life *)
  mutable codec : Wire.codec;  (* for replies; negotiated at handshake *)
  mutable handshaken : bool;
  mutable client_caps : string list;
  mutable rbuf : Bytes.t;  (* incoming bytes: [roff, rlen) is unconsumed *)
  mutable roff : int;
  mutable rlen : int;
  mutable wbuf : Bytes.t;  (* outgoing bytes: [woff, wlen) is unsent *)
  mutable woff : int;
  mutable wlen : int;
  mutable busy : bool;  (* a request of this conn is at a worker *)
  mutable closing : bool;  (* close once the write buffer drains *)
  mutable dead : bool;
  mutable want_read : bool;
  mutable want_write : bool;
}

type t = {
  registry : Registry.t;
  obs : Obs.t;
  schema : Axml_schema.Schema.t option;
      (* enables provider-side projection of non-push-capable results *)
  caps : string list;  (* capabilities advertised in Welcome *)
  delay : float;  (* injected per-request latency, really slept *)
  jitter : float;  (* extra uniform [0, jitter) latency per request *)
  jitter_rng : Random.State.t;  (* seeded; guarded by [jitter_mu] *)
  jitter_mu : Mutex.t;
  listen_fd : Unix.file_descr;
  host : string;
  port : int;
  max_conns : int;
  force_select : bool;
  pool : Exec.pool;  (* request execution off the loop thread *)
  mu : Mutex.t;  (* guards the connection bookkeeping below *)
  mutable conns : (int * Unix.file_descr) list;
  mutable next_conn : int;
  mutable stopped : bool;
  mutable stop_after_reply : bool;
  comp_mu : Mutex.t;  (* guards [completions] *)
  completions : (conn * Wire.message) Queue.t;
  wake_r : Unix.file_descr;  (* self-pipe waking the event loop *)
  wake_w : Unix.file_descr;
  mutable loop_thread : Thread.t option;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg (Printf.sprintf "cannot resolve host %S" host))

let create ?(host = "127.0.0.1") ?(port = 0) ?(obs = Obs.null) ?schema
    ?(caps = [ Wire.cap_project; Wire.cap_shard; Wire.cap_binary ]) ?(delay = 0.0)
    ?(jitter = 0.0) ?(jitter_seed = 0) ?(workers = 32) ?(max_conns = 8192)
    ?(force_select = false) ~registry () =
  (* A peer hanging up mid-write must surface as EPIPE, not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (resolve host, port));
     Unix.listen fd 1024;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  {
    registry;
    obs;
    schema;
    caps;
    delay = Float.max 0.0 delay;
    jitter = Float.max 0.0 jitter;
    jitter_rng = Random.State.make [| 0x5e2e; jitter_seed |];
    jitter_mu = Mutex.create ();
    listen_fd = fd;
    host;
    port;
    max_conns = max 1 max_conns;
    force_select;
    (* the pool's jobs count includes the (never-helping) caller of
       map_batch, so [workers] concurrent request handlers need +1 *)
    pool = Exec.create ~jobs:(max 1 workers + 1) ();
    mu = Mutex.create ();
    conns = [];
    next_conn = 0;
    stopped = false;
    stop_after_reply = false;
    comp_mu = Mutex.create ();
    completions = Queue.create ();
    wake_r;
    wake_w;
    loop_thread = None;
  }

let port t = t.port
let host t = t.host

(* The per-request injected latency: the fixed [delay] plus a seeded
   uniform draw in [0, jitter). The RNG is shared across worker
   threads, so the draw sequence depends on request arrival order — the
   latency {e distribution} is reproducible per seed, individual
   request/draw pairings are not (and need not be: jitter exists to
   skew replicas, not to be replayed). *)
let inject_latency t =
  let wait =
    if t.jitter > 0.0 then
      t.delay
      +. Mutex.protect t.jitter_mu (fun () -> Random.State.float t.jitter_rng t.jitter)
    else t.delay
  in
  if wait > 0.0 then Unix.sleepf wait

let connections t = Mutex.protect t.mu (fun () -> List.length t.conns)

let welcome t =
  Mutex.protect t.mu (fun () ->
      Wire.Welcome
        {
          version = Wire.version;
          services =
            List.map
              (fun n -> { Wire.name = n; push = Registry.push_capable t.registry n })
              (Registry.names t.registry);
          caps = t.caps;
        })

(* One request against the served registry. The registry and the obs
   sinks are thread-safe, so concurrent connections serve concurrently:
   no lock is held here. Each request records its span into a trace
   fragment of its own and folds it back in when done, so overlapping
   requests cannot interleave their open/close events. *)
(* Provider-side projection of a result the service itself could not
   prune: when the client pushed a pattern and negotiated the project
   capability, and this server holds a schema, project the forest
   against the pushed pattern before it crosses the wire. The pushed
   [sub_q_v] over-approximates what the caller's query can use from
   this result (the §7 contract {!Axml_services.Witness.prune} relies
   on), and its matches may root at any returned node, hence
   [`Anywhere]. Results the registry already witness-pruned are left
   alone. *)
let project_result t ~client_caps ~push ~pushed forest =
  match (t.schema, push) with
  | Some schema, Some p
    when (not pushed)
         && List.mem Wire.cap_project t.caps
         && List.mem Wire.cap_project client_caps ->
    let projector = Project.compile ~schema ~anchor:`Anywhere (P.query p) in
    let forest', st = Project.forest projector forest in
    Metrics.incr t.obs.Obs.metrics ~by:st.Project.bytes_saved "net.projected_bytes_saved";
    (forest', true)
  | _ -> (forest, pushed)

let handle_invoke t ~client_caps ~id ~service ~params ~push =
  inject_latency t;
  let obs = Obs.fork t.obs in
  let tr = obs.Obs.trace in
  let span =
    if Trace.enabled tr then
      Trace.open_span tr ~cat:"net"
        ~attrs:
          [ ("service", Trace.Str service); ("pushed", Trace.Bool (push <> None)) ]
        "net.serve"
    else Trace.none
  in
  Metrics.incr obs.Obs.metrics ~labels:[ ("service", service) ] "net.served";
  let reply =
    match Registry.invoke t.registry ~name:service ~params ?push ~obs () with
    | forest, inv ->
      let forest, pushed =
        project_result t ~client_caps ~push ~pushed:inv.Registry.pushed forest
      in
      Wire.Result { id; pushed; forest }
    | exception Registry.Unknown_service n ->
      Wire.Error { id; transient = false; message = "unknown service " ^ n }
    | exception Registry.Service_failure inv ->
      Wire.Degraded
        {
          id;
          message =
            Printf.sprintf "service %s failed after %d retries" service
              inv.Registry.retries;
          retries = inv.Registry.retries;
          timeouts = inv.Registry.timeouts;
        }
    | exception e ->
      Wire.Error { id; transient = false; message = Printexc.to_string e }
  in
  let outcome =
    match reply with
    | Wire.Result _ -> "ok"
    | Wire.Degraded _ -> "degraded"
    | _ -> "error"
  in
  if Trace.enabled tr then
    Trace.close_span tr ~attrs:[ ("outcome", Trace.Str outcome) ] span;
  Obs.join t.obs obs;
  reply

(* Remote evaluation: the query travels to the data. The whole
   evaluation — relevance analysis for the lazy strategy, the
   invocation rounds against the served registry (with its fault
   schedules and retry policies), answer extraction — runs here, and
   the client receives the unified engine report. The document arrives
   by value and is private to this request, so concurrent evaluations
   need no locking beyond the registry's own. *)
let handle_eval t ~id ~strategy ~query ~doc =
  inject_latency t;
  let obs = Obs.fork t.obs in
  let tr = obs.Obs.trace in
  let span =
    if Trace.enabled tr then
      Trace.open_span tr ~cat:"net"
        ~attrs:[ ("strategy", Trace.Str strategy) ]
        "net.eval"
    else Trace.none
  in
  Metrics.incr obs.Obs.metrics ~labels:[ ("strategy", strategy) ] "net.evals";
  let reply =
    match
      let q = P.query query in
      let d = Axml_doc.of_xml doc in
      match strategy with
      | "naive" -> Some (Engine.naive_run ~obs t.registry q d)
      | "lazy" -> Some (Lazy_eval.run ~registry:t.registry ~obs q d)
      | _ -> None
    with
    | Some r -> Wire.Report { id; report = Engine.report_to_json r }
    | None ->
      Wire.Error
        {
          id;
          transient = false;
          message = Printf.sprintf "unknown evaluation strategy %S" strategy;
        }
    | exception e ->
      Wire.Error { id; transient = false; message = Printexc.to_string e }
  in
  let outcome = match reply with Wire.Report _ -> "ok" | _ -> "error" in
  if Trace.enabled tr then
    Trace.close_span tr ~attrs:[ ("outcome", Trace.Str outcome) ] span;
  Obs.join t.obs obs;
  reply

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1) with Unix.Unix_error _ -> ()

(* Stop accepting: mark stopped, close the listener (so reconnects are
   refused synchronously from here on) and wake the event loop. *)
let stop_listening t =
  let was_running =
    Mutex.protect t.mu (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if was_running then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    wake t
  end

let shutdown_conns ?except t =
  let conns = Mutex.protect t.mu (fun () -> t.conns) in
  List.iter
    (fun (id, fd) ->
      if except <> Some id then
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns

(* ------------------------------------------------------------------ *)
(* The event loop.

   One thread owns every conn and the Evloop; workers get requests
   through {!Exec.async} and give replies back through [t.completions]
   plus a byte on the wake pipe. Request handlers never run on the loop
   thread, so a slow service or an injected latency stalls one worker,
   not the whole server; a conn with a request in flight has its read
   interest parked ([busy]), which both applies backpressure and
   preserves the strict request/response order of the old
   thread-per-connection server. *)

let grow_to b need =
  let cap = ref (max 4096 (2 * Bytes.length b)) in
  while !cap < need do
    cap := !cap * 2
  done;
  let b' = Bytes.create !cap in
  Bytes.blit b 0 b' 0 (Bytes.length b);
  b'

let event_loop t =
  let ev = Evloop.create ~force_select:t.force_select () in
  Log.debug (fun f -> f "event loop on the %s backend" (Evloop.backend_name ev));
  let tbl : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 256 in
  let accepting = ref false in
  let listener_gone = ref false in
  Evloop.add ev t.wake_r ~read:true ~write:false;
  (try
     Evloop.add ev t.listen_fd ~read:true ~write:false;
     accepting := true
   with Invalid_argument _ | Failure _ -> listener_gone := true);
  let set_interest c =
    if not c.dead then Evloop.modify ev c.fd ~read:c.want_read ~write:c.want_write
  in
  let close_conn c =
    if not c.dead then begin
      c.dead <- true;
      Evloop.remove ev c.fd;
      Hashtbl.remove tbl c.fd;
      Mutex.protect t.mu (fun () ->
          t.conns <- List.filter (fun (id, _) -> id <> c.cid) t.conns);
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      (* room again below the cap: resume accepting *)
      if (not !accepting) && (not !listener_gone) && (not t.stopped)
         && Hashtbl.length tbl < t.max_conns
      then begin
        try
          Evloop.add ev t.listen_fd ~read:true ~write:false;
          accepting := true
        with Invalid_argument _ | Failure _ -> listener_gone := true
      end
    end
  in
  let drop_listener () =
    if !accepting then begin
      Evloop.remove ev t.listen_fd;
      accepting := false
    end;
    listener_gone := true
  in
  let queue_bytes c b off n =
    if c.woff = c.wlen then begin
      c.woff <- 0;
      c.wlen <- 0
    end;
    if c.wlen + n > Bytes.length c.wbuf then begin
      (* compact before growing so capacity tracks unsent bytes *)
      if c.woff > 0 then begin
        Bytes.blit c.wbuf c.woff c.wbuf 0 (c.wlen - c.woff);
        c.wlen <- c.wlen - c.woff;
        c.woff <- 0
      end;
      if c.wlen + n > Bytes.length c.wbuf then c.wbuf <- grow_to c.wbuf (c.wlen + n)
    end;
    Bytes.blit b off c.wbuf c.wlen n;
    c.wlen <- c.wlen + n;
    if not c.want_write then begin
      c.want_write <- true;
      set_interest c
    end
  in
  let queue_reply ?codec c msg =
    let codec = match codec with Some k -> k | None -> c.codec in
    match Wire.encode_frame_into ~codec c.scratch msg with
    | b, n -> queue_bytes c b 0 n
    | exception Wire.Protocol_error m ->
      (* an oversized reply: all we can do is tell the peer and hang up *)
      Log.debug (fun f -> f "conn %d: unencodable reply: %s" c.cid m);
      (match
         Wire.encode_frame_into ~codec c.scratch
           (Wire.Error { id = 0; transient = false; message = m })
       with
      | b, n -> queue_bytes c b 0 n
      | exception Wire.Protocol_error _ -> ());
      c.closing <- true
  in
  let protocol_error c m =
    Log.debug (fun f -> f "conn %d: closing on protocol error: %s" c.cid m);
    queue_reply c (Wire.Error { id = 0; transient = false; message = m });
    c.closing <- true;
    c.want_read <- false;
    set_interest c;
    if c.woff = c.wlen then close_conn c
  in
  let dispatch c msg =
    if not c.handshaken then begin
      match msg with
      | Wire.Hello { version; caps } when version = Wire.version ->
        c.client_caps <- caps;
        c.handshaken <- true;
        (* the handshake itself is always JSON; only frames after a
           mutual cap_binary may switch *)
        queue_reply ~codec:Wire.Json c (welcome t);
        if List.mem Wire.cap_binary caps && List.mem Wire.cap_binary t.caps then
          c.codec <- Wire.Binary
      | Wire.Hello { version; _ } ->
        protocol_error c
          (Printf.sprintf "unsupported protocol version %d (this peer speaks %d)"
             version Wire.version)
      | _ -> protocol_error c "expected a hello handshake"
    end
    else begin
      match msg with
      | Wire.Invoke { id; service; params; push } ->
        c.busy <- true;
        c.want_read <- false;
        set_interest c;
        let client_caps = c.client_caps in
        Exec.async t.pool (fun () ->
            let reply = handle_invoke t ~client_caps ~id ~service ~params ~push in
            Mutex.protect t.comp_mu (fun () -> Queue.push (c, reply) t.completions);
            wake t)
      | Wire.Eval { id; strategy; query; doc; projected = _ } ->
        c.busy <- true;
        c.want_read <- false;
        set_interest c;
        Exec.async t.pool (fun () ->
            let reply = handle_eval t ~id ~strategy ~query ~doc in
            Mutex.protect t.comp_mu (fun () -> Queue.push (c, reply) t.completions);
            wake t)
      | _ -> protocol_error c "expected an invoke or eval request"
    end
  in
  (* Decode and dispatch every complete frame sitting in [rbuf]. Stops
     at a partial frame, or as soon as the conn goes busy/closing. *)
  let rec process_frames c =
    if (not c.dead) && (not c.busy) && (not c.closing) && c.rlen - c.roff >= 4 then begin
      match Wire.decode_frame_header (Bytes.sub_string c.rbuf c.roff 4) with
      | exception Wire.Protocol_error m -> protocol_error c m
      | codec, len ->
        if c.rlen - c.roff - 4 >= len then begin
          let msg =
            (* decode copies every string it keeps and finishes before
               the loop can refill rbuf, so no copy of the slice *)
            try Ok (Wire.decode_payload ~pos:(c.roff + 4) ~len codec
                      (Bytes.unsafe_to_string c.rbuf))
            with Wire.Protocol_error m -> Error m
          in
          c.roff <- c.roff + 4 + len;
          if c.roff = c.rlen then begin
            c.roff <- 0;
            c.rlen <- 0
          end;
          match msg with
          | Ok msg ->
            dispatch c msg;
            process_frames c
          | Error m -> protocol_error c m
        end
        else if 4 + len > Bytes.length c.rbuf - c.roff then begin
          (* the complete frame cannot fit in the space after roff *)
          if c.roff > 0 then begin
            Bytes.blit c.rbuf c.roff c.rbuf 0 (c.rlen - c.roff);
            c.rlen <- c.rlen - c.roff;
            c.roff <- 0
          end;
          if 4 + len > Bytes.length c.rbuf then c.rbuf <- grow_to c.rbuf (4 + len)
        end
    end
  in
  let handle_read c =
    if c.rlen = Bytes.length c.rbuf then begin
      if c.roff > 0 then begin
        Bytes.blit c.rbuf c.roff c.rbuf 0 (c.rlen - c.roff);
        c.rlen <- c.rlen - c.roff;
        c.roff <- 0
      end
      else c.rbuf <- grow_to c.rbuf (Bytes.length c.rbuf + 1)
    end;
    match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
    | 0 -> close_conn c
    | n ->
      c.rlen <- c.rlen + n;
      process_frames c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let handle_write c =
    match Unix.write c.fd c.wbuf c.woff (c.wlen - c.woff) with
    | n ->
      c.woff <- c.woff + n;
      if c.woff = c.wlen then begin
        c.woff <- 0;
        c.wlen <- 0;
        c.want_write <- false;
        set_interest c;
        if c.closing then close_conn c
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let accept_burst () =
    let continue = ref !accepting in
    while !continue do
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (try
           Unix.set_nonblock fd;
           Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let cid =
          Mutex.protect t.mu (fun () ->
              let id = t.next_conn in
              t.next_conn <- id + 1;
              t.conns <- (id, fd) :: t.conns;
              id)
        in
        let c =
          {
            cid;
            fd;
            scratch = Wire.scratch ();
            codec = Wire.Json;
            handshaken = false;
            client_caps = [];
            rbuf = Bytes.create 4096;
            roff = 0;
            rlen = 0;
            wbuf = Bytes.create 4096;
            woff = 0;
            wlen = 0;
            busy = false;
            closing = false;
            dead = false;
            want_read = true;
            want_write = false;
          }
        in
        (match Evloop.add ev fd ~read:true ~write:false with
        | () ->
          Hashtbl.replace tbl fd c;
          if Hashtbl.length tbl >= t.max_conns && !accepting then begin
            Evloop.remove ev t.listen_fd;
            accepting := false;
            continue := false
          end
        | exception Failure m ->
          (* the select backend out of fd range: refuse, keep serving *)
          Log.debug (fun f -> f "refusing connection: %s" m);
          Mutex.protect t.mu (fun () ->
              t.conns <- List.filter (fun (id, _) -> id <> cid) t.conns);
          (try Unix.close fd with Unix.Unix_error _ -> ()))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        drop_listener ();
        continue := false
    done
  in
  let drain_wake () =
    let b = Bytes.create 64 in
    let rec go () =
      match Unix.read t.wake_r b 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
    in
    go ()
  in
  let drain_completions () =
    let pending =
      Mutex.protect t.comp_mu (fun () ->
          let xs = List.of_seq (Queue.to_seq t.completions) in
          Queue.clear t.completions;
          xs)
    in
    List.iter
      (fun (c, reply) ->
        if not c.dead then begin
          c.busy <- false;
          if t.stop_after_reply then begin
            (* Deterministic mid-run death: refuse reconnects *before*
               the reply reaches the client, so everything after this
               answer fails even through retries. *)
            stop_listening t;
            shutdown_conns ~except:c.cid t;
            c.closing <- true;
            queue_reply c reply
          end
          else begin
            queue_reply c reply;
            if not c.closing then begin
              c.want_read <- true;
              set_interest c;
              (* the client may have pipelined the next request *)
              process_frames c
            end
          end
        end)
      pending
  in
  let stopped () = Mutex.protect t.mu (fun () -> t.stopped) in
  let rec loop () =
    let events =
      try Evloop.wait ev ~timeout:(-1.0)
      with Unix.Unix_error (Unix.EBADF, _, _) ->
        (* the listener was closed under us by [stop_listening] *)
        drop_listener ();
        []
    in
    List.iter
      (fun { Evloop.fd; readable; writable } ->
        if fd = t.wake_r then (if readable then drain_wake ())
        else if fd = t.listen_fd && !accepting then (if readable then accept_burst ())
        else
          match Hashtbl.find_opt tbl fd with
          | None -> ()
          | Some c ->
            if writable && not c.dead then handle_write c;
            if readable && not c.dead then handle_read c)
      events;
    drain_completions ();
    if stopped () then begin
      if not !listener_gone then drop_listener ();
      (* conns shut down by [stop] EOF out; force the issue for the
         rest (busy ones have no read interest, so an EOF alone cannot
         reach them on every backend) — except a closing conn still
         flushing its last reply (the kill_after_reply survivor). *)
      Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
      |> List.iter (fun c ->
             if not (c.closing && c.wlen > c.woff) then close_conn c);
      if Hashtbl.length tbl > 0 then loop ()
    end
    else loop ()
  in
  loop ();
  Evloop.close ev

let start t =
  match t.loop_thread with
  | Some _ -> ()
  | None -> t.loop_thread <- Some (Thread.create event_loop t)

let run t = event_loop t

let stop t =
  stop_listening t;
  shutdown_conns t;
  (match t.loop_thread with
  | Some th ->
    t.loop_thread <- None;
    Thread.join th
  | None -> ());
  Exec.shutdown t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

let kill_after_reply t = t.stop_after_reply <- true
