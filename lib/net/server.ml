module Registry = Axml_services.Registry
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module P = Axml_query.Pattern
module Engine = Axml_engine.Engine
module Lazy_eval = Axml_core.Lazy_eval
module Project = Axml_project.Project

let log_src = Logs.Src.create "axml.net.server" ~doc:"axmld server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  registry : Registry.t;
  obs : Obs.t;
  schema : Axml_schema.Schema.t option;
      (* enables provider-side projection of non-push-capable results *)
  caps : string list;  (* capabilities advertised in Welcome *)
  delay : float;  (* injected per-request latency, really slept *)
  jitter : float;  (* extra uniform [0, jitter) latency per request *)
  jitter_rng : Random.State.t;  (* seeded; guarded by [jitter_mu] *)
  jitter_mu : Mutex.t;
  listen_fd : Unix.file_descr;
  host : string;
  port : int;
  mu : Mutex.t;  (* guards the connection bookkeeping below *)
  mutable conns : (int * Unix.file_descr) list;
  mutable next_conn : int;
  mutable stopped : bool;
  mutable stop_after_reply : bool;
  stop_r : Unix.file_descr;  (* self-pipe waking the accept loop *)
  stop_w : Unix.file_descr;
  mutable accept_thread : Thread.t option;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg (Printf.sprintf "cannot resolve host %S" host))

let create ?(host = "127.0.0.1") ?(port = 0) ?(obs = Obs.null) ?schema
    ?(caps = [ Wire.cap_project; Wire.cap_shard ]) ?(delay = 0.0) ?(jitter = 0.0)
    ?(jitter_seed = 0) ~registry () =
  (* A peer hanging up mid-write must surface as EPIPE, not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (resolve host, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  {
    registry;
    obs;
    schema;
    caps;
    delay = Float.max 0.0 delay;
    jitter = Float.max 0.0 jitter;
    jitter_rng = Random.State.make [| 0x5e2e; jitter_seed |];
    jitter_mu = Mutex.create ();
    listen_fd = fd;
    host;
    port;
    mu = Mutex.create ();
    conns = [];
    next_conn = 0;
    stopped = false;
    stop_after_reply = false;
    stop_r;
    stop_w;
    accept_thread = None;
  }

let port t = t.port
let host t = t.host

(* The per-request injected latency: the fixed [delay] plus a seeded
   uniform draw in [0, jitter). The RNG is shared across connection
   threads, so the draw sequence depends on request arrival order — the
   latency {e distribution} is reproducible per seed, individual
   request/draw pairings are not (and need not be: jitter exists to
   skew replicas, not to be replayed). *)
let inject_latency t =
  let wait =
    if t.jitter > 0.0 then
      t.delay
      +. Mutex.protect t.jitter_mu (fun () -> Random.State.float t.jitter_rng t.jitter)
    else t.delay
  in
  if wait > 0.0 then Unix.sleepf wait
let connections t = Mutex.protect t.mu (fun () -> List.length t.conns)

let welcome t =
  Mutex.protect t.mu (fun () ->
      Wire.Welcome
        {
          version = Wire.version;
          services =
            List.map
              (fun n -> { Wire.name = n; push = Registry.push_capable t.registry n })
              (Registry.names t.registry);
          caps = t.caps;
        })

(* One request against the served registry. The registry and the obs
   sinks are thread-safe, so concurrent connections serve concurrently:
   no lock is held here. Each request records its span into a trace
   fragment of its own and folds it back in when done, so overlapping
   requests cannot interleave their open/close events. *)
(* Provider-side projection of a result the service itself could not
   prune: when the client pushed a pattern and negotiated the project
   capability, and this server holds a schema, project the forest
   against the pushed pattern before it crosses the wire. The pushed
   [sub_q_v] over-approximates what the caller's query can use from
   this result (the §7 contract {!Axml_services.Witness.prune} relies
   on), and its matches may root at any returned node, hence
   [`Anywhere]. Results the registry already witness-pruned are left
   alone. *)
let project_result t ~client_caps ~push ~pushed forest =
  match (t.schema, push) with
  | Some schema, Some p
    when (not pushed)
         && List.mem Wire.cap_project t.caps
         && List.mem Wire.cap_project client_caps ->
    let projector = Project.compile ~schema ~anchor:`Anywhere (P.query p) in
    let forest', st = Project.forest projector forest in
    Metrics.incr t.obs.Obs.metrics ~by:st.Project.bytes_saved "net.projected_bytes_saved";
    (forest', true)
  | _ -> (forest, pushed)

let handle_invoke t ~client_caps ~id ~service ~params ~push =
  inject_latency t;
  let obs = Obs.fork t.obs in
  let tr = obs.Obs.trace in
  let span =
    if Trace.enabled tr then
      Trace.open_span tr ~cat:"net"
        ~attrs:
          [ ("service", Trace.Str service); ("pushed", Trace.Bool (push <> None)) ]
        "net.serve"
    else Trace.none
  in
  Metrics.incr obs.Obs.metrics ~labels:[ ("service", service) ] "net.served";
  let reply =
    match Registry.invoke t.registry ~name:service ~params ?push ~obs () with
    | forest, inv ->
      let forest, pushed =
        project_result t ~client_caps ~push ~pushed:inv.Registry.pushed forest
      in
      Wire.Result { id; pushed; forest }
    | exception Registry.Unknown_service n ->
      Wire.Error { id; transient = false; message = "unknown service " ^ n }
    | exception Registry.Service_failure inv ->
      Wire.Degraded
        {
          id;
          message =
            Printf.sprintf "service %s failed after %d retries" service
              inv.Registry.retries;
          retries = inv.Registry.retries;
          timeouts = inv.Registry.timeouts;
        }
    | exception e ->
      Wire.Error { id; transient = false; message = Printexc.to_string e }
  in
  let outcome =
    match reply with
    | Wire.Result _ -> "ok"
    | Wire.Degraded _ -> "degraded"
    | _ -> "error"
  in
  if Trace.enabled tr then
    Trace.close_span tr ~attrs:[ ("outcome", Trace.Str outcome) ] span;
  Obs.join t.obs obs;
  reply

(* Remote evaluation: the query travels to the data. The whole
   evaluation — relevance analysis for the lazy strategy, the
   invocation rounds against the served registry (with its fault
   schedules and retry policies), answer extraction — runs here, and
   the client receives the unified engine report. The document arrives
   by value and is private to this request, so concurrent evaluations
   need no locking beyond the registry's own. *)
let handle_eval t ~id ~strategy ~query ~doc =
  inject_latency t;
  let obs = Obs.fork t.obs in
  let tr = obs.Obs.trace in
  let span =
    if Trace.enabled tr then
      Trace.open_span tr ~cat:"net"
        ~attrs:[ ("strategy", Trace.Str strategy) ]
        "net.eval"
    else Trace.none
  in
  Metrics.incr obs.Obs.metrics ~labels:[ ("strategy", strategy) ] "net.evals";
  let reply =
    match
      let q = P.query query in
      let d = Axml_doc.of_xml doc in
      match strategy with
      | "naive" -> Some (Engine.naive_run ~obs t.registry q d)
      | "lazy" -> Some (Lazy_eval.run ~registry:t.registry ~obs q d)
      | _ -> None
    with
    | Some r -> Wire.Report { id; report = Engine.report_to_json r }
    | None ->
      Wire.Error
        {
          id;
          transient = false;
          message = Printf.sprintf "unknown evaluation strategy %S" strategy;
        }
    | exception e ->
      Wire.Error { id; transient = false; message = Printexc.to_string e }
  in
  let outcome = match reply with Wire.Report _ -> "ok" | _ -> "error" in
  if Trace.enabled tr then
    Trace.close_span tr ~attrs:[ ("outcome", Trace.Str outcome) ] span;
  Obs.join t.obs obs;
  reply

(* Stop accepting: mark stopped, close the listener (so reconnects are
   refused synchronously from here on) and wake the accept loop. *)
let stop_listening t =
  let was_running =
    Mutex.protect t.mu (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if was_running then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try ignore (Unix.write t.stop_w (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()
  end

let shutdown_conns ?except t =
  let conns = Mutex.protect t.mu (fun () -> t.conns) in
  List.iter
    (fun (id, fd) ->
      if except <> Some id then
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns

let serve_conn t conn_id fd =
  let cleanup () =
    Mutex.protect t.mu (fun () ->
        t.conns <- List.filter (fun (id, _) -> id <> conn_id) t.conns);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      try
        let client_caps = ref [] in
        (match Wire.recv fd with
        | Wire.Hello { version; caps }, _ when version = Wire.version ->
          client_caps := caps;
          ignore (Wire.send fd (welcome t))
        | Wire.Hello { version; _ }, _ ->
          ignore
            (Wire.send fd
               (Wire.Error
                  {
                    id = 0;
                    transient = false;
                    message =
                      Printf.sprintf "unsupported protocol version %d (this peer speaks %d)"
                        version Wire.version;
                  }));
          raise Exit
        | _ ->
          ignore
            (Wire.send fd
               (Wire.Error
                  { id = 0; transient = false; message = "expected a hello handshake" }));
          raise Exit);
        let rec loop () =
          let answer reply =
            if t.stop_after_reply then begin
              (* Deterministic mid-run death: refuse reconnects *before*
                 the reply reaches the client, so everything after this
                 answer fails even through retries. *)
              stop_listening t;
              shutdown_conns ~except:conn_id t;
              ignore (Wire.send fd reply)
            end
            else begin
              ignore (Wire.send fd reply);
              loop ()
            end
          in
          match Wire.recv fd with
          | Wire.Invoke { id; service; params; push }, _ ->
            answer (handle_invoke t ~client_caps:!client_caps ~id ~service ~params ~push)
          | Wire.Eval { id; strategy; query; doc; projected = _ }, _ ->
            answer (handle_eval t ~id ~strategy ~query ~doc)
          | _, _ ->
            ignore
              (Wire.send fd
                 (Wire.Error
                    { id = 0; transient = false; message = "expected an invoke or eval request" }))
        in
        loop ()
      with
      | Wire.Closed | Exit -> ()
      | Unix.Unix_error _ -> ()
      | Wire.Protocol_error m -> (
        Log.debug (fun f -> f "closing connection on protocol error: %s" m);
        try ignore (Wire.send fd (Wire.Error { id = 0; transient = false; message = m }))
        with Wire.Protocol_error _ | Unix.Unix_error _ -> ()))

let accept_loop t =
  let rec loop () =
    let stop_now = Mutex.protect t.mu (fun () -> t.stopped) in
    if not stop_now then begin
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
      | rs, _, _ when List.mem t.stop_r rs -> ()
      | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
          let conn_id =
            Mutex.protect t.mu (fun () ->
                let id = t.next_conn in
                t.next_conn <- id + 1;
                t.conns <- (id, fd) :: t.conns;
                id)
          in
          ignore (Thread.create (fun () -> serve_conn t conn_id fd) ());
          loop ()
        | exception
            Unix.Unix_error
              ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED | Unix.EINTR), _, _) ->
          loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    end
  in
  loop ()

let start t =
  match t.accept_thread with
  | Some _ -> ()
  | None -> t.accept_thread <- Some (Thread.create accept_loop t)

let run t = accept_loop t

let stop t =
  stop_listening t;
  shutdown_conns t;
  (match t.accept_thread with
  | Some th ->
    t.accept_thread <- None;
    Thread.join th
  | None -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  try Unix.close t.stop_w with Unix.Unix_error _ -> ()

let kill_after_reply t = t.stop_after_reply <- true
