(** Readiness notification for the event-loop server: epoll(7) on Linux
    (via a tiny C stub — no fd-value cap, O(ready) wakeups), a
    [Unix.select] fallback elsewhere.

    One {!t} is owned by exactly one thread and nothing here is
    thread-safe, by design: a worker thread that wants to wake the loop
    writes one byte to a pipe whose read end is registered like any
    other fd. *)

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

type t

val available_backend : unit -> string
(** ["epoll"] when the platform supports it, ["select"] otherwise —
    without creating anything. *)

val create : ?force_select:bool -> unit -> t
(** Picks epoll when available unless [force_select] (default false)
    demands the portable backend (used by tests to cover both). *)

val backend_name : t -> string
(** ["epoll"] or ["select"]. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Registers [fd]. Raises [Invalid_argument] if already registered,
    [Failure] on the select backend for fd values at or beyond
    FD_SETSIZE (1024) — the hard cap epoll exists to remove. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Changes the interest set of a registered fd. No-op when the bits
    are unchanged. *)

val remove : t -> Unix.file_descr -> unit
(** Deregisters [fd]; forgiving of fds that were never added. Call
    {e before} closing the fd. *)

val registered : t -> int

val wait : t -> timeout:float -> event list
(** Blocks up to [timeout] seconds (negative = forever) and returns the
    ready fds with their readiness. EINTR returns [[]]. The runtime
    lock is released while blocking, so worker threads keep running. *)

val close : t -> unit
(** Releases the epoll fd (if any) and clears the interest table. *)
