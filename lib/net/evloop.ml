(* A minimal readiness-notification loop: epoll on Linux (no fd-value
   cap, O(ready) wakeups), Unix.select elsewhere (or when forced). One
   Evloop.t is owned by exactly one thread; none of this is
   thread-safe, by design — cross-thread wakeups go through a pipe
   registered like any other fd. *)

external epoll_available : unit -> bool = "axml_epoll_available"
external epoll_create : unit -> Unix.file_descr = "axml_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "axml_epoll_ctl"

external epoll_wait : Unix.file_descr -> int -> (Unix.file_descr * int) array
  = "axml_epoll_wait"

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

type backend = Epoll of Unix.file_descr | Select

type t = {
  backend : backend;
  interest : (Unix.file_descr, int) Hashtbl.t;
      (* fd -> event bits (1 = read, 2 = write). The select backend
         walks this to build its fd sets; the epoll backend keeps it as
         a mirror so [modify] of an unregistered fd fails loudly on
         both backends. *)
}

let available_backend () = if epoll_available () then "epoll" else "select"

let create ?(force_select = false) () =
  let backend =
    if (not force_select) && epoll_available () then Epoll (epoll_create ())
    else Select
  in
  { backend; interest = Hashtbl.create 64 }

let backend_name t = match t.backend with Epoll _ -> "epoll" | Select -> "select"

let bits ~read ~write = (if read then 1 else 0) lor if write then 2 else 0

(* The select(2) fd_set is indexed by fd *value*: anything at or above
   FD_SETSIZE is out of reach. Fail when a fd is registered, not
   somewhere inside the wait. *)
let fd_setsize = 1024

let check_select_fd fd =
  let n : int = Obj.magic (fd : Unix.file_descr) in
  if n >= fd_setsize then
    failwith
      (Printf.sprintf
         "Evloop(select): fd %d is beyond FD_SETSIZE (%d) — this platform needs the \
          epoll backend for this many connections"
         n fd_setsize)

let add t fd ~read ~write =
  if Hashtbl.mem t.interest fd then invalid_arg "Evloop.add: fd already registered";
  let b = bits ~read ~write in
  (match t.backend with
  | Epoll ep -> epoll_ctl ep 0 fd b
  | Select -> check_select_fd fd);
  Hashtbl.replace t.interest fd b

let modify t fd ~read ~write =
  match Hashtbl.find_opt t.interest fd with
  | None -> invalid_arg "Evloop.modify: fd not registered"
  | Some old ->
    let b = bits ~read ~write in
    if b <> old then begin
      (match t.backend with Epoll ep -> epoll_ctl ep 1 fd b | Select -> ());
      Hashtbl.replace t.interest fd b
    end

let remove t fd =
  if Hashtbl.mem t.interest fd then begin
    (match t.backend with
    | Epoll ep -> (
      (* a closed fd is already gone from the epoll set *)
      try epoll_ctl ep 2 fd 0 with Failure _ -> ())
    | Select -> ());
    Hashtbl.remove t.interest fd
  end

let registered t = Hashtbl.length t.interest

let wait t ~timeout =
  match t.backend with
  | Epoll ep ->
    let ms =
      if timeout < 0.0 then -1
      else int_of_float (Float.round (timeout *. 1000.0))
    in
    Array.fold_left
      (fun acc (fd, b) ->
        (* a fd removed by an earlier handler in the same drain could
           in principle resurface from the kernel buffer; interest is
           the source of truth *)
        if Hashtbl.mem t.interest fd then
          { fd; readable = b land 1 <> 0; writable = b land 2 <> 0 } :: acc
        else acc)
      []
      (epoll_wait ep ms)
  | Select -> (
    let rs, ws =
      Hashtbl.fold
        (fun fd b (rs, ws) ->
          ((if b land 1 <> 0 then fd :: rs else rs), if b land 2 <> 0 then fd :: ws else ws))
        t.interest ([], [])
    in
    match Unix.select rs ws [] timeout with
    | rs', ws', _ ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun fd -> Hashtbl.replace tbl fd 1) rs';
      List.iter
        (fun fd ->
          Hashtbl.replace tbl fd (2 lor (try Hashtbl.find tbl fd with Not_found -> 0)))
        ws';
      Hashtbl.fold
        (fun fd b acc -> { fd; readable = b land 1 <> 0; writable = b land 2 <> 0 } :: acc)
        tbl []
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> [])

let close t =
  Hashtbl.reset t.interest;
  match t.backend with
  | Epoll ep -> ( try Unix.close ep with Unix.Unix_error _ -> ())
  | Select -> ()
