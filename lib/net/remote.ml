module Registry = Axml_services.Registry

let register ?names ?retry ?(memoize = true) ~registry client =
  let advertised = Client.services client () in
  let selected =
    match names with
    | None -> advertised
    | Some wanted ->
      List.map
        (fun n ->
          match List.find_opt (fun (s : Wire.service_info) -> s.name = n) advertised with
          | Some s -> s
          | None ->
            invalid_arg
              (Printf.sprintf "peer %s:%d does not serve %S" (Client.host client)
                 (Client.port client) n))
        wanted
  in
  List.iter
    (fun (s : Wire.service_info) ->
      let transport ~name ~params ~push ~timeout ~obs =
        Client.call client ~obs ~timeout ~service:name ~params ~push
      in
      Registry.register_remote registry ~name:s.name ~push_capable:s.push ~memoize
        ?retry transport)
    selected;
  List.map (fun (s : Wire.service_info) -> s.name) selected
