/* epoll(7) bindings for the axml event-loop server.
 *
 * Unix.select caps fd *values* at FD_SETSIZE (1024 on glibc), which a
 * server holding thousands of concurrent connections blows through
 * immediately.  On Linux we therefore drive the loop with epoll; on
 * other systems the stubs report unavailability and Evloop falls back
 * to a select-based backend (capped, but portable).
 *
 * Event bits exchanged with the OCaml side: 1 = readable, 2 = writable.
 * EPOLLERR/EPOLLHUP are folded into both so a handler always gets told
 * about a dead peer through whichever interest it registered.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>
#include <errno.h>
#include <string.h>
#include <stdio.h>

CAMLprim value axml_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value axml_epoll_create(value unit)
{
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) {
    char msg[128];
    snprintf(msg, sizeof msg, "epoll_create1: %s", strerror(errno));
    caml_failwith(msg);
  }
  return Val_int(fd);
}

/* op: 0 = add, 1 = modify, 2 = delete */
CAMLprim value axml_epoll_ctl(value vepfd, value vop, value vfd, value vevents)
{
  struct epoll_event ev;
  int op, bits = Int_val(vevents);
  memset(&ev, 0, sizeof ev);
  if (bits & 1) ev.events |= EPOLLIN;
  if (bits & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vepfd), op, Int_val(vfd), &ev) == -1) {
    char msg[128];
    snprintf(msg, sizeof msg, "epoll_ctl: %s", strerror(errno));
    caml_failwith(msg);
  }
  return Val_unit;
}

#define AXML_EPOLL_MAX_EVENTS 512

/* timeout in milliseconds, -1 = infinite.  Returns an array of
 * (fd, event-bits) pairs; EINTR yields the empty array so the caller
 * simply loops. */
CAMLprim value axml_epoll_wait(value vepfd, value vtimeout_ms)
{
  CAMLparam0();
  CAMLlocal2(arr, pair);
  struct epoll_event evs[AXML_EPOLL_MAX_EVENTS];
  int epfd = Int_val(vepfd), timeout = Int_val(vtimeout_ms), n, i;
  caml_release_runtime_system();
  n = epoll_wait(epfd, evs, AXML_EPOLL_MAX_EVENTS, timeout);
  caml_acquire_runtime_system();
  if (n == -1) {
    if (errno == EINTR) n = 0;
    else {
      char msg[128];
      snprintf(msg, sizeof msg, "epoll_wait: %s", strerror(errno));
      caml_failwith(msg);
    }
  }
  arr = caml_alloc(n == 0 ? 0 : n, 0);
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) bits |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) bits |= 2;
    pair = caml_alloc_tuple(2);
    Store_field(pair, 0, Val_int(evs[i].data.fd));
    Store_field(pair, 1, Val_int(bits));
    Store_field(arr, i, pair);
  }
  CAMLreturn(arr);
}

#else /* !__linux__ */

CAMLprim value axml_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value axml_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("epoll is unavailable on this platform");
}

CAMLprim value axml_epoll_ctl(value vepfd, value vop, value vfd, value vevents)
{
  (void)vepfd; (void)vop; (void)vfd; (void)vevents;
  caml_failwith("epoll is unavailable on this platform");
}

CAMLprim value axml_epoll_wait(value vepfd, value vtimeout_ms)
{
  (void)vepfd; (void)vtimeout_ms;
  caml_failwith("epoll is unavailable on this platform");
}

#endif
