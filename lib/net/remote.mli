(** Registers a remote peer's services into a local
    {!Axml_services.Registry}, making network services indistinguishable
    from simulated ones to the evaluators: [Lazy_eval] and [Naive]
    invoke them through {!Axml_services.Registry.invoke} and get the
    registry's full retry/timeout/backoff/degradation machinery — run on
    {e real} clocks, with each attempt's socket deadline taken from the
    service's [retry_policy.attempt_timeout]. *)

val register :
  ?names:string list ->
  ?retry:Axml_services.Registry.retry_policy ->
  ?memoize:bool ->
  registry:Axml_services.Registry.t ->
  Client.t ->
  string list
(** [register ~registry client] asks the peer what it serves (the
    {!Wire.Welcome} service list) and registers each service as a remote
    entry backed by {!Client.call}. Returns the registered names.

    [names] restricts registration to a subset (unknown names raise
    [Invalid_argument]). [retry] overrides the default policy — its
    [attempt_timeout] becomes the per-attempt socket deadline. [memoize]
    (default [true]) caches un-pushed responses locally exactly as local
    services do; pushed (pruned) responses are never cached. A service
    the peer does not advertise as push-capable is registered with
    [push_capable = false], so the evaluator falls back to client-side
    pruning for it. *)
