(** Active XML documents (§2 of the paper).

    An AXML document is an ordered labeled tree with {e data nodes}
    (elements and data-value leaves) and {e function nodes} (embedded
    calls to Web services). The children of a function node are the call's
    parameters. Invoking a call replaces the function node, in place, by
    the forest the service returned ({!replace_call}).

    Nodes are mutable and carry parent pointers: call invocation splices
    results in O(|result|), and bottom-up query checking / F-guide
    maintenance walk ancestors cheaply. Every node has an identity ([id])
    unique within its document; function nodes additionally carry a
    [call_id] numbering them in creation order (matching the numbered
    calls of Fig. 1). *)

type node = private {
  id : int;
  mutable label : label;
  mutable attrs : (string * string) list;
      (** preserved for XML round-trips; invisible to queries *)
  mutable children : node list;
  mutable parent : node option;
  mutable viewpos : int;  (** internal: position in the document's current view *)
  mutable viewstamp : int;  (** internal: which view lineage stamped [viewpos] *)
}

and label =
  | Elem of string  (** element data node *)
  | Data of string  (** data-value leaf *)
  | Call of call  (** function node *)

and call = { fname : string; call_id : int }

type t
(** A document: a root node plus id generators, a generation counter
    bumped by every structural mutation, and the cached snapshot view. *)

type doc = t
(** Alias for use inside {!View}'s signature. *)

(** {2 Construction} *)

val create : unit -> t
(** An empty document whose root is an [Elem "root"] placeholder; use
    {!set_root} or the node builders below. *)

val elem : t -> ?attrs:(string * string) list -> string -> node list -> node
(** [elem d name children] allocates an element node in [d]. Children must
    belong to [d] and be parentless (raise [Invalid_argument]). *)

val data : t -> string -> node
val call : t -> string -> node list -> node

val set_root : t -> node -> unit
val root : t -> node

(** {2 The [axml:call] XML syntax} *)

val call_elem_name : string
(** ["axml:call"] — the element name encoding function nodes in plain
    XML. The service name is its ["name"] attribute. *)

val of_xml : Axml_xml.Tree.t -> t
(** Imports a plain XML tree; [<axml:call name="f">…</axml:call>]
    elements become function nodes. Raises [Invalid_argument] if such an
    element lacks a [name] attribute. *)

val to_xml : t -> Axml_xml.Tree.t
val node_to_xml : node -> Axml_xml.Tree.t
val forest_of_xml : t -> Axml_xml.Tree.forest -> node list
(** [forest_of_xml d f] imports trees as parentless nodes of [d] (for
    splicing service results). *)

val parse : string -> t
(** [parse s] = [of_xml (Axml_xml.Parse.tree s)]. *)

val to_string : ?indent:int -> t -> string

(** {2 Mutation} *)

val replace_call : t -> node -> Axml_xml.Tree.forest -> node list
(** [replace_call d fnode result] implements the rewriting step
    [d →v d'] (Def. 2): [fnode] (which must be a function node of [d]
    with a parent and among that parent's children; raise
    [Invalid_argument] otherwise, {e before} importing anything — a
    failed replace leaves the document untouched) is removed and the
    imported [result] forest is spliced at its position. The empty
    forest is a plain deletion: [fnode] ends up fully detached
    ([parent = None], absent from its former parent's children). If the
    document's snapshot view is current, only the spliced region is
    re-indexed. Returns the spliced-in nodes. *)

val append_child : t -> node -> node -> unit
(** [append_child d parent child] attaches a parentless node. *)

val remove_node : t -> node -> unit
(** Detaches a non-root node from its parent. *)

(** {2 Traversal and access} *)

val iter : (node -> unit) -> t -> unit
(** Document-order traversal of the whole tree (parameters of calls
    included). *)

val iter_node : (node -> unit) -> node -> unit
(** Like {!iter} but over one subtree. *)

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

val function_nodes : t -> node list
(** All live function nodes, in document order — including those nested
    inside call parameters. *)

val visible_function_nodes : t -> node list
(** Function nodes all of whose proper ancestors are data nodes — the
    only ones an NFQ can retrieve (queries match data nodes only, so a
    call buried in another call's parameters is invisible until its host
    is invoked). *)

val ancestors : node -> node list
(** From the parent up to the root (nearest first). *)

val label_path : node -> string list
(** Labels of element ancestors from the root down to (and excluding) the
    node itself — the node's dataguide path. *)

val size : t -> int
val count_calls : t -> int
val is_data : node -> bool
val is_call : node -> bool
val call_name : node -> string option

val data_children : node -> node list
(** Children that are data nodes (elements or values). *)

val text_value : node -> string option
(** [text_value n] is [Some v] when [n] is a [Data v] leaf. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit

(** {2 Generation tracking} *)

val uid : t -> int
(** Process-unique document identity (for caches keyed by document). *)

val generation : t -> int
(** Bumped by every structural mutation ([set_root], [append_child],
    [remove_node], [replace_call]). A view or cache tagged with an older
    generation is stale. *)

val view_indexed_total : t -> int
(** Cumulative number of nodes (re)indexed into snapshot views of this
    document — full builds plus incremental splice patches. The engine
    differences this across a run to report [view_rebuild_nodes]. *)

(** {2 Snapshot views}

    An immutable index of one subtree in document (pre)order: parallel
    arrays mapping position → label/attrs/parent/subtree-span plus the
    underlying node. Every read-only pass (matching, relevance, F-guide
    construction, projection context walks) can run against a view
    without touching the mutable tree, which makes fan-out over
    subtrees safe across domains. *)

module View : sig
  type t

  val snapshot : doc -> t
  (** The document's current view, built in one O(n) pass and cached on
      the document; [replace_call] re-indexes only the spliced region,
      every other mutation invalidates the cache. Cheap whenever the
      generation is unchanged. *)

  val of_node : node -> t
  (** Ad-hoc view of one subtree (positions relative to [node] at index
      0). Never cached and never disturbs the owning document's stamps;
      [index_of] works through a private id table. *)

  val size : t -> int
  val generation : t -> int
  val doc_uid : t -> int

  val root : t -> int
  (** Always [0]. *)

  val node : t -> int -> node
  val label : t -> int -> label
  val attrs : t -> int -> (string * string) list

  val parent : t -> int -> int
  (** [-1] at the view root. *)

  val subtree_end : t -> int -> int
  (** Exclusive end of the subtree rooted at the index: the subtree of
      [i] is exactly the index interval [[i, subtree_end t i)]. *)

  val children : t -> int -> int list
  (** Child indices in document order (an O(#children) skip-walk). *)

  val is_data : t -> int -> bool
  val is_call : t -> int -> bool

  val index_of : t -> node -> int option
  (** Position of a node in this view, or [None] when the node is not
      covered (e.g. it was spliced out, or the view predates it). *)

  val top_subtrees : t -> int list
  (** The root's child indices — the natural units of intra-document
      parallelism. *)

  val partition : t -> jobs:int -> int list -> int list list
  (** Contiguous, subtree-size-weighted partition of an index list into
      at most [jobs] chunks; deterministic, order-preserving. *)

  val visible_calls : t -> node list
  (** Function nodes not nested inside other calls' parameters, in
      document order (the view-side [visible_function_nodes]). *)

  val subtree_to_xml : t -> int -> Axml_xml.Tree.t
  val materialize : t -> Axml_xml.Tree.t
  (** Serializes the view itself (never the mutable tree) — the
      round-trip anchor: [materialize (snapshot d) = to_xml d]. *)
end
