module Tree = Axml_xml.Tree

type node = {
  id : int;
  mutable label : label;
  mutable attrs : (string * string) list;
  mutable children : node list;
  mutable parent : node option;
  mutable viewpos : int;
  mutable viewstamp : int;
}

and label =
  | Elem of string
  | Data of string
  | Call of call

and call = { fname : string; call_id : int }

(* An immutable snapshot of one subtree in document (pre)order: parallel
   arrays indexed by position. [vspan.(i)] is the exclusive end of node
   [i]'s subtree, so the children of [i] are [i+1], [vspan.(i+1)], ... —
   a pure skip-walk that never touches the mutable tree. Views built
   through the per-document cache identify nodes by stamping
   [viewpos]/[viewstamp]; ad-hoc subtree views carry an id table
   instead so they never disturb a document's stamps. *)
type view = {
  vdoc_uid : int;
  vgeneration : int;
  vstamp : int;
  vnodes : node array;
  vlabels : label array;
  vattrs : (string * string) list array;
  vparent : int array;  (* -1 at the view root *)
  vspan : int array;  (* exclusive subtree end *)
  vids : (int, int) Hashtbl.t option;  (* ad-hoc views only *)
}

type t = {
  mutable root : node;
  mutable next_id : int;
  mutable next_call_id : int;
  uid : int;
  mutable generation : int;
  mutable view_cache : view option;
  mutable reindexed : int;  (* cumulative nodes (re)indexed into views *)
}

let next_doc_uid = Atomic.make 0
let next_view_stamp = Atomic.make 0

let fresh_id d =
  let id = d.next_id in
  d.next_id <- id + 1;
  id

let mk d label =
  {
    id = fresh_id d;
    label;
    attrs = [];
    children = [];
    parent = None;
    viewpos = -1;
    viewstamp = -1;
  }

let adopt parent child =
  match child.parent with
  | Some _ -> invalid_arg "Doc: node already has a parent"
  | None -> child.parent <- Some parent

let elem d ?(attrs = []) name children =
  let n = mk d (Elem name) in
  n.attrs <- attrs;
  List.iter (adopt n) children;
  n.children <- children;
  n

let data d value = mk d (Data value)

let call d fname params =
  let call_id = d.next_call_id in
  d.next_call_id <- call_id + 1;
  let n = mk d (Call { fname; call_id }) in
  List.iter (adopt n) params;
  n.children <- params;
  n

let create () =
  let dummy_root =
    {
      id = 0;
      label = Elem "root";
      attrs = [];
      children = [];
      parent = None;
      viewpos = -1;
      viewstamp = -1;
    }
  in
  {
    root = dummy_root;
    next_id = 1;
    next_call_id = 1;
    uid = Atomic.fetch_and_add next_doc_uid 1;
    generation = 0;
    view_cache = None;
    reindexed = 0;
  }

(* Every structural mutation bumps the generation; [replace_call] patches
   the cached view in place of this wholesale invalidation. *)
let touch d =
  d.generation <- d.generation + 1;
  d.view_cache <- None

let set_root d n =
  (match n.parent with
  | Some _ -> invalid_arg "Doc.set_root: node has a parent"
  | None -> ());
  d.root <- n;
  touch d

let root d = d.root
let uid d = d.uid
let generation d = d.generation
let view_indexed_total d = d.reindexed

(* ------------------------------------------------------------------ *)

let call_elem_name = "axml:call"

let rec import d (t : Tree.t) : node =
  match t with
  | Tree.Text s -> data d s
  | Tree.Element { name; attrs; children } when String.equal name call_elem_name -> (
    match List.assoc_opt "name" attrs with
    | None -> invalid_arg "Doc.of_xml: <axml:call> without a name attribute"
    | Some fname -> call d fname (List.map (import d) children))
  | Tree.Element { name; attrs; children } ->
    elem d ~attrs name (List.map (import d) children)

let forest_of_xml d forest = List.map (import d) forest

let of_xml t =
  let d = create () in
  set_root d (import d t);
  d

let parse s = of_xml (Axml_xml.Parse.tree s)

let rec node_to_xml n =
  match n.label with
  | Data s -> Tree.Text s
  | Elem name -> Tree.Element { name; attrs = n.attrs; children = List.map node_to_xml n.children }
  | Call { fname; _ } ->
    Tree.Element
      {
        name = call_elem_name;
        attrs = ("name", fname) :: n.attrs;
        children = List.map node_to_xml n.children;
      }

let to_xml d = node_to_xml d.root
let to_string ?indent d = Axml_xml.Print.to_string ?indent (to_xml d)

(* ------------------------------------------------------------------ *)

let append_child d parent child =
  adopt parent child;
  parent.children <- parent.children @ [ child ];
  touch d

let remove_node d n =
  match n.parent with
  | None -> invalid_arg "Doc.remove_node: cannot detach the root"
  | Some p ->
    p.children <- List.filter (fun c -> c.id <> n.id) p.children;
    n.parent <- None;
    touch d

let rec subtree_count n = List.fold_left (fun acc c -> acc + subtree_count c) 1 n.children

(* Splice-patch the cached view: copy the prefix, index the fresh
   subtrees in place of the call's span, shift the suffix. Only the
   spliced region is re-walked; everything else is array blits plus an
   O(depth) ancestor-span fix-up. Returns [None] when the invoked node
   cannot be located in [v] (the caller then drops the cache). *)
let patch_view v ~generation fnode fresh =
  let n_old = Array.length v.vnodes in
  if
    not
      (fnode.viewstamp = v.vstamp
      && fnode.viewpos >= 0
      && fnode.viewpos < n_old
      && v.vnodes.(fnode.viewpos) == fnode)
  then None
  else begin
    let s = fnode.viewpos in
    let e = v.vspan.(s) in
    let added = List.fold_left (fun acc n -> acc + subtree_count n) 0 fresh in
    let delta = added - (e - s) in
    let n_new = n_old + delta in
    let pparent = v.vparent.(s) in
    let nodes = Array.make n_new fnode in
    let labels = Array.make n_new fnode.label in
    let attrs = Array.make n_new [] in
    let parent = Array.make n_new (-1) in
    let span = Array.make n_new 0 in
    Array.blit v.vnodes 0 nodes 0 s;
    Array.blit v.vlabels 0 labels 0 s;
    Array.blit v.vattrs 0 attrs 0 s;
    Array.blit v.vparent 0 parent 0 s;
    Array.blit v.vspan 0 span 0 s;
    (* index the fresh subtrees where the call used to sit *)
    let pos = ref s in
    let rec fill p nd =
      let i = !pos in
      incr pos;
      nodes.(i) <- nd;
      labels.(i) <- nd.label;
      attrs.(i) <- nd.attrs;
      parent.(i) <- p;
      nd.viewpos <- i;
      nd.viewstamp <- v.vstamp;
      List.iter (fill i) nd.children;
      span.(i) <- !pos
    in
    List.iter (fill pparent) fresh;
    (* shift the suffix: a node at [i >= e] is outside the call's
       subtree, so its parent is never inside [s, e) *)
    for i = e to n_old - 1 do
      let j = i + delta in
      let nd = v.vnodes.(i) in
      nodes.(j) <- nd;
      labels.(j) <- v.vlabels.(i);
      attrs.(j) <- v.vattrs.(i);
      parent.(j) <- (let p = v.vparent.(i) in if p < s then p else p + delta);
      span.(j) <- v.vspan.(i) + delta;
      nd.viewpos <- j
    done;
    (* every prefix node whose span reaches past [s] contains the splice
       point, i.e. is an ancestor of the call: widen along the chain *)
    let rec widen p =
      if p >= 0 then begin
        span.(p) <- span.(p) + delta;
        widen parent.(p)
      end
    in
    widen pparent;
    Some
      ( {
          vdoc_uid = v.vdoc_uid;
          vgeneration = generation;
          vstamp = v.vstamp;
          vnodes = nodes;
          vlabels = labels;
          vattrs = attrs;
          vparent = parent;
          vspan = span;
          vids = None;
        },
        added )
  end

let replace_call d fnode result =
  (match fnode.label with
  | Call _ -> ()
  | Elem _ | Data _ -> invalid_arg "Doc.replace_call: not a function node");
  match fnode.parent with
  | None -> invalid_arg "Doc.replace_call: function node has no parent"
  | Some parent ->
    (* validate membership before touching anything: a failed replace
       must not leave freshly imported nodes adopted but unspliced *)
    if not (List.exists (fun c -> c.id = fnode.id) parent.children) then
      invalid_arg "Doc.replace_call: node not among its parent's children";
    let cache =
      match d.view_cache with
      | Some v when v.vgeneration = d.generation -> Some v
      | _ -> None
    in
    let fresh = List.map (import d) result in
    List.iter (adopt parent) fresh;
    let rec splice = function
      | [] -> assert false
      | c :: rest -> if c.id = fnode.id then fresh @ rest else c :: splice rest
    in
    parent.children <- splice parent.children;
    fnode.parent <- None;
    d.generation <- d.generation + 1;
    (match cache with
    | None -> d.view_cache <- None
    | Some v -> (
      match patch_view v ~generation:d.generation fnode fresh with
      | Some (v', added) ->
        d.reindexed <- d.reindexed + added;
        d.view_cache <- Some v'
      | None -> d.view_cache <- None));
    fresh

(* ------------------------------------------------------------------ *)

let rec iter_node f n =
  f n;
  List.iter (iter_node f) n.children

let iter f d = iter_node f d.root

let fold f acc d =
  let acc = ref acc in
  iter (fun n -> acc := f !acc n) d;
  !acc

let is_data n = match n.label with Elem _ | Data _ -> true | Call _ -> false
let is_call n = match n.label with Call _ -> true | Elem _ | Data _ -> false
let call_name n = match n.label with Call { fname; _ } -> Some fname | Elem _ | Data _ -> None

let function_nodes d = List.rev (fold (fun acc n -> if is_call n then n :: acc else acc) [] d)

let visible_function_nodes d =
  (* Traverse without descending into function nodes' parameters. *)
  let out = ref [] in
  let rec go n =
    match n.label with
    | Call _ -> out := n :: !out
    | Elem _ | Data _ -> List.iter go n.children
  in
  go d.root;
  List.rev !out

let ancestors n =
  let rec up acc n = match n.parent with None -> List.rev acc | Some p -> up (p :: acc) p in
  up [] n

let label_path n =
  let labels =
    List.filter_map
      (fun a -> match a.label with Elem name -> Some name | Data _ | Call _ -> None)
      (ancestors n)
  in
  List.rev labels

let size d = fold (fun n _ -> n + 1) 0 d
let count_calls d = List.length (function_nodes d)
let data_children n = List.filter is_data n.children
let text_value n = match n.label with Data v -> Some v | Elem _ | Call _ -> None

let rec pp_node ppf n =
  match n.label with
  | Data s -> Format.fprintf ppf "%S" s
  | Elem name ->
    Format.fprintf ppf "@[<hv 2><%s>%a</%s>@]" name
      (Format.pp_print_list pp_node) n.children name
  | Call { fname; call_id } ->
    Format.fprintf ppf "@[<hv 2>[%d]%s(%a)@]" call_id fname
      (Format.pp_print_list pp_node) n.children

let pp ppf d = pp_node ppf d.root

(* ------------------------------------------------------------------ *)

type doc = t

module View = struct
  type t = view

  let build ~stamped ~doc_uid ~generation root_node =
    let n = subtree_count root_node in
    let nodes = Array.make n root_node in
    let labels = Array.make n root_node.label in
    let attrs = Array.make n [] in
    let parent = Array.make n (-1) in
    let span = Array.make n 0 in
    let ids = if stamped then None else Some (Hashtbl.create (max 16 n)) in
    let stamp = if stamped then Atomic.fetch_and_add next_view_stamp 1 else -1 in
    let pos = ref 0 in
    let rec fill p nd =
      let i = !pos in
      incr pos;
      nodes.(i) <- nd;
      labels.(i) <- nd.label;
      attrs.(i) <- nd.attrs;
      parent.(i) <- p;
      (match ids with
      | None ->
        nd.viewpos <- i;
        nd.viewstamp <- stamp
      | Some h -> Hashtbl.replace h nd.id i);
      List.iter (fill i) nd.children;
      span.(i) <- !pos
    in
    fill (-1) root_node;
    {
      vdoc_uid = doc_uid;
      vgeneration = generation;
      vstamp = stamp;
      vnodes = nodes;
      vlabels = labels;
      vattrs = attrs;
      vparent = parent;
      vspan = span;
      vids = ids;
    }

  let snapshot (d : doc) =
    match d.view_cache with
    | Some v when v.vgeneration = d.generation -> v
    | _ ->
      let v = build ~stamped:true ~doc_uid:d.uid ~generation:d.generation d.root in
      d.reindexed <- d.reindexed + Array.length v.vnodes;
      d.view_cache <- Some v;
      v

  let of_node n = build ~stamped:false ~doc_uid:(-1) ~generation:(-1) n
  let size v = Array.length v.vnodes
  let generation v = v.vgeneration
  let doc_uid v = v.vdoc_uid
  let root (_ : t) = 0
  let node v i = v.vnodes.(i)
  let label v i = v.vlabels.(i)
  let attrs v i = v.vattrs.(i)
  let parent v i = v.vparent.(i)
  let subtree_end v i = v.vspan.(i)

  let is_data v i = match v.vlabels.(i) with Elem _ | Data _ -> true | Call _ -> false
  let is_call v i = match v.vlabels.(i) with Call _ -> true | Elem _ | Data _ -> false

  let children v i =
    let stop = v.vspan.(i) in
    let rec go j acc = if j >= stop then List.rev acc else go v.vspan.(j) (j :: acc) in
    go (i + 1) []

  let index_of v n =
    match v.vids with
    | Some h -> Hashtbl.find_opt h n.id
    | None ->
      if
        n.viewstamp = v.vstamp
        && n.viewpos >= 0
        && n.viewpos < Array.length v.vnodes
        && v.vnodes.(n.viewpos) == n
      then Some n.viewpos
      else None

  let top_subtrees v = children v 0

  let partition v ~jobs tops =
    let jobs = max 1 jobs in
    if jobs <= 1 then [ tops ]
    else begin
      let weight i = v.vspan.(i) - i in
      let total = List.fold_left (fun acc i -> acc + weight i) 0 tops in
      let target = max 1 ((total + jobs - 1) / jobs) in
      let chunks = ref [] in
      let cur = ref [] in
      let w = ref 0 in
      let close () =
        if !cur <> [] then begin
          chunks := List.rev !cur :: !chunks;
          cur := [];
          w := 0
        end
      in
      List.iter
        (fun i ->
          cur := i :: !cur;
          w := !w + weight i;
          if !w >= target && List.length !chunks < jobs - 1 then close ())
        tops;
      close ();
      List.rev !chunks
    end

  let visible_calls v =
    let n = Array.length v.vnodes in
    let rec go i acc =
      if i >= n then List.rev acc
      else
        match v.vlabels.(i) with
        | Call _ -> go v.vspan.(i) (v.vnodes.(i) :: acc)
        | Elem _ | Data _ -> go (i + 1) acc
    in
    go 0 []

  let rec subtree_to_xml v i =
    match v.vlabels.(i) with
    | Data s -> Tree.Text s
    | Elem name ->
      Tree.Element { name; attrs = v.vattrs.(i); children = List.map (subtree_to_xml v) (children v i) }
    | Call { fname; _ } ->
      Tree.Element
        {
          name = call_elem_name;
          attrs = ("name", fname) :: v.vattrs.(i);
          children = List.map (subtree_to_xml v) (children v i);
        }

  let materialize v = subtree_to_xml v 0
end
