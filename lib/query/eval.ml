module Doc = Axml_doc
module View = Axml_doc.View
module Exec = Axml_exec.Exec

module P = Pattern

type binding = {
  results : (int * Doc.node) list;
  vars : (string * string) list;
}

let empty_binding = { results = []; vars = [] }

let label_string (lbl : Doc.label) =
  match lbl with
  | Doc.Elem name -> Some name
  | Doc.Data value -> Some value
  | Doc.Call _ -> None

let doc_label (n : Doc.node) = label_string n.Doc.label

let label_matches (ql : P.label) (lbl : Doc.label) =
  match ql, lbl with
  | P.Const s, Doc.Elem e -> String.equal s e
  | P.Value v, Doc.Data d -> String.equal v d
  | (P.Var _ | P.Wildcard), (Doc.Elem _ | Doc.Data _) -> true
  | P.Fun P.Any_fun, Doc.Call _ -> true
  | P.Fun (P.Named fs), Doc.Call c -> List.mem c.Doc.fname fs
  | P.Or, _ -> invalid_arg "Eval.label_matches: OR node"
  | (P.Const _ | P.Value _ | P.Var _ | P.Wildcard), Doc.Call _ -> false
  | (P.Const _ | P.Value _), (Doc.Elem _ | Doc.Data _) -> false
  | P.Fun _, (Doc.Elem _ | Doc.Data _) -> false

(* ------------------------------------------------------------------ *)
(* Bindings as small sorted association lists, with consistent merge.   *)

let rec merge_sorted ~conflict xs ys =
  match xs, ys with
  | [], zs | zs, [] -> Some zs
  | (kx, vx) :: xs', (ky, vy) :: ys' ->
    let c = compare kx ky in
    if c < 0 then
      Option.map (fun rest -> (kx, vx) :: rest) (merge_sorted ~conflict xs' ys)
    else if c > 0 then
      Option.map (fun rest -> (ky, vy) :: rest) (merge_sorted ~conflict xs ys')
    else if conflict vx vy then
      Option.map (fun rest -> (kx, vx) :: rest) (merge_sorted ~conflict xs' ys')
    else None

let join ~relax_joins b1 b2 =
  (* Result keys (pids) are unique per query node, so equal keys always
     carry the same image; variables must agree on their labels unless
     joins are relaxed. *)
  match merge_sorted ~conflict:(fun (x : Doc.node) y -> x.Doc.id = y.Doc.id) b1.results b2.results with
  | None -> None
  | Some results -> (
    match
      merge_sorted
        ~conflict:(fun x y -> relax_joins || String.equal x y)
        b1.vars b2.vars
    with
    | None -> None
    | Some vars -> Some { results; vars })

let binding_key b =
  (List.map (fun (pid, (n : Doc.node)) -> (pid, n.Doc.id)) b.results, b.vars)

let dedup bindings =
  match bindings with
  | [] | [ _ ] -> bindings
  | _ ->
    let seen = Hashtbl.create (List.length bindings) in
    List.filter
      (fun b ->
        let key = binding_key b in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      bindings

let join_lists ~relax_joins l1 l2 =
  match l1, l2 with
  | [], _ | _, [] -> []
  | [ b1 ], l2 when b1 == empty_binding -> l2
  | l1, [ b2 ] when b2 == empty_binding -> l1
  | l1, l2 ->
    dedup
      (List.concat_map (fun b1 -> List.filter_map (fun b2 -> join ~relax_joins b1 b2) l2) l1)

(* ------------------------------------------------------------------ *)
(* Parallel fan-out accounting: one [par] per evaluation run, shared by
   every context that should count into the same report.               *)

type par = {
  par_jobs : int;
  mutable batches : int;  (* parallel map dispatches *)
}

let par ~jobs = { par_jobs = max 1 jobs; batches = 0 }
let par_jobs p = p.par_jobs
let par_batches p = p.batches
let par_count p chunks = p.batches <- p.batches + chunks

(* ------------------------------------------------------------------ *)
(* Evaluation context: per-run memo tables over one snapshot view.      *)

type ctx = {
  relax_joins : bool;
  record_images : bool;
  par : par option;
  mutable view : View.t option;
      (* bound on first use; rebinding to a different view resets the
         memo tables, so a long-lived context self-heals across document
         mutations instead of serving stale entries *)
  (* (pattern pid, view index) -> bindings with the pattern node mapped
     to that position *)
  memo_at : (int * int, binding list) Hashtbl.t;
  (* (pattern pid, view index) -> bindings with the pattern node mapped
     strictly below that position *)
  memo_below : (int * int, binding list) Hashtbl.t;
  (* pattern pid -> subtree contains result nodes or variables *)
  interesting : (int, bool) Hashtbl.t;
}

let make_ctx ?(record_images = false) ?par ~relax_joins () =
  {
    relax_joins;
    record_images;
    par;
    view = None;
    memo_at = Hashtbl.create 256;
    memo_below = Hashtbl.create 256;
    interesting = Hashtbl.create 64;
  }

let bind ctx v =
  match ctx.view with
  | Some v0 when v0 == v -> ()
  | None -> ctx.view <- Some v
  | Some _ ->
    Hashtbl.reset ctx.memo_at;
    Hashtbl.reset ctx.memo_below;
    ctx.view <- Some v

let rec is_interesting ctx (p : P.node) =
  match Hashtbl.find_opt ctx.interesting p.P.pid with
  | Some v -> v
  | None ->
    let v =
      ctx.record_images || p.P.result
      || (match p.P.label with P.Var _ -> true | _ -> false)
      || List.exists (is_interesting ctx) p.P.children
    in
    Hashtbl.replace ctx.interesting p.P.pid v;
    v

let self_binding ctx v (p : P.node) i =
  let results =
    if p.P.result || ctx.record_images then [ (p.P.pid, View.node v i) ] else []
  in
  let vars =
    match p.P.label with
    | P.Var x -> ( match label_string (View.label v i) with Some l -> [ (x, l) ] | None -> [])
    | _ -> []
  in
  { results; vars }

(* Matches pattern node [p] with image exactly position [i] of [v]. *)
let rec match_at_ctx ctx v (p : P.node) i : binding list =
  let key = (p.P.pid, i) in
  match Hashtbl.find_opt ctx.memo_at key with
  | Some r -> r
  | None ->
    let r =
      match p.P.label with
      | P.Or ->
        (* The OR node itself has no image; its chosen alternative is
           matched at this position. *)
        dedup (List.concat_map (fun alt -> match_alternative ctx v alt i) p.P.children)
      | _ -> match_concrete ctx v p i
    in
    let r = if is_interesting ctx p then r else if r = [] then [] else [ empty_binding ] in
    Hashtbl.replace ctx.memo_at key r;
    r

and match_alternative ctx v (alt : P.node) i =
  (* Alternatives are matched at the OR's position; their own axis is
     ignored. Nested ORs are permitted. *)
  match alt.P.label with
  | P.Or -> dedup (List.concat_map (fun a -> match_alternative ctx v a i) alt.P.children)
  | _ -> match_concrete ctx v alt i

and match_concrete ctx v (p : P.node) i =
  if not (label_matches p.P.label (View.label v i)) then []
  else begin
    let self = [ self_binding ctx v p i ] in
    List.fold_left
      (fun acc child ->
        if acc = [] then []
        else join_lists ~relax_joins:ctx.relax_joins acc (match_child ctx v child i))
      self p.P.children
  end

(* Matches pattern node [p] with image a child of [i] (Child axis) or any
   position strictly below [i] reachable through data nodes (Descendant). *)
and match_child ctx v (p : P.node) i =
  match p.P.axis with
  | P.Child ->
    dedup (List.concat_map (fun c -> match_at_ctx ctx v p c) (positions_under v i))
  | P.Descendant -> match_below ctx v p i

and match_below ctx v (p : P.node) i =
  let key = (p.P.pid, i) in
  match Hashtbl.find_opt ctx.memo_below key with
  | Some r -> r
  | None ->
    let r =
      dedup
        (List.concat_map
           (fun c ->
             let here = match_at_ctx ctx v p c in
             let deeper = if View.is_data v c then match_below ctx v p c else [] in
             here @ deeper)
           (positions_under v i))
    in
    let r = if is_interesting ctx p then r else if r = [] then [] else [ empty_binding ] in
    Hashtbl.replace ctx.memo_below key r;
    r

(* Children visible to queries: all children of a data node; none for a
   function node (parameters are not document content). *)
and positions_under v i = if View.is_data v i then View.children v i else []

(* ------------------------------------------------------------------ *)
(* Root fan-out: decompose the match at the view root over its top-level
   subtrees and run contiguous chunks on domains. The reassembly
   replicates the sequential order exactly — per pattern child, chunk
   contributions concatenate in document order before the same dedup,
   interesting-collapse and join/fold — so the bindings are identical,
   element for element, at every jobs level.                            *)

let match_root ctx v (p : P.node) =
  let ri = View.root v in
  let sequential () = match_at_ctx ctx v p ri in
  match ctx.par with
  | None -> sequential ()
  | Some _ when p.P.label = P.Or -> sequential ()
  | Some par when par.par_jobs <= 1 -> sequential ()
  | Some par ->
    if not (label_matches p.P.label (View.label v ri)) then sequential ()
    else begin
      let tops = positions_under v ri in
      let chunks = View.partition v ~jobs:par.par_jobs tops in
      match chunks with
      | [] | [ _ ] -> sequential ()
      | chunks ->
        let work chunk =
          let cctx =
            make_ctx ~record_images:ctx.record_images ~relax_joins:ctx.relax_joins ()
          in
          cctx.view <- Some v;
          List.map
            (fun (c : P.node) ->
              List.concat_map
                (fun t ->
                  match c.P.axis with
                  | P.Child -> match_at_ctx cctx v c t
                  | P.Descendant ->
                    let here = match_at_ctx cctx v c t in
                    let deeper =
                      if View.is_data v t then match_below cctx v c t else []
                    in
                    here @ deeper)
                chunk)
            p.P.children
        in
        let results = Exec.map_domains ~jobs:par.par_jobs work chunks in
        par_count par (List.length chunks);
        let per_child =
          List.mapi
            (fun ci (c : P.node) ->
              let contrib = List.concat_map (fun r -> List.nth r ci) results in
              match c.P.axis with
              | P.Child -> dedup contrib
              | P.Descendant ->
                let r = dedup contrib in
                if is_interesting ctx c then r
                else if r = [] then []
                else [ empty_binding ])
            p.P.children
        in
        let self = [ self_binding ctx v p ri ] in
        let r =
          List.fold_left
            (fun acc rc ->
              if acc = [] then [] else join_lists ~relax_joins:ctx.relax_joins acc rc)
            self per_child
        in
        if is_interesting ctx p then r else if r = [] then [] else [ empty_binding ]
    end

(* ------------------------------------------------------------------ *)

type context = ctx

let context ?(relax_joins = false) ?par () = make_ctx ~relax_joins ?par ()

let match_at ?(relax_joins = false) p n =
  let v = View.of_node n in
  let ctx = make_ctx ~relax_joins () in
  bind ctx v;
  match_at_ctx ctx v p (View.root v)

let eval_view_in ctx (q : P.t) v =
  bind ctx v;
  match_root ctx v q.P.root

let eval_view ?(relax_joins = false) ?par (q : P.t) v =
  eval_view_in (make_ctx ~relax_joins ?par ()) q v

let eval_in ctx (q : P.t) (d : Doc.t) = eval_view_in ctx q (View.snapshot d)

let eval ?(relax_joins = false) ?par (q : P.t) (d : Doc.t) =
  eval_in (make_ctx ~relax_joins ?par ()) q d

let collect_target (bindings : binding list) ~target =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun (pid, (n : Doc.node)) ->
          if pid = target && not (Hashtbl.mem seen n.Doc.id) then begin
            Hashtbl.replace seen n.Doc.id ();
            out := n :: !out
          end)
        b.results)
    bindings;
  List.rev !out

let check_target (q : P.t) ~target =
  match P.find q target with
  | Some n when n.P.result -> ()
  | Some _ -> invalid_arg "Eval.matches_of: target is not a result node"
  | None -> invalid_arg "Eval.matches_of: no such pattern node"

let matches_of_view_in ctx (q : P.t) v ~target =
  check_target q ~target;
  collect_target (eval_view_in ctx q v) ~target

let matches_of_view ?(relax_joins = false) ?par (q : P.t) v ~target =
  matches_of_view_in (make_ctx ~relax_joins ?par ()) q v ~target

let matches_of_in ctx (q : P.t) (d : Doc.t) ~target =
  matches_of_view_in ctx q (View.snapshot d) ~target

let matches_of ?(relax_joins = false) ?par (q : P.t) (d : Doc.t) ~target =
  matches_of_in (make_ctx ~relax_joins ?par ()) q d ~target

(* ------------------------------------------------------------------ *)
(* Candidate-anchored matching (§6.2).                                  *)

let anchored_matches_view ?(relax_joins = false) (q : P.t) ~target v ci =
  let target_node =
    match P.find q target with
    | Some n -> n
    | None -> invalid_arg "Eval.anchored_matches: no such pattern node"
  in
  let path = P.path_to q target_node in
  if List.exists (fun (p : P.node) -> p.P.label = P.Or) path then
    invalid_arg "Eval.anchored_matches: OR node on the path to the target";
  (* The index chain the path must align with: view root … candidate. *)
  let chain =
    let rec up acc i = if i < 0 then acc else up (i :: acc) (View.parent v i) in
    Array.of_list (up [] ci)
  in
  let ctx = make_ctx ~relax_joins () in
  bind ctx v;
  let m = Array.length chain in
  (* Conditions of a path node, excluding the continuation to the next
     path node. *)
  let side_conditions p next =
    List.filter (fun (c : P.node) -> c.P.pid <> next.P.pid) p.P.children
  in
  (* Walk the pattern path and the chain in lock step; descendant edges
     may skip chain nodes. At each alignment, the side conditions are
     checked with the regular (downward) evaluator and joined. *)
  let rec align steps j acc =
    if acc = [] then false
    else
      match steps with
      | [] -> true
      | (p : P.node) :: rest ->
        let last = rest = [] in
        let try_at j =
          if j >= m then false
          else if last && j <> m - 1 then false
          else if not (label_matches_or p (View.label v chain.(j))) then false
          else begin
            let conds =
              match rest with
              | [] -> p.P.children (* the target keeps all its conditions *)
              | next :: _ -> side_conditions p next
            in
            let here =
              List.fold_left
                (fun acc c ->
                  if acc = [] then []
                  else join_lists ~relax_joins acc (match_child ctx v c chain.(j)))
                acc conds
            in
            align rest (j + 1) here
          end
        in
        (match p.P.axis with
        | P.Child -> try_at j
        | P.Descendant ->
          let rec try_from j = j < m && (try_at j || try_from (j + 1)) in
          try_from j)

  and label_matches_or p lbl =
    match p.P.label with
    | P.Or -> List.exists (fun alt -> label_matches_or alt lbl) p.P.children
    | _ -> label_matches p.P.label lbl
  in
  (* The pattern root must align with the document root (chain.(0)); the
     root's own axis is irrelevant, as in the top-down evaluator. *)
  match path with
  | [] -> false
  | root :: rest -> align (P.with_axis root P.Child :: rest) 0 [ empty_binding ]

let anchored_matches ?(relax_joins = false) (q : P.t) ~target (d : Doc.t)
    (candidate : Doc.node) =
  let v = View.snapshot d in
  match View.index_of v candidate with
  | Some ci -> anchored_matches_view ~relax_joins q ~target v ci
  | None ->
    (* not covered by the document's view: detached (already invoked) or
       foreign — it cannot be an image of the target *)
    false

(* ------------------------------------------------------------------ *)
(* Complete homomorphisms, for witnesses (query pushing) and oracles.   *)

type embedding = (int * Doc.node) list

let embeddings ?(relax_joins = false) ?(limit = 10_000) p n =
  let v = View.of_node n in
  let ctx = make_ctx ~record_images:true ~relax_joins () in
  bind ctx v;
  let bindings = match_at_ctx ctx v p (View.root v) in
  let bindings = if List.length bindings > limit then List.filteri (fun i _ -> i < limit) bindings else bindings in
  List.map (fun b -> b.results) bindings

let label_matches_exposed ql (n : Doc.node) = label_matches ql n.Doc.label

let bindings_to_xml bindings =
  let module Tree = Axml_xml.Tree in
  List.map
    (fun b ->
      let var_elems =
        List.map
          (fun (x, v) -> Tree.element (String.lowercase_ascii x) [ Tree.text v ])
          b.vars
      in
      let result_elems = List.map (fun (_, n) -> Doc.node_to_xml n) b.results in
      Tree.element "tuple" (var_elems @ result_elems))
    bindings
