(** Embedding evaluation: the snapshot semantics of Definition 1.

    An embedding is a tree {e homomorphism} (not necessarily injective)
    from the pattern to the document, mapping the pattern root to the
    document root, preserving child / ancestor-descendant edges, matching
    constants exactly, and binding every occurrence of a variable to data
    nodes with identical labels. Function nodes of extended queries map to
    function nodes of the document; OR nodes are a choice between their
    children. Queries never traverse {e into} a function node (a call's
    parameters are invisible to queries until the call is invoked).

    The evaluator runs as a pure function over an immutable snapshot
    {!Axml_doc.View} — the document-taking entry points below just bind
    the document's cached view first. It is memoized on (pattern node,
    view position) pairs, and collapses sub-patterns that contain neither
    result nodes nor variables to pure existence tests.

    With a {!par} handle carrying [jobs > 1], the match at the view root
    fans out over top-level subtrees on domains ({!Exec.map_domains}).
    The reassembly preserves document order before the same
    deduplication and joins, so the bindings are identical — element for
    element — at every jobs level. *)

type binding = {
  results : (int * Axml_doc.node) list;  (** result-node pid → image, sorted by pid *)
  vars : (string * string) list;  (** variable → label of its image, sorted *)
}

type par
(** Shared accounting for intra-document parallel matching: the jobs
    level plus a counter of parallel map dispatches. One [par] value is
    threaded through every context of an evaluation run so the engine
    can report [parallel_match_batches]. *)

val par : jobs:int -> par
val par_jobs : par -> int
val par_batches : par -> int

val par_count : par -> int -> unit
(** [par_count p n] accounts [n] more parallel batches — for callers
    (e.g. the candidate filter) that dispatch their own chunked maps
    outside the evaluator. *)

type context
(** A reusable evaluation context: memo tables keyed by (pattern node,
    view position) pairs. Pattern-node ids are globally unique, so one
    context can be shared across {e different} queries over the same
    document state — the multi-query optimization the paper's §4.1 calls
    essential. The context binds the document's snapshot view on first
    use and resets itself when evaluated against a different view (i.e.
    after the document changed), so stale entries are never served. *)

val context : ?relax_joins:bool -> ?par:par -> unit -> context

val eval_in : context -> Pattern.t -> Axml_doc.t -> binding list
val matches_of_in : context -> Pattern.t -> Axml_doc.t -> target:int -> Axml_doc.node list

val eval : ?relax_joins:bool -> ?par:par -> Pattern.t -> Axml_doc.t -> binding list
(** [eval q d] is the snapshot result [q(d)]: the distinct bindings of
    result nodes and variables over all embeddings. With
    [relax_joins:true], occurrences of the same variable need not agree
    (the lenient §6.1 approximation — a superset of the exact result). *)

val matches_of : ?relax_joins:bool -> ?par:par -> Pattern.t -> Axml_doc.t -> target:int -> Axml_doc.node list
(** [matches_of q d ~target] lists the distinct document nodes that the
    result node with pid [target] takes over all embeddings, in document
    order. The node must be marked [result] (raise [Invalid_argument]
    otherwise). This is how NFQs retrieve relevant calls. *)

(** {2 View-level entry points}

    Pure evaluation over an explicit snapshot view — what the
    document-taking functions above delegate to. *)

val eval_view : ?relax_joins:bool -> ?par:par -> Pattern.t -> Axml_doc.View.t -> binding list
val eval_view_in : context -> Pattern.t -> Axml_doc.View.t -> binding list
val matches_of_view :
  ?relax_joins:bool -> ?par:par -> Pattern.t -> Axml_doc.View.t -> target:int -> Axml_doc.node list
val matches_of_view_in : context -> Pattern.t -> Axml_doc.View.t -> target:int -> Axml_doc.node list

val anchored_matches_view :
  ?relax_joins:bool -> Pattern.t -> target:int -> Axml_doc.View.t -> int -> bool
(** [anchored_matches_view q ~target v i] tests whether some embedding of
    [q] maps the result node [target] to position [i] of [v]. *)

val match_at : ?relax_joins:bool -> Pattern.node -> Axml_doc.node -> binding list
(** [match_at p n] matches the pattern subtree [p] with its root mapped
    exactly to [n] (used by services evaluating pushed queries, where the
    pattern root is tried against each tree of the result forest). Builds
    an ad-hoc view of [n]'s subtree. *)

val anchored_matches : ?relax_joins:bool -> Pattern.t -> target:int -> Axml_doc.t -> Axml_doc.node -> bool
(** [anchored_matches q ~target d n] tests whether some embedding of [q]
    maps the result node [target] to the specific node [n] of [d] — the
    candidate-driven check used after F-guide filtering (§6.2). Matching
    aligns the pattern path with [n]'s ancestor chain rather than
    scanning from the document root, so it is fast when [q] would
    otherwise scan a large document. A node no longer covered by the
    document (e.g. an already-invoked call) never matches. *)

type embedding = (int * Axml_doc.node) list
(** Total images: pattern pid → document node, for every pattern node on
    the chosen OR branches, sorted by pid. *)

val embeddings : ?relax_joins:bool -> ?limit:int -> Pattern.node -> Axml_doc.node -> embedding list
(** [embeddings p n] enumerates complete homomorphisms of [p] rooted at
    [n] (at most [limit], default 10_000) — used to build witness trees
    for query pushing and by the test oracle. *)

val doc_label : Axml_doc.node -> string option
(** The label string used for variable-consistency comparisons: element
    name or data value; [None] on function nodes. *)

val bindings_to_xml : binding list -> Axml_xml.Tree.forest
(** Serializes answers in the paper's §7 wire format: one [<tuple>] per
    binding, with one child per variable (lower-cased variable name as
    element name, label as content) and the full subtree of every result
    image. *)

val label_matches_exposed : Pattern.label -> Axml_doc.node -> bool
(** Single-node label matching (no children), exposed for test oracles.
    Raises [Invalid_argument] on OR labels. *)
