(** A bounded worker thread pool: the execution layer that makes the
    §4.4 parallel-invocation strategy true on the wall clock.

    The evaluator has always {e accounted} a parallel batch as the max
    of its members' costs on the simulated clock; until this layer
    existed it still {e invoked} them one by one, so against real peers
    (PR 3) the wall clock disagreed with the simulation by the full sum
    of the latencies. {!map_batch} closes that gap: the batch members
    run concurrently on pool threads and the call returns when all of
    them have finished.

    {b Runtime-lock caveat.} OCaml's [threads.posix] threads interleave
    compute under the runtime lock — they do not parallelize CPU work.
    They {e do} run concurrently through blocking I/O and sleeps
    ([Unix.sleepf], socket reads, connection dials release the lock),
    which is exactly where a Web-service workload spends its time: with
    [n] workers, [n] concurrent 50 ms calls cost ~50 ms of wall clock
    instead of [n * 50] ms. CPU-bound batches gain nothing; that is
    fine, the evaluator's CPU work (relevance analysis) stays on the
    caller's thread.

    The pool is safe for nested use: {!map_batch} never parks the
    calling thread while work remains — the caller is itself one of the
    executors — so a batch dispatched from inside another batch's worker
    cannot deadlock even when every pool thread is busy. *)

type pool

val default_jobs : unit -> int
(** [max 2 ncpus] — the CLI [--jobs 0] ("auto") value. *)

val create : ?jobs:int -> unit -> pool
(** [jobs] (default {!default_jobs}) is the maximum number of batch
    members executing concurrently, the calling thread included; it is
    clamped to at least 1. [jobs = 1] spawns no threads at all and makes
    {!map_batch} run inline — byte-for-byte the sequential evaluator. *)

val jobs : pool -> int

val map_batch : pool -> ('a -> 'b) -> 'a list -> 'b list
(** [map_batch pool f xs] applies [f] to every element of [xs], up to
    [jobs pool] concurrently, and returns the results {b in input
    order}. Every element is processed exactly once, even when some
    raise. If any application raised, the exception of the
    {e lowest-index} failing element is re-raised after the whole batch
    has been joined — deterministic regardless of scheduling, and no
    work is silently dropped. Empty and singleton batches, and pools
    with [jobs = 1], run inline on the calling thread. *)

val async : pool -> (unit -> unit) -> unit
(** [async pool task] enqueues [task] for a pool thread and returns
    immediately; exceptions escaping [task] are swallowed. Used by the
    event-loop server to hand decoded requests off its loop thread.
    Beware the pool's counting: the calling thread is one of the [jobs]
    executors, so a pool intended to run [n] async tasks concurrently
    without the caller's help needs [jobs = n + 1]. On a stopped pool
    (or one with [jobs = 1], which has no threads) the task runs inline. *)

val shutdown : pool -> unit
(** Stops the worker threads and joins them. Idempotent. Batches already
    dispatched complete first; calling {!map_batch} afterwards runs
    inline. *)

val map_domains : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_domains ~jobs f xs] is {!map_batch} semantics on {e domains}
    instead of pool threads: results in input order, every element
    processed exactly once, the lowest-index exception re-raised after
    the whole batch joined. Unlike the thread pool, domains run on
    separate cores, so {b CPU-bound} work genuinely parallelizes — this
    is the substrate for the intra-document match fan-out
    ([--match-jobs]). [f] must only touch domain-safe state (immutable
    snapshot views, its own tables). Helper domains are spawned per
    call ([min (jobs-1) (length xs - 1)] of them, the caller being the
    last executor) and joined before returning; [jobs <= 1], empty and
    singleton batches run inline. *)
