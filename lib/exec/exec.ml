type pool = {
  jobs : int;
  mu : Mutex.t;
  cond : Condition.t;  (* signaled when the queue gains a task or on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable workers : Thread.t list;
  mutable stopped : bool;
}

let default_jobs () = max 2 (Domain.recommended_domain_count ())

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.mu;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.cond pool.mu
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mu (* stopped *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mu;
      (* batch tasks carry their outcome in the batch's result cells;
         nothing can escape here *)
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let pool =
    {
      jobs;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      workers = [];
      stopped = false;
    }
  in
  (* the caller of [map_batch] is the jobs-th executor *)
  pool.workers <- List.init (jobs - 1) (fun _ -> Thread.create worker_loop pool);
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mu;
  pool.stopped <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mu;
  List.iter Thread.join pool.workers;
  pool.workers <- []

let async pool task =
  Mutex.lock pool.mu;
  if pool.stopped || pool.jobs <= 1 then begin
    Mutex.unlock pool.mu;
    (try task () with _ -> ())
  end
  else begin
    Queue.push (fun () -> try task () with _ -> ()) pool.queue;
    Condition.signal pool.cond;
    Mutex.unlock pool.mu
  end

let map_batch pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when pool.jobs <= 1 || pool.stopped -> List.map f xs
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let bmu = Mutex.create () in
    let bcond = Condition.create () in
    let next = ref 0 in
    let completed = ref 0 in
    let take () =
      Mutex.lock bmu;
      let i = !next in
      if i < n then incr next;
      Mutex.unlock bmu;
      if i < n then Some i else None
    in
    let run_one i =
      let r = try Ok (f arr.(i)) with e -> Error e in
      Mutex.lock bmu;
      results.(i) <- Some r;
      incr completed;
      if !completed = n then Condition.broadcast bcond;
      Mutex.unlock bmu
    in
    (* claim-and-run until the batch is drained; also what the helper
       tasks enqueued on the pool execute. A helper that a worker picks
       up only after the batch finished finds [take] empty and returns
       immediately. *)
    let rec drain () =
      match take () with
      | Some i ->
        run_one i;
        drain ()
      | None -> ()
    in
    let helpers = min (n - 1) (pool.jobs - 1) in
    Mutex.lock pool.mu;
    for _ = 1 to helpers do
      Queue.push drain pool.queue
    done;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mu;
    (* the caller participates: guarantees progress even when every
       worker is busy with other (possibly nested) batches *)
    drain ();
    Mutex.lock bmu;
    while !completed < n do
      Condition.wait bcond bmu
    done;
    Mutex.unlock bmu;
    let first_error = ref None in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Some (Error e) -> first_error := Some e
      | _ -> ()
    done;
    (match !first_error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | _ -> assert false (* completed = n and no Error *))
         results)

(* ------------------------------------------------------------------ *)

let map_domains ~jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs <= 1 -> List.map f xs
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let drain () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (n - 1) (jobs - 1) in
    let domains = List.init helpers (fun _ -> Domain.spawn drain) in
    (* the caller is the jobs-th executor *)
    drain ();
    List.iter Domain.join domains;
    let first_error = ref None in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Some (Error e) -> first_error := Some e
      | _ -> ()
    done;
    (match !first_error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | _ -> assert false)
         results)
