(** Simulated Web services.

    The paper's experiments run against real SOAP endpoints; here services
    are in-process OCaml functions with a deterministic cost model, so the
    quantities the paper's evaluation depends on — how many calls were
    invoked, how many bytes crossed the wire, how long invocation would
    have taken — are measured exactly and reproducibly.

    A service's {e cost} for one invocation is
    [latency + per_byte * (request_bytes + response_bytes)] (seconds on
    the simulated clock). Callers invoking a batch in parallel account the
    batch as the {e max} of its invocation costs; sequential invocations
    add up. That aggregation is done by the evaluator, not here.

    Real endpoints also fail: each service may carry a seeded
    {!Faults.schedule}, and every non-cached invocation runs a retry loop
    governed by a {!retry_policy} — failed attempts are retried after
    exponential backoff (all accounted on the same simulated clock) until
    one succeeds or the budget is exhausted, in which case
    {!Service_failure} carries the invocation record of the defeat.

    Services may return forests containing further [<axml:call>] nodes —
    this is what makes relevance detection "a continuous process" (§1).

    {b Thread-safety.} {!invoke} may be called concurrently from worker
    threads (the {!Axml_exec} pool, the {!Axml_net.Server} connection
    handlers): the invocation history and the memo caches are guarded by
    an internal mutex, and fault draws are keyed by the logical call
    ({!Faults.invocation_key} of the serialized parameters plus the
    retry index) rather than by a shared cursor, so seeded schedules are
    reproducible at any concurrency level. Registration and fault/policy
    installation are {e not} synchronized with invocation — complete
    setup before invoking concurrently. Memoization is single-flight:
    the first of several identical concurrent calls claims the cache
    slot and computes; the duplicates block until it resolves and then
    answer from the cache (one full-cost invocation plus hits, exactly
    as in a sequential run). If the filler fails — or could only
    produce a push-pruned, uncacheable response — one waiter takes over
    as the next filler. *)

type behavior = Axml_xml.Tree.forest -> Axml_xml.Tree.forest
(** Maps the call's parameter forest to its result forest. *)

type cost_model = {
  latency : float;  (** seconds per invocation *)
  per_byte : float;  (** seconds per transferred byte *)
}

val default_cost : cost_model
(** 50 ms latency, 1 µs/byte — a slow 2004-era Web service. The
    per-byte term alone amounts to ≈ 1 MB/s of payload throughput; the
    {e effective} throughput is lower because the 50 ms latency is paid
    on top of it once per attempt (e.g. a 50 kB transfer takes
    0.05 s + 0.05 s = 0.1 s, i.e. ≈ 0.5 MB/s). The bytes charged per
    attempt are the request {e and} the response serialization
    ({!Axml_xml.Print.forest_byte_size} of each): the request ships
    again on every retry, the response is only charged on the attempt
    that succeeds. *)

type retry_policy = {
  max_retries : int;  (** additional attempts after the first *)
  base_backoff : float;  (** simulated seconds before the first retry *)
  backoff_factor : float;  (** exponential multiplier per further retry *)
  max_backoff : float;  (** backoff cap, seconds *)
  attempt_timeout : float;
      (** per-attempt budget: an attempt whose total duration (latency +
          injected delay + transfer) would exceed it is abandoned at the
          budget and classified as a timeout. [infinity] = wait forever. *)
}

val default_policy : retry_policy
(** 3 retries, 0.1 s base backoff doubling up to 2 s, no attempt
    timeout. *)

val backoff_before : retry_policy -> retry:int -> float
(** The wait inserted before retry number [retry]:
    [min max_backoff (base_backoff * backoff_factor^(retry-1))].

    {b [retry] is 1-based}: the first {e retry} (i.e. the second wire
    attempt) is number 1 and waits [base_backoff]; each further retry
    multiplies the wait by [backoff_factor] (which need not be an
    integer) until [max_backoff] clamps it. [retry <= 0] — the first
    attempt, which is not a retry — waits [0.0]. *)

type invocation = {
  service : string;
  request_bytes : int;
      (** the request ships once per wire attempt; retries multiply it *)
  response_bytes : int;  (** 0 when the invocation permanently failed *)
  cost : float;
      (** simulated seconds: every attempt's duration plus all backoff *)
  pushed : bool;  (** a subquery was evaluated provider-side *)
  cached : bool;  (** answered from the client-side result cache *)
  retries : int;  (** attempts beyond the first (all of them failed) *)
  timeouts : int;  (** attempts classified as timeouts *)
  backoff_seconds : float;  (** simulated seconds spent backing off *)
  failed : bool;  (** the retry budget was exhausted; no result *)
}

(** {2 Remote transports}

    A service may live behind a real wire instead of an in-process
    closure: a {!transport} performs one {e attempt} against a remote
    provider and reports what actually crossed the wire. {!invoke} runs
    the same retry loop for both kinds, but for remote services the
    clocks are real — [attempt_timeout] becomes a socket deadline, the
    exponential backoff actually sleeps, and [cost] is measured
    wall-clock seconds instead of cost-model arithmetic. The fault
    schedule of a remote service is ignored: real networks inject their
    own faults ({!Transport_error}). See {!Axml_net} for the TCP
    implementation. *)

type wire = {
  sent : int;  (** bytes put on the wire for this attempt (framing included) *)
  received : int;  (** bytes read off the wire for this attempt *)
  served_push : bool;  (** the provider applied the pushed pattern *)
  elapsed : float;  (** measured wall-clock seconds for this attempt *)
}

exception Transport_error of {
  wire : wire;  (** what the failed attempt still cost *)
  transient : bool;
      (** worth retrying: connection refused/reset, timeout. Permanent
          protocol errors (version mismatch, unknown service, provider
          degradation) fail the invocation immediately. *)
  timeout : bool;  (** the attempt hit its socket deadline *)
  reason : string;
}

type transport =
  name:string ->
  params:Axml_xml.Tree.forest ->
  push:Axml_query.Pattern.node option ->
  timeout:float ->
  obs:Axml_obs.Obs.t ->
  Axml_xml.Tree.forest * wire
(** One wire attempt. [timeout] is the per-attempt budget in real
    seconds ([infinity] = none); [push] is only passed for push-capable
    services. Raises {!Transport_error} on failure. *)

type t

exception Unknown_service of string

exception Service_failure of invocation
(** Raised by {!invoke} when every attempt failed. The invocation (also
    appended to the history) accounts the full cost of the defeat. *)

val create : unit -> t

val register :
  t ->
  name:string ->
  ?cost:cost_model ->
  ?push_capable:bool ->
  ?memoize:bool ->
  ?faults:Faults.schedule ->
  ?retry:retry_policy ->
  behavior ->
  unit
(** [push_capable] defaults to [true]: the provider accepts pushed
    subqueries (§7 notes that capability must be checked per source).
    [memoize] (default [false]) caches full results client-side, keyed by
    the serialized parameters: repeated identical calls cost nothing —
    the caching the ActiveXML system applies to deterministic services.
    Pushing still prunes per call from the cached full result.
    [faults] (default none) is the service's fault schedule and [retry]
    its policy; raises [Invalid_argument] on an invalid schedule. *)

val register_remote :
  t ->
  name:string ->
  ?push_capable:bool ->
  ?memoize:bool ->
  ?retry:retry_policy ->
  transport ->
  unit
(** Registers a service served by a remote provider. [push_capable]
    (default [true]) should mirror what the provider's handshake
    advertises — pushing to an incapable provider would silently ship
    full results. [memoize] caches full (un-pushed) results client-side
    exactly like local memoization; pushed responses are never cached
    (they are pruned, caching them would poison later calls).
    [retry] defaults to {!default_policy}; its backoff is slept for
    real, so remote registrations usually want a smaller
    [base_backoff]. *)

val is_registered : t -> string -> bool
val names : t -> string list

val is_remote : t -> string -> bool
(** Raises {!Unknown_service}. *)

val push_capable : t -> string -> bool
(** Whether the provider accepts pushed subqueries — what a serving
    peer advertises in its handshake. Raises {!Unknown_service}. *)

val set_fault_seed : t -> int -> unit
(** The seed keying every service's fault schedule (default 0). *)

val inject_faults : t -> ?seed:int -> Faults.schedule -> unit
(** Installs the schedule on every currently registered service —
    the bench/CLI "--fault-rate" knob. Remote services keep the
    schedule but never consult it (their faults come off the wire).
    Raises [Invalid_argument] on an invalid schedule. *)

val set_retry_policy : t -> retry_policy -> unit
(** Installs the policy on every currently registered service. *)

val fault_schedule : t -> string -> Faults.schedule
(** The service's current schedule. Raises {!Unknown_service}. *)

val retry_policy : t -> string -> retry_policy
(** The service's current policy. Raises {!Unknown_service}. *)

val invoke :
  t ->
  name:string ->
  params:Axml_xml.Tree.forest ->
  ?push:Axml_query.Pattern.node ->
  ?obs:Axml_obs.Obs.t ->
  unit ->
  Axml_xml.Tree.forest * invocation
(** Invokes the service, retrying per its policy when its fault schedule
    makes attempts fail. With [push] and a push-capable provider, the
    result is pruned provider-side to the witnesses of the pushed pattern
    ({!Witness.prune}) and [response_bytes] counts the pruned forest;
    otherwise the full result ships. A cache hit on a memoized service
    answers locally and is never exposed to faults. Raises
    {!Unknown_service} on unknown names and {!Service_failure} when the
    retry budget is exhausted.

    [obs] (default: disabled) records one [service.invoke] span per
    invocation with one [service.attempt] child per wire attempt (carrying
    retry index, fault outcome and simulated duration) and a
    [service.backoff] instant per wait, advancing the tracer's simulated
    clock as it goes; per-service [service.*] counters and the
    [service.cost] latency histogram land in [obs]'s metrics registry. *)

(** {2 Multi-registry routing view}

    A routing layer (the {!Axml_sched} shard router) spans several
    registries — one per shard or replica peer. The view is a read-only
    union: it answers "who can serve this name" without merging any
    state, so each underlying registry keeps its own history, caches,
    fault schedules and seeds. Lookups re-check ownership, so services
    registered after the view was built are visible through it. *)

type view

val view : t list -> view
(** Order matters: it is the shard declaration order, and routing layers
    treat the first owner as the default placement. *)

val view_registries : view -> t list

val view_owners : view -> string -> t list
(** The registries that can serve [name], in view order — the replica
    set a balancer chooses from. Empty when nobody serves it. *)

val view_is_registered : view -> string -> bool

val view_push_capable : view -> string -> bool
(** Whether {e every} owner accepts pushed subqueries — pushing must be
    decided before placement, so one incapable replica disables the push
    for the name. Raises {!Unknown_service} when nobody serves it. *)

val view_names : view -> string list
(** The union of service names, first-seen order, deduplicated. *)

(** {2 Accounting} *)

val history : t -> invocation list
(** All invocations, oldest first — permanently failed ones included. *)

val invocation_count : t -> int
val total_bytes : t -> int

val total_retries : t -> int
val total_timeouts : t -> int
val total_backoff : t -> float
val failed_count : t -> int

val fault_exposures : t -> int
(** Attempts that drew a fault: one per retried attempt plus one for
    each permanent failure's final attempt. The E7 degradation metric —
    fewer calls ⇒ fewer exposures. *)

val reset_history : t -> unit
