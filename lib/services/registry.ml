module Tree = Axml_xml.Tree
module Print = Axml_xml.Print
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

type behavior = Tree.forest -> Tree.forest

type cost_model = { latency : float; per_byte : float }

let default_cost = { latency = 0.05; per_byte = 1e-6 }

type retry_policy = {
  max_retries : int;
  base_backoff : float;
  backoff_factor : float;
  max_backoff : float;
  attempt_timeout : float;
}

let default_policy =
  {
    max_retries = 3;
    base_backoff = 0.1;
    backoff_factor = 2.0;
    max_backoff = 2.0;
    attempt_timeout = infinity;
  }

let backoff_before policy ~retry =
  (* [retry] is 1-based: the wait before retry #1 is [base_backoff].
     There is no wait before the first attempt (retry 0). *)
  if retry <= 0 then 0.0
  else
    Float.min policy.max_backoff
      (policy.base_backoff *. (policy.backoff_factor ** float_of_int (retry - 1)))

type invocation = {
  service : string;
  request_bytes : int;
  response_bytes : int;
  cost : float;
  pushed : bool;
  cached : bool;
  retries : int;
  timeouts : int;
  backoff_seconds : float;
  failed : bool;
}

type wire = {
  sent : int;
  received : int;
  served_push : bool;
  elapsed : float;
}

exception Transport_error of {
  wire : wire;
  transient : bool;
  timeout : bool;
  reason : string;
}

type transport =
  name:string ->
  params:Tree.forest ->
  push:Axml_query.Pattern.node option ->
  timeout:float ->
  obs:Obs.t ->
  Tree.forest * wire

(* Where the service actually runs: an in-process closure charged on the
   simulated clock, or a remote provider behind a real wire. *)
type provider = Local of behavior | Remote of transport

(* One memo-cache entry. [Pending] is a claim: some thread is computing
   this key right now; duplicates wait on [cache_cv] instead of invoking
   the behavior a second time (the "double-miss race" of concurrent
   identical-parameter calls). *)
type cache_slot = Filled of Tree.forest | Pending

type service = {
  provider : provider;
  cost_model : cost_model;
  push_capable : bool;
  cache : (string, cache_slot) Hashtbl.t option;
      (* memoized services: parameter serialization -> full result *)
  mutable faults : Faults.schedule;
  mutable retry : retry_policy;
}

type t = {
  services : (string, service) Hashtbl.t;
  mu : Mutex.t;
      (* guards [history] and the memo caches; registration and fault/
         policy installation must precede concurrent invocation. The
         lock is never held while a behavior, a transport or a backoff
         sleep runs. *)
  cache_cv : Condition.t;
      (* signalled (with [mu] held) whenever a [Pending] memo slot is
         resolved — filled or abandoned — so waiters can re-inspect *)
  mutable order : string list; (* registration order, newest first *)
  mutable history : invocation list; (* newest first *)
  mutable fault_seed : int;
}

exception Unknown_service of string

exception Service_failure of invocation

let create () =
  {
    services = Hashtbl.create 16;
    mu = Mutex.create ();
    cache_cv = Condition.create ();
    order = [];
    history = [];
    fault_seed = 0;
  }

let locked t f = Mutex.protect t.mu f

(* Take-or-install under [t.mu]: either return the memoized result, or
   claim the key for this thread by installing [Pending]. A concurrent
   caller that finds [Pending] blocks on [cache_cv] until the filler
   resolves the slot — to a result (we return it: a cache hit) or to
   nothing (the filler failed, or could only produce a push-pruned
   response); in the latter case the waiter takes over as the new
   filler. This closes the double-miss race: two pooled invocations
   with identical parameters used to both miss (both lookups preceding
   both stores) and run the behavior twice. *)
let take_or_install t cache key =
  Mutex.protect t.mu (fun () ->
      let rec loop () =
        match Hashtbl.find_opt cache key with
        | Some (Filled result) -> `Hit result
        | Some Pending ->
          Condition.wait t.cache_cv t.mu;
          loop ()
        | None ->
          Hashtbl.replace cache key Pending;
          `Fill
      in
      loop ())

let resolve_filled t cache key result =
  locked t (fun () ->
      Hashtbl.replace cache key (Filled result);
      Condition.broadcast t.cache_cv)

(* Drop a still-[Pending] claim; waiters wake and the first becomes the
   next filler. Safe to call after [resolve_filled] (a no-op then), so
   the filler can run it unconditionally on every exit path. *)
let abandon_pending t cache key =
  locked t (fun () ->
      (match Hashtbl.find_opt cache key with
      | Some Pending -> Hashtbl.remove cache key
      | Some (Filled _) | None -> ());
      Condition.broadcast t.cache_cv)

let register t ~name ?(cost = default_cost) ?(push_capable = true) ?(memoize = false)
    ?(faults = []) ?(retry = default_policy) behavior =
  (match Faults.validate faults with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "service %s: %s" name m));
  if not (Hashtbl.mem t.services name) then t.order <- name :: t.order;
  let cache = if memoize then Some (Hashtbl.create 16) else None in
  Hashtbl.replace t.services name
    { provider = Local behavior; cost_model = cost; push_capable; cache; faults; retry }

let register_remote t ~name ?(push_capable = true) ?(memoize = false)
    ?(retry = default_policy) transport =
  if not (Hashtbl.mem t.services name) then t.order <- name :: t.order;
  let cache = if memoize then Some (Hashtbl.create 16) else None in
  Hashtbl.replace t.services name
    {
      provider = Remote transport;
      cost_model = default_cost;
      push_capable;
      cache;
      faults = [];
      retry;
    }

let is_registered t name = Hashtbl.mem t.services name
let names t = List.rev t.order

let set_fault_seed t seed = t.fault_seed <- seed

let inject_faults t ?seed faults =
  (match Faults.validate faults with
  | Ok () -> ()
  | Error m -> invalid_arg m);
  (match seed with Some s -> t.fault_seed <- s | None -> ());
  Hashtbl.iter (fun _ svc -> svc.faults <- faults) t.services

let set_retry_policy t policy =
  Hashtbl.iter (fun _ svc -> svc.retry <- policy) t.services

let find_exn t name =
  match Hashtbl.find_opt t.services name with
  | Some s -> s
  | None -> raise (Unknown_service name)

let fault_schedule t name = (find_exn t name).faults
let retry_policy t name = (find_exn t name).retry
let push_capable t name = (find_exn t name).push_capable

let is_remote t name =
  match (find_exn t name).provider with Remote _ -> true | Local _ -> false

(* Per-service metrics for one finished invocation (successful, cached
   or permanently failed). The totals reconcile with the evaluators'
   report fields by construction: both are folded from the same
   invocation records. *)
let account_metrics m ~name (inv : invocation) =
  if Metrics.enabled m then begin
    let labels = [ ("service", name) ] in
    Metrics.incr m ~labels "service.invocations";
    if inv.cached then Metrics.incr m ~labels "service.cache_hits";
    if inv.pushed then Metrics.incr m ~labels "service.pushed";
    if inv.failed then Metrics.incr m ~labels "service.failures";
    Metrics.incr m ~labels ~by:inv.retries "service.retries";
    Metrics.incr m ~labels ~by:inv.timeouts "service.timeouts";
    Metrics.add m ~labels "service.backoff_seconds" inv.backoff_seconds;
    Metrics.incr m ~labels ~by:inv.request_bytes "service.request_bytes";
    Metrics.incr m ~labels ~by:inv.response_bytes "service.response_bytes";
    Metrics.observe m ~labels "service.cost" inv.cost
  end

(* Invocation-span close attributes: the measured outcome. *)
let invocation_attrs (inv : invocation) =
  [
    ("cached", Trace.Bool inv.cached);
    ("pushed", Trace.Bool inv.pushed);
    ("failed", Trace.Bool inv.failed);
    ("retries", Trace.Int inv.retries);
    ("timeouts", Trace.Int inv.timeouts);
    ("bytes", Trace.Int (inv.request_bytes + inv.response_bytes));
    ("backoff_s", Trace.Float inv.backoff_seconds);
    ("cost_s", Trace.Float inv.cost);
  ]

let invoke t ~name ~params ?push ?(obs = Obs.null) () =
  let service = find_exn t name in
  let tr = obs.Obs.trace in
  let traced = Trace.enabled tr in
  let inv_span =
    if traced then
      Trace.open_span tr ~cat:"service" ~attrs:[ ("service", Trace.Str name) ] "service.invoke"
    else Trace.none
  in
  let finish (inv : invocation) =
    account_metrics obs.Obs.metrics ~name inv;
    if traced then Trace.close_span tr ~attrs:(invocation_attrs inv) inv_span
  in
  (* the serialized parameters key both the memo cache and the fault
     PRNG; serialize at most once *)
  let params_str = lazy (Print.forest_to_string params) in
  let cache_key =
    match service.cache with
    | None -> None
    | Some cache -> Some (cache, Lazy.force params_str)
  in
  let hit result =
    (* A cache hit answers locally: no wire, no latency — and no fault
       exposure; the fault layer only applies to network attempts. *)
    let pushed, shipped =
      match push with
      | Some pattern when service.push_capable -> (true, Witness.prune pattern result)
      | Some _ | None -> (false, result)
    in
    let invocation =
      {
        service = name;
        request_bytes = 0;
        response_bytes = 0;
        cost = 0.0;
        pushed;
        cached = true;
        retries = 0;
        timeouts = 0;
        backoff_seconds = 0.0;
        failed = false;
      }
    in
    locked t (fun () -> t.history <- invocation :: t.history);
    finish invocation;
    (shipped, invocation)
  in
  let fill_cache result =
    match cache_key with
    | Some (cache, key) -> resolve_filled t cache key result
    | None -> ()
  in
  let miss () =
  match service.provider with
  | Remote transport ->
    (* A real wire: the transport performs one attempt; the same retry
       loop runs here, but on real clocks — the backoff actually sleeps
       and [cost] is measured wall time. The local fault schedule does
       not apply; faults arrive as [Transport_error]s. *)
    let policy = service.retry in
    let push_arg =
      match push with Some p when service.push_capable -> Some p | Some _ | None -> None
    in
    let rec go ~retry ~sent ~received ~cost ~timeouts ~backoff =
      let attempt_span =
        if traced then
          Trace.open_span tr ~cat:"service"
            ~attrs:
              [
                ("service", Trace.Str name);
                ("retry", Trace.Int retry);
                ("transport", Trace.Str "net");
              ]
            "service.attempt"
        else Trace.none
      in
      if Metrics.enabled obs.Obs.metrics then
        Metrics.incr obs.Obs.metrics ~labels:[ ("service", name) ] "service.attempts";
      match transport ~name ~params ~push:push_arg ~timeout:policy.attempt_timeout ~obs with
      | result, w ->
        Trace.advance tr w.elapsed;
        if traced then
          Trace.close_span tr
            ~attrs:[ ("outcome", Trace.Str "ok"); ("wire_s", Trace.Float w.elapsed) ]
            attempt_span;
        (* Only full results are cacheable: a pushed response is pruned
           to one pattern's witnesses and would poison later calls. *)
        if not w.served_push then fill_cache result;
        let invocation =
          {
            service = name;
            request_bytes = sent + w.sent;
            response_bytes = received + w.received;
            cost = cost +. w.elapsed;
            pushed = w.served_push;
            cached = false;
            retries = retry;
            timeouts;
            backoff_seconds = backoff;
            failed = false;
          }
        in
        locked t (fun () -> t.history <- invocation :: t.history);
        finish invocation;
        (result, invocation)
      | exception Transport_error { wire = w; transient; timeout = timed_out; reason } ->
        Trace.advance tr w.elapsed;
        if traced then
          Trace.close_span tr
            ~attrs:
              [
                ( "outcome",
                  Trace.Str
                    (if timed_out then "timeout"
                     else if transient then "transient"
                     else "fatal") );
                ("reason", Trace.Str reason);
                ("wire_s", Trace.Float w.elapsed);
              ]
            attempt_span;
        let timeouts = timeouts + if timed_out then 1 else 0 in
        let sent = sent + w.sent and received = received + w.received in
        let cost = cost +. w.elapsed in
        if (not transient) || retry >= policy.max_retries then begin
          let invocation =
            {
              service = name;
              request_bytes = sent;
              response_bytes = received;
              cost;
              pushed = false;
              cached = false;
              retries = retry;
              timeouts;
              backoff_seconds = backoff;
              failed = true;
            }
          in
          locked t (fun () -> t.history <- invocation :: t.history);
          finish invocation;
          raise (Service_failure invocation)
        end
        else begin
          let wait = backoff_before policy ~retry:(retry + 1) in
          if wait > 0.0 then Unix.sleepf wait;
          Trace.advance tr wait;
          if traced then
            Trace.instant tr ~cat:"service"
              ~attrs:[ ("service", Trace.Str name); ("wait_s", Trace.Float wait) ]
              "service.backoff";
          go ~retry:(retry + 1) ~sent ~received ~cost:(cost +. wait) ~timeouts
            ~backoff:(backoff +. wait)
        end
    in
    go ~retry:0 ~sent:0 ~received:0 ~cost:0.0 ~timeouts:0 ~backoff:0.0
  | Local behavior ->
    let policy = service.retry in
    let request_bytes = Print.forest_byte_size params in
    let request_time = service.cost_model.per_byte *. float_of_int request_bytes in
    (* Computed at most once; an attempt that fails before the provider
       answers never runs the behavior. *)
    let result = lazy (behavior params) in
    let shipped_of result =
      match push with
      | Some pattern when service.push_capable -> (true, Witness.prune pattern result)
      | Some _ | None -> (false, result)
    in
    (* the fault-PRNG key of this logical call: a pure function of the
       parameters, so the seeded fault fate is identical on any thread,
       at any --jobs level, in any interleaving *)
    let fault_key =
      lazy (Faults.invocation_key (Lazy.force params_str))
    in
    let fault_seed = t.fault_seed in
    let rec go ~retry ~cost ~timeouts ~backoff =
      let attempt_span =
        if traced then
          Trace.open_span tr ~cat:"service"
            ~attrs:[ ("service", Trace.Str name); ("retry", Trace.Int retry) ]
            "service.attempt"
        else Trace.none
      in
      if Metrics.enabled obs.Obs.metrics then
        Metrics.incr obs.Obs.metrics ~labels:[ ("service", name) ] "service.attempts";
      let outcome =
        if service.faults = [] then Faults.Healthy
        else
          Faults.plan ~seed:fault_seed ~service:name ~key:(Lazy.force fault_key)
            ~retry service.faults
      in
      let finish_ok ~extra =
        let full = Lazy.force result in
        let pushed, shipped = shipped_of full in
        let response_bytes = Print.forest_byte_size shipped in
        let duration =
          service.cost_model.latency +. extra +. request_time
          +. (service.cost_model.per_byte *. float_of_int response_bytes)
        in
        if duration > policy.attempt_timeout then
          (* the response would not arrive within the per-attempt budget *)
          `Failed (policy.attempt_timeout, `Timeout)
        else begin
          fill_cache full;
          let invocation =
            {
              service = name;
              request_bytes = request_bytes * (retry + 1);
              response_bytes;
              cost = cost +. duration;
              pushed;
              cached = false;
              retries = retry;
              timeouts;
              backoff_seconds = backoff;
              failed = false;
            }
          in
          `Ok (shipped, invocation)
        end
      in
      let attempted =
        match outcome with
        | Faults.Healthy -> finish_ok ~extra:0.0
        | Faults.Delayed extra -> finish_ok ~extra
        | Faults.Dropped ->
          `Failed
            ( Float.min (service.cost_model.latency +. request_time) policy.attempt_timeout,
              `Transient )
        | Faults.Unresponsive hang ->
          `Failed (Float.min hang policy.attempt_timeout, `Timeout)
      in
      match attempted with
      | `Ok (shipped, invocation) ->
        let duration = invocation.cost -. cost in
        Trace.advance tr duration;
        if traced then
          Trace.close_span tr
            ~attrs:[ ("outcome", Trace.Str "ok"); ("sim_s", Trace.Float duration) ]
            attempt_span;
        locked t (fun () -> t.history <- invocation :: t.history);
        finish invocation;
        (shipped, invocation)
      | `Failed (duration, kind) ->
        Trace.advance tr duration;
        if traced then
          Trace.close_span tr
            ~attrs:
              [
                ( "outcome",
                  Trace.Str (match kind with `Timeout -> "timeout" | `Transient -> "transient") );
                ("sim_s", Trace.Float duration);
              ]
            attempt_span;
        let timeouts = timeouts + (match kind with `Timeout -> 1 | `Transient -> 0) in
        let cost = cost +. duration in
        if retry >= policy.max_retries then begin
          let invocation =
            {
              service = name;
              request_bytes = request_bytes * (retry + 1);
              response_bytes = 0;
              cost;
              pushed = false;
              cached = false;
              retries = retry;
              timeouts;
              backoff_seconds = backoff;
              failed = true;
            }
          in
          locked t (fun () -> t.history <- invocation :: t.history);
          finish invocation;
          raise (Service_failure invocation)
        end
        else begin
          let wait = backoff_before policy ~retry:(retry + 1) in
          Trace.advance tr wait;
          if traced then
            Trace.instant tr ~cat:"service"
              ~attrs:[ ("service", Trace.Str name); ("wait_s", Trace.Float wait) ]
              "service.backoff";
          go ~retry:(retry + 1) ~cost:(cost +. wait) ~timeouts ~backoff:(backoff +. wait)
        end
    in
    go ~retry:0 ~cost:0.0 ~timeouts:0 ~backoff:0.0
  in
  match cache_key with
  | None -> miss ()
  | Some (cache, key) -> (
    match take_or_install t cache key with
    | `Hit result -> hit result
    | `Fill ->
      (* Whatever happens in [miss] — success (slot already [Filled]),
         a push-pruned response, [Service_failure], any exception — the
         claim must not outlive this call, or waiters deadlock. *)
      Fun.protect ~finally:(fun () -> abandon_pending t cache key) miss)

(* ------------------------------------------------------------------ *)
(* Multi-registry routing view *)

(* A read-only union of registries for routing layers: which registries
   can serve a name, and what the union of names is. The view holds no
   state of its own — ownership is re-checked per lookup, so services
   registered after [view] are seen. *)
type view = t list

let view regs = regs
let view_registries v = v
let view_owners v name = List.filter (fun r -> is_registered r name) v
let view_is_registered v name = List.exists (fun r -> is_registered r name) v

let view_push_capable v name =
  match view_owners v name with
  | [] -> raise (Unknown_service name)
  | owners -> List.for_all (fun r -> push_capable r name) owners

let view_names v =
  let seen = Hashtbl.create 16 in
  List.concat_map names v
  |> List.filter (fun n ->
         if Hashtbl.mem seen n then false
         else begin
           Hashtbl.replace seen n ();
           true
         end)

let history t = locked t (fun () -> List.rev t.history)
let invocation_count t = locked t (fun () -> List.length t.history)

let fold_history t f init =
  locked t (fun () -> List.fold_left f init t.history)

let total_bytes t =
  fold_history t (fun acc i -> acc + i.request_bytes + i.response_bytes) 0

let total_retries t = fold_history t (fun acc i -> acc + i.retries) 0
let total_timeouts t = fold_history t (fun acc i -> acc + i.timeouts) 0

let total_backoff t =
  fold_history t (fun acc i -> acc +. i.backoff_seconds) 0.0

let failed_count t =
  fold_history t (fun acc i -> acc + if i.failed then 1 else 0) 0

(* One exposure per attempt that drew a fault: every retried attempt
   failed, plus the last attempt of a permanently failed invocation. *)
let fault_exposures t =
  fold_history t (fun acc i -> acc + i.retries + if i.failed then 1 else 0) 0

let reset_history t = locked t (fun () -> t.history <- [])
