type fault = Fail_transient | Timeout of float | Slow of float | Flaky of float

type schedule = fault list

type outcome = Healthy | Delayed of float | Dropped | Unresponsive of float

(* Splitmix64: a counter-based generator whose streams split by key
   mixing, so (seed, service, attempt, salt) indexes an independent draw
   without any shared mutable state. *)

let golden = 0x9e3779b97f4a7c15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let absorb key i = mix64 (Int64.add key (Int64.mul (Int64.of_int i) golden))

let absorb_string key s =
  let k = ref key in
  String.iter (fun c -> k := absorb !k (Char.code c)) s;
  absorb !k (String.length s)

let invocation_key params =
  (* a 62-bit digest of the serialized parameters: the part of the PRNG
     key that identifies the logical call independently of when (or on
     which thread) it is attempted *)
  Int64.to_int (Int64.shift_right_logical (absorb_string 0L params) 2)

let uniform ~seed ~service ~key ~retry ~salt =
  let k =
    absorb (absorb (absorb (absorb_string (absorb 0L seed) service) key) retry) salt
  in
  (* 53 high bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical k 11) *. (1.0 /. 9007199254740992.0)

let plan ~seed ~service ~key ~retry schedule =
  let rec first salt = function
    | [] -> Healthy
    | Fail_transient :: _ -> Dropped
    | Timeout hang :: _ -> Unresponsive hang
    | Slow extra :: _ -> Delayed extra
    | Flaky p :: rest ->
      if uniform ~seed ~service ~key ~retry ~salt < p then Dropped
      else first (salt + 1) rest
  in
  first 0 schedule

let validate schedule =
  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go = function
    | [] -> Ok ()
    | Fail_transient :: rest -> go rest
    | Timeout t :: _ when t < 0.0 -> bad "Timeout duration %g is negative" t
    | Slow t :: _ when t < 0.0 -> bad "Slow duration %g is negative" t
    | Flaky p :: _ when p < 0.0 || p > 1.0 || Float.is_nan p ->
      bad "Flaky probability %g outside [0, 1]" p
    | (Timeout _ | Slow _ | Flaky _) :: rest -> go rest
  in
  go schedule
