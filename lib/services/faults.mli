(** Deterministic fault injection for simulated services.

    The paper's services are remote SOAP endpoints; real ones time out,
    drop connections and answer slowly. This module gives each service a
    seeded {e fault schedule}: a list of fault kinds evaluated for every
    invocation attempt, with all randomness drawn from a splittable
    counter-based PRNG keyed by
    [(seed, service, invocation_key, retry_index)] — the invocation key
    is a digest of the call's serialized parameters ({!invocation_key}).

    {b Determinism under concurrency.} Because the key is a property of
    the {e logical call} (what is being invoked, and which wire attempt
    of it), not of a shared mutable cursor, the fate of every attempt is
    independent of scheduling: the same seed reproduces the same fault
    set whether the evaluator invokes sequentially or through a worker
    pool at any [--jobs] level, and regardless of thread interleaving.
    Every degradation experiment is exactly reproducible — the same
    property the cost model already has for latency. (The flip side:
    two calls to the same service with {e identical} parameters draw
    identically at equal retry indices; distinct calls in real
    workloads have distinct parameters.)

    Schedules are consumed by {!Registry.invoke}'s retry loop; evaluators
    never see this module directly. *)

type fault =
  | Fail_transient
      (** every attempt fails fast (connection refused); only a retry
          budget larger than the schedule can't mask it — used to model
          a service that is down *)
  | Timeout of float
      (** the provider never answers; the caller waits the given number
          of simulated seconds (or its per-attempt budget, whichever is
          smaller) and gives up *)
  | Slow of float
      (** the provider answers after that many extra simulated seconds;
          the attempt still fails if the total duration exceeds the
          retry policy's per-attempt budget *)
  | Flaky of float
      (** each attempt independently fails fast with this probability,
          drawn from the schedule PRNG — the transient faults retries
          are for. Must lie in [\[0, 1\]]. *)

type schedule = fault list
(** Evaluated in order; the first fault that triggers on an attempt
    decides its outcome. The empty schedule is a healthy service. *)

type outcome =
  | Healthy  (** the attempt succeeds at its normal cost *)
  | Delayed of float  (** succeeds, with extra simulated seconds *)
  | Dropped  (** fails fast, retriable *)
  | Unresponsive of float  (** no answer within that many seconds *)

val invocation_key : string -> int
(** A non-negative digest of a call's serialized parameters — the PRNG
    key component identifying the logical call. {!Registry.invoke}
    passes the serialized parameter forest; tests predicting schedules
    must do the same. *)

val plan :
  seed:int -> service:string -> key:int -> retry:int -> schedule -> outcome
(** The outcome of one invocation attempt. [key] is the call's
    {!invocation_key}; [retry] is the 0-based wire-attempt index within
    the invocation (0 = first attempt), so retried attempts get fresh
    draws — without that, a [Flaky] failure would repeat forever and
    retrying could never help. Pure: same key, same outcome, on any
    thread, in any order. *)

val uniform :
  seed:int -> service:string -> key:int -> retry:int -> salt:int -> float
(** The underlying splittable generator: a uniform draw in [\[0, 1)]
    from the mixed key. Exposed so tests can predict schedules. *)

val validate : schedule -> (unit, string) result
(** Rejects probabilities outside [\[0, 1\]] and negative durations. *)
