(** Deterministic fault injection for simulated services.

    The paper's services are remote SOAP endpoints; real ones time out,
    drop connections and answer slowly. This module gives each service a
    seeded {e fault schedule}: a list of fault kinds evaluated for every
    invocation attempt, with all randomness drawn from a splittable
    counter-based PRNG keyed by [(seed, service, attempt_index)]. Same
    seed and same attempt sequence ⇒ the same faults, so every
    degradation experiment is exactly reproducible — the same property
    the cost model already has for latency.

    Schedules are consumed by {!Registry.invoke}'s retry loop; evaluators
    never see this module directly. *)

type fault =
  | Fail_transient
      (** every attempt fails fast (connection refused); only a retry
          budget larger than the schedule can't mask it — used to model
          a service that is down *)
  | Timeout of float
      (** the provider never answers; the caller waits the given number
          of simulated seconds (or its per-attempt budget, whichever is
          smaller) and gives up *)
  | Slow of float
      (** the provider answers after that many extra simulated seconds;
          the attempt still fails if the total duration exceeds the
          retry policy's per-attempt budget *)
  | Flaky of float
      (** each attempt independently fails fast with this probability,
          drawn from the schedule PRNG — the transient faults retries
          are for. Must lie in [\[0, 1\]]. *)

type schedule = fault list
(** Evaluated in order; the first fault that triggers on an attempt
    decides its outcome. The empty schedule is a healthy service. *)

type outcome =
  | Healthy  (** the attempt succeeds at its normal cost *)
  | Delayed of float  (** succeeds, with extra simulated seconds *)
  | Dropped  (** fails fast, retriable *)
  | Unresponsive of float  (** no answer within that many seconds *)

val plan : seed:int -> service:string -> attempt:int -> schedule -> outcome
(** The outcome of one invocation attempt. [attempt] is the service's
    global attempt counter (retries included), so retried attempts get
    fresh draws — without that, a [Flaky] failure would repeat forever
    and retrying could never help. Pure: same key, same outcome. *)

val uniform : seed:int -> service:string -> attempt:int -> salt:int -> float
(** The underlying splittable generator: a uniform draw in [\[0, 1)]
    from the mixed key. Exposed so tests can predict schedules. *)

val validate : schedule -> (unit, string) result
(** Rejects probabilities outside [\[0, 1\]] and negative durations. *)
