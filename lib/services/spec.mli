(** Declarative, table-driven service definitions.

    The workload generators define services as OCaml closures; for
    stand-alone use (the [axml eval] command), services can instead be
    described in an XML file and registered from it:

    {v
    <services>
      <service name="forecast" latency="0.05" per-byte="1e-6">
        <case key="Paris"><sky>sunny</sky></case>
        <case key="London"><sky>rain</sky></case>
        <default><sky>unknown</sky></default>
      </service>
      <service name="news" memoize="true" push="false">
        <default><headline>nothing happened</headline></default>
      </service>
    </services>
    v}

    A call's parameters select the first [<case>] whose [key] equals the
    first text found in the parameter forest; otherwise the [<default>]
    applies (or an empty result). Case bodies are AXML forests — they may
    contain further [<axml:call>] elements. Attributes [latency],
    [per-byte], [memoize] and [push] are optional.

    Services may also declare their failure model inline:

    {v
    <service name="forecast" flaky="0.2" retries="3" timeout="0.5">...
    v}

    [flaky] (probability of a transient failure per attempt), [slow]
    (extra seconds per response) and [fail] (permanently down) build the
    service's {!Faults.schedule}; [retries], [timeout] (per-attempt
    budget, seconds) and [backoff] (base backoff, seconds) override the
    corresponding fields of {!Registry.default_policy}. Malformed values
    — probabilities outside [0, 1], negative retries or backoff,
    non-positive timeouts, unparsable numbers — raise {!Error}. *)

exception Error of string

val load : Registry.t -> Axml_xml.Tree.t -> string list
(** Registers every service of the spec; returns their names in document
    order. Raises {!Error} on malformed specs. *)

val load_string : Registry.t -> string -> string list
val load_file : Registry.t -> string -> string list
