module Tree = Axml_xml.Tree

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let first_text params =
  let rec find = function
    | [] -> None
    | Tree.Text s :: _ -> Some s
    | Tree.Element el :: rest -> (
      match find el.Tree.children with Some s -> Some s | None -> find rest)
  in
  find params

let bool_attr name default t =
  match Tree.attr name t with
  | None -> default
  | Some "true" -> true
  | Some "false" -> false
  | Some other -> fail "attribute %s: expected true or false, got %S" name other

let float_attr name default t =
  match Tree.attr name t with
  | None -> default
  | Some s -> ( try float_of_string s with Failure _ -> fail "attribute %s: bad number %S" name s)

let int_attr name default t =
  match Tree.attr name t with
  | None -> default
  | Some s -> ( try int_of_string s with Failure _ -> fail "attribute %s: bad integer %S" name s)

(* Fault-injection attributes: flaky="p" slow="s" fail="true" give the
   service a fault schedule; retries / timeout / backoff tune its retry
   policy (see Registry.retry_policy). *)
let parse_faults name t =
  let faults =
    List.concat
      [
        (match Tree.attr "flaky" t with
        | None -> []
        | Some _ -> [ Faults.Flaky (float_attr "flaky" 0.0 t) ]);
        (match Tree.attr "slow" t with
        | None -> []
        | Some _ -> [ Faults.Slow (float_attr "slow" 0.0 t) ]);
        (if bool_attr "fail" false t then [ Faults.Fail_transient ] else []);
      ]
  in
  (match Faults.validate faults with
  | Ok () -> ()
  | Error m -> fail "service %s: %s" name m);
  faults

let parse_retry name t =
  let d = Registry.default_policy in
  let retries = int_attr "retries" d.Registry.max_retries t in
  if retries < 0 then fail "service %s: attribute retries: %d is negative" name retries;
  let attempt_timeout = float_attr "timeout" d.Registry.attempt_timeout t in
  if attempt_timeout <= 0.0 then
    fail "service %s: attribute timeout: %g is not positive" name attempt_timeout;
  let base_backoff = float_attr "backoff" d.Registry.base_backoff t in
  if base_backoff < 0.0 then
    fail "service %s: attribute backoff: %g is negative" name base_backoff;
  { d with Registry.max_retries = retries; attempt_timeout; base_backoff }

let parse_service t =
  let name =
    match Tree.attr "name" t with
    | Some n -> n
    | None -> fail "<service> without a name attribute"
  in
  let cases = ref [] in
  let default = ref [] in
  List.iter
    (fun child ->
      match Tree.name child with
      | Some "case" -> (
        match Tree.attr "key" child with
        | Some key -> cases := (key, Tree.children child) :: !cases
        | None -> fail "service %s: <case> without a key attribute" name)
      | Some "default" -> default := Tree.children child
      | Some other -> fail "service %s: unexpected <%s>" name other
      | None -> fail "service %s: unexpected text content" name)
    (Tree.children t);
  let cases = List.rev !cases in
  let default = !default in
  let behavior params =
    match first_text params with
    | Some key -> ( match List.assoc_opt key cases with Some result -> result | None -> default)
    | None -> default
  in
  let cost =
    {
      Registry.latency = float_attr "latency" Registry.default_cost.Registry.latency t;
      per_byte = float_attr "per-byte" Registry.default_cost.Registry.per_byte t;
    }
  in
  ( name,
    cost,
    bool_attr "push" true t,
    bool_attr "memoize" false t,
    parse_faults name t,
    parse_retry name t,
    behavior )

let load registry t =
  (match Tree.name t with
  | Some "services" -> ()
  | _ -> fail "expected a <services> root element");
  List.map
    (fun child ->
      match Tree.name child with
      | Some "service" ->
        let name, cost, push_capable, memoize, faults, retry, behavior = parse_service child in
        Registry.register registry ~name ~cost ~push_capable ~memoize ~faults ~retry behavior;
        name
      | Some other -> fail "unexpected <%s> under <services>" other
      | None -> fail "unexpected text under <services>")
    (Tree.children t)

let load_string registry src = load registry (Axml_xml.Parse.tree src)
let load_file registry path = load registry (Axml_xml.Parse.tree_of_file path)
