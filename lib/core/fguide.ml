(** Function-call guides (§6.2).

    A dataguide-style trie summarizing only the label paths of a document
    that lead to (query-visible) function calls, each trie node keeping
    the extent: pointers to the call nodes sitting at that path. Linear
    path queries yield the same result on the F-guide as on the document,
    so relevance detection can first collect candidates here and then
    filter them with the anchored NFQ check.

    Built in one document-order traversal; maintained incrementally when
    calls are invoked and their results spliced in. *)

module P = Axml_query.Pattern
module Doc = Axml_doc

type trie = {
  mutable children : (string * trie) list;  (* label -> subtrie *)
  mutable extent : Doc.node list;  (* calls whose parent path ends here *)
}

type t = {
  root : trie;
  (* call node id -> the trie node holding it, for O(1) removal *)
  location : (int, trie) Hashtbl.t;
  mutable calls : int;
  (* which document state the guide reflects: {!memoized} reuses the
     guide while these match, {!sync} re-tags it after incremental
     maintenance brought it up to date with a newer generation *)
  mutable doc_uid : int;
  mutable doc_generation : int;
}

let make_trie () = { children = []; extent = [] }

let child_trie trie label =
  match List.assoc_opt label trie.children with
  | Some c -> c
  | None ->
    let c = make_trie () in
    trie.children <- trie.children @ [ (label, c) ];
    c

let insert_call t path call =
  let trie = List.fold_left child_trie t.root path in
  trie.extent <- call :: trie.extent;
  Hashtbl.replace t.location call.Doc.id trie;
  t.calls <- t.calls + 1

(* Visible calls below [n] (inclusive), with their paths relative to
   [prefix]; does not descend into call parameters. *)
let rec index_from t prefix (n : Doc.node) =
  match n.Doc.label with
  | Doc.Call _ -> insert_call t (List.rev prefix) n
  | Doc.Data _ -> ()
  | Doc.Elem label -> List.iter (index_from t (label :: prefix)) n.Doc.children

let empty () =
  {
    root = make_trie ();
    location = Hashtbl.create 64;
    calls = 0;
    doc_uid = -1;
    doc_generation = -1;
  }

(* Same traversal as [index_from], over the immutable snapshot view:
   identical visit order, so extents come out in the same order and the
   candidate lists (hence invocation order downstream) are unchanged. *)
let of_view v =
  let module View = Doc.View in
  let t = empty () in
  let rec go prefix i =
    match View.label v i with
    | Doc.Call _ -> insert_call t (List.rev prefix) (View.node v i)
    | Doc.Data _ -> ()
    | Doc.Elem label -> List.iter (go (label :: prefix)) (View.children v i)
  in
  go [] (View.root v);
  t.doc_uid <- View.doc_uid v;
  t.doc_generation <- View.generation v;
  t

let build d =
  let v = Doc.View.snapshot d in
  let t = of_view v in
  t.doc_uid <- Doc.uid d;
  t.doc_generation <- Doc.generation d;
  t

let sync t d = t.doc_generation <- Doc.generation d

(* ------------------------------------------------------------------ *)
(* Generation-keyed memoization: two queries over an unchanged document
   share one build. A guide maintained through [update_after_replace]
   and re-tagged with [sync] stays reusable across evaluations. *)

let cache : (int, t) Hashtbl.t = Hashtbl.create 16
let cache_mu = Mutex.create ()
let cache_cap = 32

let memoized d =
  Mutex.lock cache_mu;
  let hit =
    match Hashtbl.find_opt cache (Doc.uid d) with
    | Some g when g.doc_generation = Doc.generation d -> Some g
    | _ -> None
  in
  match hit with
  | Some g ->
    Mutex.unlock cache_mu;
    (g, true)
  | None ->
    Mutex.unlock cache_mu;
    let g = build d in
    Mutex.lock cache_mu;
    if Hashtbl.length cache >= cache_cap && not (Hashtbl.mem cache (Doc.uid d)) then
      Hashtbl.reset cache;
    Hashtbl.replace cache (Doc.uid d) g;
    Mutex.unlock cache_mu;
    (g, false)

let call_count t = t.calls

let node_count t =
  let rec count trie =
    List.fold_left (fun acc (_, c) -> acc + count c) 1 trie.children
  in
  count t.root

let remove_call t call =
  match Hashtbl.find_opt t.location call.Doc.id with
  | None -> ()
  | Some trie ->
    trie.extent <- List.filter (fun c -> c.Doc.id <> call.Doc.id) trie.extent;
    Hashtbl.remove t.location call.Doc.id;
    t.calls <- t.calls - 1

let add_subtree t (n : Doc.node) =
  index_from t (List.rev (Doc.label_path n)) n

let remove_subtree t (n : Doc.node) =
  let rec go (m : Doc.node) =
    match m.Doc.label with
    | Doc.Call _ -> remove_call t m
    | Doc.Data _ -> ()
    | Doc.Elem _ -> List.iter go m.Doc.children
  in
  go n

(* Maintenance after [Doc.replace_call]: the invoked call leaves the
   guide, the spliced-in nodes are indexed under their (new) paths. *)
let update_after_replace t ~invoked ~added =
  remove_call t invoked;
  List.iter (add_subtree t) added

(** All calls reachable by the linear steps (the last step carries the
    function label). Wildcard-ish labels (variables, values, [*]) match
    any trie edge, mirroring {!Pattern.linear_regex}. *)
let candidates t (steps : (P.axis * P.label) list) : Doc.node list =
  let label_matches label edge =
    match label with
    | P.Const s -> String.equal s edge
    | P.Var _ | P.Wildcard | P.Value _ -> true
    | P.Or | P.Fun _ -> false
  in
  let rec descendants_or_self trie =
    trie :: List.concat_map (fun (_, c) -> descendants_or_self c) trie.children
  in
  let matching_children trie label =
    List.filter_map
      (fun (edge, c) -> if label_matches label edge then Some c else None)
      trie.children
  in
  let step_down tries axis label =
    List.concat_map
      (fun trie ->
        match axis with
        | P.Child -> matching_children trie label
        | P.Descendant ->
          List.concat_map (fun sub -> matching_children sub label) (descendants_or_self trie))
      tries
  in
  let fun_matches filter (call : Doc.node) =
    match filter, call.Doc.label with
    | P.Fun P.Any_fun, Doc.Call _ -> true
    | P.Fun (P.Named fs), Doc.Call c -> List.mem c.Doc.fname fs
    | _ -> false
  in
  let rec walk tries = function
    | [] -> []
    | [ (axis, label) ] ->
      (* the function step: collect extents *)
      let holders =
        match axis with
        | P.Child -> tries
        | P.Descendant -> List.concat_map descendants_or_self tries
      in
      let seen = Hashtbl.create 16 in
      List.concat_map (fun trie -> trie.extent) holders
      |> List.filter (fun (c : Doc.node) ->
             fun_matches label c
             &&
             if Hashtbl.mem seen c.Doc.id then false
             else begin
               Hashtbl.replace seen c.Doc.id ();
               true
             end)
    | (axis, label) :: rest -> walk (step_down tries axis label) rest
  in
  walk [ t.root ] steps

(* §6.2: "since F-guides are trees, they can naturally be represented as
   XML documents, and therefore be serialized and queried just as the
   data they summarize". Extents are summarized by a count attribute. *)
let to_xml t =
  let module Tree = Axml_xml.Tree in
  let rec node label trie =
    let attrs =
      if trie.extent = [] then []
      else [ ("calls", string_of_int (List.length trie.extent)) ]
    in
    Tree.element ~attrs label (List.map (fun (l, c) -> node l c) trie.children)
  in
  node "fguide" t.root

let paths t =
  let rec collect prefix trie acc =
    let acc = if trie.extent <> [] then List.rev prefix :: acc else acc in
    List.fold_left (fun acc (label, c) -> collect (label :: prefix) c acc) acc trie.children
  in
  List.rev (collect [] t.root [])
