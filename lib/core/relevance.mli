(** Relevance queries: extended tree-pattern queries whose single result
    node is a function node, used to retrieve the calls of a document
    that are relevant for an original query (Defs. 2–4). Both LPQs
    ({!Lpq}, §3.1) and NFQs ({!Nfq}, §3.2) take this shape; they differ
    only in how much of the original query's filtering they keep. *)

type t = {
  query : Axml_query.Pattern.t;
      (** the extended query; its unique result node is [target] *)
  source : int;  (** pid of the node [v] of the original query *)
  target : int;  (** pid of the output function node in [query] *)
  target_axis : Axml_query.Pattern.axis;
      (** the axis of the output function step *)
  fun_sources : (int * int) list;
      (** function-node pid in [query] → pid of the original-query node
          it stands for (used by type-based refinement) *)
  lin : (Axml_query.Pattern.axis * Axml_query.Pattern.label) list;
      (** [q_v^lin]: the linear path root → v, with v excluded (§4.2) *)
}

val relevant_calls :
  ?relax_joins:bool -> ?par:Axml_query.Eval.par -> t -> Axml_doc.t -> Axml_doc.node list
(** The calls the query currently retrieves, by top-down evaluation —
    a pure pass over the document's snapshot view; with [par] the match
    fans out over top-level subtrees. *)

val relevant_calls_in :
  Axml_query.Eval.context -> t -> Axml_doc.t -> Axml_doc.node list
(** Same, sharing an evaluation context across the relevance queries of
    one detection sweep (the multi-query optimization of §4.1); the
    context rebinds itself when the document changed. *)

val relevant_calls_view :
  ?relax_joins:bool ->
  ?par:Axml_query.Eval.par ->
  t ->
  Axml_doc.View.t ->
  Axml_doc.node list
(** Same, over an explicit snapshot view. *)

val retrieves : ?relax_joins:bool -> t -> Axml_doc.t -> Axml_doc.node -> bool
(** Candidate-anchored check: does the query retrieve this specific
    call of the document? (used after F-guide filtering, §6.2). *)

val retrieves_view : ?relax_joins:bool -> t -> Axml_doc.View.t -> int -> bool
(** The same check at a view position — pure, safe to fan out over
    domains when filtering many candidates. *)

val lin_regex : t -> Axml_automata.Regex.t
(** The path language of [lin], over node labels. *)

val guide_steps : t -> (Axml_query.Pattern.axis * Axml_query.Pattern.label) list
(** [lin] extended with the function step — the linear query to run
    against an F-guide. *)

val rewrite_funs :
  t ->
  f:
    (fun_pid:int ->
    source:int ->
    [ `Keep | `Drop | `Relabel of Axml_query.Pattern.label ]) ->
  t option
(** Rewrites the tracked function nodes. Dropping empties OR branches,
    which collapse; dropping a hard (non-OR) condition or the output node
    kills the whole query ([None]). Implements both type-based refinement
    (§5) and after-layer simplification (§4.3). *)

val pp : Format.formatter -> t -> unit
