(** Node-focused queries (§3.2, Fig. 5).

    For each node [v] of the original query [q], the NFQ [q_v] retrieves
    the function calls found at [v]'s position such that all the other
    filtering conditions of [q] could be satisfied either by existing
    data or by a {e future} call result: every off-path node [u] of [q]
    is replaced by an OR between [u]'s (recursively transformed) subtree
    and a bare star function node; [v]'s subtree is erased and replaced
    by the output function node; OR nodes on the root→v path are omitted
    (Prop. 1's construction). *)

module P = Axml_query.Pattern

(* Wraps an off-path subtree: OR(transformed u, ()) at u's position.
   Records which original node each fresh function node stands for. *)
let rec or_wrap fun_sources (u : P.node) =
  let star = P.make (P.Fun P.Any_fun) [] in
  fun_sources := (star.P.pid, u.P.pid) :: !fun_sources;
  P.make ~axis:u.P.axis P.Or [ copy fun_sources u; star ]

and copy fun_sources (u : P.node) =
  P.make ~axis:u.P.axis u.P.label (List.map (or_wrap fun_sources) u.P.children)

let of_node (q : P.t) (v : P.node) : Relevance.t =
  let path = P.path_to q v in
  if List.exists (fun (n : P.node) -> n.P.label = P.Or) path then
    invalid_arg "Nfq.of_query: OR nodes in the source query are not supported";
  let fun_sources = ref [] in
  let target = ref (-1) in
  let rec build = function
    | [] -> assert false
    | [ (last : P.node) ] ->
      (* v itself: erased, replaced by the output function node. *)
      let out = P.make ~axis:last.P.axis ~result:true (P.Fun P.Any_fun) [] in
      target := out.P.pid;
      fun_sources := (out.P.pid, last.P.pid) :: !fun_sources;
      out
    | (u : P.node) :: (next :: _ as rest) ->
      let continuation = build rest in
      let others =
        List.filter_map
          (fun (c : P.node) ->
            if c.P.pid = next.P.pid then None else Some (or_wrap fun_sources c))
          u.P.children
      in
      P.make ~axis:u.P.axis u.P.label (others @ [ continuation ])
  in
  let root = build path in
  {
    Relevance.query = P.query root;
    source = v.P.pid;
    target = !target;
    target_axis = v.P.axis;
    fun_sources = !fun_sources;
    lin = P.linear_part q v;
  }

let of_query (q : P.t) : Relevance.t list = List.map (of_node q) (P.nodes q)

(** The optimistic version of a query subtree, used as the pattern pushed
    with a call (§7): every node below the root is OR-ed with a bare
    function node, and the root itself may be a pending call, so that
    provider-side witness pruning keeps the parts of the result that
    might {e later} satisfy the subtree — results are AXML too, and a
    condition can be met by a nested call's future output. *)
let optimistic (v : P.node) : P.node =
  let sources = ref [] in
  let star = P.make (P.Fun P.Any_fun) [] in
  P.make ~axis:v.P.axis P.Or [ copy sources v; star ]

(* A call's result roots stand at the call's own position, and one call
   can be relevant to several query nodes at once (a fetch under
   [item[key="magic"]] may produce the missing [key] or the missing
   [payload]). Pruning with the sub-query of just one of those nodes
   discards what the others needed — the answers silently shrink while
   the run still reports complete. The sound pushed pattern is the
   disjunction of the optimistic subtrees of {e every} query node whose
   NFQ retrieves the call, plus the bare function node for nested
   calls. *)
let optimistic_union (vs : P.node list) : P.node =
  let sources = ref [] in
  let star = P.make (P.Fun P.Any_fun) [] in
  P.make P.Or (List.map (copy sources) vs @ [ star ])
