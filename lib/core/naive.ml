(** Deprecated alias: the naive baseline (§1) now lives in
    {!Axml_engine.Engine} as a degenerate strategy of the unified
    evaluation runtime ({!Axml_engine.Engine.naive_run}). This module
    only re-exports it so existing callers keep compiling; new code
    should use the engine directly. *)

module Engine = Axml_engine.Engine

type report = Engine.report = {
  answers : Axml_query.Eval.binding list;
  invoked : int;
  pushed : int;
  rounds : int;
  passes : int;
  relevance_evals : int;
  candidates_checked : int;
  layer_count : int;
  simulated_seconds : float;
  analysis_seconds : float;
  bytes_transferred : int;
  retries : int;
  timeouts : int;
  failed_calls : int;
  backoff_seconds : float;
  full_nodes : int;  (** nodes handed to the projector; 0 without one *)
  projected_nodes : int;  (** nodes surviving projection; 0 without one *)
  projected_bytes_saved : int;  (** serialized bytes of dropped subtrees *)
  sharded_calls : int;  (** calls placed on a named shard; 0 unsharded *)
  rebalanced_calls : int;  (** calls the balancer moved off shard 0 *)
  rerouted_calls : int;  (** failed-replica calls salvaged elsewhere *)
  view_rebuild_nodes : int;  (** snapshot-view nodes re-indexed by splices *)
  parallel_match_batches : int;  (** always 0: naive matches sequentially *)
  complete : bool;
}

type stats = Engine.report
[@@deprecated "subsumed by Axml_engine.Engine.report (one report for every strategy)"]

let call_params = Engine.call_params
let call_name_exn = Engine.call_name_exn
let run = Engine.naive_run
