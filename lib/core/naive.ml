(** The naive baseline (§1): invoke every call in the document
    recursively until a fixpoint (or a budget) is reached, then evaluate
    the query over the fully materialized document. *)

module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Doc = Axml_doc
module Registry = Axml_services.Registry
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Exec = Axml_exec.Exec

type stats = {
  invoked : int;
  rounds : int;
  simulated_seconds : float;
  bytes_transferred : int;
  retries : int;
  timeouts : int;
  failed_calls : int;
  backoff_seconds : float;
  complete : bool;
}

type report = {
  answers : Eval.binding list;
  invoked : int;
  rounds : int;  (** fixpoint iterations *)
  simulated_seconds : float;
  bytes_transferred : int;
  retries : int;
  timeouts : int;
  failed_calls : int;
  backoff_seconds : float;
  complete : bool;  (** fixpoint reached within budget, no failed calls *)
}

let call_params (call : Doc.node) = List.map Doc.node_to_xml call.Doc.children

let call_name_exn (call : Doc.node) =
  match call.Doc.label with
  | Doc.Call { fname; _ } -> fname
  | Doc.Elem _ | Doc.Data _ -> invalid_arg "not a function node"

(** Materializes the document in place. With [parallel:true] each round of
    visible calls is accounted as one parallel batch (max cost); otherwise
    invocations are sequential (summed costs). A call whose retry budget
    is exhausted ({!Registry.Service_failure}) is left in place as an
    unexpanded function node and never re-attempted. *)
let materialize ?(max_calls = 100_000) ?(parallel = true) ?pool ?(obs = Obs.null) registry
    (d : Doc.t) : stats =
  let m = obs.Obs.metrics in
  let tr = obs.Obs.trace in
  let invoked = ref 0 in
  let rounds = ref 0 in
  let seconds = ref 0.0 in
  let bytes = ref 0 in
  let retries = ref 0 in
  let timeouts = ref 0 in
  let backoff = ref 0.0 in
  let budget_hit = ref false in
  let failed = Hashtbl.create 8 in
  let continue = ref true in
  while !continue do
    let calls =
      List.filter
        (fun (c : Doc.node) -> not (Hashtbl.mem failed c.Doc.id))
        (Doc.visible_function_nodes d)
    in
    if calls = [] then continue := false
    else begin
      incr rounds;
      Metrics.incr m "eval.rounds";
      let span =
        if Trace.enabled tr then
          Trace.open_span tr
            ~attrs:[ ("calls", Trace.Int (List.length calls)); ("parallel", Trace.Bool parallel) ]
            "eval.round"
        else Trace.none
      in
      let round_cost = ref 0.0 in
      let account (inv : Registry.invocation) =
        bytes := !bytes + inv.Registry.request_bytes + inv.Registry.response_bytes;
        retries := !retries + inv.Registry.retries;
        timeouts := !timeouts + inv.Registry.timeouts;
        backoff := !backoff +. inv.Registry.backoff_seconds;
        Metrics.incr m ~by:(inv.Registry.request_bytes + inv.Registry.response_bytes) "eval.bytes";
        Metrics.incr m ~by:inv.Registry.retries "eval.retries";
        Metrics.incr m ~by:inv.Registry.timeouts "eval.timeouts";
        Metrics.add m "eval.backoff_seconds" inv.Registry.backoff_seconds;
        if parallel then round_cost := Float.max !round_cost inv.Registry.cost
        else round_cost := !round_cost +. inv.Registry.cost
      in
      (* request (thread-safe) and apply (doc mutation + counters,
         sequential) halves, mirroring the lazy evaluator's split *)
      let request ~obs (call : Doc.node) =
        match
          Registry.invoke registry ~name:(call_name_exn call) ~params:(call_params call)
            ~obs ()
        with
        | result, inv -> Ok (result, inv)
        | exception Registry.Service_failure inv -> Error inv
      in
      let apply (call : Doc.node) = function
        | Ok (result, inv) ->
          ignore (Doc.replace_call d call result);
          incr invoked;
          Metrics.incr m "eval.invoked";
          account inv
        | Error inv ->
          Hashtbl.replace failed call.Doc.id ();
          Metrics.incr m "eval.failed_calls";
          account inv
      in
      let pooled =
        match pool with
        | Some p ->
          parallel && Exec.jobs p > 1
          && List.length calls > 1
          && !invoked + List.length calls <= max_calls
        | None -> false
      in
      if pooled then begin
        let p = Option.get pool in
        let outcomes =
          Exec.map_batch p
            (fun call ->
              let obs = Obs.fork obs in
              (obs, request ~obs call))
            calls
        in
        List.iter2
          (fun call (o, outcome) ->
            Obs.join obs o;
            apply call outcome)
          calls outcomes
      end
      else
        List.iter
          (fun (call : Doc.node) ->
            if !invoked >= max_calls then budget_hit := true
            else apply call (request ~obs call))
          calls;
      if Trace.enabled tr then
        Trace.close_span tr ~attrs:[ ("batch_cost_s", Trace.Float !round_cost) ] span;
      seconds := !seconds +. !round_cost;
      if !budget_hit then continue := false
    end
  done;
  {
    invoked = !invoked;
    rounds = !rounds;
    simulated_seconds = !seconds;
    bytes_transferred = !bytes;
    retries = !retries;
    timeouts = !timeouts;
    failed_calls = Hashtbl.length failed;
    backoff_seconds = !backoff;
    complete = (not !budget_hit) && Hashtbl.length failed = 0;
  }

let run ?max_calls ?parallel ?pool ?(obs = Obs.null) registry (q : P.t) (d : Doc.t) : report =
  let tr = obs.Obs.trace in
  let root = if Trace.enabled tr then Trace.open_span tr "eval.naive" else Trace.none in
  let s = materialize ?max_calls ?parallel ?pool ~obs registry d in
  let answers = Eval.eval q d in
  if Obs.enabled obs then begin
    Metrics.set obs.Obs.metrics "eval.answers" (float_of_int (List.length answers));
    Metrics.set obs.Obs.metrics "eval.complete" (if s.complete then 1.0 else 0.0);
    Metrics.set obs.Obs.metrics "eval.simulated_seconds" s.simulated_seconds;
    Trace.close_span tr
      ~attrs:
        [
          ("invoked", Trace.Int s.invoked);
          ("rounds", Trace.Int s.rounds);
          ("bytes", Trace.Int s.bytes_transferred);
          ("simulated_s", Trace.Float s.simulated_seconds);
          ("complete", Trace.Bool s.complete);
        ]
      root
  end;
  {
    answers;
    invoked = s.invoked;
    rounds = s.rounds;
    simulated_seconds = s.simulated_seconds;
    bytes_transferred = s.bytes_transferred;
    retries = s.retries;
    timeouts = s.timeouts;
    failed_calls = s.failed_calls;
    backoff_seconds = s.backoff_seconds;
    complete = s.complete;
  }

let report_to_json (r : report) : Axml_obs.Json.t =
  let module J = Axml_obs.Json in
  J.Obj
    [
      ( "answers",
        J.List
          (List.map
             (fun (b : Eval.binding) ->
               J.Obj
                 [
                   ("vars", J.Obj (List.map (fun (x, v) -> (x, J.String v)) b.Eval.vars));
                   ( "results",
                     J.List
                       (List.map
                          (fun (_, n) ->
                            J.String (Axml_xml.Print.to_string (Doc.node_to_xml n)))
                          b.Eval.results) );
                 ])
             r.answers) );
      ("invoked", J.Int r.invoked);
      ("rounds", J.Int r.rounds);
      ("simulated_seconds", J.Float r.simulated_seconds);
      ("bytes_transferred", J.Int r.bytes_transferred);
      ("retries", J.Int r.retries);
      ("timeouts", J.Int r.timeouts);
      ("failed_calls", J.Int r.failed_calls);
      ("backoff_seconds", J.Float r.backoff_seconds);
      ("complete", J.Bool r.complete);
    ]
