(** Node-focused queries (§3.2, Fig. 5, Prop. 1).

    For each node [v] of the original query [q], the NFQ [q_v] retrieves
    the function calls found at [v]'s position such that every other
    filtering condition of [q] could be satisfied either by existing
    data or by a {e future} call result: each off-path node [u] is
    replaced by an OR between [u]'s transformed subtree and a bare star
    function node; [v]'s subtree is erased and replaced by the output
    function node; OR nodes on the root→v path are omitted.

    Assuming arbitrary output types, the calls retrieved by the NFQs of
    [q] are {e precisely} the calls relevant for [q] (Prop. 1); with
    signatures, {!Typing.refine} restricts them further. *)

val of_node : Axml_query.Pattern.t -> Axml_query.Pattern.node -> Relevance.t
(** [of_node q v] is [q_v]. Raises [Invalid_argument] if the root→v path
    crosses an OR node (source queries are OR-free). *)

val of_query : Axml_query.Pattern.t -> Relevance.t list
(** One NFQ per node of the query, in preorder. *)

val optimistic : Axml_query.Pattern.node -> Axml_query.Pattern.node
(** The optimistic version of a query subtree: every node is OR-ed with a
    bare function node (the root included). Pushed with calls (§7) so
    that provider-side witness pruning keeps result parts that a nested
    call could still complete. *)

val optimistic_union : Axml_query.Pattern.node list -> Axml_query.Pattern.node
(** The pushed pattern for a call relevant at several query positions:
    the disjunction of the optimistic subtrees of the given query nodes,
    plus a bare function node. One call can be relevant to several query
    nodes at once, and provider-side pruning with the sub-query of just
    one of them loses answers the others needed; {!Lazy_eval} pushes the
    union over every query node whose NFQ retrieves the call. *)
