(** The lazy query evaluator: the NFQA algorithm of §4.1 with every
    refinement of the paper available as a strategy switch —

    - relevance detection by NFQs (exact, §3.2) or LPQs (relaxed, §3.1 /
      §6.1),
    - type-based pruning with exact or lenient satisfiability (§5, §6.1),
    - relaxed variable joins (§6.1),
    - F-guide candidate retrieval with anchored filtering (§6.2),
    - NFQ layering by the may-influence relation (§4.3),
    - parallel invocation under the independence condition ★ (§4.4),
    - after-layer simplification of remaining NFQs (§4.3),
    - query pushing (§7).

    The evaluator mutates the document in place (invoked calls are
    replaced by their results) and returns the exact snapshot result of
    the original query on the final document, together with the
    measurements the benchmarks report. *)

module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Exec = Axml_exec.Exec

let log_src = Logs.Src.create "axml.lazy" ~doc:"NFQA lazy evaluation trace"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Doc = Axml_doc
module Schema = Axml_schema.Schema
module Sat = Axml_schema.Sat
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Engine = Axml_engine.Engine

type relevance_mode =
  | Nfq_relevance  (** node-focused queries: exact relevant-call detection *)
  | Lpq_relevance  (** linear path queries: cheaper, superset *)

type typing_mode =
  | No_types
  | Lenient_types  (** graph-schema satisfiability (§6.1) *)
  | Exact_types  (** single-word satisfiability (§5) *)

type strategy = {
  relevance : relevance_mode;
  typing : typing_mode;
  relax_joins : bool;  (** ignore variable joins during detection (§6.1) *)
  use_fguide : bool;  (** candidates from the F-guide, then anchored checks (§6.2) *)
  layering : bool;  (** process NFQs layer by layer (§4.3) *)
  parallel : bool;  (** batch-invoke for independent NFQs (§4.4) *)
  speculative : bool;
      (** batch-invoke even without independence — §4.4's "calling
          functions in parallel just in case": fewer rounds, possibly
          some unnecessary calls *)
  simplify_after_layer : bool;
      (** drop the OR/() branches of finished layers from the remaining
          NFQs (§4.3) *)
  push : bool;  (** ship [sub_q_v] with the calls (§7) *)
  containment_dedup : bool;
      (** drop relevance queries contained in another one (§4.1's
          redundant-query elimination); only applied without typing, where
          it is provably answer-preserving *)
  share_contexts : bool;
      (** share one evaluation context across the NFQs of a detection
          sweep (multi-query optimization, §4.1) *)
  materialize_results : bool;
      (** invoke the calls remaining below answer images, so answers ship
          fully extensional instead of "possibly intensionally" (§2) *)
  match_jobs : int;
      (** fan the match/detect passes out over top-level document
          subtrees on this many domains (0 = auto, 1 = sequential);
          answers are byte-identical at every level *)
  max_calls : int;
  max_passes : int;
}

let default =
  {
    relevance = Nfq_relevance;
    typing = No_types;
    relax_joins = false;
    use_fguide = false;
    layering = true;
    parallel = true;
    speculative = false;
    simplify_after_layer = false;
    push = false;
    containment_dedup = false;
    share_contexts = true;
    materialize_results = false;
    match_jobs = 1;
    max_calls = 100_000;
    max_passes = 1_000_000;
  }

(** The naive strategy is in {!Naive}; these are the named configurations
    the benchmarks compare. *)
let nfqa = default

let nfqa_typed = { default with typing = Exact_types }
let nfqa_lenient = { default with typing = Lenient_types; relax_joins = true }
let lpq_only = { default with relevance = Lpq_relevance }
let with_fguide s = { s with use_fguide = true }
let with_push s = { s with push = true }
let with_budget b s = { s with max_calls = min b s.max_calls }
let with_match_jobs n s = { s with match_jobs = n }

type report = Engine.report = {
  answers : Eval.binding list;
  invoked : int;
  pushed : int;
  rounds : int;  (** invocation rounds (batches or single calls) *)
  passes : int;  (** full evaluation sweeps over a layer *)
  relevance_evals : int;  (** NFQ/LPQ evaluations performed *)
  candidates_checked : int;  (** F-guide candidates filtered *)
  layer_count : int;
  simulated_seconds : float;  (** service latency + transfer, aggregated *)
  analysis_seconds : float;  (** CPU time spent detecting relevant calls *)
  bytes_transferred : int;
  retries : int;  (** retried service attempts, summed over invocations *)
  timeouts : int;  (** attempts classified as timeouts *)
  failed_calls : int;  (** relevant calls left unexpanded after retry exhaustion *)
  backoff_seconds : float;  (** simulated seconds spent backing off *)
  full_nodes : int;  (** nodes handed to the projector; 0 without one *)
  projected_nodes : int;  (** nodes surviving projection; 0 without one *)
  projected_bytes_saved : int;  (** serialized bytes of dropped subtrees *)
  sharded_calls : int;  (** calls placed on a named shard; 0 unsharded *)
  rebalanced_calls : int;  (** calls the balancer moved off shard 0 *)
  rerouted_calls : int;  (** failed-replica calls salvaged elsewhere *)
  view_rebuild_nodes : int;
      (** nodes (re)indexed into snapshot views during the run — splice
          patches, plus full rebuilds if any non-splice mutation hit *)
  parallel_match_batches : int;
      (** intra-document parallel match dispatches; 0 when sequential *)
  complete : bool;  (** the document is complete for the query (Def. 3) *)
}

(* Invocation (registry exchange, splicing, pooling, fault accounting,
   the simulated clock and all eval.* emission) is delegated to the
   engine; this state holds only what the NFQA analysis itself needs. *)
type state = {
  strategy : strategy;
  doc : Doc.t;
  obs : Obs.t;
  eng : Engine.t;  (* the unified invocation driver *)
  push_rqs : (Relevance.t * P.node) list;
      (* NFQ of each query node, paired with the node, for pushing *)
  typing : Typing.t option;
  fguide : Fguide.t option;
  mutable known_functions : string list;
  known_set : (string, unit) Hashtbl.t;
  mutable refinement_dirty : bool;
  refined : (int, Relevance.t option) Hashtbl.t;  (* source pid -> refined rq *)
  mutable finished_sources : int list;  (* sources of finished layers *)
  (* evaluation context shared across detections, reset on doc change *)
  mutable shared_ctx : Eval.context option;
  (* intra-document parallel matching: jobs level + batch accounting *)
  match_par : Eval.par option;
  (* analysis counters — the invocation counters live in the engine *)
  mutable passes : int;
  mutable relevance_evals : int;
  mutable candidates_checked : int;
  mutable analysis_seconds : float;
}

let add_known st name =
  if not (Hashtbl.mem st.known_set name) then begin
    Hashtbl.replace st.known_set name ();
    st.known_functions <- st.known_functions @ [ name ];
    st.refinement_dirty <- true
  end

let scan_new_functions st (nodes : Doc.node list) =
  List.iter
    (fun n ->
      Doc.iter_node
        (fun m -> match m.Doc.label with Doc.Call { fname; _ } -> add_known st fname | _ -> ())
        n)
    nodes

(* The effective relevance query used for evaluation: refined by types and
   pruned of finished layers' branches, cached until invalidated. *)
let effective st (rq : Relevance.t) : Relevance.t option =
  if st.refinement_dirty then begin
    Hashtbl.reset st.refined;
    st.refinement_dirty <- false
  end;
  match Hashtbl.find_opt st.refined rq.Relevance.source with
  | Some cached -> cached
  | None ->
    let refined =
      match st.typing with
      | None -> Some rq
      | Some ty -> Typing.refine ty ~known_functions:st.known_functions rq
    in
    let refined =
      if st.strategy.simplify_after_layer && st.finished_sources <> [] then
        Option.bind refined (fun rq' ->
            Relevance.rewrite_funs rq' ~f:(fun ~fun_pid ~source ->
                if fun_pid = rq'.Relevance.target then `Keep
                else if List.mem source st.finished_sources then `Drop
                else `Keep))
      else refined
    in
    Hashtbl.replace st.refined rq.Relevance.source refined;
    refined

let timed st f =
  let t0 = Sys.time () in
  let r = f () in
  st.analysis_seconds <- st.analysis_seconds +. (Sys.time () -. t0);
  r

(* Contiguous split into at most [jobs] chunks, order-preserving — the
   concatenated chunk results equal the sequential result exactly. *)
let chunk_list jobs xs =
  let n = List.length xs in
  let per = max 1 ((n + jobs - 1) / jobs) in
  let rec go cur k acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | x :: rest ->
      if k >= per then go [ x ] 1 (List.rev cur :: acc) rest
      else go (x :: cur) (k + 1) acc rest
  in
  match xs with [] -> [] | x :: rest -> go [ x ] 1 [] rest

(* The [eval.match] span around a (potentially) parallel match pass,
   closed with the number of parallel batches it dispatched. *)
let with_match_span st f =
  match st.match_par with
  | None -> f ()
  | Some par ->
    let tr = st.obs.Obs.trace in
    if not (Trace.enabled tr) then f ()
    else begin
      let b0 = Eval.par_batches par in
      let span =
        Trace.open_span tr
          ~attrs:[ ("jobs", Trace.Int (Eval.par_jobs par)) ]
          "eval.match"
      in
      let r = f () in
      Trace.close_span tr
        ~attrs:[ ("batches", Trace.Int (Eval.par_batches par - b0)) ]
        span;
      r
    end

(* Relevant calls the query currently retrieves — minus the permanently
   failed ones, which would otherwise be retrieved forever. *)
let detect st (rq : Relevance.t) : Doc.node list =
  timed st (fun () ->
      let tr = st.obs.Obs.trace in
      let span =
        if Trace.enabled tr then
          Trace.open_span tr ~attrs:[ ("source", Trace.Int rq.Relevance.source) ] "eval.detect"
        else Trace.none
      in
      let t0 = if Obs.enabled st.obs then Sys.time () else 0.0 in
      st.relevance_evals <- st.relevance_evals + 1;
      Metrics.incr st.obs.Obs.metrics "eval.relevance_evals";
      let retrieved =
        match effective st rq with
        | None -> []
        | Some r -> (
          let relax_joins = st.strategy.relax_joins in
          match st.fguide with
          | None ->
            if st.strategy.share_contexts then begin
              let ctx =
                match st.shared_ctx with
                | Some ctx -> ctx
                | None ->
                  let ctx = Eval.context ~relax_joins ?par:st.match_par () in
                  st.shared_ctx <- Some ctx;
                  ctx
              in
              with_match_span st (fun () -> Relevance.relevant_calls_in ctx r st.doc)
            end
            else
              with_match_span st (fun () ->
                  Relevance.relevant_calls ~relax_joins ?par:st.match_par r st.doc)
          | Some guide ->
            let candidates = Fguide.candidates guide (Relevance.guide_steps r) in
            st.candidates_checked <- st.candidates_checked + List.length candidates;
            Metrics.incr st.obs.Obs.metrics ~by:(List.length candidates)
              "eval.candidates_checked";
            (match st.strategy.relevance with
            | Lpq_relevance ->
              (* an LPQ is exactly its linear path: guide answers are final *)
              candidates
            | Nfq_relevance -> (
              (* anchored filtering; chunked over domains when parallel —
                 contiguous chunks, concatenated back in order, so the
                 kept list is identical to the sequential filter *)
              let sequential () =
                List.filter (fun c -> Relevance.retrieves ~relax_joins r st.doc c) candidates
              in
              match st.match_par with
              | Some par when Eval.par_jobs par > 1 && List.length candidates > 1 ->
                with_match_span st (fun () ->
                    let view = Doc.View.snapshot st.doc in
                    match chunk_list (Eval.par_jobs par) candidates with
                    | [] | [ _ ] -> sequential ()
                    | chunks ->
                      let work chunk =
                        List.filter
                          (fun (c : Doc.node) ->
                            match Doc.View.index_of view c with
                            | Some i -> Relevance.retrieves_view ~relax_joins r view i
                            | None -> false)
                          chunk
                      in
                      let kept =
                        Exec.map_domains ~jobs:(Eval.par_jobs par) work chunks
                      in
                      Eval.par_count par (List.length chunks);
                      List.concat kept)
              | _ -> sequential ())))
      in
      let result =
        if Engine.failed_calls st.eng = 0 then retrieved
        else
          List.filter
            (fun (c : Doc.node) -> not (Engine.permanently_failed st.eng c.Doc.id))
            retrieved
      in
      if Obs.enabled st.obs then begin
        Metrics.observe st.obs.Obs.metrics "eval.detect_seconds" (Sys.time () -. t0);
        Trace.close_span tr ~attrs:[ ("retrieved", Trace.Int (List.length result)) ] span
      end;
      result)

(* One call can be relevant to several query nodes (it may produce the
   data any of them is missing), and whichever relevance query retrieves
   it first is an accident of sweep order — so the pushed pattern must
   not depend on the retrieving query. Union the optimistic subtrees of
   every query node whose (unrefined) NFQ retrieves a call of the batch:
   retrieval is optimistic, so a position the results could only fill
   after more data arrives is already retrieving now. *)
let push_pattern st (calls : Doc.node list) =
  match st.push_rqs with
  | [] -> None
  | pairs ->
    let sources =
      List.filter_map
        (fun (rq, v) ->
          if List.exists (fun c -> Relevance.retrieves rq st.doc c) calls then Some v
          else None)
        pairs
    in
    Some (Nfq.optimistic_union sources)

let within_budget st =
  Engine.invoked st.eng < st.strategy.max_calls && st.passes < st.strategy.max_passes

(* Visible calls inside a subtree (reached through data nodes only). *)
let pending_calls_below (n : Doc.node) =
  let out = ref [] in
  let rec go (m : Doc.node) =
    match m.Doc.label with
    | Doc.Call _ -> out := m :: !out
    | Doc.Data _ -> ()
    | Doc.Elem _ -> List.iter go m.Doc.children
  in
  go n;
  List.rev !out

(* §2: calls below a result image do not contribute to any embedding, so
   they are never relevant; when the consumer wants fully extensional
   answers, invoke them until the answer subtrees are call-free. *)
let materialize_answers st (q : P.t) =
  let continue = ref true in
  while !continue && within_budget st do
    st.passes <- st.passes + 1;
    Metrics.incr st.obs.Obs.metrics "eval.passes";
    let answers =
      with_match_span st (fun () -> Eval.eval ?par:st.match_par q st.doc)
    in
    let seen = Hashtbl.create 16 in
    let pending =
      List.concat_map
        (fun (b : Eval.binding) ->
          List.concat_map (fun (_, n) -> pending_calls_below n) b.Eval.results)
        answers
      |> List.filter (fun (c : Doc.node) ->
             if Hashtbl.mem seen c.Doc.id || Engine.permanently_failed st.eng c.Doc.id then
               false
             else begin
               Hashtbl.replace seen c.Doc.id ();
               true
             end)
    in
    if pending = [] then continue := false
    else
      ignore
        (Engine.round st.eng ~accounting:Engine.Max
           ~attrs:
             [ ("calls", Trace.Int (List.length pending)); ("phase", Trace.Str "materialize") ]
           pending)
  done

(* NFQA over one layer: repeatedly sweep the layer's queries; on the first
   query that retrieves calls, invoke (all in parallel if independent,
   otherwise one) and sweep again. The layer is done when a full sweep
   retrieves nothing. *)
let process_layer st (layer : Relevance.t list) =
  let independent =
    List.map
      (fun rq -> (rq.Relevance.source, Influence.independent_in_layer rq layer))
      layer
  in
  let is_independent rq = List.assoc rq.Relevance.source independent in
  let tr = st.obs.Obs.trace in
  let continue = ref true in
  while !continue && within_budget st do
    st.passes <- st.passes + 1;
    Metrics.incr st.obs.Obs.metrics "eval.passes";
    continue := false;
    Trace.with_span tr "eval.pass" (fun () ->
        let rec sweep = function
          | [] -> ()
          | rq :: rest -> (
            match detect st rq with
            | [] -> sweep rest
            | calls ->
              Log.debug (fun m ->
                  m "NFQ(v=%d) retrieves %d call(s)" rq.Relevance.source (List.length calls));
              continue := true;
              let parallel =
                st.strategy.parallel && (st.strategy.speculative || is_independent rq)
              in
              (* a §4.4 batch when parallel (accounted at the slowest
                 call, pool-eligible); otherwise one call per round *)
              let batch = if parallel then calls else [ List.hd calls ] in
              ignore
                (Engine.round st.eng ~accounting:Engine.Max
                   ~attrs:
                     [
                       ("source", Trace.Int rq.Relevance.source);
                       ("calls", Trace.Int (List.length batch));
                       ("parallel", Trace.Bool parallel);
                     ]
                   ?push:(push_pattern st batch) batch))
        in
        sweep layer)
  done

let relevance_name = function Nfq_relevance -> "nfq" | Lpq_relevance -> "lpq"
let typing_name = function No_types -> "none" | Lenient_types -> "lenient" | Exact_types -> "exact"

let run ?(strategy = default) ?schema ?(obs = Obs.null) ?pool ?projector ?dispatch ~registry
    (q : P.t) (d : Doc.t) : report =
  let rqs =
    match strategy.relevance with
    | Nfq_relevance -> Nfq.of_query q
    | Lpq_relevance -> Lpq.of_query q
  in
  let rqs =
    (* Containment dedup is only sound for the union of *unrefined*
       results: a dropped query's calls are retrieved by its container.
       Type refinement is per-source, so with typing on we keep all. *)
    if strategy.containment_dedup && strategy.typing = No_types then begin
      let kept_queries =
        Axml_query.Containment.drop_contained
          (List.map (fun rq -> rq.Relevance.query) rqs)
      in
      let kept_roots =
        List.map (fun (kq : P.t) -> kq.P.root.P.pid) kept_queries
      in
      List.filter (fun rq -> List.mem rq.Relevance.query.P.root.P.pid kept_roots) rqs
    end
    else rqs
  in
  let typing =
    match strategy.typing, schema with
    | No_types, _ | _, None -> None
    | Lenient_types, Some s -> Some (Typing.create ~mode:Sat.Lenient s q)
    | Exact_types, Some s -> Some (Typing.create ~mode:Sat.Exact s q)
  in
  let eng =
    Engine.create ~max_calls:strategy.max_calls ?pool ~obs ?projector ?dispatch registry d
  in
  let match_jobs =
    if strategy.match_jobs = 0 then Exec.default_jobs () else max 1 strategy.match_jobs
  in
  let match_par = if match_jobs > 1 then Some (Eval.par ~jobs:match_jobs) else None in
  let fguide, fguide_reused =
    if strategy.use_fguide then begin
      let g, reused = Fguide.memoized d in
      (Some g, reused)
    end
    else (None, false)
  in
  if fguide_reused then Metrics.incr obs.Obs.metrics "fguide.reuse";
  let st =
    {
      strategy;
      doc = d;
      obs;
      eng;
      push_rqs =
        (if strategy.push then
           let nodes = P.nodes q in
           List.filter_map
             (fun (rq : Relevance.t) ->
               List.find_opt (fun (v : P.node) -> v.P.pid = rq.Relevance.source) nodes
               |> Option.map (fun v -> (rq, v)))
             (Nfq.of_query q)
         else []);
      typing;
      fguide;
      known_functions = [];
      known_set = Hashtbl.create 16;
      refinement_dirty = false;
      refined = Hashtbl.create 16;
      finished_sources = [];
      shared_ctx = None;
      match_par;
      passes = 0;
      relevance_evals = 0;
      candidates_checked = 0;
      analysis_seconds = 0.0;
    }
  in
  (* The sequential apply half calls back here after every splice:
     invalidate the shared evaluation context, keep the F-guide in sync
     and learn the function names the result brought in. *)
  Engine.on_replace eng (fun ~invoked ~added ->
      st.shared_ctx <- None;
      (match st.fguide with
      | None -> ()
      | Some guide ->
        Fguide.update_after_replace guide ~invoked ~added;
        (* the maintained guide reflects the spliced document: re-tag it
           so the next evaluation's [memoized] reuses it *)
        Fguide.sync guide st.doc);
      scan_new_functions st added);
  (match schema with
  | Some s -> List.iter (add_known st) (Schema.function_names s)
  | None -> ());
  List.iter
    (fun c -> match c.Doc.label with Doc.Call { fname; _ } -> add_known st fname | _ -> ())
    (Doc.function_nodes d);
  st.refinement_dirty <- true;
  let tr = obs.Obs.trace in
  let root =
    if Trace.enabled tr then
      Trace.open_span tr
        ~attrs:
          [
            ("relevance", Trace.Str (relevance_name strategy.relevance));
            ("typing", Trace.Str (typing_name strategy.typing));
            ("layering", Trace.Bool strategy.layering);
            ("parallel", Trace.Bool strategy.parallel);
            ("push", Trace.Bool strategy.push);
            ("fguide", Trace.Bool strategy.use_fguide);
            ("match_jobs", Trace.Int match_jobs);
            ("doc_nodes", Trace.Int (Doc.size d));
          ]
        "eval.run"
    else Trace.none
  in
  let layers =
    if strategy.layering then timed st (fun () -> Influence.layers rqs) else [ rqs ]
  in
  Log.info (fun m ->
      m "%d relevance queries in %d layer(s)" (List.length rqs) (List.length layers));
  List.iteri
    (fun i layer ->
      Trace.with_span tr
        ~attrs:
          (if Trace.enabled tr then
             [ ("layer", Trace.Int i); ("queries", Trace.Int (List.length layer)) ]
           else [])
        "eval.layer"
        (fun () -> process_layer st layer);
      if strategy.simplify_after_layer then begin
        st.finished_sources <-
          st.finished_sources @ List.map (fun rq -> rq.Relevance.source) layer;
        st.refinement_dirty <- true
      end)
    layers;
  if strategy.materialize_results then
    Trace.with_span tr "eval.materialize" (fun () -> materialize_answers st q);
  let budget_ok = within_budget st in
  let answers = with_match_span st (fun () -> Eval.eval ?par:st.match_par q st.doc) in
  (* the engine emits the final gauges, closes the root span and builds
     the one report; everything the analysis measured rides along *)
  Engine.finish eng ~root ~answers ~budget_ok ~passes:st.passes
    ~relevance_evals:st.relevance_evals ~candidates_checked:st.candidates_checked
    ~layer_count:(List.length layers) ~analysis_seconds:st.analysis_seconds
    ~parallel_match_batches:
      (match st.match_par with None -> 0 | Some par -> Eval.par_batches par)
