(** The lazy query evaluator: the NFQA algorithm of §4.1 with every
    refinement of the paper available as a strategy switch.

    The evaluator mutates the document in place (invoked calls are
    replaced by their results) and returns the exact snapshot result of
    the original query on the final document, together with the
    measurements the benchmarks report. *)

type relevance_mode =
  | Nfq_relevance  (** node-focused queries: exact relevant-call detection (§3.2) *)
  | Lpq_relevance  (** linear path queries: cheaper, superset (§3.1) *)

type typing_mode =
  | No_types
  | Lenient_types  (** graph-schema satisfiability (§6.1) *)
  | Exact_types  (** single-word satisfiability (§5) *)

type strategy = {
  relevance : relevance_mode;
  typing : typing_mode;
  relax_joins : bool;  (** ignore variable joins during detection (§6.1) *)
  use_fguide : bool;  (** candidates from the F-guide, then anchored checks (§6.2) *)
  layering : bool;  (** process NFQs layer by layer (§4.3) *)
  parallel : bool;  (** batch-invoke for independent NFQs (§4.4, condition ★) *)
  speculative : bool;
      (** batch-invoke even without independence — §4.4's "calling
          functions in parallel just in case": fewer rounds, possibly
          some unnecessary calls; answers are unaffected (extra calls are
          safe, Def. 4's leniency) *)
  simplify_after_layer : bool;
      (** drop the OR/() branches of finished layers from the remaining
          NFQs (§4.3) *)
  push : bool;  (** ship the optimistic [sub_q_v] with the calls (§7) *)
  containment_dedup : bool;
      (** drop relevance queries contained in another one (§4.1's
          redundant-query elimination); only applied without typing, where
          it is provably answer-preserving *)
  share_contexts : bool;
      (** share one evaluation context across the NFQs of a detection
          sweep (multi-query optimization, §4.1) *)
  materialize_results : bool;
      (** also invoke the calls remaining below answer images, so answers
          ship fully extensional instead of "possibly intensionally" (§2) *)
  match_jobs : int;
      (** fan the match/detect passes out over top-level document
          subtrees on this many domains (0 = auto-detect from the
          machine, 1 = sequential); the reassembly preserves document
          order before deduplication and joins, so answers and every
          report counter are byte-identical at every level *)
  max_calls : int;  (** invocation budget (rewritings may not terminate, §2) *)
  max_passes : int;
}

val default : strategy
(** NFQ relevance, no types, layering and ★-parallelism on, no guide, no
    push; budgets of 100k calls / 1M passes. *)

(** Named configurations compared by the benchmarks. *)

val nfqa : strategy
val nfqa_typed : strategy
val nfqa_lenient : strategy
val lpq_only : strategy
val with_fguide : strategy -> strategy
val with_push : strategy -> strategy

val with_budget : int -> strategy -> strategy
(** Tightens the strategy's invocation budget to [min b max_calls] —
    how a scheduler's summed shard budgets roll into the engine's
    global budget. *)

val with_match_jobs : int -> strategy -> strategy
(** Sets [match_jobs] — the [--match-jobs] CLI knob. *)

type report = Axml_engine.Engine.report = {
  answers : Axml_query.Eval.binding list;
  invoked : int;
  pushed : int;
  rounds : int;  (** invocation rounds (batches or single calls) *)
  passes : int;  (** full evaluation sweeps over a layer *)
  relevance_evals : int;  (** NFQ/LPQ evaluations performed *)
  candidates_checked : int;  (** F-guide candidates filtered *)
  layer_count : int;
  simulated_seconds : float;  (** service latency + transfer, aggregated *)
  analysis_seconds : float;  (** CPU time spent detecting relevant calls *)
  bytes_transferred : int;
  retries : int;  (** retried service attempts, summed over invocations *)
  timeouts : int;  (** attempts classified as timeouts *)
  failed_calls : int;
      (** relevant calls whose retry budget was exhausted; each stays in
          the document as an unexpanded function node *)
  backoff_seconds : float;  (** simulated seconds spent backing off *)
  full_nodes : int;  (** nodes handed to the projector; 0 without one *)
  projected_nodes : int;  (** nodes surviving projection; 0 without one *)
  projected_bytes_saved : int;
      (** serialized XML bytes of the subtrees projection dropped *)
  sharded_calls : int;
      (** successful calls placed on a named shard by a scheduler
          dispatch; 0 when dispatch goes straight to the registry *)
  rebalanced_calls : int;
      (** calls the replica balancer placed somewhere other than the
          first eligible shard *)
  rerouted_calls : int;
      (** failed-replica attempts salvaged by re-routing to another
          replica *)
  view_rebuild_nodes : int;
      (** snapshot-view nodes (re)indexed after the engine's initial
          build — the incremental splice patches keeping the pure view
          current *)
  parallel_match_batches : int;
      (** intra-document parallel match/detect dispatches
          ([match_jobs > 1]); 0 when matching ran sequentially *)
  complete : bool;
      (** the document is complete for the query (Def. 3): every relevant
          call was expanded within budget and none permanently failed.
          When [false] because of failures, the answers are still sound —
          a subset of the full snapshot result (Def. 4's leniency: missing
          data only loses bindings, never fabricates them). *)
}

val run :
  ?strategy:strategy ->
  ?schema:Axml_schema.Schema.t ->
  ?obs:Axml_obs.Obs.t ->
  ?pool:Axml_exec.Exec.pool ->
  ?projector:Axml_project.Project.t ->
  ?dispatch:Axml_engine.Engine.dispatch ->
  registry:Axml_services.Registry.t ->
  Axml_query.Pattern.t ->
  Axml_doc.t ->
  report
(** [run ~registry q d] finds a complete relevant rewriting of [d] for
    [q] (invoking only relevant calls, in an order compatible with the
    NFQ layers) and evaluates [q] on the result. A schema is required for
    the typing modes (silently ignored otherwise). Parallel batches are
    accounted at the cost of their slowest invocation; sequential
    invocations add up.

    [pool] (default: none) makes §4.4 parallelism real on the wall
    clock: the members of a parallel batch are dispatched concurrently
    onto the {!Axml_exec.Exec} worker pool, while document mutation and
    all accounting stay on the calling thread — answers, [invoked]
    counts and the simulated-clock charges are identical to the
    sequential evaluation at every pool width. Without a pool (or with
    [jobs = 1]) batches are invoked one by one, as before.

    [obs] (default: disabled) records the whole evaluation as a span
    tree — [eval.run] ⊃ [eval.layer] ⊃ [eval.pass] ⊃ [eval.detect] /
    [eval.round] ⊃ [service.invoke] ⊃ [service.attempt] — and mirrors
    every report counter into [eval.*] metrics (identical increments, so
    [Metrics.count obs.metrics "eval.invoked"] equals [report.invoked]
    exactly, and likewise for [retries], [timeouts], [bytes],
    [backoff_seconds], [rounds], [passes], …). On the trace's simulated
    timeline, a sequentially-invoked parallel batch lays its members end
    to end, while a pooled one ends at the max-aggregated charge
    (fragments are clock-clamped as they are absorbed, see
    {!Axml_obs.Trace.absorb}); either way the aggregated (max) charge is
    the round span's [batch_cost_s] attribute.

    [dispatch] (default: straight to [Registry.invoke] on [registry])
    replaces the engine's request half — {!Axml_sched.Sched.dispatch}
    plugs sharded/replicated routing in here without the analysis
    noticing; [registry] is still consulted for push capability and
    service existence.

    The returned record is the unified {!Axml_engine.Engine.report}
    (invocation, fault and clock accounting all happen inside the
    engine's driver); serialize it with
    {!Axml_engine.Engine.report_to_json}. *)
