(** The naive baseline (§1): invoke every call in the document
    recursively until a fixpoint (or a budget) is reached, then evaluate
    the query over the fully materialized document. *)

type stats = {
  invoked : int;
  rounds : int;
  simulated_seconds : float;
  bytes_transferred : int;
  retries : int;  (** retried service attempts, summed over invocations *)
  timeouts : int;  (** attempts classified as timeouts *)
  failed_calls : int;  (** calls left unexpanded after retry exhaustion *)
  backoff_seconds : float;  (** simulated seconds spent backing off *)
  complete : bool;
}

type report = {
  answers : Axml_query.Eval.binding list;
  invoked : int;
  rounds : int;  (** fixpoint iterations *)
  simulated_seconds : float;
  bytes_transferred : int;
  retries : int;
  timeouts : int;
  failed_calls : int;
  backoff_seconds : float;
  complete : bool;
      (** the fixpoint was reached within the budget and no call
          permanently failed: the answers are the full snapshot result *)
}

val call_params : Axml_doc.node -> Axml_xml.Tree.forest
(** A call's parameter forest, serialized (nested calls included as
    [<axml:call>] elements). *)

val call_name_exn : Axml_doc.node -> string
(** Raises [Invalid_argument] on data nodes. *)

val materialize :
  ?max_calls:int ->
  ?parallel:bool ->
  ?pool:Axml_exec.Exec.pool ->
  ?obs:Axml_obs.Obs.t ->
  Axml_services.Registry.t ->
  Axml_doc.t ->
  stats
(** Materializes the document in place. With [parallel:true] (default)
    each round of visible calls is accounted as one parallel batch (max
    cost); otherwise costs add up. With [pool] (and [parallel]), each
    round's calls are also {e invoked} concurrently on the worker pool —
    same answers and counts, real wall-clock overlap. A call that
    permanently fails ({!Axml_services.Registry.Service_failure}) stays
    in the document as an unexpanded function node, counts in
    [failed_calls] and is never re-attempted; the evaluation degrades
    gracefully instead of aborting.

    [obs] (default: disabled) records one [eval.round] span per fixpoint
    round (service spans nested inside) and mirrors the stats into the
    same [eval.*] metric names {!Axml_core.Lazy_eval.run} uses, so naive
    and lazy snapshots compare directly. *)

val run :
  ?max_calls:int ->
  ?parallel:bool ->
  ?pool:Axml_exec.Exec.pool ->
  ?obs:Axml_obs.Obs.t ->
  Axml_services.Registry.t ->
  Axml_query.Pattern.t ->
  Axml_doc.t ->
  report

val report_to_json : report -> Axml_obs.Json.t
(** The full report as JSON — the [--report-json] wire format. *)
