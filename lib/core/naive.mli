(** Deprecated alias for the naive baseline (§1), which now lives in
    {!Axml_engine.Engine} as a degenerate strategy of the unified
    evaluation runtime. Everything here re-exports the engine so
    existing callers keep compiling — field access like
    [r.Naive.invoked] still resolves to the one
    {!Axml_engine.Engine.report}. New code should call
    {!Axml_engine.Engine.naive_run} and use
    {!Axml_engine.Engine.report_to_json} directly. *)

type report = Axml_engine.Engine.report = {
  answers : Axml_query.Eval.binding list;
  invoked : int;
  pushed : int;  (** always 0: naive never pushes *)
  rounds : int;  (** fixpoint iterations *)
  passes : int;  (** always 0 *)
  relevance_evals : int;  (** always 0 *)
  candidates_checked : int;  (** always 0 *)
  layer_count : int;  (** always 0 *)
  simulated_seconds : float;
  analysis_seconds : float;  (** always 0.0 *)
  bytes_transferred : int;
  retries : int;
  timeouts : int;
  failed_calls : int;
  backoff_seconds : float;
  full_nodes : int;  (** nodes handed to the projector; 0 without one *)
  projected_nodes : int;  (** nodes surviving projection; 0 without one *)
  projected_bytes_saved : int;  (** serialized bytes of dropped subtrees *)
  sharded_calls : int;  (** calls placed on a named shard; 0 unsharded *)
  rebalanced_calls : int;  (** calls the balancer moved off shard 0 *)
  rerouted_calls : int;  (** failed-replica calls salvaged elsewhere *)
  view_rebuild_nodes : int;  (** snapshot-view nodes re-indexed by splices *)
  parallel_match_batches : int;  (** always 0: naive matches sequentially *)
  complete : bool;
}
(** The unified report (see {!Axml_engine.Engine.report}); the analysis
    fields the naive strategy does not use are zero. *)

type stats = Axml_engine.Engine.report
[@@deprecated "subsumed by Axml_engine.Engine.report (one report for every strategy)"]
(** The old stats/report near-duplicate is gone; both were folded into
    the engine's single report. *)

val call_params : Axml_doc.node -> Axml_xml.Tree.forest
(** Alias for {!Axml_engine.Engine.call_params}. *)

val call_name_exn : Axml_doc.node -> string
(** Alias for {!Axml_engine.Engine.call_name_exn}. *)

val run :
  ?max_calls:int ->
  ?parallel:bool ->
  ?pool:Axml_exec.Exec.pool ->
  ?obs:Axml_obs.Obs.t ->
  ?projector:Axml_project.Project.t ->
  ?dispatch:Axml_engine.Engine.dispatch ->
  Axml_services.Registry.t ->
  Axml_query.Pattern.t ->
  Axml_doc.t ->
  report
(** Alias for {!Axml_engine.Engine.naive_run}. *)
