(** Function-call guides (§6.2).

    A dataguide-style trie summarizing only the label paths of a document
    that lead to query-visible function calls, each trie node keeping the
    {e extent}: the call nodes sitting at that path. Linear path queries
    yield the same result on the F-guide as on the document, so relevance
    detection can collect candidates here and filter them with the
    anchored NFQ check ({!Relevance.retrieves}).

    Built in one document-order traversal; maintained incrementally as
    calls are invoked ({!update_after_replace}) or the document is edited
    ({!add_subtree}, {!remove_subtree}). *)

type t

val build : Axml_doc.t -> t
(** A fresh guide from the document's snapshot view (one pure O(n)
    pass). *)

val of_view : Axml_doc.View.t -> t
(** A fresh guide from an explicit snapshot view — identical visit
    order to {!build}, so extents (and downstream invocation order) are
    unchanged. *)

val memoized : Axml_doc.t -> t * bool
(** [memoized d] returns the cached guide for [d] when one exists for
    the document's current generation ([true] = reused, counted by the
    engine's [fguide.reuse] metric), else builds and caches a fresh one.
    A guide kept current through {!update_after_replace} + {!sync}
    stays reusable across evaluations. Thread-safe; the cache is
    bounded. *)

val sync : t -> Axml_doc.t -> unit
(** Re-tags the guide as reflecting the document's current generation —
    call after incremental maintenance ({!update_after_replace},
    {!add_subtree}, {!remove_subtree}) brought it up to date. *)

val candidates :
  t -> (Axml_query.Pattern.axis * Axml_query.Pattern.label) list -> Axml_doc.node list
(** [candidates g steps] — the calls reachable by the linear steps (the
    last step carries the function label; see {!Relevance.guide_steps}),
    deduplicated, in no particular order. *)

val update_after_replace : t -> invoked:Axml_doc.node -> added:Axml_doc.node list -> unit
(** Maintenance after {!Axml_doc.replace_call}: the invoked call leaves
    the guide, the spliced-in nodes are indexed under their paths. *)

val add_subtree : t -> Axml_doc.node -> unit
(** Indexes the visible calls of a subtree that was just attached to the
    document (the node must already have its final position). *)

val remove_subtree : t -> Axml_doc.node -> unit
(** Forgets the visible calls of a subtree about to be detached. *)

val call_count : t -> int
(** Number of calls currently indexed. *)

val node_count : t -> int
(** Number of trie nodes — the guide's size, typically far smaller than
    the document. *)

val paths : t -> string list list
(** The distinct label paths that currently hold calls, in insertion
    order. *)

val to_xml : t -> Axml_xml.Tree.t
(** The guide as an XML tree (§6.2: F-guides "can naturally be
    represented as XML documents"); each trie node carries a [calls]
    attribute with its extent size. *)
