(** A relevance query: an extended tree-pattern query whose single result
    node is a function node, used to retrieve the calls of a document that
    are relevant for the original query. Both LPQs (§3.1) and NFQs (§3.2)
    take this shape; they differ only in how much of the original query's
    filtering they keep. *)

module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Doc = Axml_doc

type t = {
  query : P.t;  (** the extended query; its unique result node is [target] *)
  source : int;  (** pid of the node [v] of the original query *)
  target : int;  (** pid of the output function node in [query] *)
  target_axis : P.axis;  (** the axis of the output function step *)
  fun_sources : (int * int) list;
      (** function-node pid in [query] → pid of the original-query node it
          stands for (used by type-based refinement) *)
  lin : (P.axis * P.label) list;  (** [q_v^lin]: root → v, v excluded *)
}

(** The calls of [d] currently retrieved by the relevance query, by
    top-down evaluation (pure over the document's snapshot view; [par]
    fans the match out over top-level subtrees). *)
let relevant_calls ?relax_joins ?par t d =
  Eval.matches_of ?relax_joins ?par t.query d ~target:t.target

(** Same, sharing an evaluation context across queries (multi-query
    optimization); the context self-heals when the document changed. *)
let relevant_calls_in ctx t d = Eval.matches_of_in ctx t.query d ~target:t.target

(** Same, over an explicit snapshot view. *)
let relevant_calls_view ?relax_joins ?par t v =
  Eval.matches_of_view ?relax_joins ?par t.query v ~target:t.target

(** Candidate-anchored check: does the relevance query retrieve this
    specific call? (used after F-guide filtering, §6.2). *)
let retrieves ?relax_joins t d call =
  Eval.anchored_matches ?relax_joins t.query ~target:t.target d call

(** Candidate-anchored check at a view position — the pure form the
    parallel candidate filter runs on domains. *)
let retrieves_view ?relax_joins t v i =
  Eval.anchored_matches_view ?relax_joins t.query ~target:t.target v i

let lin_regex t = P.linear_regex t.lin

(** The full linear path including the function step — the query run
    against the F-guide. *)
let guide_steps t =
  let fun_label =
    match P.find t.query t.target with
    | Some n -> n.P.label
    | None -> P.Fun P.Any_fun
  in
  t.lin @ [ (t.target_axis, fun_label) ]

let pp ppf t =
  Format.fprintf ppf "@[<h>NFQ(v=%d): %a@]" t.source P.pp t.query

(** Rewrites the tracked function nodes of a relevance query. [f] decides,
    for each function node (with the original-query node it stands for),
    whether to keep it, drop it, or relabel it (e.g. with a concrete name
    list). Dropping empties OR branches, which collapse; dropping a hard
    (non-OR) condition or the output node kills the whole query ([None]).
    This single traversal implements both type-based refinement (§5) and
    the after-layer simplification (§4.3). *)
let rewrite_funs (rq : t) ~f : t option =
  let exception Dead in
  let rec go (n : P.node) : P.node option =
    match n.P.label with
    | P.Fun _ -> (
      match List.assoc_opt n.P.pid rq.fun_sources with
      | None -> Some n
      | Some source -> (
        match f ~fun_pid:n.P.pid ~source with
        | `Keep -> Some n
        | `Drop -> None
        | `Relabel label -> Some (P.with_label n label)))
    | P.Or -> (
      match List.filter_map go n.P.children with
      | [] -> None
      | [ only ] -> Some (P.with_axis only n.P.axis)
      | children -> Some (P.with_children n children))
    | _ ->
      let children =
        List.map
          (fun c -> match go c with Some c -> c | None -> raise Dead)
          n.P.children
      in
      Some (P.with_children n children)
  in
  match go rq.query.P.root with
  | Some root ->
    let q = P.query root in
    if P.find q rq.target <> None then Some { rq with query = q } else None
  | None -> None
  | exception Dead -> None
