(** The distributed layer scheduler: service sharding, replica load
    balancing and adaptive cost-model routing, plugged into the engine's
    request half as an {!Axml_engine.Engine.dispatch}.

    The scheduler owns {e placement} and nothing else: which shard's
    registry serves a call. Everything below (the retry loop, fault
    draws, memoization, the wire) stays in the registry/transport
    layers, and everything above (batching, splicing, accounting) stays
    in the engine — so a sharded evaluation produces the same answers,
    the same [invoked] count and the same fault fates as an unsharded
    one, at every [--jobs] level. *)

module Registry = Axml_services.Registry
module Engine = Axml_engine.Engine
module Obs = Axml_obs.Obs
module Metrics = Axml_obs.Metrics

let log_src = Logs.Src.create "axml.sched" ~doc:"distributed layer scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Round_robin | Adaptive

type spec = {
  id : string;
  registry : Registry.t;
  services : string list option;
      (* static assignment: the names this shard owns; [None] = every
         name its registry serves (a full replica) *)
  budget : int option;  (* max calls this shard may serve *)
  slots : int option;  (* max concurrent in-flight calls *)
  static_cost : float;  (* prior latency estimate, seconds *)
}

let spec ?services ?budget ?slots ?(static_cost = Registry.default_cost.Registry.latency)
    ~id registry =
  (match budget with
  | Some b when b < 0 -> invalid_arg "Sched.spec: negative budget"
  | _ -> ());
  (match slots with
  | Some s when s < 1 -> invalid_arg "Sched.spec: slots must be at least 1"
  | _ -> ());
  { id; registry; services; budget; slots; static_cost }

type shard = {
  spec : spec;
  mutable dispatched : int;  (* calls started here; the budget meter *)
  mutable inflight : int;  (* calls currently being served here *)
  mutable waiting : int;  (* callers queued on this shard's slots *)
  mutable ewma : float option;  (* exponentially-weighted observed cost *)
}

type t = {
  mode : mode;
  shards : shard list;
  mu : Mutex.t;  (* guards every mutable field of [t] and its shards *)
  cv : Condition.t;  (* signalled whenever an in-flight call finishes *)
  mutable cursor : int;  (* round-robin position *)
  mutable rebalanced : int;
  mutable rerouted : int;
}

let create ?(mode = Adaptive) specs =
  if specs = [] then invalid_arg "Sched.create: no shards";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.id then
        invalid_arg (Printf.sprintf "Sched.create: duplicate shard id %S" s.id);
      Hashtbl.replace seen s.id ())
    specs;
  {
    mode;
    shards =
      List.map
        (fun spec -> { spec; dispatched = 0; inflight = 0; waiting = 0; ewma = None })
        specs;
    mu = Mutex.create ();
    cv = Condition.create ();
    cursor = 0;
    rebalanced = 0;
    rerouted = 0;
  }

let shard_ids t = List.map (fun s -> s.spec.id) t.shards

let registries t =
  List.rev
    (List.fold_left
       (fun acc s -> if List.memq s.spec.registry acc then acc else s.spec.registry :: acc)
       [] t.shards)

let owns s name =
  (match s.spec.services with None -> true | Some l -> List.mem name l)
  && Registry.is_registered s.spec.registry name

let owners t name =
  Mutex.protect t.mu (fun () ->
      List.filter_map (fun s -> if owns s name then Some s.spec.id else None) t.shards)

let dispatched t =
  Mutex.protect t.mu (fun () -> List.map (fun s -> (s.spec.id, s.dispatched)) t.shards)

let rebalanced t = Mutex.protect t.mu (fun () -> t.rebalanced)
let rerouted t = Mutex.protect t.mu (fun () -> t.rerouted)

(* The global budget this scheduler can still admit: the sum of the
   per-shard budgets when every shard is bounded, [None] (unbounded) as
   soon as one is. The CLI mins this into the engine's [max_calls]. *)
let total_budget t =
  List.fold_left
    (fun acc s ->
      match (acc, s.spec.budget) with Some a, Some b -> Some (a + b) | _ -> None)
    (Some 0) t.shards

(* ------------------------------------------------------------------ *)
(* The cost model *)

let ewma_alpha = 0.3

(* What one call of [name] on this shard is expected to cost. The EWMA
   over observed costs is the primary signal (it exists even with
   metrics disabled); a histogram quantile widens the estimate to the
   observed tail: this shard's [sched.replica_cost] when the scheduler
   itself has routed through it, else the registry's per-service
   [service.cost] latency histogram — so an estimator on a registry
   that has already served traffic (retries, evaluations, other
   schedulers) starts from measured latency instead of the static
   prior. Both fall back in the same p95 → p50 → prior order. Before
   any observation the spec's static prior stands, refined by a
   histogram median when one survives from an earlier evaluation on the
   same registry. Called under [t.mu]. *)
let estimate metrics ~name shard =
  let quant q =
    match
      Metrics.quantile metrics ~labels:[ ("shard", shard.spec.id) ] "sched.replica_cost" q
    with
    | Some _ as v -> v
    | None -> Metrics.quantile metrics ~labels:[ ("service", name) ] "service.cost" q
  in
  match (shard.ewma, quant 0.95) with
  | Some e, Some p95 -> Float.max e p95
  | Some e, None -> e
  | None, _ -> ( match quant 0.5 with Some p50 -> p50 | None -> shard.spec.static_cost)

let observe_cost t shard obs cost =
  Mutex.protect t.mu (fun () ->
      shard.ewma <-
        Some
          (match shard.ewma with
          | None -> cost
          | Some e -> (ewma_alpha *. cost) +. ((1.0 -. ewma_alpha) *. e)));
  Metrics.observe obs.Obs.metrics ~labels:[ ("shard", shard.spec.id) ] "sched.replica_cost"
    cost

(* ------------------------------------------------------------------ *)
(* Placement *)

let budget_left s = match s.spec.budget with None -> true | Some b -> s.dispatched < b
let slot_free s = match s.spec.slots with None -> true | Some k -> s.inflight < k

(* The least-loaded-first score: what this call would cost on [s],
   queueing included — the calls ahead of it (in flight or waiting for
   a slot) drain [slots] at a time, each wave at the estimated per-call
   cost. A slow replica therefore only wins a call once the fast one's
   queue has grown past the latency gap; before any estimate exists the
   shards tie and declaration order decides. *)
let score metrics ~name s =
  let queued = s.inflight + s.waiting + 1 in
  let waves =
    match s.spec.slots with
    | None -> queued
    | Some k -> (queued + k - 1) / k
  in
  float_of_int waves *. estimate metrics ~name s

(* Pick a shard for [name]. Called with [t.mu] held. [tried] are the
   shards whose retry loop this call already exhausted (a re-route in
   progress). Returns the chosen shard and whether the balancer moved
   the call off the default placement (the first budgeted owner, in
   declaration order).

   Round-robin statically assigns each call by arrival order and waits
   for its shard's slot, cost-blind. Adaptive scores every candidate, full
   or not, and when the best one is full it {e waits for it} rather
   than overflowing to a worse shard — queueing a 10 ms replica twice
   beats handing the call to a 50 ms one. Waiters re-place from scratch
   on every wake-up, so a placement made before the cost estimates had
   converged is revised, not committed. Ties go to the earliest shard,
   which is what keeps a [--jobs 1] run over identical replicas on
   shard one — byte-identical to the unsharded run. *)
let rec place t ~metrics ~tried name =
  let owners = List.filter (fun s -> owns s name) t.shards in
  if owners = [] then raise (Registry.Unknown_service name)
  else
    let budgeted = List.filter budget_left owners in
    match budgeted with
    | [] -> `Exhausted
    | default :: _ -> (
      let untried = List.filter (fun s -> not (List.memq s tried)) budgeted in
      if untried = [] then `No_alternative
      else
        let commit chosen =
          chosen.dispatched <- chosen.dispatched + 1;
          chosen.inflight <- chosen.inflight + 1;
          if chosen != default then t.rebalanced <- t.rebalanced + 1;
          `Placed (chosen, chosen != default)
        in
        match t.mode with
        | Round_robin ->
          (* static rotation: the call is assigned its shard by arrival
             order and waits for that shard's slot, cost-blind — the
             baseline the adaptive mode is measured against *)
          let chosen = List.nth untried (t.cursor mod List.length untried) in
          t.cursor <- t.cursor + 1;
          let rec await () =
            if slot_free chosen then commit chosen
            else begin
              chosen.waiting <- chosen.waiting + 1;
              Fun.protect
                ~finally:(fun () -> chosen.waiting <- chosen.waiting - 1)
                (fun () -> Condition.wait t.cv t.mu);
              (* the shard's budget may have drained while we waited *)
              if budget_left chosen then await () else place t ~metrics ~tried name
            end
          in
          await ()
        | Adaptive ->
          let chosen =
            List.fold_left
              (fun best s ->
                if score metrics ~name s < score metrics ~name best then s else best)
              (List.hd untried) (List.tl untried)
          in
          if slot_free chosen then commit chosen
          else begin
            (* queue on the best shard — visibly, so the next chooser
               scores this queue too — and re-place from scratch on
               wake-up: the wait is a preference, not a commitment *)
            chosen.waiting <- chosen.waiting + 1;
            Fun.protect
              ~finally:(fun () -> chosen.waiting <- chosen.waiting - 1)
              (fun () -> Condition.wait t.cv t.mu);
            place t ~metrics ~tried name
          end)

(* A shard budget ran out with calls still pending: surface the same
   way a retry-exhausted call does — a failed invocation — so the
   engine tombstones the call and degrades to [complete = false]
   instead of crashing. No registry was reached, so the invocation is
   all zeros (and emits no [service.invoke] span). *)
let exhausted_invocation name =
  {
    Registry.service = name;
    request_bytes = 0;
    response_bytes = 0;
    cost = 0.0;
    pushed = false;
    cached = false;
    retries = 0;
    timeouts = 0;
    backoff_seconds = 0.0;
    failed = true;
  }

(* Re-routing accumulates the cost of the defeats that preceded the
   result: the bytes, retries, timeouts and backoff of every exhausted
   replica attempt are summed into the invocation the engine accounts,
   so the report still reconciles with what actually happened on the
   wire. *)
let merge_prior (prior : Registry.invocation option) (inv : Registry.invocation) =
  match prior with
  | None -> inv
  | Some p ->
    {
      inv with
      Registry.request_bytes = p.Registry.request_bytes + inv.Registry.request_bytes;
      cost = p.Registry.cost +. inv.Registry.cost;
      retries = p.Registry.retries + inv.Registry.retries;
      timeouts = p.Registry.timeouts + inv.Registry.timeouts;
      backoff_seconds = p.Registry.backoff_seconds +. inv.Registry.backoff_seconds;
    }

let release t shard =
  Mutex.protect t.mu (fun () ->
      shard.inflight <- shard.inflight - 1;
      Condition.broadcast t.cv)

let dispatch t : Engine.dispatch =
 fun ~name ~params ?push ~obs () ->
  let metrics = obs.Obs.metrics in
  let rec attempt ~tried ~prior ~rerouted =
    match Mutex.protect t.mu (fun () -> place t ~metrics ~tried name) with
    | `Exhausted ->
      Log.debug (fun m -> m "shard budgets exhausted, failing %s" name);
      raise (Registry.Service_failure (exhausted_invocation name))
    | `No_alternative ->
      (* every budgeted owner's retry loop was exhausted *)
      let inv =
        match prior with Some p -> { p with Registry.failed = true } | None -> assert false
      in
      raise (Registry.Service_failure inv)
    | `Placed (shard, moved) -> (
      match Registry.invoke shard.spec.registry ~name ~params ?push ~obs () with
      | result, inv ->
        release t shard;
        observe_cost t shard obs inv.Registry.cost;
        if rerouted > 0 then
          Mutex.protect t.mu (fun () -> t.rerouted <- t.rerouted + rerouted);
        ( result,
          merge_prior prior inv,
          { Engine.shard = Some shard.spec.id; rebalanced = moved; rerouted } )
      | exception Registry.Service_failure inv ->
        release t shard;
        observe_cost t shard obs inv.Registry.cost;
        let prior = Some (merge_prior prior inv) in
        (* Only remote defeats are worth re-routing: a replica of a
           local registry draws its seeded fault fate from the call's
           parameters alone, so an identical replica fails identically —
           re-routing would double the cost for nothing (and break the
           sharded ≡ unsharded differential). A remote defeat is this
           peer's: another replica may well answer. *)
        if Registry.is_remote shard.spec.registry name then begin
          Log.debug (fun m ->
              m "re-routing %s off failed shard %s (%d retries)" name shard.spec.id
                inv.Registry.retries);
          attempt ~tried:(shard :: tried) ~prior ~rerouted:(rerouted + 1)
        end
        else
          raise (Registry.Service_failure (Option.get prior)))
  in
  attempt ~tried:[] ~prior:None ~rerouted:0
