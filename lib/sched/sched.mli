(** The distributed layer scheduler: service sharding, replica load
    balancing and adaptive cost-model routing.

    A scheduler spans a set of {e shards} — each a
    {!Axml_services.Registry} (in-process or fronting a remote peer via
    {!Axml_net.Remote}) with an optional static service assignment, a
    per-shard call budget, a concurrency limit and a cost prior. It
    plugs into the engine's request half as an
    {!Axml_engine.Engine.dispatch}: for every call the engine makes, the
    scheduler picks the shard to serve it, and everything else — §4.4
    batching, splicing, Max/Sum accounting, the retry loop, fault draws,
    memoization — happens exactly where it always did. Sharded
    evaluation therefore produces the same answers, the same [invoked]
    count and the same fault fates as unsharded evaluation, at every
    [--jobs] level.

    Placement is cost-model-driven in the shape of Mukhopadhyay et al.,
    "Query Optimization Over Web Services Using A Mixed Approach": a
    static prior per shard, refined online by an EWMA over observed
    per-call costs and by the p95 of a latency histogram from the run's
    {!Axml_obs.Metrics} registry: the [sched.replica_cost] histogram
    the scheduler itself feeds, or — when the scheduler has not routed
    through that shard yet — the per-service [service.cost] histogram
    the registry records for {e every} invocation, so traffic served
    before this scheduler existed (retries, prior evaluations, other
    schedulers) still seeds the estimate. Both histograms fall back in
    the same p95 → p50 → static-prior order. {!Adaptive} mode charges
    each candidate
    [(inflight + 1) × estimated_cost] and takes the cheapest (ties to
    the earliest shard), so a skewed replica set drains through the fast
    peer without starving the slow one; {!Round_robin} ignores cost and
    rotates.

    Failures degrade in layers: a call that exhausts its retry loop on a
    {e remote} shard is re-routed to the next replica (its defeat's
    bytes/retries/backoff summed into the final invocation, the event
    counted in the report's [rerouted_calls]); local shards are not
    re-routed — an identical local replica would draw the identical
    seeded fate. When every owner's budget is spent, further calls on
    the name fail immediately as budget-exhausted invocations and the
    evaluation degrades to [complete = false], exactly like retry
    exhaustion.

    Thread-safe: dispatch may run concurrently from
    {!Axml_exec.Exec} pool workers; when a shard's [slots] are all in
    flight, dispatch blocks until one frees. *)

type mode =
  | Round_robin  (** rotate over eligible shards, cost-blind *)
  | Adaptive  (** least-loaded-first on the estimated cost (default) *)

type spec
(** One shard declaration: an id, a registry, and the routing limits. *)

val spec :
  ?services:string list ->
  ?budget:int ->
  ?slots:int ->
  ?static_cost:float ->
  id:string ->
  Axml_services.Registry.t ->
  spec
(** [services] (default: everything the registry serves) statically
    assigns ownership: the shard only serves the listed names. [budget]
    (default: unbounded) caps the calls this shard may serve across the
    evaluation. [slots] (default: unbounded) caps concurrent in-flight
    calls — the capacity term the adaptive score reacts to. [static_cost]
    (default: {!Axml_services.Registry.default_cost}'s latency) is the
    cost prior used until observations exist. Raises [Invalid_argument]
    on a negative budget or a non-positive slot count. *)

type t

val create : ?mode:mode -> spec list -> t
(** Raises [Invalid_argument] on an empty list or duplicate ids.
    Declaration order matters: the first budgeted owner of a name is its
    default placement, and score ties resolve to the earliest shard. *)

val dispatch : t -> Axml_engine.Engine.dispatch
(** The pluggable request half: pass to
    {!Axml_engine.Engine.create}/{!Axml_core.Lazy_eval.run} as
    [~dispatch]. Raises [Registry.Unknown_service] when no shard owns
    the name, and [Registry.Service_failure] when every eligible replica
    was defeated or every owner's budget is spent. *)

val total_budget : t -> int option
(** The summed per-shard budgets when {e every} shard is bounded —
    roll this into the engine's [max_calls] — or [None] as soon as one
    shard is unbounded. *)

val shard_ids : t -> string list

val registries : t -> Axml_services.Registry.t list
(** Every distinct shard registry, in declaration order (physically
    deduplicated: shards sharing one registry contribute it once) —
    what a caller pools to report fault counters or histories across
    the whole scheduler. *)

val owners : t -> string -> string list
(** The shards currently owning a name, in declaration order. *)

val dispatched : t -> (string * int) list
(** Calls started per shard (successful or not), by shard id. *)

val rebalanced : t -> int
(** Placements that went somewhere other than the default (first
    budgeted owner) — the balancer actually moving load. *)

val rerouted : t -> int
(** Failed-replica defeats salvaged by re-routing to another replica. *)
