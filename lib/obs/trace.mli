(** Span-based tracing for the evaluators and the service substrate.

    A {e span} is a named interval with typed attributes, opened and
    closed on two clocks at once: the {b wall clock} (real seconds, for
    analysis cost) and the {b simulated clock} (the cost-model seconds
    the experiments report, see {!Axml_services.Registry}). Spans nest:
    the span opened while another is open becomes its child, giving each
    evaluation a tree — layers contain passes, passes contain rounds,
    rounds contain invocations, invocations contain wire attempts.

    The sink is cheap to pass and free to ignore: {!null} is disabled,
    records nothing, and every operation on it returns immediately, so
    instrumented code takes a [?trace] argument defaulting to {!null}
    and pays one branch when tracing is off. Guard any expensive
    attribute construction with {!enabled}.

    Recorded traces serialize to two formats: JSONL (one event object
    per line, exact) and Chrome [trace_event] JSON — load the latter in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}, where
    the wall and simulated clocks appear as two named threads. Both
    formats load back with {!load_file} for offline pretty-printing. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

type kind = Open | Close | Instant

type event = {
  kind : kind;
  id : int;  (** span id; a [Close] carries its [Open]'s id *)
  parent : int;  (** enclosing span id, [-1] at top level *)
  name : string;
  cat : string;  (** coarse grouping: ["eval"], ["service"], … *)
  wall : float;  (** wall seconds since the sink was created *)
  sim : float;  (** simulated clock at the event *)
  attrs : (string * attr) list;
}

type t
(** A sink: either disabled ({!null}) or recording. *)

val null : t
(** The no-op sink: {!enabled} is [false], nothing is recorded. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A recording sink. [clock] (default [Unix.gettimeofday]) is sampled
    at every event; wall times are stored relative to creation. *)

val enabled : t -> bool

(** {2 The simulated clock}

    The sink does not compute simulated time — the instrumented code
    does (batch aggregation lives in the evaluator) and keeps the sink's
    clock posted. Both operations are no-ops on a disabled sink. *)

val advance : t -> float -> unit
(** Adds simulated seconds (e.g. one attempt's duration). *)

val set_sim : t -> float -> unit
(** Posts an absolute simulated time (e.g. after a parallel batch is
    aggregated at its slowest member). *)

val sim_now : t -> float

(** {2 Spans} *)

type span
(** A handle to an open span; meaningless once closed. *)

val none : span
(** The handle returned by disabled sinks; closing it is a no-op. *)

val open_span : t -> ?cat:string -> ?attrs:(string * attr) list -> string -> span

val close_span : t -> ?attrs:(string * attr) list -> span -> unit
(** [attrs] given at close are merged with the open's (close wins on
    duplicate keys) — measured results land here. Spans must close in
    LIFO order; {!well_formed} verifies it. *)

val with_span : t -> ?cat:string -> ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** Opens, runs, closes — the span is closed even if the function
    raises (the exception is re-raised). *)

val instant : t -> ?cat:string -> ?attrs:(string * attr) list -> string -> unit
(** A zero-duration event. *)

val events : t -> event list
(** Everything recorded so far, in chronological order. *)

(** {2 Concurrency}

    Every operation on a sink is guarded by an internal mutex, so spans
    and instants may be recorded from multiple threads. Interleaving
    opens from concurrent threads directly into one sink would still
    break the LIFO span algebra, though — concurrent workers should
    record into a {!fragment} each and have the coordinating thread
    {!absorb} them after the join. *)

val fragment : t -> t
(** A fresh, empty sink sharing the parent's wall-clock epoch and
    starting at the parent's current simulated time — what one member
    of a concurrent batch records into. [fragment null] is {!null}. *)

val absorb : t -> t -> unit
(** [absorb parent frag] splices everything [frag] recorded into
    [parent], as children of the span currently open in [parent]
    (top-level if none). Span ids are renumbered, and both clocks are
    clamped to the running maximum of the merged sequence so it stays
    monotone; absorbing the fragments of a batch in order therefore
    leaves the simulated clock at [base + max(member advances)] — the
    §4.4 parallel cost. Call it after the worker has finished, from one
    thread at a time; a fragment must be absorbed at most once. No-op
    on disabled sinks and empty fragments. *)

val well_formed : t -> (unit, string) result
(** Checks span algebra over {!events}: every [Close] matches the most
    recently opened still-open span, no span closes twice, every
    non-root event's parent is open (and on top of the stack) when the
    event fires, clocks are monotone along the event sequence, and
    nothing is left open. *)

(** {2 Serialization} *)

val to_jsonl : t -> Json.t list
(** One object per event, in order — the exact format. *)

val to_chrome : t -> Json.t
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]): duration
    events ([ph:"B"]/[ph:"E"]) in microseconds on two threads — tid 1
    is the wall clock, tid 2 the simulated clock — with attributes (and
    the other clock's reading) under [args]. Open spans are closed at
    the last recorded time so partial traces still load. *)

val write_jsonl : string -> t -> unit
val write_chrome : string -> t -> unit

(** {2 Offline analysis} *)

type node = {
  node_name : string;
  node_cat : string;
  node_attrs : (string * attr) list;
  wall_start : float;
  wall_end : float;
  sim_start : float;
  sim_end : float;
  children : node list;
}

val tree : t -> (node list, string) result
(** The span forest of a recording sink (requires well-formedness). *)

val tree_of_events : event list -> (node list, string) result

val load_file : string -> (node list, string) result
(** Loads a saved trace — Chrome [trace_event] (an object with a
    [traceEvents] field, or a bare event array) or JSONL — back into a
    span forest. *)

val pp_forest : Format.formatter -> node list -> unit
(** Pretty-prints the forest as an indented tree, one line per span:
    name, inline attributes, wall/simulated durations, and rollups
    (descendant span count; summed [bytes] attributes when present). *)

val attr_to_json : attr -> Json.t

val rollup_int : string -> node -> int
(** Sums an [Int] attribute over a node and all its descendants. *)
