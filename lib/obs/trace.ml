type attr = Str of string | Int of int | Float of float | Bool of bool

type kind = Open | Close | Instant

type event = {
  kind : kind;
  id : int;
  parent : int;
  name : string;
  cat : string;
  wall : float;
  sim : float;
  attrs : (string * attr) list;
}

type t = {
  on : bool;
  clock : unit -> float;
  t0 : float;
  mu : Mutex.t;
      (* guards every mutable field: spans and instants may be recorded
         from pool workers and server connection threads *)
  mutable events : event list; (* newest first *)
  mutable next_id : int;
  mutable stack : int list; (* open span ids, innermost first *)
  mutable sim : float;
}

let null =
  { on = false; clock = (fun () -> 0.0); t0 = 0.0; mu = Mutex.create (); events = [];
    next_id = 0; stack = []; sim = 0.0 }

let create ?(clock = Unix.gettimeofday) () =
  { on = true; clock; t0 = clock (); mu = Mutex.create (); events = []; next_id = 0;
    stack = []; sim = 0.0 }

let enabled t = t.on

let advance t d = if t.on then Mutex.protect t.mu (fun () -> t.sim <- t.sim +. d)
let set_sim t s = if t.on then Mutex.protect t.mu (fun () -> t.sim <- s)
let sim_now t = if t.on then Mutex.protect t.mu (fun () -> t.sim) else t.sim

type span = int

let none = -1

let record t kind id name cat attrs =
  let parent = match t.stack with [] -> -1 | p :: _ -> p in
  t.events <-
    { kind; id; parent; name; cat; wall = t.clock () -. t.t0; sim = t.sim; attrs } :: t.events

let open_span t ?(cat = "eval") ?(attrs = []) name =
  if not t.on then none
  else
    Mutex.protect t.mu (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        record t Open id name cat attrs;
        t.stack <- id :: t.stack;
        id)

let close_span t ?(attrs = []) span =
  if t.on && span >= 0 then
    Mutex.protect t.mu (fun () ->
        (* the id identifies the span; the parent field of a Close is the
           span it closes out of, i.e. the span itself *)
        t.stack <- List.filter (fun id -> id <> span) t.stack;
        t.events <-
          { kind = Close; id = span; parent = span; name = ""; cat = "";
            wall = t.clock () -. t.t0; sim = t.sim; attrs }
          :: t.events)

let with_span t ?cat ?attrs name f =
  if not t.on then f ()
  else begin
    let s = open_span t ?cat ?attrs name in
    match f () with
    | v ->
      close_span t s;
      v
    | exception e ->
      close_span t ~attrs:[ ("raised", Str (Printexc.to_string e)) ] s;
      raise e
  end

let instant t ?(cat = "eval") ?(attrs = []) name =
  if t.on then
    Mutex.protect t.mu (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        record t Instant id name cat attrs)

let events t = if t.on then Mutex.protect t.mu (fun () -> List.rev t.events) else []

(* ------------------------------------------------------------------ *)
(* Fragments: per-task sinks for concurrent batch members.

   A worker must not record straight into the parent sink — concurrent
   opens would interleave on the shared span stack and break the strict
   LIFO nesting the span algebra (and every consumer) relies on.
   Instead each batch member records into a private [fragment] sharing
   the parent's clock and epoch, and the sequential phase that follows
   the join splices the fragments back with [absorb], one after the
   other in input order. Clamping each absorbed event's clocks to the
   running maximum keeps the merged sequence monotone; on the simulated
   timeline the clamp realizes exactly the §4.4 parallel accounting —
   the batch ends at [base + max(member costs)], not at the sum. *)

let fragment parent =
  if not parent.on then null
  else
    let sim = Mutex.protect parent.mu (fun () -> parent.sim) in
    { on = true; clock = parent.clock; t0 = parent.t0; mu = Mutex.create (); events = [];
      next_id = 0; stack = []; sim }

let absorb parent frag =
  if parent.on && frag.on && frag != parent && frag.events <> [] then
    Mutex.protect parent.mu (fun () ->
        let offset = parent.next_id in
        let base_parent = match parent.stack with [] -> -1 | p :: _ -> p in
        let last_wall =
          ref (match parent.events with [] -> neg_infinity | e :: _ -> e.wall)
        and last_sim =
          ref (match parent.events with [] -> neg_infinity | e :: _ -> e.sim)
        in
        let remap ev =
          let id = if ev.id >= 0 then ev.id + offset else ev.id in
          let parent_id =
            match ev.kind with
            | Close -> id (* a Close's parent is the span itself *)
            | Open | Instant ->
              if ev.parent >= 0 then ev.parent + offset else base_parent
          in
          let wall = Float.max ev.wall !last_wall in
          let sim = Float.max ev.sim !last_sim in
          last_wall := wall;
          last_sim := sim;
          { ev with id; parent = parent_id; wall; sim }
        in
        (* clamp in chronological order, then prepend newest-first *)
        let remapped =
          List.fold_left (fun acc ev -> remap ev :: acc) [] (List.rev frag.events)
        in
        parent.events <- remapped @ parent.events;
        parent.next_id <- parent.next_id + frag.next_id;
        parent.sim <- Float.max parent.sim !last_sim)

(* ------------------------------------------------------------------ *)
(* Well-formedness and tree building *)

(* merge a-over-b: keys of [over] win *)
let merge_attrs base over =
  over @ List.filter (fun (k, _) -> not (List.mem_assoc k over)) base

type node = {
  node_name : string;
  node_cat : string;
  node_attrs : (string * attr) list;
  wall_start : float;
  wall_end : float;
  sim_start : float;
  sim_end : float;
  children : node list;
}

type partial = {
  p_id : int;
  p_name : string;
  p_cat : string;
  p_attrs : (string * attr) list;
  p_wall : float;
  p_sim : float;
  mutable p_children : node list; (* reversed *)
}

let tree_of_events evs =
  let roots = ref [] in
  let stack = ref [] in
  let last_wall = ref neg_infinity and last_sim = ref neg_infinity in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let attach n =
    match !stack with [] -> roots := n :: !roots | p :: _ -> p.p_children <- n :: p.p_children
  in
  let rec go = function
    | [] ->
      if !stack <> [] then
        err "%d span(s) left open (innermost: %s)" (List.length !stack)
          (match !stack with p :: _ -> p.p_name | [] -> "?")
      else Ok (List.rev !roots)
    | ev :: rest ->
      if ev.wall < !last_wall then err "wall clock went backwards at event %d" ev.id
      else if ev.sim < !last_sim -. 1e-9 then err "simulated clock went backwards at event %d" ev.id
      else begin
        last_wall := ev.wall;
        last_sim := ev.sim;
        match ev.kind with
        | Open ->
          stack :=
            { p_id = ev.id; p_name = ev.name; p_cat = ev.cat; p_attrs = ev.attrs;
              p_wall = ev.wall; p_sim = ev.sim; p_children = [] }
            :: !stack;
          go rest
        | Close -> (
          match !stack with
          | [] -> err "close of span %d with no span open" ev.id
          | p :: up ->
            if p.p_id <> ev.id then
              err "span %d closed while %s (%d) is still open: spans must nest" ev.id p.p_name
                p.p_id
            else begin
              stack := up;
              attach
                { node_name = p.p_name; node_cat = p.p_cat;
                  node_attrs = merge_attrs p.p_attrs ev.attrs; wall_start = p.p_wall;
                  wall_end = ev.wall; sim_start = p.p_sim; sim_end = ev.sim;
                  children = List.rev p.p_children };
              go rest
            end)
        | Instant ->
          attach
            { node_name = ev.name; node_cat = ev.cat; node_attrs = ev.attrs; wall_start = ev.wall;
              wall_end = ev.wall; sim_start = ev.sim; sim_end = ev.sim; children = [] };
          go rest
      end
  in
  go evs

let tree t = tree_of_events (events t)

let well_formed t =
  if not t.on then Ok () else Result.map (fun _ -> ()) (tree t)

(* ------------------------------------------------------------------ *)
(* Serialization *)

let attr_to_json = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let attr_of_json = function
  | Json.String s -> Some (Str s)
  | Json.Int i -> Some (Int i)
  | Json.Float f -> Some (Float f)
  | Json.Bool b -> Some (Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let attrs_json attrs = Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) attrs)

let event_to_json ev =
  Json.Obj
    [
      ("ev", Json.String (match ev.kind with Open -> "open" | Close -> "close" | Instant -> "instant"));
      ("id", Json.Int ev.id);
      ("parent", Json.Int ev.parent);
      ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ("wall", Json.Float ev.wall);
      ("sim", Json.Float ev.sim);
      ("attrs", attrs_json ev.attrs);
    ]

let event_of_json j =
  let open Json in
  let str k = Option.value ~default:"" (string_value (member k j)) in
  let num k = Option.value ~default:0.0 (float_value (member k j)) in
  match string_value (member "ev" j) with
  | None -> Error "event without \"ev\" field"
  | Some kind_s ->
    let kind =
      match kind_s with
      | "open" -> Some Open
      | "close" -> Some Close
      | "instant" -> Some Instant
      | _ -> None
    in
    (match kind with
    | None -> Error (Printf.sprintf "unknown event kind %S" kind_s)
    | Some kind ->
      let attrs =
        match member "attrs" j with
        | Obj fields ->
          List.filter_map (fun (k, v) -> Option.map (fun a -> (k, a)) (attr_of_json v)) fields
        | _ -> []
      in
      Ok
        {
          kind;
          id = Option.value ~default:(-1) (int_value (member "id" j));
          parent = Option.value ~default:(-1) (int_value (member "parent" j));
          name = str "name";
          cat = str "cat";
          wall = num "wall";
          sim = num "sim";
          attrs;
        })

let to_jsonl t = List.map event_to_json (events t)

(* Chrome trace_event: duration (B/E) pairs on two threads — tid 1 runs
   on the wall clock, tid 2 on the simulated clock; the other clock's
   reading rides along under args so loading can recover both. *)
let to_chrome t =
  let us x = Json.Float (x *. 1e6) in
  let base ~ph ~tid ~ts ev extra_args =
    Json.Obj
      ([
         ("name", Json.String ev.name);
         ("cat", Json.String (if ev.cat = "" then "axml" else ev.cat));
         ("ph", Json.String ph);
         ("ts", us ts);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid);
       ]
      @ (match ph with "i" -> [ ("s", Json.String "t") ] | _ -> [])
      @ [ ("args", Json.Obj (extra_args @ List.map (fun (k, v) -> (k, attr_to_json v)) ev.attrs)) ])
  in
  let out = ref [] in
  let emit j = out := j :: !out in
  let emit_both ~ph ev =
    emit (base ~ph ~tid:1 ~ts:ev.wall ev [ ("sim", Json.Float ev.sim) ]);
    emit (base ~ph ~tid:2 ~ts:ev.sim ev [ ("wall", Json.Float ev.wall) ])
  in
  (* thread metadata so the two timelines are labeled in the viewer *)
  List.iter
    (fun (tid, label) ->
      emit
        (Json.Obj
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.String label) ]);
           ]))
    [ (1, "wall clock"); (2, "simulated clock") ];
  (* names for Close events come from their Open *)
  let open_names = Hashtbl.create 64 in
  let stack = ref [] in
  let last = ref None in
  List.iter
    (fun ev ->
      last := Some ev;
      match ev.kind with
      | Open ->
        Hashtbl.replace open_names ev.id (ev.name, ev.cat);
        stack := ev :: !stack;
        emit_both ~ph:"B" ev
      | Close ->
        let name, cat =
          match Hashtbl.find_opt open_names ev.id with Some nc -> nc | None -> ("?", "axml")
        in
        stack := List.filter (fun (o : event) -> o.id <> ev.id) !stack;
        emit_both ~ph:"E" { ev with name; cat }
      | Instant -> emit_both ~ph:"i" ev)
    (events t);
  (* close anything still open so partial traces remain loadable *)
  (match !last with
  | None -> ()
  | Some last ->
    List.iter
      (fun (o : event) ->
        emit_both ~ph:"E" { o with kind = Close; wall = last.wall; sim = last.sim; attrs = [] })
      !stack);
  Json.Obj [ ("traceEvents", Json.List (List.rev !out)); ("displayTimeUnit", Json.String "ms") ]

let write_jsonl path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun j ->
          Json.to_channel oc j;
          output_char oc '\n')
        (to_jsonl t))

let write_chrome path t = Json.write_file path (to_chrome t)

(* ------------------------------------------------------------------ *)
(* Loading *)

let nodes_of_chrome json =
  let evs =
    match Json.member "traceEvents" json with
    | Json.List evs -> evs
    | _ -> ( match json with Json.List evs -> evs | _ -> [])
  in
  if evs = [] then Error "no traceEvents found"
  else begin
    (* replay the wall-clock thread (tid 1); B/E match by nesting *)
    let roots = ref [] and stack = ref [] in
    let attach n =
      match !stack with [] -> roots := n :: !roots | p :: _ -> p.p_children <- n :: p.p_children
    in
    let exception Bad of string in
    try
      List.iter
        (fun ev ->
          let ph = Option.value ~default:"" (Json.string_value (Json.member "ph" ev)) in
          let tid = Option.value ~default:1 (Json.int_value (Json.member "tid" ev)) in
          if tid = 1 && (ph = "B" || ph = "E" || ph = "i") then begin
            let name = Option.value ~default:"?" (Json.string_value (Json.member "name" ev)) in
            let cat = Option.value ~default:"" (Json.string_value (Json.member "cat" ev)) in
            let wall =
              Option.value ~default:0.0 (Json.float_value (Json.member "ts" ev)) /. 1e6
            in
            let args = Json.member "args" ev in
            let sim = Option.value ~default:0.0 (Json.float_value (Json.member "sim" args)) in
            let attrs =
              match args with
              | Json.Obj fields ->
                List.filter_map
                  (fun (k, v) ->
                    if k = "sim" || k = "wall" then None
                    else Option.map (fun a -> (k, a)) (attr_of_json v))
                  fields
              | _ -> []
            in
            match ph with
            | "B" ->
              stack :=
                { p_id = 0; p_name = name; p_cat = cat; p_attrs = attrs; p_wall = wall;
                  p_sim = sim; p_children = [] }
                :: !stack
            | "E" -> (
              match !stack with
              | [] -> raise (Bad "end event with no begin")
              | p :: up ->
                stack := up;
                attach
                  { node_name = p.p_name; node_cat = p.p_cat;
                    node_attrs = merge_attrs p.p_attrs attrs; wall_start = p.p_wall;
                    wall_end = wall; sim_start = p.p_sim; sim_end = sim;
                    children = List.rev p.p_children })
            | _ ->
              attach
                { node_name = name; node_cat = cat; node_attrs = attrs; wall_start = wall;
                  wall_end = wall; sim_start = sim; sim_end = sim; children = [] }
          end)
        evs;
      if !stack <> [] then Error "unbalanced begin/end events" else Ok (List.rev !roots)
    with Bad m -> Error m
  end

let load_file path =
  (* a Chrome trace is one JSON document; a JSONL log is one per line *)
  match Json.parse_file path with
  | Ok json -> nodes_of_chrome json
  | Error _ -> (
    match Json.parse_lines path with
    | Error m -> Error m
    | Ok lines -> (
      let rec convert acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
          match event_of_json j with Ok ev -> convert (ev :: acc) rest | Error m -> Error m)
      in
      match convert [] lines with
      | Error m -> Error (path ^ ": " ^ m)
      | Ok evs -> tree_of_events evs))

(* ------------------------------------------------------------------ *)
(* Pretty-printing *)

let rec rollup_int key n =
  (match List.assoc_opt key n.node_attrs with Some (Int i) -> i | _ -> 0)
  + List.fold_left (fun acc c -> acc + rollup_int key c) 0 n.children

let rec span_count n = 1 + List.fold_left (fun acc c -> acc + span_count c) 0 n.children

let pp_duration ppf d =
  if d < 0.0005 then Format.fprintf ppf "%.0fµs" (d *. 1e6)
  else if d < 1.0 then Format.fprintf ppf "%.1fms" (d *. 1e3)
  else Format.fprintf ppf "%.3fs" d

let pp_attr ppf (k, v) =
  match v with
  | Str s -> Format.fprintf ppf "%s=%s" k s
  | Int i -> Format.fprintf ppf "%s=%d" k i
  | Float f -> Format.fprintf ppf "%s=%g" k f
  | Bool b -> Format.fprintf ppf "%s=%b" k b

let pp_forest ppf forest =
  let rec pp_node prefix child_prefix n =
    Format.fprintf ppf "%s%s" prefix n.node_name;
    List.iter (fun a -> Format.fprintf ppf " %a" pp_attr a) n.node_attrs;
    Format.fprintf ppf "  [wall %a" pp_duration (n.wall_end -. n.wall_start);
    if n.sim_end -. n.sim_start > 0.0 then
      Format.fprintf ppf ", sim %a" pp_duration (n.sim_end -. n.sim_start);
    let descendants = span_count n - 1 in
    if descendants > 0 then Format.fprintf ppf ", %d span(s)" descendants;
    let bytes = rollup_int "bytes" n in
    if bytes > 0 && not (List.mem_assoc "bytes" n.node_attrs) then
      Format.fprintf ppf ", %d B" bytes;
    Format.fprintf ppf "]@.";
    let rec children = function
      | [] -> ()
      | [ last ] -> pp_node (child_prefix ^ "`- ") (child_prefix ^ "   ") last
      | c :: rest ->
        pp_node (child_prefix ^ "|- ") (child_prefix ^ "|  ") c;
        children rest
    in
    children n.children
  in
  List.iter (fun n -> pp_node "" "" n) forest
