(** A metrics registry: counters, gauges and fixed-bucket histograms,
    snapshot-able to JSON.

    Instruments are identified by a name plus an optional label set
    (e.g. the per-service latency histogram is
    [observe m ~labels:["service", name] "service.cost" v]); the same
    name may exist once per label combination. Like {!Trace.null}, the
    {!null} registry is disabled and free: every operation returns
    immediately, so instrumented code takes a [?metrics] argument
    defaulting to {!null}.

    A name must keep one instrument kind — incrementing a gauge or
    observing into a counter raises [Invalid_argument]; that is a bug in
    the instrumentation, not in user input. *)

type t

val null : t
(** The disabled registry: records nothing. *)

val create : unit -> t

val enabled : t -> bool

type labels = (string * string) list
(** Sorted internally; order at call sites does not matter. *)

(** {2 Recording} *)

val incr : t -> ?labels:labels -> ?by:int -> string -> unit
(** Counter increment, default [by:1]. [by] must be non-negative. *)

val add : t -> ?labels:labels -> string -> float -> unit
(** Counter increment by a float (e.g. backoff seconds). Must be
    non-negative. *)

val set : t -> ?labels:labels -> string -> float -> unit
(** Gauge: last write wins. *)

val observe : t -> ?labels:labels -> ?buckets:float list -> string -> float -> unit
(** Histogram observation. [buckets] are the upper bounds (sorted
    ascending, an implicit [+inf] bucket is appended); they are fixed by
    the histogram's first observation and ignored afterwards. The
    default buckets are exponential from 1 ms to 50 s. *)

(** {2 Reading} *)

val value : t -> ?labels:labels -> string -> float
(** Current counter or gauge value; [0.] when never recorded. *)

val count : t -> ?labels:labels -> string -> int
(** {!value} truncated to an integer — for counters fed by {!incr}. *)

val quantile : t -> ?labels:labels -> string -> float -> float option
(** [quantile m name q] estimates the [q]-quantile (0 ≤ q ≤ 1, e.g.
    0.5/0.95) of a histogram from its bucket counts, Prometheus-style:
    linear interpolation inside the bucket where the cumulative count
    crosses [q·n]. Observations landing in the overflow bucket clamp to
    the last finite upper bound. [None] when the registry is disabled,
    the instrument is missing or not a histogram, it has no
    observations, or [q] is out of range. *)

val total : t -> string -> float
(** A counter's value summed across all label sets — the reconciliation
    totals ([total m "service.retries"] over every service). Histograms
    contribute their observation {e sum}. *)

val total_count : t -> string -> int
(** {!total} truncated — also the observation count for histograms. *)

val snapshot : t -> Json.t
(** [{"counters": [...], "gauges": [...], "histograms": [...]}], each
    instrument as [{"name", "labels", ...}], sorted by name then labels
    so snapshots are diffable. Histograms carry cumulative bucket
    counts, [sum] and [count]. *)

val write : string -> t -> unit
(** Pretty-printed {!snapshot} to a file. *)
