type labels = (string * string) list

type histogram = {
  buckets : float array; (* upper bounds, ascending; +inf implicit *)
  counts : int array; (* length = Array.length buckets + 1 *)
  mutable sum : float;
  mutable n : int;
}

type instrument =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of histogram

type t = {
  on : bool;
  mu : Mutex.t;
      (* one registry is shared by every thread of a run: pool workers
         and server connection handlers bump counters concurrently *)
  instruments : (string * labels, instrument) Hashtbl.t;
}

let null = { on = false; mu = Mutex.create (); instruments = Hashtbl.create 1 }
let create () = { on = true; mu = Mutex.create (); instruments = Hashtbl.create 64 }
let enabled t = t.on

let locked t f = Mutex.protect t.mu f

let default_buckets =
  [ 0.001; 0.005; 0.01; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 50.0 ]

let key name labels = (name, List.sort compare labels)

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let find t name labels ~make ~expect =
  let k = key name labels in
  match Hashtbl.find_opt t.instruments k with
  | Some i ->
    if expect i then i
    else
      invalid_arg
        (Printf.sprintf "metric %s is a %s, used with a different kind" name (kind_name i))
  | None ->
    let i = make () in
    Hashtbl.replace t.instruments k i;
    i

let counter t name labels =
  match
    find t name labels
      ~make:(fun () -> Counter (ref 0.0))
      ~expect:(function Counter _ -> true | _ -> false)
  with
  | Counter r -> r
  | _ -> assert false

let incr t ?(labels = []) ?(by = 1) name =
  if t.on then begin
    if by < 0 then invalid_arg "Metrics.incr: negative increment";
    locked t (fun () ->
        let r = counter t name labels in
        r := !r +. float_of_int by)
  end

let add t ?(labels = []) name v =
  if t.on then begin
    if v < 0.0 then invalid_arg "Metrics.add: negative increment";
    locked t (fun () ->
        let r = counter t name labels in
        r := !r +. v)
  end

let set t ?(labels = []) name v =
  if t.on then
    locked t (fun () ->
        match
          find t name labels
            ~make:(fun () -> Gauge (ref v))
            ~expect:(function Gauge _ -> true | _ -> false)
        with
        | Gauge r -> r := v
        | _ -> assert false)

let observe t ?(labels = []) ?(buckets = default_buckets) name v =
  if t.on then
    locked t (fun () ->
        let h =
          match
            find t name labels
              ~make:(fun () ->
                let sorted = List.sort_uniq compare buckets in
                if sorted = [] then invalid_arg "Metrics.observe: empty bucket list";
                let buckets = Array.of_list sorted in
                Histogram
                  { buckets; counts = Array.make (Array.length buckets + 1) 0; sum = 0.0; n = 0 })
              ~expect:(function Histogram _ -> true | _ -> false)
          with
          | Histogram h -> h
          | _ -> assert false
        in
        let rec slot i =
          if i >= Array.length h.buckets || v <= h.buckets.(i) then i else slot (i + 1)
        in
        let i = slot 0 in
        h.counts.(i) <- h.counts.(i) + 1;
        h.sum <- h.sum +. v;
        h.n <- h.n + 1)

let quantile t ?(labels = []) name q =
  if (not t.on) || q < 0.0 || q > 1.0 then None
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.instruments (key name labels) with
        | Some (Histogram h) when h.n > 0 ->
          (* Prometheus-style estimate: find the bucket where the
             cumulative count crosses [q * n], interpolate linearly
             inside it. The overflow bucket reports its lower bound (the
             last finite upper bound) — there is nothing to interpolate
             toward. *)
          let rank = q *. float_of_int h.n in
          let nb = Array.length h.buckets in
          let rec scan i cum =
            let cum' = cum + h.counts.(i) in
            if float_of_int cum' >= rank || i = nb then (i, cum, cum')
            else scan (i + 1) cum'
          in
          let i, below, upto = scan 0 0 in
          if i >= nb then Some h.buckets.(nb - 1)
          else
            let lo = if i = 0 then 0.0 else h.buckets.(i - 1) in
            let hi = h.buckets.(i) in
            let inside = upto - below in
            if inside <= 0 then Some hi
            else
              Some (lo +. ((hi -. lo) *. ((rank -. float_of_int below) /. float_of_int inside)))
        | _ -> None)

let value t ?(labels = []) name =
  locked t (fun () ->
      match Hashtbl.find_opt t.instruments (key name labels) with
      | Some (Counter r) | Some (Gauge r) -> !r
      | Some (Histogram h) -> h.sum
      | None -> 0.0)

let count t ?labels name = int_of_float (value t ?labels name)

let fold_name t name f acc =
  locked t (fun () ->
      Hashtbl.fold (fun (n, _) i acc -> if n = name then f i acc else acc) t.instruments acc)

let total t name =
  fold_name t name
    (fun i acc ->
      match i with Counter r | Gauge r -> acc +. !r | Histogram h -> acc +. h.sum)
    0.0

let total_count t name =
  fold_name t name
    (fun i acc ->
      match i with Counter r | Gauge r -> acc + int_of_float !r | Histogram h -> acc + h.n)
    0

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let number f = if Float.is_integer f && Float.abs f < 1e15 then Json.Int (int_of_float f) else Json.Float f

let snapshot t =
  let entries kindp render =
    locked t (fun () ->
        Hashtbl.fold
          (fun (name, labels) i acc -> if kindp i then ((name, labels), i) :: acc else acc)
          t.instruments [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun ((name, labels), i) ->
           Json.Obj
             ([ ("name", Json.String name) ]
             @ (if labels = [] then [] else [ ("labels", labels_json labels) ])
             @ render i))
  in
  Json.Obj
    [
      ( "counters",
        Json.List
          (entries
             (function Counter _ -> true | _ -> false)
             (function Counter r -> [ ("value", number !r) ] | _ -> [])) );
      ( "gauges",
        Json.List
          (entries
             (function Gauge _ -> true | _ -> false)
             (function Gauge r -> [ ("value", number !r) ] | _ -> [])) );
      ( "histograms",
        Json.List
          (entries
             (function Histogram _ -> true | _ -> false)
             (function
               | Histogram h ->
                 (* cumulative counts, Prometheus-style *)
                 let cumulative = ref 0 in
                 let buckets =
                   List.init
                     (Array.length h.counts)
                     (fun i ->
                       cumulative := !cumulative + h.counts.(i);
                       let le =
                         if i < Array.length h.buckets then Json.Float h.buckets.(i)
                         else Json.String "inf"
                       in
                       Json.Obj [ ("le", le); ("count", Json.Int !cumulative) ])
                 in
                 [
                   ("buckets", Json.List buckets);
                   ("sum", Json.Float h.sum);
                   ("count", Json.Int h.n);
                 ]
               | _ -> [])) );
    ]

let write path t = Json.write_file ~indent:2 path (snapshot t)
