(** A minimal JSON value type with a printer and a parser.

    The observability sinks emit JSON (JSONL event logs, Chrome
    [trace_event] files, metrics snapshots) and the [axml trace]
    subcommand reads them back; depending on an external JSON library for
    that would be the only third-party dependency of the whole
    tree, so this small self-contained implementation exists instead.

    Numbers: integers are kept exact ([Int]); floats are printed with
    enough digits to round-trip ([%.17g] trimmed). The parser accepts the
    full JSON grammar except for [\u]-escapes beyond the Basic
    Multilingual Plane (surrogate pairs are passed through verbatim). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** [indent] > 0 pretty-prints with that step; default 0 is compact. *)

val to_buffer : ?indent:int -> Buffer.t -> t -> unit
(** Appends the serialization to [b] — lets hot paths (the wire codec)
    reuse one buffer instead of allocating a string per value. *)

val to_channel : ?indent:int -> out_channel -> t -> unit

val write_file : ?indent:int -> string -> t -> unit
(** Writes the value followed by a newline. *)

val parse : string -> (t, string) result
(** Parses one JSON value; trailing whitespace is allowed, trailing
    garbage is an error. Error messages carry a byte offset. *)

val parse_file : string -> (t, string) result

val parse_lines : string -> (t list, string) result
(** Parses JSONL: one value per non-empty line. *)

(** {2 Accessors} — total, for digging through parsed documents. *)

val member : string -> t -> t
(** The named field of an object, [Null] when absent or not an object. *)

val to_list : t -> t list
(** The elements of a [List], [[]] otherwise. *)

val string_value : t -> string option
val int_value : t -> int option

val float_value : t -> float option
(** Accepts both [Int] and [Float]. *)
