type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

let null = { trace = Trace.null; metrics = Metrics.null }

let create ?clock () = { trace = Trace.create ?clock (); metrics = Metrics.create () }
let tracing ?clock () = { trace = Trace.create ?clock (); metrics = Metrics.null }
let measuring () = { trace = Trace.null; metrics = Metrics.create () }

let enabled t = Trace.enabled t.trace || Metrics.enabled t.metrics

(* Metrics are shared (the registry is mutex-guarded and counters
   commute); only the tracer needs a private fragment per worker. *)
let fork t =
  if Trace.enabled t.trace then { t with trace = Trace.fragment t.trace } else t

let join parent child =
  if child.trace != parent.trace then Trace.absorb parent.trace child.trace
