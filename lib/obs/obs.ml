type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

let null = { trace = Trace.null; metrics = Metrics.null }

let create ?clock () = { trace = Trace.create ?clock (); metrics = Metrics.create () }
let tracing ?clock () = { trace = Trace.create ?clock (); metrics = Metrics.null }
let measuring () = { trace = Trace.null; metrics = Metrics.create () }

let enabled t = Trace.enabled t.trace || Metrics.enabled t.metrics
