type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_buffer ?(indent = 0) b v =
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (indent * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          escape_string b k;
          Buffer.add_char b ':';
          if indent > 0 then Buffer.add_char b ' ';
          go (depth + 1) x)
        fields;
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v

let to_string ?indent v =
  let b = Buffer.create 256 in
  to_buffer ?indent b v;
  Buffer.contents b

let to_channel ?indent oc v = output_string oc (to_string ?indent v)

let write_file ?indent path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel ?indent oc v;
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of int * string

let parse_value s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> raise (Parse_error (!pos, m))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some c' -> error "expected %C, found %C" c c'
    | None -> error "expected %C, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else error "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; incr pos
             | '\\' -> Buffer.add_char b '\\'; incr pos
             | '/' -> Buffer.add_char b '/'; incr pos
             | 'n' -> Buffer.add_char b '\n'; incr pos
             | 't' -> Buffer.add_char b '\t'; incr pos
             | 'r' -> Buffer.add_char b '\r'; incr pos
             | 'b' -> Buffer.add_char b '\b'; incr pos
             | 'f' -> Buffer.add_char b '\012'; incr pos
             | 'u' ->
               if !pos + 4 >= n then error "truncated \\u escape";
               (* exactly four hex digits — int_of_string "0x…" would
                  also accept underscores *)
               let hex i =
                 match s.[!pos + 1 + i] with
                 | '0' .. '9' as c -> Char.code c - Char.code '0'
                 | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                 | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                 | c -> error "invalid hex digit %C in \\u escape" c
               in
               let code = (hex 0 lsl 12) lor (hex 1 lsl 8) lor (hex 2 lsl 4) lor hex 3 in
               (* UTF-8 encode the BMP code point *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
               end;
               pos := !pos + 5
             | c -> error "invalid escape \\%C" c);
          go ()
        | c -> Buffer.add_char b c; incr pos; go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do incr pos done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> error "invalid number %S" lit)
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin incr pos; List [] end
      else begin
        let items = ref [ parse () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          items := parse () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin incr pos; Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse () in
          skip_ws ();
          (k, v)
        in
        let fields = ref [ field () ] in
        while peek () = Some ',' do
          incr pos;
          fields := field () :: !fields
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> error "unexpected character %C" c
  in
  let v = parse () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let parse s =
  match parse_value s with
  | v -> Ok v
  | exception Parse_error (pos, m) -> Error (Printf.sprintf "at byte %d: %s" pos m)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match read_file path with
  | exception Sys_error m -> Error m
  | contents -> (
    match parse contents with Ok v -> Ok v | Error m -> Error (path ^ ": " ^ m))

let parse_lines path =
  match read_file path with
  | exception Sys_error m -> Error m
  | contents ->
    let lines = String.split_on_char '\n' contents in
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else (
          match parse line with
          | Ok v -> go (v :: acc) (lineno + 1) rest
          | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m))
    in
    go [] 1 lines

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function List xs -> xs | _ -> []
let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None

let float_value = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
